(** Distributed logging (Section 5.3, Pelley et al. [24]): a group of
    independent transaction managers over one persistent heap, one log per
    partition.  Figure 11 shows this recovering almost all of the shared
    log's contention cost.

    Transactions must not span partitions — each partition recovers
    independently. *)

type t

val create :
  ?cfg:Tm.config -> Rewind_nvm.Alloc.t -> root_slot:int -> partitions:int -> t
(** Each partition occupies consecutive root slots starting at
    [root_slot]: a config-fingerprint slot plus two slots per internal
    partition of its manager. *)

val attach :
  ?cfg:Tm.config -> Rewind_nvm.Alloc.t -> root_slot:int -> partitions:int -> t
(** Reattach after a crash; every partition runs its own recovery. *)

val partitions : t -> int

val tm_for : t -> int -> Tm.t
(** Stable routing of a key (thread id, terminal id, shard key) to its
    partition's manager. *)

val tm : t -> int -> Tm.t
val begin_txn : t -> partition:int -> Tm.t * Tm.txn
val atomically : t -> partition:int -> (Tm.t -> Tm.txn -> 'a) -> 'a
val checkpoint_all : t -> unit
val commits : t -> int
val rollbacks : t -> int
