(** The transaction table (Section 4.1).

    Volatile by design: REWIND reconstructs it during recovery in every
    configuration.  One-layer logging does not maintain it while logging
    at all; two-layer logging keeps it updated as records are chained. *)

type status = Running | Aborted | Prepared | Finished

val pp_status : status Fmt.t

type entry = {
  id : int;
  mutable status : status;
  mutable last_record : int;  (** NVM address of the latest record; 0 if none *)
  mutable undo_next : int;    (** LSN bound: records >= this are already undone *)
}

type t

val create : unit -> t
val clear : t -> unit
val find_or_add : t -> int -> entry
val find : t -> int -> entry option
val remove : t -> int -> unit
val iter : t -> (entry -> unit) -> unit
val size : t -> int
val unfinished : t -> entry list
