(** In-cache-line logging (InCLL): epoch-based undo logging where the
    undo entry shares the data's cache line, after Cohen et al.,
    "Fine-Grain Checkpointing with In-Cache-Line Logging" (ASPLOS'19).

    Each managed cell owns one cache line holding the data word, an undo
    word, and an epoch tag.  The first store to a cell per epoch
    captures the old value into the undo word (two extra cached stores,
    same line — no extra NVM line write, no fence); later stores in the
    epoch are a single cached store.  {!advance} is the group-commit
    point: flush everything, fence, bump the durable epoch counter.
    A crash rolls the state back to the last advance — which is
    transaction-consistent, because the transaction layer only advances
    at quiescence.  Used by {!Tm} when the configuration's [incll] flag
    is set; the log/record machinery is bypassed entirely. *)

open Rewind_nvm

type t

val create :
  Arena.t -> Alloc.t -> epoch_slot:int -> dir_slot:int -> t
(** Format a fresh InCLL region: allocate the durable epoch-counter line
    and cell directory head, anchor both in the given arena root slots,
    and start at epoch 1. *)

val attach : Arena.t -> Alloc.t -> epoch_slot:int -> dir_slot:int -> t
(** Reopen from the root slots: read the durable epoch and rebuild the
    volatile cell list by walking the durable directory.  Does not roll
    anything back — call {!recover} for that. *)

val alloc_cell : t -> int
(** Allocate and durably register one cell (a full cache line from
    never-recycled, durably-zero space — a fresh tag of 0 can never
    equal a live epoch).  Returns the data-word address; the cell's undo
    word and tag live at fixed offsets behind it. *)

val store : t -> addr:int -> value:int64 -> unit
(** Update a registered cell, capturing the in-line undo first if this
    is the cell's first store of the current epoch.  Raises
    [Invalid_argument] for an unregistered address. *)

val read : t -> int -> int64

val advance : t -> unit
(** The epoch checkpoint: flush all dirty lines, fence, bump the durable
    epoch counter, fence.  Everything stored in the closing epoch
    becomes durable as a group; the caller (see {!Tm.advance_epoch})
    must ensure no transaction is in flight. *)

val recover : t -> int * int
(** Post-crash: rewind every cell whose tag equals the crashed epoch to
    its undo word, then {!advance}.  Idempotent across crashes inside
    recovery itself.  Returns (cells scanned, cells rewound). *)

val epoch : t -> int
(** The current (cached) epoch. *)

val cells : t -> int list
(** Registered cell addresses, oldest first. *)

val n_cells : t -> int
val is_cell : t -> int -> bool
