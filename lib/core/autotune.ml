(* Workload-driven configuration advisor — the paper's Section 7 future
   work ("introduce autotuning so that the system adapts to the workload
   through monitoring").

   The advisor is a passive observer the application feeds with events; it
   distils them into the quantities the paper's Section 5.1 sensitivity
   analysis showed to drive the configuration choice:

   - the *interleaving degree* (the paper's skip records): how many foreign
     records land between consecutive records of a transaction.  One-layer
     logging degrades linearly with it for selective rollback and
     commit-time clearing; the measured crossovers sit in the few-hundreds
     (Figures 3 right and 4 left).
   - the *selective-rollback rate*: rollbacks only ever pay the one-layer
     scan penalty, commits under no-force do not.
   - the *transaction length*: commit-time (force) clearing costs grow with
     it, while checkpoint-based (no-force) clearing amortises.

   The recommendation mirrors the paper's guidance: two-layer logging only
   when high interleaving meets a meaningful rollback rate; force policy
   when transactions are short and fast restart matters more than logging
   throughput. *)

type stats = {
  mutable txns_started : int;
  mutable txns_committed : int;
  mutable txns_rolled_back : int;
  mutable records_logged : int;
  mutable interleave_samples : int;
  mutable interleave_total : int;
  mutable updates_per_txn_total : int;
  mutable small_updates : int;
}

type t = {
  stats : stats;
  mutable seq : int;  (* global append sequence *)
  last_seq : (int, int) Hashtbl.t;  (* txn -> seq at its previous record *)
  first_seq : (int, int) Hashtbl.t;
  counts : (int, int) Hashtbl.t;
}

let create () =
  {
    stats =
      {
        txns_started = 0;
        txns_committed = 0;
        txns_rolled_back = 0;
        records_logged = 0;
        interleave_samples = 0;
        interleave_total = 0;
        updates_per_txn_total = 0;
        small_updates = 0;
      };
    seq = 0;
    last_seq = Hashtbl.create 64;
    first_seq = Hashtbl.create 64;
    counts = Hashtbl.create 64;
  }

(* -- event feed --------------------------------------------------------- *)

let on_begin t _txn = t.stats.txns_started <- t.stats.txns_started + 1

let on_write ?(word_sized = false) t txn =
  t.seq <- t.seq + 1;
  t.stats.records_logged <- t.stats.records_logged + 1;
  if word_sized then t.stats.small_updates <- t.stats.small_updates + 1;
  (match Hashtbl.find_opt t.last_seq txn with
  | Some prev ->
      (* records by other transactions since this one's last record *)
      t.stats.interleave_samples <- t.stats.interleave_samples + 1;
      t.stats.interleave_total <- t.stats.interleave_total + (t.seq - prev - 1)
  | None -> Hashtbl.replace t.first_seq txn t.seq);
  Hashtbl.replace t.last_seq txn t.seq;
  Hashtbl.replace t.counts txn
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts txn))

let settle t txn =
  t.stats.updates_per_txn_total <-
    t.stats.updates_per_txn_total
    + Option.value ~default:0 (Hashtbl.find_opt t.counts txn);
  Hashtbl.remove t.last_seq txn;
  Hashtbl.remove t.first_seq txn;
  Hashtbl.remove t.counts txn

let on_commit t txn =
  t.stats.txns_committed <- t.stats.txns_committed + 1;
  settle t txn

let on_rollback t txn =
  t.stats.txns_rolled_back <- t.stats.txns_rolled_back + 1;
  settle t txn

(* -- derived quantities -------------------------------------------------- *)

let avg_interleave t =
  if t.stats.interleave_samples = 0 then 0.
  else
    float_of_int t.stats.interleave_total
    /. float_of_int t.stats.interleave_samples

let rollback_rate t =
  let settled = t.stats.txns_committed + t.stats.txns_rolled_back in
  if settled = 0 then 0.
  else float_of_int t.stats.txns_rolled_back /. float_of_int settled

(* Fraction of logged updates that are word-sized — i.e. candidates for
   the log's inline record fast path, which wants the Optimized variant
   (a pair append is one line write-back and one fence; Batch gains
   little on top and delays durability). *)
let small_write_fraction t =
  if t.stats.records_logged = 0 then 0.
  else
    float_of_int t.stats.small_updates /. float_of_int t.stats.records_logged

let avg_txn_updates t =
  let settled = t.stats.txns_committed + t.stats.txns_rolled_back in
  if settled = 0 then 0.
  else float_of_int t.stats.updates_per_txn_total /. float_of_int settled

let stats t = t.stats

(* -- recommendation ------------------------------------------------------ *)

(* Crossover thresholds from the measured Figures 3 (right) and 4 (left):
   the two-layer index starts paying off at a few hundred skip records,
   and only if selective rollbacks actually happen. *)
let two_layer_interleave_threshold = 400.
let two_layer_rollback_threshold = 0.02

(* Force pays at commit proportionally to transaction length; for short
   transactions its two-phase recovery and immediate clearing are worth
   the slightly slower logging (the paper's Section 2 trade-off). *)
let force_txn_length_threshold = 8.

(* When most updates fit the inline format, Optimized's per-append cost
   already collapses to one line write + one fence, so batching buys
   little durability-lag for no gain; below that, long update-heavy
   transactions amortise slot persistence best under Batch. *)
let inline_small_write_threshold = 0.75
let batch_group_size = 8

let recommend t =
  let layers =
    if
      avg_interleave t >= two_layer_interleave_threshold
      && rollback_rate t >= two_layer_rollback_threshold
    then Tm.Two_layer
    else Tm.One_layer
  in
  let policy =
    if avg_txn_updates t > 0. && avg_txn_updates t <= force_txn_length_threshold
    then Tm.Force
    else Tm.No_force
  in
  let variant =
    if small_write_fraction t >= inline_small_write_threshold then
      Log.Optimized
    else if avg_txn_updates t > force_txn_length_threshold then
      Log.Batch batch_group_size
    else Tm.default_config.Tm.variant
  in
  { Tm.default_config with Tm.layers; policy; variant }

let pp ppf t =
  Fmt.pf ppf
    "@[<v>txns: %d started, %d committed, %d rolled back@,\
     records: %d; avg interleave: %.1f; rollback rate: %.1f%%; avg \
     updates/txn: %.1f; small writes: %.0f%%@,\
     recommendation: %a@]"
    t.stats.txns_started t.stats.txns_committed t.stats.txns_rolled_back
    t.stats.records_logged (avg_interleave t)
    (100. *. rollback_rate t)
    (avg_txn_updates t)
    (100. *. small_write_fraction t)
    Tm.pp_config (recommend t)
