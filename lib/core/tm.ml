(* The transaction recovery manager (Section 4).

   Four configurations, as in the paper's design space:
   - policy: [Force] (user updates reach NVM with non-temporal stores; the
     transaction's log records are cleared at commit; two-phase recovery)
     or [No_force] (user updates are cached; checkpoints clear the log;
     three-phase recovery with a redo pass);
   - layers: [One_layer] (the bucket/ADLL log holds user records directly;
     no transaction table is maintained while logging) or [Two_layer] (the
     AAVLT indexes records by transaction and acts as the persistent
     transaction table; the bucket log underneath holds only the AAVLT's
     own pending writes).

   The log implementation (Simple / Optimized / Batch) is picked
   independently, giving the paper's Simple/Optimized/Batch REWIND
   versions.

   Partitioned logging (Section 4.7 / Section 5's multithreaded results):
   the log can be sharded into [partitions] independent partitions, each a
   full recoverable bucketed-ADLL log with its own latch, current-bucket
   cursor, group-flush state and Batch last-persistent index — plus its
   own two-layer AAVLT and transaction table.  A transaction is pinned to
   a *home partition* by its id (round-robin), so the append fast path
   touches only partition-local state; the LSN counter stays one process-
   wide instrumented atomic ({!Sim_atomic}), so a single global order over all records survives.
   Recovery merges: analysis scans every partition (each rebuilding its
   own transaction table), redo replays the union of records in global
   LSN order (k-way merge by LSN across the partition streams), undo
   walks each loser's back-chain within its home partition, and clearing
   runs per partition.  The checkpoint clears settled transactions in
   global LSN order with END records last *across* the merged set, which
   preserves the repeat-history invariant a crash mid-clearing depends
   on. *)

open Rewind_nvm

type policy = Force | No_force
type layers = One_layer | Two_layer

type config = {
  policy : policy;
  layers : layers;
  variant : Log.variant;
  bucket_cap : int;
  lockfree_latch : bool;
      (* Section 7 future work: a lock-free log fast path — appends pay a
         CAS instead of serialising on the latch. *)
  partitions : int;
      (* independent log partitions (>= 1); transactions are pinned to a
         home partition by id, and recovery merges the partitions by
         LSN.  1 = the unpartitioned log of the paper's single-threaded
         experiments. *)
  incll : bool;
      (* in-cache-line logging (Cohen et al., ASPLOS'19): the undo entry
         lives in the data's own cache line and durability is
         epoch-granular ({!advance_epoch}).  Replaces the WAL machinery
         wholesale — no log, no records, no partitions. *)
}

let default_config =
  {
    policy = No_force;
    layers = One_layer;
    variant = Log.Optimized;
    bucket_cap = 1000;
    lockfree_latch = false;
    partitions = 1;
    incll = false;
  }

let pp_config ppf c =
  if c.incll then Fmt.string ppf "InCLL"
  else begin
    Fmt.pf ppf "%s-%s/%a"
      (match c.layers with One_layer -> "1L" | Two_layer -> "2L")
      (match c.policy with Force -> "FP" | No_force -> "NFP")
      Log.pp_variant c.variant;
    if c.partitions > 1 then Fmt.pf ppf "x%d" c.partitions
  end

type txn = int

(* What recovery found and did — surfaced so callers (and the fault
   campaign) can distinguish a clean recovery from one that had to
   truncate torn records. *)
type recovery_report = {
  records_scanned : int;  (* log records examined by analysis *)
  torn_truncated : int;   (* bad-checksum records dropped as torn writes *)
  redo_applied : int;     (* records re-applied by the redo pass *)
  txns_finished : int;    (* transactions found committed/rolled back *)
  txns_undone : int;      (* unfinished transactions rolled back by undo *)
}

let pp_recovery_report ppf r =
  Fmt.pf ppf
    "@[<h>scanned=%d torn=%d redo=%d finished=%d undone=%d@]"
    r.records_scanned r.torn_truncated r.redo_applied r.txns_finished
    r.txns_undone

(* One log partition: a complete recoverable log plus the per-partition
   transactional state that used to be process-global.  Everything a
   transaction's fast path touches lives here, guarded by this
   partition's latch alone. *)
type part = {
  pid : int;
  log : Log.t;  (* 1L: the user log; 2L: the AAVLT's internal log *)
  index : Avl_index.t option;  (* 2L only *)
  table : Txn_table.t;
  latch : Sim_mutex.t;
  ended : (int, unit) Hashtbl.t;  (* committed/rolled back, awaiting clearing *)
  mutable deferred_deletes : (txn * int * int * int) list;
      (* txn, DELETE record lsn, addr, size *)
  mutable deferred : (int * bool) list;
      (* Batch: user stores (addr, durably) whose undo records sit in a
         not-yet-persistent group.  Under the arbitrary-eviction fault
         model even a *cached* store may reach NVM at any moment, so these
         lines are pinned in the store buffer (visible to every load,
         never written back) until the group is durable. *)
}

type t = {
  cfg : config;
  alloc : Alloc.t;
  arena : Arena.t;
  parts : part array; (* empty under incll *)
  incll : Incll.t option;
  incll_txns : (int, (int * int64) list ref) Hashtbl.t;
      (* incll: txn -> volatile undo journal (addr, old value), newest
         first.  Serves abort/savepoint rollback only — crash rollback
         uses the in-line undo words, never this table. *)
  incll_latch : Sim_mutex.t;
  next_seq : int Sim_atomic.t array;
      (* per-partition transaction sequence counters: partition [p]'s
         next id is [first_txn + seq * partitions + p], so the home
         partition stays a pure function of the id even when the caller
         pins a transaction explicitly ([begin_txn ?home]) *)
  next_home : int Sim_atomic.t;
      (* round-robin cursor assigning homes to transactions whose caller
         did not pin one *)
  next_lsn : int Sim_atomic.t;  (* one global counter: LSNs order records
                               across all partitions *)
  prepared_gtids : (int, int) Hashtbl.t;
      (* local txn id -> global (2PC) transaction id, for every
         transaction currently in doubt: PREPARE logged, outcome not yet
         resolved.  Maintained by [prepare]/[resolve_in_doubt] and rebuilt
         from the logs by recovery. *)
  mutable commits : int;
  mutable rollbacks : int;
  mutable last_recovery : recovery_report option;
  mutable last_recovery_profile : Probe.t option;
  mutable probe : Probe.t option;
      (* when set, the commit/checkpoint hot paths charge spans to it *)
}

(* Reserved txn id 0 belongs to the AAVLT's internal logging. *)
let first_txn = 1

(* Root-slot layout: the manager's first slot holds a durable
   configuration fingerprint (written once at [create]); partition [p]
   then anchors its log at [root_slot + 1 + 2*pid] and its AAVLT root at
   [root_slot + 2 + 2*pid].  [attach] validates the fingerprint before
   touching any log slot — re-attaching with, say, a different partition
   count used to silently misassign home partitions and read other
   partitions' anchors as its own. *)
let part_log_slot ~root_slot pid = root_slot + 1 + (2 * pid)
let part_index_slot ~root_slot pid = root_slot + 2 + (2 * pid)

(* The fingerprint packs every recovery-relevant config field into one
   word: magic tag, partition count, policy, layers, log variant (plus
   Batch group size) and bucket capacity.  [lockfree_latch] is volatile
   scheduling policy — it does not change the durable layout — so it is
   recorded but masked out of the comparison. *)
let config_magic = 0x52 (* 'R' *)

let config_word cfg =
  let vtag, group =
    match cfg.variant with
    | Log.Simple -> (0, 0)
    | Log.Optimized -> (1, 0)
    | Log.Batch g -> (2, g land 0xFFFF)
  in
  config_magic
  lor ((cfg.partitions land 0xFF) lsl 8)
  lor ((match cfg.policy with No_force -> 0 | Force -> 1) lsl 16)
  lor ((match cfg.layers with One_layer -> 0 | Two_layer -> 1) lsl 17)
  lor (vtag lsl 18)
  lor (group lsl 20)
  lor ((cfg.bucket_cap land 0xFFFFFF) lsl 36)
  lor ((if cfg.lockfree_latch then 1 else 0) lsl 60)
  lor ((if cfg.incll then 1 else 0) lsl 61)

let config_of_word w =
  {
    policy = (if (w lsr 16) land 1 = 1 then Force else No_force);
    layers = (if (w lsr 17) land 1 = 1 then Two_layer else One_layer);
    variant =
      (match (w lsr 18) land 3 with
      | 0 -> Log.Simple
      | 1 -> Log.Optimized
      | _ -> Log.Batch ((w lsr 20) land 0xFFFF));
    bucket_cap = (w lsr 36) land 0xFFFFFF;
    lockfree_latch = (w lsr 60) land 1 = 1;
    partitions = (w lsr 8) land 0xFF;
    incll = (w lsr 61) land 1 = 1;
  }

let semantic_config_bits w = w land lnot (1 lsl 60)

let check_cfg cfg ~root_slot =
  if cfg.partitions < 1 then
    invalid_arg "Tm: config.partitions must be at least 1";
  if cfg.incll && cfg.partitions <> 1 then
    invalid_arg
      "Tm: incll is epoch-granular, not log-partitioned; config.partitions \
       must be 1";
  if cfg.incll && cfg.layers <> One_layer then
    invalid_arg "Tm: incll keeps no record index; config.layers must be \
                 One_layer";
  if part_index_slot ~root_slot (cfg.partitions - 1) >= 63 then
    invalid_arg
      (Printf.sprintf
         "Tm: %d partitions at root slot %d exceed the arena's 63 root slots"
         cfg.partitions root_slot)

let validate_stored_config arena cfg ~root_slot =
  let stored = Int64.to_int (Arena.root_get arena root_slot) in
  if stored = 0 then
    failwith
      (Printf.sprintf
         "Tm.attach: no durable configuration at root slot %d (this arena \
          was never initialised with Tm.create here)"
         root_slot)
  else if stored land 0xFF <> config_magic then
    failwith
      (Printf.sprintf
         "Tm.attach: root slot %d does not hold a Tm configuration \
          fingerprint (found %#x)"
         root_slot stored)
  else if semantic_config_bits stored <> semantic_config_bits (config_word cfg)
  then
    failwith
      (Fmt.str
         "Tm.attach: durable configuration mismatch at root slot %d: the \
          arena was created with %a (%d partition(s)) but attach requested \
          %a (%d partition(s))"
         root_slot pp_config (config_of_word stored)
         ((stored lsr 8) land 0xFF)
         pp_config cfg cfg.partitions)

let make_latch cfg =
  if cfg.lockfree_latch then
    Sim_mutex.create ~acquire_ns:30 ~contention_free:true ()
  else Sim_mutex.create ()

let make_part cfg pid log index =
  {
    pid;
    log;
    index;
    table = Txn_table.create ();
    latch = make_latch cfg;
    ended = Hashtbl.create 64;
    deferred_deletes = [];
    deferred = [];
  }

let make_t ?incll cfg alloc parts =
  {
    cfg;
    alloc;
    arena = Alloc.arena alloc;
    parts;
    incll;
    incll_txns = Hashtbl.create 16;
    incll_latch = Sim_mutex.create ();
    next_seq = Array.init (max 1 (Array.length parts)) (fun _ -> Sim_atomic.make 0);
    next_home = Sim_atomic.make 0;
    next_lsn = Sim_atomic.make 1;
    prepared_gtids = Hashtbl.create 8;
    commits = 0;
    rollbacks = 0;
    last_recovery = None;
    last_recovery_profile = None;
    probe = None;
  }

(* Under incll the two slots a partition-0 log/index would use anchor
   the epoch counter and the cell directory instead. *)
let incll_epoch_slot ~root_slot = part_log_slot ~root_slot 0
let incll_dir_slot ~root_slot = part_index_slot ~root_slot 0

let create ?(cfg = default_config) alloc ~root_slot =
  check_cfg cfg ~root_slot;
  let arena = Alloc.arena alloc in
  Arena.root_set arena root_slot (Int64.of_int (config_word cfg));
  if cfg.incll then
    let i =
      Incll.create arena alloc
        ~epoch_slot:(incll_epoch_slot ~root_slot)
        ~dir_slot:(incll_dir_slot ~root_slot)
    in
    make_t ~incll:i cfg alloc [||]
  else
  let parts =
    Array.init cfg.partitions (fun pid ->
        let log =
          Log.create cfg.variant ~bucket_cap:cfg.bucket_cap alloc
            ~root_slot:(part_log_slot ~root_slot pid)
        in
        Log.set_group_tag log pid;
        let index =
          match cfg.layers with
          | One_layer -> None
          | Two_layer ->
              let idx = Avl_index.create alloc ~ilog:log in
              Arena.root_set arena
                (part_index_slot ~root_slot pid)
                (Int64.of_int (Avl_index.root_ptr idx));
              Some idx
        in
        make_part cfg pid log index)
  in
  make_t cfg alloc parts

let config t = t.cfg
let partitions t = max 1 (Array.length t.parts)

let log t =
  if t.cfg.incll then
    invalid_arg "Tm.log: an InCLL configuration keeps no log"
  else t.parts.(0).log
let logs t = Array.map (fun p -> p.log) t.parts
let partition_appended t = Array.map (fun p -> Log.appended p.log) t.parts
let commits t = t.commits
let rollbacks t = t.rollbacks
let set_probe t p = t.probe <- p
let last_recovery_profile t = t.last_recovery_profile

(* Charge [f] to phase [name] of the attached hot-path probe, if any. *)
let hot_span t name f =
  match t.probe with
  | None -> f ()
  | Some p -> Probe.span p (Arena.stats t.arena) name f

let active_transactions t =
  Hashtbl.length t.incll_txns
  + Array.fold_left (fun acc p -> acc + Txn_table.size p.table) 0 t.parts

let last_recovery t = t.last_recovery

let fresh_lsn t = Sim_atomic.fetch_and_add t.next_lsn 1

(* A transaction's home partition, a pure function of its id: round-robin
   over the partitions.  Deterministic, so recovery needs no pinning map —
   a transaction's records are found exactly where logging put them. *)
let home_partition t txn = (txn - first_txn) mod Array.length t.parts
let home t txn = t.parts.(home_partition t txn)

(* Advance the id counters past every transaction recovery saw, so fresh
   ids can never collide with recovered ones: partition [p]'s next
   sequence number is the smallest [s] with [first_txn + s*n + p >
   max_txn].  The round-robin cursor continues from the id after
   [max_txn], keeping default (unpinned) ids sequential across a crash. *)
let reseed_txn_counters t max_txn =
  let n = max 1 (Array.length t.parts) in
  Array.iteri
    (fun p seq ->
      let d = max_txn - first_txn - p in
      let s = if d < 0 then 0 else (d / n) + 1 in
      if s > Sim_atomic.get seq then Sim_atomic.set seq s)
    t.next_seq;
  let rr = max_txn + 1 - first_txn in
  if rr > Sim_atomic.get t.next_home then Sim_atomic.set t.next_home rr

(* -- transaction begin -------------------------------------------------- *)

(* Transaction ids encode their home partition: partition [p] hands out
   ids [first_txn + seq * n + p], so [home_partition] recomputes the home
   from the id alone and recovery needs no durable pinning map even for
   caller-pinned transactions.  With no caller pinning the round-robin
   cursor makes the ids come out exactly sequential (the pre-[?home]
   behaviour). *)
let begin_txn ?home:home_opt t =
  (* incll keeps no log partitions (parts = [||]); ids degenerate to the
     sequential single-partition scheme there. *)
  let n = max 1 (Array.length t.parts) in
  let hp =
    match home_opt with
    | Some h ->
        if h < 0 || h >= n then
          invalid_arg
            (Printf.sprintf "Tm.begin_txn: home %d out of range [0, %d)" h n);
        h
    | None -> Sim_atomic.fetch_and_add t.next_home 1 mod n
  in
  let id = first_txn + (Sim_atomic.fetch_and_add t.next_seq.(hp) 1 * n) + hp in
  (match t.incll with
  | Some _ ->
      (* incll: open a volatile undo journal for abort support; the
         durable side needs no per-transaction state at all. *)
      Sim_mutex.with_lock t.incll_latch (fun () ->
          Hashtbl.replace t.incll_txns id (ref []))
  | None -> (
      match t.cfg.layers with
      | One_layer ->
          ()  (* one-layer: no per-transaction state while logging *)
      | Two_layer ->
          (* two-layer: the transaction table is maintained while logging *)
          let p = home t id in
          Sim_mutex.with_lock p.latch (fun () ->
              ignore (Txn_table.find_or_add p.table id))));
  id

let incll_journal t txn_id =
  match Hashtbl.find_opt t.incll_txns txn_id with
  | Some j -> j
  | None ->
      invalid_arg
        (Printf.sprintf "Tm: transaction %d is not open (InCLL)" txn_id)

(* -- logging ------------------------------------------------------------ *)

(* Under Batch, pinned user stores are released as soon as their group is
   persistent (durably for Force, cached for No_force — by then the undo
   record is reachable, so a later eviction of the line is recoverable). *)
let drain_deferred t p =
  if p.deferred <> [] && Log.pending p.log = 0 then begin
    List.iter
      (fun (addr, durably) ->
        if durably then Arena.flush_line t.arena addr
        else Arena.unpin_line t.arena addr)
      (List.rev p.deferred);
    p.deferred <- []
  end

let user_write t p addr v =
  let durably = t.cfg.policy = Force in
  match t.cfg.variant with
  | Log.Batch _ ->
      (* WAL under arbitrary eviction: hardware may write any dirty line
         back at any moment, so the store is held in the (pinned) store
         buffer until its log record's group is persistently reachable.
         Pin before the store — the store itself may trigger an eviction
         roll. *)
      Arena.pin_line t.arena addr;
      Arena.write t.arena addr v;
      p.deferred <- (addr, durably) :: p.deferred;
      drain_deferred t p
  | Log.Simple | Log.Optimized ->
      (* The record and its slot are already durably reachable. *)
      if durably then Arena.nt_write t.arena addr v
      else Arena.write t.arena addr v

(* Append a user record to [p].  In two-layer mode the AAVLT indexes
   records by their LSN (Section 3.4): every record becomes a tree node
   whose payload is the record's address, inserted in one atomic AAVLT
   operation, and the record is threaded onto its transaction's back-chain
   via the volatile transaction table. *)
let append_user_record t p txn_id r ~is_end =
  match p.index with
  | None -> Log.append ~is_end p.log r
  | Some idx ->
      let e = Txn_table.find_or_add p.table txn_id in
      (* Chain before the record becomes reachable. *)
      Record.set_prev_same_txn t.arena r e.Txn_table.last_record;
      let lsn = Record.lsn t.arena r in
      Avl_index.op idx (fun () ->
          let node = Avl_index.insert_in_op idx lsn in
          Avl_index.set_head_record idx node r);
      e.Txn_table.last_record <- r;
      (* The record is durable here: [Record.make] wrote it back and the
         AAVLT op's internal logging fenced at least once since. *)
      if is_end && txn_id <> 0 then
        Pmcheck.commit_point t.arena ~txn:txn_id ~addr:r ~len:Record.size_bytes
          ~what:"END record (AAVLT-indexed)"

(* Records are created "off-line" (Section 3.2) — outside the log latch —
   and only the atomic insertion is serialised, which is the fine-grained
   concurrency Section 4.7 claims.  One-layer word-sized updates take the
   inline fast path: the record is two tagged slot words, encoded outside
   the latch and stored by the append itself — no allocation, no separate
   record line.  (Two-layer user records stay full: the AAVLT indexes
   them by address and threads their back-chains.)  With a partitioned
   log the latch taken here is the transaction's home-partition latch —
   appends in different partitions never serialise against each other. *)
let log_update t txn_id ~addr ~old_value ~new_value =
  if t.cfg.incll then
    invalid_arg "Tm.log_update: InCLL logs in-line; use Tm.write";
  let p = home t txn_id in
  let lsn = fresh_lsn t in
  let inline =
    match p.index with
    | Some _ -> None
    | None ->
        if Log.inline_eligible p.log then
          Record.inline_encode ~lsn ~txn:txn_id ~typ:Record.Update ~addr
            ~old_value ~new_value ~undo_next:0
        else None
  in
  let r =
    match inline with
    | Some _ -> 0
    | None ->
        Record.make t.alloc ~lsn ~txn:txn_id ~typ:Record.Update ~addr
          ~old_value ~new_value ~undo_next:0 ~prev_same_txn:0
  in
  Sim_mutex.with_lock p.latch (fun () ->
      (match inline with
      | Some (w0, w1) -> ignore (Log.append_pair p.log ~txn:txn_id w0 w1)
      | None -> append_user_record t p txn_id r ~is_end:false);
      (* WAL declaration: [addr] now has an undo record.  Under Batch the
         record may still sit in an unpersisted group ([Log.pending] > 0),
         in which case the covered store must not reach NVM before the
         {!Pmcheck.group_persisted} of this partition. *)
      Pmcheck.region_logged ~group:p.pid t.arena ~txn:txn_id ~addr ~len:8
        ~durable:(Log.pending p.log = 0))

(* The paper's expanded-code pattern (Listing 2): log, then store.  The
   InCLL path journals the old value for abort support and lets
   {!Incll.store} handle the durable side — the in-line undo capture on
   the epoch's first store, a bare cached store afterwards. *)
let write_wal t txn_id ~addr ~value =
  let old_value = Arena.read t.arena addr in
  log_update t txn_id ~addr ~old_value ~new_value:value;
  match (t.cfg.policy, t.cfg.variant) with
  | No_force, (Log.Simple | Log.Optimized) ->
      (* Thread-safe access to user data is the programmer's concern
         (Section 4.7); the cached store itself needs no TM latch. *)
      Arena.write t.arena addr value
  | Force, _ | No_force, Log.Batch _ ->
      (* The Batch deferral list is partition state: serialise on the
         home latch. *)
      let p = home t txn_id in
      Sim_mutex.with_lock p.latch (fun () -> user_write t p addr value)

let write t txn_id ~addr ~value =
  match t.incll with
  | Some i ->
      let old_value = Arena.read t.arena addr in
      Sim_mutex.with_lock t.incll_latch (fun () ->
          let j = incll_journal t txn_id in
          j := (addr, old_value) :: !j);
      Incll.store i ~addr ~value
  | None -> write_wal t txn_id ~addr ~value

let read t _txn_id ~addr = Arena.read t.arena addr

(* Record an intention to free NVM; the de-allocation itself happens only
   once the transaction's outcome is settled (Section 4.3). *)
let log_delete t txn_id ~addr ~size =
  if t.cfg.incll then
    invalid_arg "Tm.log_delete: InCLL has no deferred-delete records";
  let p = home t txn_id in
  let lsn = fresh_lsn t in
  let r =
    Record.make t.alloc ~lsn ~txn:txn_id ~typ:Record.Delete ~addr
      ~old_value:(Int64.of_int size) ~new_value:0L ~undo_next:0
      ~prev_same_txn:0
  in
  Sim_mutex.with_lock p.latch (fun () ->
      append_user_record t p txn_id r ~is_end:false;
      p.deferred_deletes <- (txn_id, lsn, addr, size) :: p.deferred_deletes)

(* -- clearing ------------------------------------------------------------ *)

let record_txn t r = Record.txn t.arena r
let record_typ t r = Record.typ t.arena r

(* Remove one transaction's records; END last, so that an interrupted
   clearing is re-attempted identically after a crash (Section 4.6). *)
let clear_txn_records t p txn_id =
  Log.remove_where p.log (fun r ->
      record_txn t r = txn_id && record_typ t r <> Record.End);
  Log.remove_where p.log (fun r ->
      record_txn t r = txn_id && record_typ t r = Record.End)

let free_deferred_deletes t p txn_id =
  let mine, rest =
    List.partition (fun (x, _, _, _) -> x = txn_id) p.deferred_deletes
  in
  List.iter (fun (_, _, addr, size) -> Alloc.free t.alloc addr size) mine;
  p.deferred_deletes <- rest

let drop_deferred_deletes _t p txn_id =
  p.deferred_deletes <-
    List.filter (fun (x, _, _, _) -> x <> txn_id) p.deferred_deletes

(* Two-layer clearing of one settled transaction: walk its back-chain and
   delete each record's tree node, oldest first — so the END record (the
   newest) goes last, and an interrupted clearing is re-attempted
   identically after a crash (Section 4.6). *)
let clear_txn_index t p idx txn_id =
  match Txn_table.find p.table txn_id with
  | None -> ()
  | Some e ->
      let rec collect r acc =
        if r = 0 then acc
        else collect (Record.prev_same_txn t.arena r) (r :: acc)
      in
      let oldest_first = collect e.Txn_table.last_record [] in
      List.iter
        (fun r ->
          ignore (Avl_index.remove idx (Record.lsn t.arena r));
          Record.free t.alloc r)
        oldest_first;
      Txn_table.remove p.table txn_id

(* -- commit --------------------------------------------------------------- *)

let append_end t p txn_id =
  match p.index with
  | None ->
      (* One-layer END records carry no payload and always fit inline. *)
      ignore
        (Log.append_record ~is_end:true p.log ~lsn:(fresh_lsn t) ~txn:txn_id
           ~typ:Record.End ~addr:0 ~old_value:0L ~new_value:0L ~undo_next:0)
  | Some _ ->
      let r =
        Record.make t.alloc ~lsn:(fresh_lsn t) ~txn:txn_id ~typ:Record.End
          ~addr:0 ~old_value:0L ~new_value:0L ~undo_next:0 ~prev_same_txn:0
      in
      append_user_record t p txn_id r ~is_end:true

(* [clear] exists for experiments that model a crash landing between the
   END record and commit-time clearing (Sections 5.1's recovery scenarios);
   production callers leave it true. *)
let rec commit ?(clear = true) t txn_id =
  hot_span t "commit" @@ fun () ->
  match t.incll with
  | Some _ ->
      (* InCLL commit is free: durability is epoch-granular (the commit
         becomes durable at the next {!advance_epoch}, as a group), so
         there is no END record, no fence, and no commit point to check —
         dropping the volatile undo journal is the whole operation.  This
         is the protocol's documented trade: a crash loses up to one
         epoch of committed work, never consistency. *)
      Sim_mutex.with_lock t.incll_latch (fun () ->
          ignore (incll_journal t txn_id);
          Hashtbl.remove t.incll_txns txn_id;
          t.commits <- t.commits + 1;
          Pmcheck.txn_settled t.arena ~txn:txn_id)
  | None -> commit_wal ~clear t txn_id

and commit_wal ?(clear = true) t txn_id =
  let p = home t txn_id in
  Sim_mutex.with_lock p.latch (fun () ->
      t.commits <- t.commits + 1;
      (match t.cfg.policy with
      | Force ->
          (* All of the transaction's stores are already on their way to
             NVM; fence, log END, and clear immediately. *)
          Log.flush_group p.log;
          drain_deferred t p;
          Arena.fence t.arena;
          append_end t p txn_id;
          if clear then begin
            (match p.index with
            | None -> clear_txn_records t p txn_id
            | Some idx -> clear_txn_index t p idx txn_id);
            free_deferred_deletes t p txn_id
          end
      | No_force ->
          (* The END record forces the batch group; buffered stores can
             then reach the (volatile) cache. *)
          append_end t p txn_id;
          drain_deferred t p;
          Hashtbl.replace p.ended txn_id ());
      Pmcheck.txn_settled t.arena ~txn:txn_id)

(* -- rollback -------------------------------------------------------------- *)

(* Write a CLR recording the undo of [rec], then apply the undo.  The CLR's
   new value is the restored (old) value; [undo_next] carries the undone
   record's LSN so that Algorithm 2 can skip past it after a crash.  The
   CLR lands in the transaction's home partition, like every record of the
   transaction. *)
let undo_one t p txn_id rec_ ~durably =
  let addr = Record.addr t.arena rec_ in
  let restored = Record.old_value t.arena rec_ in
  (match p.index with
  | None ->
      (* A CLR's old value is write-only (never read by redo or undo), so
         the compact format drops it; small restores go inline. *)
      ignore
        (Log.append_record ~is_end:durably p.log ~lsn:(fresh_lsn t)
           ~txn:txn_id ~typ:Record.Clr ~addr
           ~old_value:(Record.new_value t.arena rec_) ~new_value:restored
           ~undo_next:(Record.lsn t.arena rec_))
  | Some _ ->
      let clr =
        Record.make t.alloc ~lsn:(fresh_lsn t) ~txn:txn_id ~typ:Record.Clr
          ~addr
          ~old_value:(Record.new_value t.arena rec_) ~new_value:restored
          ~undo_next:(Record.lsn t.arena rec_) ~prev_same_txn:0
      in
      append_user_record t p txn_id clr ~is_end:durably);
  Pmcheck.region_logged ~group:p.pid t.arena ~txn:txn_id ~addr ~len:8
    ~durable:(Log.pending p.log = 0);
  (* Route the restore through the same WAL-ordered store path as forward
     writes: under Batch it must stay buffered behind the CLR's group (and
     behind any still-pending forward store to the same line). *)
  user_write t p addr restored

let rollback_one_layer t p txn_id =
  (* One-layer: no per-transaction chain — a full backward scan of the
     home partition skipping other transactions' records (the "skip
     records" of Section 5.1).  Every record of [txn_id] lives in its
     home partition, so other partitions need not be scanned.  The
     Algorithm-2 CLR bound makes the scan idempotent: resolving an
     in-doubt transaction as aborted after a crash mid-rollback must not
     re-undo already-compensated updates. *)
  let durably = t.cfg.policy = Force in
  let bound = ref max_int in
  Log.iter_back p.log (fun r ->
      if record_txn t r = txn_id then
        match record_typ t r with
        | Record.Clr -> bound := Record.undo_next t.arena r
        | Record.Update ->
            if Record.lsn t.arena r < !bound then undo_one t p txn_id r ~durably
        | Record.End | Record.Checkpoint | Record.Delete | Record.Rollback
        | Record.Prepare ->
            ())

let rollback_two_layer t p idx txn_id =
  let durably = t.cfg.policy = Force in
  match Txn_table.find p.table txn_id with
  | None -> ()
  | Some e ->
      let bound = ref max_int in
      let rec go r =
        if r <> 0 then begin
          let next = Record.prev_same_txn t.arena r in
          (* each record is retrieved through the AAVLT (Section 4.4) *)
          ignore (Avl_index.find idx (Record.lsn t.arena r));
          (match record_typ t r with
          | Record.Clr -> bound := Record.undo_next t.arena r
          | Record.Update ->
              if Record.lsn t.arena r < !bound then
                undo_one t p txn_id r ~durably
          | Record.End | Record.Checkpoint | Record.Delete | Record.Rollback
          | Record.Prepare ->
              ());
          go next
        end
      in
      go e.Txn_table.last_record

(* -- partial rollback (savepoints) ---------------------------------------

   An extension the CLR machinery supports directly (ARIES's partial
   rollbacks): a savepoint names an LSN; rolling back to it undoes the
   transaction's updates with larger LSNs, writing ordinary CLRs.  A crash
   afterwards recovers correctly with no extra machinery — Algorithm 2's
   undo bounds skip exactly the already-compensated records. *)

type savepoint = int

(* WAL: a savepoint names an LSN.  InCLL: it names a depth in the
   transaction's volatile undo journal — same int, same semantics (undo
   everything after this point). *)
let savepoint t txn_id =
  match t.incll with
  | Some _ ->
      Sim_mutex.with_lock t.incll_latch (fun () ->
          List.length !(incll_journal t txn_id))
  | None -> Sim_atomic.get t.next_lsn

let rollback_to_incll t i txn_id (sp : savepoint) =
  let to_undo =
    Sim_mutex.with_lock t.incll_latch (fun () ->
        let j = incll_journal t txn_id in
        let depth = List.length !j in
        let undo, keep =
          (* journal is newest-first: undo the first depth-sp entries *)
          let rec split n l =
            if n = 0 then ([], l)
            else
              match l with
              | [] -> ([], [])
              | x :: rest ->
                  let u, k = split (n - 1) rest in
                  (x :: u, k)
          in
          split (max 0 (depth - sp)) !j
        in
        j := keep;
        undo)
  in
  List.iter (fun (addr, old_value) -> Incll.store i ~addr ~value:old_value)
    to_undo

let rollback_to t txn_id (sp : savepoint) =
  match t.incll with
  | Some i -> rollback_to_incll t i txn_id sp
  | None ->
  let p = home t txn_id in
  Sim_mutex.with_lock p.latch (fun () ->
      let durably = t.cfg.policy = Force in
      (match p.index with
      | None ->
          (* Backward scan with the Algorithm-2 bound so repeated partial
             rollbacks never re-undo compensated updates; stop at the
             first of this transaction's records below the savepoint. *)
          let bound = ref max_int in
          Log.iter_back_while p.log (fun r ->
              if record_txn t r <> txn_id then true
              else
                let lsn = Record.lsn t.arena r in
                if lsn < sp then false
                else begin
                  (match record_typ t r with
                  | Record.Clr -> bound := Record.undo_next t.arena r
                  | Record.Update ->
                      if lsn < !bound then undo_one t p txn_id r ~durably
                  | Record.End | Record.Checkpoint | Record.Delete
                  | Record.Rollback | Record.Prepare ->
                      ());
                  true
                end)
      | Some idx -> (
          match Txn_table.find p.table txn_id with
          | None -> ()
          | Some e ->
              let bound = ref max_int in
              let rec go r =
                if r <> 0 then begin
                  let next = Record.prev_same_txn t.arena r in
                  let lsn = Record.lsn t.arena r in
                  if lsn >= sp then begin
                    (match record_typ t r with
                    | Record.Clr -> bound := Record.undo_next t.arena r
                    | Record.Update ->
                        if lsn < !bound then begin
                          ignore (Avl_index.find idx lsn);
                          undo_one t p txn_id r ~durably
                        end
                    | Record.End | Record.Checkpoint | Record.Delete
                    | Record.Rollback | Record.Prepare ->
                        ());
                    go next
                  end
                end
              in
              go e.Txn_table.last_record));
      (* deferred de-allocations requested after the savepoint are void *)
      p.deferred_deletes <-
        List.filter
          (fun (x, lsn, _, _) -> x <> txn_id || lsn < sp)
          p.deferred_deletes)

(* InCLL abort: replay the volatile journal newest-first through the
   ordinary store path (so a cell's in-line undo is re-captured if this
   is somehow its first touch of the epoch).  The journal orders restores
   correctly for multiple writes to one cell within the transaction. *)
let rollback_incll t i txn_id =
  let entries =
    Sim_mutex.with_lock t.incll_latch (fun () ->
        let j = incll_journal t txn_id in
        Hashtbl.remove t.incll_txns txn_id;
        !j)
  in
  List.iter (fun (addr, old_value) -> Incll.store i ~addr ~value:old_value)
    entries;
  t.rollbacks <- t.rollbacks + 1;
  Pmcheck.txn_settled t.arena ~txn:txn_id

let rollback t txn_id =
  match t.incll with
  | Some i -> rollback_incll t i txn_id
  | None ->
  let p = home t txn_id in
  Sim_mutex.with_lock p.latch (fun () ->
      t.rollbacks <- t.rollbacks + 1;
      (* Settle any deferred (Batch) user stores *before* undoing, or a
         stale pending store could overwrite a restored value. *)
      Log.flush_group p.log;
      drain_deferred t p;
      (match p.index with
      | None -> rollback_one_layer t p txn_id
      | Some idx -> rollback_two_layer t p idx txn_id);
      Log.flush_group p.log;
      append_end t p txn_id;
      drain_deferred t p;
      drop_deferred_deletes t p txn_id;
      (match t.cfg.policy with
      | Force -> (
          match p.index with
          | None -> clear_txn_records t p txn_id
          | Some idx -> clear_txn_index t p idx txn_id)
      | No_force -> Hashtbl.replace p.ended txn_id ());
      Pmcheck.txn_settled t.arena ~txn:txn_id)

(* -- two-phase commit: the participant side (Distributed REWIND) ----------- *)

(* PREPARE (the participant's yes-vote): make everything the transaction
   did durable — pending batch groups, deferred user stores and, under
   force, the data itself — then durably log a PREPARE record carrying
   the global transaction id in its old-value field.  From here until
   {!resolve_in_doubt} the transaction is *in doubt*: recovery neither
   undoes nor finishes it, because under presumed abort only the
   coordinator's durable decision record can settle it. *)
let prepare t txn_id ~gtid =
  if t.cfg.incll then
    invalid_arg
      "Tm.prepare: InCLL durability is epoch-granular and cannot hold a \
       single transaction in doubt";
  hot_span t "prepare" @@ fun () ->
  let p = home t txn_id in
  Sim_mutex.with_lock p.latch (fun () ->
      Log.flush_group p.log;
      drain_deferred t p;
      Arena.fence t.arena;
      (match p.index with
      | None ->
          ignore
            (Log.append_record ~is_end:true p.log ~lsn:(fresh_lsn t)
               ~txn:txn_id ~typ:Record.Prepare ~addr:0
               ~old_value:(Int64.of_int gtid) ~new_value:0L ~undo_next:0)
      | Some _ ->
          let r =
            Record.make t.alloc ~lsn:(fresh_lsn t) ~txn:txn_id
              ~typ:Record.Prepare ~addr:0 ~old_value:(Int64.of_int gtid)
              ~new_value:0L ~undo_next:0 ~prev_same_txn:0
          in
          append_user_record t p txn_id r ~is_end:true);
      (match Txn_table.find p.table txn_id with
      | Some e -> e.Txn_table.status <- Txn_table.Prepared
      | None -> ());
      Hashtbl.replace t.prepared_gtids txn_id gtid)

(* The transactions currently in doubt (live after {!prepare}, or found
   by recovery), with their global transaction ids. *)
let in_doubt t =
  List.sort compare
    (Hashtbl.fold (fun x g acc -> (x, g) :: acc) t.prepared_gtids [])

(* Settle an in-doubt transaction once the coordinator's decision is
   known.  Both outcomes reuse the ordinary settle paths; rollback's CLR
   bound makes abort resolution idempotent when a crash lands
   mid-resolution and the decision is re-applied after re-attach. *)
let resolve_in_doubt t txn_id ~commit:do_commit =
  if not (Hashtbl.mem t.prepared_gtids txn_id) then
    invalid_arg
      (Printf.sprintf "Tm.resolve_in_doubt: transaction %d is not in doubt"
         txn_id);
  if do_commit then commit t txn_id else rollback t txn_id;
  Hashtbl.remove t.prepared_gtids txn_id

(* -- checkpoint (Section 4.6) ---------------------------------------------- *)

(* Acquire every partition latch in index order (deadlock-free: the
   transaction fast paths only ever hold a single latch). *)
let rec with_all_latches t i f =
  if i >= Array.length t.parts then f ()
  else
    Sim_mutex.with_lock t.parts.(i).latch (fun () ->
        with_all_latches t (i + 1) f)

(* The InCLL epoch checkpoint — the config's replacement for both
   commit-time clearing and the cache-consistent checkpoint.  Requires
   quiescence: an advance with a transaction in flight would turn the
   new epoch boundary into a transaction-inconsistent recovery target. *)
let advance_epoch t =
  match t.incll with
  | None ->
      invalid_arg "Tm.advance_epoch: not an InCLL configuration"
  | Some i ->
      if active_transactions t > 0 then
        invalid_arg
          (Printf.sprintf
             "Tm.advance_epoch: %d transaction(s) still in flight — the \
              epoch boundary must be transaction-consistent"
             (active_transactions t));
      hot_span t "epoch-advance" (fun () -> Incll.advance i)

let current_epoch t =
  match t.incll with None -> None | Some i -> Some (Incll.epoch i)

(* Allocate transactionally-managed storage for one word.  WAL configs
   hand out a bare word; InCLL hands out a full cell line (data + in-line
   undo + epoch tag) through the durable directory.  Workloads that want
   to run unchanged across every configuration allocate through this. *)
let alloc_cell t =
  match t.incll with
  | Some i -> Incll.alloc_cell i
  | None -> Alloc.alloc t.alloc 8

let rec checkpoint t =
  match t.incll with
  | Some i ->
      (* Best-effort under load: with writers mid-transaction the advance
         must wait for the next quiescent checkpoint — skipping is always
         safe (durability is simply deferred), advancing non-quiescent
         never is. *)
      if Hashtbl.length t.incll_txns = 0 then
        hot_span t "epoch-advance" (fun () -> Incll.advance i)
  | None -> checkpoint_wal t

and checkpoint_wal t =
  hot_span t "checkpoint" @@ fun () ->
  with_all_latches t 0 (fun () ->
      hot_span t "cp-persist" (fun () ->
          (* Persist every partition's batch cursor first: otherwise
             flushed user data could refer to untrusted log slots after a
             crash.  Each partition then gets its own CHECKPOINT record
             marking the durable point, inserted before the cache
             flush. *)
          let cps =
            Array.map
              (fun p ->
                Log.flush_group p.log;
                drain_deferred t p;
                let cp =
                  Record.make t.alloc ~lsn:(fresh_lsn t) ~txn:0
                    ~typ:Record.Checkpoint ~addr:0 ~old_value:0L
                    ~new_value:0L ~undo_next:0 ~prev_same_txn:0
                in
                Log.append ~is_end:true p.log cp;
                cp)
              t.parts
          in
          Arena.flush_all t.arena;
          Arena.fence t.arena;
          (* Section 4.6: the CHECKPOINT records and every user update are
             now durable; clearing may begin. *)
          Array.iter
            (fun cp ->
              Pmcheck.expect_persisted t.arena ~addr:cp ~len:Record.size_bytes
                ~what:"checkpoint record before log clearing")
            cps);
      hot_span t "cp-clear" (fun () ->
          (* Clear settled transactions in *global* LSN order, END records
             last, across every partition.  Clearing per partition (or
             transaction by transaction, in whatever order the [ended]
             tables yield) breaks repeat history: a crash mid-clearing can
             leave transaction A's old update in one partition's log after
             transaction B's newer committed update to the same word was
             already removed from another's, and the redo pass then
             resurrects the stale value.  Each removal is one atomic
             tombstone, so a crash leaves exactly a *prefix* of the
             global-LSN-ordered removal sequence applied. *)
          let settled p = Hashtbl.fold (fun id () acc -> id :: acc) p.ended [] in
          (match t.cfg.layers with
          | One_layer ->
              let victims = ref [] in
              Array.iter
                (fun p ->
                    Log.iter_h p.log (fun h r ->
                        let x = record_txn t r in
                        if x <> 0 && Hashtbl.mem p.ended x then
                          victims :=
                            ( Record.lsn t.arena r,
                              record_typ t r = Record.End,
                              p,
                              h )
                            :: !victims))
                t.parts;
              let oldest_first =
                List.sort
                  (fun (l1, _, _, _) (l2, _, _, _) -> compare l1 l2)
                  !victims
              in
              List.iter
                (fun (_, is_end, p, h) ->
                  if not is_end then Log.remove_handle p.log h)
                oldest_first;
              List.iter
                (fun (_, is_end, p, h) ->
                  if is_end then Log.remove_handle p.log h)
                oldest_first
          | Two_layer ->
              let records = ref [] in
              Array.iter
                (fun p ->
                  match p.index with
                  | None -> ()
                  | Some idx ->
                      List.iter
                        (fun id ->
                          match Txn_table.find p.table id with
                          | None -> ()
                          | Some e ->
                              let rec collect r =
                                if r <> 0 then begin
                                  records :=
                                    (Record.lsn t.arena r, r, p, idx)
                                    :: !records;
                                  collect (Record.prev_same_txn t.arena r)
                                end
                              in
                              collect e.Txn_table.last_record)
                        (settled p))
                t.parts;
              let oldest_first =
                List.sort (fun (l1, _, _, _) (l2, _, _, _) -> compare l1 l2)
                  !records
              in
              let remove (lsn, r, _, idx) =
                ignore (Avl_index.remove idx lsn);
                Record.free t.alloc r
              in
              let ends, others =
                List.partition
                  (fun (_, r, _, _) -> record_typ t r = Record.End)
                  oldest_first
              in
              List.iter remove others;
              List.iter remove ends;
              Array.iter
                (fun p ->
                  List.iter
                    (fun id -> Txn_table.remove p.table id)
                    (settled p))
                t.parts);
          Array.iter
            (fun p ->
              List.iter (fun id -> free_deferred_deletes t p id) (settled p);
              Hashtbl.reset p.ended;
              (* The checkpoint record has served its purpose. *)
              Log.remove_where p.log (fun r ->
                  record_typ t r = Record.Checkpoint))
            t.parts);
      (* Compact any partition that clearing left mostly gaps
         (long-running transactions spanning otherwise-empty buckets,
         Section 3.3). *)
      hot_span t "cp-compact" (fun () ->
          Array.iter (fun p -> Log.compact ~threshold:0.25 p.log) t.parts))

(* -- recovery (Section 4.5) -------------------------------------------------- *)

(* Per-partition sub-span: with one partition the phase totals are the
   whole story (and the pinned profile shape stays exactly as before);
   with several, each partition's share appears as "phase/pN". *)
let part_span t prof name p f =
  if Array.length t.parts > 1 then
    Probe.span prof (Arena.stats t.arena) (Printf.sprintf "%s/p%d" name p.pid) f
  else f ()

(* K-way merge of per-partition [(lsn, payload)] streams, each ascending
   by LSN, into one globally ascending list.  The streams are small in
   number (the partition count), so a linear scan of the heads per pop is
   cheaper than a heap at this size. *)
let merge_ascending streams =
  let n = Array.length streams in
  let out = ref [] in
  let exhausted = ref false in
  while not !exhausted do
    let best = ref (-1) and best_lsn = ref max_int in
    for i = 0 to n - 1 do
      match streams.(i) with
      | (l, _) :: _ when l < !best_lsn ->
          best := i;
          best_lsn := l
      | _ -> ()
    done;
    if !best < 0 then exhausted := true
    else
      match streams.(!best) with
      | entry :: rest ->
          streams.(!best) <- rest;
          out := entry :: !out
      | [] -> assert false
  done;
  List.rev !out

(* One partition's live records as an ascending-by-LSN stream.  Append
   order within a partition is *almost* LSN order — LSNs are fetched from
   the global counter outside the latch, so two concurrent appends into
   the same partition can land inverted — hence the per-stream sort
   (cheap on nearly-sorted input) before the k-way merge relies on it. *)
let part_stream t p =
  let acc = ref [] in
  Log.iter p.log (fun r -> acc := (Record.lsn t.arena r, r) :: !acc);
  List.sort (fun (l1, _) (l2, _) -> compare l1 l2) !acc

(* The union of every partition's records in global LSN order — the
   stream the merged redo pass replays.  Exposed for the property test
   that merged redo order equals global LSN order. *)
let merged_log_records t =
  match t.cfg.layers with
  | One_layer ->
      List.map snd (merge_ascending (Array.map (part_stream t) t.parts))
  | Two_layer ->
      let streams =
        Array.map
          (fun p ->
            match p.index with
            | None -> []
            | Some idx ->
                let acc = ref [] in
                Avl_index.iter idx (fun n ->
                    let r = Avl_index.head_record idx n in
                    acc := (Record.lsn t.arena r, r) :: !acc);
                List.rev !acc)
          t.parts
      in
      List.map snd (merge_ascending streams)

(* Analysis for one-layer logging: reconstruct each partition's
   transaction table with a forward scan of that partition to the point
   of failure (a transaction's records all live in its home partition).
   The LSN and transaction-id high-water marks are global maxima over
   every partition.  Returns (records scanned, transactions found
   finished). *)
let analysis_one_layer t prof =
  let max_lsn = ref 0 and max_txn = ref 0 and scanned = ref 0 in
  Array.iter
    (fun p ->
      part_span t prof "analysis" p @@ fun () ->
      Txn_table.clear p.table;
      Log.iter p.log (fun r ->
          incr scanned;
          let lsn = Record.lsn t.arena r in
          if lsn > !max_lsn then max_lsn := lsn;
          let x = record_txn t r in
          if x > !max_txn then max_txn := x;
          if x <> 0 then begin
            let e = Txn_table.find_or_add p.table x in
            e.Txn_table.last_record <- r;
            match record_typ t r with
            | Record.End -> e.Txn_table.status <- Txn_table.Finished
            | Record.Rollback -> e.Txn_table.status <- Txn_table.Aborted
            | Record.Prepare ->
                e.Txn_table.status <- Txn_table.Prepared;
                Hashtbl.replace t.prepared_gtids x
                  (Int64.to_int (Record.old_value t.arena r))
            | Record.Update | Record.Clr | Record.Delete | Record.Checkpoint
              ->
                ()
          end))
    t.parts;
  Sim_atomic.set t.next_lsn (!max_lsn + 1);
  reseed_txn_counters t !max_txn;
  let finished = ref 0 in
  Array.iter
    (fun p ->
      Txn_table.iter p.table (fun e ->
          if e.Txn_table.status = Txn_table.Finished then incr finished))
    t.parts;
  (!scanned, !finished)

(* Redo phase (no-force only): repeat history forward in *global* LSN
   order — the k-way merge over the partition streams.  Replaying each
   partition independently would be wrong the moment two transactions in
   different partitions updated the same word: the replay order must be
   the LSN order, which is cross-partition.  Physical redo is idempotent,
   so a crash during recovery just restarts it.  Returns the number of
   records re-applied. *)
let redo_one_layer t =
  let applied = ref 0 in
  List.iter
    (fun r ->
      match record_typ t r with
      | Record.Update | Record.Clr ->
          incr applied;
          Arena.write t.arena (Record.addr t.arena r)
            (Record.new_value t.arena r)
      | Record.End | Record.Checkpoint | Record.Delete | Record.Rollback
      | Record.Prepare ->
          ())
    (merged_log_records t);
  !applied

(* Undo phase: Algorithm 2 — a single backward scan in descending global
   LSN order (the reversed merge) undoing every unfinished transaction,
   tracking per-transaction CLR bounds so that already-undone updates are
   skipped.  Each CLR lands in its transaction's home partition.  Returns
   the number of losers. *)
let undo_one_layer t =
  let durably = t.cfg.policy = Force in
  let undo_map : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let to_mark_rollback = Hashtbl.create 16 in
  let descending = List.rev (merged_log_records t) in
  List.iter
    (fun r ->
      let x = record_txn t r in
      if x <> 0 then
        let p = home t x in
        match Txn_table.find p.table x with
        | None -> ()
        | Some e -> (
            match e.Txn_table.status with
            | Txn_table.Finished -> ()
            | Txn_table.Prepared ->
                (* in doubt: the transaction voted yes and may only be
                   settled by [resolve_in_doubt] once the coordinator's
                   decision is known — leave its records untouched *)
                ()
            | Txn_table.Running | Txn_table.Aborted -> (
                if e.Txn_table.status = Txn_table.Running then begin
                  e.Txn_table.status <- Txn_table.Aborted;
                  Hashtbl.replace to_mark_rollback x ()
                end;
                match record_typ t r with
                | Record.Clr ->
                    Hashtbl.replace undo_map x (Record.undo_next t.arena r);
                    if t.cfg.policy = Force then
                      (* redo the CLR: covers a crash between the CLR and
                         its user store *)
                      Arena.nt_write t.arena (Record.addr t.arena r)
                        (Record.new_value t.arena r)
                | Record.Update ->
                    let skip =
                      match Hashtbl.find_opt undo_map x with
                      | Some bound -> Record.lsn t.arena r >= bound
                      | None -> false
                    in
                    if not skip then undo_one t p x r ~durably
                | Record.End | Record.Checkpoint | Record.Delete
                | Record.Rollback | Record.Prepare ->
                    ())))
    descending;
  (* END records for every transaction we just settled, appended to each
     loser's home partition; in-doubt transactions are not losers *)
  let losers = ref 0 in
  Array.iter
    (fun p ->
      Txn_table.iter p.table (fun e ->
          if
            e.Txn_table.status <> Txn_table.Finished
            && e.Txn_table.status <> Txn_table.Prepared
          then begin
            incr losers;
            (if Hashtbl.mem to_mark_rollback e.Txn_table.id then
               let r =
                 Record.make t.alloc ~lsn:(fresh_lsn t) ~txn:e.Txn_table.id
                   ~typ:Record.Rollback ~addr:0 ~old_value:0L ~new_value:0L
                   ~undo_next:0 ~prev_same_txn:0
               in
               Log.append p.log r);
            append_end t p e.Txn_table.id;
            e.Txn_table.status <- Txn_table.Finished
          end))
    t.parts;
  !losers

(* After analysis, [t.prepared_gtids] holds every transaction that logged
   a PREPARE; keep only those still in doubt (status [Prepared]) — a
   later END or ROLLBACK record means the outcome was already settled. *)
let prune_in_doubt t =
  let keep = Hashtbl.create 8 in
  Array.iter
    (fun p ->
      Txn_table.iter p.table (fun e ->
          if e.Txn_table.status = Txn_table.Prepared then
            Hashtbl.replace keep e.Txn_table.id
              (match Hashtbl.find_opt t.prepared_gtids e.Txn_table.id with
              | Some g -> g
              | None -> 0)))
    t.parts;
  Hashtbl.reset t.prepared_gtids;
  Hashtbl.iter (Hashtbl.replace t.prepared_gtids) keep

(* Checksum gate used by two-layer recovery before a tree-indexed record
   is interpreted: plausibly addressed, then CRC-intact. *)
let record_intact t r =
  r >= 0
  && r land (Record.size_bytes - 1) = 0
  && r + Record.size_bytes <= Arena.size t.arena
  && Record.verify t.arena r

(* Two-layer analysis + undo: the AAVLTs *are* the durable transaction
   tables, one per partition. *)
(* Two-layer recovery: each partition's AAVLT in-order traversal is that
   partition's LSN-ordered record stream; the k-way merge of the streams
   is the *global* LSN order.  Analysis rebuilds each partition's
   transaction table from the merged stream (each transaction's records
   land in its home table); redo (no-force) repeats history in merged
   LSN order; undo walks each unfinished transaction's chain within its
   home partition with the Algorithm-2 CLR bound.  Records failing their
   checksum are torn writes: they are dropped from analysis/redo, and a
   chain walk stops at the first torn link. *)
let recover_two_layer t prof =
  let pstats = Arena.stats t.arena in
  Array.iter (fun p -> Txn_table.clear p.table) t.parts;
  let torn = ref 0 in
  let count_torn () =
    incr torn;
    let s = Arena.stats t.arena in
    s.Stats.torn_records <- s.Stats.torn_records + 1
  in
  (* analysis: per-partition in-order traversals, merged by LSN *)
  let ascending, finished =
    Probe.span prof pstats "analysis" @@ fun () ->
    let streams =
      Array.map
        (fun p ->
          part_span t prof "analysis" p @@ fun () ->
          match p.index with
          | None -> []
          | Some idx ->
              let descending = ref [] in
              Avl_index.iter idx (fun n ->
                  let r = Avl_index.head_record idx n in
                  if record_intact t r then
                    descending := (Record.lsn t.arena r, r) :: !descending
                  else count_torn ());
              List.rev !descending)
        t.parts
    in
    let ascending = List.map snd (merge_ascending streams) in
    let max_lsn = ref 0 and max_txn = ref 0 in
    List.iter
      (fun r ->
        let l = Record.lsn t.arena r in
        if l > !max_lsn then max_lsn := l;
        let x = record_txn t r in
        if x > !max_txn then max_txn := x;
        if x <> 0 then begin
          let e = Txn_table.find_or_add (home t x).table x in
          e.Txn_table.last_record <- r;
          match record_typ t r with
          | Record.End -> e.Txn_table.status <- Txn_table.Finished
          | Record.Rollback -> e.Txn_table.status <- Txn_table.Aborted
          | Record.Prepare ->
              e.Txn_table.status <- Txn_table.Prepared;
              Hashtbl.replace t.prepared_gtids x
                (Int64.to_int (Record.old_value t.arena r))
          | Record.Update | Record.Clr | Record.Delete | Record.Checkpoint ->
              ()
        end)
      ascending;
    Sim_atomic.set t.next_lsn (!max_lsn + 1);
    reseed_txn_counters t !max_txn;
    let finished = ref 0 in
    Array.iter
      (fun p ->
        Txn_table.iter p.table (fun e ->
            if e.Txn_table.status = Txn_table.Finished then incr finished))
      t.parts;
    (ascending, !finished)
  in
  prune_in_doubt t;
  (* redo (no-force only): repeat history in merged LSN order *)
  let redo = ref 0 in
  if t.cfg.policy = No_force then
    Probe.span prof pstats "redo" (fun () ->
        List.iter
          (fun r ->
            match record_typ t r with
            | Record.Update | Record.Clr ->
                incr redo;
                Arena.write t.arena (Record.addr t.arena r)
                  (Record.new_value t.arena r)
            | Record.End | Record.Checkpoint | Record.Delete
            | Record.Rollback | Record.Prepare ->
                ())
          ascending);
  (* undo unfinished transactions via their back-chains, each within its
     home partition *)
  let n_losers =
    Probe.span prof pstats "undo" @@ fun () ->
    let durably = t.cfg.policy = Force in
    let total = ref 0 in
    Array.iter
      (fun p ->
        match p.index with
        | None -> ()
        | Some idx ->
            (* in-doubt (prepared) transactions are not losers: they stay
               unsettled until [resolve_in_doubt] *)
            let losers =
              List.filter
                (fun e -> e.Txn_table.status <> Txn_table.Prepared)
                (Txn_table.unfinished p.table)
            in
            total := !total + List.length losers;
            List.iter
              (fun e ->
                let x = e.Txn_table.id in
                let head = e.Txn_table.last_record in
                (* corner case: crash between the last CLR and its user
                   store *)
                (if
                   t.cfg.policy = Force && head <> 0
                   && record_typ t head = Record.Clr
                 then
                   Arena.nt_write t.arena
                     (Record.addr t.arena head)
                     (Record.new_value t.arena head));
                let bound = ref max_int in
                let rec go r =
                  if r <> 0 then
                    if not (record_intact t r) then
                      (* torn link: the chain beyond it predates the tear
                         and was settled by earlier groups — stop here *)
                      count_torn ()
                    else begin
                      let next = Record.prev_same_txn t.arena r in
                      (match record_typ t r with
                      | Record.Clr -> bound := Record.undo_next t.arena r
                      | Record.Update ->
                          if Record.lsn t.arena r < !bound then begin
                            ignore (Avl_index.find idx (Record.lsn t.arena r));
                            undo_one t p x r ~durably
                          end
                      | Record.End | Record.Checkpoint | Record.Delete
                      | Record.Rollback | Record.Prepare ->
                          ());
                      go next
                    end
                in
                go head;
                append_end t p x;
                e.Txn_table.status <- Txn_table.Finished)
              losers)
      t.parts;
    !total
  in
  Probe.span prof pstats "clearing" (fun () ->
      (* Make the redo/undo results durable *before* dropping records: a
         crash here must still find the log able to repeat history. *)
      Array.iter
        (fun p ->
          Log.flush_group p.log;
          drain_deferred t p)
        t.parts;
      Arena.flush_all t.arena;
      Arena.fence t.arena;
      (* every transaction except the in-doubt set is settled: free the
         settled records — wholesale (one atomic root swing per
         partition) when nothing is in doubt, selectively otherwise, so
         that in-doubt chains survive until [resolve_in_doubt].  Torn
         records leak, like every volatile free list across a crash. *)
      Array.iter
        (fun p ->
          part_span t prof "clearing" p @@ fun () ->
          match p.index with
          | None -> ()
          | Some idx ->
              if Hashtbl.length t.prepared_gtids = 0 then begin
                let records = ref [] in
                Avl_index.iter idx (fun n ->
                    let r = Avl_index.head_record idx n in
                    if record_intact t r then records := r :: !records);
                Avl_index.clear idx;
                List.iter (fun r -> Record.free t.alloc r) !records
              end
              else begin
                let victims = ref [] in
                Avl_index.iter idx (fun n ->
                    let r = Avl_index.head_record idx n in
                    let keep =
                      record_intact t r
                      && Hashtbl.mem t.prepared_gtids (record_txn t r)
                    in
                    if not keep then
                      victims :=
                        ( Avl_index.key idx n,
                          if record_intact t r then r else 0 )
                        :: !victims);
                List.iter
                  (fun (lsn, r) ->
                    ignore (Avl_index.remove idx lsn);
                    if r <> 0 then Record.free t.alloc r)
                  !victims
              end)
        t.parts);
  {
    records_scanned = List.length ascending;
    torn_truncated = !torn;
    redo_applied = !redo;
    txns_finished = finished;
    txns_undone = n_losers;
  }

let clear_after_recovery t =
  (* Every transaction is settled except the in-doubt set; make the
     recovered state durable, then clear the logs.  With nothing in doubt
     this is the paper's wholesale three-step swap (Section 4.5);
     otherwise clearing is selective — an in-doubt transaction's records
     (UPDATE/DELETE/PREPARE and any CLRs from an interrupted abort
     resolution) must survive until [resolve_in_doubt], across any number
     of further crashes.  Buffered Batch stores must land before the
     flush or they would be silently dropped. *)
  Array.iter
    (fun p ->
      Log.flush_group p.log;
      drain_deferred t p)
    t.parts;
  Arena.flush_all t.arena;
  Arena.fence t.arena;
  let in_doubt_txn x = Hashtbl.mem t.prepared_gtids x in
  Array.iter
    (fun p ->
      (match (t.cfg.layers, Hashtbl.length t.prepared_gtids) with
      | _, 0 ->
          Log.clear_all p.log;
          Txn_table.clear p.table
      | One_layer, _ ->
          (* tombstone everything settled, END records last (mirroring
             [clear_txn_records], so a crash mid-clearing re-attempts
             identically); one-layer resolution re-scans the log, so the
             volatile table can go *)
          Log.remove_where p.log (fun r ->
              (not (in_doubt_txn (record_txn t r)))
              && record_typ t r <> Record.End);
          Log.remove_where p.log (fun r ->
              (not (in_doubt_txn (record_txn t r)))
              && record_typ t r = Record.End);
          Txn_table.clear p.table
      | Two_layer, _ ->
          (* the bottom-layer (AAVLT-internal) log holds only settled
             internal records; in-doubt user records live in the index,
             which recovery already cleared selectively.  Keep the
             in-doubt table entries: their chains drive resolution. *)
          Log.clear_all p.log;
          let dead = ref [] in
          Txn_table.iter p.table (fun e ->
              if e.Txn_table.status <> Txn_table.Prepared then
                dead := e.Txn_table.id :: !dead);
          List.iter (fun id -> Txn_table.remove p.table id) !dead);
      Hashtbl.reset p.ended;
      p.deferred_deletes <- [];
      p.deferred <- [])
    t.parts;
  (* Rebuild the in-doubt transactions' deferred de-allocation intentions
     from their surviving DELETE records: a commit decision frees them, an
     abort drops them. *)
  if Hashtbl.length t.prepared_gtids > 0 then
    Array.iter
      (fun p ->
        let note r =
          let x = record_txn t r in
          if in_doubt_txn x && record_typ t r = Record.Delete then
            p.deferred_deletes <-
              ( x,
                Record.lsn t.arena r,
                Record.addr t.arena r,
                Int64.to_int (Record.old_value t.arena r) )
              :: p.deferred_deletes
        in
        match t.cfg.layers with
        | One_layer -> Log.iter p.log note
        | Two_layer ->
            Txn_table.iter p.table (fun e ->
                let rec go r =
                  if r <> 0 then begin
                    note r;
                    go (Record.prev_same_txn t.arena r)
                  end
                in
                go e.Txn_table.last_record))
      t.parts

let torn_truncated_logs t =
  Array.fold_left (fun acc p -> acc + Log.torn_truncated p.log) 0 t.parts

(* Recovery proper, charging each phase to [prof].  The profile gives
   every recovery its own counter scope: the arena's {!Stats} totals are
   cumulative across attach cycles, so per-phase deltas are the only way
   to report one recovery's NVM work without double-counting.  With more
   than one partition the per-partition shares additionally appear as
   "phase/pN" sub-spans. *)
let recover_with t prof =
  let pstats = Arena.stats t.arena in
  Pmcheck.recovery_begin t.arena;
  match t.incll with
  | Some i ->
      (* InCLL recovery: one pass over the durable cell directory
         rewinding every cell tagged with the crashed epoch, then an
         epoch advance that makes the rewound state the new durable
         boundary.  No analysis/redo/undo distinction — the in-line tags
         are the whole transaction table. *)
      let scanned, rolled =
        Probe.span prof pstats "epoch-scan" (fun () -> Incll.recover i)
      in
      Hashtbl.reset t.incll_txns;
      Pmcheck.recovery_end t.arena;
      t.last_recovery <-
        Some
          {
            records_scanned = scanned;
            torn_truncated = 0;
            redo_applied = 0;
            txns_finished = 0;
            txns_undone = rolled;
          };
      t.last_recovery_profile <- Some prof
  | None ->
  Hashtbl.reset t.prepared_gtids;
  let report =
    match t.cfg.layers with
    | One_layer ->
        let scanned, finished =
          Probe.span prof pstats "analysis" (fun () ->
              analysis_one_layer t prof)
        in
        prune_in_doubt t;
        let redo =
          if t.cfg.policy = No_force then
            Probe.span prof pstats "redo" (fun () -> redo_one_layer t)
          else 0
        in
        let undone =
          Probe.span prof pstats "undo" (fun () -> undo_one_layer t)
        in
        {
          records_scanned = scanned;
          torn_truncated = torn_truncated_logs t;
          redo_applied = redo;
          txns_finished = finished;
          txns_undone = undone;
        }
    | Two_layer ->
        let r = recover_two_layer t prof in
        (* the AAVLTs' internal logs may have truncated torn records too *)
        { r with torn_truncated = r.torn_truncated + torn_truncated_logs t }
  in
  Probe.span prof pstats "clearing" (fun () -> clear_after_recovery t);
  Pmcheck.recovery_end t.arena;
  t.last_recovery <- Some report;
  t.last_recovery_profile <- Some prof

let recover t = recover_with t (Probe.create ())

(* Reattach after a crash: recover each partition's log structure and
   AAVLT, then run the merged transaction recovery.  Every phase —
   including the structural log/index reattachment — is profiled; see
   {!last_recovery_profile}. *)
let attach ?(cfg = default_config) alloc ~root_slot =
  check_cfg cfg ~root_slot;
  let arena = Alloc.arena alloc in
  validate_stored_config arena cfg ~root_slot;
  let prof = Probe.create () in
  let pstats = Arena.stats arena in
  if cfg.incll then begin
    let i =
      Probe.span prof pstats "dir-attach" (fun () ->
          Incll.attach arena alloc
            ~epoch_slot:(incll_epoch_slot ~root_slot)
            ~dir_slot:(incll_dir_slot ~root_slot))
    in
    let t = make_t ~incll:i cfg alloc [||] in
    recover_with t prof;
    t
  end
  else
  let parts =
    Array.init cfg.partitions (fun pid ->
        let log =
          Probe.span prof pstats "log-attach" (fun () ->
              (if cfg.partitions > 1 then
                 Probe.span prof pstats (Printf.sprintf "log-attach/p%d" pid)
               else fun f -> f ())
              @@ fun () ->
              Log.attach cfg.variant ~bucket_cap:cfg.bucket_cap alloc
                ~root_slot:(part_log_slot ~root_slot pid))
        in
        Log.set_group_tag log pid;
        let index =
          match cfg.layers with
          | One_layer -> None
          | Two_layer ->
              Probe.span prof pstats "index-rebuild" (fun () ->
                  let root_ptr =
                    Int64.to_int
                      (Arena.root_get arena (part_index_slot ~root_slot pid))
                  in
                  let idx = Avl_index.attach alloc ~ilog:log ~root_ptr in
                  Avl_index.recover idx;
                  Some idx)
        in
        make_part cfg pid log index)
  in
  let t = make_t cfg alloc parts in
  recover_with t prof;
  t

(* -- convenience --------------------------------------------------------- *)

(* The paper's [persistent_atomic] block: commit on success, roll back on
   exception.  A simulated crash is not an exception the transaction can
   clean up after: the process it models is gone, and running [rollback]
   against the post-crash arena would durably append CLR/END records to a
   crash image whose undo stores are lost — recovery would then treat the
   half-done transaction as settled and redo its surviving updates.
   Settling the transaction is recovery's job. *)
let atomically ?home t f =
  let txn = begin_txn ?home t in
  match f txn with
  | v ->
      commit t txn;
      v
  | exception Arena.Crash -> raise Arena.Crash
  | exception e ->
      rollback t txn;
      raise e
