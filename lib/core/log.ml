(* The recoverable log (Section 3) in its three implementations:

   - [Simple]: log records are elements of the ADLL directly; every append
     is a full atomic list insertion (several non-temporal stores and
     fences).
   - [Optimized]: the hybrid layout of Section 3.3 — fixed-size buckets
     (arrays of record-pointer slots) chained through the ADLL.  Inserting
     a record is one non-temporal slot store plus a fence; buckets are
     appended to the ADLL only when the current one fills.
   - [Batch _]: Optimized plus batched persistence.  Slot stores are
     cached; every [group] records (or at an END record, or when a bucket
     fills) the pending slot lines are written back, one fence is issued,
     and the bucket's "last persistent index" word is updated with a
     non-temporal store.  Recovery trusts only slots up to that index.

   Record removal (log clearing) tombstones a slot with a single atomic
   word store; a bucket is unlinked from the ADLL when it empties.  Bucket
   occupancy and the insert cursor are volatile and reconstructed during
   the analysis phase after a crash, exactly as in the paper.

   Slot values: 0 = never used, 1 = tombstone (cleared record), low three
   bits 6/7 = the first/second word of an inline record pair (see
   {!Record.inline_encode}), otherwise the NVM address of a log record.

   Inline pairs are the bucketed variants' small-write fast path: a
   word-sized record is encoded into two adjacent slots of the bucket
   itself, so an Optimized append costs one line write-back plus one
   fence (the pair almost always shares a cacheline) instead of a record
   line write-back, a fence, a slot store and its ordering.  A pair never
   straddles a bucket boundary, and under Batch the last-persistent-index
   store happens only in [flush_group], after both words — so the trust
   rule can never expose half a pair.  A reachable pair whose second word
   is untrusted or fails its CRC is a torn record: [attach] truncates it
   exactly like a bad-checksum full record. *)

open Rewind_nvm

type variant = Simple | Optimized | Batch of int

let pp_variant ppf = function
  | Simple -> Fmt.string ppf "Simple"
  | Optimized -> Fmt.string ppf "Optimized"
  | Batch g -> Fmt.pf ppf "Batch(%d)" g

let tombstone = 1

(* Bucket layout: word 0 = last persistent index (count of trusted slots),
   words 1..cap = slots. *)
let b_idx = 0
let slot_off b i = b + 8 + (8 * i)
let bucket_bytes cap = 8 * (1 + cap)

type t = {
  variant : variant;
  bucket_cap : int;
  alloc : Alloc.t;
  arena : Arena.t;
  root_slot : int;
  mutable chain : Adll.t;  (* of records (Simple) or of buckets *)
  (* volatile cursor (bucketed variants) *)
  mutable cur_bucket : int;  (* 0 when none *)
  mutable cur_node : int;    (* ADLL node holding cur_bucket *)
  mutable next_slot : int;   (* next free slot index in cur_bucket *)
  mutable pending : int;     (* slots appended since the last persist point *)
  occupancy : (int, int ref) Hashtbl.t;  (* bucket -> live records (volatile) *)
  mutable cur_occ : int ref;
      (* the current bucket's occupancy cell, cached so the append/clear
         hot path skips the [occupancy] hash lookup *)
  mutable inline_ok : bool;  (* inline-pair encoding enabled (default) *)
  mutable inline_appended : int;  (* appends that took the inline path *)
  mutable appended : int;  (* total records ever appended (stat) *)
  mutable torn : int;  (* bad-checksum records truncated by the last attach *)
  mutable chaos_drop_group_fence : bool;
      (* test-only fault: skip the group-persistence fence, leaving the
         batch slots written back but unordered — the bug class the
         persistency sanitizer exists to catch *)
  mutable group_tag : int;
      (* partition id stamped on this log's sanitizer annotations: each
         partition's batch groups flush independently, so Group_persisted
         events must say which partition's pending coverage upgrades *)
}

let variant t = t.variant
let arena t = t.arena
let allocator t = t.alloc
let set_group_tag t g = t.group_tag <- g
let group_tag t = t.group_tag

let rd t off = Int64.to_int (Arena.read t.arena off)
let wr_nt t off v = Arena.nt_write t.arena off (Int64.of_int v)

(* Memory-locality charges for log scans: bucket slots are sequential and
   prefetch-friendly; Simple-variant nodes are chased through pointers. *)
let charge_seq t = Clock.advance (Arena.config t.arena).Config.read_seq_ns
let charge_miss t = Clock.advance (Arena.config t.arena).Config.read_miss_ns

let new_bucket t =
  (* Fresh allocation: durably zero, so 0-slots are trustworthy. *)
  let b = Alloc.alloc_fresh ~align:64 t.alloc (bucket_bytes t.bucket_cap) in
  let node = Adll.append t.chain b in
  let occ = ref 0 in
  Hashtbl.replace t.occupancy b occ;
  t.cur_occ <- occ;
  t.cur_bucket <- b;
  t.cur_node <- node;
  t.next_slot <- 0;
  b

let create variant ?(bucket_cap = 1000) alloc ~root_slot =
  let arena = Alloc.arena alloc in
  let chain = Adll.create alloc in
  Arena.root_set arena root_slot (Int64.of_int (Adll.base chain));
  let t =
    {
      variant;
      bucket_cap;
      alloc;
      arena;
      root_slot;
      chain;
      cur_bucket = 0;
      cur_node = 0;
      next_slot = 0;
      pending = 0;
      occupancy = Hashtbl.create 64;
      cur_occ = ref 0;
      inline_ok = true;
      inline_appended = 0;
      appended = 0;
      torn = 0;
      chaos_drop_group_fence = false;
      group_tag = 0;
    }
  in
  (match variant with Simple -> () | Optimized | Batch _ -> ignore (new_bucket t));
  t

let set_chaos_drop_group_fence t b = t.chaos_drop_group_fence <- b

(* -- persistence of pending batch slots -------------------------------- *)

(* Write back the pending slot lines, fence once, and advance the durable
   last-persistent-index with a non-temporal store (Section 3.3). *)
let flush_group t =
  match t.variant with
  | Batch _ when t.pending > 0 ->
      let first = slot_off t.cur_bucket (t.next_slot - t.pending) in
      let len = 8 * t.pending in
      Arena.flush_range t.arena first len;
      if not t.chaos_drop_group_fence then Arena.fence t.arena;
      (* The protocol's claim at this point (Section 3.3): every slot of
         the group is durable and fence-ordered before the
         last-persistent-index store makes them trusted. *)
      Pmcheck.expect_persisted t.arena ~addr:first ~len
        ~what:"batch group slots before last-persistent-index advance";
      wr_nt t (t.cur_bucket + b_idx) t.next_slot;
      (let s = Arena.stats t.arena in
       s.Stats.group_flushes <- s.Stats.group_flushes + 1);
      Pmcheck.group_persisted ~group:t.group_tag t.arena;
      t.pending <- 0
  | _ -> ()

(* -- append ------------------------------------------------------------ *)

let append_slot t r ~force_persist =
  if t.next_slot >= t.bucket_cap then begin
    flush_group t;
    ignore (new_bucket t)
  end;
  let b = t.cur_bucket in
  let i = t.next_slot in
  t.next_slot <- i + 1;
  incr t.cur_occ;
  (match t.variant with
  | Simple -> assert false
  | Optimized ->
      (* Fence to persist the record fields (Section 4.2), then one atomic,
         synchronous non-temporal store makes the record part of the log. *)
      Arena.fence t.arena;
      wr_nt t (slot_off b i) r
  | Batch group ->
      (* No per-record fence: the slot store stays cached until the group
         persistence point. *)
      Arena.write t.arena (slot_off b i) (Int64.of_int r);
      t.pending <- t.pending + 1;
      if force_persist || t.pending >= group then flush_group t)

(* Store an inline pair into the next two slots (raw words, no counters —
   shared by [append_pair] and compaction's re-append).  A pair never
   straddles a bucket boundary: with one slot left we roll to a fresh
   bucket and the orphan slot stays durably zero, which every scan skips
   and the Batch trust rule never covers. *)
let put_pair_slots t w0 w1 ~force_persist =
  if t.next_slot + 2 > t.bucket_cap then begin
    flush_group t;
    ignore (new_bucket t)
  end;
  let b = t.cur_bucket in
  let i = t.next_slot in
  t.next_slot <- i + 2;
  incr t.cur_occ;
  let off = slot_off b i in
  (match t.variant with
  | Simple -> assert false
  | Optimized ->
      (* The pair *is* the record: two cached stores, one write-back (two
         when the pair straddles a line — slot parity is not fixed), one
         fence.  No off-line record line, no separate slot ordering. *)
      Arena.write t.arena off (Int64.of_int w0);
      Arena.write t.arena (off + 8) (Int64.of_int w1);
      Arena.flush_line t.arena off;
      if (off + 8) lsr 6 <> off lsr 6 then Arena.flush_line t.arena (off + 8);
      Arena.fence t.arena;
      Pmcheck.expect_persisted t.arena ~addr:off ~len:16
        ~what:"inline record pair"
  | Batch group ->
      (* Both words stay cached; [flush_group] persists them and only then
         advances the last-persistent-index, so trusted slots never cut a
         pair in half.  A pair counts two slots toward the group. *)
      Arena.write t.arena off (Int64.of_int w0);
      Arena.write t.arena (off + 8) (Int64.of_int w1);
      t.pending <- t.pending + 2;
      if force_persist || t.pending >= group then flush_group t);
  (b, i)

(* A handle names the exact location of an appended record, letting its
   owner remove it later in O(1) (the AAVLT clears its own records this
   way after every tree operation). *)
type handle = Node of int | Slot of { node : int; bucket : int; slot : int }

let append_pair ?(is_end = false) t ~txn w0 w1 =
  t.appended <- t.appended + 1;
  t.inline_appended <- t.inline_appended + 1;
  let s = Arena.stats t.arena in
  s.Stats.inline_records <- s.Stats.inline_records + 1;
  let b, i = put_pair_slots t w0 w1 ~force_persist:is_end in
  if is_end && txn <> 0 && Arena.traced t.arena then
    Pmcheck.commit_point t.arena ~txn ~addr:(slot_off b i) ~len:16
      ~what:"END inline pair";
  Slot { node = t.cur_node; bucket = b; slot = i }

let append_h ?(is_end = false) t r =
  t.appended <- t.appended + 1;
  (let s = Arena.stats t.arena in
   s.Stats.full_records <- s.Stats.full_records + 1);
  let h =
    match t.variant with
    | Simple ->
        (* The record was written back by [Record.make]; fence to order it
           before the list insertion that makes it reachable. *)
        Arena.fence t.arena;
        Node (Adll.append t.chain r)
    | Optimized | Batch _ ->
        append_slot t r ~force_persist:is_end;
        Slot { node = t.cur_node; bucket = t.cur_bucket; slot = t.next_slot - 1 }
  in
  (* An END append is the transaction's commit point: the record and the
     word that makes it reachable must be durable when commit returns.
     (Txn 0 is the AAVLT's internal logging — its records are cleared
     within the enclosing atomic op, not at a transaction boundary.) *)
  (if is_end && Arena.traced t.arena then
     let txn = Record.txn t.arena r in
     if txn <> 0 then begin
       Pmcheck.commit_point t.arena ~txn ~addr:r ~len:Record.size_bytes
         ~what:"END record";
       match h with
       | Node _ -> ()
       | Slot { bucket; slot; _ } ->
           Pmcheck.commit_point t.arena ~txn ~addr:(slot_off bucket slot) ~len:8
             ~what:"END slot"
     end);
  h

let append ?(is_end = false) t r = ignore (append_h ~is_end t r)

(* Inline eligibility is per-log: bucketed variants only, and a bucket
   must fit at least one pair. *)
let inline_eligible t =
  t.inline_ok && t.bucket_cap >= 2
  && (match t.variant with Optimized | Batch _ -> true | Simple -> false)

let set_inline t b = t.inline_ok <- b
let inline_enabled t = t.inline_ok
let inline_appended t = t.inline_appended

(* Append by fields: encode inline when the record fits the compact
   format, fall back to an off-line 64-byte record otherwise.  The choice
   is invisible to readers — both come back as record refs that the
   {!Record} accessors decode. *)
let append_record ?(is_end = false) t ~lsn ~txn ~typ ~addr ~old_value
    ~new_value ~undo_next =
  match
    if inline_eligible t then
      Record.inline_encode ~lsn ~txn ~typ ~addr ~old_value ~new_value
        ~undo_next
    else None
  with
  | Some (w0, w1) -> append_pair ~is_end t ~txn w0 w1
  | None ->
      let r =
        Record.make t.alloc ~lsn ~txn ~typ ~addr ~old_value ~new_value
          ~undo_next ~prev_same_txn:0
      in
      append_h ~is_end t r

let appended t = t.appended
let torn_truncated t = t.torn

(* Slots appended but not yet persisted (Batch only; 0 otherwise). *)
let pending t = t.pending

(* -- traversal --------------------------------------------------------- *)

(* Is [v] even addressable as a record?  A slot or list element should
   only ever hold 0, the tombstone, an inline tag word, or a
   cacheline-aligned in-bounds record address — anything else is
   corruption caught before a scan dereferences it.  A media-faulty slot
   line serves garbage on {e every} read (truncation cannot stick), so
   scans must classify defensively, not just [attach]. *)
let plausible_record t v =
  v >= 0
  && v land (Record.size_bytes - 1) = 0
  && v + Record.size_bytes <= Arena.size t.arena

(* Trust the inline first word [v] at slot [i] (NVM offset [off]) only if
   its partner word is inside [bound] and the pair CRC matches. *)
let trusted_pair t ~off ~i ~bound v =
  Record.is_inline_first_word v
  && i + 1 < bound
  && Record.inline_pair_valid ~w0:v ~w1:(rd t (off + 8))

(* A full-record slot word a scan may dereference. *)
let live_record t v =
  v > tombstone && (not (Record.is_inline_word v)) && plausible_record t v

(* Number of slots of [b] that iteration may trust.  The Batch
   last-persistent-index word shares a line with the first slots, so a
   corrupted read of it must not send a scan past the bucket. *)
let bucket_bound t b =
  if b = t.cur_bucket && t.cur_bucket <> 0 then t.next_slot
  else
    match t.variant with
    | Batch _ -> max 0 (min (rd t (b + b_idx)) t.bucket_cap)
    | Optimized | Simple -> t.bucket_cap

let iter t f =
  match t.variant with
  | Simple ->
      Adll.iter t.chain (fun n ->
          charge_miss t;
          f (Adll.element t.chain n))
  | Optimized | Batch _ ->
      Adll.iter t.chain (fun n ->
          let b = Adll.element t.chain n in
          let bound = bucket_bound t b in
          let i = ref 0 in
          while !i < bound do
            charge_seq t;
            let off = slot_off b !i in
            let v = rd t off in
            if trusted_pair t ~off ~i:!i ~bound v then begin
              (* an inline pair decodes from the slot line already read *)
              f (Record.inline_ref off);
              i := !i + 2
            end
            else begin
              if live_record t v then begin
                (* examining a full record touches its own cacheline *)
                charge_miss t;
                f v
              end;
              incr i
            end
          done)

let iter_back t f =
  match t.variant with
  | Simple ->
      Adll.iter_back t.chain (fun n ->
          charge_miss t;
          f (Adll.element t.chain n))
  | Optimized | Batch _ ->
      Adll.iter_back t.chain (fun n ->
          let b = Adll.element t.chain n in
          let bound = bucket_bound t b in
          let i = ref (bound - 1) in
          while !i >= 0 do
            charge_seq t;
            let v = rd t (slot_off b !i) in
            let off1 = slot_off b (!i - 1) in
            if
              Record.is_inline_second_word v
              && !i > 0
              && trusted_pair t ~off:off1 ~i:(!i - 1) ~bound (rd t off1)
            then begin
              f (Record.inline_ref off1);
              i := !i - 2
            end
            else begin
              if live_record t v then begin
                charge_miss t;
                f v
              end;
              decr i
            end
          done)

(* Forward scan that also yields each record's removal handle, so a
   caller can collect records from several log partitions, order them
   globally (e.g. by LSN), and remove them one by one with
   {!remove_handle} — each removal one atomic tombstone, exactly like
   scan-based clearing.  The partitioned checkpoint uses this to keep
   the clearing order global across partitions. *)
let iter_h t f =
  match t.variant with
  | Simple ->
      Adll.iter t.chain (fun n ->
          charge_miss t;
          f (Node n) (Adll.element t.chain n))
  | Optimized | Batch _ ->
      Adll.iter t.chain (fun node ->
          let b = Adll.element t.chain node in
          let bound = bucket_bound t b in
          let i = ref 0 in
          while !i < bound do
            charge_seq t;
            let off = slot_off b !i in
            let v = rd t off in
            if trusted_pair t ~off ~i:!i ~bound v then begin
              f (Slot { node; bucket = b; slot = !i }) (Record.inline_ref off);
              i := !i + 2
            end
            else begin
              if live_record t v then begin
                charge_miss t;
                f (Slot { node; bucket = b; slot = !i }) v
              end;
              incr i
            end
          done)

exception Stop

(* Backward scan with early exit, used by rollback of a single
   transaction: stops once [f] returns [false]. *)
let iter_back_while t f =
  try iter_back t (fun r -> if not (f r) then raise Stop) with Stop -> ()

let length t =
  let n = ref 0 in
  iter t (fun _ -> incr n);
  !n

let is_empty t = length t = 0

let records t =
  let acc = ref [] in
  iter t (fun r -> acc := r :: !acc);
  List.rev !acc

(* -- removal (log clearing) -------------------------------------------- *)

let free_bucket t b node =
  Adll.remove t.chain node;
  Hashtbl.remove t.occupancy b;
  Alloc.free ~align:64 t.alloc b (bucket_bytes t.bucket_cap)

(* Tombstone every record satisfying [pred]; free the record memory; unlink
   buckets that become empty.  Each tombstone is one atomic word store, so a
   crash at any point leaves a well-formed log with a subset of the removals
   applied (Section 4.6). *)
let remove_where t pred =
  match t.variant with
  | Simple ->
      let victims = ref [] in
      Adll.iter t.chain (fun n ->
          if pred (Adll.element t.chain n) then victims := n :: !victims);
      (* Remove oldest-first: a crash mid-clearing then leaves a *suffix*
         of each transaction's records, which repeat-history replays to
         the correct state.  (Removing a CLR while keeping the UPDATE it
         compensates would let redo re-apply the update with nothing to
         re-undo it.) *)
      List.iter
        (fun n ->
          let r = Adll.element t.chain n in
          Adll.remove t.chain n;
          Record.free t.alloc r)
        (List.rev !victims)
  | Optimized | Batch _ ->
      let empty = ref [] in
      Adll.iter t.chain (fun node ->
          let b = Adll.element t.chain node in
          let bound = bucket_bound t b in
          (* The scan classifies every slot anyway, so re-derive the
             bucket's occupancy absolutely instead of decrementing a
             cached cell: the volatile cache is re-synced even if it had
             drifted.  The cell object is kept (not replaced) so the
             [cur_occ] alias for the current bucket stays live. *)
          let survivors = ref 0 in
          let i = ref 0 in
          while !i < bound do
            charge_seq t;
            let off = slot_off b !i in
            let v = rd t off in
            if trusted_pair t ~off ~i:!i ~bound v then begin
              (if pred (Record.inline_ref off) then begin
                 (* first word first: a crash in between leaves a stray
                    second word, which [attach] tombstones *)
                 wr_nt t off tombstone;
                 wr_nt t (off + 8) tombstone
               end
               else incr survivors);
              i := !i + 2
            end
            else begin
              (if live_record t v then
                 if pred v then begin
                   wr_nt t off tombstone;
                   Record.free t.alloc v
                 end
                 else incr survivors);
              incr i
            end
          done;
          (match Hashtbl.find_opt t.occupancy b with
          | Some c -> c := !survivors
          | None ->
              let c = ref !survivors in
              Hashtbl.replace t.occupancy b c;
              if b = t.cur_bucket then t.cur_occ <- c);
          if !survivors = 0 && b <> t.cur_bucket then
            empty := (b, node) :: !empty);
      List.iter (fun (b, node) -> free_bucket t b node) !empty

(* O(1) removal through a handle returned by [append_h].  The tombstone is
   one atomic word store, exactly like scan-based clearing. *)
let remove_handle t h =
  match h with
  | Node n ->
      let r = Adll.element t.chain n in
      Adll.remove t.chain n;
      Record.free t.alloc r
  | Slot { node; bucket; slot } ->
      let off = slot_off bucket slot in
      let v = rd t off in
      let removed =
        if Record.is_inline_first_word v then begin
          wr_nt t off tombstone;
          wr_nt t (off + 8) tombstone;
          true
        end
        else if live_record t v then begin
          wr_nt t off tombstone;
          Record.free t.alloc v;
          true
        end
        else false
      in
      if removed then
        match Hashtbl.find_opt t.occupancy bucket with
        | Some occ ->
            decr occ;
            if !occ = 0 && bucket <> t.cur_bucket then free_bucket t bucket node
        | None -> ()

(* Clear the whole log in the paper's three steps: remember the old chain,
   install a new one, then de-allocate the old (Section 4.5). *)
let clear_all t =
  let old_chain = t.chain in
  (* Capture the volatile cursor *before* the swap: the old current
     bucket of a Batch log can hold appended-but-unflushed slots past its
     durable last-persistent-index, and their records must be freed too.
     (Reading the durable index word here instead used to leak every
     pending record on each wholesale clear.) *)
  let old_cur_bucket = t.cur_bucket and old_next_slot = t.next_slot in
  let new_chain = Adll.create t.alloc in
  t.chain <- new_chain;
  Hashtbl.reset t.occupancy;
  t.cur_bucket <- 0;
  t.cur_node <- 0;
  t.next_slot <- 0;
  t.pending <- 0;
  (match t.variant with Simple -> () | Optimized | Batch _ -> ignore (new_bucket t));
  (* The atomic switch: one durable root update. *)
  Arena.root_set t.arena t.root_slot (Int64.of_int (Adll.base t.chain));
  (* De-allocate the old log wholesale — volatile free-list operations only. *)
  (match t.variant with
  | Simple ->
      Adll.iter old_chain (fun n -> Record.free t.alloc (Adll.element old_chain n))
  | Optimized | Batch _ ->
      Adll.iter old_chain (fun node ->
          let b = Adll.element old_chain node in
          (* [bucket_bound] now reflects the *new* cursor, so compute the
             old bound from the captured cursor state. *)
          let bound =
            if b = old_cur_bucket then old_next_slot
            else
              match t.variant with
              | Batch _ -> max 0 (min (rd t (b + b_idx)) t.bucket_cap)
              | Optimized | Simple -> t.bucket_cap
          in
          let i = ref 0 in
          while !i < bound do
            let off = slot_off b !i in
            let v = rd t off in
            (* inline pairs live in the bucket itself: nothing to free *)
            if trusted_pair t ~off ~i:!i ~bound v then i := !i + 2
            else begin
              if live_record t v then Record.free t.alloc v;
              incr i
            end
          done;
          Alloc.free ~align:64 t.alloc b (bucket_bytes t.bucket_cap)));
  Adll.free_structure old_chain

(* -- compaction --------------------------------------------------------- *)

(* Live records and total trusted slots, for the occupancy test. *)
let occupancy_stats t =
  match t.variant with
  | Simple ->
      let n = Adll.length t.chain in
      (n, n)
  | Optimized | Batch _ ->
      let live = ref 0 and slots = ref 0 in
      Adll.iter t.chain (fun node ->
          let b = Adll.element t.chain node in
          let bound = bucket_bound t b in
          slots := !slots + bound;
          let i = ref 0 in
          while !i < bound do
            let off = slot_off b !i in
            let v = rd t off in
            if trusted_pair t ~off ~i:!i ~bound v then begin
              (* a live pair occupies two slots *)
              live := !live + 2;
              i := !i + 2
            end
            else begin
              if live_record t v then incr live;
              incr i
            end
          done);
      (!live, !slots)

(* Section 3.3's compaction: when tombstone gaps (e.g. left by the records
   of long-running transactions spanning otherwise-empty buckets) push
   occupancy below [threshold], build a new log, copy the live records
   over, and atomically swing the root to the new head bucket.  A crash
   during compaction leaves the old log intact (the root moves last), so
   recovery sees a consistent — merely uncompacted — log. *)
let compact ?(threshold = 0.5) t =
  let live, slots = occupancy_stats t in
  if slots > 0 && float_of_int live < threshold *. float_of_int slots then begin
    match t.variant with
    | Simple -> ()  (* node-per-record: removal leaves no gaps *)
    | Optimized | Batch _ ->
        let old_chain = t.chain in
        let old_cap = t.bucket_cap in
        (* Collect survivors preserving their representation: a full
           record moves by address, an inline pair by its two raw words
           (its CRC is position-independent). *)
        let survivors = ref [] in
        Adll.iter t.chain (fun node ->
            let b = Adll.element t.chain node in
            let bound = bucket_bound t b in
            let i = ref 0 in
            while !i < bound do
              let off = slot_off b !i in
              let v = rd t off in
              if trusted_pair t ~off ~i:!i ~bound v then begin
                survivors := `Pair (v, rd t (off + 8)) :: !survivors;
                i := !i + 2
              end
              else begin
                if live_record t v then survivors := `Full v :: !survivors;
                incr i
              end
            done);
        (* build the new log off-line *)
        let new_chain = Adll.create t.alloc in
        t.chain <- new_chain;
        Hashtbl.reset t.occupancy;
        t.cur_bucket <- 0;
        t.cur_node <- 0;
        t.next_slot <- 0;
        t.pending <- 0;
        ignore (new_bucket t);
        List.iter
          (function
            | `Full r -> append_slot t r ~force_persist:false
            | `Pair (w0, w1) ->
                ignore (put_pair_slots t w0 w1 ~force_persist:false))
          (List.rev !survivors);
        flush_group t;
        (* the atomic switch *)
        Arena.root_set t.arena t.root_slot (Int64.of_int (Adll.base t.chain));
        (* de-allocate the old structure (volatile bookkeeping only; the
           records themselves moved, not their memory) *)
        Adll.iter old_chain (fun node ->
            Alloc.free ~align:64 t.alloc
              (Adll.element old_chain node)
              (bucket_bytes old_cap));
        Adll.free_structure old_chain
  end

(* -- volatile-cache invariant check (tests) ----------------------------- *)

(* Recount every bucket's live records from the durable layout and compare
   with the volatile occupancy cells and the cached [cur_occ] ref.  Returns
   the mismatches; the regression tests assert it is empty after any
   interleaving of appends, clears, checkpoints and compactions. *)
let check_occupancy t =
  match t.variant with
  | Simple -> []
  | Optimized | Batch _ ->
      let bad = ref [] in
      Adll.iter t.chain (fun node ->
          let b = Adll.element t.chain node in
          let bound = bucket_bound t b in
          let actual = ref 0 in
          let i = ref 0 in
          while !i < bound do
            let off = slot_off b !i in
            let v = rd t off in
            if trusted_pair t ~off ~i:!i ~bound v then begin
              incr actual;
              i := !i + 2
            end
            else begin
              if live_record t v then incr actual;
              incr i
            end
          done;
          let cached =
            match Hashtbl.find_opt t.occupancy b with
            | Some c -> !c
            | None -> min_int
          in
          if cached <> !actual then
            bad := (b, cached, !actual) :: !bad;
          if b = t.cur_bucket && cached <> !(t.cur_occ) then
            bad := (b, !(t.cur_occ), !actual) :: !bad);
      !bad

(* -- post-crash attachment --------------------------------------------- *)

(* Checksum-verify a reachable record during analysis; count and report a
   failure as a torn write. *)
let record_intact t v =
  let ok = plausible_record t v && Record.verify t.arena v in
  if not ok then begin
    t.torn <- t.torn + 1;
    let s = Arena.stats t.arena in
    s.Stats.torn_records <- s.Stats.torn_records + 1
  end;
  ok

(* Reconstruct the volatile cursor and occupancy from the durable image:
   recover the ADLL itself, then scan the buckets, counting live slots and
   locating the insertion point in the last bucket (the paper's analysis-
   phase reconstruction of Section 3.3).  Every reachable record is
   checksum-verified first: a record that fails is a torn write (or media
   corruption) and is truncated out of the log — tombstoned in its slot,
   or unlinked from the Simple chain — instead of being replayed as
   garbage. *)
let attach variant ?(bucket_cap = 1000) alloc ~root_slot =
  let arena = Alloc.arena alloc in
  let base = Int64.to_int (Arena.root_get arena root_slot) in
  if base = 0 then create variant ~bucket_cap alloc ~root_slot
  else begin
    let chain = Adll.attach alloc ~base in
    Adll.recover chain;
    let t =
      {
        variant;
        bucket_cap;
        alloc;
        arena;
        root_slot;
        chain;
        cur_bucket = 0;
        cur_node = 0;
        next_slot = 0;
        pending = 0;
        occupancy = Hashtbl.create 64;
        cur_occ = ref 0;
        inline_ok = true;
        inline_appended = 0;
        appended = 0;
        torn = 0;
        chaos_drop_group_fence = false;
        group_tag = 0;
      }
    in
    (match variant with
    | Simple ->
        (* Unlink torn records from the chain.  Their memory is leaked —
           a crash already leaks all volatile free lists, so recovery-time
           truncation leaks nothing extra worth tracking. *)
        let bad = ref [] in
        Adll.iter chain (fun node ->
            if not (record_intact t (Adll.element chain node)) then
              bad := node :: !bad);
        List.iter (fun node -> Adll.remove chain node) !bad
    | Optimized | Batch _ ->
        Adll.iter chain (fun node ->
            let b = Adll.element chain node in
            let bound =
              match variant with
              | Batch _ -> max 0 (min (rd t (b + b_idx)) bucket_cap)
              | Optimized | Simple -> bucket_cap
            in
            let occ = ref 0 in
            let last_used = ref (-1) in
            (* Truncate an inline word that cannot be trusted as half of a
               valid pair — the pair analogue of a bad-CRC record. *)
            let truncate_inline i =
              wr_nt t (slot_off b i) tombstone;
              t.torn <- t.torn + 1;
              let s = Arena.stats t.arena in
              s.Stats.torn_records <- s.Stats.torn_records + 1
            in
            let i = ref 0 in
            while !i < bound do
              let off = slot_off b !i in
              let v = rd t off in
              if Record.is_inline_first_word v then begin
                if
                  !i + 1 < bound
                  && Record.inline_pair_valid ~w0:v ~w1:(rd t (off + 8))
                then begin
                  incr occ;
                  last_used := !i + 1;
                  i := !i + 2
                end
                else begin
                  (* torn pair: the second word is beyond the trusted
                     bound, lost to the crash, or CRC-mismatched *)
                  truncate_inline !i;
                  last_used := !i;
                  incr i;
                  (* consume a leftover second word as part of the same
                     tear, not a second one *)
                  if
                    !i < bound
                    && Record.is_inline_second_word (rd t (slot_off b !i))
                  then begin
                    wr_nt t (slot_off b !i) tombstone;
                    last_used := !i;
                    incr i
                  end
                end
              end
              else if Record.is_inline_second_word v then begin
                (* stray second word — its first was lost to a torn
                   append or already tombstoned by an interrupted
                   removal *)
                truncate_inline !i;
                last_used := !i;
                incr i
              end
              else begin
                (if v > tombstone then begin
                   if record_intact t v then incr occ
                   else
                     (* torn write: truncate the record out of the log *)
                     wr_nt t off tombstone;
                   last_used := !i
                 end
                 else if v = tombstone then last_used := !i);
                incr i
              end
            done;
            Hashtbl.replace t.occupancy b occ;
            t.cur_occ <- occ;
            t.cur_bucket <- b;
            t.cur_node <- node;
            t.next_slot <-
              (match variant with
              | Batch _ -> bound
              | Optimized | Simple -> !last_used + 1));
        if t.cur_bucket = 0 then ignore (new_bucket t));
    t
  end
