(* The recoverable log (Section 3) in its three implementations:

   - [Simple]: log records are elements of the ADLL directly; every append
     is a full atomic list insertion (several non-temporal stores and
     fences).
   - [Optimized]: the hybrid layout of Section 3.3 — fixed-size buckets
     (arrays of record-pointer slots) chained through the ADLL.  Inserting
     a record is one non-temporal slot store plus a fence; buckets are
     appended to the ADLL only when the current one fills.
   - [Batch _]: Optimized plus batched persistence.  Slot stores are
     cached; every [group] records (or at an END record, or when a bucket
     fills) the pending slot lines are written back, one fence is issued,
     and the bucket's "last persistent index" word is updated with a
     non-temporal store.  Recovery trusts only slots up to that index.

   Record removal (log clearing) tombstones a slot with a single atomic
   word store; a bucket is unlinked from the ADLL when it empties.  Bucket
   occupancy and the insert cursor are volatile and reconstructed during
   the analysis phase after a crash, exactly as in the paper.

   Slot values: 0 = never used, 1 = tombstone (cleared record), otherwise
   the NVM address of a log record. *)

open Rewind_nvm

type variant = Simple | Optimized | Batch of int

let pp_variant ppf = function
  | Simple -> Fmt.string ppf "Simple"
  | Optimized -> Fmt.string ppf "Optimized"
  | Batch g -> Fmt.pf ppf "Batch(%d)" g

let tombstone = 1

(* Bucket layout: word 0 = last persistent index (count of trusted slots),
   words 1..cap = slots. *)
let b_idx = 0
let slot_off b i = b + 8 + (8 * i)
let bucket_bytes cap = 8 * (1 + cap)

type t = {
  variant : variant;
  bucket_cap : int;
  alloc : Alloc.t;
  arena : Arena.t;
  root_slot : int;
  mutable chain : Adll.t;  (* of records (Simple) or of buckets *)
  (* volatile cursor (bucketed variants) *)
  mutable cur_bucket : int;  (* 0 when none *)
  mutable cur_node : int;    (* ADLL node holding cur_bucket *)
  mutable next_slot : int;   (* next free slot index in cur_bucket *)
  mutable pending : int;     (* slots appended since the last persist point *)
  occupancy : (int, int ref) Hashtbl.t;  (* bucket -> live records (volatile) *)
  mutable appended : int;  (* total records ever appended (stat) *)
  mutable torn : int;  (* bad-checksum records truncated by the last attach *)
  mutable chaos_drop_group_fence : bool;
      (* test-only fault: skip the group-persistence fence, leaving the
         batch slots written back but unordered — the bug class the
         persistency sanitizer exists to catch *)
}

let variant t = t.variant
let arena t = t.arena
let allocator t = t.alloc

let rd t off = Int64.to_int (Arena.read t.arena off)
let wr_nt t off v = Arena.nt_write t.arena off (Int64.of_int v)

(* Memory-locality charges for log scans: bucket slots are sequential and
   prefetch-friendly; Simple-variant nodes are chased through pointers. *)
let charge_seq t = Clock.advance (Arena.config t.arena).Config.read_seq_ns
let charge_miss t = Clock.advance (Arena.config t.arena).Config.read_miss_ns

let new_bucket t =
  (* Fresh allocation: durably zero, so 0-slots are trustworthy. *)
  let b = Alloc.alloc_fresh ~align:64 t.alloc (bucket_bytes t.bucket_cap) in
  let node = Adll.append t.chain b in
  Hashtbl.replace t.occupancy b (ref 0);
  t.cur_bucket <- b;
  t.cur_node <- node;
  t.next_slot <- 0;
  b

let create variant ?(bucket_cap = 1000) alloc ~root_slot =
  let arena = Alloc.arena alloc in
  let chain = Adll.create alloc in
  Arena.root_set arena root_slot (Int64.of_int (Adll.base chain));
  let t =
    {
      variant;
      bucket_cap;
      alloc;
      arena;
      root_slot;
      chain;
      cur_bucket = 0;
      cur_node = 0;
      next_slot = 0;
      pending = 0;
      occupancy = Hashtbl.create 64;
      appended = 0;
      torn = 0;
      chaos_drop_group_fence = false;
    }
  in
  (match variant with Simple -> () | Optimized | Batch _ -> ignore (new_bucket t));
  t

let set_chaos_drop_group_fence t b = t.chaos_drop_group_fence <- b

(* -- persistence of pending batch slots -------------------------------- *)

(* Write back the pending slot lines, fence once, and advance the durable
   last-persistent-index with a non-temporal store (Section 3.3). *)
let flush_group t =
  match t.variant with
  | Batch _ when t.pending > 0 ->
      let first = slot_off t.cur_bucket (t.next_slot - t.pending) in
      let len = 8 * t.pending in
      Arena.flush_range t.arena first len;
      if not t.chaos_drop_group_fence then Arena.fence t.arena;
      (* The protocol's claim at this point (Section 3.3): every slot of
         the group is durable and fence-ordered before the
         last-persistent-index store makes them trusted. *)
      Pmcheck.expect_persisted t.arena ~addr:first ~len
        ~what:"batch group slots before last-persistent-index advance";
      wr_nt t (t.cur_bucket + b_idx) t.next_slot;
      Pmcheck.group_persisted t.arena;
      t.pending <- 0
  | _ -> ()

(* -- append ------------------------------------------------------------ *)

let append_slot t r ~force_persist =
  if t.next_slot >= t.bucket_cap then begin
    flush_group t;
    ignore (new_bucket t)
  end;
  let b = t.cur_bucket in
  let i = t.next_slot in
  t.next_slot <- i + 1;
  incr (Hashtbl.find t.occupancy b);
  (match t.variant with
  | Simple -> assert false
  | Optimized ->
      (* Fence to persist the record fields (Section 4.2), then one atomic,
         synchronous non-temporal store makes the record part of the log. *)
      Arena.fence t.arena;
      wr_nt t (slot_off b i) r
  | Batch group ->
      (* No per-record fence: the slot store stays cached until the group
         persistence point. *)
      Arena.write t.arena (slot_off b i) (Int64.of_int r);
      t.pending <- t.pending + 1;
      if force_persist || t.pending >= group then flush_group t)

(* A handle names the exact location of an appended record, letting its
   owner remove it later in O(1) (the AAVLT clears its own records this
   way after every tree operation). *)
type handle = Node of int | Slot of { node : int; bucket : int; slot : int }

let append_h ?(is_end = false) t r =
  t.appended <- t.appended + 1;
  let h =
    match t.variant with
    | Simple ->
        (* The record was written back by [Record.make]; fence to order it
           before the list insertion that makes it reachable. *)
        Arena.fence t.arena;
        Node (Adll.append t.chain r)
    | Optimized | Batch _ ->
        append_slot t r ~force_persist:is_end;
        Slot { node = t.cur_node; bucket = t.cur_bucket; slot = t.next_slot - 1 }
  in
  (* An END append is the transaction's commit point: the record and the
     word that makes it reachable must be durable when commit returns.
     (Txn 0 is the AAVLT's internal logging — its records are cleared
     within the enclosing atomic op, not at a transaction boundary.) *)
  (if is_end && Arena.traced t.arena then
     let txn = Record.txn t.arena r in
     if txn <> 0 then begin
       Pmcheck.commit_point t.arena ~txn ~addr:r ~len:Record.size_bytes
         ~what:"END record";
       match h with
       | Node _ -> ()
       | Slot { bucket; slot; _ } ->
           Pmcheck.commit_point t.arena ~txn ~addr:(slot_off bucket slot) ~len:8
             ~what:"END slot"
     end);
  h

let append ?(is_end = false) t r = ignore (append_h ~is_end t r)

let appended t = t.appended
let torn_truncated t = t.torn

(* Slots appended but not yet persisted (Batch only; 0 otherwise). *)
let pending t = t.pending

(* -- traversal --------------------------------------------------------- *)

(* Number of slots of [b] that iteration may trust. *)
let bucket_bound t b =
  if b = t.cur_bucket && t.cur_bucket <> 0 then t.next_slot
  else
    match t.variant with
    | Batch _ -> rd t (b + b_idx)
    | Optimized | Simple -> t.bucket_cap

let iter t f =
  match t.variant with
  | Simple ->
      Adll.iter t.chain (fun n ->
          charge_miss t;
          f (Adll.element t.chain n))
  | Optimized | Batch _ ->
      Adll.iter t.chain (fun n ->
          let b = Adll.element t.chain n in
          let bound = bucket_bound t b in
          for i = 0 to bound - 1 do
            charge_seq t;
            let v = rd t (slot_off b i) in
            if v > tombstone then begin
              (* examining a record touches its own cacheline *)
              charge_miss t;
              f v
            end
          done)

let iter_back t f =
  match t.variant with
  | Simple ->
      Adll.iter_back t.chain (fun n ->
          charge_miss t;
          f (Adll.element t.chain n))
  | Optimized | Batch _ ->
      Adll.iter_back t.chain (fun n ->
          let b = Adll.element t.chain n in
          let bound = bucket_bound t b in
          for i = bound - 1 downto 0 do
            charge_seq t;
            let v = rd t (slot_off b i) in
            if v > tombstone then begin
              charge_miss t;
              f v
            end
          done)

exception Stop

(* Backward scan with early exit, used by rollback of a single
   transaction: stops once [f] returns [false]. *)
let iter_back_while t f =
  try iter_back t (fun r -> if not (f r) then raise Stop) with Stop -> ()

let length t =
  let n = ref 0 in
  iter t (fun _ -> incr n);
  !n

let is_empty t = length t = 0

let records t =
  let acc = ref [] in
  iter t (fun r -> acc := r :: !acc);
  List.rev !acc

(* -- removal (log clearing) -------------------------------------------- *)

let free_bucket t b node =
  Adll.remove t.chain node;
  Hashtbl.remove t.occupancy b;
  Alloc.free ~align:64 t.alloc b (bucket_bytes t.bucket_cap)

(* Tombstone every record satisfying [pred]; free the record memory; unlink
   buckets that become empty.  Each tombstone is one atomic word store, so a
   crash at any point leaves a well-formed log with a subset of the removals
   applied (Section 4.6). *)
let remove_where t pred =
  match t.variant with
  | Simple ->
      let victims = ref [] in
      Adll.iter t.chain (fun n ->
          if pred (Adll.element t.chain n) then victims := n :: !victims);
      (* Remove oldest-first: a crash mid-clearing then leaves a *suffix*
         of each transaction's records, which repeat-history replays to
         the correct state.  (Removing a CLR while keeping the UPDATE it
         compensates would let redo re-apply the update with nothing to
         re-undo it.) *)
      List.iter
        (fun n ->
          let r = Adll.element t.chain n in
          Adll.remove t.chain n;
          Record.free t.alloc r)
        (List.rev !victims)
  | Optimized | Batch _ ->
      let empty = ref [] in
      Adll.iter t.chain (fun node ->
          let b = Adll.element t.chain node in
          let bound = bucket_bound t b in
          let occ =
            match Hashtbl.find_opt t.occupancy b with
            | Some c -> c
            | None ->
                let c = ref 0 in
                Hashtbl.replace t.occupancy b c;
                c
          in
          for i = 0 to bound - 1 do
            charge_seq t;
            let v = rd t (slot_off b i) in
            if v > tombstone && pred v then begin
              wr_nt t (slot_off b i) tombstone;
              decr occ;
              Record.free t.alloc v
            end
          done;
          if !occ = 0 && b <> t.cur_bucket then empty := (b, node) :: !empty);
      List.iter (fun (b, node) -> free_bucket t b node) !empty

(* O(1) removal through a handle returned by [append_h].  The tombstone is
   one atomic word store, exactly like scan-based clearing. *)
let remove_handle t h =
  match h with
  | Node n ->
      let r = Adll.element t.chain n in
      Adll.remove t.chain n;
      Record.free t.alloc r
  | Slot { node; bucket; slot } ->
      let v = rd t (slot_off bucket slot) in
      if v > tombstone then begin
        wr_nt t (slot_off bucket slot) tombstone;
        Record.free t.alloc v;
        match Hashtbl.find_opt t.occupancy bucket with
        | Some occ ->
            decr occ;
            if !occ = 0 && bucket <> t.cur_bucket then free_bucket t bucket node
        | None -> ()
      end

(* Clear the whole log in the paper's three steps: remember the old chain,
   install a new one, then de-allocate the old (Section 4.5). *)
let clear_all t =
  let old_chain = t.chain in
  let new_chain = Adll.create t.alloc in
  t.chain <- new_chain;
  Hashtbl.reset t.occupancy;
  t.cur_bucket <- 0;
  t.cur_node <- 0;
  t.next_slot <- 0;
  t.pending <- 0;
  (match t.variant with Simple -> () | Optimized | Batch _ -> ignore (new_bucket t));
  (* The atomic switch: one durable root update. *)
  Arena.root_set t.arena t.root_slot (Int64.of_int (Adll.base t.chain));
  (* De-allocate the old log wholesale — volatile free-list operations only. *)
  (match t.variant with
  | Simple ->
      Adll.iter old_chain (fun n -> Record.free t.alloc (Adll.element old_chain n))
  | Optimized | Batch _ ->
      Adll.iter old_chain (fun node ->
          let b = Adll.element old_chain node in
          (* [bucket_bound] still refers to the *old* cursor state via
             occupancy reset above, so compute the safe bound directly:
             the current bucket's cursor was captured before the swap. *)
          let bound =
            match t.variant with
            | Batch _ -> rd t (b + b_idx)
            | Optimized | Simple -> t.bucket_cap
          in
          for i = 0 to bound - 1 do
            let v = rd t (slot_off b i) in
            if v > tombstone then Record.free t.alloc v
          done;
          Alloc.free ~align:64 t.alloc b (bucket_bytes t.bucket_cap)));
  Adll.free_structure old_chain

(* -- compaction --------------------------------------------------------- *)

(* Live records and total trusted slots, for the occupancy test. *)
let occupancy_stats t =
  match t.variant with
  | Simple ->
      let n = Adll.length t.chain in
      (n, n)
  | Optimized | Batch _ ->
      let live = ref 0 and slots = ref 0 in
      Adll.iter t.chain (fun node ->
          let b = Adll.element t.chain node in
          let bound = bucket_bound t b in
          slots := !slots + bound;
          for i = 0 to bound - 1 do
            if rd t (slot_off b i) > tombstone then incr live
          done);
      (!live, !slots)

(* Section 3.3's compaction: when tombstone gaps (e.g. left by the records
   of long-running transactions spanning otherwise-empty buckets) push
   occupancy below [threshold], build a new log, copy the live records
   over, and atomically swing the root to the new head bucket.  A crash
   during compaction leaves the old log intact (the root moves last), so
   recovery sees a consistent — merely uncompacted — log. *)
let compact ?(threshold = 0.5) t =
  let live, slots = occupancy_stats t in
  if slots > 0 && float_of_int live < threshold *. float_of_int slots then begin
    match t.variant with
    | Simple -> ()  (* node-per-record: removal leaves no gaps *)
    | Optimized | Batch _ ->
        let old_chain = t.chain in
        let old_cap = t.bucket_cap in
        let survivors = ref [] in
        iter t (fun r -> survivors := r :: !survivors);
        (* build the new log off-line *)
        let new_chain = Adll.create t.alloc in
        t.chain <- new_chain;
        Hashtbl.reset t.occupancy;
        t.cur_bucket <- 0;
        t.cur_node <- 0;
        t.next_slot <- 0;
        t.pending <- 0;
        ignore (new_bucket t);
        List.iter
          (fun r -> append_slot t r ~force_persist:false)
          (List.rev !survivors);
        flush_group t;
        (* the atomic switch *)
        Arena.root_set t.arena t.root_slot (Int64.of_int (Adll.base t.chain));
        (* de-allocate the old structure (volatile bookkeeping only; the
           records themselves moved, not their memory) *)
        Adll.iter old_chain (fun node ->
            Alloc.free ~align:64 t.alloc
              (Adll.element old_chain node)
              (bucket_bytes old_cap));
        Adll.free_structure old_chain
  end

(* -- post-crash attachment --------------------------------------------- *)

(* Is [v] even addressable as a record?  A slot or list element should
   only ever hold 0, the tombstone, or a cacheline-aligned in-bounds
   record address — anything else is corruption caught before
   [Record.verify] dereferences it. *)
let plausible_record t v =
  v >= 0
  && v land (Record.size_bytes - 1) = 0
  && v + Record.size_bytes <= Arena.size t.arena

(* Checksum-verify a reachable record during analysis; count and report a
   failure as a torn write. *)
let record_intact t v =
  let ok = plausible_record t v && Record.verify t.arena v in
  if not ok then begin
    t.torn <- t.torn + 1;
    let s = Arena.stats t.arena in
    s.Stats.torn_records <- s.Stats.torn_records + 1
  end;
  ok

(* Reconstruct the volatile cursor and occupancy from the durable image:
   recover the ADLL itself, then scan the buckets, counting live slots and
   locating the insertion point in the last bucket (the paper's analysis-
   phase reconstruction of Section 3.3).  Every reachable record is
   checksum-verified first: a record that fails is a torn write (or media
   corruption) and is truncated out of the log — tombstoned in its slot,
   or unlinked from the Simple chain — instead of being replayed as
   garbage. *)
let attach variant ?(bucket_cap = 1000) alloc ~root_slot =
  let arena = Alloc.arena alloc in
  let base = Int64.to_int (Arena.root_get arena root_slot) in
  if base = 0 then create variant ~bucket_cap alloc ~root_slot
  else begin
    let chain = Adll.attach alloc ~base in
    Adll.recover chain;
    let t =
      {
        variant;
        bucket_cap;
        alloc;
        arena;
        root_slot;
        chain;
        cur_bucket = 0;
        cur_node = 0;
        next_slot = 0;
        pending = 0;
        occupancy = Hashtbl.create 64;
        appended = 0;
        torn = 0;
        chaos_drop_group_fence = false;
      }
    in
    (match variant with
    | Simple ->
        (* Unlink torn records from the chain.  Their memory is leaked —
           a crash already leaks all volatile free lists, so recovery-time
           truncation leaks nothing extra worth tracking. *)
        let bad = ref [] in
        Adll.iter chain (fun node ->
            if not (record_intact t (Adll.element chain node)) then
              bad := node :: !bad);
        List.iter (fun node -> Adll.remove chain node) !bad
    | Optimized | Batch _ ->
        Adll.iter chain (fun node ->
            let b = Adll.element chain node in
            let bound =
              match variant with
              | Batch _ -> rd t (b + b_idx)
              | Optimized | Simple -> bucket_cap
            in
            let occ = ref 0 in
            let last_used = ref (-1) in
            for i = 0 to bound - 1 do
              let v = rd t (slot_off b i) in
              if v > tombstone then begin
                if record_intact t v then incr occ
                else
                  (* torn write: truncate the record out of the log *)
                  wr_nt t (slot_off b i) tombstone;
                last_used := i
              end
              else if v = tombstone then last_used := i
            done;
            Hashtbl.replace t.occupancy b occ;
            t.cur_bucket <- b;
            t.cur_node <- node;
            t.next_slot <-
              (match variant with
              | Batch _ -> bound
              | Optimized | Simple -> !last_used + 1));
        if t.cur_bucket = 0 then ignore (new_bucket t));
    t
  end
