(* Distributed logging (Section 5.3 and Pelley et al. [24]): a group of
   independent transaction managers over one persistent heap, one log per
   partition.  The paper leaves the choice to the user — "a single
   transaction manager for all transactions dictates a shared log; while a
   per-transaction manager implies a distributed log" — and Figure 11
   shows the distributed log recovering almost all of the shared log's
   contention cost.  This module packages that pattern: partition routing,
   group checkpoint, and whole-group crash recovery.

   Transactions must not span partitions (each partition recovers
   independently); route related work to one partition. *)


type t = { cfg : Tm.config; tms : Tm.t array }

(* Each group member's root-slot footprint: one config-fingerprint slot
   plus two slots (log anchor + two-layer index) per internal partition. *)
let slots_per_member cfg = 1 + (2 * cfg.Tm.partitions)

let create ?(cfg = Tm.default_config) alloc ~root_slot ~partitions =
  if partitions < 1 then invalid_arg "Tm_group.create: partitions";
  {
    cfg;
    tms =
      Array.init partitions (fun p ->
          Tm.create ~cfg alloc ~root_slot:(root_slot + (slots_per_member cfg * p)));
  }

(* Reattach after a crash: every partition runs its own recovery. *)
let attach ?(cfg = Tm.default_config) alloc ~root_slot ~partitions =
  {
    cfg;
    tms =
      Array.init partitions (fun p ->
          Tm.attach ~cfg alloc ~root_slot:(root_slot + (slots_per_member cfg * p)));
  }

let partitions t = Array.length t.tms

(* Stable routing of a key (thread id, terminal id, shard key) to its
   partition's manager. *)
let tm_for t key = t.tms.(abs key mod Array.length t.tms)
let tm t p = t.tms.(p)

let begin_txn t ~partition =
  let tm = tm_for t partition in
  (tm, Tm.begin_txn tm)

let atomically t ~partition f =
  let tm = tm_for t partition in
  Tm.atomically tm (fun txn -> f tm txn)

let checkpoint_all t = Array.iter Tm.checkpoint t.tms

let commits t = Array.fold_left (fun a tm -> a + Tm.commits tm) 0 t.tms
let rollbacks t = Array.fold_left (fun a tm -> a + Tm.rollbacks tm) 0 t.tms
