(* The transaction table (Section 4.1).

   Volatile by design: REWIND reconstructs it during recovery in every
   configuration (one-layer logging does not even maintain it while
   logging; the two-layer configuration mirrors it in the AAVLT nodes).
   Entries carry the transaction's status, its most recent record and the
   next record to undo. *)

type status = Running | Aborted | Prepared | Finished

let pp_status ppf s =
  Fmt.string ppf
    (match s with
    | Running -> "RUNNING"
    | Aborted -> "ABORTED"
    | Prepared -> "PREPARED"
    | Finished -> "FINISHED")

type entry = {
  id : int;
  mutable status : status;
  mutable last_record : int;  (* NVM address of the latest record; 0 if none *)
  mutable undo_next : int;    (* LSN bound: records >= this are already undone *)
}

type t = { entries : (int, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }
let clear t = Hashtbl.reset t.entries

let find_or_add t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> e
  | None ->
      let e = { id; status = Running; last_record = 0; undo_next = max_int } in
      Hashtbl.add t.entries id e;
      e

let find t id = Hashtbl.find_opt t.entries id
let iter t f = Hashtbl.iter (fun _ e -> f e) t.entries
let remove t id = Hashtbl.remove t.entries id
let size t = Hashtbl.length t.entries

let unfinished t =
  Hashtbl.fold
    (fun _ e acc -> if e.status <> Finished then e :: acc else acc)
    t.entries []
