(* Public facade of the REWIND library.

   Typical use:

   {[
     open Rewind
     let arena = Nvm.Arena.create ~size_bytes:(64 * 1024 * 1024) ()
     let alloc = Nvm.Alloc.create arena
     let tm = Tm.create alloc ~root_slot:2
     let cell = Nvm.Alloc.alloc alloc 8

     let () =
       Tm.atomically tm (fun txn ->
           Tm.write tm txn ~addr:cell ~value:42L)
   ]}

   After a crash, reattach with [Tm.attach] (same config and root slot):
   recovery restores every committed update and rolls back the rest. *)

module Record = Record
module Adll = Adll
module Log = Log
module Avl_index = Avl_index
module Txn_table = Txn_table
module Tm = Tm

module Autotune = Autotune
module Tm_group = Tm_group

type config = Tm.config = {
  policy : Tm.policy;
  layers : Tm.layers;
  variant : Log.variant;
  bucket_cap : int;
  lockfree_latch : bool;
  partitions : int;
  incll : bool;
}

(* The paper's named configurations. *)
let config_1l_nfp = Tm.default_config
let config_1l_fp = { Tm.default_config with policy = Tm.Force }
let config_2l_nfp = { Tm.default_config with layers = Tm.Two_layer }

let config_2l_fp =
  { Tm.default_config with layers = Tm.Two_layer; policy = Tm.Force }

(* The paper's named log implementations (one-layer, no-force). *)
let config_simple = { Tm.default_config with variant = Log.Simple }
let config_optimized = { Tm.default_config with variant = Log.Optimized }
let config_batch ?(group = 8) () =
  { Tm.default_config with variant = Log.Batch group }

(* Section 7 future work: the lock-free log variant. *)
let config_lockfree ?(group = 8) () =
  { Tm.default_config with variant = Log.Batch group; lockfree_latch = true }

(* In-cache-line logging (Cohen et al., ASPLOS'19): epoch-granular group
   durability, no WAL at all.  One partition, one layer by construction. *)
let config_incll = { Tm.default_config with incll = true }

(* Shard any configuration's log into [n] partitions (Section 4.7). *)
let with_partitions n cfg = { cfg with partitions = n }

(* Every named configuration the tooling accepts, in presentation order.
   Single source of truth for the CLI's [--config] parser, its help and
   error text, and the README's configuration table — extend here and
   every consumer picks the new name up. *)
let named_configs : (string * string * (unit -> config)) list =
  [
    ("1l-nfp", "one-layer, no-force (the default)", fun () -> config_1l_nfp);
    ("1l-fp", "one-layer, force", fun () -> config_1l_fp);
    ("2l-nfp", "two-layer, no-force", fun () -> config_2l_nfp);
    ("2l-fp", "two-layer, force", fun () -> config_2l_fp);
    ("simple", "Simple log (doubly-linked list)", fun () -> config_simple);
    ( "optimized",
      "Optimized log (singly-linked, combined records)",
      fun () -> config_optimized );
    ("batch", "Batch log, group commit of 8", fun () -> config_batch ());
    ( "lockfree",
      "Batch log with CAS appends instead of a latch",
      fun () -> config_lockfree () );
    ( "incll",
      "in-cache-line logging, epoch-granular durability (no WAL)",
      fun () -> config_incll );
  ]

let config_names = List.map (fun (n, _, _) -> n) named_configs

let config_of_name name =
  match
    List.find_opt (fun (n, _, _) -> String.equal n name) named_configs
  with
  | Some (_, _, mk) -> Some (mk ())
  | None -> None

let all_figure3_configs =
  [
    ("2L-FP", config_2l_fp);
    ("2L-NFP", config_2l_nfp);
    ("1L-FP", config_1l_fp);
    ("1L-NFP", config_1l_nfp);
  ]
