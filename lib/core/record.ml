(* Log records.

   A record occupies exactly one 64-byte cacheline (eight words), so that
   creating one "off-line" — cached stores followed by a single write-back —
   costs one NVM write before it is atomically linked into the log.  The
   fields mirror ARIES/REWIND: LSN, transaction id, record type, affected
   address, before/after images, the undo-next pointer used by CLRs, and
   the previous-record-of-same-transaction chain used by two-layer logging.

   The type word carries the record's CRC-32 in its upper half (the type
   code needs only the lower half): recovery verifies it before
   interpreting any field, so a torn or media-corrupted line is detected
   and truncated instead of being replayed as garbage.

   Records are manipulated by NVM address (an [int] arena offset). *)

open Rewind_nvm

type typ =
  | Update
  | Clr
  | End
  | Checkpoint
  | Delete
  | Rollback
  | Prepare

let int_of_typ = function
  | Update -> 1
  | Clr -> 2
  | End -> 3
  | Checkpoint -> 4
  | Delete -> 5
  | Rollback -> 6
  | Prepare -> 7

let typ_of_int = function
  | 1 -> Update
  | 2 -> Clr
  | 3 -> End
  | 4 -> Checkpoint
  | 5 -> Delete
  | 6 -> Rollback
  | 7 -> Prepare
  | n -> Fmt.invalid_arg "Record.typ_of_int: %d" n

let pp_typ ppf t =
  Fmt.string ppf
    (match t with
    | Update -> "UPDATE"
    | Clr -> "CLR"
    | End -> "END"
    | Checkpoint -> "CHECKPOINT"
    | Delete -> "DELETE"
    | Rollback -> "ROLLBACK"
    | Prepare -> "PREPARE")

let size_bytes = 64

(* Word offsets within a record. *)
let o_lsn = 0
let o_txn = 8
let o_typ = 16
let o_addr = 24
let o_old = 32
let o_new = 40
let o_undo_next = 48
let o_prev_same_txn = 56

(* CRC-32 of the record image with the checksum half of the type word held
   at zero.  Fed word-by-word through {!Crc32.update_int64} — bit-for-bit
   the digest of the 64-byte little-endian image, with no [Bytes]
   allocation on the append path. *)
let image_crc ~lsn ~txn ~typw ~addr ~old_value ~new_value ~undo_next
    ~prev_same_txn =
  let c = Crc32.init in
  let c = Crc32.update_int64 c lsn in
  let c = Crc32.update_int64 c txn in
  let c = Crc32.update_int64 c (Int64.logand typw 0xFFFFFFFFL) in
  let c = Crc32.update_int64 c addr in
  let c = Crc32.update_int64 c old_value in
  let c = Crc32.update_int64 c new_value in
  let c = Crc32.update_int64 c undo_next in
  let c = Crc32.update_int64 c prev_same_txn in
  Crc32.finish c

(* -- inline compact records --------------------------------------------- *)

(* A small record — word-sized before/after images, which covers one-layer
   UPDATE/CLR/END records and every AAVLT-internal record — can be encoded
   directly into a tagged *pair of adjacent bucket slots* instead of a
   heap-allocated 64-byte line.  Slot values are otherwise 0 (never used),
   1 (tombstone) or a 64-byte-aligned record address, so the low three
   bits of a slot word are free: tag 6 (0b110) marks the first word of a
   pair, tag 7 (0b111) the second.  Both words keep bits 62-63 zero, so
   they survive the arena's [Int64.to_int] round-trip as non-negative
   OCaml ints and never compare as record addresses.

   word 0:  [2:0]=6  [3]=fmt  [5:4]=typ  [21:6]=crc16  [61:22]=payload
   word 1:  [2:0]=7  [29:3]=addr/8  [45:30]=a16  [61:46]=b16

   fmt 0 ("user"):     payload = txn(14 bits) | lsn(26 bits) << 14;
                       UPDATE/END: a16 = old value, b16 = new value;
                       CLR: a16 = undo-next LSN, b16 = new (restored)
                       value — a CLR's old value is write-only throughout
                       the system, so it is not stored and decodes as 0.
   fmt 1 ("internal"): an AAVLT record (txn 0, lsn 0); payload =
                       old[35:16](20 bits) | new[35:16](20 bits) << 20,
                       a16/b16 = the low halves — 36-bit images cover
                       node pointers, keys and heights.

   crc16 is the folded CRC-32 of the pair with the crc field zeroed; a
   pair whose second word is missing, untrusted or mismatched is a torn
   record, truncated by recovery exactly like a bad-CRC full record.

   An inline record is addressed by an *inline ref*: the NVM address of
   its first slot word with the low bit set.  Slot offsets are 8-aligned
   and real record addresses 64-aligned, so refs are odd and unambiguous;
   every accessor below branches on the tag bit, which keeps the
   recovery/rollback algorithms in [Tm] format-agnostic. *)

module Inline = struct
  let tag_first = 6
  let tag_second = 7

  (* Slot-word classification (on values read back as OCaml ints).
     Garbage with bit 62 of the NVM word set reads back negative and is
     rejected here before any field is interpreted. *)
  let is_first_word w = w >= 0 && w land 7 = tag_first
  let is_second_word w = w >= 0 && w land 7 = tag_second
  let is_inline_word w = w >= 0 && w land 7 >= tag_first

  let typ2_of_typ = function
    | Update -> Some 0
    | Clr -> Some 1
    | End -> Some 2
    | Checkpoint | Delete | Rollback | Prepare -> None

  let typ_of_typ2 = function
    | 0 -> Update
    | 1 -> Clr
    | 2 -> End
    | n -> Fmt.invalid_arg "Record.Inline.typ_of_typ2: %d" n

  let crc16 ~w0 ~w1 =
    let w0z = w0 land lnot (0xFFFF lsl 6) in
    let c =
      Crc32.finish
        (Crc32.update_int64
           (Crc32.update_int64 Crc32.init (Int64.of_int w0z))
           (Int64.of_int w1))
    in
    (c lxor (c lsr 16)) land 0xFFFF

  (* field extraction *)
  let fmt w0 = (w0 lsr 3) land 1
  let typ2 w0 = (w0 lsr 4) land 3
  let stored_crc w0 = (w0 lsr 6) land 0xFFFF
  let payload w0 = w0 lsr 22
  let addr_of w1 = ((w1 lsr 3) land 0x7FFFFFF) lsl 3
  let a16 w1 = (w1 lsr 30) land 0xFFFF
  let b16 w1 = (w1 lsr 46) land 0xFFFF

  let valid ~w0 ~w1 =
    is_first_word w0 && is_second_word w1 && crc16 ~w0 ~w1 = stored_crc w0

  let fits n bits = n >= 0 && n lsr bits = 0
  let fits64 v bits =
    Int64.compare v 0L >= 0
    && Int64.compare v (Int64.shift_left 1L bits) < 0

  (* Encode, or [None] when any field exceeds the compact format — the
     caller falls back to a full record, so eligibility is pure policy. *)
  let encode ~lsn ~txn ~typ ~addr ~old_value ~new_value ~undo_next =
    match typ2_of_typ typ with
    | None -> None
    | Some t2 ->
        if not (addr >= 0 && addr land 7 = 0 && fits (addr lsr 3) 27) then None
        else
          let pack ~fmt ~payload ~a16 ~b16 =
            let w0 = tag_first lor (fmt lsl 3) lor (t2 lsl 4) lor (payload lsl 22) in
            let w1 =
              tag_second lor ((addr lsr 3) lsl 3) lor (a16 lsl 30) lor (b16 lsl 46)
            in
            Some (w0 lor (crc16 ~w0 ~w1 lsl 6), w1)
          in
          let internal =
            txn = 0 && lsn = 0 && undo_next = 0
            && (typ = Update || typ = End)
            && fits64 old_value 36 && fits64 new_value 36
          in
          if internal then
            let ov = Int64.to_int old_value and nv = Int64.to_int new_value in
            pack ~fmt:1
              ~payload:((ov lsr 16) lor ((nv lsr 16) lsl 20))
              ~a16:(ov land 0xFFFF) ~b16:(nv land 0xFFFF)
          else if not (fits txn 14 && fits lsn 26) then None
          else
            let payload = txn lor (lsn lsl 14) in
            match typ with
            | Clr ->
                (* the old value is write-only: dropped, decodes as 0 *)
                if fits undo_next 16 && fits64 new_value 16 then
                  pack ~fmt:0 ~payload ~a16:undo_next
                    ~b16:(Int64.to_int new_value)
                else None
            | Update | End ->
                if undo_next = 0 && fits64 old_value 16 && fits64 new_value 16
                then
                  pack ~fmt:0 ~payload ~a16:(Int64.to_int old_value)
                    ~b16:(Int64.to_int new_value)
                else None
            | Checkpoint | Delete | Rollback | Prepare -> None
end

(* An inline ref is the pair's first-slot address with the low bit set. *)
let is_inline r = r land 1 = 1
let inline_ref pair_addr = pair_addr lor 1
let inline_pair r = r land lnot 1

let iw0 a r = Int64.to_int (Arena.read a (inline_pair r))
let iw1 a r = Int64.to_int (Arena.read a (inline_pair r + 8))

let lsn a r =
  if is_inline r then
    let w0 = iw0 a r in
    if Inline.fmt w0 = 1 then 0 else (Inline.payload w0 lsr 14) land 0x3FFFFFF
  else Int64.to_int (Arena.read a (r + o_lsn))

let txn a r =
  if is_inline r then
    let w0 = iw0 a r in
    if Inline.fmt w0 = 1 then 0 else Inline.payload w0 land 0x3FFF
  else Int64.to_int (Arena.read a (r + o_txn))

let typ a r =
  if is_inline r then Inline.typ_of_typ2 (Inline.typ2 (iw0 a r))
  else
    typ_of_int (Int64.to_int (Int64.logand (Arena.read a (r + o_typ)) 0xFFFFFFFFL))

let addr a r =
  if is_inline r then Inline.addr_of (iw1 a r)
  else Int64.to_int (Arena.read a (r + o_addr))

let old_value a r =
  if is_inline r then
    let w0 = iw0 a r in
    if Inline.fmt w0 = 1 then
      Int64.of_int (((Inline.payload w0 land 0xFFFFF) lsl 16) lor Inline.a16 (iw1 a r))
    else
      match Inline.typ2 w0 with
      | 1 (* Clr: old value not stored *) -> 0L
      | _ -> Int64.of_int (Inline.a16 (iw1 a r))
  else Arena.read a (r + o_old)

let new_value a r =
  if is_inline r then
    let w0 = iw0 a r in
    if Inline.fmt w0 = 1 then
      Int64.of_int
        ((((Inline.payload w0 lsr 20) land 0xFFFFF) lsl 16) lor Inline.b16 (iw1 a r))
    else Int64.of_int (Inline.b16 (iw1 a r))
  else Arena.read a (r + o_new)

let undo_next a r =
  if is_inline r then
    let w0 = iw0 a r in
    if Inline.fmt w0 = 0 && Inline.typ2 w0 = 1 then Inline.a16 (iw1 a r) else 0
  else Int64.to_int (Arena.read a (r + o_undo_next))

let prev_same_txn a r =
  if is_inline r then 0
  else Int64.to_int (Arena.read a (r + o_prev_same_txn))

(* Re-exported word predicates, used by the log's pair-aware scans. *)
let is_inline_first_word = Inline.is_first_word
let is_inline_second_word = Inline.is_second_word
let is_inline_word = Inline.is_inline_word
let inline_pair_valid ~w0 ~w1 = Inline.valid ~w0 ~w1
let inline_encode = Inline.encode

let pack_typ_word ~typw ~crc =
  Int64.logor
    (Int64.logand typw 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int crc) 32)

let checksum a r =
  if is_inline r then Inline.stored_crc (iw0 a r)
  else Int64.to_int (Int64.shift_right_logical (Arena.read a (r + o_typ)) 32)

(* Recompute the CRC from the record as currently readable and compare it
   with the stored one.  Interprets no field, so it is safe on garbage. *)
let verify a r =
  if is_inline r then Inline.valid ~w0:(iw0 a r) ~w1:(iw1 a r)
  else
    let w o = Arena.read a (r + o) in
    let typw = w o_typ in
    let stored = Int64.to_int (Int64.shift_right_logical typw 32) in
    stored
    = image_crc ~lsn:(w o_lsn) ~txn:(w o_txn) ~typw ~addr:(w o_addr)
        ~old_value:(w o_old) ~new_value:(w o_new) ~undo_next:(w o_undo_next)
        ~prev_same_txn:(w o_prev_same_txn)

(* Create a record with cached stores and one write-back.  No fence is
   issued here: the caller decides when the record must be ordered before
   subsequent writes (immediately for Simple/Optimized logging; at the
   group boundary for Batch logging). *)
let make alloc ~lsn:l ~txn:x ~typ:t ~addr:ad ~old_value:ov ~new_value:nv
    ~undo_next:un ~prev_same_txn:pv =
  let a = Alloc.arena alloc in
  let r = Alloc.alloc ~align:size_bytes alloc size_bytes in
  let typw = Int64.of_int (int_of_typ t) in
  let crc =
    image_crc ~lsn:(Int64.of_int l) ~txn:(Int64.of_int x) ~typw
      ~addr:(Int64.of_int ad) ~old_value:ov ~new_value:nv
      ~undo_next:(Int64.of_int un) ~prev_same_txn:(Int64.of_int pv)
  in
  Arena.write a (r + o_lsn) (Int64.of_int l);
  Arena.write a (r + o_txn) (Int64.of_int x);
  Arena.write a (r + o_typ) (pack_typ_word ~typw ~crc);
  Arena.write a (r + o_addr) (Int64.of_int ad);
  Arena.write a (r + o_old) ov;
  Arena.write a (r + o_new) nv;
  Arena.write a (r + o_undo_next) (Int64.of_int un);
  Arena.write a (r + o_prev_same_txn) (Int64.of_int pv);
  Arena.flush_line a r;
  r

(* Durable update of the same-transaction back-chain; only legal while the
   record is not yet reachable from the log or an index chain.  The
   checksum covers the chain pointer, so it is rewritten too — same
   cacheline, so the NVM charge write-combines with the pointer store. *)
let set_prev_same_txn a r v =
  if is_inline r then
    invalid_arg "Record.set_prev_same_txn: inline records carry no chain";
  Arena.nt_write a (r + o_prev_same_txn) (Int64.of_int v);
  let w o = Arena.read a (r + o) in
  let typw = w o_typ in
  let crc =
    image_crc ~lsn:(w o_lsn) ~txn:(w o_txn) ~typw ~addr:(w o_addr)
      ~old_value:(w o_old) ~new_value:(w o_new) ~undo_next:(w o_undo_next)
      ~prev_same_txn:(Int64.of_int v)
  in
  Arena.nt_write a (r + o_typ) (pack_typ_word ~typw ~crc)

(* Inline records live in their bucket's slots: nothing to free. *)
let free alloc r =
  if not (is_inline r) then Alloc.free ~align:size_bytes alloc r size_bytes

let pp arena ppf r =
  Fmt.pf ppf "@[<h>#%d %a txn=%d addr=%d old=%Ld new=%Ld undo_next=%d@]"
    (lsn arena r) pp_typ (typ arena r) (txn arena r) (addr arena r)
    (old_value arena r) (new_value arena r) (undo_next arena r)
