(* Log records.

   A record occupies exactly one 64-byte cacheline (eight words), so that
   creating one "off-line" — cached stores followed by a single write-back —
   costs one NVM write before it is atomically linked into the log.  The
   fields mirror ARIES/REWIND: LSN, transaction id, record type, affected
   address, before/after images, the undo-next pointer used by CLRs, and
   the previous-record-of-same-transaction chain used by two-layer logging.

   The type word carries the record's CRC-32 in its upper half (the type
   code needs only the lower half): recovery verifies it before
   interpreting any field, so a torn or media-corrupted line is detected
   and truncated instead of being replayed as garbage.

   Records are manipulated by NVM address (an [int] arena offset). *)

open Rewind_nvm

type typ =
  | Update
  | Clr
  | End
  | Checkpoint
  | Delete
  | Rollback

let int_of_typ = function
  | Update -> 1
  | Clr -> 2
  | End -> 3
  | Checkpoint -> 4
  | Delete -> 5
  | Rollback -> 6

let typ_of_int = function
  | 1 -> Update
  | 2 -> Clr
  | 3 -> End
  | 4 -> Checkpoint
  | 5 -> Delete
  | 6 -> Rollback
  | n -> Fmt.invalid_arg "Record.typ_of_int: %d" n

let pp_typ ppf t =
  Fmt.string ppf
    (match t with
    | Update -> "UPDATE"
    | Clr -> "CLR"
    | End -> "END"
    | Checkpoint -> "CHECKPOINT"
    | Delete -> "DELETE"
    | Rollback -> "ROLLBACK")

let size_bytes = 64

(* Word offsets within a record. *)
let o_lsn = 0
let o_txn = 8
let o_typ = 16
let o_addr = 24
let o_old = 32
let o_new = 40
let o_undo_next = 48
let o_prev_same_txn = 56

let lsn a r = Int64.to_int (Arena.read a (r + o_lsn))
let txn a r = Int64.to_int (Arena.read a (r + o_txn))

let typ a r =
  typ_of_int (Int64.to_int (Int64.logand (Arena.read a (r + o_typ)) 0xFFFFFFFFL))

let addr a r = Int64.to_int (Arena.read a (r + o_addr))
let old_value a r = Arena.read a (r + o_old)
let new_value a r = Arena.read a (r + o_new)
let undo_next a r = Int64.to_int (Arena.read a (r + o_undo_next))
let prev_same_txn a r = Int64.to_int (Arena.read a (r + o_prev_same_txn))

(* CRC-32 of the record image with the checksum half of the type word held
   at zero.  Computed from raw words so creation and verification agree
   bit-for-bit. *)
let image_crc ~lsn ~txn ~typw ~addr ~old_value ~new_value ~undo_next
    ~prev_same_txn =
  let b = Bytes.create size_bytes in
  Bytes.set_int64_le b o_lsn lsn;
  Bytes.set_int64_le b o_txn txn;
  Bytes.set_int64_le b o_typ (Int64.logand typw 0xFFFFFFFFL);
  Bytes.set_int64_le b o_addr addr;
  Bytes.set_int64_le b o_old old_value;
  Bytes.set_int64_le b o_new new_value;
  Bytes.set_int64_le b o_undo_next undo_next;
  Bytes.set_int64_le b o_prev_same_txn prev_same_txn;
  Crc32.digest_bytes b

let pack_typ_word ~typw ~crc =
  Int64.logor
    (Int64.logand typw 0xFFFFFFFFL)
    (Int64.shift_left (Int64.of_int crc) 32)

let checksum a r =
  Int64.to_int (Int64.shift_right_logical (Arena.read a (r + o_typ)) 32)

(* Recompute the CRC from the record as currently readable and compare it
   with the stored one.  Interprets no field, so it is safe on garbage. *)
let verify a r =
  let w o = Arena.read a (r + o) in
  let typw = w o_typ in
  let stored = Int64.to_int (Int64.shift_right_logical typw 32) in
  stored
  = image_crc ~lsn:(w o_lsn) ~txn:(w o_txn) ~typw ~addr:(w o_addr)
      ~old_value:(w o_old) ~new_value:(w o_new) ~undo_next:(w o_undo_next)
      ~prev_same_txn:(w o_prev_same_txn)

(* Create a record with cached stores and one write-back.  No fence is
   issued here: the caller decides when the record must be ordered before
   subsequent writes (immediately for Simple/Optimized logging; at the
   group boundary for Batch logging). *)
let make alloc ~lsn:l ~txn:x ~typ:t ~addr:ad ~old_value:ov ~new_value:nv
    ~undo_next:un ~prev_same_txn:pv =
  let a = Alloc.arena alloc in
  let r = Alloc.alloc ~align:size_bytes alloc size_bytes in
  let typw = Int64.of_int (int_of_typ t) in
  let crc =
    image_crc ~lsn:(Int64.of_int l) ~txn:(Int64.of_int x) ~typw
      ~addr:(Int64.of_int ad) ~old_value:ov ~new_value:nv
      ~undo_next:(Int64.of_int un) ~prev_same_txn:(Int64.of_int pv)
  in
  Arena.write a (r + o_lsn) (Int64.of_int l);
  Arena.write a (r + o_txn) (Int64.of_int x);
  Arena.write a (r + o_typ) (pack_typ_word ~typw ~crc);
  Arena.write a (r + o_addr) (Int64.of_int ad);
  Arena.write a (r + o_old) ov;
  Arena.write a (r + o_new) nv;
  Arena.write a (r + o_undo_next) (Int64.of_int un);
  Arena.write a (r + o_prev_same_txn) (Int64.of_int pv);
  Arena.flush_line a r;
  r

(* Durable update of the same-transaction back-chain; only legal while the
   record is not yet reachable from the log or an index chain.  The
   checksum covers the chain pointer, so it is rewritten too — same
   cacheline, so the NVM charge write-combines with the pointer store. *)
let set_prev_same_txn a r v =
  Arena.nt_write a (r + o_prev_same_txn) (Int64.of_int v);
  let w o = Arena.read a (r + o) in
  let typw = w o_typ in
  let crc =
    image_crc ~lsn:(w o_lsn) ~txn:(w o_txn) ~typw ~addr:(w o_addr)
      ~old_value:(w o_old) ~new_value:(w o_new) ~undo_next:(w o_undo_next)
      ~prev_same_txn:(Int64.of_int v)
  in
  Arena.nt_write a (r + o_typ) (pack_typ_word ~typw ~crc)

let free alloc r = Alloc.free ~align:size_bytes alloc r size_bytes

let pp arena ppf r =
  Fmt.pf ppf "@[<h>#%d %a txn=%d addr=%d old=%Ld new=%Ld undo_next=%d@]"
    (lsn arena r) pp_typ (typ arena r) (txn arena r) (addr arena r)
    (old_value arena r) (new_value arena r) (undo_next arena r)
