(** The recoverable log (Section 3) in its three implementations.

    - [Simple]: records are elements of the {!Adll} directly — every
      append is a full atomic list insertion.
    - [Optimized]: the hybrid layout of Section 3.3 — fixed-size buckets
      of record-pointer slots chained through the ADLL; one non-temporal
      slot store (plus one fence) per record.
    - [Batch g]: Optimized with batched persistence — slot stores stay
      cached until [g] records accumulate (or an END record arrives, or
      the bucket fills), then one write-back + fence + a non-temporal
      update of the bucket's last-persistent-index word covers the whole
      group.  Recovery trusts only slots up to that index.

    Bucket occupancy and the insertion cursor are volatile and
    reconstructed by {!attach} after a crash, as in the paper's analysis
    phase. *)

type variant = Simple | Optimized | Batch of int

val pp_variant : variant Fmt.t

type t

val create :
  variant -> ?bucket_cap:int -> Rewind_nvm.Alloc.t -> root_slot:int -> t
(** Create an empty log anchored at the arena's [root_slot]. *)

val attach :
  variant -> ?bucket_cap:int -> Rewind_nvm.Alloc.t -> root_slot:int -> t
(** Reattach after a crash: recovers the underlying ADLL, then rebuilds
    the cursor and occupancy from the durable image.  Batch-variant slots
    beyond a bucket's last persistent index are not trusted.  Reachable
    records are checksum-verified; one that fails is treated as a torn
    write and truncated out of the log (see {!torn_truncated}) instead of
    being replayed. *)

val torn_truncated : t -> int
(** Bad-checksum records truncated by the last {!attach} (0 for a log
    created with {!create}). *)

val variant : t -> variant
val arena : t -> Rewind_nvm.Arena.t
val allocator : t -> Rewind_nvm.Alloc.t

val set_group_tag : t -> int -> unit
(** Stamp this log's sanitizer annotations with a partition id: each
    partition of a partitioned log flushes its batch groups
    independently, so its [Group_persisted] events must name the
    partition whose pending coverage upgrades.  Defaults to 0. *)

val group_tag : t -> int

(** {1 Appending} *)

val append : ?is_end:bool -> t -> int -> unit
(** Append a record (by NVM address).  [is_end] marks END records, which
    force the pending batch group to persist immediately (Section 3.3). *)

(** Handle to an appended record's location, for O(1) removal by the
    owner (the AAVLT clears its own records this way). *)
type handle = Node of int | Slot of { node : int; bucket : int; slot : int }

val append_h : ?is_end:bool -> t -> int -> handle
val remove_handle : t -> handle -> unit

(** {2 Inline fast path}

    Bucketed variants encode a small record directly into a tagged pair
    of adjacent slots ({!Record.inline_encode}): an Optimized append then
    costs one line write-back plus one fence instead of a record
    write-back, a fence and an ordered slot store; Batch appends stay
    entirely cached until the group flush.  Readers receive inline refs
    that the {!Record} accessors decode transparently. *)

val append_record :
  ?is_end:bool ->
  t ->
  lsn:int ->
  txn:int ->
  typ:Record.typ ->
  addr:int ->
  old_value:int64 ->
  new_value:int64 ->
  undo_next:int ->
  handle
(** Append by fields: inline pair when eligible and the fields fit the
    compact format, otherwise an off-line full record. *)

val append_pair : ?is_end:bool -> t -> txn:int -> int -> int -> handle
(** Append a pre-encoded inline pair (the two words from
    {!Record.inline_encode}).  The caller is responsible for only passing
    words produced by the encoder; [txn] drives the END commit-point
    annotation.  Bucketed variants only. *)

val inline_eligible : t -> bool
(** Inline encoding enabled, and this log's variant/bucket size support
    pairs. *)

val set_inline : t -> bool -> unit
(** Enable/disable the inline fast path (benchmarks use this to measure
    the full-record path on the same variant). *)

val inline_enabled : t -> bool

val inline_appended : t -> int
(** Appends that took the inline path (see also
    {!Rewind_nvm.Stats.t.inline_records}). *)

val flush_group : t -> unit
(** Persist any pending batch slots now (one write-back + fence + index
    update).  No-op for Simple/Optimized. *)

val pending : t -> int
(** Slots appended but not yet persisted (Batch only; 0 otherwise). *)

val appended : t -> int

(** {1 Scanning}

    Iteration visits live records in append order; tombstoned and
    untrusted slots are skipped.  Appending while iterating is safe — new
    records are not visited. *)

val iter : t -> (int -> unit) -> unit
val iter_back : t -> (int -> unit) -> unit

val iter_h : t -> (handle -> int -> unit) -> unit
(** Like {!iter}, but also yields each live record's removal handle.
    Callers that must clear records from several log partitions in a
    single global order (the partitioned checkpoint) collect
    [(sort key, handle)] pairs from every partition and then call
    {!remove_handle} in the merged order.  The handles stay valid while
    no other removal or compaction runs in between. *)

val iter_back_while : t -> (int -> bool) -> unit
(** Backward scan with early exit: stops when the callback returns
    [false]. *)

val length : t -> int
val is_empty : t -> bool
val records : t -> int list

(** {1 Clearing} *)

val remove_where : t -> (int -> bool) -> unit
(** Tombstone (and free) every record satisfying the predicate; unlink
    buckets that become empty.  Each tombstone is a single atomic word
    store, so a crash mid-clearing leaves a well-formed log. *)

val clear_all : t -> unit
(** The paper's three-step wholesale clearing: build a fresh log, swing
    the root atomically, de-allocate the old one. *)

val compact : ?threshold:float -> t -> unit
(** Section 3.3's compaction: if live records make up less than
    [threshold] of the trusted slots (gaps left by clearing around
    long-running transactions), copy the live records into a fresh log
    and atomically swing the root.  Crash-safe: the root moves last. *)

val occupancy_stats : t -> int * int
(** (live records, trusted slots). *)

val check_occupancy : t -> (int * int * int) list
(** Cross-check the volatile per-bucket occupancy cells (and the cached
    current-bucket ref) against a recount from the durable layout.
    Returns [(bucket, cached, actual)] mismatches — empty when the cache
    is coherent.  Test helper; O(log size). *)

(** {1 Chaos (tests only)} *)

val set_chaos_drop_group_fence : t -> bool -> unit
(** When set, {!flush_group} skips its persistence fence: the batch
    slots are written back but unordered with respect to the
    last-persistent-index store.  Deliberately violates Section 3.3 so
    the persistency sanitizer's detection can be unit-tested. *)
