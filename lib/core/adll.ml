(* The Atomic Doubly-Linked List (Section 3.2) — REWIND's keystone.

   The ADLL makes node append and removal crash-atomic with three
   single-word recovery variables that are each updated by one atomic NVM
   word write:

   - [lastTail]: the tail before the pending append (so the recovery code
     can re-run even if [tail] already moved);
   - [toAppend]: non-NULL exactly while an append is in flight;
   - [toRemove]: non-NULL exactly while a removal is in flight.

   Every write is a non-temporal store, so the structure's durable state
   always reflects program order and [recover] needs only to redo the one
   pending operation.  The code sequences are written to be redo-idempotent:
   recovery may itself crash at any point and be repeated.

   Nodes carry an opaque [element] word (a record or bucket address), set
   up "off-line" before the node becomes reachable.

   Header layout (one cacheline): head, tail, lastTail, toAppend, toRemove.
   Node layout: next, prev, element. *)

open Rewind_nvm

type t = { arena : Arena.t; alloc : Alloc.t; base : int }

let header_bytes = 64
let node_bytes = 24

(* header word offsets *)
let o_head = 0
let o_tail = 8
let o_last_tail = 16
let o_to_append = 24
let o_to_remove = 32

(* node word offsets *)
let n_next = 0
let n_prev = 8
let n_element = 16

let null = 0

let rd t off = Int64.to_int (Arena.read t.arena off)
let wr t off v = Arena.nt_write t.arena off (Int64.of_int v)

let head t = rd t (t.base + o_head)
let tail t = rd t (t.base + o_tail)
let next t n = rd t (n + n_next)
let prev t n = rd t (n + n_prev)
let element t n = rd t (n + n_element)
let is_empty t = head t = null

let create alloc =
  let arena = Alloc.arena alloc in
  (* Fresh allocation is durably zero: all five header words start NULL. *)
  let base = Alloc.alloc_fresh ~align:64 alloc header_bytes in
  { arena; alloc; base }

let attach alloc ~base = { arena = Alloc.arena alloc; alloc; base }
let base t = t.base

(* -- append (Algorithm 1) -------------------------------------------- *)

(* The shared tail of append and its recovery.  [last_tail] is the tail as
   of the start of the (possibly re-run) append; using it instead of the
   live [tail] makes re-execution safe after a crash between the tail
   update and the [toAppend] clear. *)
let finish_append t n ~last_tail =
  if head t = null then wr t (t.base + o_head) n;
  if last_tail <> null then wr t (last_tail + n_next) n;
  wr t (t.base + o_tail) n;
  (* append finished: clear undo *)
  wr t (t.base + o_to_append) null;
  Arena.fence t.arena

let append t element =
  (* set up new node off-line *)
  let n = Alloc.alloc t.alloc node_bytes in
  let tl = tail t in
  wr t (n + n_element) element;
  wr t (n + n_prev) tl;
  wr t (n + n_next) null;
  (* undo information; the order of the two writes below is critical *)
  wr t (t.base + o_last_tail) tl;
  Arena.fence t.arena;
  wr t (t.base + o_to_append) n;
  Arena.fence t.arena;
  finish_append t n ~last_tail:tl;
  (* Algorithm 1's postcondition: node and recovery variables durable. *)
  Pmcheck.expect_persisted t.arena ~addr:t.base ~len:header_bytes
    ~what:"ADLL header after append";
  n

let recover_append t =
  let n = rd t (t.base + o_to_append) in
  if n <> null then begin
    let last_tail = rd t (t.base + o_last_tail) in
    (* Re-apply the node setup writes that depend on the list state; the
       element word was written before [toAppend] was set and is intact. *)
    wr t (n + n_prev) last_tail;
    wr t (n + n_next) null;
    finish_append t n ~last_tail
  end

(* -- removal ----------------------------------------------------------- *)

(* Unlink [n].  Neighbour updates are driven by [n]'s own pointers, which
   removal never modifies, so the sequence can be re-executed from the top
   after any crash.  Head/tail updates are guarded by identity checks that
   simply no-op once already applied. *)
let finish_remove t n =
  let p = prev t n and nx = next t n in
  if head t = n then wr t (t.base + o_head) nx;
  if tail t = n then wr t (t.base + o_tail) p;
  if p <> null then wr t (p + n_next) nx;
  if nx <> null then wr t (nx + n_prev) p;
  (* removal finished: clear undo *)
  wr t (t.base + o_to_remove) null;
  Arena.fence t.arena

let remove t n =
  wr t (t.base + o_to_remove) n;
  Arena.fence t.arena;
  finish_remove t n;
  Pmcheck.expect_persisted t.arena ~addr:t.base ~len:header_bytes
    ~what:"ADLL header after remove";
  (* De-allocation only after the operation is no longer pending. *)
  Alloc.free t.alloc n node_bytes

let recover_remove t =
  let n = rd t (t.base + o_to_remove) in
  if n <> null then finish_remove t n
  (* The node is leaked rather than freed: after a crash the volatile free
     lists are gone anyway, and leaking is the paper's documented cost of
     de-allocation without OS support. *)

let recover t =
  recover_append t;
  recover_remove t

(* -- traversal --------------------------------------------------------- *)

let iter t f =
  let rec go n =
    if n <> null then begin
      let nx = next t n in
      f n;
      go nx
    end
  in
  go (head t)

let iter_back t f =
  let rec go n =
    if n <> null then begin
      let p = prev t n in
      f n;
      go p
    end
  in
  go (tail t)

let fold_left t f init =
  let acc = ref init in
  iter t (fun n -> acc := f !acc n);
  !acc

let length t = fold_left t (fun acc _ -> acc + 1) 0
let elements t = List.rev (fold_left t (fun acc n -> element t n :: acc) [])

(* Return the whole structure (nodes and header) to the allocator.  Used
   when swapping in a fresh log during wholesale clearing; the caller has
   already salvaged the elements. *)
let free_structure t =
  let rec go n =
    if n <> null then begin
      let nx = next t n in
      Alloc.free t.alloc n node_bytes;
      go nx
    end
  in
  go (head t);
  Alloc.free ~align:64 t.alloc t.base header_bytes

(* Structural well-formedness: prev/next pointers mutually consistent and
   head/tail correct.  Used by crash-recovery tests. *)
let well_formed t =
  let ok = ref true in
  let last = ref null in
  iter t (fun n ->
      if prev t n <> !last then ok := false;
      last := n);
  if tail t <> !last then ok := false;
  (if head t <> null then
     if prev t (head t) <> null then ok := false);
  !ok
