(** The transaction recovery manager (Section 4): WAL over physical log
    records, in the paper's four configurations.

    - {!policy}: [Force] writes user data to NVM with non-temporal stores
      and clears the transaction's log records at commit (two-phase
      recovery: analysis + undo); [No_force] caches user data, clears the
      log at checkpoints, and recovers in three phases (analysis + redo +
      undo).
    - {!layers}: [One_layer] keeps user records directly in the bucket/ADLL
      log and maintains no per-transaction state while logging (Algorithm 2
      reconstructs it at recovery); [Two_layer] indexes every record in the
      {!Avl_index} by LSN and maintains the transaction table while
      logging, making selective rollback cheap at a higher logging cost.

    The log implementation ({!Log.variant}) is chosen independently,
    giving the paper's Simple / Optimized / Batch versions.

    {2 Partitioned logging}

    With [config.partitions = n > 1] the log is sharded into [n]
    independent partitions — each a full recoverable bucketed-ADLL log
    with its own latch, bucket cursor, group-flush state and (two-layer)
    AAVLT + transaction table.  A transaction is pinned to a {e home
    partition} by its id (round-robin), so its entire fast path — record
    append, Batch deferral, commit, rollback — serialises only on that
    partition's latch; appends in different partitions proceed in
    parallel.  LSNs still come from one process-wide atomic counter, so a
    single global order over all records survives, and recovery merges
    the partitions: analysis scans each partition, redo replays the union
    in global LSN order (a k-way merge by LSN over the partition
    streams), undo walks each loser's back-chain within its home
    partition, and {!checkpoint} clears settled transactions in global
    LSN order (ENDs last) {e across} the merged set. *)

type policy = Force | No_force
type layers = One_layer | Two_layer

type config = {
  policy : policy;
  layers : layers;
  variant : Log.variant;
  bucket_cap : int;
  lockfree_latch : bool;
      (** Section 7 future work: model a lock-free log — appends pay a CAS
          instead of serialising on the log latch. *)
  partitions : int;
      (** Independent log partitions (>= 1).  [1] is the unpartitioned
          log of the paper's single-threaded experiments. *)
  incll : bool;
      (** In-cache-line logging (Cohen et al., ASPLOS'19): replaces the
          WAL machinery wholesale with per-cell in-line undo words and
          epoch-granular group durability.  Updates go through cells
          allocated with {!alloc_cell}; durability points are
          {!advance_epoch} calls (or {!checkpoint}), not commits — a
          crash rolls back to the last epoch boundary.  Requires
          [partitions = 1] and [One_layer]; [variant]/[policy] are
          ignored.  See {!advance_epoch}. *)
}

val default_config : config
(** One-layer, no-force, Optimized log, 1000-record buckets. *)

val pp_config : config Fmt.t

type txn = int
type t

val create : ?cfg:config -> Rewind_nvm.Alloc.t -> root_slot:int -> t
(** Fresh transaction manager anchored at [root_slot]: the slot itself
    durably records a configuration fingerprint (validated by {!attach}),
    partition [p]'s log lives at root slot [root_slot + 1 + 2p] and its
    two-layer index at [root_slot + 2 + 2p].  Raises [Invalid_argument]
    if the partitions do not fit the arena's 63 root slots. *)

val attach : ?cfg:config -> Rewind_nvm.Alloc.t -> root_slot:int -> t
(** Reattach after a crash with the same configuration and root slot:
    recovers the log structure, then runs analysis / redo / undo and
    clears the log.  On return every pre-crash transaction is settled,
    except transactions left {e in doubt} by a {!prepare} — those keep
    their records and must be settled via {!resolve_in_doubt}.

    The configuration is checked against the fingerprint {!create} stored
    at [root_slot]: attaching with a different partition count (or any
    other recovery-relevant config field) raises [Failure] with a
    diagnostic instead of silently misassigning home partitions.
    ([lockfree_latch] is volatile scheduling policy and may differ.) *)

val config : t -> config

val log : t -> Log.t
(** Partition 0's log (the only one when [partitions = 1]).  Raises
    [Failure] under an InCLL configuration, which keeps no log. *)

val logs : t -> Log.t array
(** All partitions' logs, indexed by partition id. *)

val partitions : t -> int

val home_partition : t -> txn -> int
(** The partition a transaction's records land in: a pure function of
    its id ([(id - 1) mod partitions]), so recovery needs no pinning
    map.  Ids are allocated per partition ([id = 1 + seq*partitions +
    home]), which is what lets {!begin_txn}'s caller pick the home while
    keeping this a pure function — with no caller pinning, the
    round-robin assignment makes ids come out exactly sequential. *)

val partition_appended : t -> int array
(** Per-partition append counts, for scaling experiments. *)

val merged_log_records : t -> int list
(** The union of every partition's live records merged into global LSN
    order — the stream the redo pass replays.  Introspection for tests
    (the merged-redo-order property). *)

(** {1 Transactions} *)

val begin_txn : ?home:int -> t -> txn
(** Open a transaction.  [?home] pins it to a log partition (0-based; the
    TPC-C driver pins by home warehouse so a warehouse's entire
    transaction stream serialises only on its own partition's latch) —
    the home is encoded in the returned id, so recovery recomputes it
    from the logged records alone.  Default: round-robin over the
    partitions, yielding sequential ids.  Raises [Invalid_argument] if
    [home] is outside [0, partitions). *)

val write : t -> txn -> addr:int -> value:int64 -> unit
(** The paper's expanded-code pattern (Listing 2): log the update — old
    value, new value, address — then perform the store according to the
    policy.  The log record is created outside the log latch ("off-line")
    and only its insertion is serialised. *)

val read : t -> txn -> addr:int -> int64

val log_update : t -> txn -> addr:int -> old_value:int64 -> new_value:int64 -> unit
(** Lower-level logging call for callers that perform the store
    themselves (must follow the WAL order: log first). *)

val log_delete : t -> txn -> addr:int -> size:int -> unit
(** Record an intention to free NVM.  The de-allocation happens at commit
    (force) or at the clearing checkpoint (no-force); a rollback drops
    it.  (Section 4.3's DELETE records.) *)

val commit : ?clear:bool -> t -> txn -> unit
(** Commit.  Under force policy this persists all pending stores, logs
    END, and clears the transaction's records ([clear:false] suppresses
    the clearing — used by experiments that model a crash between END and
    clearing).  Under no-force it logs END; clearing waits for
    {!checkpoint}. *)

val rollback : t -> txn -> unit
(** Undo the transaction with CLRs (one-layer: a full backward scan
    skipping other transactions' records; two-layer: the record chain via
    the index), then log END. *)

val atomically : ?home:int -> t -> (txn -> 'a) -> 'a
(** The paper's [persistent_atomic] block: begin; commit on success, roll
    back and re-raise on exception.  A simulated {!Rewind_nvm.Arena.Crash}
    is re-raised {e without} rolling back: the crashed process cannot run
    cleanup, and writing CLR/END records into the crash image would make
    recovery mistake the interrupted transaction for a settled one. *)

(** {1 Two-phase commit (Distributed REWIND)}

    The participant side of presumed-abort 2PC.  {!prepare} is the
    yes-vote: it persists everything the transaction did and durably logs
    a PREPARE record carrying the coordinator's global transaction id.
    From then on the transaction is {e in doubt}: recovery neither undoes
    nor finishes it — its records survive log clearing across any number
    of crashes — until {!resolve_in_doubt} applies the coordinator's
    decision (commit if the coordinator durably logged one, abort
    otherwise: presumed abort). *)

val prepare : t -> txn -> gtid:int -> unit
(** Vote yes: persist the transaction's records (and, under force, its
    stores), then durably log PREPARE.  After [prepare] the transaction
    must not be settled unilaterally — only {!resolve_in_doubt} may
    finish it. *)

val in_doubt : t -> (txn * int) list
(** The transactions currently in doubt with their global transaction
    ids — live after {!prepare}, or as reconstructed by recovery from
    surviving PREPARE records.  Sorted by local transaction id. *)

val resolve_in_doubt : t -> txn -> commit:bool -> unit
(** Settle an in-doubt transaction with the coordinator's decision:
    [commit:true] commits it (its updates are already durable or
    redo-able), [commit:false] rolls it back with CLRs.  Idempotent
    across crashes mid-resolution — re-attach finds the transaction in
    doubt again and the decision can be re-applied.  Raises
    [Invalid_argument] if the transaction is not in doubt. *)

(** {1 Partial rollback}

    An extension the CLR machinery supports directly (ARIES-style
    savepoints): a savepoint names a point in the transaction; rolling
    back to it undoes the later updates with ordinary CLRs, so a crash at
    any moment still recovers correctly. *)

type savepoint

val savepoint : t -> txn -> savepoint
val rollback_to : t -> txn -> savepoint -> unit

val checkpoint : t -> unit
(** The "cache-consistent" checkpoint of Section 4.6: persist pending log
    state, flush the cache, then clear settled transactions' records —
    END records last — and process their deferred de-allocations.

    Checkpointing with transactions in flight is fully supported — this
    is the point of Section 4.6's design, and what distinguishes REWIND
    from redo-only baselines (e.g. {!Rewind_baselines.Paged_kv}, whose
    checkpoint must refuse active transactions because it has no undo
    information).  Live transactions' back-chains survive clearing
    untouched; only settled (committed or rolled-back) transactions are
    removed, in {e global LSN order} with END records last, so a crash at
    any point during the checkpoint — including mid-clearing and
    mid-compaction — recovers by repeat-history + undo to the same state
    as an uninterrupted checkpoint. *)

val recover : t -> unit
(** Run recovery explicitly (normally done by {!attach}). *)

(** {1 In-cache-line logging (InCLL)}

    With [config.incll = true] the manager keeps no write-ahead log at
    all.  Updates target {e cells} — cache lines holding the data word,
    an in-line undo word and an epoch tag — so a logged update costs one
    NVM line write and no fence.  Durability is {e epoch-granular}:
    {!commit} only settles the transaction's volatile state; the whole
    epoch becomes durable at once at {!advance_epoch}, and a crash rolls
    every cell back to the last epoch boundary (which is
    transaction-consistent, because epochs only advance at quiescence).
    {!rollback} still works mid-epoch via a volatile per-transaction
    undo journal. *)

val alloc_cell : t -> int
(** Allocate one managed word and return its address.  Under InCLL this
    is a durably-registered cache-line cell (the only addresses
    {!write} accepts); under the WAL configurations it is a plain
    8-byte allocation, so workloads can be written config-generically. *)

val advance_epoch : t -> unit
(** The InCLL group-commit point: flush all dirty lines, fence, bump
    the durable epoch counter.  Everything stored since the previous
    advance becomes durable as a group.  Raises [Failure] if the
    configuration is not InCLL, or [Invalid_argument] if transactions
    are in flight (the epoch boundary must be transaction-consistent).
    {!checkpoint} is the best-effort variant: it advances only when no
    transaction is active, and is a no-op otherwise. *)

val current_epoch : t -> int option
(** The current epoch ([None] for WAL configurations). *)

(** {1 Introspection} *)

(** What the last recovery found and did.  [torn_truncated] counts
    bad-checksum log records that recovery dropped as torn writes instead
    of replaying them (see {!Record.verify}). *)
type recovery_report = {
  records_scanned : int;  (** log records examined by analysis *)
  torn_truncated : int;   (** bad-checksum records dropped as torn writes *)
  redo_applied : int;     (** records re-applied by the redo pass *)
  txns_finished : int;    (** transactions found committed/rolled back *)
  txns_undone : int;      (** unfinished transactions rolled back by undo *)
}

val pp_recovery_report : recovery_report Fmt.t

val last_recovery : t -> recovery_report option
(** The report of the most recent {!recover}/{!attach}; [None] if this
    manager has never run recovery. *)

val last_recovery_profile : t -> Rewind_nvm.Probe.t option
(** Per-phase profile of the most recent {!recover}/{!attach}: simulated
    time and NVM counter deltas for [log-attach], [index-rebuild] (two-
    layer), [analysis], [redo] (no-force), [undo] and [clearing].  Each
    recovery gets a fresh probe, so the numbers cover exactly one
    recovery — the arena's cumulative {!Rewind_nvm.Stats} totals cannot
    be compared across a crash without double-counting earlier cycles. *)

val set_probe : t -> Rewind_nvm.Probe.t option -> unit
(** Attach a probe to the runtime hot paths: [commit], [checkpoint] and
    the checkpoint sub-phases [cp-persist] / [cp-clear] / [cp-compact]
    charge spans to it.  [None] (the default) disables hot-path
    profiling; recovery profiling is always on. *)

val commits : t -> int
val rollbacks : t -> int
val active_transactions : t -> int
