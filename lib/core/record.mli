(** Log records: one 64-byte cacheline each, created "off-line" (cached
    stores plus a single write-back) before being atomically linked into
    the log.  Fields follow ARIES/REWIND: LSN, transaction id, type,
    affected address, before/after images, the CLR undo-next pointer, and
    the same-transaction back-chain used by two-layer logging. *)

type typ =
  | Update      (** a logged user (or AAVLT-internal) store *)
  | Clr         (** compensation record written by undo *)
  | End         (** transaction finished (committed or rolled back) *)
  | Checkpoint  (** durable point marker (Section 4.6) *)
  | Delete      (** deferred de-allocation intention (Section 4.3) *)
  | Rollback    (** rollback started (Algorithm 2) *)
  | Prepare     (** 2PC vote: transaction is in doubt until resolved *)

val pp_typ : typ Fmt.t

val size_bytes : int
(** 64: records are cacheline-sized and cacheline-aligned. *)

val make :
  Rewind_nvm.Alloc.t ->
  lsn:int ->
  txn:int ->
  typ:typ ->
  addr:int ->
  old_value:int64 ->
  new_value:int64 ->
  undo_next:int ->
  prev_same_txn:int ->
  int
(** Allocate and initialise a record; returns its NVM address.  The fields
    are written back (one NVM line write) but not fenced — the caller
    orders the record before whatever makes it reachable. *)

(** {1 Field accessors} — all take the arena and the record address. *)

val lsn : Rewind_nvm.Arena.t -> int -> int
val txn : Rewind_nvm.Arena.t -> int -> int
val typ : Rewind_nvm.Arena.t -> int -> typ
val addr : Rewind_nvm.Arena.t -> int -> int
val old_value : Rewind_nvm.Arena.t -> int -> int64
val new_value : Rewind_nvm.Arena.t -> int -> int64
val undo_next : Rewind_nvm.Arena.t -> int -> int
val prev_same_txn : Rewind_nvm.Arena.t -> int -> int

val set_prev_same_txn : Rewind_nvm.Arena.t -> int -> int -> unit
(** Durable update of the back-chain; only legal while the record is not
    yet reachable from the log or an index chain.  Rewrites the checksum,
    which covers the chain pointer. *)

(** {1 Integrity}

    Every record carries a CRC-32 of its fields in the upper half of the
    type word.  Recovery verifies it before interpreting a record, so a
    torn write or media corruption is detected and truncated rather than
    replayed. *)

val checksum : Rewind_nvm.Arena.t -> int -> int
(** The stored CRC-32. *)

val verify : Rewind_nvm.Arena.t -> int -> bool
(** Recompute and compare the checksum.  Interprets no field, so it is
    safe to call on a suspect (torn or corrupted) record. *)

val free : Rewind_nvm.Alloc.t -> int -> unit
(** Return a full record's line to the allocator; no-op on inline refs
    (their storage is the bucket's own slots). *)

val pp : Rewind_nvm.Arena.t -> int Fmt.t

(** {1 Inline compact records}

    A small record — word-sized before/after images — can be encoded into
    a tagged pair of adjacent bucket slots instead of a 64-byte line: tag
    6 (low three bits) marks the pair's first word, tag 7 the second, and
    a folded 16-bit CRC covers both.  The pair is addressed by an {e
    inline ref} (the first slot's NVM address with the low bit set, odd
    and therefore disjoint from 64-aligned record addresses); every field
    accessor above transparently decodes inline refs, so recovery and
    rollback code is format-agnostic.  See [record.ml] for the exact bit
    layout and eligibility rules. *)

val inline_encode :
  lsn:int ->
  txn:int ->
  typ:typ ->
  addr:int ->
  old_value:int64 ->
  new_value:int64 ->
  undo_next:int ->
  (int * int) option
(** The pair's two slot words, or [None] when a field exceeds the compact
    format (the caller then falls back to {!make}).  A CLR's old value is
    write-only system-wide and is not stored: it decodes as 0. *)

val is_inline : int -> bool
(** Is this record address an inline ref? *)

val inline_ref : int -> int
(** The inline ref addressing the pair whose first word sits at the given
    (8-aligned) slot address. *)

val inline_pair : int -> int
(** Inverse of {!inline_ref}: the pair's first-slot address. *)

(** Slot-word classification, used by the log's pair-aware scans. *)

val is_inline_first_word : int -> bool
val is_inline_second_word : int -> bool
val is_inline_word : int -> bool

val inline_pair_valid : w0:int -> w1:int -> bool
(** Tags present and the stored CRC-16 matches — the integrity gate
    recovery applies before trusting a pair; a failure is a torn write. *)
