(* In-cache-line logging (InCLL), after Cohen et al., "Fine-Grain
   Checkpointing with In-Cache-Line Logging" (ASPLOS'19): the undo entry
   lives in the *same cache line* as the data it protects, so a logged
   update between epoch checkpoints costs zero extra NVM line writes and
   no fence at all.

   Layout — every managed cell owns one full cache line:

     +0   data word
     +8   undo word   (the cell's value at its first store of the epoch)
     +16  epoch tag   (the epoch of that capture; 0 = never captured)

   The protocol replaces WAL ordering with *line atomicity*: because
   data, undo and tag travel in one line, any write-back — explicit,
   spontaneous eviction, or none at all — lands an internally consistent
   snapshot in NVM.  Either the tag predates the current epoch (data is
   the epoch-start value, undo irrelevant) or the tag equals it (undo is
   the epoch-start value, data arbitrary mid-epoch).  Recovery therefore
   needs no order between cells and no fences between updates: it reads
   the durable epoch counter E, rewinds every cell whose tag equals E to
   its undo word, and advances the epoch.

   The first store to a cell in an epoch captures undo+tag (two extra
   cached stores, same line); every later store in the epoch is a single
   cached store.  [advance] is the group-commit point: flush all dirty
   lines, fence, bump the durable epoch counter (one non-temporal store),
   fence.  A crash loses at most the current epoch — state rolls back to
   the last advance, which is transaction-consistent because [advance]
   requires quiescence.

   Durable metadata besides the cells: a one-line epoch counter, and a
   directory of cell addresses (chunked linked list) so recovery can
   enumerate the cells without trusting volatile state.  Both come from
   {!Alloc.alloc_fresh}, which returns durably-zero, never-recycled
   space — so a fresh cell's tag (0) can never equal a live epoch
   (epochs start at 1), and a torn directory entry cannot alias freed
   memory. *)

open Rewind_nvm

let data_off = 0
let undo_off = 8
let tag_off = 16

(* Directory chunks: 63 cell-address slots plus a next-chunk pointer.
   Slots fill in order; 0 terminates (alloc_fresh space is never at
   offset 0 — the arena reserves its root block). *)
let dir_slots = 63
let dir_bytes = (dir_slots + 1) * 8

type t = {
  arena : Arena.t;
  alloc : Alloc.t;
  line : int; (* cacheline bytes; also the per-cell footprint *)
  epoch_addr : int; (* the durable epoch counter word *)
  mutable cur_epoch : int; (* cached copy of the durable counter *)
  mutable cells : int list; (* registered cells, newest first (volatile) *)
  mutable n_cells : int;
  registered : (int, unit) Hashtbl.t; (* cell addr -> () *)
  mutable dir_tail : int; (* chunk holding the next free slot *)
  mutable dir_fill : int; (* used slots in [dir_tail] *)
}

let epoch t = t.cur_epoch
let cells t = List.rev t.cells
let n_cells t = t.n_cells
let is_cell t addr = Hashtbl.mem t.registered addr

let line_of_arena arena =
  let line = (Arena.config arena).Config.cacheline_bytes in
  if line < tag_off + 8 then
    Fmt.invalid_arg
      "Incll: cacheline of %d bytes cannot hold data+undo+tag words" line;
  line

let create arena alloc ~epoch_slot ~dir_slot =
  let line = line_of_arena arena in
  let epoch_addr = Alloc.alloc_fresh ~align:line alloc line in
  let dir_head = Alloc.alloc_fresh ~align:line alloc dir_bytes in
  (* Epochs start at 1 so a fresh cell's zero tag never matches. *)
  Arena.nt_write arena epoch_addr 1L;
  Arena.fence arena;
  Arena.root_set arena epoch_slot (Int64.of_int epoch_addr);
  Arena.root_set arena dir_slot (Int64.of_int dir_head);
  {
    arena;
    alloc;
    line;
    epoch_addr;
    cur_epoch = 1;
    cells = [];
    n_cells = 0;
    registered = Hashtbl.create 256;
    dir_tail = dir_head;
    dir_fill = 0;
  }

let attach arena alloc ~epoch_slot ~dir_slot =
  let line = line_of_arena arena in
  let epoch_addr = Int64.to_int (Arena.root_get arena epoch_slot) in
  let dir_head = Int64.to_int (Arena.root_get arena dir_slot) in
  let t =
    {
      arena;
      alloc;
      line;
      epoch_addr;
      cur_epoch = Int64.to_int (Arena.durable_read arena epoch_addr);
      cells = [];
      n_cells = 0;
      registered = Hashtbl.create 256;
      dir_tail = dir_head;
      dir_fill = 0;
    }
  in
  (* Rebuild the volatile cell list from the durable directory. *)
  let rec walk chunk =
    let fill = ref 0 in
    (try
       for i = 0 to dir_slots - 1 do
         let a = Int64.to_int (Arena.durable_read arena (chunk + (i * 8))) in
         if a = 0 then raise Exit;
         t.cells <- a :: t.cells;
         t.n_cells <- t.n_cells + 1;
         Hashtbl.replace t.registered a ();
         incr fill
       done
     with Exit -> ());
    let next =
      Int64.to_int (Arena.durable_read arena (chunk + (dir_slots * 8)))
    in
    if next = 0 then begin
      t.dir_tail <- chunk;
      t.dir_fill <- !fill
    end
    else walk next
  in
  walk dir_head;
  t

(* One durable store registers the cell; a full chunk costs one more to
   link its successor.  No fence: in the simulated crash model a
   non-temporal store is ordered on arrival, and an unregistered-but-
   allocated cell is merely leaked space, never an inconsistency (its
   tag is zero, so recovery would skip it anyway). *)
let alloc_cell t =
  let addr = Alloc.alloc_fresh ~align:t.line t.alloc t.line in
  if t.dir_fill = dir_slots then begin
    let chunk = Alloc.alloc_fresh ~align:t.line t.alloc dir_bytes in
    Arena.nt_write t.arena
      (t.dir_tail + (dir_slots * 8))
      (Int64.of_int chunk);
    t.dir_tail <- chunk;
    t.dir_fill <- 0
  end;
  Arena.nt_write t.arena (t.dir_tail + (t.dir_fill * 8)) (Int64.of_int addr);
  t.dir_fill <- t.dir_fill + 1;
  t.cells <- addr :: t.cells;
  t.n_cells <- t.n_cells + 1;
  Hashtbl.replace t.registered addr ();
  addr

let read t addr = Arena.read t.arena addr

(* The update path.  First store of the epoch: capture undo+tag (cached,
   same line), announced to the sanitizer as epoch coverage of the whole
   line *before* any of the three stores.  Later stores of the epoch:
   one cached store, nothing else — this is the ~1.0-lines-per-update
   fast path the config exists for. *)
let store t ~addr ~value =
  if not (Hashtbl.mem t.registered addr) then
    Fmt.invalid_arg "Incll.store: %d is not a registered cell" addr;
  let st = Arena.stats t.arena in
  if Arena.read t.arena (addr + tag_off) <> Int64.of_int t.cur_epoch then begin
    st.Stats.incll_captures <- st.Stats.incll_captures + 1;
    Pmcheck.epoch_logged t.arena ~addr ~len:t.line ~epoch:t.cur_epoch;
    Arena.write t.arena (addr + undo_off) (Arena.read t.arena (addr + data_off));
    Arena.write t.arena (addr + tag_off) (Int64.of_int t.cur_epoch)
  end
  else st.Stats.incll_elided <- st.Stats.incll_elided + 1;
  Arena.write t.arena (addr + data_off) value

(* The epoch checkpoint (group-commit point): make every capture of the
   closing epoch durable, then bump the counter.  A crash before the
   counter's non-temporal store lands rolls the whole epoch back; after
   it, the epoch is committed.  The [Epoch_advanced] annotation sits
   between the fence and the bump so the sanitizer checks exactly the
   protocol's claim: all epoch-covered lines durable and ordered before
   the counter moves. *)
let advance t =
  Arena.flush_all t.arena;
  Arena.fence t.arena;
  let next = t.cur_epoch + 1 in
  Pmcheck.epoch_advanced t.arena ~epoch:next;
  Arena.nt_write t.arena t.epoch_addr (Int64.of_int next);
  Arena.fence t.arena;
  t.cur_epoch <- next;
  let st = Arena.stats t.arena in
  st.Stats.epoch_advances <- st.Stats.epoch_advances + 1

(* Post-crash: rewind every cell captured in the crashed epoch, then
   advance so the rolled-back state becomes the new epoch boundary.
   Idempotent across nested crashes — rewinding writes [undo] into
   [data] and touches neither [undo] nor [tag], and the advance flushes
   everything before the counter bumps, so a crash anywhere inside
   recovery replays to the same state.  Returns (cells scanned, cells
   rewound). *)
let recover t =
  let e = Int64.of_int t.cur_epoch in
  let rolled = ref 0 in
  List.iter
    (fun addr ->
      if Arena.read t.arena (addr + tag_off) = e then begin
        Arena.write t.arena (addr + data_off)
          (Arena.read t.arena (addr + undo_off));
        incr rolled
      end)
    t.cells;
  advance t;
  (t.n_cells, !rolled)
