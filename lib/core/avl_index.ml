(* The Atomic AVL Tree (AAVLT, Section 3.4): the two-layer configuration's
   top layer.  It indexes log records by transaction id so that selective
   rollback does not need a linear log scan, and it doubles as the
   persistently-maintained transaction table of the two-layer scheme
   (status, last record, undo-next per transaction).

   Atomicity: every NVM write that affects the tree's *reachable* state is
   routed through [logged_write], which first appends a physical
   old/new-value record (with the reserved internal transaction id 0) to
   the underlying bucket log, then performs the write with a non-temporal
   store.  A tree operation runs as:

       writes... -> internal END record -> clear internal records (END last)

   Only one tree operation is ever pending (tree updates are serialized by
   the transaction manager), so recovery is a simplified one-transaction
   scheme: if the internal log holds records *without* an END, the
   operation was cut short — undo it by replaying old values backwards,
   which is idempotent under repeated crashes because the restored values
   do not depend on current state.  If an END is present the operation
   completed and only the clearing is re-run, END removed last (the force
   clearing discipline of Section 4.6).

   Node de-allocation is deferred until the operation's records are
   cleared, mirroring the paper's delayed de-allocation rule. *)

open Rewind_nvm

let internal_txn = 0

(* Node layout: eight words, one cacheline. *)
let node_bytes = 64
let k_key = 0
let k_left = 8
let k_right = 16
let k_height = 24
let k_head_record = 32
let k_status = 40
let k_undo_next = 48

let null = 0

type t = {
  arena : Arena.t;
  alloc : Alloc.t;
  ilog : Log.t;          (* the bottom layer: an Optimized bucket log *)
  root_ptr : int;        (* NVM word holding the tree root *)
  mutable deferred_free : int list;  (* nodes to free once the op clears *)
  mutable op_handles : Log.handle list;  (* this op's internal records *)
}

let create alloc ~ilog =
  let arena = Alloc.arena alloc in
  let root_ptr = Alloc.alloc_fresh ~align:64 alloc 8 in
  { arena; alloc; ilog; root_ptr; deferred_free = []; op_handles = [] }

let attach alloc ~ilog ~root_ptr =
  {
    arena = Alloc.arena alloc;
    alloc;
    ilog;
    root_ptr;
    deferred_free = [];
    op_handles = [];
  }

let root_ptr t = t.root_ptr
let rd t off = Int64.to_int (Arena.read t.arena off)

(* Tree descents chase pointers: charge one cache miss per visited node. *)
let charge_visit t = Clock.advance (Arena.config t.arena).Config.read_miss_ns

(* -- the write-ahead discipline for tree updates ----------------------- *)

(* Internal records (txn 0, lsn 0, no chains) are prime inline-encoding
   candidates: node fields — heights, statuses, small pointers — usually
   fit the compact format, so most tree maintenance costs no record
   allocation.  [Log.append_record] falls back to a full record when an
   image exceeds the 36-bit internal payload. *)
let logged_write t addr v =
  let old_v = Arena.read t.arena addr in
  if old_v <> Int64.of_int v then begin
    let h =
      Log.append_record t.ilog ~lsn:0 ~txn:internal_txn ~typ:Record.Update
        ~addr ~old_value:old_v ~new_value:(Int64.of_int v) ~undo_next:0
    in
    t.op_handles <- h :: t.op_handles;
    Arena.nt_write t.arena addr (Int64.of_int v)
  end

let is_internal t r = Record.txn t.arena r = internal_txn

(* Clear this operation's internal records through their handles — O(1)
   per record, non-END first, END last.  [op_handles] is newest-first, so
   the END (appended last) is at the head. *)
let clear_internal_handles t ~end_handle =
  List.iter (fun h -> Log.remove_handle t.ilog h) (List.rev t.op_handles);
  Log.remove_handle t.ilog end_handle;
  t.op_handles <- []

(* Scan-based clearing for recovery, when no handles survive the crash. *)
let clear_internal_scan t =
  Log.remove_where t.ilog (fun r ->
      is_internal t r && Record.typ t.arena r <> Record.End);
  Log.remove_where t.ilog (fun r ->
      is_internal t r && Record.typ t.arena r = Record.End)

(* Run [f] as one atomic tree operation. *)
let op t f =
  t.deferred_free <- [];
  t.op_handles <- [];
  let result = f () in
  let end_handle =
    Log.append_record ~is_end:true t.ilog ~lsn:0 ~txn:internal_txn
      ~typ:Record.End ~addr:0 ~old_value:0L ~new_value:0L ~undo_next:0
  in
  clear_internal_handles t ~end_handle;
  List.iter (fun n -> Alloc.free ~align:64 t.alloc n node_bytes) t.deferred_free;
  t.deferred_free <- [];
  result

(* Post-crash: undo or finish-clearing the single pending operation. *)
let recover t =
  let records = ref [] in
  let has_end = ref false in
  Log.iter t.ilog (fun r ->
      if is_internal t r then begin
        records := r :: !records;
        if Record.typ t.arena r = Record.End then has_end := true
      end);
  if !records <> [] && not !has_end then
    (* [records] is already newest-first: physical undo, backwards. *)
    List.iter
      (fun r ->
        if Record.typ t.arena r = Record.Update then
          Arena.nt_write t.arena (Record.addr t.arena r)
            (Record.old_value t.arena r))
      !records;
  clear_internal_scan t

(* -- plain node accessors (reads are unlogged) -------------------------- *)

let key t n = rd t (n + k_key)
let left t n = rd t (n + k_left)
let right t n = rd t (n + k_right)
let height t n = if n = null then 0 else rd t (n + k_height)
let head_record t n = rd t (n + k_head_record)
let status t n = rd t (n + k_status)
let undo_next t n = rd t (n + k_undo_next)

(* Fields of a transaction entry; logged because they are reachable
   state that an interrupted operation must be able to roll back. *)
let set_head_record t n r = logged_write t (n + k_head_record) r
let set_status t n s = logged_write t (n + k_status) s
let set_undo_next t n r = logged_write t (n + k_undo_next) r

(* -- AVL mechanics ------------------------------------------------------ *)

(* A new node is written with non-temporal stores *without* logging: it is
   unreachable until a logged child-pointer write links it, so an undone
   operation simply leaks it. *)
let new_node t k =
  let n = Alloc.alloc ~align:64 t.alloc node_bytes in
  let w off v = Arena.nt_write t.arena (n + off) (Int64.of_int v) in
  w k_key k;
  w k_left null;
  w k_right null;
  w k_height 1;
  w k_head_record null;
  w k_status 0;
  w k_undo_next null;
  n

let set_left t n v = logged_write t (n + k_left) v
let set_right t n v = logged_write t (n + k_right) v
let set_height t n v = logged_write t (n + k_height) v

let update_height t n =
  let h = 1 + max (height t (left t n)) (height t (right t n)) in
  if height t n <> h then set_height t n h

let balance_factor t n = height t (left t n) - height t (right t n)

let rotate_right t n =
  let l = left t n in
  let lr = right t l in
  set_left t n lr;
  set_right t l n;
  update_height t n;
  update_height t l;
  l

let rotate_left t n =
  let r = right t n in
  let rl = left t r in
  set_right t n rl;
  set_left t r n;
  update_height t n;
  update_height t r;
  r

let rebalance t n =
  update_height t n;
  let bf = balance_factor t n in
  if bf > 1 then begin
    if balance_factor t (left t n) < 0 then set_left t n (rotate_left t (left t n));
    rotate_right t n
  end
  else if bf < -1 then begin
    if balance_factor t (right t n) > 0 then
      set_right t n (rotate_right t (right t n));
    rotate_left t n
  end
  else n

let find t k =
  let rec go n =
    if n = null then null
    else begin
      charge_visit t;
      let nk = key t n in
      if k = nk then n else if k < nk then go (left t n) else go (right t n)
    end
  in
  go (rd t t.root_ptr)

let mem t k = find t k <> null

(* Insert inside an [op]; returns the node for [k] (existing or new). *)
let insert_in_op t k =
  let found = ref null in
  let rec go n =
    if n = null then begin
      let fresh = new_node t k in
      found := fresh;
      fresh
    end
    else begin
      charge_visit t;
      let nk = key t n in
      if k = nk then begin
        found := n;
        n
      end
      else begin
        if k < nk then begin
          let l' = go (left t n) in
          if left t n <> l' then set_left t n l'
        end
        else begin
          let r' = go (right t n) in
          if right t n <> r' then set_right t n r'
        end;
        rebalance t n
      end
    end
  in
  let root = rd t t.root_ptr in
  let root' = go root in
  if root' <> root then logged_write t t.root_ptr root';
  !found

let insert t k = op t (fun () -> insert_in_op t k)

(* Delete inside an [op].  Standard AVL removal; the unlinked node is
   queued on [deferred_free]. *)
let remove_in_op t k =
  let removed = ref false in
  let rec min_node n = if left t n = null then n else min_node (left t n) in
  let rec go n =
    if n = null then null
    else begin
      charge_visit t;
      let nk = key t n in
      if k < nk then begin
        let l' = go (left t n) in
        if left t n <> l' then set_left t n l';
        rebalance t n
      end
      else if k > nk then begin
        let r' = go (right t n) in
        if right t n <> r' then set_right t n r';
        rebalance t n
      end
      else begin
        removed := true;
        let l = left t n and r = right t n in
        if l = null || r = null then begin
          t.deferred_free <- n :: t.deferred_free;
          if l = null then r else l
        end
        else begin
          (* Two children: move the successor's payload into [n], then
             delete the successor from the right subtree. *)
          let s = min_node r in
          logged_write t (n + k_key) (key t s);
          set_head_record t n (head_record t s);
          set_status t n (status t s);
          set_undo_next t n (undo_next t s);
          let rec del_min m =
            if left t m = null then begin
              t.deferred_free <- m :: t.deferred_free;
              right t m
            end
            else begin
              let l' = del_min (left t m) in
              if left t m <> l' then set_left t m l';
              rebalance t m
            end
          in
          let r' = del_min r in
          if right t n <> r' then set_right t n r';
          rebalance t n
        end
      end
    end
  in
  let root = rd t t.root_ptr in
  let root' = go root in
  if root' <> root then logged_write t t.root_ptr root';
  !removed

let remove t k = op t (fun () -> remove_in_op t k)

(* -- traversal ---------------------------------------------------------- *)

let iter t f =
  let rec go n =
    if n <> null then begin
      charge_visit t;
      go (left t n);
      f n;
      go (right t n)
    end
  in
  go (rd t t.root_ptr)

(* Wholesale clearing: one logged root swing makes the tree durably empty,
   then the node memory is returned to the allocator (volatile book-keeping
   only, as in the paper's three-step log clearing). *)
let clear t =
  let nodes = ref [] in
  iter t (fun n -> nodes := n :: !nodes);
  op t (fun () -> logged_write t t.root_ptr null);
  List.iter (fun n -> Alloc.free ~align:64 t.alloc n node_bytes) !nodes

let size t =
  let n = ref 0 in
  iter t (fun _ -> incr n);
  !n

let keys t =
  let acc = ref [] in
  iter t (fun n -> acc := key t n :: !acc);
  List.rev !acc

(* AVL invariant check for tests. *)
let well_formed t =
  let ok = ref true in
  let rec check n lo hi =
    if n = null then 0
    else begin
      let k = key t n in
      (match lo with Some l when k <= l -> ok := false | _ -> ());
      (match hi with Some h when k >= h -> ok := false | _ -> ());
      let hl = check (left t n) lo (Some k) in
      let hr = check (right t n) (Some k) hi in
      if abs (hl - hr) > 1 then ok := false;
      if height t n <> 1 + max hl hr then ok := false;
      1 + max hl hr
    end
  in
  ignore (check (rd t t.root_ptr) None None);
  !ok
