(** Workload-driven configuration advisor — the paper's Section 7 future
    work ("introduce autotuning so that the system adapts to the workload
    through monitoring").

    A passive observer: the application feeds it begin/write/commit/
    rollback events; it estimates the quantities the Section 5.1
    sensitivity analysis showed to drive the configuration choice
    (interleaving degree a.k.a. skip records, selective-rollback rate,
    transaction length) and recommends a {!Tm.config} using the measured
    crossovers of Figures 3 (right) and 4 (left). *)

type t

type stats = {
  mutable txns_started : int;
  mutable txns_committed : int;
  mutable txns_rolled_back : int;
  mutable records_logged : int;
  mutable interleave_samples : int;
  mutable interleave_total : int;
  mutable updates_per_txn_total : int;
  mutable small_updates : int;
}

val create : unit -> t

(** {1 Event feed} *)

val on_begin : t -> Tm.txn -> unit
val on_write : ?word_sized:bool -> t -> Tm.txn -> unit
(** [word_sized] marks an update whose before/after images are
    word-sized — a candidate for the log's inline record fast path. *)

val on_commit : t -> Tm.txn -> unit
val on_rollback : t -> Tm.txn -> unit

(** {1 Derived quantities} *)

val avg_interleave : t -> float
(** Estimated skip records: foreign records between consecutive records
    of the same transaction, averaged. *)

val rollback_rate : t -> float
val avg_txn_updates : t -> float

val small_write_fraction : t -> float
(** Fraction of logged updates flagged [word_sized]. *)

val stats : t -> stats

(** {1 Recommendation} *)

val recommend : t -> Tm.config
val pp : t Fmt.t

(** The thresholds in use (from the measured crossovers). *)

val two_layer_interleave_threshold : float
val two_layer_rollback_threshold : float
val force_txn_length_threshold : float

val inline_small_write_threshold : float
(** Small-write fraction above which the advisor pins the Optimized
    variant: the inline fast path already gives it the cheapest append
    (one line write-back + one fence), so batching buys nothing but
    durability lag. *)

val batch_group_size : int
(** Group size the advisor recommends when long update-heavy
    transactions favour [Batch]. *)
