(** Distributed REWIND: presumed-abort two-phase commit across [nodes]
    independent REWIND instances, each a private simulated-NVM arena with
    its own allocator, transaction manager and fault model, plus a
    coordinator whose own WAL holds the commit decisions.

    Durable protocol state is exactly the classical minimum:
    - participant vote = PREPARE record in that node's WAL
      ({!Rewind.Tm.prepare});
    - global commit point = decision record in the coordinator's WAL,
      appended durably {e before} any COMMIT message is sent;
    - no decision record means abort (presumed abort);
    - decision records are removed once every participant ACKs
      (ACK-driven forgetting).

    Any component may crash at any persistence event ([Arena.Crash]); it
    stops answering until {!recover} replays the logs.  Messages may be
    dropped ({!Net}); every RPC retries with bounded exponential backoff
    on the simulated clock, against idempotent participant handlers. *)

type config = {
  nodes : int;
  tm_cfg : Rewind.Tm.config;
  arena_kb : int;   (** per component (coordinator and each node) *)
  latency_ns : int;
  drop_1_in : int;  (** 0 = lossless fabric *)
  seed : int;
  max_retries : int;
  backoff_ns : int; (** base backoff, doubled per retry *)
}

val default_config : config
(** 3 nodes, [config_1l_nfp] managers, 512 KiB arenas, lossless fabric,
    3 retries with 4 us base backoff. *)

type t

val create : config -> t

type outcome =
  | Committed  (** decision record durable; all-present after recovery *)
  | Aborted    (** no decision record; all-absent after recovery *)
  | Unknown
      (** coordinator crashed mid-protocol; recovery decides from its log
          alone, but atomically (all-present or all-absent) *)

val pp_outcome : outcome Fmt.t

type op = { node : int; addr : int; value : int64 }

val submit : t -> op list -> outcome
(** Run one distributed transaction: execute the writes on every involved
    node, collect PREPARE votes, log the decision, fan out the result.
    Raises [Invalid_argument] if the coordinator is down ({!recover}
    first) or an op names a nonexistent node. *)

val recover : t -> unit
(** Restart every crashed component from its durable image and resolve
    every in-doubt transaction cluster-wide, using only the logs: each
    crashed node replays its WAL ({!Rewind.Tm.attach}), then every node's
    {!Rewind.Tm.in_doubt} list is resolved against the coordinator's
    decision log — decision present = commit, absent = abort.  Decision
    records with no remaining reader are then forgotten. *)

(** {1 Topology and cells} *)

val nodes : t -> int
val coordinator_up : t -> bool
val node_up : t -> int -> bool
val coordinator_arena : t -> Rewind_nvm.Arena.t
val node_arena : t -> int -> Rewind_nvm.Arena.t

val arenas : t -> Rewind_nvm.Arena.t array
(** All arenas, coordinator first — index 0 is the coordinator, index
    [i+1] is node [i].  The crash-everywhere sweep iterates this. *)

val alloc_cell : t -> int -> int
(** A durably-zero 8-byte cell on node [i], for workload payloads. *)

val read_cell : t -> int -> int -> int64
(** [read_cell t i addr] on node [i]'s arena. *)

val in_doubt_total : t -> int
(** In-doubt transactions summed over all live nodes — must be 0 after
    {!recover}. *)

val crash_node : t -> int -> unit
(** Power-fail node [i] right now: volatile state discarded, the node
    stops answering until {!recover}. *)

val crash_coordinator : t -> unit
(** Power-fail the coordinator right now. *)

val chaos_crash_coordinator_after_decision : t -> bool -> unit
(** Test hook: when on, the coordinator dies immediately after a decision
    record becomes durable, before any COMMIT message is sent — the state
    no arena crash point can reach, leaving every participant in doubt
    with the decision on stable storage. *)

(** {1 Statistics} *)

type stats = {
  committed : int;
  aborted : int;
  unknown : int;
  retries : int;      (** RPC retries after timeouts/losses *)
  msgs_sent : int;
  msgs_dropped : int;
  decisions : int;    (** decision records durably logged *)
  forgotten : int;    (** decision records removed after full ACKs *)
}

val stats : t -> stats
