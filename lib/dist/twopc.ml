(* Distributed REWIND: two-phase commit with presumed abort across N
   independent REWIND nodes, each a private simulated-NVM arena with its
   own allocator and transaction manager.

   The commit authority is split exactly as in the classical protocol:

   - a participant's vote is its durable PREPARE record ({!Tm.prepare});
     from that point its transaction is in doubt and survives recovery
     un-undone until resolved;
   - the coordinator's durable decision record, in its own WAL, is the
     only thing that can turn an in-doubt transaction into a commit.
     Absence of a decision means abort (presumed abort), so aborts cost
     the coordinator no log writes at all;
   - after every participant has ACKed the commit the decision record is
     removed (ACK-driven forgetting) — it has no reader left.

   Messages traverse a lossy simulated fabric ({!Net}); every RPC is
   retried with bounded exponential backoff on the simulated clock, and
   the participant-side handlers are idempotent so a retry after a lost
   reply is harmless.  Any component may crash at any persistence event
   ([Arena.Crash]); a crashed component simply stops answering until
   {!recover} replays its logs. *)

open Rewind_nvm

type config = {
  nodes : int;
  tm_cfg : Rewind.Tm.config;
  arena_kb : int;          (* per component (coordinator and each node) *)
  latency_ns : int;
  drop_1_in : int;         (* 0 = lossless fabric *)
  seed : int;
  max_retries : int;       (* RPC retries before the caller gives up *)
  backoff_ns : int;        (* base backoff, doubled per retry *)
}

let default_config =
  {
    nodes = 3;
    tm_cfg = Rewind.config_1l_nfp;
    arena_kb = 512;
    latency_ns = 1500;
    drop_1_in = 0;
    seed = 1;
    max_retries = 3;
    backoff_ns = 4000;
  }

(* Root-slot map.  Participants: allocator cursor at 1, manager at 2.
   Coordinator: allocator cursor at 1, decision log at 2, durable gtid
   high-water mark at 3 (so a recovered coordinator never reuses a global
   transaction id whose decision record was already forgotten). *)
let node_tm_slot = 2
let decision_log_slot = 2
let gtid_slot = 3

type node = {
  id : int;
  n_arena : Arena.t;
  mutable n_alloc : Alloc.t;
  mutable n_tm : Rewind.Tm.t option;  (* None while crashed *)
  (* Volatile handler state, lost with the node.  [active] makes the
     execute handler idempotent across retries; [prepared] does the same
     for phase 1 (the durable PREPARE must not be appended twice). *)
  active : (int, Rewind.Tm.txn) Hashtbl.t;
  prepared : (int, Rewind.Tm.txn) Hashtbl.t;
}

type t = {
  cfg : config;
  net : Net.t;
  c_arena : Arena.t;
  mutable c_alloc : Alloc.t;
  mutable c_log : Rewind.Log.t option;  (* None while crashed *)
  nodes : node array;
  mutable next_gtid : int;
  mutable committed : int;
  mutable aborted : int;
  mutable unknown : int;
  mutable retries : int;
  mutable decisions : int;
  mutable forgotten : int;
  (* Test hook: coordinator dies right after the decision record is
     durable, before any COMMIT message is sent — the state arm_crash
     cannot reach because no coordinator persistence event separates the
     decision from the fan-out. *)
  mutable chaos_after_decision : bool;
}

type outcome = Committed | Aborted | Unknown

let pp_outcome ppf = function
  | Committed -> Fmt.string ppf "committed"
  | Aborted -> Fmt.string ppf "aborted"
  | Unknown -> Fmt.string ppf "unknown"

type op = { node : int; addr : int; value : int64 }

let create (cfg : config) =
  if cfg.nodes < 1 then invalid_arg "Twopc.create: need at least one node";
  let size_bytes = cfg.arena_kb lsl 10 in
  let c_arena = Arena.create ~size_bytes () in
  let c_alloc = Alloc.create c_arena in
  let c_log =
    Rewind.Log.create Rewind.Log.Optimized c_alloc ~root_slot:decision_log_slot
  in
  Arena.root_set c_arena gtid_slot 1L;
  let nodes =
    Array.init cfg.nodes (fun id ->
        let n_arena = Arena.create ~size_bytes () in
        let n_alloc = Alloc.create n_arena in
        let tm = Rewind.Tm.create ~cfg:cfg.tm_cfg n_alloc ~root_slot:node_tm_slot in
        {
          id;
          n_arena;
          n_alloc;
          n_tm = Some tm;
          active = Hashtbl.create 8;
          prepared = Hashtbl.create 8;
        })
  in
  {
    cfg;
    net =
      Net.create ~latency_ns:cfg.latency_ns ~drop_1_in:cfg.drop_1_in
        ~seed:cfg.seed ();
    c_arena;
    c_alloc;
    c_log = Some c_log;
    nodes;
    next_gtid = 1;
    committed = 0;
    aborted = 0;
    unknown = 0;
    retries = 0;
    decisions = 0;
    forgotten = 0;
    chaos_after_decision = false;
  }

let nodes t = Array.length t.nodes
let coordinator_up t = t.c_log <> None
let node_up t i = t.nodes.(i).n_tm <> None
let node_arena t i = t.nodes.(i).n_arena
let coordinator_arena t = t.c_arena

(* Coordinator first, then the participants — the order the
   crash-everywhere sweep reports node indices in. *)
let arenas t = Array.append [| t.c_arena |] (Array.map (fun n -> n.n_arena) t.nodes)

let alloc_cell t i = Alloc.alloc_fresh t.nodes.(i).n_alloc 8
let read_cell t i addr = Arena.read t.nodes.(i).n_arena addr

let chaos_crash_coordinator_after_decision t on = t.chaos_after_decision <- on

(* Externally-injected power failures (demos, tests): the component's
   volatile state is discarded and it stops answering until {!recover}. *)
let crash_node t i =
  let n = t.nodes.(i) in
  Arena.crash n.n_arena;
  n.n_tm <- None

let crash_coordinator t =
  Arena.crash t.c_arena;
  t.c_log <- None

(* -- RPC plumbing ------------------------------------------------------- *)

(* One RPC to a participant: request hop, handler, reply hop.  A down node
   never answers; a node that crashes inside the handler is marked down
   (the caller sees a lost reply and retries into silence). *)
let node_call t n f =
  match n.n_tm with
  | None -> None
  | Some tm ->
      if not (Net.deliver t.net) then None
      else (
        match f tm with
        | v -> if Net.deliver t.net then Some v else None
        | exception Arena.Crash ->
            n.n_tm <- None;
            None)

let with_retries t n f =
  let rec go attempt =
    match node_call t n f with
    | Some _ as r -> r
    | None ->
        if attempt >= t.cfg.max_retries then None
        else begin
          t.retries <- t.retries + 1;
          Clock.advance (t.cfg.backoff_ns lsl min attempt 6);
          go (attempt + 1)
        end
  in
  go 0

(* Coordinator-local durable action; a crash takes the coordinator down. *)
let coord_call t f =
  match t.c_log with
  | None -> None
  | Some log -> (
      try Some (f log)
      with Arena.Crash ->
        t.c_log <- None;
        None)

(* -- participant-side handlers (all idempotent) ------------------------- *)

let h_execute n tm gtid writes =
  match Hashtbl.find_opt n.active gtid with
  | Some txn -> txn  (* duplicate request after a lost reply *)
  | None ->
      let txn = Rewind.Tm.begin_txn tm in
      Hashtbl.add n.active gtid txn;
      List.iter (fun (addr, value) -> Rewind.Tm.write tm txn ~addr ~value) writes;
      txn

let h_prepare n tm gtid =
  match Hashtbl.find_opt n.active gtid with
  | None -> false  (* no trace of the transaction here: vote no *)
  | Some txn ->
      if not (Hashtbl.mem n.prepared gtid) then begin
        Rewind.Tm.prepare tm txn ~gtid;
        Hashtbl.replace n.prepared gtid txn
      end;
      true

let h_commit n tm gtid =
  (match Hashtbl.find_opt n.prepared gtid with
  | Some txn ->
      Rewind.Tm.resolve_in_doubt tm txn ~commit:true;
      Hashtbl.remove n.prepared gtid
  | None -> ());  (* already committed: duplicate COMMIT, just ACK *)
  Hashtbl.remove n.active gtid

let h_abort n tm gtid =
  (match Hashtbl.find_opt n.prepared gtid with
  | Some txn ->
      Rewind.Tm.resolve_in_doubt tm txn ~commit:false;
      Hashtbl.remove n.prepared gtid
  | None -> (
      match Hashtbl.find_opt n.active gtid with
      | Some txn -> Rewind.Tm.rollback tm txn
      | None -> ()));
  Hashtbl.remove n.active gtid

(* -- coordinator-side durable state ------------------------------------- *)

(* The decision record: txn field carries the gtid; nothing else matters.
   Appending it durably is THE commit point of the global transaction. *)
let log_decision log gtid =
  ignore
    (Rewind.Log.append_record ~is_end:true log ~lsn:gtid ~txn:gtid
       ~typ:Rewind.Record.End ~addr:0 ~old_value:0L ~new_value:1L ~undo_next:0)

let forget log gtid =
  let arena = Rewind.Log.arena log in
  Rewind.Log.remove_where log (fun r -> Rewind.Record.txn arena r = gtid)

(* Durably advance the gtid high-water mark before handing out [g]. *)
let fresh_gtid t =
  let g = t.next_gtid in
  t.next_gtid <- g + 1;
  match
    coord_call t (fun _ ->
        Arena.root_set t.c_arena gtid_slot (Int64.of_int t.next_gtid))
  with
  | Some () -> Some g
  | None -> None

(* -- the protocol ------------------------------------------------------- *)

let best_effort_abort t gtid involved =
  List.iter
    (fun (n, _) -> ignore (with_retries t n (fun tm -> h_abort n tm gtid)))
    involved

let submit t ops =
  if t.c_log = None then invalid_arg "Twopc.submit: coordinator is down";
  List.iter
    (fun o ->
      if o.node < 0 || o.node >= Array.length t.nodes then
        invalid_arg "Twopc.submit: no such node")
    ops;
  match fresh_gtid t with
  | None ->
      (* Coordinator died before anything ran anywhere. *)
      t.unknown <- t.unknown + 1;
      Unknown
  | Some gtid -> (
      let involved =
        Array.to_list t.nodes
        |> List.filter_map (fun n ->
               match List.filter (fun o -> o.node = n.id) ops with
               | [] -> None
               | ws -> Some (n, List.map (fun o -> (o.addr, o.value)) ws))
      in
      let executed =
        List.for_all
          (fun (n, writes) ->
            with_retries t n (fun tm -> h_execute n tm gtid writes) <> None)
          involved
      in
      if not executed then begin
        best_effort_abort t gtid involved;
        t.aborted <- t.aborted + 1;
        Aborted
      end
      else
        (* Phase 1: collect votes.  A lost or crashed participant is a
           no-vote — presumed abort needs no durable coordinator state. *)
        let all_yes =
          List.for_all
            (fun (n, _) ->
              with_retries t n (fun tm -> h_prepare n tm gtid) = Some true)
            involved
        in
        if not all_yes then begin
          best_effort_abort t gtid involved;
          t.aborted <- t.aborted + 1;
          Aborted
        end
        else
          (* Phase 2: the durable decision, then the COMMIT fan-out. *)
          match coord_call t (fun log -> log_decision log gtid) with
          | None ->
              (* Coordinator crashed at the decision append.  Whether the
                 record made it durable is exactly what recovery reads
                 back: torn record -> presumed abort, intact -> commit. *)
              t.unknown <- t.unknown + 1;
              Unknown
          | Some () ->
              t.decisions <- t.decisions + 1;
              if t.chaos_after_decision then begin
                (* Decision durable, coordinator dies before any COMMIT
                   message leaves: every participant stays in doubt. *)
                t.c_log <- None;
                t.committed <- t.committed + 1;
                Committed
              end
              else begin
                let all_acked =
                  List.for_all
                    (fun (n, _) ->
                      with_retries t n (fun tm -> h_commit n tm gtid) <> None)
                    involved
                in
                (* ACK-driven forgetting: only once every participant has
                   durably committed may the decision record go — a
                   silent participant may still need to read it. *)
                if all_acked then (
                  match coord_call t (fun log -> forget log gtid) with
                  | Some () -> t.forgotten <- t.forgotten + 1
                  | None -> ());
                t.committed <- t.committed + 1;
                Committed
              end)

(* -- recovery ----------------------------------------------------------- *)

let revive_arena a =
  Arena.disarm_crash a;
  Arena.clear_crashed a

let recover t =
  (* Coordinator first: its log is the sole commit authority. *)
  if t.c_log = None then begin
    revive_arena t.c_arena;
    t.c_alloc <- Alloc.recover t.c_arena;
    t.c_log <-
      Some
        (Rewind.Log.attach Rewind.Log.Optimized t.c_alloc
           ~root_slot:decision_log_slot);
    t.next_gtid <-
      max t.next_gtid (Int64.to_int (Arena.root_get t.c_arena gtid_slot))
  end;
  let log = Option.get t.c_log in
  let log_arena = Rewind.Log.arena log in
  let decided = Hashtbl.create 16 in
  Rewind.Log.iter log (fun r ->
      Hashtbl.replace decided (Rewind.Record.txn log_arena r) ());
  (* Participants: replay each crashed node's WAL, then resolve every
     in-doubt transaction — on crashed and surviving nodes alike — from
     the decision log alone: decision present -> commit, absent -> abort. *)
  Array.iter
    (fun n ->
      if n.n_tm = None then begin
        revive_arena n.n_arena;
        n.n_alloc <- Alloc.recover n.n_arena;
        Hashtbl.reset n.active;
        Hashtbl.reset n.prepared;
        n.n_tm <-
          Some (Rewind.Tm.attach ~cfg:t.cfg.tm_cfg n.n_alloc ~root_slot:node_tm_slot)
      end;
      let tm = Option.get n.n_tm in
      List.iter
        (fun (txn, gtid) ->
          Rewind.Tm.resolve_in_doubt tm txn ~commit:(Hashtbl.mem decided gtid);
          Hashtbl.remove n.prepared gtid;
          Hashtbl.remove n.active gtid)
        (Rewind.Tm.in_doubt tm))
    t.nodes;
  (* Every in-doubt transaction everywhere is now durably resolved, so the
     surviving decision records have no reader left (implicit global ACK). *)
  if Hashtbl.length decided > 0 then begin
    Rewind.Log.clear_all log;
    t.forgotten <- t.forgotten + Hashtbl.length decided
  end

let in_doubt_total t =
  Array.fold_left
    (fun acc n ->
      match n.n_tm with
      | Some tm -> acc + List.length (Rewind.Tm.in_doubt tm)
      | None -> acc)
    0 t.nodes

(* -- statistics --------------------------------------------------------- *)

type stats = {
  committed : int;
  aborted : int;
  unknown : int;
  retries : int;
  msgs_sent : int;
  msgs_dropped : int;
  decisions : int;
  forgotten : int;
}

let stats (t : t) =
  {
    committed = t.committed;
    aborted = t.aborted;
    unknown = t.unknown;
    retries = t.retries;
    msgs_sent = Net.sent t.net;
    msgs_dropped = Net.dropped t.net;
    decisions = t.decisions;
    forgotten = t.forgotten;
  }
