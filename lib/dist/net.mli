(** Simulated lossy message fabric for the distributed commit protocol.

    Deterministic: loss is sampled from a private LCG seeded at
    {!create}, so a run is a pure function of the seed — the
    crash-everywhere sweep replays the identical message schedule while
    it moves the crash point. *)

type t

val create : ?latency_ns:int -> ?drop_1_in:int -> ?seed:int -> unit -> t
(** [drop_1_in = 0] (default) is a lossless fabric; [n > 0] drops roughly
    one message in [n].  [latency_ns] (default 1500) is charged to the
    calling domain's simulated clock per message hop. *)

val deliver : t -> bool
(** One message hop: charges latency and returns whether it arrived. *)

val sent : t -> int
val dropped : t -> int
