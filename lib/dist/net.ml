(* The simulated message fabric between the 2PC coordinator and its
   participant nodes.

   Messages are synchronous calls in the simulator, so the fabric models
   only the two failure-relevant properties: latency (charged to the
   calling domain's simulated clock, once per message) and loss.  Loss is
   sampled from a private linear-congruential generator, so a run is a
   pure function of the seed — the crash-everywhere enumerator depends on
   replaying the exact same message schedule while it moves the crash
   point. *)

open Rewind_nvm

type t = {
  latency_ns : int;
  drop_1_in : int;  (* 0 = lossless; n > 0 drops ~1/n messages *)
  mutable state : int;
  mutable sent : int;
  mutable dropped : int;
}

let create ?(latency_ns = 1500) ?(drop_1_in = 0) ?(seed = 1) () =
  { latency_ns; drop_1_in; state = seed lor 1; sent = 0; dropped = 0 }

(* splitmix-style multiplier that fits OCaml's 63-bit tagged int. *)
let next_state s = (s * 0x2545F4914F6CDD1D) + 0x9E3779B97F4A7C1

(* One message hop: charge latency, then decide whether it arrives. *)
let deliver t =
  t.sent <- t.sent + 1;
  Clock.advance t.latency_ns;
  if t.drop_1_in <= 0 then true
  else begin
    t.state <- next_state t.state;
    let drop = (t.state lsr 33) mod t.drop_1_in = 0 in
    if drop then t.dropped <- t.dropped + 1;
    not drop
  end

let sent t = t.sent
let dropped t = t.dropped
