(** The TPC-C new-order transaction (Section 5.3): the most write-intensive
    TPC-C transaction and the paper's stress-test workload.  One percent of
    requests reference an invalid item and roll back; the non-recoverable
    execution abandons them mid-flight, as in the paper. *)

exception Invalid_item

type line = { li_item : int; li_qty : int }

type request = {
  rq_warehouse : int;
  rq_district : int;
  rq_customer : int;
  rq_lines : line list;
  rq_invalid : bool;
}

val gen_request :
  ?warehouse:int -> ?district:int -> ?customers:int -> Rng.t -> items:int ->
  request
(** TPC-C request: 5–15 NURand order lines, 1 % invalid. *)

val request_work_ns : request -> int
(** Modelled application-level work per request. *)

type outcome = Committed | Aborted

val run_transactional : ?home:int -> Schema.db -> Rewind.Tm.t -> request -> outcome
(** [?home] pins the transaction's log partition (home-warehouse
    pinning); defaults to the transaction manager's round-robin. *)

val run_raw : Schema.db -> request -> outcome
