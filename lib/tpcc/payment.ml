(* The TPC-C payment transaction — an extension beyond the paper's
   evaluation (which stress-tests new-order only), completing the two
   transactions that make up ~88 % of the standard TPC-C mix.

   Per the spec (home-warehouse payments only): pick a district and
   customer, add the amount to the district's year-to-date total, subtract
   it from the customer's balance (updating the customer's payment
   statistics), and append a history row. *)

open Rewind_pds

type request = {
  p_warehouse : int;
  p_district : int;
  p_customer : int;
  p_amount : int;
}

let gen_request ?(warehouse = 1) ?(district = 0) ?(customers = 100) rng =
  {
    p_warehouse = warehouse;
    p_district = (if district > 0 then district else Rng.int rng 1 Schema.districts);
    p_customer = Rng.int rng 1 customers;
    p_amount = Rng.int rng 100 500_000;  (* cents: $1.00 - $5000.00 *)
  }

let body db tm_opt txn rq =
  Rewind_nvm.Clock.advance 30_000;  (* application-level work *)
  let w = rq.p_warehouse in
  let d = rq.p_district in
  let set row field v =
    match tm_opt with
    | Some tm -> Schema.row_set db tm txn row field v
    | None -> Schema.row_set_raw db row field v
  in
  let amount = Int64.of_int rq.p_amount in
  (* district: d_ytd += amount; allocate the history id *)
  let drow = Schema.district_row db w d in
  set drow Schema.d_ytd (Int64.add (Schema.row_get db drow Schema.d_ytd) amount);
  let h_id = Int64.to_int (Schema.row_get db drow Schema.d_next_h_id) in
  set drow Schema.d_next_h_id (Int64.of_int (h_id + 1));
  (* customer: balance -= amount; payment statistics *)
  let crow =
    Int64.to_int
      (Option.get
         (Btree.lookup (Schema.customer_tree db w)
            (Schema.key_customer db w d rq.p_customer)))
  in
  set crow Schema.c_balance
    (Int64.sub (Schema.row_get db crow Schema.c_balance) amount);
  set crow Schema.c_ytd_payment
    (Int64.add (Schema.row_get db crow Schema.c_ytd_payment) amount);
  set crow Schema.c_payment_cnt
    (Int64.add (Schema.row_get db crow Schema.c_payment_cnt) 1L);
  (* history row *)
  let hrow = Schema.new_row db Schema.history_words in
  Schema.row_set_raw db hrow Schema.h_c_id (Int64.of_int rq.p_customer);
  Schema.row_set_raw db hrow Schema.h_d_id (Int64.of_int d);
  Schema.row_set_raw db hrow Schema.h_amount amount;
  Btree.insert (Schema.history_tree db w) txn
    (Schema.key_history db w d h_id)
    (Int64.of_int hrow)

let run_transactional ?home db tm rq =
  Rewind.Tm.atomically ?home tm (fun txn -> body db (Some tm) txn rq)

let run_raw db rq = body db None 0 rq

(* Consistency probe: per district, d_ytd must equal the sum of its
   history amounts (TPC-C consistency condition 2-ish, adapted). *)
let check_consistency db =
  let ok = ref true in
  for w = 1 to db.Schema.warehouses do
    for d = 1 to Schema.districts do
      let drow = Schema.district_row db w d in
      let next_h = Int64.to_int (Schema.row_get db drow Schema.d_next_h_id) in
      let sum = ref 0L in
      for h = 1 to next_h - 1 do
        match
          Btree.lookup (Schema.history_tree db w) (Schema.key_history db w d h)
        with
        | None -> ok := false
        | Some hrow ->
            sum :=
              Int64.add !sum
                (Schema.row_get db (Int64.to_int hrow) Schema.h_amount)
      done;
      if Schema.row_get db drow Schema.d_ytd <> !sum then ok := false
    done
  done;
  !ok
