(** The Section 5.3 benchmark driver: ten terminals (one per district)
    issuing new-order transactions as simulated threads, in the four
    configurations Figure 11 compares. *)

type configuration =
  | Nvm_naive        (** persistent, not recoverable, naive layout *)
  | Rewind_naive     (** naive data structures over REWIND, coarse lock *)
  | Rewind_opt       (** co-designed per-district layout, shared log *)
  | Rewind_opt_dlog  (** co-designed layout, distributed (per-terminal) log *)

val pp_configuration : configuration Fmt.t

type result = {
  committed : int;
  aborted : int;
      (** true aborts — the spec's 1 % invalid-item rollbacks, never
          retried *)
  retried : int;
      (** conflict retries — data-lock contention backed off (bounded
          exponential, simulated time) and rerun; these transactions still
          end up in [committed] or [aborted] *)
  sim_ns : int;   (** slowest terminal's simulated time *)
  tpm : float;    (** new-order transactions per simulated minute *)
}

val tm_config : Rewind.Tm.config
(** The REWIND configuration the TPC-C runs use (1L, no-force, Batch 8). *)

val shared_root : int
(** Arena root slot of the shared transaction manager. *)

val run :
  ?terminals:int ->
  ?txns_per_terminal:int ->
  ?params:Datagen.params ->
  ?arena_mb:int ->
  ?on_arena:(Rewind_nvm.Arena.t -> unit) ->
  config:configuration ->
  unit ->
  result
(** [on_arena] is called with the freshly created arena before the data
    load and the measured run — the hook by which trace consumers (the
    race detector) attach. *)

val check_consistency : Schema.db -> bool
(** Every committed order has matching orders/order-line rows up to the
    district's next-order id. *)

val check_delivery_consistency : Schema.db -> bool
(** An order carries a carrier id exactly when its new-order entry is
    gone, and a delivered order has every line stamped with a delivery
    date. *)

val check_mix_consistency : Schema.db -> bool
(** {!check_consistency} + {!Payment.check_consistency} +
    {!check_delivery_consistency}: holds at every transaction boundary of
    a five-transaction mixed run. *)

type mix_result = {
  mix_committed : int;   (** all five types, incl. enqueued deliveries *)
  mix_aborted : int;     (** invalid-item rollbacks *)
  mix_retried : int;     (** data-lock conflicts backed off and rerun *)
  mix_new_orders : int;  (** committed new-orders (the tpmC numerator) *)
  mix_deliveries : int;  (** deferred delivery transactions executed *)
  mix_sim_ns : int;
  mix_tpmc : float;      (** committed new-orders per simulated minute *)
  mix_consistent : bool;
}

val run_mix :
  ?warehouses:int ->
  ?terminals_per_warehouse:int ->
  ?txns_per_terminal:int ->
  ?params:Datagen.params ->
  ?arena_mb:int ->
  ?partitions:int ->
  ?layout:Schema.layout ->
  ?cfg:Rewind.Tm.config ->
  ?on_arena:(Rewind_nvm.Arena.t -> unit) ->
  unit ->
  mix_result * Schema.db
(** The five-transaction closed-loop driver: terminals cycle through
    their home warehouse's requests under one coarse data lock, every
    transaction pinned to log partition [(w-1) mod partitions].  Deferred
    deliveries run promptly after the enqueuing transaction.  Returns the
    result and the (logged) database for further probing. *)
