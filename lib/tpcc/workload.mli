(** The Section 5.3 benchmark driver: ten terminals (one per district)
    issuing new-order transactions as simulated threads, in the four
    configurations Figure 11 compares. *)

type configuration =
  | Nvm_naive        (** persistent, not recoverable, naive layout *)
  | Rewind_naive     (** naive data structures over REWIND, coarse lock *)
  | Rewind_opt       (** co-designed per-district layout, shared log *)
  | Rewind_opt_dlog  (** co-designed layout, distributed (per-terminal) log *)

val pp_configuration : configuration Fmt.t

type result = {
  committed : int;
  aborted : int;
      (** true aborts — the spec's 1 % invalid-item rollbacks, never
          retried *)
  retried : int;
      (** conflict retries — data-lock contention backed off (bounded
          exponential, simulated time) and rerun; these transactions still
          end up in [committed] or [aborted] *)
  sim_ns : int;   (** slowest terminal's simulated time *)
  tpm : float;    (** new-order transactions per simulated minute *)
}

val tm_config : Rewind.Tm.config
(** The REWIND configuration the TPC-C runs use (1L, no-force, Batch 8). *)

val run :
  ?terminals:int ->
  ?txns_per_terminal:int ->
  ?params:Datagen.params ->
  ?arena_mb:int ->
  ?on_arena:(Rewind_nvm.Arena.t -> unit) ->
  config:configuration ->
  unit ->
  result
(** [on_arena] is called with the freshly created arena before the data
    load and the measured run — the hook by which trace consumers (the
    race detector) attach. *)

val check_consistency : Schema.db -> bool
(** Every committed order has matching orders/order-line rows up to the
    district's next-order id. *)
