(** The TPC-C delivery transaction with deferred-execution semantics: the
    terminal enqueues a request and responds immediately; the database
    transaction runs later via {!execute_deferred}, delivering the oldest
    undelivered order of every district of the warehouse.

    The queue is volatile by design — only the executed transaction's
    effects need to be (and are) crash-atomic. *)

type request = { dl_warehouse : int; dl_carrier : int }

val gen_request : ?warehouse:int -> Rng.t -> request

type queue

val queue_create : unit -> queue
val enqueue : queue -> request -> unit
val pending : queue -> int

val execute_deferred :
  ?home:int -> Schema.db -> Rewind.Tm.t -> queue -> int option
(** Run the oldest queued request as one REWIND transaction; [Some n] is
    the number of orders delivered (districts with an empty new-order
    tree are skipped), [None] if the queue is empty.  [?home] pins the
    transaction's log partition. *)

val run_raw : Schema.db -> request -> int
(** Immediate non-transactional execution (non-recoverable NVM config). *)
