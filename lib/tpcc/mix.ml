(* The full five-transaction TPC-C mix at the spec's minimum percentages:
   45 % new-order, 43 % payment, 4 % order-status, 4 % delivery, 4 %
   stock-level.

   [execute] runs a request as one REWIND transaction against the
   caller's home-warehouse log partition.  Delivery only *enqueues* here
   (the terminal's immediate response, per the spec's deferred-execution
   requirement); the driver runs the queued database transactions via
   {!drain_deliveries} — in the open-loop bench that happens on the
   delivering terminal's fiber, after the response was already counted. *)

type request =
  | New_order of Neworder.request
  | Payment of Payment.request
  | Order_status of Orderstatus.request
  | Delivery of Delivery.request
  | Stock_level of Stocklevel.request

let gen ?(warehouse = 1) ?customers rng ~items =
  let p = Rng.int rng 1 100 in
  if p <= 45 then New_order (Neworder.gen_request ~warehouse ?customers rng ~items)
  else if p <= 88 then Payment (Payment.gen_request ~warehouse ?customers rng)
  else if p <= 92 then
    Order_status (Orderstatus.gen_request ~warehouse ?customers rng)
  else if p <= 96 then Delivery (Delivery.gen_request ~warehouse rng)
  else Stock_level (Stocklevel.gen_request ~warehouse rng)

let is_new_order = function New_order _ -> true | _ -> false

let warehouse_of = function
  | New_order rq -> rq.Neworder.rq_warehouse
  | Payment rq -> rq.Payment.p_warehouse
  | Order_status rq -> rq.Orderstatus.os_warehouse
  | Delivery rq -> rq.Delivery.dl_warehouse
  | Stock_level rq -> rq.Stocklevel.sl_warehouse

type outcome = Committed | Aborted

let execute ?home db tm ~queue rq =
  match rq with
  | New_order rq -> (
      match Neworder.run_transactional ?home db tm rq with
      | Neworder.Committed -> Committed
      | Neworder.Aborted -> Aborted)
  | Payment rq ->
      Payment.run_transactional ?home db tm rq;
      Committed
  | Order_status rq ->
      ignore (Orderstatus.run db rq);
      Committed
  | Delivery rq ->
      (* immediate terminal response; the database transaction is
         deferred to [drain_deliveries] *)
      Delivery.enqueue queue rq;
      Committed
  | Stock_level rq ->
      ignore (Stocklevel.run db rq);
      Committed

(* Execute every queued delivery, each as its own transaction.  Returns
   the number of deferred transactions run. *)
let drain_deliveries ?home db tm queue =
  let rec go n =
    match Delivery.execute_deferred ?home db tm queue with
    | None -> n
    | Some _ -> go (n + 1)
  in
  go 0
