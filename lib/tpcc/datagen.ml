(* TPC-C initial population (scaled item/customer/order counts are
   configurable so tests and quick benches stay fast).  Loading writes
   rows with raw durable stores and inserts tree entries through a
   throwaway transaction of the provided loader mode — the benchmark then
   reattaches the trees in the measured persistence mode.

   [initial_orders] pre-existing orders per district are materialised as
   delivered history except for the newest [undelivered] of them, which
   keep a new-order entry so delivery has work from the first minute —
   mirroring the spec's initial population (3000 orders, last 900
   undelivered, scaled down here). *)

open Rewind_pds

type params = {
  items : int;          (* TPC-C: 100_000 *)
  customers_per_district : int;  (* TPC-C: 3_000 *)
  initial_orders : int;  (* pre-existing orders per district *)
  undelivered : int;     (* newest initial orders still awaiting delivery *)
}

let default =
  { items = 100_000; customers_per_district = 3_000; initial_orders = 0;
    undelivered = 0 }

let small =
  { items = 2_000; customers_per_district = 100; initial_orders = 0;
    undelivered = 0 }

(* Micro scale for crash sweeps and the open-loop bench: small enough
   that a crash-at-every-persistence-event sweep stays tractable, big
   enough that every transaction type finds work. *)
let micro =
  { items = 50; customers_per_district = 10; initial_orders = 4;
    undelivered = 2 }

(* Populate [db]; the trees must be in a raw mode (Dram / Direct_nvm) or a
   logged mode whose transaction [txn] is provided by the caller. *)
let load ?(params = default) db txn =
  let rng = Rng.create 42 in
  let warehouses = db.Schema.warehouses in
  let undelivered = min params.undelivered params.initial_orders in
  for w = 1 to warehouses do
    (* districts *)
    for d = 1 to Schema.districts do
      let row = Schema.new_row db Schema.district_words in
      Schema.set_district_row db w d row;
      Schema.row_set_raw db row Schema.d_tax (Int64.of_int (Rng.int rng 0 2000));
      Schema.row_set_raw db row Schema.d_ytd 0L;
      Schema.row_set_raw db row Schema.d_next_o_id
        (Int64.of_int (params.initial_orders + 1));
      Schema.row_set_raw db row Schema.d_next_h_id 1L
    done;
    (* customers *)
    for d = 1 to Schema.districts do
      for c = 1 to params.customers_per_district do
        let row = Schema.new_row db Schema.customer_words in
        Schema.row_set_raw db row Schema.c_discount
          (Int64.of_int (Rng.int rng 0 5000));
        Schema.row_set_raw db row Schema.c_balance 0L;
        Btree.insert (Schema.customer_tree db w) txn
          (Schema.key_customer db w d c)
          (Int64.of_int row)
      done
    done;
    (* stock *)
    for i = 1 to params.items do
      let srow = Schema.new_row db Schema.stock_words in
      Schema.row_set_raw db srow Schema.s_quantity
        (Int64.of_int (Rng.int rng 10 100));
      Btree.insert (Schema.stock_tree db w) txn
        (Schema.key_stock db w i)
        (Int64.of_int srow)
    done;
    (* initial orders: delivered except the newest [undelivered] *)
    for d = 1 to Schema.districts do
      for o = 1 to params.initial_orders do
        let delivered = o <= params.initial_orders - undelivered in
        let lines = Rng.int rng 5 15 in
        let orow = Schema.new_row db Schema.order_words in
        Schema.row_set_raw db orow Schema.o_c_id
          (Int64.of_int (Rng.int rng 1 params.customers_per_district));
        Schema.row_set_raw db orow Schema.o_ol_cnt (Int64.of_int lines);
        Schema.row_set_raw db orow Schema.o_carrier_id
          (if delivered then Int64.of_int (Rng.int rng 1 10) else 0L);
        Btree.insert (Schema.order_tree db w d) txn
          (Schema.key_order db w d o)
          (Int64.of_int orow);
        for ol = 1 to lines do
          let lrow = Schema.new_row db Schema.order_line_words in
          Schema.row_set_raw db lrow Schema.ol_i_id
            (Int64.of_int (Rng.int rng 1 params.items));
          Schema.row_set_raw db lrow Schema.ol_supply_w_id (Int64.of_int w);
          Schema.row_set_raw db lrow Schema.ol_quantity
            (Int64.of_int (Rng.int rng 1 10));
          Schema.row_set_raw db lrow Schema.ol_amount
            (Int64.of_int (Rng.int rng 100 10_000));
          Schema.row_set_raw db lrow Schema.ol_delivery_d
            (if delivered then 1L else 0L);
          Btree.insert (Schema.order_line_tree db w d) txn
            (Schema.key_order_line db w d o ol)
            (Int64.of_int lrow)
        done;
        if not delivered then
          Btree.insert (Schema.new_order_tree db w d) txn
            (Schema.key_order db w d o)
            (Int64.of_int o)
      done
    done
  done;
  (* items (shared across warehouses) *)
  for i = 1 to params.items do
    let irow = Schema.new_row db Schema.item_words in
    Schema.row_set_raw db irow Schema.i_price
      (Int64.of_int (Rng.int rng 100 10000));
    Btree.insert db.Schema.item txn (Schema.key_item i) (Int64.of_int irow)
  done
