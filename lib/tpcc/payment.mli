(** The TPC-C payment transaction — an extension beyond the paper's
    new-order-only evaluation: updates the district's year-to-date total
    and the customer's balance/statistics, and appends a history row. *)

type request = {
  p_warehouse : int;
  p_district : int;
  p_customer : int;
  p_amount : int;
}

val gen_request : ?warehouse:int -> ?district:int -> ?customers:int -> Rng.t -> request

val run_transactional : ?home:int -> Schema.db -> Rewind.Tm.t -> request -> unit
(** [?home] pins the transaction's log partition (home-warehouse
    pinning); defaults to the transaction manager's round-robin. *)

val run_raw : Schema.db -> request -> unit

val check_consistency : Schema.db -> bool
(** Per district, d_ytd must equal the sum of its history amounts. *)
