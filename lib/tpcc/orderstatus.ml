(* The TPC-C order-status transaction: a read-only probe of a customer's
   most recent order and its lines.

   Per the spec (simplified to id-based customer selection): find the
   customer's last order by scanning backward from the district's
   next-order id, then read every order line.  Read-only means no log
   records under any REWIND configuration — the transaction exists to
   exercise the mix's read path and the co-designed key layouts. *)

open Rewind_pds

type request = { os_warehouse : int; os_district : int; os_customer : int }

let gen_request ?(warehouse = 1) ?(district = 0) ?(customers = 100) rng =
  {
    os_warehouse = warehouse;
    os_district =
      (if district > 0 then district else Rng.int rng 1 Schema.districts);
    os_customer = Rng.int rng 1 customers;
  }

type status = {
  st_order : int;
  st_carrier : int;  (* 0 = not yet delivered *)
  st_lines : int;
  st_total : int64;  (* sum of ol_amount over the order's lines *)
}

(* Bounded backward scan: the spec's "last order of this customer" without
   a customer-id secondary index.  [max_scan] keeps the read set small
   even for customers who never ordered. *)
let max_scan = 100

let run db rq =
  Rewind_nvm.Clock.advance 25_000;  (* application-level work *)
  let w = rq.os_warehouse and d = rq.os_district in
  let drow = Schema.district_row db w d in
  let next_o = Int64.to_int (Schema.row_get db drow Schema.d_next_o_id) in
  let lo = max 1 (next_o - max_scan) in
  let rec find o =
    if o < lo then None
    else
      match Btree.lookup (Schema.order_tree db w d) (Schema.key_order db w d o) with
      | Some orow_v
        when Int64.to_int (Schema.row_get db (Int64.to_int orow_v) Schema.o_c_id)
             = rq.os_customer ->
          Some (o, Int64.to_int orow_v)
      | _ -> find (o - 1)
  in
  match find (next_o - 1) with
  | None -> None
  | Some (o_id, orow) ->
      let lines = Int64.to_int (Schema.row_get db orow Schema.o_ol_cnt) in
      let total = ref 0L in
      for ol = 1 to lines do
        match
          Btree.lookup (Schema.order_line_tree db w d)
            (Schema.key_order_line db w d o_id ol)
        with
        | None -> ()
        | Some lrow ->
            total :=
              Int64.add !total
                (Schema.row_get db (Int64.to_int lrow) Schema.ol_amount)
      done;
      Some
        {
          st_order = o_id;
          st_carrier =
            Int64.to_int (Schema.row_get db orow Schema.o_carrier_id);
          st_lines = lines;
          st_total = !total;
        }
