(** The TPC-C order-status transaction: read-only lookup of a customer's
    most recent order and its lines.  Issues no log records — it exists to
    exercise the mix's read path. *)

type request = { os_warehouse : int; os_district : int; os_customer : int }

val gen_request : ?warehouse:int -> ?district:int -> ?customers:int -> Rng.t -> request

type status = {
  st_order : int;
  st_carrier : int;  (** 0 = not yet delivered *)
  st_lines : int;
  st_total : int64;
}

val run : Schema.db -> request -> status option
(** [None] when the customer has no order in the bounded backward scan
    window. *)
