(** The full five-transaction TPC-C mix (45 % new-order, 43 % payment,
    4 % each order-status / delivery / stock-level).  Delivery requests
    are enqueued at execute time and run later via {!drain_deliveries},
    per the spec's deferred-execution semantics. *)

type request =
  | New_order of Neworder.request
  | Payment of Payment.request
  | Order_status of Orderstatus.request
  | Delivery of Delivery.request
  | Stock_level of Stocklevel.request

val gen : ?warehouse:int -> ?customers:int -> Rng.t -> items:int -> request

val is_new_order : request -> bool
(** tpmC counts committed new-orders only. *)

val warehouse_of : request -> int

type outcome = Committed | Aborted

val execute :
  ?home:int -> Schema.db -> Rewind.Tm.t -> queue:Delivery.queue ->
  request -> outcome
(** Run one request as a REWIND transaction ([?home] pins its log
    partition).  Delivery only enqueues — it always reports [Committed]
    (the terminal's immediate response). *)

val drain_deliveries :
  ?home:int -> Schema.db -> Rewind.Tm.t -> Delivery.queue -> int
(** Execute every queued delivery, one transaction each; returns how many
    deferred transactions ran. *)
