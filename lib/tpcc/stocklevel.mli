(** The TPC-C stock-level transaction: read-only count of distinct items
    in the district's last 20 orders whose stock quantity is below a
    threshold.  The largest read set in the mix; issues no log records. *)

type request = { sl_warehouse : int; sl_district : int; sl_threshold : int }

val gen_request : ?warehouse:int -> ?district:int -> Rng.t -> request

val run : Schema.db -> request -> int
(** Number of distinct below-threshold items. *)
