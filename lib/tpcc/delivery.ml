(* The TPC-C delivery transaction, with the spec's deferred-execution
   semantics: the terminal enqueues a delivery request and gets an
   immediate response; a background step later runs the actual database
   transaction, which delivers the oldest undelivered order of every
   district of the warehouse.

   The queue is deliberately volatile (driver-level state): TPC-C only
   requires the *result* of an executed delivery to be durable, and a
   crash between enqueue and execution loses at most the queued intent —
   the executed transaction itself goes through REWIND and is
   crash-atomic like any other.  The crash sweep arms crashes inside the
   deferred execution to prove exactly that. *)

open Rewind_pds

type request = { dl_warehouse : int; dl_carrier : int }

let gen_request ?(warehouse = 1) rng =
  { dl_warehouse = warehouse; dl_carrier = Rng.int rng 1 10 }

type queue = request Queue.t

let queue_create () : queue = Queue.create ()
let enqueue (q : queue) rq = Queue.add rq q
let pending (q : queue) = Queue.length q

(* Oldest undelivered order of district [d]: the minimum key in the
   new-order tree's (w, d) range (compound-keyed under Naive, the whole
   per-district tree under Optimized). *)
let oldest_new_order db w d =
  let lo = Schema.key_order db w d 0
  and hi = Schema.key_order db w d 99_999_999 in
  let found = ref None in
  (try
     Btree.iter_range (Schema.new_order_tree db w d) ~lo ~hi (fun _k v ->
         found := Some (Int64.to_int v);
         raise Exit)
   with Exit -> ());
  !found

(* The deferred database transaction: per district, deliver the oldest
   undelivered order — remove its new-order entry, stamp the carrier on
   the order, stamp the delivery date on every line while summing the
   amounts, then credit the customer.  Returns the number of orders
   delivered (districts with an empty new-order tree are skipped, per the
   spec). *)
let body db tm_opt txn rq =
  Rewind_nvm.Clock.advance 40_000;  (* application-level work *)
  let w = rq.dl_warehouse in
  let set row field v =
    match tm_opt with
    | Some tm -> Schema.row_set db tm txn row field v
    | None -> Schema.row_set_raw db row field v
  in
  let delivered = ref 0 in
  for d = 1 to Schema.districts do
    match oldest_new_order db w d with
    | None -> ()  (* spec: skip districts with nothing to deliver *)
    | Some o_id ->
        ignore
          (Btree.delete (Schema.new_order_tree db w d) txn
             (Schema.key_order db w d o_id));
        let orow =
          Int64.to_int
            (Option.get
               (Btree.lookup (Schema.order_tree db w d)
                  (Schema.key_order db w d o_id)))
        in
        set orow Schema.o_carrier_id (Int64.of_int rq.dl_carrier);
        let lines = Int64.to_int (Schema.row_get db orow Schema.o_ol_cnt) in
        let total = ref 0L in
        for ol = 1 to lines do
          match
            Btree.lookup (Schema.order_line_tree db w d)
              (Schema.key_order_line db w d o_id ol)
          with
          | None -> ()
          | Some lrow_v ->
              let lrow = Int64.to_int lrow_v in
              set lrow Schema.ol_delivery_d 1L;
              total :=
                Int64.add !total (Schema.row_get db lrow Schema.ol_amount)
        done;
        let c_id = Int64.to_int (Schema.row_get db orow Schema.o_c_id) in
        let crow =
          Int64.to_int
            (Option.get
               (Btree.lookup (Schema.customer_tree db w)
                  (Schema.key_customer db w d c_id)))
        in
        set crow Schema.c_balance
          (Int64.add (Schema.row_get db crow Schema.c_balance) !total);
        set crow Schema.c_delivery_cnt
          (Int64.add (Schema.row_get db crow Schema.c_delivery_cnt) 1L);
        incr delivered
  done;
  !delivered

(* Execute the oldest queued request as one REWIND transaction.  Returns
   the number of orders delivered, or [None] if the queue is empty. *)
let execute_deferred ?home db tm (q : queue) =
  match Queue.take_opt q with
  | None -> None
  | Some rq ->
      Some (Rewind.Tm.atomically ?home tm (fun txn -> body db (Some tm) txn rq))

let run_raw db rq = body db None 0 rq
