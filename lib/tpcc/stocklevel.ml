(* The TPC-C stock-level transaction: a read-only cross-table join — count
   how many distinct items among the district's last 20 orders' lines have
   a stock quantity below a threshold.

   The largest read set in the mix (up to 20 orders x 15 lines, each with
   an item and a stock lookup); like order-status it issues no log
   records, so it measures the co-designed layouts' read path under the
   open-loop mix. *)

open Rewind_pds

type request = { sl_warehouse : int; sl_district : int; sl_threshold : int }

let orders_back = 20

let gen_request ?(warehouse = 1) ?(district = 0) rng =
  {
    sl_warehouse = warehouse;
    sl_district =
      (if district > 0 then district else Rng.int rng 1 Schema.districts);
    sl_threshold = Rng.int rng 10 20;
  }

let run db rq =
  Rewind_nvm.Clock.advance 35_000;  (* application-level work *)
  let w = rq.sl_warehouse and d = rq.sl_district in
  let drow = Schema.district_row db w d in
  let next_o = Int64.to_int (Schema.row_get db drow Schema.d_next_o_id) in
  let lo_o = max 1 (next_o - orders_back) in
  let seen = Hashtbl.create 64 in
  let low = ref 0 in
  for o = lo_o to next_o - 1 do
    match Btree.lookup (Schema.order_tree db w d) (Schema.key_order db w d o) with
    | None -> ()
    | Some orow_v ->
        let lines =
          Int64.to_int
            (Schema.row_get db (Int64.to_int orow_v) Schema.o_ol_cnt)
        in
        for ol = 1 to lines do
          match
            Btree.lookup (Schema.order_line_tree db w d)
              (Schema.key_order_line db w d o ol)
          with
          | None -> ()
          | Some lrow_v ->
              let item =
                Int64.to_int
                  (Schema.row_get db (Int64.to_int lrow_v) Schema.ol_i_id)
              in
              if not (Hashtbl.mem seen item) then begin
                Hashtbl.add seen item ();
                match
                  Btree.lookup (Schema.stock_tree db w)
                    (Schema.key_stock db w item)
                with
                | None -> ()
                | Some srow_v ->
                    let q =
                      Int64.to_int
                        (Schema.row_get db (Int64.to_int srow_v)
                           Schema.s_quantity)
                    in
                    if q < rq.sl_threshold then incr low
              end
        done
  done;
  !low
