(* TPC-C schema subset for the five-transaction mix (Section 5.3).

   Tables are B+-trees over NVM; rows are fixed-width NVM regions of word
   fields referenced by the tree's value word.  Two physical layouts are
   supported, reflecting the paper's co-design experiment:

   - [Naive]: one tree per table; warehouse and district ids are packed
     into compound 64-bit keys;
   - [Optimized]: the per-warehouse tables (customer, stock, history)
     become one tree per warehouse and the order-side tables (orders,
     order-line, new-order) one tree per (warehouse, district), keyed by
     o_id alone — exploiting the tiny district domain exactly as the
     paper's optimised data structure does, and giving each warehouse a
     disjoint tree set so home-warehouse pinning shards cleanly.

   Scale factor: [warehouses] warehouses (default 1), ten districts
   each. *)

open Rewind_nvm
open Rewind_pds

let districts = 10

type layout = Naive | Optimized

(* -- row field offsets (words) -- *)

(* district row: d_tax, d_ytd, d_next_o_id, d_next_h_id *)
let district_words = 4
let d_tax = 0
let d_ytd = 1
let d_next_o_id = 2
let d_next_h_id = 3

(* customer row: c_discount, c_balance, c_ytd_payment, c_payment_cnt,
   c_delivery_cnt *)
let customer_words = 5
let c_discount = 0
let c_balance = 1
let c_ytd_payment = 2
let c_payment_cnt = 3
let c_delivery_cnt = 4

(* item row: i_price *)
let item_words = 1
let i_price = 0

(* stock row: s_quantity, s_ytd, s_order_cnt, s_remote_cnt *)
let stock_words = 4
let s_quantity = 0
let s_ytd = 1
let s_order_cnt = 2
let s_remote_cnt = 3

(* orders row: o_c_id, o_entry_d, o_ol_cnt, o_carrier_id (0 = not yet
   delivered) *)
let order_words = 4
let o_c_id = 0
let o_entry_d = 1
let o_ol_cnt = 2
let o_carrier_id = 3

(* order-line row: ol_i_id, ol_supply_w_id, ol_quantity, ol_amount,
   ol_delivery_d (0 = not yet delivered) *)
let order_line_words = 5
let ol_i_id = 0
let ol_supply_w_id = 1
let ol_quantity = 2
let ol_amount = 3
let ol_delivery_d = 4

(* history row: h_c_id, h_d_id, h_amount *)
let history_words = 3
let h_c_id = 0
let h_d_id = 1
let h_amount = 2

(* -- key encodings -- *)

let key_item i = Int64.of_int i

(* compound keys for the naive layout: warehouse and district ride in the
   high digits *)
let key_customer_naive w d c = Int64.of_int ((((w * 100) + d) * 100_000) + c)
let key_stock_naive w i = Int64.of_int ((w * 1_000_000) + i)
let key_order_naive w d o = Int64.of_int ((((w * 100) + d) * 100_000_000) + o)
let key_history_naive w d h = Int64.of_int ((((w * 100) + d) * 100_000_000) + h)

let key_order_line_naive w d o ol =
  Int64.of_int (((((w * 100) + d) * 100_000_000) + o) * 16 + ol)

(* per-warehouse / per-district keys for the optimised layout *)
let key_customer_opt d c = Int64.of_int ((d * 100_000) + c)
let key_stock_opt i = Int64.of_int i
let key_history_opt d h = Int64.of_int ((d * 100_000_000) + h)
let key_order_opt o = Int64.of_int o
let key_order_line_opt o ol = Int64.of_int ((o * 16) + ol)

(* -- database -- *)

type db = {
  layout : layout;
  warehouses : int;
  arena : Arena.t;
  alloc : Alloc.t;
  mode : Btree.mode;
  warehouse_tax : int;  (* fixed-point (x10000), same for every warehouse *)
  districts_rows : int array;
      (* district row addresses, index [(w-1)*districts + d] for
         w in 1..warehouses, d in 1..districts (slot 0 unused) *)
  customer : Btree.t array;    (* length 1 (naive) or [warehouses] *)
  item : Btree.t;              (* read-only after load; shared *)
  stock : Btree.t array;       (* length 1 (naive) or [warehouses] *)
  orders : Btree.t array;      (* length 1 (naive) or [warehouses*districts] *)
  order_line : Btree.t array;
  new_order : Btree.t array;
  history : Btree.t array;     (* payment history, append-only *)
}

(* Allocate a row and initialise its fields with raw durable stores (rows
   are reachable only after the loader or a logged tree insert links them). *)
let new_row db words =
  let r = Alloc.alloc ~align:64 db.alloc (8 * words) in
  for w = 0 to words - 1 do
    Arena.nt_write db.arena (r + (8 * w)) 0L
  done;
  r

let row_get db row field = Arena.read db.arena (row + (8 * field))

(* Logged (transactional) row update. *)
let row_set (_ : db) tm txn row field v =
  Rewind.Tm.write tm txn ~addr:(row + (8 * field)) ~value:v

(* Raw durable row update, for the non-recoverable NVM configuration. *)
let row_set_raw db row field v = Arena.nt_write db.arena (row + (8 * field)) v

(* -- district rows -- *)

let district_slot w d = ((w - 1) * districts) + d
let district_row db w d = db.districts_rows.(district_slot w d)
let set_district_row db w d r = db.districts_rows.(district_slot w d) <- r

(* -- per-warehouse / per-district tree selection -- *)

let warehouse_trees_count layout warehouses =
  match layout with Naive -> 1 | Optimized -> warehouses

let order_trees_count layout warehouses =
  match layout with Naive -> 1 | Optimized -> warehouses * districts

let customer_tree db w =
  match db.layout with Naive -> db.customer.(0) | Optimized -> db.customer.(w - 1)

let stock_tree db w =
  match db.layout with Naive -> db.stock.(0) | Optimized -> db.stock.(w - 1)

let history_tree db w =
  match db.layout with Naive -> db.history.(0) | Optimized -> db.history.(w - 1)

let order_slot w d = ((w - 1) * districts) + (d - 1)

let order_tree db w d =
  match db.layout with
  | Naive -> db.orders.(0)
  | Optimized -> db.orders.(order_slot w d)

let order_line_tree db w d =
  match db.layout with
  | Naive -> db.order_line.(0)
  | Optimized -> db.order_line.(order_slot w d)

let new_order_tree db w d =
  match db.layout with
  | Naive -> db.new_order.(0)
  | Optimized -> db.new_order.(order_slot w d)

(* -- layout-dispatching keys -- *)

let key_customer db w d c =
  match db.layout with
  | Naive -> key_customer_naive w d c
  | Optimized -> key_customer_opt d c

let key_stock db w i =
  match db.layout with Naive -> key_stock_naive w i | Optimized -> key_stock_opt i

let key_history db w d h =
  match db.layout with
  | Naive -> key_history_naive w d h
  | Optimized -> key_history_opt d h

let key_order db w d o =
  match db.layout with
  | Naive -> key_order_naive w d o
  | Optimized -> key_order_opt o

let key_order_line db w d o ol =
  match db.layout with
  | Naive -> key_order_line_naive w d o ol
  | Optimized -> key_order_line_opt o ol

let create ?(layout = Naive) ?(warehouses = 1) mode alloc =
  if warehouses < 1 then invalid_arg "Schema.create: warehouses must be >= 1";
  let arena = Alloc.arena alloc in
  let nw = warehouse_trees_count layout warehouses in
  let no = order_trees_count layout warehouses in
  {
    layout;
    warehouses;
    arena;
    alloc;
    mode;
    warehouse_tax = 1000;
    districts_rows = Array.make ((warehouses * districts) + 1) 0;
    customer = Array.init nw (fun _ -> Btree.create mode alloc);
    item = Btree.create mode alloc;
    stock = Array.init nw (fun _ -> Btree.create mode alloc);
    orders = Array.init no (fun _ -> Btree.create mode alloc);
    order_line = Array.init no (fun _ -> Btree.create mode alloc);
    new_order = Array.init no (fun _ -> Btree.create mode alloc);
    history = Array.init nw (fun _ -> Btree.create mode alloc);
  }

(* Reattach every tree of [db] under [mode], preserving root cells:
   flips a freshly loaded database from raw loading mode to a measured
   persistence mode, and reconnects trees after crash recovery.  The
   district-row address array is volatile state and carries over
   unchanged (row addresses survive a crash, so the array is simply
   shared with the pre-crash [db]).  Pass [?alloc] when the allocator
   itself was rebuilt, e.g. by [Alloc.recover] after a crash. *)
let rebind ?alloc db mode =
  let alloc = match alloc with Some a -> a | None -> db.alloc in
  let rb t = Btree.attach mode alloc ~root_cell:(Btree.root_cell t) in
  {
    db with
    mode;
    alloc;
    arena = Alloc.arena alloc;
    customer = Array.map rb db.customer;
    item = rb db.item;
    stock = Array.map rb db.stock;
    orders = Array.map rb db.orders;
    order_line = Array.map rb db.order_line;
    new_order = Array.map rb db.new_order;
    history = Array.map rb db.history;
  }
