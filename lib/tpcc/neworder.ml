(* The TPC-C new-order transaction — the paper's Section 5.3 workload: the
   most write-intensive TPC-C transaction and the backbone of the full mix.

   Per the spec: pick a district and customer, draw 5-15 order lines with
   NURand item ids, increment the district's next-order id, insert the
   order / new-order rows, and for every line read the item, update the
   stock row and insert an order-line row.  One percent of transactions
   reference an invalid item and must roll back; the paper's
   non-recoverable NVM configuration simply abandons them mid-flight. *)

open Rewind_pds

exception Invalid_item

type line = { li_item : int; li_qty : int }

type request = {
  rq_warehouse : int;
  rq_district : int;
  rq_customer : int;
  rq_lines : line list;
  rq_invalid : bool;  (* the 1 % rollback case *)
}

let gen_request ?(warehouse = 1) ?(district = 0) ?(customers = 100) rng ~items =
  let d = if district > 0 then district else Rng.int rng 1 Schema.districts in
  let n_lines = Rng.int rng 5 15 in
  {
    rq_warehouse = warehouse;
    rq_district = d;
    rq_customer = Rng.int rng 1 customers;
    rq_lines =
      List.init n_lines (fun _ ->
          { li_item = 1 + Rng.nurand rng 8191 0 (items - 1); li_qty = Rng.int rng 1 10 });
    rq_invalid = Rng.int rng 1 100 = 1;
  }

(* Application-level work per request: row construction, key encoding,
   price arithmetic, terminal handling — present identically in the raw
   and the transactional executions. *)
let request_work_ns rq = 10_000 + (12_000 * List.length rq.rq_lines)

(* The body, parameterised over how rows and trees are written.  [txn] is 0
   for raw (non-transactional) execution. *)
let body db tm_opt txn rq =
  Rewind_nvm.Clock.advance (request_work_ns rq);
  let w = rq.rq_warehouse in
  let d = rq.rq_district in
  let drow = Schema.district_row db w d in
  let set row field v =
    match tm_opt with
    | Some tm -> Schema.row_set db tm txn row field v
    | None -> Schema.row_set_raw db row field v
  in
  (* district: allocate the order id *)
  let o_id = Int64.to_int (Schema.row_get db drow Schema.d_next_o_id) in
  set drow Schema.d_next_o_id (Int64.of_int (o_id + 1));
  (* orders + new-order *)
  let orow = Schema.new_row db Schema.order_words in
  Schema.row_set_raw db orow Schema.o_c_id (Int64.of_int rq.rq_customer);
  Schema.row_set_raw db orow Schema.o_ol_cnt
    (Int64.of_int (List.length rq.rq_lines));
  Btree.insert (Schema.order_tree db w d) txn (Schema.key_order db w d o_id)
    (Int64.of_int orow);
  Btree.insert (Schema.new_order_tree db w d) txn (Schema.key_order db w d o_id)
    (Int64.of_int o_id);
  (* order lines *)
  List.iteri
    (fun ol line ->
      match Btree.lookup db.Schema.item (Schema.key_item line.li_item) with
      | None -> raise Invalid_item
      | Some irow_v ->
          let irow = Int64.to_int irow_v in
          let price = Schema.row_get db irow Schema.i_price in
          let srow =
            match
              Btree.lookup (Schema.stock_tree db w)
                (Schema.key_stock db w line.li_item)
            with
            | Some v -> Int64.to_int v
            | None -> raise Invalid_item
          in
          (* stock update *)
          let q = Int64.to_int (Schema.row_get db srow Schema.s_quantity) in
          let q' = if q - line.li_qty >= 10 then q - line.li_qty else q - line.li_qty + 91 in
          set srow Schema.s_quantity (Int64.of_int q');
          set srow Schema.s_ytd
            (Int64.add (Schema.row_get db srow Schema.s_ytd) (Int64.of_int line.li_qty));
          set srow Schema.s_order_cnt
            (Int64.add (Schema.row_get db srow Schema.s_order_cnt) 1L);
          (* order line *)
          let lrow = Schema.new_row db Schema.order_line_words in
          Schema.row_set_raw db lrow Schema.ol_i_id (Int64.of_int line.li_item);
          Schema.row_set_raw db lrow Schema.ol_supply_w_id (Int64.of_int w);
          Schema.row_set_raw db lrow Schema.ol_quantity (Int64.of_int line.li_qty);
          Schema.row_set_raw db lrow Schema.ol_amount
            (Int64.mul price (Int64.of_int line.li_qty));
          Btree.insert (Schema.order_line_tree db w d) txn
            (Schema.key_order_line db w d o_id (ol + 1))
            (Int64.of_int lrow))
    rq.rq_lines;
  (* the 1 % invalid-item case aborts after doing real work *)
  if rq.rq_invalid then raise Invalid_item

type outcome = Committed | Aborted

(* Transactional execution over REWIND: commit, or roll back on the
   invalid-item abort. *)
let run_transactional ?home db tm rq =
  let txn = Rewind.Tm.begin_txn ?home tm in
  match body db (Some tm) txn rq with
  | () ->
      Rewind.Tm.commit tm txn;
      Committed
  | exception Invalid_item ->
      Rewind.Tm.rollback tm txn;
      Aborted

(* Non-recoverable execution: aborted transactions are abandoned (their
   partial effects remain — the paper's "considered non-recoverable and
   ignored"). *)
let run_raw db rq =
  match body db None 0 rq with () -> Committed | exception Invalid_item -> Aborted
