(* The Section 5.3 benchmark driver: ten terminals issuing new-order
   transactions, one terminal per district, in the paper's four
   configurations:

   - non-recoverable NVM B+-trees with the naive layout;
   - naive layout over REWIND (one shared log);
   - co-designed (per-district-tree) layout over REWIND (shared log);
   - co-designed layout over REWIND with a distributed (per-terminal) log.

   Terminals run as OCaml domains; each carries its own simulated clock
   and the run's duration is the slowest terminal.  Contention appears
   through the Sim_mutex release-time model: the shared data lock in the
   naive layout, the per-district locks in the optimised layout, and
   REWIND's internal log latch.

   The terminal<->district pinning keeps domains from racing on the same
   B+-tree nodes: with the naive layout all terminals share the trees and
   must take the single data lock; with the optimised layout each
   terminal's district trees are private to it. *)

open Rewind_nvm

type configuration =
  | Nvm_naive           (* persistent, not recoverable *)
  | Rewind_naive        (* naive data structures over REWIND *)
  | Rewind_opt          (* co-designed layout, shared log *)
  | Rewind_opt_dlog     (* co-designed layout, distributed (per-terminal) log *)

let pp_configuration ppf c =
  Fmt.string ppf
    (match c with
    | Nvm_naive -> "Simple NVM B+Trees"
    | Rewind_naive -> "REWIND Naive Data Structure"
    | Rewind_opt -> "REWIND Opt. Data Structure"
    | Rewind_opt_dlog -> "REWIND Opt. Data Structure D.Log")

type result = {
  committed : int;
  aborted : int;  (* true aborts: the spec's 1 % invalid-item rollbacks *)
  retried : int;  (* conflict retries: lock contention, backed off and rerun *)
  sim_ns : int;   (* slowest terminal's simulated time *)
  tpm : float;    (* new-order transactions per simulated minute *)
}

(* Conflict handling: a terminal that finds the shared data lock busy
   treats it as a conflict — it backs off for a bounded, exponentially
   growing interval of simulated time and retries, rather than queueing.
   Retries are counted separately from true aborts (the invalid-item
   rollbacks, which are a property of the request, not of contention, and
   are never retried).  After [max_conflict_retries] failed tries the
   terminal falls back to a blocking acquire, so contention can delay a
   transaction but never kill it — the groundwork for an open-loop
   generator, where the retry queue becomes visible as latency. *)
let max_conflict_retries = 5
let conflict_backoff_ns = 2_000

(* TM root slots: 3 for the shared manager (config word + log + index =
   slots 3-5), 6.. for the per-terminal distributed logs at three slots
   apiece (ten terminals end at slot 35, within the arena's 63). *)
let shared_root = 3
let dlog_root term = 6 + (3 * term)

let tm_config = { Rewind.config_1l_nfp with variant = Rewind.Log.Batch 8 }

let setup ~config ~params arena =
  let alloc = Alloc.create arena in
  let layout =
    match config with
    | Nvm_naive | Rewind_naive -> Schema.Naive
    | Rewind_opt | Rewind_opt_dlog -> Schema.Optimized
  in
  (* Load through raw durable stores, then run in the measured mode. *)
  let db = Schema.create ~layout Rewind_pds.Btree.Direct_nvm alloc in
  Datagen.load ~params db 0;
  (alloc, db)


let run ?(terminals = Schema.districts) ?(txns_per_terminal = 1000)
    ?(params = Datagen.small) ?(arena_mb = 256) ?(on_arena = ignore) ~config
    () =
  let arena = Arena.create ~size_bytes:(arena_mb lsl 20) () in
  (* Instrumentation hook: the race detector (and other trace consumers)
     attach here, before any load or measured work touches the arena. *)
  on_arena arena;
  let alloc, base_db = setup ~config ~params arena in
  let shared_tm =
    match config with
    | Nvm_naive -> None
    | Rewind_naive | Rewind_opt ->
        Some (Rewind.Tm.create ~cfg:tm_config alloc ~root_slot:shared_root)
    | Rewind_opt_dlog -> None
  in
  (* Lock model: the naive REWIND implementation shares every tree and
     takes one coarse lock per transaction; the co-designed layouts give
     each terminal its own district trees, leaving REWIND's internal log
     latch as the only shared resource (none at all with distributed
     logs).  The non-recoverable NVM configuration is run with the
     fine-grained latching the paper assumes for it. *)
  let data_lock = Sim_mutex.create () in
  let committed = ref 0 and aborted = ref 0 and retried = ref 0 in
  (* Per-terminal state; terminals are simulated threads scheduled in
     simulated-time order (one per district, as ten TPC-C terminals). *)
  let rngs = Array.init terminals (fun t -> Rng.create (1000 + t)) in
  let tms =
    Array.init terminals (fun term ->
        match config with
        | Nvm_naive -> None
        | Rewind_naive | Rewind_opt -> shared_tm
        | Rewind_opt_dlog ->
            Some (Rewind.Tm.create ~cfg:tm_config alloc ~root_slot:(dlog_root term)))
  in
  let dbs =
    Array.init terminals (fun term ->
        match tms.(term) with
        | None -> base_db
        | Some tm ->
            Schema.rebind ~alloc base_db (Rewind_pds.Btree.Logged tm))
  in
  let sim_ns =
    Sim_threads.run ~threads:terminals ~ops_per_thread:txns_per_terminal
      (fun term _ ->
        let rng = rngs.(term) in
        let district = 1 + (term mod Schema.districts) in
        let db = dbs.(term) and tm = tms.(term) in
        let rq = Neworder.gen_request ~district rng ~items:params.Datagen.items in
        let exec () =
          match tm with
          | None -> Neworder.run_raw db rq
          | Some tm -> Neworder.run_transactional db tm rq
        in
        let rec exec_contended attempt =
          if Sim_mutex.try_lock data_lock then
            Fun.protect ~finally:(fun () -> Sim_mutex.unlock data_lock) exec
          else if attempt < max_conflict_retries then begin
            incr retried;
            Clock.advance (conflict_backoff_ns lsl min attempt 4);
            exec_contended (attempt + 1)
          end
          else Sim_mutex.with_lock data_lock exec
        in
        let outcome =
          match config with
          | Rewind_naive -> exec_contended 0
          | Nvm_naive | Rewind_opt | Rewind_opt_dlog -> exec ()
        in
        match outcome with
        | Neworder.Committed -> incr committed
        | Neworder.Aborted -> incr aborted)
  in
  let minutes = float_of_int sim_ns /. 60e9 in
  {
    committed = !committed;
    aborted = !aborted;
    retried = !retried;
    sim_ns;
    tpm =
      (if minutes > 0. then float_of_int (!committed + !aborted) /. minutes
       else 0.);
  }

(* Consistency probes used by tests: every committed new-order must leave
   matching orders/new-order/order-line entries and a consistent
   d_next_o_id. *)
let check_consistency db =
  let ok = ref true in
  for w = 1 to db.Schema.warehouses do
    for d = 1 to Schema.districts do
      let drow = Schema.district_row db w d in
      let next = Int64.to_int (Schema.row_get db drow Schema.d_next_o_id) in
      for o = 1 to next - 1 do
        match
          Rewind_pds.Btree.lookup (Schema.order_tree db w d)
            (Schema.key_order db w d o)
        with
        | None -> ok := false
        | Some orow_v ->
            let orow = Int64.to_int orow_v in
            let cnt = Int64.to_int (Schema.row_get db orow Schema.o_ol_cnt) in
            for ol = 1 to cnt do
              if
                Rewind_pds.Btree.lookup
                  (Schema.order_line_tree db w d)
                  (Schema.key_order_line db w d o ol)
                = None
              then ok := false
            done
      done
    done
  done;
  !ok

(* Mixed-workload invariants, checked on top of [check_consistency] and
   [Payment.check_consistency]: an order carries a carrier id exactly when
   its new-order entry is gone, and a delivered order has every line
   stamped with a delivery date. *)
let check_delivery_consistency db =
  let ok = ref true in
  for w = 1 to db.Schema.warehouses do
    for d = 1 to Schema.districts do
      let drow = Schema.district_row db w d in
      let next = Int64.to_int (Schema.row_get db drow Schema.d_next_o_id) in
      for o = 1 to next - 1 do
        match
          Rewind_pds.Btree.lookup (Schema.order_tree db w d)
            (Schema.key_order db w d o)
        with
        | None -> ok := false
        | Some orow_v ->
            let orow = Int64.to_int orow_v in
            let delivered =
              Schema.row_get db orow Schema.o_carrier_id <> 0L
            in
            let queued =
              Rewind_pds.Btree.mem
                (Schema.new_order_tree db w d)
                (Schema.key_order db w d o)
            in
            if delivered = queued then ok := false;
            if delivered then begin
              let cnt = Int64.to_int (Schema.row_get db orow Schema.o_ol_cnt) in
              for ol = 1 to cnt do
                match
                  Rewind_pds.Btree.lookup
                    (Schema.order_line_tree db w d)
                    (Schema.key_order_line db w d o ol)
                with
                | None -> ok := false
                | Some lrow ->
                    if
                      Schema.row_get db (Int64.to_int lrow)
                        Schema.ol_delivery_d = 0L
                    then ok := false
              done
            end
      done
    done
  done;
  !ok

let check_mix_consistency db =
  check_consistency db
  && Payment.check_consistency db
  && check_delivery_consistency db

(* -- the five-transaction closed-loop driver ----------------------------

   [run_mix] drives the full mix over one REWIND manager whose log is
   partitioned [partitions] ways, pinning every transaction to its home
   warehouse's partition ([(w-1) mod partitions]).  Terminals share one
   coarse data lock (the naive contention model) so the driver is
   race-clean by construction — the race-detector CI leg runs exactly
   this; the open-loop bench layers per-warehouse locking on top of the
   same transaction bodies. *)

type mix_result = {
  mix_committed : int;   (* all five types, incl. enqueued deliveries *)
  mix_aborted : int;     (* invalid-item rollbacks *)
  mix_retried : int;     (* data-lock conflicts backed off and rerun *)
  mix_new_orders : int;  (* committed new-orders (the tpmC numerator) *)
  mix_deliveries : int;  (* deferred delivery transactions executed *)
  mix_sim_ns : int;
  mix_tpmc : float;      (* committed new-orders per simulated minute *)
  mix_consistent : bool;
}

let run_mix ?(warehouses = 2) ?(terminals_per_warehouse = 2)
    ?(txns_per_terminal = 100) ?(params = Datagen.micro) ?(arena_mb = 256)
    ?(partitions = 1) ?(layout = Schema.Optimized) ?cfg ?(on_arena = ignore)
    () =
  let cfg =
    match cfg with
    | Some c -> c
    | None -> Rewind.with_partitions partitions tm_config
  in
  let arena = Arena.create ~size_bytes:(arena_mb lsl 20) () in
  on_arena arena;
  let alloc = Alloc.create arena in
  let db = Schema.create ~layout ~warehouses Rewind_pds.Btree.Direct_nvm alloc in
  Datagen.load ~params db 0;
  let tm = Rewind.Tm.create ~cfg alloc ~root_slot:shared_root in
  let db = Schema.rebind db (Rewind_pds.Btree.Logged tm) in
  let queue = Delivery.queue_create () in
  let data_lock = Sim_mutex.create () in
  let committed = ref 0 and aborted = ref 0 and retried = ref 0 in
  let new_orders = ref 0 and deliveries = ref 0 in
  let terminals = warehouses * terminals_per_warehouse in
  let rngs = Array.init terminals (fun t -> Rng.create (2000 + t)) in
  let home_of w = (w - 1) mod cfg.Rewind.Tm.partitions in
  let sim_ns =
    Sim_threads.run ~threads:terminals ~ops_per_thread:txns_per_terminal
      (fun term _ ->
        let rng = rngs.(term) in
        let warehouse = 1 + (term mod warehouses) in
        let home = home_of warehouse in
        let rq =
          Mix.gen ~warehouse ~customers:params.Datagen.customers_per_district
            rng ~items:params.Datagen.items
        in
        let exec () =
          (match Mix.execute ~home db tm ~queue rq with
          | Mix.Committed ->
              incr committed;
              if Mix.is_new_order rq then incr new_orders
          | Mix.Aborted -> incr aborted);
          (* run any deferred deliveries promptly, still inside the
             data lock: each is its own transaction *)
          deliveries := !deliveries + Mix.drain_deliveries ~home db tm queue
        in
        let rec exec_contended attempt =
          if Sim_mutex.try_lock data_lock then
            Fun.protect ~finally:(fun () -> Sim_mutex.unlock data_lock) exec
          else if attempt < max_conflict_retries then begin
            incr retried;
            Clock.advance (conflict_backoff_ns lsl min attempt 4);
            exec_contended (attempt + 1)
          end
          else Sim_mutex.with_lock data_lock exec
        in
        exec_contended 0)
  in
  let minutes = float_of_int sim_ns /. 60e9 in
  ( {
      mix_committed = !committed;
      mix_aborted = !aborted;
      mix_retried = !retried;
      mix_new_orders = !new_orders;
      mix_deliveries = !deliveries;
      mix_sim_ns = sim_ns;
      mix_tpmc =
        (if minutes > 0. then float_of_int !new_orders /. minutes else 0.);
      mix_consistent = check_mix_consistency db;
    },
    db )
