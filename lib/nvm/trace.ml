(* The persistency event stream.

   Every memory event that matters for crash consistency — stores, line
   write-backs, fences, store-buffer pinning, spontaneous evictions, and
   crashes — is emitted by {!Arena} to an attached tracer, interleaved
   with *semantic* annotations emitted by the layers above through
   {!Pmcheck} (undo-record coverage, commit points, durability intent).

   The two kinds share one event type so a consumer sees a single totally
   ordered trace: the persistency sanitizer replays it against a shadow
   ordering model, and the crash-state enumerator uses the fences as the
   boundaries at which it forks durable states. *)

type event =
  (* raw memory events (emitted by Arena) *)
  | Store of { off : int; len : int; durable : bool }
      (** A CPU store.  [durable] is true for non-temporal stores, which
          reach NVM on arrival; cached stores stay volatile until their
          line is written back. *)
  | Flush of { off : int; dirty : bool }
      (** A cacheline write-back instruction for the line containing
          [off].  [dirty] is false when the line had nothing to write
          back — a redundant flush. *)
  | Fence  (** A persistent memory fence. *)
  | Pin of { off : int }  (** Line held back in the store buffer. *)
  | Unpin of { off : int }  (** Line released to the cache hierarchy. *)
  | Evict of { off : int }
      (** Spontaneous hardware write-back of a dirty line (fault model):
          durable immediately, but not program-ordered. *)
  | Crash  (** Power failure: every volatile line is gone. *)
  (* semantic annotations (emitted via Pmcheck) *)
  | Region_logged of {
      txn : int;
      addr : int;
      len : int;
      durable : bool;
      group : int;
    }
      (** An undo record covering [addr, addr+len) exists for transaction
          [txn].  [durable] is true when the record is already durably
          reachable (Simple/Optimized logging); false when it sits in a
          not-yet-persistent batch group — the covered user store must not
          become durable until the {!Group_persisted} of the same [group].
          [group] identifies the log partition holding the record: with a
          partitioned log, each partition flushes its batch groups
          independently, so coverage upgrades must not cross partitions. *)
  | Group_persisted of { group : int }
      (** Log partition [group]'s pending batch group is durably
          reachable: every [Region_logged ~durable:false] coverage of that
          partition is upgraded.  Other partitions' pending coverage is
          untouched. *)
  | Commit_point of { txn : int; addr : int; len : int; what : string }
      (** [addr, addr+len) makes transaction [txn]'s END record reachable
          and must be durable (and fence-ordered) by the time the commit
          or rollback call returns ({!Txn_settled}). *)
  | Txn_settled of { txn : int }
      (** Commit/rollback of [txn] is returning to the caller: its commit
          points are checked and its undo-record coverage expires. *)
  | Expect_persisted of { addr : int; len : int; what : string }
      (** Caller-declared invariant: every byte of [addr, addr+len) is
          durable *and* separated from its write-back by a fence. *)
  | Recovery of bool
      (** Recovery begin/end.  While recovery runs, WAL-ordering rules are
          suspended — repeat-history redo legitimately stores to user data
          without fresh undo records. *)
  | Freed of { addr : int; len : int }
      (** Region returned to the allocator: stores to it are use-after-free
          until re-allocation. *)
  | Allocated of { addr : int; len : int }
      (** Region handed out by the allocator (clears any freed mark). *)
  | Epoch_logged of { addr : int; len : int; epoch : int }
      (** Epoch-protocol analogue of {!Region_logged}: an in-cache-line
          undo word co-located with [addr, addr+len) captured the
          pre-[epoch] value.  Because undo and data share one line, the
          coverage never expires with a transaction — any write-back of
          the line carries the undo with it, so the region stays
          recoverable until the next epoch advance re-captures it. *)
  | Epoch_advanced of { epoch : int }
      (** Epoch-protocol analogue of {!Txn_settled}: the durable epoch
          counter is about to become [epoch].  Every line captured under
          earlier epochs must already be durable and fence-ordered (the
          advance's flush_all/fence precede this annotation); their
          in-line coverage is superseded. *)
  | Linked_durable of { addr : int; len : int }
      (** Lock-free linked protocol (durable sets / NVTraverse): the link
          word(s) at [addr, addr+len) are updated by CAS and persisted by
          link-and-persist — the CAS'd line is flushed before the
          operation's result is exposed.  The annotation both registers
          the word under the protocol (any write-back at any time lands a
          valid set state, so persist ordering is free by construction,
          like the InCLL epoch cover) and enrols it in the pending-link
          set checked at the next {!Linked_exposed}. *)
  | Linked_exposed of { what : string }
      (** A lock-free operation's result is being exposed (its durable
          announcement cell is about to record completion): every link
          annotated {!Linked_durable} since the previous exposure must
          already be durable and fence-ordered — the durable-
          linearizability obligation of link-and-persist. *)
  (* synchronization events (emitted by Sim_mutex / Sim_atomic /
     Sim_threads when a sync tracer is attached) *)
  | Load of { off : int; len : int }
      (** A CPU load from the arena.  Only emitted when load tracing is
          switched on ({!Arena.set_trace_loads}) — the persistency
          sanitizer does not need loads, the race detector does. *)
  | Acquire of { lock : int }
      (** Lock [lock] acquired by the current fiber: the acquirer's clock
          joins the lock's release clock (happens-before edge from the
          last release). *)
  | Release of { lock : int }
      (** Lock [lock] released: the lock's release clock becomes a copy of
          the releaser's clock. *)
  | Atomic_rmw of { atom : int }
      (** Read-modify-write on atomic [atom] with acquire+release
          semantics: the edge of a fetch-and-add / CAS chain. *)
  | Fiber_spawn of { id : int }
      (** Fiber [id] created by the current fiber: spawn happens-before
          the fiber's first operation. *)
  | Fiber_switch of { id : int }
      (** The scheduler resumed fiber [id]; subsequent events belong to
          it.  [id = -1] means control returned to the spawning thread. *)
  | Fiber_join of { id : int }
      (** Fiber [id] finished and was joined by the current fiber: its
          last operation happens-before everything after the join. *)

let pp ppf = function
  | Store { off; len; durable } ->
      Fmt.pf ppf "store %s[%d,+%d)" (if durable then "nt " else "") off len
  | Flush { off; dirty } ->
      Fmt.pf ppf "flush @%d%s" off (if dirty then "" else " (clean)")
  | Fence -> Fmt.string ppf "fence"
  | Pin { off } -> Fmt.pf ppf "pin @%d" off
  | Unpin { off } -> Fmt.pf ppf "unpin @%d" off
  | Evict { off } -> Fmt.pf ppf "evict @%d" off
  | Crash -> Fmt.string ppf "crash"
  | Region_logged { txn; addr; len; durable; group } ->
      Fmt.pf ppf "region-logged txn=%d [%d,+%d) %s p%d" txn addr len
        (if durable then "durable" else "pending")
        group
  | Group_persisted { group } -> Fmt.pf ppf "group-persisted p%d" group
  | Commit_point { txn; addr; len; what } ->
      Fmt.pf ppf "commit-point txn=%d [%d,+%d) %s" txn addr len what
  | Txn_settled { txn } -> Fmt.pf ppf "txn-settled %d" txn
  | Expect_persisted { addr; len; what } ->
      Fmt.pf ppf "expect-persisted [%d,+%d) %s" addr len what
  | Recovery b -> Fmt.pf ppf "recovery-%s" (if b then "begin" else "end")
  | Freed { addr; len } -> Fmt.pf ppf "freed [%d,+%d)" addr len
  | Allocated { addr; len } -> Fmt.pf ppf "allocated [%d,+%d)" addr len
  | Epoch_logged { addr; len; epoch } ->
      Fmt.pf ppf "epoch-logged [%d,+%d) e%d" addr len epoch
  | Epoch_advanced { epoch } -> Fmt.pf ppf "epoch-advanced e%d" epoch
  | Linked_durable { addr; len } ->
      Fmt.pf ppf "linked-durable [%d,+%d)" addr len
  | Linked_exposed { what } -> Fmt.pf ppf "linked-exposed %s" what
  | Load { off; len } -> Fmt.pf ppf "load [%d,+%d)" off len
  | Acquire { lock } -> Fmt.pf ppf "acquire m%d" lock
  | Release { lock } -> Fmt.pf ppf "release m%d" lock
  | Atomic_rmw { atom } -> Fmt.pf ppf "atomic-rmw a%d" atom
  | Fiber_spawn { id } -> Fmt.pf ppf "fiber-spawn %d" id
  | Fiber_switch { id } -> Fmt.pf ppf "fiber-switch %d" id
  | Fiber_join { id } -> Fmt.pf ppf "fiber-join %d" id

(* Synchronization tracing is a separate, global hook: Sim_mutex and
   Sim_threads have no arena to hang a tracer off, and most consumers
   (the sanitizer, the enumerator) do not want sync events at all.  The
   race detector attaches both this and the arena tracer to the same
   sink; everything runs on one domain, so the combined stream is totally
   ordered. *)
let sync_tracer : (event -> unit) option ref = ref None
let set_sync_tracer f = sync_tracer := f
let sync_traced () = !sync_tracer <> None

let emit_sync ev =
  match !sync_tracer with None -> () | Some f -> f ev
