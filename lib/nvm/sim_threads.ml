(* Simulated multithreading: conservative discrete-event execution of [n]
   logical threads as cooperative fibers (OCaml effects) on one domain.

   The scheduler always resumes the fiber with the smallest simulated
   clock.  Fibers yield between operations and — crucially — inside
   {!Sim_mutex.lock}, so lock contention is resolved at lock-section
   granularity: a fiber that reaches a busy lock waits (its clock advances
   past the holder's progress) instead of the whole-transaction
   serialisation that coarse stepping would produce.  Deterministic and
   single-domain; real domains on one core cannot provide this, because
   whichever domain the OS runs first would stamp its entire run's lock
   releases ahead of everyone else. *)

type _ Effect.t += Yield : unit Effect.t

(* Scheduler state visible to Sim_mutex. *)
let scheduler_active = ref false
let current_fiber = ref 0
let fiber_clocks = ref [||]

let active () = !scheduler_active
let current () = !current_fiber
let clock_of f = !fiber_clocks.(f)
let yield () = if !scheduler_active then Effect.perform Yield

(* Run [ops_per_thread] operations on each of [threads] fibers.  [f thread
   op_index] performs one operation; its cost is whatever it advances the
   clock by.  Returns the slowest fiber's finish time relative to the
   common start (the clock is never moved backwards: lock release times
   stamped during setup live on the same timeline). *)
let run ~threads ~ops_per_thread f =
  let open Effect.Deep in
  let base = Clock.now () in
  let clocks = Array.make threads base in
  let conts : (unit, unit) continuation option array = Array.make threads None in
  let fresh = Array.make threads true in
  let finished = Array.make threads false in
  let saved_active = !scheduler_active and saved_clocks = !fiber_clocks in
  scheduler_active := true;
  fiber_clocks := clocks;
  (* Race-detector vocabulary: the spawning thread happens-before every
     fiber's first operation, and each fiber's last operation
     happens-before the join (scheduler exit).  Fiber_switch events
     attribute the in-between memory events to fibers. *)
  let sync = Trace.sync_traced () in
  if sync then
    for i = 0 to threads - 1 do
      Trace.emit_sync (Trace.Fiber_spawn { id = i })
    done;
  let handler =
    {
      retc = (fun () -> finished.(!current_fiber) <- true);
      exnc = raise;
      effc =
        (fun (type a) (eff : a Effect.t) ->
          match eff with
          | Yield ->
              Some
                (fun (k : (a, unit) continuation) ->
                  conts.(!current_fiber) <- Some k)
          | _ -> None);
    }
  in
  let body t () =
    for i = 0 to ops_per_thread - 1 do
      f t i;
      yield ()
    done
  in
  let pick () =
    let t = ref (-1) in
    for i = 0 to threads - 1 do
      if (not finished.(i)) && (!t < 0 || clocks.(i) < clocks.(!t)) then t := i
    done;
    !t
  in
  let rec loop () =
    let t = pick () in
    if t >= 0 then begin
      current_fiber := t;
      if sync then Trace.emit_sync (Trace.Fiber_switch { id = t });
      Clock.set clocks.(t);
      (if fresh.(t) then begin
         fresh.(t) <- false;
         match_with (body t) () handler
       end
       else
         match conts.(t) with
         | Some k ->
             conts.(t) <- None;
             continue k ()
         | None ->
             (* ready but no continuation left: treat as finished *)
             finished.(t) <- true);
      clocks.(t) <- Clock.now ();
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      scheduler_active := saved_active;
      fiber_clocks := saved_clocks)
    (fun () ->
      loop ();
      (* All fibers ran to completion: control returns to the spawning
         thread, which joins every fiber. *)
      if sync then begin
        Trace.emit_sync (Trace.Fiber_switch { id = -1 });
        for i = 0 to threads - 1 do
          Trace.emit_sync (Trace.Fiber_join { id = i })
        done
      end);
  Array.fold_left max 0 clocks - base
