(* Annotation API for the persistency sanitizer.

   The WAL/transaction layers call these at the points where they *intend*
   durability semantics — "this region now has an undo record", "this store
   makes the commit durable", "this range must be persistent before I
   return" — and the annotations flow into the arena's event trace,
   interleaved with the raw stores/flushes/fences.  The sanitizer checks
   the intent against the observed ordering; the enumerator uses the
   annotations to know which recovered states are legal.

   Every emitter is guarded by {!Arena.traced}, so with no tracer attached
   (the default, including every benchmark) the cost is one pointer
   compare and no allocation. *)

let region_logged ?(group = 0) arena ~txn ~addr ~len ~durable =
  if Arena.traced arena then
    Arena.emit arena (Trace.Region_logged { txn; addr; len; durable; group })

let group_persisted ?(group = 0) arena =
  if Arena.traced arena then Arena.emit arena (Trace.Group_persisted { group })

let commit_point arena ~txn ~addr ~len ~what =
  if Arena.traced arena then
    Arena.emit arena (Trace.Commit_point { txn; addr; len; what })

let txn_settled arena ~txn =
  if Arena.traced arena then Arena.emit arena (Trace.Txn_settled { txn })

let expect_persisted arena ~addr ~len ~what =
  if Arena.traced arena then
    Arena.emit arena (Trace.Expect_persisted { addr; len; what })

let recovery_begin arena =
  if Arena.traced arena then Arena.emit arena (Trace.Recovery true)

let recovery_end arena =
  if Arena.traced arena then Arena.emit arena (Trace.Recovery false)

let epoch_logged arena ~addr ~len ~epoch =
  if Arena.traced arena then
    Arena.emit arena (Trace.Epoch_logged { addr; len; epoch })

let epoch_advanced arena ~epoch =
  if Arena.traced arena then Arena.emit arena (Trace.Epoch_advanced { epoch })

let linked_durable arena ~addr ~len =
  if Arena.traced arena then
    Arena.emit arena (Trace.Linked_durable { addr; len })

let linked_exposed arena ~what =
  if Arena.traced arena then Arena.emit arena (Trace.Linked_exposed { what })

let freed arena ~addr ~len =
  if Arena.traced arena then Arena.emit arena (Trace.Freed { addr; len })

let allocated arena ~addr ~len =
  if Arena.traced arena then Arena.emit arena (Trace.Allocated { addr; len })
