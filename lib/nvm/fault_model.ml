(* Seeded adversarial fault model for the simulated NVM (the "arbitrary
   eviction" adversary of NVTraverse / In-Cache-Line Logging).

   Real hardware may write a dirty cacheline back to NVM at any moment —
   not only at an explicit flush — and a power failure persists an
   unpredictable *subset* of the dirty lines rather than none of them.
   An armed fault model makes {!Arena} behave that way:

   - {b partial-eviction crash}: at crash time each dirty line survives
     independently with probability [crash_survival_ppm] / 1e6, instead
     of all dirty lines being dropped;
   - {b spontaneous eviction}: every cached store rolls a die with
     probability [eviction_ppm] / 1e6 to write back one recently-dirtied
     line, modelling clean-capacity eviction under cache pressure;
   - {b media faults}: designated lines return corrupted data on every
     cached read, modelling NVM media wear (detected downstream by record
     checksums).

   All randomness comes from one {!Random.State} seeded at creation, so a
   (seed, workload) pair replays the identical fault schedule — the basis
   of the reproducible fault campaign in [bin/faultcamp]. *)

type t = {
  seed : int;
  rng : Random.State.t;
  mutable eviction_ppm : int;
  mutable crash_survival_ppm : int;
  media_faulty : (int, unit) Hashtbl.t;  (* line number -> faulty *)
}

let ppm_max = 1_000_000

let check_ppm name p =
  if p < 0 || p > ppm_max then
    Fmt.invalid_arg "Fault_model: %s=%d not in [0,%d]" name p ppm_max

let create ?(eviction_ppm = 0) ?(crash_survival_ppm = 500_000) ~seed () =
  check_ppm "eviction_ppm" eviction_ppm;
  check_ppm "crash_survival_ppm" crash_survival_ppm;
  {
    seed;
    rng = Random.State.make [| seed; 0x5EED; seed lxor 0x9E3779B9 |];
    eviction_ppm;
    crash_survival_ppm;
    media_faulty = Hashtbl.create 4;
  }

let seed t = t.seed
let eviction_ppm t = t.eviction_ppm
let crash_survival_ppm t = t.crash_survival_ppm

let set_eviction_ppm t p =
  check_ppm "eviction_ppm" p;
  t.eviction_ppm <- p

let set_crash_survival_ppm t p =
  check_ppm "crash_survival_ppm" p;
  t.crash_survival_ppm <- p

let roll t ppm = ppm > 0 && Random.State.int t.rng ppm_max < ppm

(* One die roll per cached store; [true] asks the arena to evict a
   recently-dirtied line. *)
let roll_eviction t = roll t t.eviction_ppm

(* One die roll per dirty line at crash time, in ascending line order, so
   a given seed always yields the same eviction mask. *)
let survives_crash t = roll t t.crash_survival_ppm

let choose t n = if n <= 0 then 0 else Random.State.int t.rng n

let set_media_fault t ~line = Hashtbl.replace t.media_faulty line ()
let clear_media_fault t ~line = Hashtbl.remove t.media_faulty line
let media_faulty t ~line = Hashtbl.mem t.media_faulty line
let media_fault_count t = Hashtbl.length t.media_faulty

let pp ppf t =
  Fmt.pf ppf "{seed=%d; evict=%dppm; survive=%dppm; media_faults=%d}" t.seed
    t.eviction_ppm t.crash_survival_ppm
    (Hashtbl.length t.media_faulty)
