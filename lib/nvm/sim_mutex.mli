(** A mutex that models contention in simulated time.

    Under the {!Sim_threads} fiber scheduler, exclusion is cooperative: a
    fiber reaching a busy lock advances past the holder's progress and
    yields; acquiring pulls the fiber's clock to the last release time.
    Under real domains, a real [Mutex] provides exclusion and the
    release-time rule models the waiting.

    Each lock has a process-unique {!id} and reports acquires and
    releases through {!Trace.emit_sync}, so an attached race detector
    sees every synchronisation edge. *)

type t

exception Misuse of string
(** Raised in fiber mode on double-unlock or unlock-by-non-holder. *)

val create : ?acquire_ns:int -> ?contention_free:bool -> unit -> t
(** [acquire_ns] is the fixed simulated cost of the lock operation itself
    (default 20 ns).  [contention_free] models a lock-free fast path (the
    paper's Section 7 future work): the acquirer pays only the CAS cost
    and never waits in simulated time, while real mutual exclusion is
    still provided. *)

val id : t -> int
(** Process-unique identity, as it appears in {!Trace.Acquire} events. *)

val lock : t -> unit

val try_lock : t -> bool
(** Non-blocking acquire: [true] and the lock is held, or [false]
    immediately if another thread holds it.  Either way the fixed
    [acquire_ns] cost is charged — a failed try is a real CAS. *)

val unlock : t -> unit
(** In fiber mode, raises {!Misuse} if the lock is not held (double
    unlock) or is held by a different fiber. *)

val holding : t -> bool
(** [holding t] is true iff the current fiber holds [t].  Only
    meaningful under the fiber scheduler; false otherwise. *)

val with_lock : t -> (unit -> 'a) -> 'a
