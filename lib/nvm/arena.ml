(* Simulated byte-addressable NVM with an explicit write-back cache.

   Two byte buffers back each arena:
   - [durable] is the NVM contents: the only state that survives {!crash}.
   - [volatile] is what the CPU sees: [durable] plus all not-yet-written-back
     cached stores.

   A cached {!write} lands in [volatile] and marks its cacheline dirty.  It
   becomes durable only when the line is written back by {!flush_line} /
   {!flush_all} or when the store was issued as a non-temporal {!nt_write}.
   {!crash} throws away every dirty line, exactly the failure REWIND's WAL
   protocol must survive.

   Cost model: every write that reaches NVM charges [nvm_write_ns] to the
   calling domain's {!Clock}, with consecutive writes to one cacheline merged
   into a single charge (the paper's accounting); {!fence} charges [fence_ns]
   and breaks write-combining.

   Crash injection: {!arm_crash} makes the [after]+1-th persistence event
   raise {!Crash} *before* taking effect, so a test can enumerate every
   intermediate durable state of an operation.

   Fault injection: an attached {!Fault_model} replaces the kind crash
   semantics with the arbitrary-eviction adversary of real hardware — at
   crash time each dirty line survives with the model's per-line
   probability; cached stores may spontaneously evict recently-dirtied
   lines during normal operation; media-faulty lines serve corrupted
   cached reads.  Spontaneous evictions are hardware-initiated: they are
   not persistence events (no crash-countdown tick, no clock charge). *)

exception Crash

(* Ring of recently-dirtied line numbers from which spontaneous evictions
   pick their victim; must be a power of two. *)
let recent_cap = 64

(* Deterministic corruption pattern served by media-faulty lines. *)
let corrupt_byte = 0xA5
let corrupt_word = 0xA5A5A5A5A5A5A5A5L

type t = {
  size : int;
  durable : Bytes.t;
  volatile : Bytes.t;
  dirty : Bytes.t;  (* one byte per cacheline: 0 clean, 1 dirty *)
  pinned : Bytes.t; (* one byte per cacheline: 1 = held in the store
                       buffer — never spontaneously evicted, never
                       survives a crash (see [pin_line]) *)
  line_shift : int;
  config : Config.t;
  stats : Stats.t;
  mutable last_nvm_line : int;
  mutable crash_countdown : int;  (* -1: disarmed *)
  mutable crashed : bool;
  mutable fault : Fault_model.t option;
  recent : int array;      (* ring of recently-dirtied lines *)
  mutable recent_n : int;  (* total pushes into [recent] *)
  mutable tracer : (Trace.event -> unit) option;
      (* persistency event sink (sanitizer / enumerator); every event is
         constructed inside a [Some] match arm so the disabled path costs
         one pointer compare *)
  mutable trace_loads : bool;
      (* also emit Load events to the tracer.  Off by default: the
         sanitizer and enumerator never need loads, only the race
         detector does, and loads dominate the event volume. *)
  mutable persisted_since_fence : bool;
      (* has any persistence event happened since the last fence?  Feeds
         the redundant-fence diagnostic counter. *)
}

let log2_exact n =
  let rec go acc = function
    | 1 -> acc
    | m ->
        if m land 1 <> 0 then invalid_arg "cacheline size must be a power of 2"
        else go (acc + 1) (m lsr 1)
  in
  go 0 n

(* The first [reserved_bytes] hold the root directory (see {!root_get}). *)
let reserved_bytes = 512
let root_slots = reserved_bytes / 8

let create ?(config = Config.default ()) ~size_bytes () =
  if size_bytes < reserved_bytes then invalid_arg "Arena.create: size too small";
  let line = config.Config.cacheline_bytes in
  let lines = (size_bytes + line - 1) / line in
  {
    size = size_bytes;
    durable = Bytes.make size_bytes '\000';
    volatile = Bytes.make size_bytes '\000';
    dirty = Bytes.make lines '\000';
    pinned = Bytes.make lines '\000';
    line_shift = log2_exact line;
    config;
    stats = Stats.create ();
    last_nvm_line = -1;
    crash_countdown = -1;
    crashed = false;
    fault = None;
    recent = Array.make recent_cap 0;
    recent_n = 0;
    tracer = None;
    trace_loads = false;
    persisted_since_fence = false;
  }

let size t = t.size
let config t = t.config
let stats t = t.stats
let line_of t off = off lsr t.line_shift
let set_fault_model t fm = t.fault <- fm
let fault_model t = t.fault

(* -- persistency event tracing ---------------------------------------- *)

let set_tracer t f = t.tracer <- f
let tracer t = t.tracer
let traced t = t.tracer <> None
let set_trace_loads t b = t.trace_loads <- b

(* Loads are only reported when a tracer is attached *and* opted in. *)
let emit_load t off len =
  if t.trace_loads then
    match t.tracer with
    | None -> ()
    | Some f -> f (Trace.Load { off; len })

(* Forward an already-built event; annotation emitters ({!Pmcheck}) guard
   with [traced] so the event is only allocated when a sink is attached. *)
let emit t ev = match t.tracer with None -> () | Some f -> f ev

let check_bounds t off len =
  if off < 0 || len < 0 || off + len > t.size then
    Fmt.invalid_arg "Arena: access [%d,%d) outside arena of %d bytes" off
      (off + len) t.size

(* -- crash machinery ------------------------------------------------- *)

let line_base_len t line =
  let base = line lsl t.line_shift in
  (base, min (1 lsl t.line_shift) (t.size - base))

let crash t =
  (* Partial-eviction adversary: each dirty line survives the power
     failure with the fault model's per-line probability.  Rolls happen in
     ascending line order, so the eviction mask is a pure function of the
     seed and the crash-time dirty set. *)
  (match t.fault with
  | None -> ()
  | Some fm ->
      for l = 0 to Bytes.length t.dirty - 1 do
        if
          Bytes.unsafe_get t.dirty l = '\001'
          && Bytes.unsafe_get t.pinned l = '\000'
          && Fault_model.survives_crash fm
        then begin
          let base, len = line_base_len t l in
          Bytes.blit t.volatile base t.durable base len;
          t.stats.Stats.crash_survivals <- t.stats.Stats.crash_survivals + 1
        end
      done);
  Bytes.blit t.durable 0 t.volatile 0 t.size;
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  Bytes.fill t.pinned 0 (Bytes.length t.pinned) '\000';
  t.last_nvm_line <- -1;
  t.crash_countdown <- -1;
  t.crashed <- true;
  t.stats.Stats.crashes <- t.stats.Stats.crashes + 1;
  (match t.tracer with None -> () | Some f -> f Trace.Crash)

let arm_crash t ~after =
  if after < 0 then invalid_arg "Arena.arm_crash";
  t.crash_countdown <- after

let disarm_crash t = t.crash_countdown <- -1
let crashed t = t.crashed
let clear_crashed t = t.crashed <- false

(* Called before every event that would make state durable.  When the
   countdown expires the crash happens *instead of* the event. *)
let persist_event t =
  if t.crash_countdown >= 0 then
    if t.crash_countdown = 0 then begin
      crash t;
      raise Crash
    end
    else t.crash_countdown <- t.crash_countdown - 1

let charge_line_write t line =
  if line <> t.last_nvm_line then begin
    t.last_nvm_line <- line;
    t.stats.Stats.nvm_writes <- t.stats.Stats.nvm_writes + 1;
    Clock.advance t.config.Config.nvm_write_ns
  end

(* -- fault-model hooks ------------------------------------------------- *)

(* Hardware-initiated write-back of one dirty line: durable immediately,
   but neither a persistence event nor a clock charge (background traffic
   on real hardware). *)
let evict_line t line =
  if
    Bytes.unsafe_get t.dirty line = '\001'
    && Bytes.unsafe_get t.pinned line = '\000'
  then begin
    let base, len = line_base_len t line in
    Bytes.blit t.volatile base t.durable base len;
    Bytes.unsafe_set t.dirty line '\000';
    t.stats.Stats.evictions <- t.stats.Stats.evictions + 1;
    match t.tracer with
    | None -> ()
    | Some f -> f (Trace.Evict { off = base })
  end

(* Mark a line dirty and, under an armed fault model, remember it as an
   eviction candidate and roll the clean-capacity-eviction die. *)
let dirtied t line =
  Bytes.unsafe_set t.dirty line '\001';
  match t.fault with
  | None -> ()
  | Some fm ->
      t.recent.(t.recent_n land (recent_cap - 1)) <- line;
      t.recent_n <- t.recent_n + 1;
      if Fault_model.roll_eviction fm then
        evict_line t
          t.recent.(Fault_model.choose fm (min t.recent_n recent_cap))

(* Does a cached read of [off] hit a media-faulty line?  Counts the hit. *)
let media_hit t off =
  match t.fault with
  | None -> false
  | Some fm ->
      Fault_model.media_faulty fm ~line:(line_of t off)
      && begin
           t.stats.Stats.media_faults <- t.stats.Stats.media_faults + 1;
           true
         end

(* Cachelines touched by [off, off+len); at least 1 (a zero-length access
   still issues the instruction). *)
let lines_touched t off len =
  if len <= 0 then 1 else line_of t (off + len - 1) - line_of t off + 1

(* -- loads and cached stores ------------------------------------------ *)

let read t off =
  check_bounds t off 8;
  t.stats.Stats.loads <- t.stats.Stats.loads + 1;
  Clock.advance t.config.Config.dram_read_ns;
  emit_load t off 8;
  let v = Bytes.get_int64_le t.volatile off in
  if media_hit t off then Int64.logxor v corrupt_word else v

let write t off v =
  check_bounds t off 8;
  t.stats.Stats.stores <- t.stats.Stats.stores + 1;
  Clock.advance t.config.Config.dram_write_ns;
  Bytes.set_int64_le t.volatile off v;
  dirtied t (line_of t off);
  match t.tracer with
  | None -> ()
  | Some f -> f (Trace.Store { off; len = 8; durable = false })

let read_byte t off =
  check_bounds t off 1;
  t.stats.Stats.loads <- t.stats.Stats.loads + 1;
  Clock.advance t.config.Config.dram_read_ns;
  emit_load t off 1;
  let v = Char.code (Bytes.get t.volatile off) in
  if media_hit t off then v lxor corrupt_byte else v

let write_byte t off v =
  check_bounds t off 1;
  t.stats.Stats.stores <- t.stats.Stats.stores + 1;
  Clock.advance t.config.Config.dram_write_ns;
  Bytes.set t.volatile off (Char.chr (v land 0xff));
  dirtied t (line_of t off);
  match t.tracer with
  | None -> ()
  | Some f -> f (Trace.Store { off; len = 1; durable = false })

let read_bytes t off len =
  check_bounds t off len;
  let lines = lines_touched t off len in
  t.stats.Stats.loads <- t.stats.Stats.loads + lines;
  Clock.advance (lines * t.config.Config.dram_read_ns);
  if len > 0 then emit_load t off len;
  let b = Bytes.sub t.volatile off len in
  (match t.fault with
  | Some fm when Fault_model.media_fault_count fm > 0 ->
      for i = 0 to len - 1 do
        if Fault_model.media_faulty fm ~line:(line_of t (off + i)) then begin
          t.stats.Stats.media_faults <- t.stats.Stats.media_faults + 1;
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor corrupt_byte))
        end
      done
  | _ -> ());
  Bytes.unsafe_to_string b

let write_bytes t off s =
  let len = String.length s in
  check_bounds t off len;
  let lines = lines_touched t off len in
  t.stats.Stats.stores <- t.stats.Stats.stores + lines;
  Clock.advance (lines * t.config.Config.dram_write_ns);
  Bytes.blit_string s 0 t.volatile off len;
  let first = line_of t off and last = line_of t (off + max 0 (len - 1)) in
  for l = first to last do
    dirtied t l
  done;
  match t.tracer with
  | None -> ()
  | Some f -> if len > 0 then f (Trace.Store { off; len; durable = false })

(* -- durable stores ---------------------------------------------------- *)

(* Non-temporal word store: bypasses the cache and is durable on arrival.
   The word's cacheline may still be dirty from earlier cached stores to
   *other* words of the line; those stay volatile. *)
let nt_write t off v =
  check_bounds t off 8;
  persist_event t;
  t.stats.Stats.nt_stores <- t.stats.Stats.nt_stores + 1;
  Bytes.set_int64_le t.volatile off v;
  Bytes.set_int64_le t.durable off v;
  charge_line_write t (line_of t off);
  t.persisted_since_fence <- true;
  match t.tracer with
  | None -> ()
  | Some f -> f (Trace.Store { off; len = 8; durable = true })

let flush_line t off =
  check_bounds t off 1;
  let line = line_of t off in
  if Bytes.unsafe_get t.dirty line = '\001' then begin
    persist_event t;
    t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
    let base = line lsl t.line_shift in
    let len = min (1 lsl t.line_shift) (t.size - base) in
    Bytes.blit t.volatile base t.durable base len;
    Bytes.unsafe_set t.dirty line '\000';
    Bytes.unsafe_set t.pinned line '\000';
    charge_line_write t line;
    t.persisted_since_fence <- true;
    match t.tracer with
    | None -> ()
    | Some f -> f (Trace.Flush { off = base; dirty = true })
  end
  else begin
    (* The flush instruction was still issued; a clean line means it had
       nothing to write back — pure overhead. *)
    t.stats.Stats.redundant_flushes <- t.stats.Stats.redundant_flushes + 1;
    match t.tracer with
    | None -> ()
    | Some f -> f (Trace.Flush { off; dirty = false })
  end

let flush_range t off len =
  if len > 0 then begin
    check_bounds t off len;
    let first = line_of t off and last = line_of t (off + len - 1) in
    for l = first to last do
      flush_line t (l lsl t.line_shift)
    done
  end

let flush_all t =
  for l = 0 to Bytes.length t.dirty - 1 do
    if Bytes.unsafe_get t.dirty l = '\001' then flush_line t (l lsl t.line_shift)
  done

let fence t =
  t.stats.Stats.fences <- t.stats.Stats.fences + 1;
  if not t.persisted_since_fence then
    t.stats.Stats.redundant_fences <- t.stats.Stats.redundant_fences + 1;
  t.persisted_since_fence <- false;
  t.last_nvm_line <- -1;
  Clock.advance t.config.Config.fence_ns;
  match t.tracer with None -> () | Some f -> f Trace.Fence

(* Persist barrier: flush the word's line and fence.  The common "make this
   update durable now" sequence. *)
let persist t off len =
  flush_range t off len;
  fence t

(* -- root directory ---------------------------------------------------- *)

let root_off slot =
  if slot < 1 || slot >= root_slots then invalid_arg "Arena: bad root slot";
  slot * 8

let root_get t slot = read t (root_off slot)

let root_set t slot v =
  (* Roots anchor whole structures; they are always written durably. *)
  nt_write t (root_off slot) v;
  fence t

(* -- test/debug access to the durable image ---------------------------- *)

let durable_read t off =
  check_bounds t off 8;
  Bytes.get_int64_le t.durable off

let is_dirty t off = Bytes.unsafe_get t.dirty (line_of t off) = '\001'

(* -- store-buffer pinning ---------------------------------------------- *)

(* A pinned line models a store still held back in the store buffer: it is
   visible to every load (the volatile image has it) but is not yet
   released to the cache hierarchy, so the eviction adversary cannot write
   it back and a crash always loses it.  The WAL layer pins user-data
   lines whose undo records sit in a not-yet-persistent batch group and
   unpins them once the group is durable.  An explicit [flush_line] also
   unpins — the caller has taken charge of ordering. *)

let pin_line t off =
  check_bounds t off 1;
  Bytes.unsafe_set t.pinned (line_of t off) '\001';
  match t.tracer with None -> () | Some f -> f (Trace.Pin { off })

let unpin_line t off =
  check_bounds t off 1;
  Bytes.unsafe_set t.pinned (line_of t off) '\000';
  match t.tracer with None -> () | Some f -> f (Trace.Unpin { off })

let is_pinned t off = Bytes.unsafe_get t.pinned (line_of t off) = '\001'

(* Flip the bits of [len] bytes in both images, simulating in-place media
   corruption of already-durable data (tests only). *)
let corrupt t off len =
  check_bounds t off len;
  for i = off to off + len - 1 do
    Bytes.set t.durable i (Char.chr (Char.code (Bytes.get t.durable i) lxor 0xff));
    Bytes.set t.volatile i (Char.chr (Char.code (Bytes.get t.volatile i) lxor 0xff))
  done

(* -- durable-image snapshots (crash-state enumerator) ------------------- *)

(* A frozen copy of both memory images plus the dirty/pinned line maps.
   The enumerator captures one at each fence boundary and later
   materializes every crash state reachable from it: the durable image
   plus any subset of the dirty, unpinned lines (each may or may not have
   been written back by the hardware before power was lost); pinned lines
   still sit in the store buffer, so no subset includes them. *)

type image = {
  i_size : int;
  i_config : Config.t;
  i_durable : Bytes.t;
  i_volatile : Bytes.t;
  i_dirty : Bytes.t;
  i_pinned : Bytes.t;
}

let capture t =
  {
    i_size = t.size;
    i_config = t.config;
    i_durable = Bytes.copy t.durable;
    i_volatile = Bytes.copy t.volatile;
    i_dirty = Bytes.copy t.dirty;
    i_pinned = Bytes.copy t.pinned;
  }

(* Line numbers that a crash may or may not preserve: dirty and unpinned. *)
let image_dirty_lines img =
  let acc = ref [] in
  for l = Bytes.length img.i_dirty - 1 downto 0 do
    if
      Bytes.unsafe_get img.i_dirty l = '\001'
      && Bytes.unsafe_get img.i_pinned l = '\000'
    then acc := l :: !acc
  done;
  !acc

(* Build a fresh post-crash arena from [img]: the durable image, with each
   line in [survivors] overwritten by its volatile (written-back) copy. *)
let materialize img ~survivors =
  let t = create ~config:img.i_config ~size_bytes:img.i_size () in
  Bytes.blit img.i_durable 0 t.durable 0 img.i_size;
  List.iter
    (fun l ->
      let base = l lsl t.line_shift in
      let len = min (1 lsl t.line_shift) (img.i_size - base) in
      Bytes.blit img.i_volatile base t.durable base len)
    survivors;
  Bytes.blit t.durable 0 t.volatile 0 img.i_size;
  t.crashed <- true;
  t
