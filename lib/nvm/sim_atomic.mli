(** Instrumented atomics.

    A wrapper over [Stdlib.Atomic] giving each atomic a process-unique
    identity and reporting every operation to {!Trace.emit_sync} as an
    {!Trace.Atomic_rmw} (acquire+release on the identity), so the race
    detector sees the synchronisation edges of fetch-and-add / CAS
    chains.  Everything outside [lib/nvm] must use this instead of raw
    [Stdlib.Atomic] (enforced by the lint pass). *)

type 'a t

val make : 'a -> 'a t
val id : _ t -> int
(** Identity as it appears in {!Trace.Atomic_rmw} events. *)

val get : 'a t -> 'a
val set : 'a t -> 'a -> unit
val exchange : 'a t -> 'a -> 'a
val compare_and_set : 'a t -> 'a -> 'a -> bool
val fetch_and_add : int t -> int -> int
val incr : int t -> unit

(** {1 Atomic arena words}

    NVM-resident atomics for lock-free durable structures: the word's
    identity is derived from its byte address (negated, so it never
    collides with [make]'s ids), and every access is bracketed by two
    {!Trace.Atomic_rmw} events on it — the leading edge orders the
    access after every earlier completed access to the word, the
    trailing edge publishes it to the next one.  The load/store between
    the brackets goes through {!Arena}, so the sanitizer and enumerator
    see the memory traffic as usual. *)

val word_atom : int -> int
(** The atomic identity of the arena word at a byte address, as it
    appears in {!Trace.Atomic_rmw} events. *)

val read_word : Arena.t -> int -> int64
(** Acquire-read of an arena word (bracketed, see above). *)

val write_word : Arena.t -> int -> int64 -> unit
(** Atomic cached store to an arena word (bracketed). *)

val compare_and_set_word :
  ?persist:bool -> Arena.t -> int -> expected:int64 -> desired:int64 -> bool
(** [compare_and_set_word arena addr ~expected ~desired] atomically
    replaces the word's value if it equals [expected]; returns whether it
    did.  With [~persist:true] (link-and-persist) a successful CAS also
    flushes the word's cacheline {e inside} the bracket, so the
    write-back is ordered with the CAS chain itself and a concurrent
    CAS/flush on the same word can never make the durable prefix
    schedule-dependent. *)
