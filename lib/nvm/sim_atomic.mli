(** Instrumented atomics.

    A wrapper over [Stdlib.Atomic] giving each atomic a process-unique
    identity and reporting every operation to {!Trace.emit_sync} as an
    {!Trace.Atomic_rmw} (acquire+release on the identity), so the race
    detector sees the synchronisation edges of fetch-and-add / CAS
    chains.  Everything outside [lib/nvm] must use this instead of raw
    [Stdlib.Atomic] (enforced by the lint pass). *)

type 'a t

val make : 'a -> 'a t
val id : _ t -> int
(** Identity as it appears in {!Trace.Atomic_rmw} events. *)

val get : 'a t -> 'a
val set : 'a t -> 'a -> unit
val exchange : 'a t -> 'a -> 'a
val compare_and_set : 'a t -> 'a -> 'a -> bool
val fetch_and_add : int t -> int -> int
val incr : int t -> unit
