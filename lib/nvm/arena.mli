(** Simulated byte-addressable NVM with an explicit write-back cache.

    An arena holds two images: the durable NVM contents and the volatile CPU
    view (NVM plus dirty cachelines).  Cached stores become durable only via
    {!flush_line}/{!flush_all}; {!nt_write} is durable immediately.  {!crash}
    discards every dirty line, modelling a power failure.

    Each write that reaches NVM charges the cost model's write latency to the
    calling domain's {!Clock}, merging consecutive writes to one cacheline.
    {!fence} charges the fence latency and breaks write-combining. *)

type t

exception Crash
(** Raised by an armed arena (see {!arm_crash}) when the crash point is hit.
    The arena has already transitioned to its post-crash state. *)

val create : ?config:Config.t -> size_bytes:int -> unit -> t
val size : t -> int
val config : t -> Config.t
val stats : t -> Stats.t

(** {1 Loads and cached stores} *)

val read : t -> int -> int64
(** [read t off] loads the word at byte offset [off] (volatile view). *)

val write : t -> int -> int64 -> unit
(** [write t off v] is a cached store: volatile until its line is flushed. *)

val read_byte : t -> int -> int
val write_byte : t -> int -> int -> unit
val read_bytes : t -> int -> int -> string
val write_bytes : t -> int -> string -> unit

(** {1 Durable stores} *)

val nt_write : t -> int -> int64 -> unit
(** Non-temporal store: durable on arrival, one persistence event. *)

val flush_line : t -> int -> unit
(** Write back the cacheline containing the offset, if dirty. *)

val flush_range : t -> int -> int -> unit
val flush_all : t -> unit

val fence : t -> unit
(** Persistent memory fence: orders and charges [fence_ns]. *)

val persist : t -> int -> int -> unit
(** [persist t off len] flushes the range and fences. *)

(** {1 Crash simulation} *)

val crash : t -> unit
(** Discard all dirty lines; only durable state remains visible.  Under an
    attached {!Fault_model}, each dirty line instead survives
    independently with the model's per-line probability (the
    partial-eviction adversary). *)

val arm_crash : t -> after:int -> unit
(** Make the [after]+1-th persistence event (non-temporal store or dirty-line
    flush) raise {!Crash} instead of taking effect. *)

val disarm_crash : t -> unit
val crashed : t -> bool
val clear_crashed : t -> unit

(** {1 Fault injection}

    An attached {!Fault_model} turns the arena adversarial: partial
    cacheline survival at crash, spontaneous clean-capacity evictions of
    dirty lines on the cached-store paths, and corrupted cached reads from
    media-faulty lines.  Spontaneous evictions are hardware-initiated:
    they do not tick the crash countdown and charge no simulated time. *)

val set_fault_model : t -> Fault_model.t option -> unit
val fault_model : t -> Fault_model.t option

(** {1 Persistency event tracing}

    An attached tracer receives every {!Trace.event} — stores, flushes,
    fences, pin/unpin, evictions, crashes — in program order, interleaved
    with the semantic annotations the upper layers emit through
    {!Pmcheck}.  With no tracer attached the hot paths pay one pointer
    compare and allocate nothing. *)

val set_tracer : t -> (Trace.event -> unit) option -> unit
val tracer : t -> (Trace.event -> unit) option

val traced : t -> bool
(** [traced t] is true when a tracer is attached; annotation emitters
    guard on it so events are only built when someone listens. *)

val emit : t -> Trace.event -> unit
(** Forward an already-built event to the tracer, if any. *)

val set_trace_loads : t -> bool -> unit
(** Also report {!Trace.Load} events to the tracer.  Off by default:
    the persistency sanitizer and the crash-state enumerator do not
    consume loads (and loads dominate event volume); the race detector
    switches them on while attached. *)

(** {1 Store-buffer pinning}

    A pinned line models a store held back in the store buffer: every
    load sees it, but it is not yet released to the cache hierarchy — the
    eviction adversary cannot write it back, and a crash always loses it.
    The WAL layer pins user-data lines whose undo records sit in a
    not-yet-persistent batch group and unpins them once the group is
    durable.  An explicit {!flush_line} (and {!crash}) clears the pin. *)

val pin_line : t -> int -> unit
val unpin_line : t -> int -> unit
val is_pinned : t -> int -> bool

(** {1 Root directory}

    Sixty-three durable word slots at fixed offsets, used to anchor
    persistent structures across crashes. *)

val root_get : t -> int -> int64
val root_set : t -> int -> int64 -> unit
val reserved_bytes : int

(** {1 Test helpers} *)

val durable_read : t -> int -> int64
(** Read the durable image directly, bypassing the cache (tests only). *)

val is_dirty : t -> int -> bool

val corrupt : t -> int -> int -> unit
(** [corrupt t off len] flips the bits of [len] bytes in both the durable
    and volatile images, simulating in-place media corruption of
    already-durable data (tests only). *)

(** {1 Durable-image snapshots}

    Used by the crash-state enumerator: {!capture} freezes both memory
    images at a fence boundary; {!materialize} then builds the post-crash
    arena for any chosen subset of the dirty lines — the lines the
    hardware happened to write back before power was lost.  Pinned lines
    sit in the store buffer and never survive, so they are excluded from
    {!image_dirty_lines}. *)

type image

val capture : t -> image
(** Freeze the arena's durable/volatile images and dirty/pinned maps. *)

val image_dirty_lines : image -> int list
(** Line numbers whose survival a crash leaves open: dirty and unpinned. *)

val materialize : image -> survivors:int list -> t
(** [materialize img ~survivors] is a fresh crashed arena whose durable
    state is [img]'s durable image with each line in [survivors]
    overwritten by its volatile copy. *)
