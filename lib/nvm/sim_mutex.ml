(* A mutex that models contention in simulated time.

   Two operating modes:

   - Under the {!Sim_threads} fiber scheduler (the benchmark harness):
     mutual exclusion is cooperative.  A fiber that finds the lock held
     advances its clock just past the holder's progress and yields; once
     free, acquiring pulls the fiber's clock up to the last release time.
     Contention is thus resolved at lock-section granularity in simulated
     time.

   - Under real domains (or plain single-threaded code): a real [Mutex]
     provides exclusion and the release-time rule alone models waiting —
     a domain whose clock is behind the last release is pulled forward,
     which is how serialisation on REWIND's log latch (Section 4.7) and
     the baselines' coarse locks show up in the multithreaded figures.

   Every lock carries a process-unique identity and reports each
   acquire/release to {!Trace.emit_sync}, so the race detector sees the
   full synchronisation order — including the [contention_free] CAS
   path, which excludes without ever waiting but still orders its
   critical sections. *)

exception Misuse of string

type t = {
  mu : Mutex.t;
  id : int;                   (* process-unique lock identity *)
  mutable released_at : int;  (* simulated ns of the last release *)
  mutable holder : int;       (* fiber id, -1 when free (fiber mode only) *)
  acquire_ns : int;           (* fixed cost of the lock operation itself *)
  contention_free : bool;
      (* model a lock-free fast path: pay the CAS, never wait.  Real
         mutual exclusion is still provided (real mutex under domains;
         no preemption inside the section under the fiber scheduler). *)
}

let next_id = Atomic.make 0

let create ?(acquire_ns = 20) ?(contention_free = false) () =
  {
    mu = Mutex.create ();
    id = Atomic.fetch_and_add next_id 1;
    released_at = 0;
    holder = -1;
    acquire_ns;
    contention_free;
  }

let id t = t.id
let holding t = Sim_threads.active () && t.holder = Sim_threads.current ()
let trace_acquire t = Trace.emit_sync (Trace.Acquire { lock = t.id })
let trace_release t = Trace.emit_sync (Trace.Release { lock = t.id })

(* Fiber-mode ownership bookkeeping.  The holder field is what makes
   double-unlock and unlock-by-non-holder detectable: outside the fiber
   scheduler the real [Mutex] raises [Sys_error] on misuse already. *)
let take_fiber t = t.holder <- Sim_threads.current ()

let release_fiber t =
  let me = Sim_threads.current () in
  if t.holder = -1 then
    raise
      (Misuse
         (Printf.sprintf "Sim_mutex: double unlock of lock %d by fiber %d" t.id
            me));
  if t.holder <> me then
    raise
      (Misuse
         (Printf.sprintf
            "Sim_mutex: fiber %d unlocking lock %d held by fiber %d" me t.id
            t.holder));
  t.holder <- -1

let lock t =
  if t.contention_free then begin
    (* lock-free fast path: CAS cost only, no simulated waiting *)
    if Sim_threads.active () then take_fiber t else Mutex.lock t.mu;
    Clock.advance t.acquire_ns;
    trace_acquire t
  end
  else if Sim_threads.active () then begin
    (* Reschedule first: a fiber with a smaller clock must reach this
       point before us in simulated time, so lock acquisitions are
       processed in (near) simulated-time order. *)
    Sim_threads.yield ();
    while t.holder >= 0 do
      (* Busy in simulated time: catch up to the holder and let it run. *)
      Clock.advance_to (Sim_threads.clock_of t.holder + 1);
      Sim_threads.yield ()
    done;
    take_fiber t;
    Clock.advance_to t.released_at;
    Clock.advance t.acquire_ns;
    trace_acquire t
  end
  else begin
    Mutex.lock t.mu;
    Clock.advance_to t.released_at;
    Clock.advance t.acquire_ns;
    trace_acquire t
  end

let try_lock t =
  if t.contention_free then begin
    (* the lock-free fast path never waits; a try is an acquire *)
    lock t;
    true
  end
  else if Sim_threads.active () then begin
    (* Same rescheduling rule as [lock], so tries are processed in (near)
       simulated-time order before the holder check. *)
    Sim_threads.yield ();
    if t.holder >= 0 then begin
      Clock.advance t.acquire_ns;
      false
    end
    else begin
      take_fiber t;
      Clock.advance_to t.released_at;
      Clock.advance t.acquire_ns;
      trace_acquire t;
      true
    end
  end
  else if Mutex.try_lock t.mu then begin
    Clock.advance_to t.released_at;
    Clock.advance t.acquire_ns;
    trace_acquire t;
    true
  end
  else begin
    Clock.advance t.acquire_ns;
    false
  end

let unlock t =
  trace_release t;
  if t.contention_free then begin
    if Sim_threads.active () then release_fiber t
    else if t.holder >= 0 then t.holder <- -1
      (* acquired under the scheduler, released after it stopped *)
    else Mutex.unlock t.mu
  end
  else begin
    t.released_at <- Clock.now ();
    if Sim_threads.active () then release_fiber t
    else if t.holder >= 0 then t.holder <- -1
    else Mutex.unlock t.mu
  end

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
