(* A mutex that models contention in simulated time.

   Two operating modes:

   - Under the {!Sim_threads} fiber scheduler (the benchmark harness):
     mutual exclusion is cooperative.  A fiber that finds the lock held
     advances its clock just past the holder's progress and yields; once
     free, acquiring pulls the fiber's clock up to the last release time.
     Contention is thus resolved at lock-section granularity in simulated
     time.

   - Under real domains (or plain single-threaded code): a real [Mutex]
     provides exclusion and the release-time rule alone models waiting —
     a domain whose clock is behind the last release is pulled forward,
     which is how serialisation on REWIND's log latch (Section 4.7) and
     the baselines' coarse locks show up in the multithreaded figures. *)

type t = {
  mu : Mutex.t;
  mutable released_at : int;  (* simulated ns of the last release *)
  mutable holder : int;       (* fiber id, -1 when free (fiber mode only) *)
  acquire_ns : int;           (* fixed cost of the lock operation itself *)
  contention_free : bool;
      (* model a lock-free fast path: pay the CAS, never wait.  Real
         mutual exclusion is still provided (real mutex under domains;
         no preemption inside the section under the fiber scheduler). *)
}

let create ?(acquire_ns = 20) ?(contention_free = false) () =
  { mu = Mutex.create (); released_at = 0; holder = -1; acquire_ns; contention_free }

let lock t =
  if t.contention_free then begin
    (* lock-free fast path: CAS cost only, no simulated waiting *)
    if not (Sim_threads.active ()) then Mutex.lock t.mu;
    Clock.advance t.acquire_ns
  end
  else if Sim_threads.active () then begin
    (* Reschedule first: a fiber with a smaller clock must reach this
       point before us in simulated time, so lock acquisitions are
       processed in (near) simulated-time order. *)
    Sim_threads.yield ();
    while t.holder >= 0 do
      (* Busy in simulated time: catch up to the holder and let it run. *)
      Clock.advance_to (Sim_threads.clock_of t.holder + 1);
      Sim_threads.yield ()
    done;
    t.holder <- Sim_threads.current ();
    Clock.advance_to t.released_at;
    Clock.advance t.acquire_ns
  end
  else begin
    Mutex.lock t.mu;
    Clock.advance_to t.released_at;
    Clock.advance t.acquire_ns
  end

let try_lock t =
  if t.contention_free then begin
    (* the lock-free fast path never waits; a try is an acquire *)
    lock t;
    true
  end
  else if Sim_threads.active () then begin
    (* Same rescheduling rule as [lock], so tries are processed in (near)
       simulated-time order before the holder check. *)
    Sim_threads.yield ();
    if t.holder >= 0 then begin
      Clock.advance t.acquire_ns;
      false
    end
    else begin
      t.holder <- Sim_threads.current ();
      Clock.advance_to t.released_at;
      Clock.advance t.acquire_ns;
      true
    end
  end
  else if Mutex.try_lock t.mu then begin
    Clock.advance_to t.released_at;
    Clock.advance t.acquire_ns;
    true
  end
  else begin
    Clock.advance t.acquire_ns;
    false
  end

let unlock t =
  if t.contention_free then begin
    if not (Sim_threads.active ()) then Mutex.unlock t.mu
  end
  else begin
    t.released_at <- Clock.now ();
    if t.holder >= 0 then t.holder <- -1 else Mutex.unlock t.mu
  end

let with_lock t f =
  lock t;
  match f () with
  | v ->
      unlock t;
      v
  | exception e ->
      unlock t;
      raise e
