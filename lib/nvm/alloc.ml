(* Persistent-heap allocator over an {!Arena}.

   The design follows the constraint REWIND states for memory management
   (Section 4.3): allocation must never hand out space that a post-crash
   recovery could still need.  We guarantee this with a monotone bump
   cursor that is itself durable: the cursor word is advanced with a
   non-temporal store, so after a crash the cursor can only be at or past
   every allocation ever made.  Space reclaimed by [free] goes to a
   volatile size-class free list — reuse is safe because REWIND only frees
   memory whose last transactional use has committed — and is simply leaked
   if the system crashes before reuse, mirroring the paper's observation
   that de-allocation cannot be undone without OS support.

   Consecutive allocations write the same cursor cacheline, so the arena's
   write-combining makes the durability of allocation nearly free. *)

type t = {
  arena : Arena.t;
  cursor_off : int;  (* durable word holding the bump cursor *)
  limit : int;
  free_lists : (int * int, int list ref) Hashtbl.t;
      (* (size, align) -> offsets (volatile) *)
  slabs : (int * int, (int * int) ref) Hashtbl.t;
      (* (size, align) -> (next offset, objects left) in the current slab *)
  mu : Sim_mutex.t;
      (* allocator metadata is shared across domains; a contention-free
         Sim_mutex with zero acquire cost keeps the timing identical to a
         raw mutex while giving the race detector the happens-before
         edges of cross-fiber alloc/free/reuse *)
  live : (int, int) Hashtbl.t;  (* offset -> size, regions handed out *)
  freed_set : (int, unit) Hashtbl.t;  (* offsets already returned *)
  recovered : bool;
      (* a reattached heap has no record of pre-crash allocations, so a
         free of an unknown offset is legal exactly once there *)
  mutable live_bytes : int;
  mutable allocations : int;
  mutable frees : int;
}

let align8 n = (n + 7) land lnot 7

(* The allocator owns root slot [root]; its cursor lives right after the
   arena's reserved root directory. *)
let create ?(root = 1) arena =
  let cursor_off = Arena.reserved_bytes in
  let heap_base = cursor_off + 8 in
  let existing = Int64.to_int (Arena.root_get arena root) in
  if existing = 0 then begin
    Arena.nt_write arena cursor_off (Int64.of_int heap_base);
    Arena.fence arena;
    Arena.root_set arena root (Int64.of_int cursor_off)
  end;
  {
    arena;
    cursor_off;
    limit = Arena.size arena;
    free_lists = Hashtbl.create 64;
    slabs = Hashtbl.create 16;
    mu = Sim_mutex.create ~acquire_ns:0 ~contention_free:true ();
    live = Hashtbl.create 256;
    freed_set = Hashtbl.create 64;
    recovered = false;
    live_bytes = 0;
    allocations = 0;
    frees = 0;
  }

(* Reattach to the heap of a crashed arena: the durable cursor is trusted,
   volatile free lists start empty (crash leaks freed-but-unreused space). *)
let recover ?(root = 1) arena =
  let cursor_off = Int64.to_int (Arena.root_get arena root) in
  if cursor_off = 0 then create ~root arena
  else
    {
      arena;
      cursor_off;
      limit = Arena.size arena;
      free_lists = Hashtbl.create 64;
      slabs = Hashtbl.create 16;
      mu = Sim_mutex.create ~acquire_ns:0 ~contention_free:true ();
      live = Hashtbl.create 256;
      freed_set = Hashtbl.create 64;
      recovered = true;
      live_bytes = 0;
      allocations = 0;
      frees = 0;
    }

exception Out_of_memory_arena
exception Misuse of string

let cursor t = Int64.to_int (Arena.read t.arena t.cursor_off)

let bump t ~align size =
  let off = (cursor t + align - 1) land lnot (align - 1) in
  let next = off + size in
  if next > t.limit then raise Out_of_memory_arena;
  Arena.nt_write t.arena t.cursor_off (Int64.of_int next);
  off

(* Small objects are carved out of slabs so the durable cursor is advanced
   once per [slab_objects] allocations rather than per object.  Space of a
   partially-used slab leaks on a crash — the cursor is still monotone and
   never regresses below any handed-out object. *)
let slab_objects = 64
let slab_max_size = 512

let bump_small t ~align size =
  let key = (size, align) in
  let cell =
    match Hashtbl.find_opt t.slabs key with
    | Some c -> c
    | None ->
        let c = ref (0, 0) in
        Hashtbl.replace t.slabs key c;
        c
  in
  let off, left = !cell in
  if left > 0 then begin
    cell := (off + size, left - 1);
    off
  end
  else begin
    let off = bump t ~align (size * slab_objects) in
    cell := (off + size, slab_objects - 1);
    off
  end

let with_mu t f = Sim_mutex.with_lock t.mu f

let alloc ?(align = 8) t size =
  if size <= 0 then invalid_arg "Alloc.alloc: non-positive size";
  if align land (align - 1) <> 0 then invalid_arg "Alloc.alloc: align";
  let size = align8 size in
  with_mu t (fun () ->
      t.allocations <- t.allocations + 1;
      t.live_bytes <- t.live_bytes + size;
      let off =
        match Hashtbl.find_opt t.free_lists (size, align) with
        | Some ({ contents = off :: rest } as cell) ->
            cell := rest;
            off
        | Some _ | None ->
            if size <= slab_max_size && size land (align - 1) = 0 then
              bump_small t ~align size
            else bump t ~align size
      in
      Hashtbl.replace t.live off size;
      Hashtbl.remove t.freed_set off;
      Pmcheck.allocated t.arena ~addr:off ~len:size;
      off)

(* Callers that rely on durably-zeroed cells (log buckets, where 0 means
   "empty slot" even after a crash) must bypass free-list reuse: the bump
   cursor is monotone, so space past it has never been written and is
   durably zero by construction. *)
let alloc_fresh ?(align = 8) t size =
  if size <= 0 then invalid_arg "Alloc.alloc_fresh: non-positive size";
  if align land (align - 1) <> 0 then invalid_arg "Alloc.alloc_fresh: align";
  let size = align8 size in
  with_mu t (fun () ->
      t.allocations <- t.allocations + 1;
      t.live_bytes <- t.live_bytes + size;
      let off = bump t ~align size in
      Hashtbl.replace t.live off size;
      Hashtbl.remove t.freed_set off;
      Pmcheck.allocated t.arena ~addr:off ~len:size;
      off)

(* [free] validates its argument instead of trusting the caller (the
   analogue of Sim_mutex's double-unlock check): a double free would put
   the same offset on the free list twice and hand one region to two
   callers, and a free of a never-allocated offset poisons the list with
   space the cursor still considers virgin.  The one legal unknown-offset
   free is of a pre-crash allocation on a [recover]ed heap, whose
   allocation records died with the crash. *)
let free ?(align = 8) t off size =
  if size <= 0 then invalid_arg "Alloc.free: non-positive size";
  let size = align8 size in
  with_mu t (fun () ->
      (match Hashtbl.find_opt t.live off with
      | Some sz ->
          if sz <> size then
            raise
              (Misuse
                 (Fmt.str
                    "Alloc.free: offset %d was allocated with size %d, freed \
                     with size %d"
                    off sz size));
          Hashtbl.remove t.live off
      | None ->
          if Hashtbl.mem t.freed_set off then
            raise (Misuse (Fmt.str "Alloc.free: double free of offset %d" off));
          if not t.recovered then
            raise
              (Misuse
                 (Fmt.str "Alloc.free: offset %d was never allocated" off)));
      Hashtbl.replace t.freed_set off ();
      t.frees <- t.frees + 1;
      t.live_bytes <- t.live_bytes - size;
      Pmcheck.freed t.arena ~addr:off ~len:size;
      match Hashtbl.find_opt t.free_lists (size, align) with
      | Some cell -> cell := off :: !cell
      | None -> Hashtbl.replace t.free_lists (size, align) (ref [ off ]))

let live_bytes t = t.live_bytes
let allocations t = t.allocations
let frees t = t.frees
let arena t = t.arena
