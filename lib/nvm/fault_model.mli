(** Seeded adversarial fault model for the simulated NVM.

    Attached to an {!Arena} (see {!Arena.set_fault_model}) it replaces the
    kind crash semantics — "all dirty lines are lost" — with the arbitrary
    eviction adversary of real hardware: at crash time each dirty line
    survives independently with probability [crash_survival_ppm] / 1e6;
    during normal operation every cached store may spontaneously write
    back a recently-dirtied line with probability [eviction_ppm] / 1e6;
    and designated media-faulty lines return corrupted data on cached
    reads.

    All randomness comes from one PRNG seeded at creation: a given
    (seed, workload) pair replays the identical fault schedule. *)

type t

val create :
  ?eviction_ppm:int -> ?crash_survival_ppm:int -> seed:int -> unit -> t
(** Defaults: no spontaneous evictions, 50% per-line crash survival.
    Probabilities are in parts per million. *)

val seed : t -> int
val eviction_ppm : t -> int
val crash_survival_ppm : t -> int
val set_eviction_ppm : t -> int -> unit
val set_crash_survival_ppm : t -> int -> unit

val roll_eviction : t -> bool
(** Roll the spontaneous-eviction die (one roll per cached store). *)

val survives_crash : t -> bool
(** Roll the crash-survival die (one roll per dirty line, ascending line
    order, making the eviction mask a pure function of the seed and the
    crash-time dirty set). *)

val choose : t -> int -> int
(** [choose t n] draws uniformly from [0, n); 0 when [n <= 0]. *)

(** {1 Media faults} *)

val set_media_fault : t -> line:int -> unit
val clear_media_fault : t -> line:int -> unit
val media_faulty : t -> line:int -> bool
val media_fault_count : t -> int

val pp : t Fmt.t
