(** Annotation API for the persistency sanitizer.

    The WAL/transaction layers declare durability *intent* through these
    calls — undo-record coverage, commit points, persistence expectations
    — and the annotations join the arena's raw event trace for the
    sanitizer (online ordering checks) and the crash-state enumerator
    (legal-state classification) to consume.

    All emitters are no-ops (one pointer compare, zero allocation) unless
    a tracer is attached with {!Arena.set_tracer}. *)

val region_logged :
  ?group:int -> Arena.t -> txn:int -> addr:int -> len:int -> durable:bool -> unit
(** An undo record covering [addr, addr+len) exists for [txn].  [durable]
    is false when the record sits in a not-yet-persistent batch group:
    the covered user store must stay volatile until the {!group_persisted}
    of the same [group] (the log partition holding the record; default 0
    for an unpartitioned log). *)

val group_persisted : ?group:int -> Arena.t -> unit
(** Log partition [group]'s pending batch group is durably reachable;
    every pending [region_logged] coverage of that partition upgrades to
    durable.  Partitions flush independently — a flush in one must not
    upgrade another's pending coverage. *)

val commit_point :
  Arena.t -> txn:int -> addr:int -> len:int -> what:string -> unit
(** [addr, addr+len) makes [txn]'s END record reachable; it must be
    durable and fence-ordered by the matching {!txn_settled}. *)

val txn_settled : Arena.t -> txn:int -> unit
(** Commit/rollback of [txn] is returning to the caller: commit points
    are due and undo-record coverage expires. *)

val expect_persisted : Arena.t -> addr:int -> len:int -> what:string -> unit
(** Caller-declared invariant: every byte of [addr, addr+len) is durable
    and separated from its write-back by a fence. *)

val recovery_begin : Arena.t -> unit
(** WAL-ordering rules are suspended while recovery redoes history. *)

val recovery_end : Arena.t -> unit

val epoch_logged : Arena.t -> addr:int -> len:int -> epoch:int -> unit
(** Epoch-protocol analogue of {!region_logged}: an in-cache-line undo
    word sharing the data's line captured the pre-[epoch] value of
    [addr, addr+len).  Coverage does not expire with any transaction —
    the line carries its own undo wherever it is written back — and is
    superseded only by the next {!epoch_advanced}. *)

val epoch_advanced : Arena.t -> epoch:int -> unit
(** Epoch-protocol analogue of {!txn_settled}: the durable epoch counter
    is about to become [epoch].  All lines captured under earlier epochs
    must already be durable and fence-ordered; their coverage is
    dropped. *)

val linked_durable : Arena.t -> addr:int -> len:int -> unit
(** Lock-free linked protocol (third persistence protocol, after WAL and
    the InCLL epochs): the link word(s) at [addr, addr+len) are updated
    by CAS with link-and-persist.  Registers the words under the
    protocol's permanent persist-order exemption — any write-back of a
    CAS-linked word lands a valid set state, the generalization of the
    epoch-cover exemption — and enrols them in the pending-link set
    checked at the next {!linked_exposed}. *)

val linked_exposed : Arena.t -> what:string -> unit
(** A lock-free operation is exposing its result (typically just before
    its durable announcement cell records completion): every pending
    {!linked_durable} link must already be durable and fence-ordered. *)

val freed : Arena.t -> addr:int -> len:int -> unit
(** Region returned to the allocator: further stores are use-after-free. *)

val allocated : Arena.t -> addr:int -> len:int -> unit
(** Region handed out by the allocator; clears any freed mark. *)
