(** Operation counters for the simulated NVM: benchmarks report them next
    to simulated durations; tests assert cost properties with them (e.g.
    "batched logging issues one fence per group"). *)

type t = {
  mutable nvm_writes : int;  (** cacheline-granularity writes that reached NVM *)
  mutable nt_stores : int;   (** non-temporal word stores issued *)
  mutable flushes : int;     (** explicit cacheline write-backs *)
  mutable fences : int;      (** persistent memory fences *)
  mutable loads : int;       (** CPU loads *)
  mutable stores : int;      (** cached CPU stores *)
  mutable crashes : int;     (** simulated crashes *)
  mutable evictions : int;       (** spontaneous dirty-line write-backs (fault model) *)
  mutable crash_survivals : int; (** dirty lines persisted by a partial-eviction crash *)
  mutable media_faults : int;    (** corrupted reads served from media-faulty lines *)
  mutable torn_records : int;    (** bad-checksum log records truncated by recovery *)
  mutable redundant_flushes : int; (** flushes issued on a clean line (no write-back) *)
  mutable redundant_fences : int;  (** fences with no persistence event since the last *)
  mutable inline_records : int; (** log appends encoded as inline slot pairs *)
  mutable full_records : int;   (** log appends of heap-allocated 64-byte records *)
}

val create : unit -> t
val reset : t -> unit
val diff : t -> t -> t
val snapshot : t -> t
val pp : t Fmt.t
