(** Operation counters for the simulated NVM: benchmarks report them next
    to simulated durations; tests assert cost properties with them (e.g.
    "batched logging issues one fence per group"). *)

type t = {
  mutable nvm_writes : int;  (** cacheline-granularity writes that reached NVM *)
  mutable nt_stores : int;   (** non-temporal word stores issued *)
  mutable flushes : int;     (** explicit cacheline write-backs *)
  mutable fences : int;      (** persistent memory fences *)
  mutable loads : int;       (** CPU loads *)
  mutable stores : int;      (** cached CPU stores *)
  mutable crashes : int;     (** simulated crashes *)
  mutable evictions : int;       (** spontaneous dirty-line write-backs (fault model) *)
  mutable crash_survivals : int; (** dirty lines persisted by a partial-eviction crash *)
  mutable media_faults : int;    (** corrupted reads served from media-faulty lines *)
  mutable torn_records : int;    (** bad-checksum log records truncated by recovery *)
  mutable redundant_flushes : int; (** flushes issued on a clean line (no write-back) *)
  mutable redundant_fences : int;  (** fences with no persistence event since the last *)
  mutable inline_records : int; (** log appends encoded as inline slot pairs *)
  mutable full_records : int;   (** log appends of heap-allocated 64-byte records *)
  mutable group_flushes : int;  (** batch-group persistence points (per log partition) *)
  mutable epoch_advances : int; (** durable epoch bumps (InCLL checkpoints) *)
  mutable incll_captures : int; (** first-store-of-epoch in-line undo captures *)
  mutable incll_elided : int;   (** same-epoch repeat stores that needed no undo *)
}

val create : unit -> t
val reset : t -> unit
val diff : t -> t -> t
val snapshot : t -> t

val add : t -> t -> unit
(** [add dst src] accumulates [src]'s counters into [dst]. *)

val scoped : t -> (unit -> 'a) -> 'a * t
(** [scoped s f] runs [f] and returns its result together with the
    counter delta it caused.  The counters are cumulative for the arena's
    lifetime — across crashes and reattachments — so any "NVM work of
    this phase" question must be asked through a scope like this one;
    comparing raw totals across a crash double-counts every earlier
    attach cycle's work. *)

val pp : t Fmt.t
