(* Operation counters for the simulated NVM.  Benchmarks report these next
   to simulated durations; tests use them to assert cost properties such as
   "batched logging issues one fence per [group] records". *)

type t = {
  mutable nvm_writes : int;  (** cacheline-granularity writes that reached NVM *)
  mutable nt_stores : int;   (** non-temporal word stores issued *)
  mutable flushes : int;     (** explicit cacheline write-backs *)
  mutable fences : int;      (** persistent memory fences *)
  mutable loads : int;       (** CPU loads *)
  mutable stores : int;      (** cached CPU stores *)
  mutable crashes : int;     (** simulated crashes *)
  mutable evictions : int;       (** spontaneous dirty-line write-backs (fault model) *)
  mutable crash_survivals : int; (** dirty lines persisted by a partial-eviction crash *)
  mutable media_faults : int;    (** corrupted reads served from media-faulty lines *)
  mutable torn_records : int;    (** bad-checksum log records truncated by recovery *)
  mutable redundant_flushes : int; (** flushes issued on a clean line (no write-back) *)
  mutable redundant_fences : int;  (** fences with no persistence event since the last *)
  mutable inline_records : int; (** log appends encoded as inline slot pairs *)
  mutable full_records : int;   (** log appends of heap-allocated 64-byte records *)
  mutable group_flushes : int;  (** batch-group persistence points (per log partition) *)
  mutable epoch_advances : int; (** durable epoch bumps (InCLL checkpoints) *)
  mutable incll_captures : int; (** first-store-of-epoch in-line undo captures *)
  mutable incll_elided : int;   (** same-epoch repeat stores that needed no undo *)
}

let create () =
  {
    nvm_writes = 0;
    nt_stores = 0;
    flushes = 0;
    fences = 0;
    loads = 0;
    stores = 0;
    crashes = 0;
    evictions = 0;
    crash_survivals = 0;
    media_faults = 0;
    torn_records = 0;
    redundant_flushes = 0;
    redundant_fences = 0;
    inline_records = 0;
    full_records = 0;
    group_flushes = 0;
    epoch_advances = 0;
    incll_captures = 0;
    incll_elided = 0;
  }

let reset s =
  s.nvm_writes <- 0;
  s.nt_stores <- 0;
  s.flushes <- 0;
  s.fences <- 0;
  s.loads <- 0;
  s.stores <- 0;
  s.crashes <- 0;
  s.evictions <- 0;
  s.crash_survivals <- 0;
  s.media_faults <- 0;
  s.torn_records <- 0;
  s.redundant_flushes <- 0;
  s.redundant_fences <- 0;
  s.inline_records <- 0;
  s.full_records <- 0;
  s.group_flushes <- 0;
  s.epoch_advances <- 0;
  s.incll_captures <- 0;
  s.incll_elided <- 0

let diff a b =
  {
    nvm_writes = a.nvm_writes - b.nvm_writes;
    nt_stores = a.nt_stores - b.nt_stores;
    flushes = a.flushes - b.flushes;
    fences = a.fences - b.fences;
    loads = a.loads - b.loads;
    stores = a.stores - b.stores;
    crashes = a.crashes - b.crashes;
    evictions = a.evictions - b.evictions;
    crash_survivals = a.crash_survivals - b.crash_survivals;
    media_faults = a.media_faults - b.media_faults;
    torn_records = a.torn_records - b.torn_records;
    redundant_flushes = a.redundant_flushes - b.redundant_flushes;
    redundant_fences = a.redundant_fences - b.redundant_fences;
    inline_records = a.inline_records - b.inline_records;
    full_records = a.full_records - b.full_records;
    group_flushes = a.group_flushes - b.group_flushes;
    epoch_advances = a.epoch_advances - b.epoch_advances;
    incll_captures = a.incll_captures - b.incll_captures;
    incll_elided = a.incll_elided - b.incll_elided;
  }

let snapshot s = { s with nvm_writes = s.nvm_writes }

let add dst src =
  dst.nvm_writes <- dst.nvm_writes + src.nvm_writes;
  dst.nt_stores <- dst.nt_stores + src.nt_stores;
  dst.flushes <- dst.flushes + src.flushes;
  dst.fences <- dst.fences + src.fences;
  dst.loads <- dst.loads + src.loads;
  dst.stores <- dst.stores + src.stores;
  dst.crashes <- dst.crashes + src.crashes;
  dst.evictions <- dst.evictions + src.evictions;
  dst.crash_survivals <- dst.crash_survivals + src.crash_survivals;
  dst.media_faults <- dst.media_faults + src.media_faults;
  dst.torn_records <- dst.torn_records + src.torn_records;
  dst.redundant_flushes <- dst.redundant_flushes + src.redundant_flushes;
  dst.redundant_fences <- dst.redundant_fences + src.redundant_fences;
  dst.inline_records <- dst.inline_records + src.inline_records;
  dst.full_records <- dst.full_records + src.full_records;
  dst.group_flushes <- dst.group_flushes + src.group_flushes;
  dst.epoch_advances <- dst.epoch_advances + src.epoch_advances;
  dst.incll_captures <- dst.incll_captures + src.incll_captures;
  dst.incll_elided <- dst.incll_elided + src.incll_elided

(* Counter scope: the counters are cumulative for the arena's lifetime —
   across crashes and reattachments — so code that wants "the NVM work of
   *this* phase" (a benchmark iteration, one recovery pass) must bracket
   it.  Comparing raw totals across a crash double-counts every earlier
   attach cycle's work. *)
let scoped s f =
  let before = snapshot s in
  let v = f () in
  (v, diff s before)

let pp ppf s =
  Fmt.pf ppf "nvm_writes=%d nt=%d flushes=%d fences=%d loads=%d stores=%d"
    s.nvm_writes s.nt_stores s.flushes s.fences s.loads s.stores;
  if s.evictions + s.crash_survivals + s.media_faults + s.torn_records > 0 then
    Fmt.pf ppf " evictions=%d survivals=%d media_faults=%d torn=%d" s.evictions
      s.crash_survivals s.media_faults s.torn_records;
  if s.redundant_flushes + s.redundant_fences > 0 then
    Fmt.pf ppf " redundant_flushes=%d redundant_fences=%d" s.redundant_flushes
      s.redundant_fences;
  if s.inline_records + s.full_records > 0 then
    Fmt.pf ppf " inline_records=%d full_records=%d" s.inline_records
      s.full_records;
  if s.group_flushes > 0 then Fmt.pf ppf " group_flushes=%d" s.group_flushes;
  if s.epoch_advances + s.incll_captures + s.incll_elided > 0 then
    Fmt.pf ppf " epoch_advances=%d incll_captures=%d incll_elided=%d"
      s.epoch_advances s.incll_captures s.incll_elided
