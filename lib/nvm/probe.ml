(* Span/phase profiler: named accumulators of simulated time and NVM
   counter deltas, with a per-phase log2 duration histogram.  See the
   interface for the attribution story. *)

let hist_size = 48 (* 2^47 ns ≈ 39 hours of simulated time: plenty *)

type phase = {
  name : string;
  mutable count : int;
  mutable sim_ns : int;
  stats : Stats.t;
  hist : int array;
}

type t = {
  tbl : (string, phase) Hashtbl.t;
  mutable order : phase list;  (* newest first *)
}

let create () = { tbl = Hashtbl.create 16; order = [] }

let get t name =
  match Hashtbl.find_opt t.tbl name with
  | Some p -> p
  | None ->
      let p =
        {
          name;
          count = 0;
          sim_ns = 0;
          stats = Stats.create ();
          hist = Array.make hist_size 0;
        }
      in
      Hashtbl.replace t.tbl name p;
      t.order <- p :: t.order;
      p

let log2_bucket ns =
  if ns <= 0 then 0
  else begin
    let b = ref 0 in
    let v = ref ns in
    while !v > 1 && !b < hist_size - 1 do
      v := !v lsr 1;
      incr b
    done;
    !b
  end

let charge t name ~sim_ns ~stats =
  let p = get t name in
  p.count <- p.count + 1;
  p.sim_ns <- p.sim_ns + sim_ns;
  Stats.add p.stats stats;
  let b = log2_bucket sim_ns in
  p.hist.(b) <- p.hist.(b) + 1

let span t stats name f =
  let before = Stats.snapshot stats in
  let t0 = Clock.now () in
  let finish () =
    charge t name ~sim_ns:(Clock.now () - t0) ~stats:(Stats.diff stats before)
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let phases t = List.rev t.order
let find t name = Hashtbl.find_opt t.tbl name

let total_sim_ns t =
  List.fold_left (fun acc p -> acc + p.sim_ns) 0 (phases t)

(* Bucket 0 holds [0,2); bucket i>0 holds [2^i, 2^{i+1}). *)
let hist_buckets p =
  let res = ref [] in
  for i = Array.length p.hist - 1 downto 0 do
    if p.hist.(i) > 0 then
      res := ((if i = 0 then 0 else 1 lsl i), p.hist.(i)) :: !res
  done;
  !res

let pp ppf t =
  List.iter
    (fun p ->
      Fmt.pf ppf "%-16s %6dx  %a  (lines %d, nt %d, flushes %d, fences %d)@."
        p.name p.count Clock.pp_ns p.sim_ns p.stats.Stats.nvm_writes
        p.stats.Stats.nt_stores p.stats.Stats.flushes p.stats.Stats.fences)
    (phases t)
