(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.

   Used to checksum log records: a 64-byte record carries a 32-bit CRC of
   its other fields, so recovery can tell a well-formed record from a torn
   or media-corrupted line without interpreting garbage field values. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b =
  let t = Lazy.force table in
  t.((crc lxor b) land 0xff) lxor (crc lsr 8)

(* Streaming interface over raw words, for checksumming NVM structures
   without materialising them into a [Bytes] buffer.  [init] / a chain of
   [update_int64] / [finish] is bit-for-bit the digest of the words'
   little-endian byte images. *)
let init = 0xFFFFFFFF
let finish crc = crc lxor 0xFFFFFFFF

let update_int64 crc w =
  (* Feed the eight LE bytes of [w] without heap allocation: the low 63
     bits come through [Int64.to_int]; bit 63 is the sign. *)
  let lo = Int64.to_int w in
  let crc = ref crc in
  for i = 0 to 6 do
    crc := update !crc ((lo lsr (8 * i)) land 0xff)
  done;
  let b7 =
    ((lo lsr 56) land 0x7f) lor (if Int64.compare w 0L < 0 then 0x80 else 0)
  in
  update !crc b7

let digest_sub s pos len =
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (String.unsafe_get s i))
  done;
  !crc lxor 0xFFFFFFFF

let digest s = digest_sub s 0 (String.length s)

let digest_bytes b = digest_sub (Bytes.unsafe_to_string b) 0 (Bytes.length b)
