(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.

   Used to checksum log records: a 64-byte record carries a 32-bit CRC of
   its other fields, so recovery can tell a well-formed record from a torn
   or media-corrupted line without interpreting garbage field values. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b =
  let t = Lazy.force table in
  t.((crc lxor b) land 0xff) lxor (crc lsr 8)

let digest_sub s pos len =
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    crc := update !crc (Char.code (String.unsafe_get s i))
  done;
  !crc lxor 0xFFFFFFFF

let digest s = digest_sub s 0 (String.length s)

let digest_bytes b = digest_sub (Bytes.unsafe_to_string b) 0 (Bytes.length b)
