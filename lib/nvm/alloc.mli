(** Persistent-heap allocator over an {!Arena}.

    Crash discipline (Section 4.3): allocation never hands out space that
    a post-crash recovery could still need.  A durable, monotone bump
    cursor guarantees it; small objects are carved from slabs so the
    cursor write amortises.  [free]d space goes to volatile size-class
    free lists — reuse is safe because REWIND frees only memory whose last
    transactional use is settled — and is leaked by a crash, mirroring the
    paper's observation that de-allocation cannot be undone without OS
    support.  Thread-safe across domains. *)

type t

exception Out_of_memory_arena

exception Misuse of string
(** Raised by {!free} on a double free, a free of a never-allocated
    offset, or a free whose size contradicts the allocation's (the
    allocator analogue of {!Sim_mutex}'s double-unlock check). *)

val create : ?root:int -> Arena.t -> t
(** Fresh heap; the cursor is anchored at the arena root slot [root]
    (default 1). *)

val recover : ?root:int -> Arena.t -> t
(** Reattach after a crash: the durable cursor is trusted; free lists
    restart empty. *)

val alloc : ?align:int -> t -> int -> int
(** [alloc t size] returns an 8-byte-aligned (or [align]-aligned) NVM
    offset.  May reuse freed space of the same (size, align) class. *)

val alloc_fresh : ?align:int -> t -> int -> int
(** Like {!alloc} but never reuses freed space: the returned region has
    never been written and is durably zero — required by structures whose
    recovery treats zero as "empty" (log buckets). *)

val free : ?align:int -> t -> int -> int -> unit
(** [free t off size] returns a region to the (volatile) free list.  Only
    legal once no post-crash recovery can reference it.  Raises {!Misuse}
    on a double free, a never-allocated offset, or a size mismatch — on a
    {!recover}ed heap a first free of an unknown offset is accepted (the
    allocation predates the crash), but a second is still a double
    free. *)

val live_bytes : t -> int
val allocations : t -> int
val frees : t -> int
val arena : t -> Arena.t
val cursor : t -> int
