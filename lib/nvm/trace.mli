(** The persistency event stream: raw memory events emitted by {!Arena}
    interleaved with semantic annotations emitted through {!Pmcheck}, in
    one totally ordered trace.  Consumed by the persistency sanitizer
    (online ordering checks) and the crash-state enumerator (fences as
    crash boundaries). *)

type event =
  | Store of { off : int; len : int; durable : bool }
      (** A CPU store; [durable] marks non-temporal stores. *)
  | Flush of { off : int; dirty : bool }
      (** Write-back of the line containing [off]; [dirty] is false for a
          redundant (clean-line) flush. *)
  | Fence
  | Pin of { off : int }
  | Unpin of { off : int }
  | Evict of { off : int }
      (** Spontaneous hardware write-back: durable but not
          program-ordered. *)
  | Crash
  | Region_logged of {
      txn : int;
      addr : int;
      len : int;
      durable : bool;
      group : int;
    }
      (** Undo record for [txn] covers the region; [durable] false means
          the record waits in an unpersisted batch group of log partition
          [group]. *)
  | Group_persisted of { group : int }
      (** Partition [group]'s pending batch group became durable. *)
  | Commit_point of { txn : int; addr : int; len : int; what : string }
  | Txn_settled of { txn : int }
  | Expect_persisted of { addr : int; len : int; what : string }
  | Recovery of bool
  | Freed of { addr : int; len : int }
  | Allocated of { addr : int; len : int }

val pp : event Fmt.t
