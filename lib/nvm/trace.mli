(** The persistency event stream: raw memory events emitted by {!Arena}
    interleaved with semantic annotations emitted through {!Pmcheck}, in
    one totally ordered trace.  Consumed by the persistency sanitizer
    (online ordering checks) and the crash-state enumerator (fences as
    crash boundaries). *)

type event =
  | Store of { off : int; len : int; durable : bool }
      (** A CPU store; [durable] marks non-temporal stores. *)
  | Flush of { off : int; dirty : bool }
      (** Write-back of the line containing [off]; [dirty] is false for a
          redundant (clean-line) flush. *)
  | Fence
  | Pin of { off : int }
  | Unpin of { off : int }
  | Evict of { off : int }
      (** Spontaneous hardware write-back: durable but not
          program-ordered. *)
  | Crash
  | Region_logged of {
      txn : int;
      addr : int;
      len : int;
      durable : bool;
      group : int;
    }
      (** Undo record for [txn] covers the region; [durable] false means
          the record waits in an unpersisted batch group of log partition
          [group]. *)
  | Group_persisted of { group : int }
      (** Partition [group]'s pending batch group became durable. *)
  | Commit_point of { txn : int; addr : int; len : int; what : string }
  | Txn_settled of { txn : int }
  | Expect_persisted of { addr : int; len : int; what : string }
  | Recovery of bool
  | Freed of { addr : int; len : int }
  | Allocated of { addr : int; len : int }
  | Epoch_logged of { addr : int; len : int; epoch : int }
      (** An in-cache-line undo word co-located with the region captured
          the pre-[epoch] value (epoch-protocol analogue of
          {!Region_logged}); coverage lasts until the next epoch
          advance, not until a transaction settles. *)
  | Epoch_advanced of { epoch : int }
      (** The durable epoch counter is about to become [epoch]; all
          lines captured under earlier epochs must already be durable
          and fence-ordered (epoch-protocol analogue of
          {!Txn_settled}). *)
  | Linked_durable of { addr : int; len : int }
      (** Lock-free linked protocol: the link word(s) at [addr, addr+len)
          are CAS-updated and flushed before the operation's result is
          exposed (link-and-persist).  Registers the words under the
          protocol's permanent persist-order exemption and enrols them in
          the pending-link set checked at the next {!Linked_exposed}. *)
  | Linked_exposed of { what : string }
      (** A lock-free operation is exposing its result: every pending
          {!Linked_durable} link must already be durable and
          fence-ordered. *)
  | Load of { off : int; len : int }
      (** A CPU load; only emitted under {!Arena.set_trace_loads}. *)
  | Acquire of { lock : int }
      (** Lock acquired: happens-before edge from the last {!Release} of
          the same lock identity. *)
  | Release of { lock : int }
  | Atomic_rmw of { atom : int }
      (** Acquire+release read-modify-write on an atomic identity. *)
  | Fiber_spawn of { id : int }
      (** Spawn happens-before fiber [id]'s first operation. *)
  | Fiber_switch of { id : int }
      (** Scheduler resumed fiber [id] ([-1]: the spawning thread). *)
  | Fiber_join of { id : int }
      (** Fiber [id]'s last operation happens-before the join. *)

val pp : event Fmt.t

(** {1 Synchronization tracing}

    {!Sim_mutex}, {!Sim_atomic} and {!Sim_threads} emit their events
    through a global hook rather than an arena tracer: synchronization
    objects are not arena-resident, and the sanitizer/enumerator do not
    consume sync events.  Attach both this hook and the arena tracer to
    one sink to obtain the totally ordered stream the race detector
    needs (everything runs on a single domain). *)

val set_sync_tracer : (event -> unit) option -> unit
val sync_traced : unit -> bool
(** True when a sync tracer is attached; emitters use it to skip work. *)

val emit_sync : event -> unit
(** Deliver [ev] to the attached sync tracer, if any. *)
