(** CRC-32 (IEEE 802.3).  Returns the checksum as a non-negative [int]
    with the low 32 bits significant. *)

val digest : string -> int
val digest_sub : string -> int -> int -> int
val digest_bytes : Bytes.t -> int
