(** CRC-32 (IEEE 802.3).  Returns the checksum as a non-negative [int]
    with the low 32 bits significant. *)

val digest : string -> int
val digest_sub : string -> int -> int -> int
val digest_bytes : Bytes.t -> int

(** Streaming word interface — [finish (update_int64 ... (update_int64
    init w0) ...)] equals the digest of the words' little-endian byte
    images, with no heap allocation. *)

val init : int
val update_int64 : int -> int64 -> int
val finish : int -> int
