(** Lightweight span/phase profiler for the simulated-NVM stack.

    A probe accumulates named phases.  Each {!span} charges its body's
    simulated duration ({!Clock} delta) and NVM operation counters
    ({!Stats} delta) to one phase, so a recovery pass or a checkpoint can
    report exactly where its time and line writes went — attribution a
    raw {!Stats.t} cannot give, because the arena's counters are
    cumulative across the whole run (and across crashes).

    Phases are keyed by name and keep first-entry order.  Re-entering a
    phase accumulates; a log2 histogram of individual span durations is
    kept per phase so outliers stay visible next to the totals. *)

type phase = {
  name : string;
  mutable count : int;  (** spans charged to this phase *)
  mutable sim_ns : int;  (** accumulated simulated duration *)
  stats : Stats.t;  (** accumulated NVM counter deltas *)
  hist : int array;  (** log2 buckets of span durations, [2^i..2^{i+1}) ns *)
}

type t

val create : unit -> t

val span : t -> Stats.t -> string -> (unit -> 'a) -> 'a
(** [span p stats name f] runs [f], charging its simulated-clock and
    [stats] counter deltas to phase [name].  Exceptions propagate after
    the charge.  Spans of different names may nest; the inner span's
    costs are then counted in both phases (the outer one reports
    inclusive totals). *)

val charge : t -> string -> sim_ns:int -> stats:Stats.t -> unit
(** Charge an already-measured interval to a phase (for callers that
    cannot wrap the work in a closure). *)

val phases : t -> phase list
(** Phases in first-entry order. *)

val find : t -> string -> phase option
val total_sim_ns : t -> int

val hist_buckets : phase -> (int * int) list
(** Non-empty histogram buckets as [(lower_bound_ns, count)]. *)

val pp : t Fmt.t
(** One line per phase: name, count, simulated time, line
    writes/flushes/fences. *)
