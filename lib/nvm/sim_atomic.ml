(* Instrumented atomics: a thin wrapper over [Stdlib.Atomic] that gives
   each atomic a process-unique identity and reports every operation to
   {!Trace.emit_sync}.

   The race detector treats each reported operation as an
   acquire+release on the atomic's identity — the fetch-and-add chains
   on REWIND's global LSN and transaction counter are exactly such
   edges.  This slightly over-approximates plain [get]/[set] (a relaxed
   load carries no release), which is the conservative direction for a
   detector that gates CI: extra edges can only hide races between
   operations that did synchronise on the atomic, never invent one.

   Code outside [lib/nvm] must use this module (or {!Sim_mutex}) instead
   of raw [Stdlib.Atomic] — enforced by the tools/lint.sh CI pass — so
   the detector sees all synchronisation. *)

type 'a t = { a : 'a Atomic.t; id : int }

let next_id = Atomic.make 0
let make v = { a = Atomic.make v; id = Atomic.fetch_and_add next_id 1 }
let id t = t.id
let trace t = Trace.emit_sync (Trace.Atomic_rmw { atom = t.id })

let get t =
  trace t;
  Atomic.get t.a

let set t v =
  trace t;
  Atomic.set t.a v

let exchange t v =
  trace t;
  Atomic.exchange t.a v

let compare_and_set t old v =
  trace t;
  Atomic.compare_and_set t.a old v

let fetch_and_add t n =
  trace t;
  Atomic.fetch_and_add t.a n

let incr t = ignore (fetch_and_add t 1)

(* -- atomic arena words -------------------------------------------------- *)

(* NVM-resident atomics: the link words of lock-free durable structures
   live in the arena, not on the OCaml heap, so their CAS chains need a
   distinct instrumentation path.  The word's identity is derived from
   its address — negated so it can never collide with the non-negative
   ids [make] hands out — and every access is *bracketed* by two
   [Atomic_rmw] events on that identity:

     rmw (acquire: join the word's release clock)
     load / store / flush   (the access, charged and traced by Arena)
     rmw (release: publish a clock that covers the access)

   The leading edge orders this access after every earlier completed
   access to the word; the trailing edge publishes this access — without
   it, the race detector would see the Store/Load land *after* the
   acquire's tick and report it racy against the next fiber's access.
   Bracketing a plain atomic read with a full acquire+release
   over-approximates (same conservative direction as [get] above).

   [compare_and_set_word ~persist:true] additionally flushes the CAS'd
   line *inside* the bracket — link-and-persist: the write-back is
   ordered with the CAS chain itself, so a later CAS on the same word
   happens-after the flush and the durable prefix is not
   schedule-dependent. *)

let word_atom addr = -1 - (addr lsr 3)

(* Simulated cost of the lock-prefixed RMW itself, on top of whatever the
   arena charges for the memory traffic (same order as an uncontended
   Sim_mutex acquire). *)
let rmw_ns = 20

let bracket addr f =
  let atom = word_atom addr in
  Trace.emit_sync (Trace.Atomic_rmw { atom });
  let r = f () in
  Trace.emit_sync (Trace.Atomic_rmw { atom });
  r

let read_word arena addr = bracket addr (fun () -> Arena.read arena addr)

let write_word arena addr v =
  Clock.advance rmw_ns;
  bracket addr (fun () -> Arena.write arena addr v)

let compare_and_set_word ?(persist = false) arena addr ~expected ~desired =
  Clock.advance rmw_ns;
  bracket addr (fun () ->
      if Arena.read arena addr = expected then begin
        Arena.write arena addr desired;
        if persist then Arena.flush_line arena addr;
        true
      end
      else false)
