(* Instrumented atomics: a thin wrapper over [Stdlib.Atomic] that gives
   each atomic a process-unique identity and reports every operation to
   {!Trace.emit_sync}.

   The race detector treats each reported operation as an
   acquire+release on the atomic's identity — the fetch-and-add chains
   on REWIND's global LSN and transaction counter are exactly such
   edges.  This slightly over-approximates plain [get]/[set] (a relaxed
   load carries no release), which is the conservative direction for a
   detector that gates CI: extra edges can only hide races between
   operations that did synchronise on the atomic, never invent one.

   Code outside [lib/nvm] must use this module (or {!Sim_mutex}) instead
   of raw [Stdlib.Atomic] — enforced by the tools/lint.sh CI pass — so
   the detector sees all synchronisation. *)

type 'a t = { a : 'a Atomic.t; id : int }

let next_id = Atomic.make 0
let make v = { a = Atomic.make v; id = Atomic.fetch_and_add next_id 1 }
let id t = t.id
let trace t = Trace.emit_sync (Trace.Atomic_rmw { atom = t.id })

let get t =
  trace t;
  Atomic.get t.a

let set t v =
  trace t;
  Atomic.set t.a v

let exchange t v =
  trace t;
  Atomic.exchange t.a v

let compare_and_set t old v =
  trace t;
  Atomic.compare_and_set t.a old v

let fetch_and_add t n =
  trace t;
  Atomic.fetch_and_add t.a n

let incr t = ignore (fetch_and_add t 1)
