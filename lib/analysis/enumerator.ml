(* The crash-state enumerator: a deterministic, exhaustive complement to
   the randomized fault campaign.

   The simulator's crash model already bounds what a power failure can do:
   the durable image always survives; each dirty, unpinned cacheline
   either was or was not written back by the hardware before the failure;
   pinned lines sit in the store buffer and never survive.  At a *fence*
   the set of possibilities collapses — everything written back is
   ordered — so fences are the natural capture points.

   For a bounded workload the enumerator snapshots the arena at every
   fence (and once at the end), then for each snapshot materializes every
   one of the 2^n crash states (n = dirty, unpinned lines), runs the
   caller's recovery procedure against a fresh arena holding that state,
   and applies the caller's legality check.  If any reachable crash state
   recovers to an illegal result, [Illegal] reports the capture point and
   the surviving-line subset, which together replay the failure
   deterministically.

   Soundness: within the simulator's crash model this enumeration is
   exhaustive *at fence boundaries* — every durable state a crash-at-a-
   fence could leave is generated, because line write-backs are the only
   nondeterminism and each is tried both ways.  Crash points *between*
   persistence events are covered by the arena's [arm_crash] countdown
   (every intermediate state, in program order) and by the fault
   campaign; the enumerator's contribution is the subsets, which
   [arm_crash]'s single linear order cannot reach. *)

open Rewind_nvm

type stats = {
  capture_points : int; (* fences snapshotted (plus the final state) *)
  crash_states : int;   (* materialized and recovered *)
  max_open_lines : int; (* largest dirty-line set at any capture point *)
}

let pp_stats ppf s =
  Fmt.pf ppf "capture points=%d crash states=%d max open lines=%d"
    s.capture_points s.crash_states s.max_open_lines

exception
  Illegal of {
    capture_point : int; (* which fence (0-based, in trace order) *)
    survivors : int list; (* dirty lines that were written back *)
    detail : string;
  }

(* Subset of [lines] selected by the bits of [mask]. *)
let subset lines mask =
  let rec go i acc = function
    | [] -> List.rev acc
    | l :: rest ->
        go (i + 1) (if mask land (1 lsl i) <> 0 then l :: acc else acc) rest
  in
  go 0 [] lines

let run ?(max_lines = 14) arena ~workload ~recover ~check =
  let images = ref [] in
  Arena.set_tracer arena
    (Some (function Trace.Fence -> images := Arena.capture arena :: !images | _ -> ()));
  Fun.protect
    ~finally:(fun () -> Arena.set_tracer arena None)
    (fun () -> workload ());
  (* The quiescent end state is a capture point too: it is what a crash
     after the workload must recover from. *)
  images := Arena.capture arena :: !images;
  let images = List.rev !images in
  let states = ref 0 and max_open = ref 0 in
  List.iteri
    (fun point img ->
      let lines = Arena.image_dirty_lines img in
      let n = List.length lines in
      if n > !max_open then max_open := n;
      if n > max_lines then
        Fmt.invalid_arg
          "Enumerator.run: %d dirty lines at capture point %d exceeds \
           max_lines=%d (2^%d states); shrink the workload or raise the bound"
          n point max_lines n;
      for mask = 0 to (1 lsl n) - 1 do
        let survivors = subset lines mask in
        let crashed = Arena.materialize img ~survivors in
        incr states;
        let recovered = recover crashed in
        match check recovered with
        | None -> ()
        | Some detail -> raise (Illegal { capture_point = point; survivors; detail })
      done)
    images;
  {
    capture_points = List.length images;
    crash_states = !states;
    max_open_lines = !max_open;
  }
