(* The crash-state enumerator: a deterministic, exhaustive complement to
   the randomized fault campaign.

   The simulator's crash model already bounds what a power failure can do:
   the durable image always survives; each dirty, unpinned cacheline
   either was or was not written back by the hardware before the failure;
   pinned lines sit in the store buffer and never survive.  At a *fence*
   the set of possibilities collapses — everything written back is
   ordered — so fences are the natural capture points.

   For a bounded workload the enumerator snapshots the arena at every
   fence (and once at the end), then for each snapshot materializes every
   one of the 2^n crash states (n = dirty, unpinned lines), runs the
   caller's recovery procedure against a fresh arena holding that state,
   and applies the caller's legality check.  If any reachable crash state
   recovers to an illegal result, [Illegal] reports the capture point and
   the surviving-line subset, which together replay the failure
   deterministically.

   Soundness: within the simulator's crash model this enumeration is
   exhaustive *at fence boundaries* — every durable state a crash-at-a-
   fence could leave is generated, because line write-backs are the only
   nondeterminism and each is tried both ways.  Crash points *between*
   persistence events are covered by the arena's [arm_crash] countdown
   (every intermediate state, in program order) and by the fault
   campaign; the enumerator's contribution is the subsets, which
   [arm_crash]'s single linear order cannot reach. *)

open Rewind_nvm

type stats = {
  capture_points : int; (* fences snapshotted (plus the final state) *)
  crash_states : int;   (* materialized and recovered *)
  max_open_lines : int; (* largest dirty-line set at any capture point *)
}

let pp_stats ppf s =
  Fmt.pf ppf "capture points=%d crash states=%d max open lines=%d"
    s.capture_points s.crash_states s.max_open_lines

exception
  Illegal of {
    capture_point : int; (* which fence (0-based, in trace order) *)
    survivors : int list; (* dirty lines that were written back *)
    detail : string;
  }

(* Subset of [lines] selected by the bits of [mask]. *)
let subset lines mask =
  let rec go i acc = function
    | [] -> List.rev acc
    | l :: rest ->
        go (i + 1) (if mask land (1 lsl i) <> 0 then l :: acc else acc) rest
  in
  go 0 [] lines

let run ?(max_lines = 14) ?(at_every_event = false) arena ~workload ~recover
    ~check =
  let images = ref [] in
  (* Fences are the default capture points (the WAL protocols put one at
     every ordering-significant moment).  The epoch protocol (InCLL) is
     nearly fence-free, and — unlike the WAL protocols, whose recovery
     input only changes at persistence events — the *potential* crash
     image changes at every cached store too: a dirty line that the
     hardware writes back carries its volatile content of that instant,
     so the intra-line store sequences (undo written, tag not yet) are
     distinct crash states.  [at_every_event] therefore captures at every
     store (cached or durable) and at every dirty write-back — the
     write-back capture lands *after* the line went durable, pairing with
     the store capture just before it to bracket each flush of an epoch
     advance. *)
  let capture () = images := Arena.capture arena :: !images in
  Arena.set_tracer arena
    (Some
       (function
       | Trace.Fence -> capture ()
       | Trace.Store _ | Trace.Flush { dirty = true; _ } ->
           if at_every_event then capture ()
       | _ -> ()));
  Fun.protect
    ~finally:(fun () -> Arena.set_tracer arena None)
    (fun () -> workload ());
  (* The quiescent end state is a capture point too: it is what a crash
     after the workload must recover from. *)
  images := Arena.capture arena :: !images;
  let images = List.rev !images in
  let states = ref 0 and max_open = ref 0 in
  List.iteri
    (fun point img ->
      let lines = Arena.image_dirty_lines img in
      let n = List.length lines in
      if n > !max_open then max_open := n;
      if n > max_lines then
        Fmt.invalid_arg
          "Enumerator.run: %d dirty lines at capture point %d exceeds \
           max_lines=%d (2^%d states); shrink the workload or raise the bound"
          n point max_lines n;
      for mask = 0 to (1 lsl n) - 1 do
        let survivors = subset lines mask in
        let crashed = Arena.materialize img ~survivors in
        incr states;
        let recovered = recover crashed in
        match check recovered with
        | None -> ()
        | Some detail -> raise (Illegal { capture_point = point; survivors; detail })
      done)
    images;
  {
    capture_points = List.length images;
    crash_states = !states;
    max_open_lines = !max_open;
  }

(* -- multi-node crash-everywhere sweep ---------------------------------- *)

(* The distributed analogue of a single [arm_crash] walk: a world of
   several independent arenas (2PC coordinator plus participants), where
   any ONE component may fail at any of its persistence events while the
   others keep running.  A dry run counts each arena's events during the
   workload; then for every (arena, event) pair a fresh world is built,
   that arena is armed to crash at exactly that event, the workload runs
   to completion around the failure, and the caller's check — which is
   expected to run the cluster's log-only recovery — must find a globally
   consistent outcome.

   Exhaustiveness argument: within one world the workload is
   deterministic (simulated clock, seeded message fabric), so the dry
   run's event count for arena [i] enumerates every moment at which
   component [i] can lose its volatile state.  Combined with {!run}'s
   subset enumeration on a single arena, this covers every single-failure
   durable state the simulator can produce. *)

type node_sweep = {
  swept_arenas : int;   (* arenas that had at least one event *)
  crash_points : int;   (* (arena, event) pairs exercised *)
}

let pp_node_sweep ppf s =
  Fmt.pf ppf "arenas=%d crash points=%d" s.swept_arenas s.crash_points

exception Node_illegal of { node : int; event : int; detail : string }

let persistence_events a =
  let s = Arena.stats a in
  s.Stats.nt_stores + s.Stats.flushes

let sweep_nodes ~make ~arenas ~workload ~check =
  (* Dry run: per-arena persistence-event counts over the workload. *)
  let w0 = make () in
  let as0 = arenas w0 in
  let before = Array.map persistence_events as0 in
  workload w0;
  (match check w0 with
  | None -> ()
  | Some detail -> raise (Node_illegal { node = -1; event = 0; detail }));
  let counts = Array.mapi (fun i a -> persistence_events a - before.(i)) as0 in
  let points = ref 0 and swept = ref 0 in
  Array.iteri
    (fun i n_events ->
      if n_events > 0 then incr swept;
      for k = 1 to n_events do
        incr points;
        let w = make () in
        let a = (arenas w).(i) in
        (* [after] counts from the arena's creation; the world's setup
           events are already behind us, so offset by the current total. *)
        Arena.arm_crash a ~after:(persistence_events a + k - 1);
        (* Workload drivers absorb their own components' crashes (a dead
           component just stops answering); a crash that still escapes —
           e.g. from driver-side bookkeeping — ends the run early, which
           is itself a reachable schedule. *)
        (try workload w with Arena.Crash -> ());
        Arena.disarm_crash a;
        match check w with
        | None -> ()
        | Some detail -> raise (Node_illegal { node = i; event = k; detail })
      done)
    counts;
  { swept_arenas = !swept; crash_points = !points }
