(** Crash-state enumerator: at every fence of a bounded workload,
    exhaustively materialize each of the [2^n] durable states a crash
    could leave (every dirty, unpinned cacheline independently written
    back or lost; pinned lines always lost), run recovery against each,
    and check the result is a legal serialization.

    Deterministic complement to the randomized fault campaign: where
    [arm_crash] walks one linear order of persistence events and the
    fault model samples random eviction masks, the enumerator proves
    *every* fence-boundary subset recovers correctly. *)

type stats = {
  capture_points : int;  (** fences snapshotted, plus the final state *)
  crash_states : int;  (** crash states materialized and recovered *)
  max_open_lines : int;  (** largest dirty-line set at a capture point *)
}

val pp_stats : stats Fmt.t

exception
  Illegal of {
    capture_point : int;
    survivors : int list;
    detail : string;
  }
(** Raised when some crash state recovers to an illegal result; the
    capture point and surviving-line subset replay it deterministically. *)

val run :
  ?max_lines:int ->
  ?at_every_event:bool ->
  Rewind_nvm.Arena.t ->
  workload:(unit -> unit) ->
  recover:(Rewind_nvm.Arena.t -> 'a) ->
  check:('a -> string option) ->
  stats
(** [run arena ~workload ~recover ~check] traces [workload] on [arena],
    snapshotting at every fence (plus once at the end); for each snapshot
    enumerates all crash states, builds a fresh crashed arena for each,
    applies [recover], and requires [check] to return [None] (legal).
    [Some detail] raises {!Illegal}.  A capture point with more than
    [max_lines] (default 14) dirty lines raises [Invalid_argument] rather
    than silently truncating the claim of exhaustiveness.

    [at_every_event] (default false) additionally captures at every
    store (cached or durable) and every dirty write-back.  The WAL
    configurations fence at every ordering-significant moment, so fence
    captures suffice for them; the epoch protocol (InCLL) is nearly
    fence-free between epoch advances, and a dirty line's potential
    crash image changes with each cached store — the finer grid is what
    lets the sweep reach the first-store-of-epoch torn-line states and
    every point inside an epoch advance. *)

(** {1 Multi-node crash-everywhere sweep}

    The distributed analogue: a world of several independent arenas (a
    2PC coordinator and its participants), any ONE of which may fail at
    any of its persistence events while the others keep running. *)

type node_sweep = {
  swept_arenas : int;  (** arenas with at least one workload event *)
  crash_points : int;  (** (arena, event) pairs exercised *)
}

val pp_node_sweep : node_sweep Fmt.t

exception Node_illegal of { node : int; event : int; detail : string }
(** Some (arena, event) crash recovered to an inconsistent world; [node]
    is the arena's index in the caller's array ([-1] = the crash-free dry
    run), [event] the 1-based persistence event it was armed at. *)

val sweep_nodes :
  make:(unit -> 'w) ->
  arenas:('w -> Rewind_nvm.Arena.t array) ->
  workload:('w -> unit) ->
  check:('w -> string option) ->
  node_sweep
(** [sweep_nodes ~make ~arenas ~workload ~check] first dry-runs the
    workload on a fresh world to count each arena's persistence events,
    then for every (arena, event) pair builds a fresh world via [make],
    arms that arena to crash at exactly that event, runs [workload] to
    completion around the failure, and requires [check] — which should
    run the cluster's log-only recovery and verify global consistency —
    to return [None].  [Some detail] raises {!Node_illegal}.  [make] must
    be deterministic (seeded fabric, simulated clock) so the dry run's
    event counts transfer to the armed runs. *)
