(** Online persistency sanitizer.

    Attach one to an arena and every store/flush/fence — plus the WAL
    annotations the core layers emit through {!Rewind_nvm.Pmcheck} — is
    replayed against a shadow ordering model of real persistent-memory
    hardware, where a write-back is unordered until the next fence.  The
    sanitizer raises (or collects) a {!violation} at the first event that
    breaks REWIND's discipline, and counts redundant flushes/fences as
    performance diagnostics. *)

type kind =
  | Wal_order
      (** A user store became durable while its undo record still sat in
          an unpersisted batch group. *)
  | Unpersisted_commit
      (** A commit-point (or expected-persistent) word was still volatile
          when the transaction settled. *)
  | Unfenced
      (** A commit-point (or expected-persistent) word was written back
          but not fence-ordered — durable in the simulator, not on
          hardware. *)
  | Store_unlogged
      (** A store to transactionally-managed data with no active undo
          record (outside recovery). *)
  | Store_freed  (** A store to a region returned to the allocator. *)
  | Store_uncaptured
      (** A store to epoch-managed (InCLL) data whose in-line undo word
          was not captured in the current epoch. *)
  | Epoch_split
      (** A non-temporal store to epoch-managed data: the data would
          reach NVM independently of its co-located in-line undo word,
          breaking the line-atomicity argument that exempts InCLL lines
          from write-back ordering. *)
  | Link_unpersisted
      (** A lock-free CAS-linked word was still volatile when the
          operation exposed its result ({!Rewind_nvm.Pmcheck.linked_exposed}):
          the op could report success and then be lost by a crash,
          breaking durable linearizability. *)

type violation = { kind : kind; addr : int; event_no : int; detail : string }

exception Violation of violation

val pp_kind : kind Fmt.t
val pp_violation : violation Fmt.t

type mode =
  | Raise  (** raise {!Violation} at the first offending event *)
  | Collect  (** record violations; retrieve with {!violations} *)

type t

val attach : ?mode:mode -> Rewind_nvm.Arena.t -> t
(** Install the sanitizer as the arena's tracer ([mode] defaults to
    [Raise]). *)

val detach : t -> unit

val with_sanitizer : ?mode:mode -> Rewind_nvm.Arena.t -> (t -> 'a) -> 'a
(** [with_sanitizer arena f] attaches, runs [f], and always detaches. *)

val violations : t -> violation list
(** Collected violations, oldest first ([Collect] mode). *)

val events_seen : t -> int

(** {1 Diagnostics} *)

type report = {
  events : int;
  violation_count : int;
  redundant_flush_sites : (int * int) list;
      (** (line base, clean-flush count) *)
  redundant_fence_sites : (string * int) list;
      (** (preceding event, empty-fence count) *)
}

val report : t -> report
val pp_report : report Fmt.t
