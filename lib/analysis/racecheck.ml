(* Happens-before race detection over the trace stream.

   A FastTrack-style vector-clock detector (Flanagan & Freund, PLDI'09)
   for the simulated multicore: it consumes the arena's memory events
   (stores, loads, flushes) interleaved with the synchronization
   vocabulary emitted through {!Trace.emit_sync} by {!Sim_mutex}
   (acquire/release with lock identity), {!Sim_atomic} (acquire+release
   read-modify-writes), and {!Sim_threads} (spawn happens-before a
   fiber's first operation, last operation happens-before the join).
   Everything runs on one domain, so the combined stream is totally
   ordered and the detector is deterministic.

   Why bother under a cooperative scheduler?  The fibers never *really*
   race — the scheduler interleaves them at yield points — but the
   simulation stands in for real domains on real hardware, and an
   access pair with no happens-before edge is exactly the pair whose
   order the real machine is free to flip.  Data races here are bugs in
   the modelled protocol, not in the simulator.

   Two checks share the clocks:

   - Data races, at 8-byte word granularity with the FastTrack
     same-epoch fast path: a write concurrent with another fiber's read
     or write of the same word (or a read concurrent with a write).

   - Persist races, at cacheline granularity: a flush or eviction of a
     line concurrent with another fiber's store to it.  Even when the
     *values* are race-free, a concurrent write-back makes the durable
     prefix scheduler-dependent — the line may reach NVM with or
     without the store depending on timing.  Stores covered by a live
     undo record (the {!Trace.Region_logged} .. {!Trace.Txn_settled}
     window) are exempt: WAL makes their early write-back recoverable
     by construction, and the persistency sanitizer separately checks
     the record-before-data ordering.  This is what lets a concurrent
     checkpoint's [flush_all] run against No-force user stores without
     a report.  {!Trace.Epoch_logged} lines (InCLL) get the same
     exemption permanently: the undo word travels in the data's own
     cache line, so *any* write-back of the line — at any time, by any
     fiber — lands a self-recovering image in NVM.

   Each race is reported once per (kind, site) like the sanitizer's
   redundant-flush diagnostics, as a pair of accesses carrying fiber
   ids, event indices, and held-lock sets — the lock sets make most
   reports self-diagnosing (one side holds the lock, the other holds
   nothing). *)

open Rewind_nvm

(* Fibers are numbered as in {!Trace.Fiber_switch}: 0..n-1 for scheduler
   fibers, -1 for the spawning thread.  Internally they index vector
   clocks at [fiber + 1]. *)

type access = {
  fiber : int;  (** -1 = the spawning (main) thread *)
  clock : int;  (** the fiber's scalar clock at the access *)
  event_no : int;  (** index into the combined event stream *)
  locks : int list;  (** ids of locks held, sorted *)
}

type kind =
  | Write_write  (** two concurrent writes *)
  | Write_read  (** earlier write, concurrent later read *)
  | Read_write  (** earlier read, concurrent later write *)
  | Persist_order
      (** flush/eviction of a line concurrent with a store to it *)

type race = { kind : kind; addr : int; len : int; prev : access; cur : access }

exception Race of race

type mode = Raise | Collect

(* Growable vector clocks: absent components read as 0, so clocks of
   different lengths compare fine and only the written array grows. *)
module Vc = struct
  type t = int array ref

  let create () = ref [||]
  let get v i = if i < Array.length !v then !v.(i) else 0

  let ensure v n =
    if Array.length !v < n then begin
      let a = Array.make (max n 8) 0 in
      Array.blit !v 0 a 0 (Array.length !v);
      v := a
    end

  let set v i x =
    ensure v (i + 1);
    !v.(i) <- x

  let tick v i = set v i (get v i + 1)

  let join dst src =
    ensure dst (Array.length !src);
    for i = 0 to Array.length !src - 1 do
      if !src.(i) > !dst.(i) then !dst.(i) <- !src.(i)
    done

  let copy src = ref (Array.copy !src)
end

(* Per-word access history: the last write epoch and the last read per
   fiber since that write. *)
type word_state = {
  mutable w : access option;
  mutable rs : (int * access) list;  (* tid -> last read *)
}

type t = {
  arena : Arena.t;
  mode : mode;
  line_shift : int;
  vcs : (int, Vc.t) Hashtbl.t;  (* tid -> clock *)
  lock_vc : (int, Vc.t) Hashtbl.t;  (* lock id -> release clock *)
  atom_vc : (int, Vc.t) Hashtbl.t;  (* atomic id -> release clock *)
  locks_held : (int, int list) Hashtbl.t;  (* tid -> sorted lock ids *)
  words : (int, word_state) Hashtbl.t;
  line_stores : (int, (int, access * bool) Hashtbl.t) Hashtbl.t;
      (* line -> tid -> (last store, WAL-covered at store time) *)
  line_flushes : (int, (int, access) Hashtbl.t) Hashtbl.t;
      (* line -> tid -> last flush/evict *)
  cover_count : (int, int) Hashtbl.t;  (* word -> live undo records *)
  txn_cover : (int, int list ref) Hashtbl.t;  (* txn -> covered words *)
  epoch_cover : (int, unit) Hashtbl.t;
      (* words under in-cache-line (InCLL) undo coverage.  Unlike WAL
         coverage this never expires: the undo word shares the data's
         line, so every write-back of the line carries its own recovery
         information and can never make the durable prefix
         unrecoverable. *)
  linked_cover : (int, unit) Hashtbl.t;
      (* words updated under the lock-free linked protocol (CAS +
         link-and-persist).  Like [epoch_cover] this never expires: a
         CAS'd link word is atomic at word granularity and every
         write-back of it lands a valid structure state, so concurrent
         store/flush pairs on its line cannot make the durable prefix
         observably schedule-dependent. *)
  private_owner : (int, int) Hashtbl.t;
      (* word -> allocating tid, while still unshared.  A fiber building
         a structure in memory it just allocated (an undo record before
         its append publishes it) is exempt from the persist check: the
         region is unreachable, so a concurrent write-back of it cannot
         make the durable prefix observably schedule-dependent.  Privacy
         ends at the first access by any other fiber. *)
  seen_sites : (kind * int, unit) Hashtbl.t;  (* per-site dedup *)
  mutable races : race list;  (* newest first *)
  mutable cur : int;  (* current tid: fiber + 1, 0 = main *)
  mutable events : int;
  mutable saved_tracer : (Trace.event -> unit) option;
}

(* -- vector-clock plumbing --------------------------------------------- *)

let vc_of tbl key ~fresh =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = Vc.create () in
      fresh v;
      Hashtbl.add tbl key v;
      v

(* A fiber's own component starts at 1 so its epochs are never confused
   with the all-zero initial clock of everyone else. *)
let tid_vc t tid = vc_of t.vcs tid ~fresh:(fun v -> Vc.set v tid 1)
let sync_vc tbl key = vc_of tbl key ~fresh:(fun _ -> ())
let locks_of t tid = Option.value ~default:[] (Hashtbl.find_opt t.locks_held tid)

let cur_access t =
  {
    fiber = t.cur - 1;
    clock = Vc.get (tid_vc t t.cur) t.cur;
    event_no = t.events;
    locks = locks_of t t.cur;
  }

(* Did [a] happen before the current fiber's present? *)
let hb t a = a.clock <= Vc.get (tid_vc t t.cur) (a.fiber + 1)

let report t kind ~addr ~len prev =
  let key = (kind, addr) in
  if not (Hashtbl.mem t.seen_sites key) then begin
    Hashtbl.add t.seen_sites key ();
    let r = { kind; addr; len; prev; cur = cur_access t } in
    t.races <- r :: t.races;
    match t.mode with Raise -> raise (Race r) | Collect -> ()
  end

(* -- WAL coverage (persist-race suppression) ---------------------------- *)

let word_range off len f =
  for w = off lsr 3 to (off + len - 1) lsr 3 do
    f w
  done

let add_cover t ~txn ~addr ~len =
  let words =
    match Hashtbl.find_opt t.txn_cover txn with
    | Some l -> l
    | None ->
        let l = ref [] in
        Hashtbl.add t.txn_cover txn l;
        l
  in
  word_range addr len (fun w ->
      words := w :: !words;
      Hashtbl.replace t.cover_count w
        (1 + Option.value ~default:0 (Hashtbl.find_opt t.cover_count w)))

let drop_cover t ~txn =
  match Hashtbl.find_opt t.txn_cover txn with
  | None -> ()
  | Some words ->
      Hashtbl.remove t.txn_cover txn;
      List.iter
        (fun w ->
          match Hashtbl.find_opt t.cover_count w with
          | Some n when n > 1 -> Hashtbl.replace t.cover_count w (n - 1)
          | Some _ -> Hashtbl.remove t.cover_count w
          | None -> ())
        !words

let covered t off len =
  let all = ref true in
  word_range off len (fun w ->
      if
        not
          (Hashtbl.mem t.cover_count w
          || Hashtbl.mem t.epoch_cover w
          || Hashtbl.mem t.linked_cover w)
      then
        all := false);
  !all

(* Is [off, off+len) still private to the current fiber? *)
let self_private t off len =
  let all = ref true in
  word_range off len (fun w ->
      if Hashtbl.find_opt t.private_owner w <> Some t.cur then all := false);
  !all

(* Any access from a fiber other than the owner ends a word's privacy. *)
let demote_privacy t off len =
  word_range off len (fun w ->
      match Hashtbl.find_opt t.private_owner w with
      | Some owner when owner <> t.cur -> Hashtbl.remove t.private_owner w
      | _ -> ())

(* -- memory events ------------------------------------------------------ *)

let word_state t w =
  match Hashtbl.find_opt t.words w with
  | Some ws -> ws
  | None ->
      let ws = { w = None; rs = [] } in
      Hashtbl.add t.words w ws;
      ws

let line_tbl tbl line =
  match Hashtbl.find_opt tbl line with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 4 in
      Hashtbl.add tbl line h;
      h

let on_store t off len =
  let acc = cur_access t in
  let cov = covered t off len || self_private t off len in
  demote_privacy t off len;
  word_range off len (fun w ->
      let ws = word_state t w in
      let same_epoch =
        match ws.w with
        | Some a -> a.fiber = acc.fiber && a.clock = acc.clock
        | None -> false
      in
      if not same_epoch then begin
        (match ws.w with
        | Some a when a.fiber <> acc.fiber && not (hb t a) ->
            report t Write_write ~addr:(w lsl 3) ~len:8 a
        | _ -> ());
        List.iter
          (fun (rtid, ra) ->
            if rtid <> t.cur && not (hb t ra) then
              report t Read_write ~addr:(w lsl 3) ~len:8 ra)
          ws.rs;
        ws.w <- Some acc;
        ws.rs <- []
      end);
  (* persist check: is this store concurrent with a prior write-back of
     its line by another fiber? *)
  let first = off lsr t.line_shift
  and last = (off + len - 1) lsr t.line_shift in
  for line = first to last do
    if not cov then
      Hashtbl.iter
        (fun ftid fa ->
          if ftid <> t.cur && not (hb t fa) then
            report t Persist_order ~addr:(line lsl t.line_shift)
              ~len:(1 lsl t.line_shift) fa)
        (line_tbl t.line_flushes line);
    Hashtbl.replace (line_tbl t.line_stores line) t.cur (acc, cov)
  done

let on_load t off len =
  let acc = cur_access t in
  demote_privacy t off len;
  word_range off len (fun w ->
      let ws = word_state t w in
      let same_epoch =
        match List.assq_opt t.cur ws.rs with
        | Some a -> a.clock = acc.clock
        | None -> false
      in
      if not same_epoch then begin
        (match ws.w with
        | Some a when a.fiber <> acc.fiber && not (hb t a) ->
            report t Write_read ~addr:(w lsl 3) ~len:8 a
        | _ -> ());
        ws.rs <- (t.cur, acc) :: List.remove_assq t.cur ws.rs
      end)

let on_writeback t off =
  let line = off lsr t.line_shift in
  let acc = cur_access t in
  Hashtbl.iter
    (fun stid (sa, cov) ->
      if stid <> t.cur && (not cov) && not (hb t sa) then
        report t Persist_order ~addr:(line lsl t.line_shift)
          ~len:(1 lsl t.line_shift) sa)
    (line_tbl t.line_stores line);
  Hashtbl.replace (line_tbl t.line_flushes line) t.cur acc

(* -- synchronization events --------------------------------------------- *)

let on_acquire t lock =
  Vc.join (tid_vc t t.cur) (sync_vc t.lock_vc lock);
  Hashtbl.replace t.locks_held t.cur
    (List.sort_uniq compare (lock :: locks_of t t.cur))

let on_release t lock =
  let c = tid_vc t t.cur in
  Hashtbl.replace t.lock_vc lock (Vc.copy c);
  Vc.tick c t.cur;
  Hashtbl.replace t.locks_held t.cur
    (List.filter (fun l -> l <> lock) (locks_of t t.cur))

let on_rmw t atom =
  let c = tid_vc t t.cur and a = sync_vc t.atom_vc atom in
  Vc.join c a;
  Hashtbl.replace t.atom_vc atom (Vc.copy c);
  Vc.tick c t.cur

let on_spawn t id =
  let child = tid_vc t (id + 1) and parent = tid_vc t t.cur in
  Vc.join child parent;
  (* tick both: the child's new incarnation must not share epochs with a
     previous run's accesses, and the parent's post-spawn accesses must
     not look visible to the child *)
  Vc.tick child (id + 1);
  Vc.tick parent t.cur

let on_join t id = Vc.join (tid_vc t t.cur) (tid_vc t (id + 1))

(* -- the handler -------------------------------------------------------- *)

let handle t ev =
  t.events <- t.events + 1;
  match ev with
  | Trace.Store { off; len; durable = _ } -> on_store t off len
  | Trace.Load { off; len } -> on_load t off len
  | Trace.Flush { off; dirty } -> if dirty then on_writeback t off
  | Trace.Evict { off } -> on_writeback t off
  | Trace.Acquire { lock } -> on_acquire t lock
  | Trace.Release { lock } -> on_release t lock
  | Trace.Atomic_rmw { atom } -> on_rmw t atom
  | Trace.Fiber_spawn { id } -> on_spawn t id
  | Trace.Fiber_switch { id } -> t.cur <- id + 1
  | Trace.Fiber_join { id } -> on_join t id
  | Trace.Region_logged { txn; addr; len; durable = _; group = _ } ->
      add_cover t ~txn ~addr ~len
  | Trace.Txn_settled { txn } -> drop_cover t ~txn
  | Trace.Crash ->
      (* volatile lines are gone; pending write-back state is moot *)
      Hashtbl.reset t.line_stores;
      Hashtbl.reset t.line_flushes
  | Trace.Allocated { addr; len } ->
      word_range addr len (fun w -> Hashtbl.replace t.private_owner w t.cur)
  | Trace.Freed { addr; len } ->
      word_range addr len (fun w -> Hashtbl.remove t.private_owner w)
  | Trace.Epoch_logged { addr; len; epoch = _ } ->
      word_range addr len (fun w -> Hashtbl.replace t.epoch_cover w ())
  | Trace.Linked_durable { addr; len } ->
      word_range addr len (fun w -> Hashtbl.replace t.linked_cover w ())
  | Trace.Fence | Trace.Pin _ | Trace.Unpin _ | Trace.Group_persisted _
  | Trace.Commit_point _ | Trace.Expect_persisted _ | Trace.Recovery _
  | Trace.Epoch_advanced _ | Trace.Linked_exposed _ ->
      ()

(* -- lifecycle ----------------------------------------------------------- *)

let log2_exact n =
  let rec go acc = function 1 -> acc | m -> go (acc + 1) (m lsr 1) in
  go 0 n

let attach ?(mode = Raise) arena =
  let t =
    {
      arena;
      mode;
      line_shift = log2_exact (Arena.config arena).Config.cacheline_bytes;
      vcs = Hashtbl.create 16;
      lock_vc = Hashtbl.create 64;
      atom_vc = Hashtbl.create 16;
      locks_held = Hashtbl.create 16;
      words = Hashtbl.create 4096;
      line_stores = Hashtbl.create 1024;
      line_flushes = Hashtbl.create 1024;
      cover_count = Hashtbl.create 1024;
      txn_cover = Hashtbl.create 64;
      epoch_cover = Hashtbl.create 1024;
      linked_cover = Hashtbl.create 1024;
      private_owner = Hashtbl.create 1024;
      seen_sites = Hashtbl.create 16;
      races = [];
      cur = 0;
      events = 0;
      saved_tracer = Arena.tracer arena;
    }
  in
  let sink = handle t in
  Arena.set_tracer arena (Some sink);
  Arena.set_trace_loads arena true;
  Trace.set_sync_tracer (Some sink);
  t

let detach t =
  Arena.set_tracer t.arena t.saved_tracer;
  Arena.set_trace_loads t.arena false;
  Trace.set_sync_tracer None

let with_racecheck ?mode arena f =
  let t = attach ?mode arena in
  Fun.protect ~finally:(fun () -> detach t) (fun () -> f t)

let races t = List.rev t.races
let events_seen t = t.events

(* -- reporting ----------------------------------------------------------- *)

let pp_kind ppf k =
  Fmt.string ppf
    (match k with
    | Write_write -> "write-write"
    | Write_read -> "write-read"
    | Read_write -> "read-write"
    | Persist_order -> "store-flush")

let pp_fiber ppf f = if f < 0 then Fmt.string ppf "main" else Fmt.pf ppf "%d" f

let pp_access ppf a =
  Fmt.pf ppf "fiber %a ev %d locks {%a}" pp_fiber a.fiber a.event_no
    Fmt.(list ~sep:(any ",") int)
    a.locks

let pp_race ppf r =
  Fmt.pf ppf "%s (%a) at [%d,+%d): %a vs %a"
    (match r.kind with Persist_order -> "persist race" | _ -> "data race")
    pp_kind r.kind r.addr r.len pp_access r.prev pp_access r.cur

type report = { events : int; data_races : int; persist_races : int }

let report t =
  let data, persist =
    List.fold_left
      (fun (d, p) r ->
        match r.kind with Persist_order -> (d, p + 1) | _ -> (d + 1, p))
      (0, 0) t.races
  in
  { events = t.events; data_races = data; persist_races = persist }

let pp_report ppf r =
  Fmt.pf ppf "%d events, %d data race site(s), %d persist race site(s)"
    r.events r.data_races r.persist_races
