(** Happens-before race detection over the trace stream.

    A FastTrack-style vector-clock detector for the simulated multicore.
    Attach one to an arena and it consumes the arena's memory events
    (with load tracing switched on) together with the synchronization
    events {!Rewind_nvm.Sim_mutex}, {!Rewind_nvm.Sim_atomic} and
    {!Rewind_nvm.Sim_threads} emit through {!Rewind_nvm.Trace.emit_sync}:

    - {b data races}: an access pair to the same 8-byte word from two
      fibers, at least one a write, with no happens-before edge between
      them;
    - {b persist races}: a flush/eviction of a cacheline concurrent with
      another fiber's store to it, which makes the durable prefix
      scheduler-dependent.  Two exemptions: stores covered by a live
      undo record (WAL makes their early write-back recoverable, and the
      persistency sanitizer checks that ordering separately), and stores
      to memory the storing fiber allocated and no other fiber has yet
      accessed (an undo record under construction is unreachable until
      its append publishes it).

    Races are reported once per (kind, site), as a pair of accesses with
    fiber ids, event indices and held-lock sets. *)

type access = {
  fiber : int;  (** -1 = the spawning (main) thread *)
  clock : int;  (** the fiber's scalar clock at the access *)
  event_no : int;  (** index into the combined event stream *)
  locks : int list;  (** ids of locks held at the access, sorted *)
}

type kind =
  | Write_write  (** two concurrent writes to one word *)
  | Write_read  (** earlier write, concurrent later read *)
  | Read_write  (** earlier read, concurrent later write *)
  | Persist_order
      (** line write-back concurrent with another fiber's store to it *)

type race = { kind : kind; addr : int; len : int; prev : access; cur : access }

exception Race of race

type mode =
  | Raise  (** raise {!Race} at the first report *)
  | Collect  (** record reports; retrieve with {!races} *)

type t

val attach : ?mode:mode -> Rewind_nvm.Arena.t -> t
(** Install the detector: it becomes the arena's tracer (saving any
    previous one), switches load tracing on, and registers itself as the
    global sync tracer.  [mode] defaults to [Raise]. *)

val detach : t -> unit
(** Restore the arena's previous tracer, switch load tracing off, and
    unregister the sync tracer. *)

val with_racecheck : ?mode:mode -> Rewind_nvm.Arena.t -> (t -> 'a) -> 'a

val races : t -> race list
(** Reported races, oldest first. *)

val events_seen : t -> int

val pp_kind : kind Fmt.t
val pp_access : access Fmt.t
val pp_race : race Fmt.t

type report = { events : int; data_races : int; persist_races : int }

val report : t -> report
val pp_report : report Fmt.t
