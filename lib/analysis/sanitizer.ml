(* The persistency sanitizer: an online checker for REWIND's ordering
   discipline.

   It consumes the arena's event trace — raw stores/flushes/fences
   interleaved with the {!Rewind_nvm.Pmcheck} annotations the WAL layers
   emit — and replays it against a shadow ordering model of *real*
   persistent-memory hardware, which is stricter than the simulator: in
   the simulator a written-back line is durable the moment [flush_line]
   runs, so a missing fence costs nothing; on hardware (and in this
   shadow model) a write-back is unordered until the next fence.  The
   sanitizer therefore catches protocol bugs — a dropped fence, a user
   store racing ahead of its undo record — that the simulator's own crash
   machinery can never observe.

   Shadow state, per 8-byte word (the arena's store granularity):

     (absent)       durable and fence-ordered — the safe state
     Volatile       cached store not yet written back; a crash loses it
     Written_back   flushed (or spontaneously evicted) but not yet
                    fence-ordered; durable in the simulator, unordered
                    on hardware

   On top of the word states sit the WAL annotations:

   - [Region_logged] gives a word *coverage*: an undo record exists for
     the enclosing transaction.  Batch coverage starts *pending* (the
     record sits in an unpersisted group) and upgrades at the
     [Group_persisted] of the same log partition — partitions flush
     independently, so pending coverage is keyed by partition and a
     flush in one partition never upgrades another's.  A covered word
     that becomes durable (flush, eviction, or non-temporal store) while
     its coverage is still pending is a WAL-order violation: the user
     store could survive a crash that loses its undo record.
   - Words that have ever had coverage are *tracked*: they are user data
     under transactional management, so a store to one without active
     coverage (outside recovery) is a store-to-unlogged-region
     violation.
   - [Commit_point] regions must be fully durable and fence-ordered by
     the transaction's [Txn_settled]; [Expect_persisted] demands the
     same immediately.
   - [Freed] words reject all stores until re-[Allocated].
   - [Recovery] suspends the unlogged-store rule: repeat-history redo
     legitimately stores to user data with no fresh undo records.

   The epoch protocol (InCLL) has its own vocabulary with different
   rules.  [Epoch_logged] marks a word *epoch-covered*: an undo word in
   the word's own cache line captured its pre-epoch value.  Because undo
   and data share a line — and both the simulator and real hardware
   write lines back atomically — such a word may become durable at any
   time without ordering obligations: whatever line image lands in NVM
   carries either the old data or the data plus its undo, so flushes and
   evictions of epoch-covered words are exempt from the WAL-order rule
   by construction (they carry no WAL coverage at all).  What the epoch
   protocol does demand:

   - a cached store to an epoch-*tracked* word (one that has ever been
     epoch-covered) is a [Store_uncaptured] violation unless the word's
     coverage epoch equals the current epoch — the in-line undo must be
     (re)captured before the first mutation of each epoch;
   - a *non-temporal* store to an epoch-tracked word is an [Epoch_split]
     violation: it would push the data to NVM through the store buffer
     independently of its co-located undo word, forfeiting the
     line-atomicity argument above;
   - at [Epoch_advanced] every epoch-covered word must already be
     durable and fence-ordered (the advance's flush_all/fence precede
     the annotation); all epoch coverage is then superseded.

   Redundant flushes (clean line) and redundant fences (no persistence
   event since the previous fence) are *diagnostics*, not violations:
   counted per site and surfaced in the report. *)

open Rewind_nvm

type kind =
  | Wal_order
  | Unpersisted_commit
  | Unfenced
  | Store_unlogged
  | Store_freed
  | Store_uncaptured
  | Epoch_split
  | Link_unpersisted

let pp_kind ppf k =
  Fmt.string ppf
    (match k with
    | Wal_order -> "wal-order"
    | Unpersisted_commit -> "unpersisted-commit"
    | Unfenced -> "unfenced"
    | Store_unlogged -> "store-unlogged"
    | Store_freed -> "store-freed"
    | Store_uncaptured -> "store-uncaptured"
    | Epoch_split -> "epoch-split"
    | Link_unpersisted -> "link-unpersisted")

type violation = { kind : kind; addr : int; event_no : int; detail : string }

let pp_violation ppf v =
  Fmt.pf ppf "@[<h>[%a] addr=%d event=%d: %s@]" pp_kind v.kind v.addr
    v.event_no v.detail

exception Violation of violation

type mode = Raise | Collect

type word_state = Volatile | Written_back

(* One coverage cell is shared by every word of a logged region, so a
   single [Group_persisted] upgrade flips them all. *)
type coverage = { c_txn : int; mutable c_durable : bool }

type t = {
  arena : Arena.t;
  mode : mode;
  line_bytes : int;
  words : (int, word_state) Hashtbl.t; (* word = addr lsr 3; absent = durable *)
  cover : (int, coverage) Hashtbl.t;
  tracked : (int, unit) Hashtbl.t;
  freed : (int, unit) Hashtbl.t;
  pending_cov : (int, coverage list) Hashtbl.t;
      (* partition -> coverages awaiting that partition's Group_persisted *)
  epoch_cover : (int, int) Hashtbl.t; (* word -> epoch of in-line capture *)
  epoch_tracked : (int, unit) Hashtbl.t;
  mutable cur_epoch : int; (* latest epoch seen in the trace *)
  commit_points : (int, (int * int * string) list ref) Hashtbl.t;
  red_flush : (int, int ref) Hashtbl.t; (* line base -> count *)
  red_fence : (string, int ref) Hashtbl.t; (* preceding-event site -> count *)
  mutable linked_pending : (int * int) list;
      (* CAS-linked (addr, len) ranges awaiting the op's Linked_exposed *)
  mutable last_event : string;
  mutable persisted_since_fence : bool;
  mutable in_recovery : bool;
  mutable events : int;
  mutable violations : violation list; (* Collect mode, newest first *)
}

let violate t kind ~addr detail =
  let v = { kind; addr; event_no = t.events; detail } in
  match t.mode with
  | Raise -> raise (Violation v)
  | Collect -> t.violations <- v :: t.violations

(* Iterate the word indices of [addr, addr+len). *)
let words_of addr len f =
  for w = addr lsr 3 to (addr + len - 1) lsr 3 do
    f w
  done

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some c -> incr c
  | None -> Hashtbl.replace tbl key (ref 1)

(* A word is about to become durable through [how] (flush / eviction /
   non-temporal store): legal unless its undo-record coverage is still
   pending in an unpersisted batch group. *)
let durability_check t w ~how =
  match Hashtbl.find_opt t.cover w with
  | Some c when not c.c_durable ->
      violate t Wal_order ~addr:(w lsl 3)
        (Fmt.str
           "user store became durable via %s before its undo record's batch \
            group persisted (txn %d)"
           how c.c_txn)
  | Some _ | None -> ()

let on_store t ~off ~len ~durable =
  words_of off len (fun w ->
      if Hashtbl.mem t.freed w then
        violate t Store_freed ~addr:(w lsl 3)
          "store to a region already returned to the allocator";
      if
        (not t.in_recovery)
        && Hashtbl.mem t.tracked w
        && not (Hashtbl.mem t.cover w)
      then
        violate t Store_unlogged ~addr:(w lsl 3)
          "store to transactionally-managed data with no active undo record";
      if (not t.in_recovery) && Hashtbl.mem t.epoch_tracked w then
        if durable then
          violate t Epoch_split ~addr:(w lsl 3)
            "non-temporal store to epoch-managed data: the data would reach \
             NVM independently of its co-located in-line undo word"
        else if Hashtbl.find_opt t.epoch_cover w <> Some t.cur_epoch then
          violate t Store_uncaptured ~addr:(w lsl 3)
            (Fmt.str
               "store to epoch-managed data with no in-line undo capture for \
                epoch %d"
               t.cur_epoch);
      if durable then begin
        durability_check t w ~how:"non-temporal store";
        Hashtbl.remove t.words w
      end
      else Hashtbl.replace t.words w Volatile)

(* Write-back of one line: every volatile word of it becomes
   written-back (durable in the simulator, unordered until the fence). *)
let on_writeback t ~base ~how =
  words_of base t.line_bytes (fun w ->
      match Hashtbl.find_opt t.words w with
      | Some Volatile ->
          durability_check t w ~how;
          Hashtbl.replace t.words w Written_back
      | Some Written_back | None -> ())

let on_fence t =
  if not t.persisted_since_fence then bump t.red_fence t.last_event;
  t.persisted_since_fence <- false;
  Hashtbl.filter_map_inplace
    (fun _ st -> match st with Written_back -> None | Volatile -> Some st)
    t.words

(* Check a region that the program claims is durable and fence-ordered. *)
let check_persisted t ~addr ~len ~what ~kind_volatile =
  words_of addr len (fun w ->
      match Hashtbl.find_opt t.words w with
      | None -> ()
      | Some Volatile ->
          violate t kind_volatile ~addr:(w lsl 3)
            (Fmt.str "%s: word still volatile (never written back)" what)
      | Some Written_back ->
          violate t Unfenced ~addr:(w lsl 3)
            (Fmt.str "%s: word written back but not fence-ordered" what))

let on_crash t =
  (* Volatile ordering obligations die with the caches; tracked and freed
     address sets describe durable layout and survive. *)
  Hashtbl.reset t.words;
  Hashtbl.reset t.cover;
  Hashtbl.reset t.commit_points;
  Hashtbl.reset t.pending_cov;
  (* Conservative: post-crash recovery advances the epoch, so every
     epoch-managed word must be re-captured before its next store. *)
  Hashtbl.reset t.epoch_cover;
  t.linked_pending <- [];
  t.persisted_since_fence <- false;
  t.in_recovery <- false

let handle t ev =
  t.events <- t.events + 1;
  (match ev with
  | Trace.Store { off; len; durable } ->
      if durable then t.persisted_since_fence <- true;
      on_store t ~off ~len ~durable
  | Trace.Flush { off; dirty } ->
      if dirty then begin
        t.persisted_since_fence <- true;
        on_writeback t ~base:off ~how:"flush"
      end
      else bump t.red_flush (off land lnot (t.line_bytes - 1))
  | Trace.Fence -> on_fence t
  | Trace.Evict { off } ->
      (* Hardware-initiated write-back: durable, never fence-ordered
         until the program's next fence. *)
      on_writeback t ~base:off ~how:"spontaneous eviction"
  | Trace.Pin _ | Trace.Unpin _ -> ()
  | Trace.Crash -> on_crash t
  | Trace.Region_logged { txn; addr; len; durable; group } ->
      let c = { c_txn = txn; c_durable = durable } in
      if not durable then begin
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt t.pending_cov group)
        in
        Hashtbl.replace t.pending_cov group (c :: prev)
      end;
      words_of addr len (fun w ->
          Hashtbl.replace t.cover w c;
          Hashtbl.replace t.tracked w ())
  | Trace.Group_persisted { group } -> (
      (* Only this partition's pending coverage upgrades: with a
         partitioned log, another partition's group flush says nothing
         about records still sitting in this one's unpersisted group. *)
      match Hashtbl.find_opt t.pending_cov group with
      | None -> ()
      | Some l ->
          List.iter (fun c -> c.c_durable <- true) l;
          Hashtbl.remove t.pending_cov group)
  | Trace.Commit_point { txn; addr; len; what } -> (
      match Hashtbl.find_opt t.commit_points txn with
      | Some l -> l := (addr, len, what) :: !l
      | None -> Hashtbl.replace t.commit_points txn (ref [ (addr, len, what) ]))
  | Trace.Txn_settled { txn } ->
      (match Hashtbl.find_opt t.commit_points txn with
      | None -> ()
      | Some l ->
          List.iter
            (fun (addr, len, what) ->
              check_persisted t ~addr ~len
                ~what:(Fmt.str "commit point of txn %d (%s)" txn what)
                ~kind_volatile:Unpersisted_commit)
            !l;
          Hashtbl.remove t.commit_points txn);
      Hashtbl.filter_map_inplace
        (fun _ c -> if c.c_txn = txn then None else Some c)
        t.cover;
      Hashtbl.filter_map_inplace
        (fun _ l ->
          match List.filter (fun c -> c.c_txn <> txn) l with
          | [] -> None
          | l -> Some l)
        t.pending_cov
  | Trace.Expect_persisted { addr; len; what } ->
      check_persisted t ~addr ~len ~what ~kind_volatile:Unpersisted_commit
  | Trace.Recovery true -> t.in_recovery <- true
  | Trace.Recovery false ->
      (* Recovery settles every transaction wholesale. *)
      t.in_recovery <- false;
      Hashtbl.reset t.cover;
      Hashtbl.reset t.commit_points;
      Hashtbl.reset t.pending_cov;
      Hashtbl.reset t.epoch_cover;
      t.linked_pending <- []
  | Trace.Freed { addr; len } ->
      words_of addr len (fun w -> Hashtbl.replace t.freed w ())
  | Trace.Allocated { addr; len } ->
      words_of addr len (fun w -> Hashtbl.remove t.freed w)
  | Trace.Epoch_logged { addr; len; epoch } ->
      t.cur_epoch <- epoch;
      words_of addr len (fun w ->
          Hashtbl.replace t.epoch_cover w epoch;
          Hashtbl.replace t.epoch_tracked w ())
  | Trace.Epoch_advanced { epoch } ->
      Hashtbl.iter
        (fun w _ ->
          check_persisted t ~addr:(w lsl 3) ~len:8
            ~what:(Fmt.str "epoch advance to %d" epoch)
            ~kind_volatile:Unpersisted_commit)
        t.epoch_cover;
      Hashtbl.reset t.epoch_cover;
      t.cur_epoch <- epoch
  | Trace.Linked_durable { addr; len } ->
      (* Third protocol (lock-free linked): the CAS'd link carries no WAL
         or epoch coverage — a crash at any write-back order lands a valid
         set state — but it must be durable before the op's result is
         exposed.  Enrol it for the check at the next [Linked_exposed]. *)
      t.linked_pending <- (addr, len) :: t.linked_pending
  | Trace.Linked_exposed { what } ->
      List.iter
        (fun (addr, len) ->
          check_persisted t ~addr ~len
            ~what:(Fmt.str "lock-free link of %s" what)
            ~kind_volatile:Link_unpersisted)
        t.linked_pending;
      t.linked_pending <- []
  (* Synchronization vocabulary: consumed by the race detector, carries
     no persistency-ordering information. *)
  | Trace.Load _ | Trace.Acquire _ | Trace.Release _ | Trace.Atomic_rmw _
  | Trace.Fiber_spawn _ | Trace.Fiber_switch _ | Trace.Fiber_join _ ->
      ());
  t.last_event <- Fmt.str "%a" Trace.pp ev

let attach ?(mode = Raise) arena =
  let t =
    {
      arena;
      mode;
      line_bytes = (Arena.config arena).Config.cacheline_bytes;
      words = Hashtbl.create 1024;
      cover = Hashtbl.create 256;
      tracked = Hashtbl.create 256;
      freed = Hashtbl.create 256;
      pending_cov = Hashtbl.create 8;
      epoch_cover = Hashtbl.create 256;
      epoch_tracked = Hashtbl.create 256;
      cur_epoch = 0;
      commit_points = Hashtbl.create 16;
      red_flush = Hashtbl.create 64;
      red_fence = Hashtbl.create 64;
      linked_pending = [];
      last_event = "(start)";
      persisted_since_fence = false;
      in_recovery = false;
      events = 0;
      violations = [];
    }
  in
  Arena.set_tracer arena (Some (handle t));
  t

let detach t = Arena.set_tracer t.arena None

let with_sanitizer ?mode arena f =
  let s = attach ?mode arena in
  Fun.protect ~finally:(fun () -> detach s) (fun () -> f s)

let violations t = List.rev t.violations
let events_seen t = t.events

(* -- diagnostics report -------------------------------------------------- *)

type report = {
  events : int;
  violation_count : int;
  redundant_flush_sites : (int * int) list; (* line base, count *)
  redundant_fence_sites : (string * int) list; (* preceding event, count *)
}

let report t =
  let flushes =
    Hashtbl.fold (fun base c acc -> (base, !c) :: acc) t.red_flush []
    |> List.sort compare
  in
  let fences =
    Hashtbl.fold (fun site c acc -> (site, !c) :: acc) t.red_fence []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    events = t.events;
    violation_count = List.length t.violations;
    redundant_flush_sites = flushes;
    redundant_fence_sites = fences;
  }

let pp_report ppf r =
  Fmt.pf ppf "@[<v>events traced: %d@,violations: %d@," r.events
    r.violation_count;
  let rf = List.fold_left (fun a (_, c) -> a + c) 0 r.redundant_flush_sites in
  let fn = List.fold_left (fun a (_, c) -> a + c) 0 r.redundant_fence_sites in
  Fmt.pf ppf "redundant flushes: %d over %d lines@," rf
    (List.length r.redundant_flush_sites);
  List.iter
    (fun (base, c) -> Fmt.pf ppf "  line @%d: %d clean flushes@," base c)
    r.redundant_flush_sites;
  Fmt.pf ppf "redundant fences: %d over %d sites" fn
    (List.length r.redundant_fence_sites);
  List.iter
    (fun (site, c) -> Fmt.pf ppf "@,  after %s: %d empty fences" site c)
    r.redundant_fence_sites;
  Fmt.pf ppf "@]"
