(* One runner per table/figure of the paper's evaluation (Section 5), plus
   the ablation benches DESIGN.md calls out.  Every runner prints a
   {!Series} in the paper's axes.  Parameters are scaled down from the
   paper's (documented per figure and in EXPERIMENTS.md); [scale] lets the
   caller restore the original sizes. *)

open Rewind_nvm
open Rewind
open Rewind_pds
open Rewind_baselines

let root_slot = 2

(* ------------------------------------------------------------------ *)
(* Figure 3 (left): logging overhead vs update intensity               *)
(* ------------------------------------------------------------------ *)

let fig3_left ?(n_ops = 10_000) () =
  let configs = Rewind.all_figure3_configs in
  let points = [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ] in
  let rows =
    List.map
      (fun intensity ->
        {
          Series.x = float_of_int intensity;
          ys =
            List.map
              (fun (_, cfg) -> Workloads.logging_overhead ~cfg ~intensity ~n_ops)
              configs;
        })
      points
  in
  Series.make ~id:"fig3-left" ~title:"Logging overhead vs update intensity"
    ~xlabel:"update-intensity%" ~ylabel:"slowdown vs non-recoverable"
    ~series_names:(List.map fst configs) rows

(* ------------------------------------------------------------------ *)
(* Figure 3 (right): logging overhead vs skip records (force policy)   *)
(* ------------------------------------------------------------------ *)

let fig3_right ?(target_updates = 60) () =
  let points = [ 100; 200; 300; 400; 500; 600; 700; 800; 900; 1000 ] in
  let rows =
    List.map
      (fun skip ->
        {
          Series.x = float_of_int skip;
          ys =
            [
              Workloads.skip_commit_overhead ~cfg:Rewind.config_2l_fp
                ~target_updates ~skip;
              Workloads.skip_commit_overhead ~cfg:Rewind.config_1l_fp
                ~target_updates ~skip;
            ];
        })
      points
  in
  Series.make ~id:"fig3-right" ~title:"Logging overhead vs skip records"
    ~xlabel:"skip-records" ~ylabel:"slowdown vs non-recoverable"
    ~series_names:[ "2L-FP"; "1L-FP" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 4: rollback (left) and recovery (right) vs skip records      *)
(* ------------------------------------------------------------------ *)

let fig4_left ?(target_updates = 60) () =
  let points = [ 100; 200; 300; 400; 500; 600; 700; 800; 900; 1000 ] in
  let rows =
    List.map
      (fun skip ->
        {
          Series.x = float_of_int skip;
          ys =
            [
              Series.ns_to_ms
                (Workloads.skip_rollback_duration ~cfg:Rewind.config_2l_fp
                   ~target_updates ~skip);
              Series.ns_to_ms
                (Workloads.skip_rollback_duration ~cfg:Rewind.config_1l_fp
                   ~target_updates ~skip);
            ];
        })
      points
  in
  Series.make ~id:"fig4-left" ~title:"Single-transaction rollback vs skip records"
    ~xlabel:"skip-records" ~ylabel:"rollback (ms)"
    ~series_names:[ "2L-FP"; "1L-FP" ] rows

let fig4_right ?(target_updates = 60) () =
  let points = [ 100; 200; 300; 400; 500; 600; 700; 800; 900; 1000 ] in
  let rows =
    List.map
      (fun skip ->
        {
          Series.x = float_of_int skip;
          ys =
            [
              Series.ns_to_s
                (Workloads.skip_recovery_duration ~cfg:Rewind.config_2l_fp
                   ~target_updates ~skip);
              Series.ns_to_s
                (Workloads.skip_recovery_duration ~cfg:Rewind.config_1l_fp
                   ~target_updates ~skip);
            ];
        })
      points
  in
  Series.make ~id:"fig4-right" ~title:"Recovery of one transaction vs skip records"
    ~xlabel:"skip-records" ~ylabel:"recovery (s)" ~series_names:[ "2L-FP"; "1L-FP" ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 5: total cost vs fraction of transactions recovered          *)
(* ------------------------------------------------------------------ *)

let fig5 ?(n_txns = 60) ?(updates_each = 40) () =
  let skips = [ 10; 150; 300 ] in
  let fractions = [ 0.0; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1.0 ] in
  let names =
    List.concat_map
      (fun s -> [ Fmt.str "1L-NFP-%d" s; Fmt.str "1L-FP-%d" s ])
      skips
  in
  let rows =
    List.map
      (fun fraction ->
        {
          Series.x = fraction;
          ys =
            List.concat_map
              (fun skip ->
                [
                  Series.ns_to_s
                    (Workloads.fraction_recovered_cost ~cfg:Rewind.config_1l_nfp
                       ~n_txns ~updates_each ~skip ~fraction);
                  Series.ns_to_s
                    (Workloads.fraction_recovered_cost ~cfg:Rewind.config_1l_fp
                       ~n_txns ~updates_each ~skip ~fraction);
                ])
              skips;
        })
      fractions
  in
  Series.make ~id:"fig5" ~title:"Logging + commit/recovery vs fraction recovered"
    ~xlabel:"fraction-recovered" ~ylabel:"duration (s)" ~series_names:names rows

(* ------------------------------------------------------------------ *)
(* Figure 6: checkpoint overhead                                        *)
(* ------------------------------------------------------------------ *)

let fig6 ?(n_records = 120_000) () =
  let variants =
    [ ("Simple", Log.Simple); ("Optimized", Log.Optimized); ("Batch", Log.Batch 8) ]
  in
  let freqs = [ 2.; 4.; 6.; 8.; 10.; 12.; 14. ] in
  let rows =
    List.map
      (fun freq_s ->
        {
          Series.x = freq_s;
          ys =
            List.map
              (fun (_, variant) ->
                Workloads.checkpoint_overhead ~variant ~n_records ~freq_s)
              variants;
        })
      freqs
  in
  Series.make ~id:"fig6" ~title:"Checkpoint overhead vs checkpoint frequency"
    ~xlabel:"ckpt-freq (s, paper scale)" ~ylabel:"% overhead vs no checkpoints"
    ~series_names:(List.map fst variants) rows

(* ------------------------------------------------------------------ *)
(* Figures 7-10: B+-tree workloads                                      *)
(* ------------------------------------------------------------------ *)

(* Load a B+-tree with [n_records] keys in the given persistence mode. *)
let load_tree mode alloc ~n_records =
  let bt = Btree.create mode alloc in
  let txn = match mode with Btree.Logged tm -> Tm.begin_txn tm | _ -> 0 in
  for k = 1 to n_records do
    Btree.insert bt txn (Int64.of_int (k * 2)) (Int64.of_int k)
  done;
  (match mode with Btree.Logged tm -> Tm.commit tm txn | _ -> ());
  bt

(* The Figure 7 workload: [n_ops] operations, a fraction of them updates
   (alternating insert of a fresh key / delete of an existing one — the
   tree size stays constant), the rest lookups.  Transaction per
   operation.  Returns simulated ns. *)
let btree_workload_rewind ~cfg ~n_records ~n_ops ~update_pct =
  let arena = Arena.create ~size_bytes:(256 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let bt = load_tree (Btree.Logged tm) alloc ~n_records in
  let rng = Rewind_tpcc.Rng.create 5 in
  let s = Clock.start () in
  let next_fresh = ref ((n_records * 2) + 1) in
  for i = 0 to n_ops - 1 do
    if i * 100 / n_ops mod 100 < update_pct then
      if i land 1 = 0 then begin
        let txn = Tm.begin_txn tm in
        Btree.insert bt txn (Int64.of_int !next_fresh) 1L;
        incr next_fresh;
        Tm.commit tm txn
      end
      else begin
        let txn = Tm.begin_txn tm in
        ignore (Btree.delete bt txn (Int64.of_int (!next_fresh - 1)));
        Tm.commit tm txn
      end
    else
      ignore (Btree.lookup bt (Int64.of_int (2 * Rewind_tpcc.Rng.int rng 1 n_records)))
  done;
  Clock.elapsed s

let btree_workload_raw ~mode ~n_records ~n_ops ~update_pct =
  let arena = Arena.create ~size_bytes:(128 lsl 20) () in
  let alloc = Alloc.create arena in
  let bt = load_tree mode alloc ~n_records in
  let rng = Rewind_tpcc.Rng.create 5 in
  let s = Clock.start () in
  let next_fresh = ref ((n_records * 2) + 1) in
  for i = 0 to n_ops - 1 do
    if i * 100 / n_ops mod 100 < update_pct then begin
      if i land 1 = 0 then begin
        Btree.insert bt 0 (Int64.of_int !next_fresh) 1L;
        incr next_fresh
      end
      else ignore (Btree.delete bt 0 (Int64.of_int (!next_fresh - 1)))
    end
    else
      ignore (Btree.lookup bt (Int64.of_int (2 * Rewind_tpcc.Rng.int rng 1 n_records)))
  done;
  Clock.elapsed s

let kv_workload_baseline ~make ~n_records ~n_ops ~update_pct =
  let kv = make () in
  let t0 = Paged_kv.begin_txn kv in
  for k = 1 to n_records do
    Paged_kv.put kv t0 (Int64.of_int (k * 2)) (Int64.of_int k)
  done;
  Paged_kv.commit kv t0;
  Paged_kv.checkpoint kv;
  let rng = Rewind_tpcc.Rng.create 5 in
  let s = Clock.start () in
  let next_fresh = ref ((n_records * 2) + 1) in
  for i = 0 to n_ops - 1 do
    if i * 100 / n_ops mod 100 < update_pct then begin
      let txn = Paged_kv.begin_txn kv in
      if i land 1 = 0 then begin
        Paged_kv.put kv txn (Int64.of_int !next_fresh) 1L;
        incr next_fresh
      end
      else ignore (Paged_kv.delete kv txn (Int64.of_int (!next_fresh - 1)));
      Paged_kv.commit kv txn
    end
    else
      ignore (Paged_kv.lookup kv (Int64.of_int (2 * Rewind_tpcc.Rng.int rng 1 n_records)))
  done;
  Clock.elapsed s

let update_fractions = [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]

let fig7_left ?(n_records = 10_000) ?(n_ops = 20_000) () =
  let simple = { Rewind.config_1l_nfp with variant = Log.Simple } in
  let opt = Rewind.config_1l_nfp in
  let batch = { Rewind.config_1l_nfp with variant = Log.Batch 8 } in
  let rows =
    List.map
      (fun pct ->
        {
          Series.x = float_of_int pct;
          ys =
            [
              Series.ns_to_s
                (btree_workload_rewind ~cfg:simple ~n_records ~n_ops ~update_pct:pct);
              Series.ns_to_s
                (btree_workload_rewind ~cfg:opt ~n_records ~n_ops ~update_pct:pct);
              Series.ns_to_s
                (btree_workload_rewind ~cfg:batch ~n_records ~n_ops ~update_pct:pct);
              Series.ns_to_s
                (btree_workload_raw ~mode:Btree.Direct_nvm ~n_records ~n_ops
                   ~update_pct:pct);
              Series.ns_to_s
                (btree_workload_raw ~mode:Btree.Dram ~n_records ~n_ops
                   ~update_pct:pct);
            ];
        })
      update_fractions
  in
  Series.make ~id:"fig7-left" ~title:"B+-tree logging: REWIND vs no recoverability"
    ~xlabel:"update-fraction%" ~ylabel:"response time (s)"
    ~series_names:[ "REWIND"; "REWIND-Opt"; "REWIND-Batch"; "NVM"; "DRAM" ] rows

let fig7_right ?(n_records = 10_000) ?(n_ops = 20_000) () =
  let batch = { Rewind.config_1l_nfp with variant = Log.Batch 8 } in
  let rows =
    List.map
      (fun pct ->
        {
          Series.x = float_of_int pct;
          ys =
            [
              Series.ns_to_s
                (kv_workload_baseline
                   ~make:(fun () -> Bdb_like.create ())
                   ~n_records ~n_ops ~update_pct:pct);
              Series.ns_to_s
                (kv_workload_baseline
                   ~make:(fun () -> Stasis_like.create ())
                   ~n_records ~n_ops ~update_pct:pct);
              Series.ns_to_s
                (btree_workload_rewind ~cfg:batch ~n_records ~n_ops ~update_pct:pct);
              Series.ns_to_s
                (kv_workload_baseline
                   ~make:(fun () -> Shore_like.create ())
                   ~n_records ~n_ops ~update_pct:pct);
            ];
        })
      update_fractions
  in
  Series.make ~id:"fig7-right"
    ~title:"B+-tree logging: REWIND vs Stasis, BerkeleyDB, Shore-MT"
    ~xlabel:"update-fraction%" ~ylabel:"response time (s)"
    ~series_names:[ "BerkeleyDB"; "Stasis"; "REWIND-Batch"; "Shore-MT" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 8: rollback (left) and multi-transaction recovery (right)    *)
(* ------------------------------------------------------------------ *)

(* Mixed insert/delete run of [n_ops] on a pre-loaded tree; one
   transaction per [ops_per_txn] operations (0 = one transaction for the
   whole run).  Finishes with a rollback (single transaction) or a crash +
   recovery (multiple). *)
let rewind_mixed_run ~n_records ~n_ops ~ops_per_txn =
  let cfg = { Rewind.config_1l_nfp with variant = Log.Batch 8 } in
  let arena = Arena.create ~size_bytes:(640 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let bt = load_tree (Btree.Logged tm) alloc ~n_records in
  let next_fresh = ref ((n_records * 2) + 1) in
  let txn = ref (Tm.begin_txn tm) in
  let open_txn = ref true in
  for i = 0 to n_ops - 1 do
    if ops_per_txn > 0 && i > 0 && i mod ops_per_txn = 0 then begin
      Tm.commit tm !txn;
      txn := Tm.begin_txn tm;
      open_txn := true
    end;
    if i land 1 = 0 then begin
      Btree.insert bt !txn (Int64.of_int !next_fresh) 1L;
      incr next_fresh
    end
    else ignore (Btree.delete bt !txn (Int64.of_int (!next_fresh - 1)))
  done;
  (arena, tm, !txn, !open_txn)

let fig8_ops = [ 8_000; 16_000; 24_000; 32_000; 40_000; 48_000; 56_000; 64_000; 72_000; 80_000 ]

let baseline_mixed_run kv ~n_records ~n_ops ~ops_per_txn =
  let t0 = Paged_kv.begin_txn kv in
  for k = 1 to n_records do
    Paged_kv.put kv t0 (Int64.of_int (k * 2)) (Int64.of_int k)
  done;
  Paged_kv.commit kv t0;
  Paged_kv.checkpoint kv;
  let next_fresh = ref ((n_records * 2) + 1) in
  let txn = ref (Paged_kv.begin_txn kv) in
  for i = 0 to n_ops - 1 do
    if ops_per_txn > 0 && i > 0 && i mod ops_per_txn = 0 then begin
      Paged_kv.commit kv !txn;
      txn := Paged_kv.begin_txn kv
    end;
    if i land 1 = 0 then begin
      Paged_kv.put kv !txn (Int64.of_int !next_fresh) 1L;
      incr next_fresh
    end
    else ignore (Paged_kv.delete kv !txn (Int64.of_int (!next_fresh - 1)))
  done;
  !txn

let fig8_left ?(n_records = 10_000) () =
  let rollback_rewind n_ops =
    let _, tm, txn, _ = rewind_mixed_run ~n_records ~n_ops ~ops_per_txn:0 in
    let s = Clock.start () in
    Tm.rollback tm txn;
    Clock.elapsed s
  in
  let rollback_baseline make n_ops =
    let kv = make () in
    let txn = baseline_mixed_run kv ~n_records ~n_ops ~ops_per_txn:0 in
    let s = Clock.start () in
    Paged_kv.rollback kv txn;
    Clock.elapsed s
  in
  let rows =
    List.map
      (fun n_ops ->
        {
          Series.x = float_of_int n_ops /. 1000.;
          ys =
            [
              Series.ns_to_s (rollback_baseline (fun () -> Shore_like.create ()) n_ops);
              Series.ns_to_s (rollback_baseline (fun () -> Bdb_like.create ()) n_ops);
              Series.ns_to_s (rollback_baseline (fun () -> Stasis_like.create ()) n_ops);
              Series.ns_to_s (rollback_rewind n_ops);
            ];
        })
      fig8_ops
  in
  Series.make ~id:"fig8-left" ~title:"B+-tree single-transaction rollback"
    ~xlabel:"thousand-ops" ~ylabel:"duration (s)"
    ~series_names:[ "Shore-MT"; "BerkeleyDB"; "Stasis"; "REWIND-Batch" ] rows

let fig8_right ?(n_records = 10_000) () =
  let recover_rewind n_ops =
    let arena, tm, txn, open_txn = rewind_mixed_run ~n_records ~n_ops ~ops_per_txn:200 in
    if open_txn then Tm.commit tm txn;
    Arena.crash arena;
    let alloc = Alloc.recover arena in
    let cfg = { Rewind.config_1l_nfp with variant = Log.Batch 8 } in
    let s = Clock.start () in
    let _tm = Tm.attach ~cfg alloc ~root_slot in
    Clock.elapsed s
  in
  let recover_baseline make n_ops =
    let kv = make () in
    let txn = baseline_mixed_run kv ~n_records ~n_ops ~ops_per_txn:200 in
    Paged_kv.commit kv txn;
    Paged_kv.crash kv;
    let s = Clock.start () in
    Paged_kv.recover kv;
    Clock.elapsed s
  in
  let rows =
    List.map
      (fun n_ops ->
        {
          Series.x = float_of_int n_ops /. 1000.;
          ys =
            [
              Series.ns_to_s (recover_baseline (fun () -> Shore_like.create ()) n_ops);
              Series.ns_to_s (recover_baseline (fun () -> Bdb_like.create ()) n_ops);
              Series.ns_to_s (recover_baseline (fun () -> Stasis_like.create ()) n_ops);
              Series.ns_to_s (recover_rewind n_ops);
            ];
        })
      fig8_ops
  in
  Series.make ~id:"fig8-right" ~title:"B+-tree multi-transaction recovery"
    ~xlabel:"thousand-ops" ~ylabel:"duration (s)"
    ~series_names:[ "Shore-MT"; "BerkeleyDB"; "Stasis"; "REWIND-Batch" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 9: multithreaded B+-tree logging                              *)
(* ------------------------------------------------------------------ *)

(* Each thread performs [ops_per_thread] operations at its assigned
   lookup ratio (20-80 %): a lookup, or an insert/delete pair.  REWIND:
   per-thread trees over one shared transaction manager (its log latch is
   the contention point).  Baselines: one shared store; writers take the
   partition lock, readers are lock-free. *)
let lookup_ratio thread = 20 + (thread * 60 / 7) mod 61

let fig9_rewind ?(partitions = 1) ~threads ~ops_per_thread ~n_records () =
  let cfg =
    Rewind.with_partitions partitions
      { Rewind.config_1l_nfp with variant = Log.Batch 8 }
  in
  let arena = Arena.create ~size_bytes:(384 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let trees =
    Array.init threads (fun _ -> load_tree (Btree.Logged tm) alloc ~n_records)
  in
  let rngs = Array.init threads (fun t -> Rewind_tpcc.Rng.create (77 + t)) in
  let next_fresh =
    Array.init threads (fun t -> (n_records * 2) + 1 + (t * 10_000_000))
  in
  Sim_threads.run ~threads ~ops_per_thread (fun t _ ->
      let bt = trees.(t) and rng = rngs.(t) in
      let ratio = lookup_ratio t in
      if Rewind_tpcc.Rng.int rng 1 100 <= ratio then
        ignore
          (Btree.lookup bt (Int64.of_int (2 * Rewind_tpcc.Rng.int rng 1 n_records)))
      else begin
        let txn = Tm.begin_txn tm in
        Btree.insert bt txn (Int64.of_int next_fresh.(t)) 1L;
        ignore (Btree.delete bt txn (Int64.of_int next_fresh.(t)));
        next_fresh.(t) <- next_fresh.(t) + 1;
        Tm.commit tm txn
      end)

let fig9_baseline ~make ~threads ~ops_per_thread ~n_records =
  let kv = make () in
  let t0 = Paged_kv.begin_txn kv in
  for k = 1 to n_records do
    Paged_kv.put kv t0 (Int64.of_int (k * 2)) (Int64.of_int k)
  done;
  Paged_kv.commit kv t0;
  Paged_kv.checkpoint kv;
  let rngs = Array.init threads (fun t -> Rewind_tpcc.Rng.create (77 + t)) in
  let next_fresh = Array.init threads (fun t -> 1_000_000 * (t + 1)) in
  Sim_threads.run ~threads ~ops_per_thread (fun t _ ->
      let rng = rngs.(t) in
      let ratio = lookup_ratio t in
      if Rewind_tpcc.Rng.int rng 1 100 <= ratio then
        ignore
          (Paged_kv.lookup kv (Int64.of_int (2 * Rewind_tpcc.Rng.int rng 1 n_records)))
      else begin
        let txn = Paged_kv.begin_txn kv in
        Paged_kv.put kv txn (Int64.of_int next_fresh.(t)) 1L;
        ignore (Paged_kv.delete kv txn (Int64.of_int next_fresh.(t)));
        next_fresh.(t) <- next_fresh.(t) + 1;
        Paged_kv.commit kv txn
      end)

let fig9 ?(ops_per_thread = 10_000) ?(n_records = 4_000) () =
  let rows =
    List.map
      (fun threads ->
        {
          Series.x = float_of_int threads;
          ys =
            [
              Series.ns_to_s
                (fig9_baseline
                   ~make:(fun () -> Shore_like.create ())
                   ~threads ~ops_per_thread ~n_records);
              Series.ns_to_s
                (fig9_baseline
                   ~make:(fun () -> Bdb_like.create ())
                   ~threads ~ops_per_thread ~n_records);
              Series.ns_to_s
                (fig9_baseline
                   ~make:(fun () -> Stasis_like.create ())
                   ~threads ~ops_per_thread ~n_records);
              Series.ns_to_s (fig9_rewind ~threads ~ops_per_thread ~n_records ());
              Series.ns_to_s
                (fig9_rewind ~partitions:8 ~threads ~ops_per_thread ~n_records ());
            ];
        })
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  Series.make ~id:"fig9" ~title:"Multithreaded B+-tree logging"
    ~xlabel:"threads" ~ylabel:"processing time (s)"
    ~series_names:
      [ "Shore-MT"; "BerkeleyDB"; "Stasis"; "REWIND-Batch"; "REWIND-Batch-P8" ]
    rows

(* Partition scaling on its own: fixed thread count, varying partition
   count (the {!Scaling_bench} workload rendered as a series). *)
let scaling ?(threads = 8) ?(txns_per_thread = 400) () =
  let results = Scaling_bench.run ~threads ~txns_per_thread () in
  let rows =
    List.map
      (fun r ->
        {
          Series.x = float_of_int r.Scaling_bench.partitions;
          ys = [ r.Scaling_bench.throughput_ops_per_s ];
        })
      (* partitioned rows only: the InCLL row is not a partition count *)
      (Scaling_bench.batch_series results)
  in
  Series.make ~id:"scaling" ~title:"Partitioned-log write scaling"
    ~xlabel:"partitions" ~ylabel:"updates per simulated second"
    ~series_names:[ Printf.sprintf "%d threads" threads ]
    rows

(* ------------------------------------------------------------------ *)
(* Figure 10: memory-fence sensitivity                                  *)
(* ------------------------------------------------------------------ *)

let fig10 ?(n_records = 5_000) ?(n_ops = 10_000) () =
  (* Fifty operations per transaction: log-record groups then span many
     records between END records, which is what lets larger group sizes
     amortise the fence (Section 3.3's reordering across user writes). *)
  let run variant fence_ns =
    let config = Config.default () in
    config.Config.fence_ns <- fence_ns;
    let arena = Arena.create ~config ~size_bytes:(192 lsl 20) () in
    let alloc = Alloc.create arena in
    let cfg = { Rewind.config_1l_nfp with variant } in
    let tm = Tm.create ~cfg alloc ~root_slot in
    let bt = load_tree (Btree.Logged tm) alloc ~n_records in
    let next_fresh = ref ((n_records * 2) + 1) in
    let s = Clock.start () in
    let txn = ref (Tm.begin_txn tm) in
    for i = 0 to n_ops - 1 do
      if i > 0 && i mod 50 = 0 then begin
        Tm.commit tm !txn;
        txn := Tm.begin_txn tm
      end;
      if i land 1 = 0 then begin
        Btree.insert bt !txn (Int64.of_int !next_fresh) 1L;
        incr next_fresh
      end
      else ignore (Btree.delete bt !txn (Int64.of_int (!next_fresh - 1)))
    done;
    Tm.commit tm !txn;
    Clock.elapsed s
  in
  let latencies_us = [ 0; 1; 2; 3; 4; 5 ] in
  let rows =
    List.map
      (fun us ->
        let f = us * 1000 in
        {
          Series.x = float_of_int us;
          ys =
            [
              Series.ns_to_s (run (Log.Batch 32) f);
              Series.ns_to_s (run (Log.Batch 16) f);
              Series.ns_to_s (run (Log.Batch 8) f);
              Series.ns_to_s (run Log.Optimized f);
            ];
        })
      latencies_us
  in
  Series.make ~id:"fig10" ~title:"Memory-fence latency sensitivity"
    ~xlabel:"fence-latency (us)" ~ylabel:"duration (s)"
    ~series_names:[ "Batch-32"; "Batch-16"; "Batch-8"; "Optimized" ] rows

(* ------------------------------------------------------------------ *)
(* Figure 11: TPC-C new-order throughput                                *)
(* ------------------------------------------------------------------ *)

let fig11 ?(txns_per_terminal = 300) ?(params = Rewind_tpcc.Datagen.small) () =
  let open Rewind_tpcc in
  let run config =
    (Workload.run ~txns_per_terminal ~params ~arena_mb:384 ~config ()).Workload.tpm
    /. 1000.
  in
  [
    ("Simple NVM B+Trees", run Workload.Nvm_naive);
    ("REWIND Opt. Data Structure D.Log", run Workload.Rewind_opt_dlog);
    ("REWIND Opt. Data Structure", run Workload.Rewind_opt);
    ("REWIND Naive Data Structure", run Workload.Rewind_naive);
  ]

(* ------------------------------------------------------------------ *)
(* Ablations (DESIGN.md section 5)                                      *)
(* ------------------------------------------------------------------ *)

(* Bucket size of the Optimized log: logging cost per record. *)
let ablation_bucket_size ?(n_ops = 20_000) () =
  let rows =
    List.map
      (fun cap ->
        let cfg = { Rewind.config_1l_nfp with bucket_cap = cap } in
        let env = Workloads.make_env ~cfg () in
        let t = Workloads.rewind_time env ~n_ops ~intensity:100 in
        { Series.x = float_of_int cap; ys = [ float_of_int t /. float_of_int n_ops ] })
      [ 10; 50; 100; 500; 1000; 5000 ]
  in
  Series.make ~id:"ablation-bucket" ~title:"Optimized-log bucket size"
    ~xlabel:"bucket-capacity" ~ylabel:"ns/record" ~series_names:[ "1L-NFP" ] rows

(* Batch group size at two fence costs: the pure write-overhead side of
   Figure 10. *)
let ablation_group ?(n_ops = 20_000) () =
  let cost group fence_ns =
    let config = Config.default () in
    config.Config.fence_ns <- fence_ns;
    let arena = Arena.create ~config ~size_bytes:(128 lsl 20) () in
    let alloc = Alloc.create arena in
    let cfg = { Rewind.config_1l_nfp with variant = Log.Batch group } in
    let tm = Tm.create ~cfg alloc ~root_slot in
    let table = Ptable.create alloc ~slots:4096 in
    let s = Clock.start () in
    let txn = Tm.begin_txn tm in
    for i = 0 to n_ops - 1 do
      Ptable.set table tm txn (i mod 4096) (Int64.of_int i)
    done;
    Tm.commit tm txn;
    float_of_int (Clock.elapsed s) /. float_of_int n_ops
  in
  let rows =
    List.map
      (fun g ->
        { Series.x = float_of_int g; ys = [ cost g 100; cost g 1000 ] })
      [ 1; 2; 4; 8; 16; 32; 64 ]
  in
  Series.make ~id:"ablation-group" ~title:"Batch group size vs fence cost"
    ~xlabel:"group-size" ~ylabel:"ns/record"
    ~series_names:[ "fence=100ns"; "fence=1us" ] rows

(* Section 7 future work, measured: the lock-free log fast path vs the
   latched log under the shared-log multithreaded workload of Figure 9. *)
let ablation_lockfree ?(ops_per_thread = 5_000) ?(n_records = 2_000) () =
  let run cfg threads =
    let arena = Arena.create ~size_bytes:(384 lsl 20) () in
    let alloc = Alloc.create arena in
    let tm = Tm.create ~cfg alloc ~root_slot in
    let trees =
      Array.init threads (fun _ -> load_tree (Btree.Logged tm) alloc ~n_records)
    in
    let next_fresh =
      Array.init threads (fun t -> (n_records * 2) + 1 + (t * 10_000_000))
    in
    Sim_threads.run ~threads ~ops_per_thread (fun t _ ->
        let txn = Tm.begin_txn tm in
        Btree.insert trees.(t) txn (Int64.of_int next_fresh.(t)) 1L;
        ignore (Btree.delete trees.(t) txn (Int64.of_int next_fresh.(t)));
        next_fresh.(t) <- next_fresh.(t) + 1;
        Tm.commit tm txn)
  in
  let rows =
    List.map
      (fun threads ->
        {
          Series.x = float_of_int threads;
          ys =
            [
              Series.ns_to_s (run (Rewind.config_batch ()) threads);
              Series.ns_to_s (run (Rewind.config_lockfree ()) threads);
            ];
        })
      [ 1; 2; 4; 8 ]
  in
  Series.make ~id:"ablation-lockfree"
    ~title:"Latched vs lock-free log under shared-log multithreading"
    ~xlabel:"threads" ~ylabel:"duration (s)"
    ~series_names:[ "latched"; "lock-free" ] rows

(* Force + commit-time clearing vs no-force + checkpointing at equal
   workload: cost per transaction for varying transaction sizes. *)
let ablation_policy ?(n_txns = 2_000) () =
  let cost cfg updates =
    let env = Workloads.make_env ~cfg () in
    let s = Clock.start () in
    for t = 0 to n_txns - 1 do
      let txn = Tm.begin_txn env.Workloads.tm in
      for u = 0 to updates - 1 do
        Ptable.set env.Workloads.table env.Workloads.tm txn
          (((t * updates) + u) mod 4096)
          (Int64.of_int u)
      done;
      Tm.commit env.Workloads.tm txn;
      (* the no-force side pays its clearing at checkpoints instead *)
      if cfg.Rewind.policy = Tm.No_force && t mod 500 = 499 then
        Tm.checkpoint env.Workloads.tm
    done;
    float_of_int (Clock.elapsed s) /. float_of_int n_txns
  in
  let rows =
    List.map
      (fun updates ->
        {
          Series.x = float_of_int updates;
          ys =
            [
              cost Rewind.config_1l_fp updates;
              cost Rewind.config_1l_nfp updates;
            ];
        })
      [ 1; 5; 10; 50; 100 ]
  in
  Series.make ~id:"ablation-policy"
    ~title:"Force + commit clearing vs no-force + checkpoints"
    ~xlabel:"updates/txn" ~ylabel:"ns/txn" ~series_names:[ "1L-FP"; "1L-NFP" ] rows
