(* Benchmark-regression gate: compare a benchmark JSON artifact
   (BENCH_append.json / BENCH_recovery.json / BENCH_scaling.json) against
   a committed baseline and fail on regressions.

   Every benchmark metric in this repository is *simulated* — NVM line
   write-backs, fences, simulated nanoseconds — so the numbers are
   deterministic and machine-independent: a committed baseline is exact,
   and any drift is a real behavioural change, not noise.  The tolerance
   exists to let intentional small costs (an extra counter flush, say)
   pass while catching the order-of-magnitude mistakes: a removed fast
   path, an accidental flush-per-append, a recovery phase gone
   quadratic.

   The comparison is structural, not schema-bound: the JSON is parsed
   with the small recursive-descent reader below (the toolchain has no
   JSON dependency), every numeric leaf is flattened to a path such as

     batch8/ops=2000/ckpt=0/phases/analysis/sim_ns

   using the objects' identity fields ("name", "config", "phase", ...)
   as path segments, and only leaves whose field name marks them as a
   cost (simulated time, NVM traffic, violation counts) or a benefit
   (throughput, inline hit rate) are gated.  A gated baseline metric
   missing from the current run is itself a failure — a silently dropped
   benchmark row must not pass the gate. *)

(* -- a minimal JSON reader ---------------------------------------------- *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Parse_error of string

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some 'u' ->
              (* escaped code point: keep the raw escape — path labels
                 never contain them in practice *)
              advance ();
              for _ = 1 to 4 do
                if !pos < n then advance ()
              done;
              Buffer.add_char b '?';
              go ()
          | Some c -> advance (); Buffer.add_char b c; go ()
          | None -> fail "unterminated escape")
      | Some c ->
          advance ();
          Buffer.add_char b c;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    match float_of_string_opt text with
    | Some f -> f
    | None -> fail (Printf.sprintf "bad number %S" text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}'"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          Arr []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']'"
          in
          elements ();
          Arr (List.rev !items)
        end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "empty input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

(* -- flattening ---------------------------------------------------------- *)

(* String fields that identify an object (become path segments) and
   numeric fields that discriminate workload points (become labelled
   segments rather than gated metrics). *)
let ident_keys = [ "name"; "config"; "phase"; "series"; "id" ]
let disc_keys =
  [ "ops"; "checkpoint_every"; "threads"; "partitions"; "group"; "warehouses";
    "rate" ]

let label_of_obj fields =
  let idents =
    List.filter_map
      (fun k ->
        match List.assoc_opt k fields with Some (Str s) -> Some s | _ -> None)
      ident_keys
  in
  let discs =
    List.filter_map
      (fun k ->
        match List.assoc_opt k fields with
        | Some (Num f) -> Some (Printf.sprintf "%s=%g" k f)
        | _ -> None)
      disc_keys
  in
  String.concat "/" (idents @ discs)

let join prefix seg =
  if prefix = "" then seg else if seg = "" then prefix else prefix ^ "/" ^ seg

(* All numeric leaves as (path, value), excluding the discriminators. *)
let flatten (j : json) : (string * float) list =
  let rec go prefix j acc =
    match j with
    | Obj fields ->
        let prefix = join prefix (label_of_obj fields) in
        List.fold_left
          (fun acc (k, v) ->
            match v with
            | Num f ->
                if List.mem k disc_keys then acc else (join prefix k, f) :: acc
            | Obj _ | Arr _ -> go (join prefix k) v acc
            | Null | Bool _ | Str _ -> acc)
          acc fields
    | Arr items ->
        let _, acc =
          List.fold_left
            (fun (i, acc) item ->
              let seg =
                match item with
                | Obj fields when label_of_obj fields <> "" -> ""
                | _ -> string_of_int i
              in
              (i + 1, go (join prefix seg) item acc))
            (0, acc) items
        in
        acc
    | Num f -> (prefix, f) :: acc
    | Null | Bool _ | Str _ -> acc
  in
  List.rev (go "" j [])

(* -- gating -------------------------------------------------------------- *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let field_of path =
  match String.rindex_opt path '/' with
  | Some i -> String.sub path (i + 1) (String.length path - i - 1)
  | None -> path

(* Higher-is-better metrics; checked first so e.g. "throughput_sim" never
   falls through to the cost rule. *)
let higher_better_patterns = [ "throughput"; "ops_per_s"; "inline_hit"; "speedup" ]

(* Lower-is-better cost metrics: simulated time and NVM traffic, plus
   correctness counters that must stay at zero. *)
let lower_better_patterns =
  [
    "sim_ns"; "per_op"; "writes"; "flushes"; "fences"; "stores"; "violations";
    "torn"; "makespan";
  ]

type direction = Higher_better | Lower_better

let gate path =
  let f = field_of path in
  if List.exists (contains f) higher_better_patterns then Some Higher_better
  else if List.exists (contains f) lower_better_patterns then Some Lower_better
  else None

(* Per-metric tolerance: a baseline leaf named [<metric>_tolerance] is
   not a metric but an annotation — it overrides the global tolerance
   for its sibling [<metric>] leaf.  Lets a committed baseline mark one
   intentionally-noisier metric (say, a recovery time that scales with a
   tuned constant) without loosening the gate everywhere.  Annotation
   leaves are excluded from gating and from the missing-metric check on
   both sides: the current artifact never produces them. *)
let tolerance_suffix = "_tolerance"

let tolerance_key path =
  let ls = String.length tolerance_suffix and lp = String.length path in
  if lp > ls && String.sub path (lp - ls) ls = tolerance_suffix then
    Some (String.sub path 0 (lp - ls))
  else None

(* -- comparison ---------------------------------------------------------- *)

type regression = {
  metric : string;
  baseline : float;
  current : float;
  delta_pct : float;  (** signed; positive = worse *)
}

type outcome = {
  checked : int;  (** gated metrics compared *)
  regressions : regression list;
  missing : string list;  (** gated baseline metrics absent from current *)
  new_metrics : string list;
      (** gated current metrics absent from the baseline — ungated until
          the baseline is regenerated, so surfaced as a warning *)
  improvements : int;  (** gated metrics better by more than the tolerance *)
}

let pct_change ~baseline ~current =
  if baseline = 0. then if current = 0. then 0. else infinity
  else (current -. baseline) /. Float.abs baseline *. 100.

let compare_metrics ~tolerance baseline_json current_json =
  let base = flatten (parse baseline_json) in
  let cur = flatten (parse current_json) in
  let cur_tbl = Hashtbl.create (List.length cur) in
  List.iter (fun (k, v) -> Hashtbl.replace cur_tbl k v) cur;
  let tol_tbl = Hashtbl.create 16 in
  List.iter
    (fun (k, v) ->
      match tolerance_key k with
      | Some metric -> Hashtbl.replace tol_tbl metric v
      | None -> ())
    base;
  let base_tbl = Hashtbl.create (List.length base) in
  List.iter (fun (k, v) -> Hashtbl.replace base_tbl k v) base;
  let checked = ref 0
  and regressions = ref []
  and missing = ref []
  and improvements = ref [] in
  (* Gated metrics only the current run produces: the gate cannot judge
     them (nothing to compare against), and silently skipping them would
     let a new benchmark leg ship ungated.  They are a warning, not a
     failure — the fix is committing a regenerated baseline. *)
  let new_metrics =
    List.filter_map
      (fun (path, _) ->
        if
          tolerance_key path = None
          && gate path <> None
          && not (Hashtbl.mem base_tbl path)
        then Some path
        else None)
      cur
  in
  List.iter
    (fun (path, bv) ->
      if tolerance_key path <> None then ()
      else
      match gate path with
      | None -> ()
      | Some dir -> (
          match Hashtbl.find_opt cur_tbl path with
          | None -> missing := path :: !missing
          | Some cv ->
              incr checked;
              let tolerance =
                match Hashtbl.find_opt tol_tbl path with
                | Some t -> t
                | None -> tolerance
              in
              let worse, better =
                match dir with
                | Lower_better ->
                    if bv = 0. then (cv > 0., false)
                    else
                      ( cv > bv *. (1. +. tolerance),
                        cv < bv *. (1. -. tolerance) )
                | Higher_better ->
                    if bv = 0. then (false, cv > 0.)
                    else
                      ( cv < bv *. (1. -. tolerance),
                        cv > bv *. (1. +. tolerance) )
              in
              let delta =
                match dir with
                | Lower_better -> pct_change ~baseline:bv ~current:cv
                | Higher_better -> -.pct_change ~baseline:bv ~current:cv
              in
              if worse then
                regressions :=
                  { metric = path; baseline = bv; current = cv; delta_pct = delta }
                  :: !regressions
              else if better then improvements := path :: !improvements))
    base;
  {
    checked = !checked;
    regressions = List.rev !regressions;
    missing = List.rev !missing;
    new_metrics;
    improvements = List.length !improvements;
  }

let passed o = o.regressions = [] && o.missing = []

(* -- file-level entry point ---------------------------------------------- *)

(* CI drives the gate with file paths; every way a path can disappoint —
   missing, unreadable, truncated mid-read, not JSON — must come back as
   a diagnostic naming the file and its role, never as an exception.  The
   CLI maps [Error] to its own exit code (2), distinct from a benchmark
   regression (1), so a gate that failed to *run* is never mistaken for a
   gate that *passed judgment*. *)

let read_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match really_input_string ic (in_channel_length ic) with
          | s -> Ok s
          | exception Sys_error e -> Error e
          | exception End_of_file ->
              Error (path ^ ": truncated while reading"))

let compare_files ~tolerance ~baseline ~current =
  match read_file baseline with
  | Error e -> Error (Printf.sprintf "cannot read baseline: %s" e)
  | Ok base_s -> (
      match read_file current with
      | Error e -> Error (Printf.sprintf "cannot read current results: %s" e)
      | Ok cur_s -> (
          match compare_metrics ~tolerance base_s cur_s with
          | outcome -> Ok outcome
          | exception Parse_error e ->
              (* tell the user which of the two files is malformed *)
              let culprit =
                match parse base_s with
                | _ -> Printf.sprintf "current results %s" current
                | exception Parse_error _ ->
                    Printf.sprintf "baseline %s" baseline
              in
              Error (Printf.sprintf "%s is not valid JSON: %s" culprit e)))

let pp_outcome ppf o =
  List.iter
    (fun r ->
      Fmt.pf ppf "REGRESSION %-60s baseline %.4g  current %.4g  (%+.1f%%)@."
        r.metric r.baseline r.current r.delta_pct)
    o.regressions;
  List.iter
    (fun m -> Fmt.pf ppf "MISSING    %-60s (in baseline, not in current)@." m)
    o.missing;
  Fmt.pf ppf
    "benchdiff: %d metrics checked, %d regressed, %d missing, %d new \
     (ungated), %d improved@."
    o.checked (List.length o.regressions) (List.length o.missing)
    (List.length o.new_metrics) o.improvements
