(* Recovery-time benchmark: crash a populated manager and profile the
   reattach, per phase, across all six REWIND configurations, several log
   sizes and checkpoint intervals.

   Each row reports the per-phase profile from [Tm.last_recovery_profile]
   — simulated time plus the NVM line-write/flush/fence deltas of exactly
   that recovery (the arena's cumulative totals would double-count the
   pre-crash workload) — and the violation count of a persistency
   sanitizer attached for the duration of recovery.  Results land in
   BENCH_recovery.json and a Prometheus-style text file so CI can archive
   and alert on them. *)

open Rewind_nvm
module San = Rewind_analysis.Sanitizer

type phase_row = {
  phase : string;
  count : int;
  sim_ns : int;
  line_writes : int;
  nt_stores : int;
  flushes : int;
  fences : int;
}

type result = {
  config : string;
  ops : int;  (** logged updates before the crash *)
  checkpoint_every : int;  (** committed txns between checkpoints; 0 = never *)
  log_records : int;  (** live log records at the crash point *)
  recovery_sim_ns : int;  (** total simulated reattach time *)
  phases : phase_row list;  (** in execution order *)
  report : Rewind.Tm.recovery_report;
  sanitizer_violations : int;  (** violations collected during recovery *)
}

let configs =
  [
    ("1l-nfp", Rewind.config_1l_nfp);
    ("1l-fp", Rewind.config_1l_fp);
    ("2l-nfp", Rewind.config_2l_nfp);
    ("2l-fp", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple);
    ("batch8", Rewind.config_batch ());
  ]

let phase_rows prof =
  List.map
    (fun p ->
      {
        phase = p.Probe.name;
        count = p.Probe.count;
        sim_ns = p.Probe.sim_ns;
        line_writes = p.Probe.stats.Stats.nvm_writes;
        nt_stores = p.Probe.stats.Stats.nt_stores;
        flushes = p.Probe.stats.Stats.flushes;
        fences = p.Probe.stats.Stats.fences;
      })
    (Probe.phases prof)

(* Short committed transactions over a small working set, a checkpoint
   every [checkpoint_every] commits, two transactions left in flight at
   the crash — so recovery exercises analysis, redo (no-force), undo and
   clearing on every configuration. *)
let run_one ~ops ~checkpoint_every (name, cfg) =
  let arena = Arena.create ~size_bytes:(256 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
  let cells = Array.init 64 (fun _ -> Alloc.alloc alloc 8) in
  let txn_len = 8 in
  let committed = ref 0 in
  let txn = ref (Rewind.Tm.begin_txn tm) in
  for i = 1 to ops do
    Rewind.Tm.write tm !txn
      ~addr:cells.(i mod Array.length cells)
      ~value:(Int64.of_int (i land 0xFFFF));
    if i mod txn_len = 0 then begin
      Rewind.Tm.commit tm !txn;
      incr committed;
      if checkpoint_every > 0 && !committed mod checkpoint_every = 0 then
        Rewind.Tm.checkpoint tm;
      txn := Rewind.Tm.begin_txn tm
    end
  done;
  (* two in-flight transactions give undo real work *)
  let live1 = Rewind.Tm.begin_txn tm and live2 = Rewind.Tm.begin_txn tm in
  for i = 1 to txn_len do
    Rewind.Tm.write tm live1 ~addr:cells.(i) ~value:(Int64.of_int (-i));
    Rewind.Tm.write tm live2 ~addr:cells.(i + txn_len)
      ~value:(Int64.of_int (-i - 100))
  done;
  let log_records = Rewind.Log.length (Rewind.Tm.log tm) in
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let san = San.attach ~mode:San.Collect arena in
  let span = Clock.start () in
  let tm2 = Rewind.Tm.attach ~cfg alloc2 ~root_slot:2 in
  let recovery_sim_ns = Clock.elapsed span in
  San.detach san;
  let prof =
    match Rewind.Tm.last_recovery_profile tm2 with
    | Some p -> p
    | None -> Probe.create ()
  in
  let report =
    match Rewind.Tm.last_recovery tm2 with
    | Some r -> r
    | None ->
        {
          Rewind.Tm.records_scanned = 0;
          torn_truncated = 0;
          redo_applied = 0;
          txns_finished = 0;
          txns_undone = 0;
        }
  in
  {
    config = name;
    ops;
    checkpoint_every;
    log_records;
    recovery_sim_ns;
    phases = phase_rows prof;
    report;
    sanitizer_violations = List.length (San.violations san);
  }

let default_sizes = [ 2_000; 8_000 ]
let default_intervals = [ 0; 100 ]

let run ?(sizes = default_sizes) ?(intervals = default_intervals) () =
  List.concat_map
    (fun cfg ->
      List.concat_map
        (fun ops ->
          List.map
            (fun checkpoint_every -> run_one ~ops ~checkpoint_every cfg)
            intervals)
        sizes)
    configs

(* -- rendering ----------------------------------------------------------- *)

let pp_result ppf r =
  Fmt.pf ppf "%-8s ops=%-6d ckpt=%-4d log=%-6d recovery %a (%a)  sanitizer=%d@."
    r.config r.ops r.checkpoint_every r.log_records Clock.pp_ns
    r.recovery_sim_ns Rewind.Tm.pp_recovery_report r.report
    r.sanitizer_violations;
  List.iter
    (fun p ->
      Fmt.pf ppf "    %-14s %a  (lines %d, nt %d, flushes %d, fences %d)@."
        p.phase Clock.pp_ns p.sim_ns p.line_writes p.nt_stores p.flushes
        p.fences)
    r.phases

let to_json results =
  let b = Buffer.create 4096 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "  {\"config\": %S, \"ops\": %d, \"checkpoint_every\": %d, \
            \"log_records\": %d, \"recovery_sim_ns\": %d, \
            \"records_scanned\": %d, \"torn_truncated\": %d, \
            \"redo_applied\": %d, \"txns_finished\": %d, \"txns_undone\": \
            %d, \"sanitizer_violations\": %d, \"phases\": ["
           r.config r.ops r.checkpoint_every r.log_records r.recovery_sim_ns
           r.report.Rewind.Tm.records_scanned r.report.Rewind.Tm.torn_truncated
           r.report.Rewind.Tm.redo_applied r.report.Rewind.Tm.txns_finished
           r.report.Rewind.Tm.txns_undone r.sanitizer_violations);
      List.iteri
        (fun j p ->
          if j > 0 then Buffer.add_string b ", ";
          Buffer.add_string b
            (Printf.sprintf
               "{\"phase\": %S, \"sim_ns\": %d, \"line_writes\": %d, \
                \"nt_stores\": %d, \"flushes\": %d, \"fences\": %d}"
               p.phase p.sim_ns p.line_writes p.nt_stores p.flushes p.fences))
        r.phases;
      Buffer.add_string b "]}")
    results;
  Buffer.add_string b "\n]\n";
  Buffer.contents b

(* Prometheus text exposition: one gauge per metric, labelled by config /
   workload point / phase. *)
let to_prometheus results =
  let b = Buffer.create 4096 in
  let label r = Printf.sprintf "config=%S,ops=\"%d\",ckpt=\"%d\"" r.config r.ops r.checkpoint_every in
  Buffer.add_string b
    "# HELP rewind_recovery_sim_ns Simulated total recovery time per crash.\n\
     # TYPE rewind_recovery_sim_ns gauge\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "rewind_recovery_sim_ns{%s} %d\n" (label r)
           r.recovery_sim_ns))
    results;
  Buffer.add_string b
    "# HELP rewind_recovery_phase_sim_ns Simulated time per recovery phase.\n\
     # TYPE rewind_recovery_phase_sim_ns gauge\n";
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          Buffer.add_string b
            (Printf.sprintf "rewind_recovery_phase_sim_ns{%s,phase=%S} %d\n"
               (label r) p.phase p.sim_ns))
        r.phases)
    results;
  Buffer.add_string b
    "# HELP rewind_recovery_phase_line_writes NVM line write-backs per \
     recovery phase.\n\
     # TYPE rewind_recovery_phase_line_writes gauge\n";
  List.iter
    (fun r ->
      List.iter
        (fun p ->
          Buffer.add_string b
            (Printf.sprintf
               "rewind_recovery_phase_line_writes{%s,phase=%S} %d\n" (label r)
               p.phase p.line_writes))
        r.phases)
    results;
  Buffer.add_string b
    "# HELP rewind_recovery_sanitizer_violations Persistency-sanitizer \
     violations observed during recovery.\n\
     # TYPE rewind_recovery_sanitizer_violations gauge\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "rewind_recovery_sanitizer_violations{%s} %d\n"
           (label r) r.sanitizer_violations))
    results;
  Buffer.contents b
