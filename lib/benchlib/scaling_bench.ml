(* Partition-scaling benchmark: throughput of the partitioned log under
   concurrent writers (Section 4.7 / the Figure 9 story), isolated from
   the B+-tree.

   Fixed thread count, varying partition count.  Each fiber runs short
   write transactions against its private cells through one shared
   manager; with one partition every append/commit serialises on the
   single log latch, with [p] partitions concurrent transactions mostly
   land on distinct partitions (round-robin by transaction id) and only
   the LSN fetch — one atomic — is shared.  Simulated time, so results
   are deterministic and the committed BENCH_scaling.json baseline is
   machine-independent. *)

open Rewind_nvm

type result = {
  series : string;
      (** ["scaling"] for the partitioned batch log; ["scaling-incll"]
          for the epoch-based InCLL config (always one "partition");
          ["scaling-lfset"] / ["scaling-phash"] for the structure
          head-to-head (lock-free set vs latched transactional hash) *)
  threads : int;
  partitions : int;
  total_ops : int;  (** logged user updates across all threads *)
  makespan_sim_ns : int;  (** slowest fiber's finish time *)
  throughput_ops_per_s : float;  (** updates per simulated second *)
}

let cells_per_thread = 64

(* InCLL epoch cadence: each fiber requests a best-effort epoch advance
   ({!Rewind.Tm.checkpoint}) after every full pass over its 64 private
   cells — group durability at the same granularity the append bench
   uses. *)
let advance_every_txns = 16

let run_one ~series ~cfg ~threads ~partitions ~txns_per_thread ~writes_per_txn
    =
  let arena = Arena.create ~size_bytes:(256 lsl 20) () in
  let alloc = Alloc.create arena in
  let cfg =
    if cfg.Rewind.Tm.incll then cfg else Rewind.with_partitions partitions cfg
  in
  let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
  let cells =
    Array.init (threads * cells_per_thread) (fun _ -> Rewind.Tm.alloc_cell tm)
  in
  let makespan =
    Sim_threads.run ~threads ~ops_per_thread:txns_per_thread (fun t op ->
        let txn = Rewind.Tm.begin_txn tm in
        for i = 0 to writes_per_txn - 1 do
          let c =
            (t * cells_per_thread)
            + (((op * writes_per_txn) + i) mod cells_per_thread)
          in
          Rewind.Tm.write tm txn ~addr:cells.(c)
            ~value:(Int64.of_int (((t * 1000) + op) * 10 + i))
        done;
        Rewind.Tm.commit tm txn;
        if
          cfg.Rewind.Tm.incll
          && op mod advance_every_txns = advance_every_txns - 1
        then Rewind.Tm.checkpoint tm)
  in
  let total_ops = threads * txns_per_thread * writes_per_txn in
  {
    series;
    threads;
    partitions;
    total_ops;
    makespan_sim_ns = makespan;
    throughput_ops_per_s =
      (if makespan = 0 then 0.
       else float_of_int total_ops *. 1e9 /. float_of_int makespan);
  }

let mk_result ~series ~threads ~partitions ~total_ops ~makespan =
  {
    series;
    threads;
    partitions;
    total_ops;
    makespan_sim_ns = makespan;
    throughput_ops_per_s =
      (if makespan = 0 then 0.
       else float_of_int total_ops *. 1e9 /. float_of_int makespan);
  }

(* Structure head-to-head at the same total operation count: the durable
   lock-free set (CAS + link-and-persist, no latches, no WAL) against the
   latched transactional hash table (one put/remove per committed
   transaction).  Each fiber works a private key range, alternating
   insert and remove of the same key, so both series do identical logical
   work and the comparison isolates the persistence protocol. *)
let struct_keyspace = 512

let struct_key t op = (t * 2 * struct_keyspace) + ((op lsr 1) mod struct_keyspace)

let run_lfset ~threads ~ops_per_thread =
  let arena = Arena.create ~size_bytes:(256 lsl 20) () in
  let alloc = Alloc.create arena in
  let set = Rewind_pds.Lfset.create ~nbuckets:256 ~nthreads:threads alloc in
  let makespan =
    Sim_threads.run ~threads ~ops_per_thread (fun t op ->
        let k = struct_key t op in
        if op land 1 = 0 then ignore (Rewind_pds.Lfset.insert ~thread:t set k)
        else ignore (Rewind_pds.Lfset.remove ~thread:t set k))
  in
  mk_result ~series:"scaling-lfset" ~threads ~partitions:1
    ~total_ops:(threads * ops_per_thread) ~makespan

let run_phash ~threads ~ops_per_thread =
  let arena = Arena.create ~size_bytes:(256 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Rewind.Tm.create ~cfg:(Rewind.config_batch ()) alloc ~root_slot:2 in
  let h = Rewind_pds.Phash.create ~nbuckets:256 tm alloc in
  let makespan =
    Sim_threads.run ~threads ~ops_per_thread (fun t op ->
        let k = Int64.of_int (struct_key t op) in
        let txn = Rewind.Tm.begin_txn tm in
        (if op land 1 = 0 then Rewind_pds.Phash.put h txn k 1L
         else ignore (Rewind_pds.Phash.remove h txn k));
        Rewind.Tm.commit tm txn)
  in
  mk_result ~series:"scaling-phash" ~threads ~partitions:1
    ~total_ops:(threads * ops_per_thread) ~makespan

let default_partitions = [ 1; 2; 4; 8 ]

let run ?(threads = 8) ?(partitions = default_partitions)
    ?(txns_per_thread = 400) ?(writes_per_txn = 4) () =
  List.map
    (fun p ->
      run_one ~series:"scaling"
        ~cfg:(Rewind.config_batch ())
        ~threads ~partitions:p ~txns_per_thread ~writes_per_txn)
    partitions
  @ [
      run_one ~series:"scaling-incll" ~cfg:Rewind.config_incll ~threads
        ~partitions:1 ~txns_per_thread ~writes_per_txn;
    ]
  @
  (* Same total op count as one partition row: threads * txns * writes. *)
  let ops_per_thread = txns_per_thread * writes_per_txn in
  [ run_lfset ~threads ~ops_per_thread; run_phash ~threads ~ops_per_thread ]

let batch_series results =
  List.filter (fun r -> String.equal r.series "scaling") results

(* Throughput ratio of the largest partition count over the smallest —
   the scaling headline (the CI gate expects >= 2x at 8 threads).  Over
   the partitioned batch rows only: the InCLL row is a different
   protocol, not a partition count. *)
let speedup results =
  let batch = batch_series results in
  match (batch, List.rev batch) with
  | first :: _, last :: _ when first.throughput_ops_per_s > 0. ->
      last.throughput_ops_per_s /. first.throughput_ops_per_s
  | _ -> 0.

let pp_result ppf r =
  Fmt.pf ppf
    "%-14s threads=%d partitions=%d  %8d ops  makespan %a  %10.0f ops/sim-s"
    r.series r.threads r.partitions r.total_ops Clock.pp_ns r.makespan_sim_ns
    r.throughput_ops_per_s

let to_json results =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": %S, \"threads\": %d, \"partitions\": %d, \
            \"total_ops\": %d, \"makespan_sim_ns\": %d, \
            \"throughput_ops_per_s\": %.2f}"
           r.series r.threads r.partitions r.total_ops r.makespan_sim_ns
           r.throughput_ops_per_s))
    results;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
