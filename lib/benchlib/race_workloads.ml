(* Standard workloads run under the happens-before race detector
   ([rewind check --races]).

   Three shapes, each exercising a different synchronization story:

   - [multi_writer]: the PR-5 partition-scaling workload — concurrent
     fibers running short transactions against private cells through one
     shared manager.  The only shared state is the partitioned log (per
     partition latches), the global LSN / transaction-id atomics, and
     the allocator; all of it must be fully synchronized.

   - [concurrent_checkpoint]: writers as above plus one fiber issuing
     cache-consistent checkpoints (Section 4.6) in the middle of their
     transactions.  The checkpoint's [flush_all] writes back other
     fibers' user lines mid-transaction — race-free only because every
     such store is WAL-covered, which is exactly the exemption the
     detector implements.

   - [tpcc]: the Section 5.3 new-order driver in the naive-REWIND
     configuration, where every terminal serialises on the shared data
     lock.  (The co-designed configurations run the shared stock tree
     *unsynchronized* by design — Section 4.7 leaves user-data locking
     to the programmer — so only the naive configuration is expected to
     be race-clean.)

   - [lockfree_set]: concurrent inserts/removes on overlapping keys of
     the durable lock-free set — no latches at all.  Every pointer
     update is a [Sim_atomic] word CAS whose bracket the detector sees,
     and every link's CAS-then-flush is registered as a linked-durable
     cover, so the workload is race-clean despite fibers flushing each
     other's lines (helping, traversal-exit flushes).

   Each workload returns the detached detector; callers read
   {!Rewind_analysis.Racecheck.races} / [report] off it. *)

open Rewind_nvm
module Racecheck = Rewind_analysis.Racecheck

(* The six standard WAL configurations (same set as {!Recovery_bench})
   plus the epoch-based InCLL config, whose checkpoint fiber exercises
   the other exemption: epoch-covered lines written back by the
   advance's [flush_all] while writers are mid-transaction. *)
let configs =
  [
    ("1l-nfp", Rewind.config_1l_nfp);
    ("1l-fp", Rewind.config_1l_fp);
    ("2l-nfp", Rewind.config_2l_nfp);
    ("2l-fp", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple);
    ("batch8", Rewind.config_batch ());
    ("incll", Rewind.config_incll);
  ]

let cells_per_thread = 64

let multi_writer ?(threads = 4) ?(txns_per_thread = 60) ?(writes_per_txn = 4)
    ?(partitions = 1) ~cfg () =
  let arena = Arena.create ~size_bytes:(64 lsl 20) () in
  let rc = Racecheck.attach ~mode:Collect arena in
  Fun.protect
    ~finally:(fun () -> Racecheck.detach rc)
    (fun () ->
      let alloc = Alloc.create arena in
      let cfg =
        if cfg.Rewind.Tm.incll then cfg
        else Rewind.with_partitions partitions cfg
      in
      let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
      let cells =
        Array.init (threads * cells_per_thread) (fun _ ->
            Rewind.Tm.alloc_cell tm)
      in
      ignore
        (Sim_threads.run ~threads ~ops_per_thread:txns_per_thread (fun t op ->
             let txn = Rewind.Tm.begin_txn tm in
             for i = 0 to writes_per_txn - 1 do
               let c =
                 (t * cells_per_thread)
                 + (((op * writes_per_txn) + i) mod cells_per_thread)
               in
               Rewind.Tm.write tm txn ~addr:cells.(c)
                 ~value:(Int64.of_int ((((t * 1000) + op) * 10) + i))
             done;
             Rewind.Tm.commit tm txn));
      rc)

(* Writers plus one checkpointer: fiber [threads] checkpoints every
   [checkpoint_every] of its turns while the writers' transactions are
   in flight. *)
let concurrent_checkpoint ?(threads = 4) ?(txns_per_thread = 40)
    ?(writes_per_txn = 4) ?(checkpoint_every = 8) ?(partitions = 1) ~cfg () =
  let arena = Arena.create ~size_bytes:(64 lsl 20) () in
  let rc = Racecheck.attach ~mode:Collect arena in
  Fun.protect
    ~finally:(fun () -> Racecheck.detach rc)
    (fun () ->
      let alloc = Alloc.create arena in
      let cfg =
        if cfg.Rewind.Tm.incll then cfg
        else Rewind.with_partitions partitions cfg
      in
      let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
      let cells =
        Array.init (threads * cells_per_thread) (fun _ ->
            Rewind.Tm.alloc_cell tm)
      in
      ignore
        (Sim_threads.run ~threads:(threads + 1)
           ~ops_per_thread:txns_per_thread (fun t op ->
             if t = threads then begin
               if op mod checkpoint_every = 0 then Rewind.Tm.checkpoint tm
               else Clock.advance 2_000
             end
             else begin
               let txn = Rewind.Tm.begin_txn tm in
               for i = 0 to writes_per_txn - 1 do
                 let c =
                   (t * cells_per_thread)
                   + (((op * writes_per_txn) + i) mod cells_per_thread)
                 in
                 Rewind.Tm.write tm txn ~addr:cells.(c)
                   ~value:(Int64.of_int ((((t * 1000) + op) * 10) + i))
               done;
               Rewind.Tm.commit tm txn
             end));
      rc)

let lockfree_set ?(threads = 4) ?(ops_per_thread = 40) () =
  let arena = Arena.create ~size_bytes:(64 lsl 20) () in
  let rc = Racecheck.attach ~mode:Collect arena in
  Fun.protect
    ~finally:(fun () -> Racecheck.detach rc)
    (fun () ->
      let alloc = Alloc.create arena in
      let set =
        Rewind_pds.Lfset.create ~nbuckets:16 ~nthreads:(max 1 threads) alloc
      in
      (* Deliberately overlapping keys across fibers: contended CAS
         chains, helping, and duplicate/absent answers all occur. *)
      ignore
        (Sim_threads.run ~threads ~ops_per_thread (fun t op ->
             let k = ((t * 7) + op) mod 24 in
             if op land 1 = 0 then
               ignore (Rewind_pds.Lfset.insert ~thread:t set k)
             else ignore (Rewind_pds.Lfset.remove ~thread:t set k)));
      rc)

let tpcc ?(terminals = 4) ?(txns_per_terminal = 30) () =
  let rc = ref None in
  let r =
    Rewind_tpcc.Workload.run ~terminals ~txns_per_terminal
      ~params:Rewind_tpcc.Datagen.small ~arena_mb:128
      ~on_arena:(fun arena -> rc := Some (Racecheck.attach ~mode:Collect arena))
      ~config:Rewind_tpcc.Workload.Rewind_naive ()
  in
  ignore (r : Rewind_tpcc.Workload.result);
  match !rc with
  | Some rc ->
      Racecheck.detach rc;
      rc
  | None -> assert false

(* The five-transaction mix under the detector: terminals serialise on the
   driver's coarse data lock (race-clean by construction), while the
   home-warehouse partition pinning spreads their log appends over
   [partitions] latches — the detector checks the sharded log's internal
   synchronization under the full mix, deferred deliveries included. *)
let tpcc_mix ?(warehouses = 2) ?(terminals_per_warehouse = 2)
    ?(txns_per_terminal = 25) ?(partitions = 1) () =
  let rc = ref None in
  let r, _db =
    Rewind_tpcc.Workload.run_mix ~warehouses ~terminals_per_warehouse
      ~txns_per_terminal ~params:Rewind_tpcc.Datagen.micro ~arena_mb:128
      ~partitions
      ~on_arena:(fun arena -> rc := Some (Racecheck.attach ~mode:Collect arena))
      ()
  in
  ignore (r : Rewind_tpcc.Workload.mix_result);
  match !rc with
  | Some rc ->
      Racecheck.detach rc;
      rc
  | None -> assert false
