(* Distributed-commit harness: the canonical crash-everywhere workload
   over {!Rewind_dist.Twopc}, shared by the `rewind 2pc` CLI, the test
   suite and the committed BENCH_2pc.json baseline.

   The workload is built for checkability: transaction [j] writes the
   value [1000 + j] into a cell reserved for it on every participating
   node, so after recovery the global all-or-nothing property reads
   directly off the cells — for each [j], either every participant holds
   the value (commit) or none does (abort) — and is cross-checked
   against the outcome the coordinator reported to the client. *)

open Rewind_nvm
module San = Rewind_analysis.Sanitizer
module Enum = Rewind_analysis.Enumerator
module Twopc = Rewind_dist.Twopc

(* Which nodes transaction [j] touches: even transactions span the whole
   cluster, odd ones a pair — partial participation exercises the
   coordinator's bookkeeping of who must vote and who must ACK. *)
let participants ~nodes j =
  if nodes = 1 || j land 1 = 0 then List.init nodes Fun.id
  else List.sort_uniq compare [ 0; 1 + (j mod (nodes - 1)) ]

type world = {
  cluster : Twopc.t;
  cells : int array array;  (* cells.(node).(j): written only by txn j *)
  outcomes : Twopc.outcome option array;  (* None = never submitted *)
  chaos_at : int option;
      (* crash the coordinator right after txn j's decision is durable *)
}

let make_world ~nodes ~txns ~drop_1_in ~seed ~chaos_at () =
  let cluster =
    Twopc.create { Twopc.default_config with nodes; drop_1_in; seed }
  in
  let cells =
    Array.init nodes (fun i -> Array.init txns (fun _ -> Twopc.alloc_cell cluster i))
  in
  { cluster; cells; outcomes = Array.make txns None; chaos_at }

let run_workload w =
  let t = w.cluster in
  let nodes = Twopc.nodes t in
  for j = 0 to Array.length w.outcomes - 1 do
    (* A dead coordinator ends the run; dead participants just vote no by
       silence, so the loop keeps going around them. *)
    if Twopc.coordinator_up t then begin
      if w.chaos_at = Some j then
        Twopc.chaos_crash_coordinator_after_decision t true;
      let ops =
        List.map
          (fun i ->
            {
              Twopc.node = i;
              addr = w.cells.(i).(j);
              value = Int64.of_int (1000 + j);
            })
          (participants ~nodes j)
      in
      w.outcomes.(j) <- Some (Twopc.submit t ops)
    end
  done

(* Recover the cluster from its logs alone — sanitizers collecting on
   every arena — and verify the global outcome of every transaction. *)
let check_world w =
  let t = w.cluster in
  let sans =
    Array.map (fun a -> San.attach ~mode:San.Collect a) (Twopc.arenas t)
  in
  Twopc.recover t;
  let violations =
    Array.fold_left (fun n s -> n + List.length (San.violations s)) 0 sans
  in
  Array.iter San.detach sans;
  if violations > 0 then
    Some (Printf.sprintf "%d sanitizer violation(s) during recovery" violations)
  else if Twopc.in_doubt_total t > 0 then
    Some
      (Printf.sprintf "%d transaction(s) still in doubt after recovery"
         (Twopc.in_doubt_total t))
  else begin
    let nodes = Twopc.nodes t in
    let bad = ref None in
    Array.iteri
      (fun j outcome ->
        if !bad = None then begin
          let parts = participants ~nodes j in
          let expect = Int64.of_int (1000 + j) in
          let vals = List.map (fun i -> Twopc.read_cell t i w.cells.(i).(j)) parts in
          let total = List.length vals in
          let present = List.length (List.filter (fun v -> v = expect) vals) in
          let absent = List.length (List.filter (fun v -> v = 0L) vals) in
          let fail msg = bad := Some (Printf.sprintf "txn %d: %s" j msg) in
          if present + absent <> total then
            fail "cell holds a value no transaction wrote"
          else
            match outcome with
            | None ->
                if absent <> total then
                  fail "never submitted but writes survived recovery"
            | Some Twopc.Committed ->
                if present <> total then
                  Fmt.kstr fail
                    "reported committed but only %d/%d participants hold the \
                     writes"
                    present total
            | Some Twopc.Aborted ->
                if absent <> total then
                  Fmt.kstr fail
                    "reported aborted but %d/%d participants hold the writes"
                    present total
            | Some Twopc.Unknown ->
                if present <> total && absent <> total then
                  Fmt.kstr fail
                    "outcome unknown and recovery split it: %d/%d participants \
                     hold the writes"
                    present total
        end)
      w.outcomes;
    !bad
  end

(* -- the crash-everywhere proof ----------------------------------------- *)

type enum_report = {
  arenas_swept : int;  (* lossless sweep: arenas with workload events *)
  crash_points : int;  (* armed (arena, event) pairs, both sweeps *)
  after_decision_states : int;
      (* coordinator-crash-after-decision-before-any-COMMIT states *)
}

let pp_enum_report ppf r =
  Fmt.pf ppf
    "arenas=%d crash points=%d coordinator-after-decision states=%d: all \
     recover consistently"
    r.arenas_swept r.crash_points r.after_decision_states

(* Raises {!Enum.Node_illegal} on the first inconsistent crash state. *)
let enumerate ?(nodes = 3) ?(txns = 6) () =
  (* Every (component, persistence event) single-crash over a lossless
     run: participants and the coordinator (index 0) alike. *)
  let lossless =
    Enum.sweep_nodes
      ~make:(make_world ~nodes ~txns ~drop_1_in:0 ~seed:1 ~chaos_at:None)
      ~arenas:(fun w -> Twopc.arenas w.cluster)
      ~workload:run_workload ~check:check_world
  in
  (* The same sweep under heavy message loss: dropped votes, COMMITs and
     ACKs force the retry/timeout paths and presumed aborts while the
     crash point moves. *)
  let lossy =
    Enum.sweep_nodes
      ~make:
        (make_world ~nodes ~txns:(max 3 (txns / 2)) ~drop_1_in:3 ~seed:7
           ~chaos_at:None)
      ~arenas:(fun w -> Twopc.arenas w.cluster)
      ~workload:run_workload ~check:check_world
  in
  (* No coordinator persistence event separates the decision append from
     the COMMIT fan-out, so arm_crash cannot reach the classic worst
     case: decision durable, every participant in doubt.  The chaos hook
     plants the crash there for each transaction in turn. *)
  let after_decision = ref 0 in
  for j = 0 to txns - 1 do
    let w = make_world ~nodes ~txns ~drop_1_in:0 ~seed:1 ~chaos_at:(Some j) () in
    run_workload w;
    incr after_decision;
    match check_world w with
    | None -> ()
    | Some detail ->
        raise (Enum.Node_illegal { node = 0; event = j; detail })
  done;
  {
    arenas_swept = lossless.Enum.swept_arenas;
    crash_points = lossless.Enum.crash_points + lossy.Enum.crash_points;
    after_decision_states = !after_decision;
  }

(* -- benchmark ----------------------------------------------------------- *)

type result = {
  nodes : int;
  drop_1_in : int;
  txns : int;
  committed : int;
  aborted : int;
  unknown : int;
  retries : int;
  msgs_sent : int;
  msgs_dropped : int;
  makespan_sim_ns : int;
  throughput_commits_per_s : float;
}

let run_one ~nodes ~txns ~drop_1_in =
  let w = make_world ~nodes ~txns ~drop_1_in ~seed:11 ~chaos_at:None () in
  let span = Clock.start () in
  run_workload w;
  let makespan = Clock.elapsed span in
  let s = Twopc.stats w.cluster in
  {
    nodes;
    drop_1_in;
    txns;
    committed = s.Twopc.committed;
    aborted = s.Twopc.aborted;
    unknown = s.Twopc.unknown;
    retries = s.Twopc.retries;
    msgs_sent = s.Twopc.msgs_sent;
    msgs_dropped = s.Twopc.msgs_dropped;
    makespan_sim_ns = makespan;
    throughput_commits_per_s =
      (if makespan = 0 then 0.
       else float_of_int s.Twopc.committed *. 1e9 /. float_of_int makespan);
  }

let default_points = [ (3, 0); (5, 0); (3, 7) ]

let run ?(txns = 200) ?(points = default_points) () =
  List.map (fun (nodes, drop_1_in) -> run_one ~nodes ~txns ~drop_1_in) points

let pp_result ppf r =
  Fmt.pf ppf
    "nodes=%d drop=1/%d  %4d txns: %4d committed %3d aborted %2d unknown  \
     %4d msgs (%d dropped, %d retries)  makespan %a  %8.0f commits/sim-s"
    r.nodes r.drop_1_in r.txns r.committed r.aborted r.unknown r.msgs_sent
    r.msgs_dropped r.retries Clock.pp_ns r.makespan_sim_ns
    r.throughput_commits_per_s

let to_json results =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": \"2pc\", \"id\": \"n%d_drop%d\", \"txns\": %d, \
            \"committed\": %d, \"aborted\": %d, \"unknown\": %d, \
            \"retries\": %d, \"msgs_sent\": %d, \"msgs_dropped\": %d, \
            \"makespan_sim_ns\": %d, \"throughput_commits_per_s\": %.2f}"
           r.nodes r.drop_1_in r.txns r.committed r.aborted r.unknown r.retries
           r.msgs_sent r.msgs_dropped r.makespan_sim_ns
           r.throughput_commits_per_s))
    results;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
