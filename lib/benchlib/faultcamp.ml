(* Deterministic fault-injection campaign (the "faultcamp").

   A campaign enumerates trials over the six log configurations.  Each
   trial runs a fixed mixed workload (commits, rollbacks, a checkpoint)
   against an arena with a seeded {!Rewind_nvm.Fault_model} attached,
   crashes it at a chosen persistence event, recovers, and checks the
   recovery invariants.  Every parameter of a trial is recorded in the
   {!trial} record, so any verdict is reproducible from the one line the
   campaign prints on failure — independently of the rest of the
   schedule.

   Determinism: the schedule is a pure function of the base seed (one
   [Random.State] drives it), and within a trial the eviction mask is a
   pure function of the trial's fault seed and the workload (see
   {!Rewind_nvm.Fault_model}).  Running the same campaign twice yields
   identical schedules and verdicts. *)

open Rewind_nvm
open Rewind

let root_slot = 2

let configs =
  [
    ("1L-NFP", Rewind.config_1l_nfp);
    ("1L-FP", Rewind.config_1l_fp);
    ("2L-NFP", Rewind.config_2l_nfp);
    ("2L-FP", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple);
    ("batch8", Rewind.config_batch ());
  ]

let config_names = List.map fst configs
let find_config name = List.assoc_opt name configs

(* ------------------------------------------------------------------ *)
(* The workload                                                        *)
(* ------------------------------------------------------------------ *)

(* Mirrors the torture-test script: 12 transactions over 8 cells, every
   third rolled back, a checkpoint midway.  Values encode their writer
   as [tno * 100 + i], so a recovered cell tells us which transaction
   produced it. *)
let n_cells = 8
let n_txns = 12

let run_script tm cells =
  for tno = 1 to n_txns do
    let txn = Tm.begin_txn tm in
    for i = 0 to 2 do
      let cell = (tno + i) mod n_cells in
      Tm.write tm txn ~addr:cells.(cell) ~value:(Int64.of_int ((tno * 100) + i + 1))
    done;
    if tno mod 3 <> 0 then Tm.commit tm txn else Tm.rollback tm txn;
    if tno = 6 then Tm.checkpoint tm
  done

(* Persistence events the uncrashed workload generates, per config.
   Spontaneous evictions never tick the crash countdown, so this is
   independent of the fault seed. *)
let shadow_events =
  let tbl = Hashtbl.create 8 in
  fun cfg_name ->
    match Hashtbl.find_opt tbl cfg_name with
    | Some n -> n
    | None ->
        let cfg = List.assoc cfg_name configs in
        let arena = Arena.create ~size_bytes:(16 lsl 20) () in
        let alloc = Alloc.create arena in
        let tm = Tm.create ~cfg alloc ~root_slot in
        let cells = Array.init n_cells (fun _ -> Alloc.alloc alloc 8) in
        let s0 =
          (Arena.stats arena).Stats.nt_stores + (Arena.stats arena).Stats.flushes
        in
        run_script tm cells;
        let n =
          (Arena.stats arena).Stats.nt_stores
          + (Arena.stats arena).Stats.flushes - s0
        in
        Hashtbl.replace tbl cfg_name n;
        n

(* ------------------------------------------------------------------ *)
(* Trials                                                              *)
(* ------------------------------------------------------------------ *)

type trial = {
  config_name : string;
  fault_seed : int;  (* seeds the fault model: eviction + crash mask *)
  crash_after : int; (* persistence events before the crash fires *)
  eviction_ppm : int;
  survival_ppm : int;
}

type verdict = Pass | Fail of string

let pp_trial ppf t =
  Fmt.pf ppf "--config %s --seed %d --crash %d --evict-ppm %d --survive-ppm %d"
    t.config_name t.fault_seed t.crash_after t.eviction_ppm t.survival_ppm

let pp_verdict ppf = function
  | Pass -> Fmt.string ppf "pass"
  | Fail m -> Fmt.pf ppf "FAIL: %s" m

(* Run one trial; any escaped exception is a failure (recovery must
   truncate torn state, never raise). *)
let run_trial t =
  match find_config t.config_name with
  | None -> Fail (Fmt.str "unknown config %S" t.config_name)
  | Some cfg -> (
      try
        let arena = Arena.create ~size_bytes:(16 lsl 20) () in
        let fm =
          Fault_model.create ~eviction_ppm:t.eviction_ppm
            ~crash_survival_ppm:t.survival_ppm ~seed:t.fault_seed ()
        in
        Arena.set_fault_model arena (Some fm);
        let alloc = Alloc.create arena in
        let tm = Tm.create ~cfg alloc ~root_slot in
        let cells = Array.init n_cells (fun _ -> Alloc.alloc alloc 8) in
        Arena.arm_crash arena ~after:t.crash_after;
        (try
           run_script tm cells;
           Arena.disarm_crash arena
         with Arena.Crash -> ());
        if not (Arena.crashed arena) then Pass
        else begin
          let alloc2 = Alloc.recover arena in
          let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
          if Log.length (Tm.log tm2) <> 0 then
            Fail "log not cleared after recovery"
          else begin
            (* Every recovered cell must be 0 or a value written by a
               transaction we did not roll back: rolled-back and
               crash-interrupted transactions leave no trace. *)
            let bad = ref None in
            Array.iteri
              (fun idx c ->
                let v = Int64.to_int (Arena.read arena c) in
                if v <> 0 then begin
                  let tno = v / 100 in
                  if tno mod 3 = 0 then
                    bad :=
                      Some
                        (Fmt.str "cell %d holds %d from rolled-back txn %d"
                           idx v tno)
                end)
              cells;
            match !bad with
            | Some m -> Fail m
            | None ->
                (* Recovery must be idempotent: a second attach finds a
                   clean log and changes nothing. *)
                let snapshot = Array.map (Arena.read arena) cells in
                let tm3 = Tm.attach ~cfg (Alloc.recover arena) ~root_slot in
                if Log.length (Tm.log tm3) <> 0 then
                  Fail "second recovery left a non-empty log"
                else if
                  Array.exists2
                    (fun before c -> Arena.read arena c <> before)
                    snapshot cells
                then Fail "second recovery changed user data"
                else Pass
          end
        end
      with
      | Arena.Crash -> Fail "crash escaped recovery"
      | e -> Fail (Fmt.str "exception: %s" (Printexc.to_string e)))

(* Shrink a failing trial to a smaller reproducer: drop spontaneous
   evictions if the failure survives without them, then find a smaller
   failing crash point by bisection.  Bounded work (~2 log2 trials). *)
let minimize t =
  let fails t = match run_trial t with Fail _ -> true | Pass -> false in
  let t =
    if t.eviction_ppm > 0 && fails { t with eviction_ppm = 0 } then
      { t with eviction_ppm = 0 }
    else t
  in
  let lo = ref 0 and hi = ref t.crash_after in
  (* invariant: [hi] fails; look for an earlier failing point *)
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if fails { t with crash_after = mid } then hi := mid else lo := mid
  done;
  { t with crash_after = !hi }

(* ------------------------------------------------------------------ *)
(* Schedules                                                           *)
(* ------------------------------------------------------------------ *)

let eviction_levels = [| 0; 20_000; 100_000 |]
let survival_levels = [| 0; 250_000; 500_000; 750_000; 1_000_000 |]

(* [seeds] trials per configuration, derived from [base_seed] alone.
   Crash points sweep the whole event range (plus a margin past the end,
   where the crash never fires and the trial degenerates to an uncrashed
   run). *)
let schedule ?(config_filter = None) ~base_seed ~seeds () =
  let rng = Random.State.make [| base_seed; 0xFA17; base_seed lxor 0x2545F491 |] in
  let selected =
    match config_filter with
    | None -> configs
    | Some name -> List.filter (fun (n, _) -> n = name) configs
  in
  List.concat_map
    (fun (name, _) ->
      let events = shadow_events name in
      List.init seeds (fun _ ->
          {
            config_name = name;
            fault_seed = Random.State.bits rng lxor (Random.State.bits rng lsl 15);
            crash_after = Random.State.int rng (events + 8);
            eviction_ppm =
              eviction_levels.(Random.State.int rng (Array.length eviction_levels));
            survival_ppm =
              survival_levels.(Random.State.int rng (Array.length survival_levels));
          }))
    selected

(* ------------------------------------------------------------------ *)
(* Campaign driver                                                     *)
(* ------------------------------------------------------------------ *)

type result = { trials : int; failures : (trial * string) list }

let run_campaign ?(config_filter = None) ?(quiet = false) ~base_seed ~seeds () =
  let sched = schedule ~config_filter ~base_seed ~seeds () in
  let failures = ref [] in
  let per_config = Hashtbl.create 8 in
  List.iter
    (fun t ->
      let n, nf =
        Option.value ~default:(0, 0) (Hashtbl.find_opt per_config t.config_name)
      in
      let failed =
        match run_trial t with
        | Pass -> 0
        | Fail msg ->
            let small = minimize t in
            failures := (small, msg) :: !failures;
            if not quiet then
              Fmt.epr "REPRO: faultcamp %a  # %s@." pp_trial small msg;
            1
      in
      Hashtbl.replace per_config t.config_name (n + 1, nf + failed))
    sched;
  if not quiet then
    List.iter
      (fun (name, _) ->
        match Hashtbl.find_opt per_config name with
        | Some (n, nf) -> Fmt.pr "%-8s %4d trials  %d failures@." name n nf
        | None -> ())
      configs;
  { trials = List.length sched; failures = List.rev !failures }

(* Compact digest of a schedule, for eyeballing run-to-run determinism
   from the CLI. *)
let schedule_digest sched =
  List.fold_left
    (fun acc t ->
      let s =
        Fmt.str "%s:%d:%d:%d:%d" t.config_name t.fault_seed t.crash_after
          t.eviction_ppm t.survival_ppm
      in
      Crc32.digest (Fmt.str "%08x%s" acc s))
    0 sched
