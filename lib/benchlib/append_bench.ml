(* Append-path cost comparison: the inline compact-record fast path
   against the full-record path, on the same bucketed log variants.

   The workload mirrors fig3-left's logging-overhead shape — word-sized
   updates in short transactions, all inline-eligible — so the per-append
   NVM traffic difference is exactly what the inline format claims to
   save: the Optimized full-record path pays a record-line write-back
   plus the ordered slot store per append; the inline path pays a single
   slot-line write-back.  Recovery is measured by crashing with one
   transaction in flight and timing [Tm.attach] over the populated log.

   Results also land in BENCH_append.json (via {!to_json}) so CI can
   archive machine-readable numbers. *)

open Rewind_nvm

type result = {
  name : string;  (** variant plus [inline] or [full] *)
  ops : int;  (** logged updates *)
  sim_ns_per_op : float;  (** simulated time per update *)
  line_writes_per_op : float;  (** NVM line write-backs per update *)
  fences_per_op : float;  (** persistence fences per update *)
  inline_hit : float;  (** fraction of appends encoded inline *)
  recovery_sim_ns : int;  (** simulated [Tm.attach] time post-crash *)
}

(* [None] = the WAL-free InCLL config; [Some inline] = a WAL variant with
   the inline fast path forced on or off. *)
let scenarios =
  [
    ( "optimized-inline",
      { Rewind.Tm.default_config with variant = Rewind.Log.Optimized },
      Some true );
    ( "optimized-full",
      { Rewind.Tm.default_config with variant = Rewind.Log.Optimized },
      Some false );
    ( "batch8-inline",
      { Rewind.Tm.default_config with variant = Rewind.Log.Batch 8 },
      Some true );
    ( "batch8-full",
      { Rewind.Tm.default_config with variant = Rewind.Log.Batch 8 },
      Some false );
    ("incll", Rewind.config_incll, None);
  ]

(* InCLL epoch cadence: one advance per full pass over the 64 cells, so
   each cell is captured exactly once per epoch — the protocol's designed
   steady state of ~1 NVM line write per update (64 cell lines + the
   epoch counter per 64 ops). *)
let advance_every = 64

let run_one ~n_ops (name, cfg, inline) =
  let arena = Arena.create ~size_bytes:(64 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
  (match inline with
  | Some flag -> Rewind.Log.set_inline (Rewind.Tm.log tm) flag
  | None -> ());
  let cells = Array.init 64 (fun _ -> Rewind.Tm.alloc_cell tm) in
  let txn_len = 8 in
  let before = Stats.snapshot (Arena.stats arena) in
  let span = Clock.start () in
  let txn = ref (Rewind.Tm.begin_txn tm) in
  for i = 1 to n_ops do
    Rewind.Tm.write tm !txn
      ~addr:cells.(i mod Array.length cells)
      ~value:(Int64.of_int (i land 0xFFF));
    if i mod txn_len = 0 then begin
      Rewind.Tm.commit tm !txn;
      if cfg.Rewind.Tm.incll && i mod advance_every = 0 then
        Rewind.Tm.advance_epoch tm;
      txn := Rewind.Tm.begin_txn tm
    end
  done;
  let elapsed = Clock.elapsed span in
  let d = Stats.diff (Arena.stats arena) before in
  let logged = d.Stats.inline_records + d.Stats.full_records in
  let per x = float_of_int x /. float_of_int n_ops in
  (* populate the log with one in-flight transaction, then crash *)
  let open_txn = Rewind.Tm.begin_txn tm in
  for i = 1 to txn_len do
    Rewind.Tm.write tm open_txn
      ~addr:cells.(i mod Array.length cells)
      ~value:(Int64.of_int i)
  done;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let rspan = Clock.start () in
  let _tm2 = Rewind.Tm.attach ~cfg alloc2 ~root_slot:2 in
  let recovery_sim_ns = Clock.elapsed rspan in
  {
    name;
    ops = n_ops;
    sim_ns_per_op = per elapsed;
    line_writes_per_op = per d.Stats.nvm_writes;
    fences_per_op = per d.Stats.fences;
    inline_hit =
      (if logged = 0 then 0.
       else float_of_int d.Stats.inline_records /. float_of_int logged);
    recovery_sim_ns;
  }

let run ?(n_ops = 20_000) () = List.map (run_one ~n_ops) scenarios

let pp_result ppf r =
  Fmt.pf ppf
    "%-18s %8.0f sim-ns/op  %5.2f line-writes/op  %5.2f fences/op  inline \
     %3.0f%%  recovery %a"
    r.name r.sim_ns_per_op r.line_writes_per_op r.fences_per_op
    (100. *. r.inline_hit) Clock.pp_ns r.recovery_sim_ns

let to_json results =
  let b = Buffer.create 1024 in
  Buffer.add_string b "[\n";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b
        (Printf.sprintf
           "  {\"name\": %S, \"ops\": %d, \"sim_ns_per_op\": %.2f, \
            \"nvm_line_writes_per_op\": %.4f, \"fences_per_op\": %.4f, \
            \"inline_hit\": %.4f, \"recovery_sim_ns\": %d}"
           r.name r.ops r.sim_ns_per_op r.line_writes_per_op r.fences_per_op
           r.inline_hit r.recovery_sim_ns))
    results;
  Buffer.add_string b "\n]\n";
  Buffer.contents b
