(* Open-loop TPC-C at production scale: the five-transaction mix arriving
   at a fixed rate on the simulated clock, independent of service
   capacity — so queueing delay is visible as latency instead of
   disappearing into a closed loop's back-pressure.

   The model: arrivals are a Poisson process (exponential inter-arrival
   times at [rate] transactions per simulated second).  Each warehouse
   has [terminals_per_warehouse] servers — the open-loop analogue of the
   per-warehouse data locks.  A transaction is dispatched to its home
   warehouse; if every terminal there is busy at its arrival time, it
   backs off (bounded exponential, counted as a conflict retry, same
   constants as the closed-loop driver) and reprobes, eventually queueing
   on the earliest-free terminal.  Transaction bodies execute against one
   shared REWIND manager whose log is partitioned [partitions] ways, with
   every transaction pinned to its home warehouse's partition — the
   home-warehouse log sharding this benchmark exists to measure.

   Latency of one transaction = completion - arrival, so it includes
   backoff and queueing.  Deferred deliveries run on the enqueuing
   terminal right after the triggering transaction, per the spec's
   deferred-execution semantics: they occupy the terminal (adding to
   later arrivals' queueing) but are not part of the triggering
   transaction's response time.  Latencies are charged to a {!Probe}
   phase, and the reported p50/p99/p999 are lower bounds of its log2
   histogram buckets — deterministic, machine-independent numbers a
   committed baseline can gate exactly. *)

open Rewind_nvm
open Rewind_tpcc

type result = {
  warehouses : int;
  partitions : int;
  rate : float;  (** arrivals per simulated second *)
  arrivals : int;
  committed : int;
  aborted : int;  (** the spec's 1 % invalid-item rollbacks *)
  retried : int;  (** arrivals that found every home terminal busy *)
  new_orders : int;  (** committed new-orders: the tpmC numerator *)
  deliveries : int;  (** deferred delivery transactions executed *)
  makespan_sim_ns : int;  (** last terminal's completion time *)
  tpmc_throughput : float;  (** committed new-orders per simulated minute *)
  latency_p50_sim_ns : int;
  latency_p99_sim_ns : int;
  latency_p999_sim_ns : int;
  consistent : bool;  (** {!Workload.check_mix_consistency} at the end *)
}

(* Same conflict constants as the closed-loop driver: a busy home
   warehouse is a conflict, backed off exponentially in simulated time. *)
let max_conflict_retries = 5
let conflict_backoff_ns = 2_000

let percentile phase q =
  let total = phase.Probe.count in
  if total = 0 then 0
  else begin
    let need = int_of_float (ceil (q *. float_of_int total)) in
    let need = max 1 (min total need) in
    let rec scan acc = function
      | [] -> 0
      | (lower, n) :: rest ->
          if acc + n >= need then lower else scan (acc + n) rest
    in
    scan 0 (Probe.hist_buckets phase)
  end

(* Exponential inter-arrival gap at [rate] arrivals per simulated second,
   rounded to whole simulated nanoseconds (at least 1). *)
let exp_gap_ns rng rate =
  let u = Rng.float rng in
  let u = if u < 1e-12 then 1e-12 else u in
  max 1 (int_of_float (-.Float.log u /. rate *. 1e9))

let run ?(warehouses = 4) ?(partitions = 4) ?(rate = 10_000.)
    ?(arrivals = 2_000) ?(terminals_per_warehouse = 2)
    ?(params = Datagen.small) ?(arena_mb = 256) ?(seed = 7) () =
  if rate <= 0. then invalid_arg "Tpcc_bench.run: rate must be positive";
  let arena = Arena.create ~size_bytes:(arena_mb lsl 20) () in
  let alloc = Alloc.create arena in
  let db =
    Schema.create ~layout:Schema.Optimized ~warehouses
      Rewind_pds.Btree.Direct_nvm alloc
  in
  Datagen.load ~params db 0;
  let cfg = Rewind.with_partitions partitions Workload.tm_config in
  let tm = Rewind.Tm.create ~cfg alloc ~root_slot:Workload.shared_root in
  let db = Schema.rebind db (Rewind_pds.Btree.Logged tm) in
  let queue = Delivery.queue_create () in
  let rng = Rng.create seed in
  let probe = Probe.create () in
  (* free_at.(w-1).(i): simulated time terminal [i] of warehouse [w]
     finishes its current work. *)
  let free_at = Array.make_matrix warehouses terminals_per_warehouse 0 in
  let committed = ref 0 and aborted = ref 0 and retried = ref 0 in
  let new_orders = ref 0 and deliveries = ref 0 in
  let makespan = ref 0 in
  let arrival = ref 0 in
  for _ = 1 to arrivals do
    arrival := !arrival + exp_gap_ns rng rate;
    let warehouse = Rng.int rng 1 warehouses in
    let home = (warehouse - 1) mod partitions in
    let rq =
      Mix.gen ~warehouse ~customers:params.Datagen.customers_per_district rng
        ~items:params.Datagen.items
    in
    let servers = free_at.(warehouse - 1) in
    let earliest () =
      let best = ref 0 in
      Array.iteri (fun i t -> if t < servers.(!best) then best := i) servers;
      !best
    in
    (* Reprobe with bounded exponential backoff while every home terminal
       is busy; after the retry budget, queue on the earliest-free one. *)
    let rec dispatch probe_t attempt =
      let s = earliest () in
      if servers.(s) <= probe_t then (s, probe_t)
      else if attempt < max_conflict_retries then begin
        incr retried;
        dispatch (probe_t + (conflict_backoff_ns lsl min attempt 4)) (attempt + 1)
      end
      else (s, servers.(s))
    in
    let server, start = dispatch !arrival 0 in
    let span = Clock.start () in
    (match Mix.execute ~home db tm ~queue rq with
    | Mix.Committed ->
        incr committed;
        if Mix.is_new_order rq then incr new_orders
    | Mix.Aborted -> incr aborted);
    let service = Clock.elapsed span in
    let completion = start + service in
    Probe.charge probe "latency"
      ~sim_ns:(completion - !arrival)
      ~stats:(Stats.create ());
    (* Deferred deliveries occupy the terminal after the response. *)
    let span = Clock.start () in
    deliveries := !deliveries + Mix.drain_deliveries ~home db tm queue;
    let drained = Clock.elapsed span in
    servers.(server) <- completion + drained;
    if servers.(server) > !makespan then makespan := servers.(server)
  done;
  let lat =
    match Probe.find probe "latency" with
    | Some p -> p
    | None -> assert false (* arrivals >= 1 charges the phase *)
  in
  let minutes = float_of_int !makespan /. 60e9 in
  {
    warehouses;
    partitions;
    rate;
    arrivals;
    committed = !committed;
    aborted = !aborted;
    retried = !retried;
    new_orders = !new_orders;
    deliveries = !deliveries;
    makespan_sim_ns = !makespan;
    tpmc_throughput =
      (if minutes > 0. then float_of_int !new_orders /. minutes else 0.);
    latency_p50_sim_ns = percentile lat 0.50;
    latency_p99_sim_ns = percentile lat 0.99;
    latency_p999_sim_ns = percentile lat 0.999;
    consistent = Workload.check_mix_consistency db;
  }

let pp ppf r =
  Fmt.pf ppf
    "@[<v>open-loop TPC-C: %d warehouses, %d log partitions, %.0f txn/s \
     offered@,\
     arrivals   %6d  (%d committed, %d aborted, %d conflict retries)@,\
     deliveries %6d deferred transactions executed@,\
     latency    p50 %a   p99 %a   p999 %a@,\
     makespan   %a@,\
     tpmC       %.0f committed new-orders per simulated minute@]" r.warehouses
    r.partitions r.rate r.arrivals r.committed r.aborted r.retried r.deliveries
    Clock.pp_ns r.latency_p50_sim_ns Clock.pp_ns r.latency_p99_sim_ns
    Clock.pp_ns r.latency_p999_sim_ns Clock.pp_ns r.makespan_sim_ns
    r.tpmc_throughput

(* One row per run; "name" identifies the series, "warehouses" /
   "partitions" / "rate" are benchdiff discriminators (path labels, not
   gated metrics).  The gated leaves are the tpmC throughput, the three
   latency percentiles and the makespan. *)
let to_json r =
  Printf.sprintf
    "[\n\
    \  {\"name\": \"tpcc-open\", \"warehouses\": %d, \"partitions\": %d, \
     \"rate\": %g,\n\
    \   \"arrivals\": %d, \"committed\": %d, \"aborted\": %d, \"retried\": \
     %d,\n\
    \   \"new_orders\": %d, \"deliveries\": %d,\n\
    \   \"tpmc_throughput\": %.2f,\n\
    \   \"latency_p50_sim_ns\": %d, \"latency_p99_sim_ns\": %d, \
     \"latency_p999_sim_ns\": %d,\n\
    \   \"makespan_sim_ns\": %d}\n\
     ]\n"
    r.warehouses r.partitions r.rate r.arrivals r.committed r.aborted r.retried
    r.new_orders r.deliveries r.tpmc_throughput r.latency_p50_sim_ns
    r.latency_p99_sim_ns r.latency_p999_sim_ns r.makespan_sim_ns
