(** Durable lock-free hash set with detectable recovery.

    A fixed bucket directory over Harris-style sorted linked lists: no
    latches, no WAL.  Pointer updates are single-word CASes through
    {!Rewind_nvm.Sim_atomic}, each flushed inside the same atomic
    bracket (link-and-persist); node payloads are initialised with
    non-temporal stores before the publishing CAS, so the durable image
    never holds a link to an uninitialised node.  An operation fences and
    then durably records completion in its thread's announcement cell,
    giving durable linearizability plus detectability: after a crash,
    {!op_took_effect} decides from the durable image alone whether the
    in-flight operation took effect.

    Recovery ({!attach}) is a pure node scan — unlink marked nodes,
    fence — with no log replay. *)

type t

exception Mismatch of string
(** Raised by {!attach} when [base] does not hold a set created by
    {!create} (zero or foreign header word). *)

val create : ?nbuckets:int -> ?nthreads:int -> Rewind_nvm.Alloc.t -> t
(** Allocate a fresh set: a 64-byte header line (magic, bucket and
    thread counts), [nbuckets] bucket words, and one 64-byte durable
    announcement cell per thread.  Defaults: 64 buckets, 8 threads. *)

val attach : Rewind_nvm.Alloc.t -> base:int -> t
(** Reattach (and recover) the set whose header line is at [base].
    Validates the durable header — bucket/thread counts are read from
    it, never trusted from the caller — then scans every chain and
    physically unlinks marked nodes.  Raises {!Mismatch} on a zero or
    bad-magic header. *)

val base : t -> int
(** Durable header offset; pass to {!attach} after a crash. *)

val nbuckets : t -> int
val nthreads : t -> int

val insert : ?thread:int -> t -> int -> bool
(** [insert ~thread t k] adds [k]; false if already present.  [thread]
    (default 0) selects the announcement cell and must be unique per
    concurrent caller. *)

val remove : ?thread:int -> t -> int -> bool
(** [remove ~thread t k] logically deletes [k] (marks its node's next
    word — the durability point) and best-effort unlinks it; false if
    absent. *)

val mem : t -> int -> bool
(** Read-only lookup.  No helping; marked nodes are skipped.  On exit
    the traversal's dependency set (last link followed, decisive node's
    next word) is flushed and fenced (NVTraverse). *)

val iter : t -> (int -> unit) -> unit
(** Quiescent iteration (tests / post-recovery checks). *)

val bindings : t -> int list
(** Sorted member list (quiescent callers). *)

val size : t -> int

(** {1 Detectability} *)

type status = In_progress | Done of bool

type announcement = {
  an_seq : int;  (** per-thread sequence number, starting at 1 *)
  an_op : [ `Insert | `Remove ];
  an_key : int;
  an_status : status;
  an_node : int;  (** target node address; 0 before the op chose one *)
}

val announcement : t -> thread:int -> announcement option
(** The thread's durable announcement cell, [None] if it never announced
    an operation. *)

val op_took_effect : t -> thread:int -> bool option
(** Post-crash effect oracle: whether the thread's announced operation
    took effect in the durable image.  [Done r] announcements answer
    [r]; an in-progress insert took effect iff its node is reachable (or
    already marked); an in-progress remove iff its victim's next word
    carries the mark bit.  [None] if the thread never announced. *)
