(* A durable lock-free hash set — the raw-speed contender for REWIND's
   latched structures (Zuriel et al. style, with NVTraverse's
   flush-on-traversal-exit and a detectable-recovery announcement layer).

   Shape: a fixed bucket directory over Harris-style sorted linked lists.
   A node is logically deleted by setting the mark bit (LSB) of its own
   next word; physical unlinking is a separate best-effort CAS that any
   traversal may help complete.  There are no latches and no WAL — every
   pointer update is a single-word CAS through {!Sim_atomic}, so the race
   detector sees each link's synchronisation chain.

   Durability protocol (link-and-persist + nt-init):

   - A node's payload (key, next) is initialised with non-temporal
     stores *before* the CAS that publishes it, so the durable image can
     never contain a link to an uninitialised node: if the link's
     write-back survived a crash, the nt stores — earlier persistence
     events — certainly did.
   - Every link CAS uses [Sim_atomic.compare_and_set_word ~persist:true],
     which flushes the CAS'd line inside the same atomic bracket
     (link-and-persist).  A successful operation fences once and only
     then exposes its result, so a completed op's links are durable —
     durable linearizability, announced to the sanitizer via
     {!Pmcheck.linked_exposed}.
   - Read-only traversals flush their dependency set on exit
     (NVTraverse): the last link followed and the found node's next
     word, then fence.

   Detectability: each thread owns one durable 64-byte announcement cell
   (seq, op, key, status, node).  The cell is persisted *before* the op
   mutates anything, and the target node's address is nt-written into it
   before the decisive CAS — so after a crash, {!op_took_effect} can tell
   from the durable image alone whether the in-flight op's CAS landed:
   an insert took effect iff its node is reachable (or was already
   marked by a later remove); a remove took effect iff its victim's next
   word carries the mark bit.

   Recovery is a pure node scan: walk every bucket, physically unlink
   any marked node, fence.  No log replay — the structure's durable
   state *is* its recovered state. *)

open Rewind_nvm

let node_bytes = 16
let o_key = 0
let o_next = 8

(* Announcement cell field offsets (one 64 B line per thread). *)
let a_seq = 0
let a_op = 8
let a_key = 16
let a_status = 24
let a_node = 32

let op_insert = 1
let op_remove = 2

let magic = 0x4C (* 'L' *)

exception Mismatch of string

type t = {
  arena : Arena.t;
  alloc : Alloc.t;
  base : int; (* header line *)
  nbuckets : int;
  nthreads : int;
  seqs : int array; (* next announcement sequence number, per thread *)
}

let round64 n = (n + 63) land lnot 63
let buckets_off t = t.base + 64
let cell t thread = t.base + 64 + round64 (8 * t.nbuckets) + (64 * thread)

let bucket_of t k =
  let h = (k * 2654435761) land max_int in
  buckets_off t + (8 * (h mod t.nbuckets))

(* -- mark-bit plumbing --------------------------------------------------- *)

let is_marked w = Int64.logand w 1L = 1L
let addr_of w = Int64.to_int (Int64.logand w (Int64.lognot 1L))
let of_addr a = Int64.of_int a
let marked w = Int64.logor w 1L
let key_of t n = Int64.to_int (Arena.read t.arena (n + o_key))

(* -- lifecycle ----------------------------------------------------------- *)

let header_word ~nbuckets ~nthreads =
  Int64.of_int (magic lor (nbuckets lsl 8) lor (nthreads lsl 32))

let create ?(nbuckets = 64) ?(nthreads = 8) alloc =
  if nbuckets < 1 || nbuckets > 1 lsl 20 then invalid_arg "Lfset.create";
  if nthreads < 1 || nthreads > 256 then invalid_arg "Lfset.create";
  let arena = Alloc.arena alloc in
  let size = 64 + round64 (8 * nbuckets) + (64 * nthreads) in
  let base = Alloc.alloc_fresh ~align:64 alloc size in
  (* The bucket directory and announcement cells rely on alloc_fresh's
     durably-zero guarantee; only the header needs an explicit store. *)
  Arena.nt_write arena base (header_word ~nbuckets ~nthreads);
  Arena.fence arena;
  { arena; alloc; base; nbuckets; nthreads; seqs = Array.make nthreads 0 }

(* Post-crash scan: physically unlink every marked node, persist the
   repaired links, fence once.  Marked-but-linked is the only transient
   state the protocol can leave behind — a completed remove whose
   best-effort unlink CAS (or its write-back) did not survive. *)
let recover_chains t =
  Pmcheck.recovery_begin t.arena;
  for b = 0 to t.nbuckets - 1 do
    let head = buckets_off t + (8 * b) in
    let rec sweep prev =
      let curr = addr_of (Arena.read t.arena prev) in
      if curr <> 0 then begin
        let nw = Arena.read t.arena (curr + o_next) in
        if is_marked nw then begin
          Arena.write t.arena prev (of_addr (addr_of nw));
          Arena.flush_line t.arena prev;
          sweep prev
        end
        else sweep (curr + o_next)
      end
    in
    sweep head
  done;
  Arena.fence t.arena;
  Pmcheck.recovery_end t.arena

let attach alloc ~base =
  let arena = Alloc.arena alloc in
  let hdr = Int64.to_int (Arena.read arena base) in
  if hdr = 0 then
    raise
      (Mismatch
         (Fmt.str "Lfset.attach: no set header at offset %d (never created?)"
            base));
  if hdr land 0xff <> magic then
    raise
      (Mismatch
         (Fmt.str "Lfset.attach: bad magic %#x at offset %d (expected %#x)"
            (hdr land 0xff) base magic));
  let nbuckets = (hdr lsr 8) land 0xffffff in
  let nthreads = (hdr lsr 32) land 0xffff in
  let t = { arena; alloc; base; nbuckets; nthreads; seqs = Array.make nthreads 0 } in
  (* Resume each thread's announcement sequence past the durable one. *)
  for i = 0 to nthreads - 1 do
    t.seqs.(i) <- Int64.to_int (Arena.read arena (cell t i + a_seq))
  done;
  recover_chains t;
  t

let base t = t.base
let nbuckets t = t.nbuckets
let nthreads t = t.nthreads

(* -- traversal ----------------------------------------------------------- *)

(* [search t k] returns [(prev, curr)]: [curr] is 0 or the first unmarked
   node with key >= [k], and [prev] is the link word that points at it.
   Marked nodes encountered on the way are helped out of the list with an
   annotated link-and-persist CAS; a failed help restarts the search. *)
let rec search t k =
  let rec advance prev curr =
    if curr = 0 then (prev, 0)
    else
      let nw = Sim_atomic.read_word t.arena (curr + o_next) in
      if is_marked nw then begin
        Pmcheck.linked_durable t.arena ~addr:prev ~len:8;
        Sim_threads.yield ();
        if
          Sim_atomic.compare_and_set_word ~persist:true t.arena prev
            ~expected:(of_addr curr)
            ~desired:(of_addr (addr_of nw))
        then advance prev (addr_of nw)
        else search t k
      end
      else if key_of t curr >= k then (prev, curr)
      else advance (curr + o_next) (addr_of nw)
  in
  let head = bucket_of t k in
  advance head (addr_of (Sim_atomic.read_word t.arena head))

(* -- announcements ------------------------------------------------------- *)

let announce_begin t ~thread ~op ~key =
  if thread < 0 || thread >= t.nthreads then invalid_arg "Lfset: bad thread";
  let c = cell t thread in
  let seq = t.seqs.(thread) + 1 in
  t.seqs.(thread) <- seq;
  Arena.write t.arena (c + a_status) 0L;
  Arena.write t.arena (c + a_node) 0L;
  Arena.write t.arena (c + a_op) (Int64.of_int op);
  Arena.write t.arena (c + a_key) (Int64.of_int key);
  Arena.write t.arena (c + a_seq) (Int64.of_int seq);
  (* One line, one flush: the cell either survives whole (op announced,
     in progress) or not at all (previous op's completed announcement) —
     both are legal recovery states. *)
  Arena.flush_line t.arena c;
  Arena.fence t.arena

(* Durably record the op's target node before the decisive CAS, so a
   post-crash [op_took_effect] knows which node to test. *)
let announce_target t ~thread node =
  Arena.nt_write t.arena (cell t thread + a_node) (of_addr node)

let announce_done t ~thread ~what result =
  (* Order every link flushed during the op (including help-unlinks)
     before the result becomes observable... *)
  Arena.fence t.arena;
  Pmcheck.linked_exposed t.arena ~what;
  (* ...then durably record completion. *)
  let c = cell t thread in
  Arena.write t.arena (c + a_status) (if result then 1L else 2L);
  Arena.flush_line t.arena c;
  Arena.fence t.arena;
  result

(* -- operations ---------------------------------------------------------- *)

let rec insert_impl t ~thread k =
  let prev, curr = search t k in
  if curr <> 0 && key_of t curr = k then begin
    (* Present: persist the link this answer depends on
       (flush-on-traversal-exit) and report failure. *)
    Pmcheck.linked_durable t.arena ~addr:prev ~len:8;
    Arena.flush_line t.arena prev;
    false
  end
  else begin
    (* Fresh never-reused storage, initialised with non-temporal stores
       *before* the publishing CAS: a surviving link implies a durable
       node.  A failed CAS abandons the node — nodes are never recycled,
       so recovery can trust every reachable address. *)
    let node = Alloc.alloc_fresh ~align:16 t.alloc node_bytes in
    Pmcheck.linked_durable t.arena ~addr:node ~len:node_bytes;
    Arena.nt_write t.arena (node + o_key) (Int64.of_int k);
    Arena.nt_write t.arena (node + o_next) (of_addr curr);
    announce_target t ~thread node;
    Pmcheck.linked_durable t.arena ~addr:prev ~len:8;
    Sim_threads.yield ();
    if
      Sim_atomic.compare_and_set_word ~persist:true t.arena prev
        ~expected:(of_addr curr) ~desired:(of_addr node)
    then true
    else insert_impl t ~thread k
  end

and remove_impl t ~thread k =
  let prev, curr = search t k in
  if curr = 0 || key_of t curr <> k then begin
    Pmcheck.linked_durable t.arena ~addr:prev ~len:8;
    Arena.flush_line t.arena prev;
    false
  end
  else begin
    announce_target t ~thread curr;
    let nw = Sim_atomic.read_word t.arena (curr + o_next) in
    if is_marked nw then remove_impl t ~thread k
    else begin
      (* Logical delete: mark the victim's own next word (the
         linearization + durability point)... *)
      Pmcheck.linked_durable t.arena ~addr:(curr + o_next) ~len:8;
      Sim_threads.yield ();
      if
        not
          (Sim_atomic.compare_and_set_word ~persist:true t.arena
             (curr + o_next) ~expected:nw ~desired:(marked nw))
      then remove_impl t ~thread k
      else begin
        (* ...then best-effort physical unlink; helpers or recovery
           finish it if this CAS loses. *)
        Pmcheck.linked_durable t.arena ~addr:prev ~len:8;
        ignore
          (Sim_atomic.compare_and_set_word ~persist:true t.arena prev
             ~expected:(of_addr curr)
             ~desired:(of_addr (addr_of nw)));
        true
      end
    end
  end

let insert ?(thread = 0) t k =
  announce_begin t ~thread ~op:op_insert ~key:k;
  let r = insert_impl t ~thread k in
  announce_done t ~thread ~what:(Fmt.str "insert %d" k) r

let remove ?(thread = 0) t k =
  announce_begin t ~thread ~op:op_remove ~key:k;
  let r = remove_impl t ~thread k in
  announce_done t ~thread ~what:(Fmt.str "remove %d" k) r

(* Read-only lookup: no helping, no CAS.  Marked nodes are skipped
   (NVTraverse-style wait-free traversal); on exit the dependency set —
   the last link followed and the decisive node's next word — is flushed
   and fenced, so the answer is justified by the durable image. *)
let mem t k =
  let head = bucket_of t k in
  let rec go link curr =
    if curr = 0 then (link, 0)
    else
      let nw = Sim_atomic.read_word t.arena (curr + o_next) in
      if is_marked nw then go link (addr_of nw)
      else if key_of t curr >= k then (link, curr)
      else go (curr + o_next) (addr_of nw)
  in
  let link, curr = go head (addr_of (Sim_atomic.read_word t.arena head)) in
  Arena.flush_line t.arena link;
  if curr <> 0 then Arena.flush_line t.arena (curr + o_next);
  Arena.fence t.arena;
  curr <> 0 && key_of t curr = k

(* -- whole-set inspection (quiescent callers: tests, recovery checks) ---- *)

let iter t f =
  for b = 0 to t.nbuckets - 1 do
    let rec go curr =
      if curr <> 0 then begin
        let nw = Arena.read t.arena (curr + o_next) in
        if not (is_marked nw) then f (key_of t curr);
        go (addr_of nw)
      end
    in
    go (addr_of (Arena.read t.arena (buckets_off t + (8 * b))))
  done

let bindings t =
  let acc = ref [] in
  iter t (fun k -> acc := k :: !acc);
  List.sort compare !acc

let size t =
  let n = ref 0 in
  iter t (fun _ -> incr n);
  !n

(* -- detectability ------------------------------------------------------- *)

type status = In_progress | Done of bool

type announcement = {
  an_seq : int;
  an_op : [ `Insert | `Remove ];
  an_key : int;
  an_status : status;
  an_node : int;
}

let announcement t ~thread =
  if thread < 0 || thread >= t.nthreads then invalid_arg "Lfset: bad thread";
  let c = cell t thread in
  let rd o = Int64.to_int (Arena.read t.arena (c + o)) in
  if rd a_seq = 0 then None
  else
    Some
      {
        an_seq = rd a_seq;
        an_op = (if rd a_op = op_remove then `Remove else `Insert);
        an_key = rd a_key;
        an_status =
          (match rd a_status with
          | 0 -> In_progress
          | 1 -> Done true
          | _ -> Done false);
        an_node = rd a_node;
      }

let reachable t ~key ~node =
  let rec go curr =
    curr <> 0 && (curr = node || go (addr_of (Arena.read t.arena (curr + o_next))))
  in
  go (addr_of (Arena.read t.arena (bucket_of t key)))

(* Post-crash effect oracle: did the announced op's decisive CAS land in
   the durable image?  [None] when the thread never announced an op. *)
let op_took_effect t ~thread =
  match announcement t ~thread with
  | None -> None
  | Some { an_status = Done r; _ } -> Some r
  | Some { an_status = In_progress; an_node = 0; _ } ->
      (* Crashed before reaching the decisive CAS. *)
      Some false
  | Some { an_status = In_progress; an_op; an_key; an_node; _ } -> (
      let nw = Arena.read t.arena (an_node + o_next) in
      match an_op with
      | `Insert ->
          (* Linked iff reachable; marked covers the window where a
             concurrent remove already logically deleted it. *)
          Some (reachable t ~key:an_key ~node:an_node || is_marked nw)
      | `Remove -> Some (is_marked nw))
