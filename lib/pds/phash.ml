(* A persistent chained hash table over REWIND — an "arbitrary persistent
   data structure" beyond those evaluated in the paper, exercising the same
   API (fixed bucket directory in NVM; separate chaining; transactional
   insert/remove/update).

   Bucket directory: [nbuckets] words.  Chain node: key, value, next. *)

open Rewind_nvm
open Rewind

let node_bytes = 24
let o_key = 0
let o_value = 8
let o_next = 16

type t = {
  tm : Tm.t;
  arena : Arena.t;
  alloc : Alloc.t;
  dir : int;  (* header word; buckets follow at dir + 8 *)
  nbuckets : int;
}

exception Mismatch of string

(* The bucket count is part of the durable layout: an attach with a
   different count would hash keys into the wrong buckets and silently
   miss every binding.  Persist it in a header word at the directory
   base (mirroring Tm.attach's config fingerprint) and validate on
   reattach instead of trusting the caller. *)
let magic = 0x50 (* 'P' *)
let header_word nbuckets = Int64.of_int (magic lor (nbuckets lsl 8))

let create ?(nbuckets = 256) tm alloc =
  let arena = Alloc.arena alloc in
  let dir = Alloc.alloc_fresh ~align:64 alloc (8 * (nbuckets + 1)) in
  Arena.nt_write arena dir (header_word nbuckets);
  Arena.fence arena;
  { tm; arena; alloc; dir; nbuckets }

let attach ?nbuckets tm alloc ~dir =
  let arena = Alloc.arena alloc in
  let hdr = Int64.to_int (Arena.read arena dir) in
  if hdr = 0 then
    raise
      (Mismatch
         (Fmt.str
            "Phash.attach: no table header at offset %d (never created?)" dir));
  if hdr land 0xff <> magic then
    raise
      (Mismatch
         (Fmt.str "Phash.attach: bad magic %#x at offset %d (expected %#x)"
            (hdr land 0xff) dir magic));
  let stored = hdr lsr 8 in
  (match nbuckets with
  | Some n when n <> stored ->
      raise
        (Mismatch
           (Fmt.str
              "Phash.attach: bucket-count mismatch at offset %d: table was \
               created with %d buckets, caller expected %d"
              dir stored n))
  | Some _ | None -> ());
  { tm; arena; alloc; dir; nbuckets = stored }

let dir t = t.dir

let bucket_of t k =
  let h = Int64.to_int (Int64.logand k 0x3fffffffffffffffL) in
  let h = (h * 2654435761) land max_int in
  t.dir + 8 + (8 * (h mod t.nbuckets))

let rd t off = Int64.to_int (Arena.read t.arena off)

let find_node t k =
  let rec go n =
    if n = 0 then 0
    else if Arena.read t.arena (n + o_key) = k then n
    else go (rd t (n + o_next))
  in
  go (rd t (bucket_of t k))

let lookup t k =
  let n = find_node t k in
  if n = 0 then None else Some (Arena.read t.arena (n + o_value))

let mem t k = lookup t k <> None

(* Insert or update within an open transaction. *)
let put t txn k v =
  let n = find_node t k in
  if n <> 0 then Tm.write t.tm txn ~addr:(n + o_value) ~value:v
  else begin
    let b = bucket_of t k in
    let fresh = Alloc.alloc t.alloc node_bytes in
    Arena.nt_write t.arena (fresh + o_key) k;
    Arena.nt_write t.arena (fresh + o_value) v;
    Arena.nt_write t.arena (fresh + o_next) (Arena.read t.arena b);
    (* one logged write links the node *)
    Tm.write t.tm txn ~addr:b ~value:(Int64.of_int fresh)
  end

let remove t txn k =
  let b = bucket_of t k in
  let rec go prev n =
    if n = 0 then false
    else if Arena.read t.arena (n + o_key) = k then begin
      let nx = Arena.read t.arena (n + o_next) in
      (if prev = 0 then Tm.write t.tm txn ~addr:b ~value:nx
       else Tm.write t.tm txn ~addr:(prev + o_next) ~value:nx);
      Tm.log_delete t.tm txn ~addr:n ~size:node_bytes;
      true
    end
    else go n (rd t (n + o_next))
  in
  go 0 (rd t b)

let iter t f =
  for b = 0 to t.nbuckets - 1 do
    let rec go n =
      if n <> 0 then begin
        f (Arena.read t.arena (n + o_key)) (Arena.read t.arena (n + o_value));
        go (rd t (n + o_next))
      end
    in
    go (rd t (t.dir + 8 + (8 * b)))
  done

let size t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let bindings t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.sort compare !acc
