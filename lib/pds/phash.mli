(** A persistent chained hash table over REWIND: a fixed bucket directory
    in NVM with separate chaining, every mutation transactional.  An
    "arbitrary persistent data structure" beyond those the paper
    evaluates, exercising the same API surface. *)

type t

exception Mismatch of string
(** Raised by {!attach} when [dir] does not hold a table created by
    {!create}, or the caller's expected bucket count contradicts the
    durable one. *)

val create : ?nbuckets:int -> Rewind.Tm.t -> Rewind_nvm.Alloc.t -> t
(** Allocate a fresh table.  The bucket count is persisted in a durable
    header word at the directory base — part of the layout, like
    [Tm]'s config fingerprint. *)

val attach : ?nbuckets:int -> Rewind.Tm.t -> Rewind_nvm.Alloc.t -> dir:int -> t
(** Reattach the table whose header is at [dir].  The bucket count is
    read from the durable header; passing [?nbuckets] asserts it and
    raises {!Mismatch} on contradiction (it is never trusted to override
    the header — a wrong count would rehash keys into the wrong buckets
    and silently miss every binding). *)

val dir : t -> int

val put : t -> Rewind.Tm.txn -> int64 -> int64 -> unit
(** Insert or update within an open transaction. *)

val remove : t -> Rewind.Tm.txn -> int64 -> bool
val lookup : t -> int64 -> int64 option
val mem : t -> int64 -> bool
val iter : t -> (int64 -> int64 -> unit) -> unit
val size : t -> int
val bindings : t -> (int64 * int64) list
