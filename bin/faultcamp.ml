(* faultcamp: the deterministic fault-injection campaign runner.

   Default mode runs a campaign: --seeds N trials per log configuration,
   with the whole schedule derived from --seed.  Passing --crash switches
   to single-trial mode, replaying exactly one (config, seed, crash
   point, fault rates) trial — the shape of the REPRO lines the campaign
   prints on failure. *)

open Cmdliner
module F = Rewind_benchlib.Faultcamp

let run ~base_seed ~seeds ~config ~crash ~evict_ppm ~survive_ppm ~quiet =
  match crash with
  | Some crash_after ->
      (* single-trial reproducer mode *)
      let config = Option.value ~default:"1L-NFP" config in
      let t =
        {
          F.config_name = config;
          fault_seed = base_seed;
          crash_after;
          eviction_ppm = evict_ppm;
          survival_ppm = survive_ppm;
        }
      in
      let v = F.run_trial t in
      Fmt.pr "%a: %a@." F.pp_trial t F.pp_verdict v;
      (match v with F.Pass -> 0 | F.Fail _ -> 1)
  | None ->
      (match config with
      | Some c when not (List.mem c F.config_names) ->
          Fmt.epr "unknown config %S (have: %s)@." c
            (String.concat ", " F.config_names);
          exit 2
      | _ -> ());
      let sched = F.schedule ~config_filter:config ~base_seed ~seeds () in
      if not quiet then
        Fmt.pr "campaign: seed %d, %d trials, schedule digest %08x@." base_seed
          (List.length sched)
          (F.schedule_digest sched);
      let r = F.run_campaign ~config_filter:config ~quiet ~base_seed ~seeds () in
      if not quiet then
        Fmt.pr "total: %d trials, %d failures@." r.F.trials
          (List.length r.F.failures);
      if r.F.failures = [] then 0 else 1

let () =
  let seed =
    Arg.(
      value & opt int 42
      & info [ "seed" ] ~docv:"N"
          ~doc:
            "Base seed.  In campaign mode it derives the whole schedule; in \
             single-trial mode it seeds the fault model.")
  in
  let seeds =
    Arg.(
      value & opt int 200
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Trials per log configuration (campaign mode).")
  in
  let config =
    Arg.(
      value & opt (some string) None
      & info [ "config" ] ~docv:"NAME"
          ~doc:"Restrict to one log configuration (1L-NFP, 1L-FP, 2L-NFP, \
                2L-FP, simple, batch8).")
  in
  let crash =
    Arg.(
      value & opt (some int) None
      & info [ "crash" ] ~docv:"K"
          ~doc:
            "Single-trial mode: crash after the K-th persistence event and \
             check recovery.")
  in
  let evict_ppm =
    Arg.(
      value & opt int 0
      & info [ "evict-ppm" ] ~docv:"P"
          ~doc:"Single-trial mode: spontaneous-eviction probability (ppm).")
  in
  let survive_ppm =
    Arg.(
      value & opt int 500_000
      & info [ "survive-ppm" ] ~docv:"P"
          ~doc:"Single-trial mode: per-line crash-survival probability (ppm).")
  in
  let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Only set the exit code.") in
  let term =
    Term.(
      const (fun base_seed seeds config crash evict_ppm survive_ppm quiet ->
          run ~base_seed ~seeds ~config ~crash ~evict_ppm ~survive_ppm ~quiet)
      $ seed $ seeds $ config $ crash $ evict_ppm $ survive_ppm $ quiet)
  in
  let info =
    Cmd.info "faultcamp" ~version:"1.0.0"
      ~doc:"Deterministic fault-injection campaign for the REWIND logs"
  in
  exit (Cmd.eval' (Cmd.v info term))
