(* Command-line driver for the REWIND reproduction.

     rewind figure fig7-left [--quick]     regenerate one figure
     rewind crash-demo [--config 1l-nfp]   crash/recovery walkthrough
     rewind tpcc [--txns N]                TPC-C throughput comparison
     rewind costs                          cost-model summary for the configs  *)

open Cmdliner
open Rewind_nvm
open Rewind_benchlib

(* -- shared ------------------------------------------------------------- *)

(* The accepted configuration names, their help text and constructors all
   come from the one list in {!Rewind.named_configs}. *)
let config_names =
  List.map (fun (n, _, mk) -> (n, mk)) Rewind.named_configs

let config_name_list = String.concat ", " Rewind.config_names

(* A "-pN" suffix shards any named configuration's log into N partitions:
   "batch-p4" is the batch config with 4 log partitions. *)
let partition_suffix s =
  let l = String.length s in
  match String.rindex_opt s '-' with
  | Some i when i + 2 < l && s.[i + 1] = 'p' -> (
      match int_of_string_opt (String.sub s (i + 2) (l - i - 2)) with
      | Some n when n >= 1 -> Some (String.sub s 0 i, n)
      | _ -> None)
  | _ -> None

let config_of_string s =
  let base, parts =
    match partition_suffix s with
    | Some (base, n) -> (base, n)
    | None -> (s, 1)
  in
  match List.assoc_opt base config_names with
  | Some c ->
      let c = c () in
      if c.Rewind.Tm.incll && parts > 1 then
        Error
          (`Msg
             "incll is epoch-granular, not log-partitioned: the -pN suffix \
              does not apply")
      else Ok (Rewind.with_partitions parts c)
  | None ->
      Error
        (`Msg
           (Fmt.str
              "unknown configuration %S (expected one of: %s; any name except \
               incll also takes a -pN partition suffix, e.g. batch-p4 or \
               lockfree-p8)"
              s config_name_list))

let config_conv =
  Arg.conv
    (config_of_string, fun ppf c -> Rewind.Tm.pp_config ppf c)

let quick =
  Arg.(value & flag & info [ "quick" ] ~doc:"Use smaller (CI-sized) parameters.")

(* -- figure ------------------------------------------------------------- *)

let figure_names =
  [
    "fig3-left"; "fig3-right"; "fig4-left"; "fig4-right"; "fig5"; "fig6";
    "fig7-left"; "fig7-right"; "fig8-left"; "fig8-right"; "fig9"; "fig10";
    "fig11"; "scaling"; "ablation-bucket"; "ablation-group";
    "ablation-policy"; "ablation-lockfree";
  ]

let run_figure quick name =
  let s v q = if quick then q else v in
  match name with
  | "fig3-left" -> Series.print (Figures.fig3_left ~n_ops:(s 10_000 2_000) ())
  | "fig3-right" -> Series.print (Figures.fig3_right ~target_updates:(s 60 20) ())
  | "fig4-left" -> Series.print (Figures.fig4_left ~target_updates:(s 60 20) ())
  | "fig4-right" -> Series.print (Figures.fig4_right ~target_updates:(s 60 20) ())
  | "fig5" -> Series.print (Figures.fig5 ~n_txns:(s 400 350) ~updates_each:(s 10 4) ())
  | "fig6" -> Series.print (Figures.fig6 ~n_records:(s 120_000 30_000) ())
  | "fig7-left" ->
      Series.print (Figures.fig7_left ~n_records:(s 10_000 2_000) ~n_ops:(s 20_000 4_000) ())
  | "fig7-right" ->
      Series.print (Figures.fig7_right ~n_records:(s 10_000 2_000) ~n_ops:(s 20_000 4_000) ())
  | "fig8-left" -> Series.print (Figures.fig8_left ~n_records:(s 10_000 2_000) ())
  | "fig8-right" -> Series.print (Figures.fig8_right ~n_records:(s 10_000 2_000) ())
  | "fig9" ->
      Series.print (Figures.fig9 ~ops_per_thread:(s 10_000 2_000) ~n_records:(s 4_000 1_000) ())
  | "fig10" ->
      Series.print (Figures.fig10 ~n_records:(s 5_000 1_000) ~n_ops:(s 10_000 2_000) ())
  | "fig11" ->
      Series.print_bars ~id:"fig11" ~title:"TPC-C new-order throughput"
        ~ylabel:"thousand transactions per simulated minute"
        (Figures.fig11 ~txns_per_terminal:(s 300 60) ())
  | "scaling" -> Series.print (Figures.scaling ~txns_per_thread:(s 400 100) ())
  | "ablation-bucket" -> Series.print (Figures.ablation_bucket_size ())
  | "ablation-group" -> Series.print (Figures.ablation_group ())
  | "ablation-policy" -> Series.print (Figures.ablation_policy ())
  | "ablation-lockfree" -> Series.print (Figures.ablation_lockfree ())
  | other -> Fmt.epr "unknown figure %S@." other

let figure_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some (enum (List.map (fun n -> (n, n)) figure_names))) None
      & info [] ~docv:"FIGURE" ~doc:"Figure id, e.g. fig7-left.")
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's figures")
    Term.(const (fun q n -> run_figure q n) $ quick $ name_arg)

(* -- crash-demo --------------------------------------------------------- *)

let run_crash_demo cfg crash_after =
  let arena = Arena.create ~size_bytes:(64 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
  let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
  Fmt.pr "configuration: %a@." Rewind.Tm.pp_config cfg;
  Fmt.pr "running transactions with a crash after %d persistence events...@."
    crash_after;
  Arena.arm_crash arena ~after:crash_after;
  let committed = ref [] in
  (try
     for tno = 1 to 1_000 do
       let txn = Rewind.Tm.begin_txn tm in
       for i = 0 to 7 do
         Rewind.Tm.write tm txn ~addr:cells.(i) ~value:(Int64.of_int ((tno * 10) + i))
       done;
       Rewind.Tm.commit tm txn;
       committed := tno :: !committed
     done;
     Arena.disarm_crash arena;
     Fmt.pr "no crash occurred (crash point beyond the workload).@."
   with Arena.Crash ->
     Fmt.pr "*** crash after transaction %d committed ***@."
       (match !committed with t :: _ -> t | [] -> 0));
  if Arena.crashed arena then begin
    let alloc = Alloc.recover arena in
    let span = Clock.start () in
    let _tm = Rewind.Tm.attach ~cfg alloc ~root_slot:2 in
    Fmt.pr "recovery took %a (simulated)@." Clock.pp_ns (Clock.elapsed span);
    let last = match !committed with t :: _ -> t | [] -> 0 in
    let ok = ref true in
    Array.iteri
      (fun i c ->
        let v = Arena.read arena c in
        let expect = Int64.of_int ((last * 10) + i) in
        if v <> expect && last > 0 then ok := false;
        Fmt.pr "  cell %d = %Ld (expected %Ld)@." i v expect)
      cells;
    Fmt.pr "state %s@." (if !ok then "matches the last committed transaction" else "MISMATCH")
  end

let crash_demo_cmd =
  let cfg =
    Arg.(
      value
      & opt config_conv Rewind.config_1l_nfp
      & info [ "config" ] ~docv:"CONFIG"
          ~doc:
            (Fmt.str
               "REWIND configuration: %s; a -pN suffix (e.g. batch-p4) shards \
                the log into N partitions."
               config_name_list))
  in
  let after =
    Arg.(
      value & opt int 5_000
      & info [ "crash-after" ] ~docv:"N" ~doc:"Crash after N persistence events.")
  in
  let partitions =
    Arg.(
      value & opt int 0
      & info [ "partitions" ] ~docv:"N"
          ~doc:"Override the configuration's log partition count.")
  in
  Cmd.v
    (Cmd.info "crash-demo" ~doc:"Run transactions, crash, recover, verify")
    Term.(
      const (fun cfg parts after ->
          let cfg = if parts > 0 then Rewind.with_partitions parts cfg else cfg in
          run_crash_demo cfg after)
      $ cfg $ partitions $ after)

(* -- tpcc --------------------------------------------------------------- *)

(* Open-loop five-transaction TPC-C: arrivals at --rate transactions per
   simulated second, home-warehouse log sharding, latency percentiles
   from the log2 histogram.  (The closed-loop Figure 11 four-way
   comparison lives under `rewind figure fig11`.)  Exits nonzero if the
   database fails the mixed-workload consistency probes afterwards. *)
let run_tpcc warehouses partitions rate txns json_path =
  let open Rewind_benchlib in
  let r =
    Tpcc_bench.run ~warehouses ~partitions ~rate ~arrivals:txns ()
  in
  Fmt.pr "%a@." Tpcc_bench.pp r;
  (match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Tpcc_bench.to_json r);
      close_out oc;
      Fmt.pr "wrote %s@." path);
  if not r.Tpcc_bench.consistent then begin
    Fmt.epr "@.consistency probes FAILED after the run@.";
    Stdlib.exit 1
  end

let tpcc_cmd =
  let warehouses =
    Arg.(
      value & opt int 4
      & info [ "warehouses" ] ~docv:"W" ~doc:"Warehouses (home log shards).")
  in
  let partitions =
    Arg.(
      value & opt int 4
      & info [ "partitions" ] ~docv:"N" ~doc:"Log partitions.")
  in
  let rate =
    Arg.(
      value & opt float 10_000.
      & info [ "rate" ] ~docv:"R"
          ~doc:"Offered load: arrivals per simulated second.")
  in
  let txns =
    Arg.(
      value & opt int 2_000
      & info [ "txns" ] ~docv:"N" ~doc:"Total transaction arrivals.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write machine-readable results (BENCH_tpcc.json).")
  in
  Cmd.v
    (Cmd.info "tpcc"
       ~doc:
         "Open-loop five-transaction TPC-C with home-warehouse log \
          sharding: tpmC and latency percentiles")
    Term.(const run_tpcc $ warehouses $ partitions $ rate $ txns $ json)

(* -- costs -------------------------------------------------------------- *)

(* Per-update cost, with the raw counters reduced to derived per-op rates
   (NVM line writes per update, fences per update) — the quantities the
   paper's cost model and the InCLL comparison are stated in.  The WAL
   rows measure repeated writes inside one open transaction; the InCLL
   row runs the protocol at its natural cadence (one-write transactions,
   an epoch advance every 64), since its whole cost lives in the advance. *)
let run_costs () =
  let n = 1000 in
  Fmt.pr "per-update simulated cost of one logged word write (ns):@.@.";
  List.iter
    (fun (name, cfg) ->
      let arena = Arena.create ~size_bytes:(64 lsl 20) () in
      let alloc = Alloc.create arena in
      let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
      let cell = Rewind.Tm.alloc_cell tm in
      let elapsed, d =
        if cfg.Rewind.Tm.incll then begin
          let s = Clock.start () in
          let (), d =
            Stats.scoped (Arena.stats arena) (fun () ->
                for i = 1 to n do
                  let txn = Rewind.Tm.begin_txn tm in
                  Rewind.Tm.write tm txn ~addr:cell ~value:(Int64.of_int i);
                  Rewind.Tm.commit tm txn;
                  if i mod 64 = 0 then Rewind.Tm.advance_epoch tm
                done)
          in
          (Clock.elapsed s, d)
        end
        else begin
          let txn = Rewind.Tm.begin_txn tm in
          Rewind.Tm.write tm txn ~addr:cell ~value:1L;
          let s = Clock.start () in
          let (), d =
            Stats.scoped (Arena.stats arena) (fun () ->
                for i = 1 to n do
                  Rewind.Tm.write tm txn ~addr:cell ~value:(Int64.of_int i)
                done)
          in
          (Clock.elapsed s, d)
        end
      in
      let per c = float_of_int c /. float_of_int n in
      let logged = d.Stats.inline_records + d.Stats.full_records in
      let inline_pct =
        if logged = 0 then 0.
        else 100. *. float_of_int d.Stats.inline_records /. float_of_int logged
      in
      Fmt.pr
        "  %-22s %6d ns/update  %5.2f lines/op  %5.2f fences/op  (redundant \
         flushes %d, fences %d, inline hit %.0f%%)@."
        name (elapsed / n)
        (per d.Stats.nvm_writes)
        (per d.Stats.fences)
        d.Stats.redundant_flushes d.Stats.redundant_fences inline_pct)
    [
      ("1L-NFP (Optimized)", Rewind.config_1l_nfp);
      ("1L-FP (Optimized)", Rewind.config_1l_fp);
      ("1L-NFP (Simple)", Rewind.config_simple);
      ("1L-NFP (Batch 8)", Rewind.config_batch ());
      ("2L-NFP", Rewind.config_2l_nfp);
      ("2L-FP", Rewind.config_2l_fp);
      ("InCLL (advance/64)", Rewind.config_incll);
    ];
  Fmt.pr "@.non-recoverable NVM store: %d ns; DRAM store: %d ns@."
    (Config.default ()).Config.nvm_write_ns
    (Config.default ()).Config.dram_write_ns

let costs_cmd =
  Cmd.v
    (Cmd.info "costs" ~doc:"Per-update cost of each REWIND configuration")
    Term.(const run_costs $ const ())

(* -- check -------------------------------------------------------------- *)

module San = Rewind_analysis.Sanitizer
module Enum = Rewind_analysis.Enumerator
module Racecheck = Rewind_analysis.Racecheck

(* A representative transactional workload: commits, a rollback, a partial
   rollback to a savepoint, a checkpoint, then a crash mid-transaction and
   recovery — all replayed against the sanitizer's shadow hardware model. *)
let check_one_config name cfg =
  let arena = Arena.create ~size_bytes:(16 lsl 20) () in
  let alloc = Alloc.create arena in
  San.with_sanitizer ~mode:San.Collect arena (fun san ->
      let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
      let cells = Array.init 8 (fun _ -> Rewind.Tm.alloc_cell tm) in
      let txn = Rewind.Tm.begin_txn tm in
      Array.iteri
        (fun i c -> Rewind.Tm.write tm txn ~addr:c ~value:(Int64.of_int (i + 1)))
        cells;
      Rewind.Tm.commit tm txn;
      let txn = Rewind.Tm.begin_txn tm in
      Rewind.Tm.write tm txn ~addr:cells.(0) ~value:99L;
      Rewind.Tm.rollback tm txn;
      let txn = Rewind.Tm.begin_txn tm in
      Rewind.Tm.write tm txn ~addr:cells.(1) ~value:41L;
      let sp = Rewind.Tm.savepoint tm txn in
      Rewind.Tm.write tm txn ~addr:cells.(2) ~value:42L;
      Rewind.Tm.rollback_to tm txn sp;
      Rewind.Tm.commit tm txn;
      Rewind.Tm.checkpoint tm;
      (* Crash mid-protocol.  The WAL configurations produce persistence
         events on every logged write, so an open transaction suffices;
         InCLL writes are cached until the epoch advance, so its crash
         must be provoked by advancing — landing the crash mid-advance. *)
      (try
         if cfg.Rewind.Tm.incll then begin
           Arena.arm_crash arena ~after:5;
           for i = 0 to 999 do
             let txn = Rewind.Tm.begin_txn tm in
             Rewind.Tm.write tm txn
               ~addr:cells.(i mod Array.length cells)
               ~value:(Int64.of_int (100 + i));
             Rewind.Tm.commit tm txn;
             if i mod 4 = 3 then Rewind.Tm.advance_epoch tm
           done
         end
         else begin
           let txn = Rewind.Tm.begin_txn tm in
           Arena.arm_crash arena ~after:5;
           for i = 0 to 999 do
             Rewind.Tm.write tm txn
               ~addr:cells.(i mod Array.length cells)
               ~value:(Int64.of_int (100 + i))
           done
         end
       with Arena.Crash -> ());
      Arena.disarm_crash arena;
      (if Arena.crashed arena then begin
         let alloc = Alloc.recover arena in
         let tm = Rewind.Tm.attach ~cfg alloc ~root_slot:2 in
         let txn = Rewind.Tm.begin_txn tm in
         Rewind.Tm.write tm txn ~addr:cells.(3) ~value:7L;
         Rewind.Tm.commit tm txn
       end);
      let r = San.report san in
      Fmt.pr "%-12s %a@." name San.pp_report r;
      List.iter (fun v -> Fmt.pr "    %a@." San.pp_violation v) (San.violations san);
      r.San.violation_count)

(* The lock-free set under the sanitizer: the third persistence protocol
   (linked-durable / link-and-persist) replayed sequentially — inserts,
   removes, a traversal, a crash mid-insert, recovery via attach, and
   post-recovery operations. *)
let check_lfset () =
  let arena = Arena.create ~size_bytes:(1 lsl 20) () in
  let alloc = Alloc.create arena in
  San.with_sanitizer ~mode:San.Collect arena (fun san ->
      let set = Rewind_pds.Lfset.create ~nbuckets:8 ~nthreads:1 alloc in
      Arena.root_set arena 3 (Int64.of_int (Rewind_pds.Lfset.base set));
      for k = 0 to 15 do
        ignore (Rewind_pds.Lfset.insert set k)
      done;
      for k = 0 to 7 do
        ignore (Rewind_pds.Lfset.remove set (2 * k))
      done;
      ignore (Rewind_pds.Lfset.mem set 3);
      (try
         Arena.arm_crash arena ~after:3;
         for k = 16 to 999 do
           ignore (Rewind_pds.Lfset.insert set k)
         done
       with Arena.Crash -> ());
      Arena.disarm_crash arena;
      (if Arena.crashed arena then begin
         let alloc = Alloc.recover arena in
         let base = Int64.to_int (Arena.root_get arena 3) in
         let set = Rewind_pds.Lfset.attach alloc ~base in
         ignore (Rewind_pds.Lfset.insert set 100);
         ignore (Rewind_pds.Lfset.mem set 100)
       end);
      let r = San.report san in
      Fmt.pr "%-12s %a@." "lfset" San.pp_report r;
      List.iter
        (fun v -> Fmt.pr "    %a@." San.pp_violation v)
        (San.violations san);
      r.San.violation_count)

(* Exhaustive crash-state enumeration of small single-transaction traces:
   every fence-boundary subset of dirty lines must recover to
   all-or-nothing.  Two traces: the Simple log (record per list node),
   and the Optimized log's inline fast path, where the three word updates
   plus the END all encode as slot pairs and the last pair straddles a
   cacheline — so the enumeration includes torn-pair states that recovery
   must truncate rather than replay. *)
let enumerate_one name cfg =
  (* room for each partition's current bucket (8 KiB at the default
     bucket capacity) plus the workload's records *)
  let size_bytes = (64 * 1024) + (16 * 1024 * cfg.Rewind.Tm.partitions) in
  let arena = Arena.create ~size_bytes () in
  let alloc = Alloc.create arena in
  let a = Alloc.alloc ~align:64 alloc 8 in
  let b = Alloc.alloc ~align:64 alloc 8 in
  let c = Alloc.alloc ~align:64 alloc 8 in
  let stats =
    Enum.run arena
      ~workload:(fun () ->
        let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
        let txn = Rewind.Tm.begin_txn tm in
        Rewind.Tm.write tm txn ~addr:a ~value:7L;
        Rewind.Tm.write tm txn ~addr:b ~value:9L;
        Rewind.Tm.write tm txn ~addr:c ~value:11L;
        Rewind.Tm.commit tm txn)
      ~recover:(fun crashed ->
        let alloc = Alloc.recover crashed in
        let _tm = Rewind.Tm.attach ~cfg alloc ~root_slot:2 in
        (Arena.read crashed a, Arena.read crashed b, Arena.read crashed c))
      ~check:(fun (va, vb, vc) ->
        match (va, vb, vc) with
        | 0L, 0L, 0L | 7L, 9L, 11L -> None
        | _ -> Some (Fmt.str "partial state a=%Ld b=%Ld c=%Ld" va vb vc))
  in
  Fmt.pr "enumerator[%s]: %a — all crash states recover legally@." name
    Enum.pp_stats stats

(* The InCLL enumeration needs the finer capture grid: the protocol is
   fence-free between epoch advances, so the sweep captures at every
   durable store and dirty write-back ([at_every_event]) to reach the
   first-store-of-epoch torn-line states and every point inside an
   advance.  Legal recovered states are exactly the epoch boundaries:
   nothing, the first advance's snapshot, or the second's. *)
let enumerate_incll () =
  let cfg = Rewind.config_incll in
  let arena = Arena.create ~size_bytes:(64 * 1024) () in
  let alloc = Alloc.create arena in
  let addrs = ref [||] in
  let stats =
    Enum.run ~at_every_event:true arena
      ~workload:(fun () ->
        let tm = Rewind.Tm.create ~cfg alloc ~root_slot:2 in
        let a = Rewind.Tm.alloc_cell tm in
        let b = Rewind.Tm.alloc_cell tm in
        let c = Rewind.Tm.alloc_cell tm in
        addrs := [| a; b; c |];
        let txn = Rewind.Tm.begin_txn tm in
        Rewind.Tm.write tm txn ~addr:a ~value:7L;
        Rewind.Tm.write tm txn ~addr:b ~value:9L;
        Rewind.Tm.commit tm txn;
        Rewind.Tm.advance_epoch tm;
        let txn = Rewind.Tm.begin_txn tm in
        Rewind.Tm.write tm txn ~addr:a ~value:8L;
        Rewind.Tm.write tm txn ~addr:c ~value:11L;
        Rewind.Tm.commit tm txn;
        Rewind.Tm.advance_epoch tm)
      ~recover:(fun crashed ->
        let alloc = Alloc.recover crashed in
        let _tm = Rewind.Tm.attach ~cfg alloc ~root_slot:2 in
        let a = !addrs.(0) and b = !addrs.(1) and c = !addrs.(2) in
        (Arena.read crashed a, Arena.read crashed b, Arena.read crashed c))
      ~check:(fun (va, vb, vc) ->
        match (va, vb, vc) with
        | 0L, 0L, 0L | 7L, 9L, 0L | 8L, 9L, 11L -> None
        | _ ->
            Some (Fmt.str "non-epoch-boundary state a=%Ld b=%Ld c=%Ld" va vb vc))
  in
  Fmt.pr "enumerator[incll]: %a — all crash states recover legally@."
    Enum.pp_stats stats

(* Lock-free set sweep: crash at *every* persistence event of an
   insert/remove/traversal trace.  There is no log — recovery is the
   attach-time node scan — so the only legal recovered states are the
   prefixes of the operation sequence (durable linearizability): each
   op's links are flushed before its result is exposed, so at most the
   in-flight op is undecided at any crash point. *)
let enumerate_lfset () =
  let arena = Arena.create ~size_bytes:(256 * 1024) () in
  let alloc = Alloc.create arena in
  let base = ref 0 in
  let ops = [ `I 5; `I 1; `I 9; `R 5; `I 3; `R 1 ] in
  let prefixes =
    let cur = ref [] and acc = ref [ [] ] in
    List.iter
      (fun op ->
        (match op with
        | `I k -> if not (List.mem k !cur) then cur := k :: !cur
        | `R k -> cur := List.filter (( <> ) k) !cur);
        acc := List.sort compare !cur :: !acc)
      ops;
    !acc
  in
  let stats =
    Enum.run ~at_every_event:true arena
      ~workload:(fun () ->
        let set = Rewind_pds.Lfset.create ~nbuckets:4 ~nthreads:1 alloc in
        base := Rewind_pds.Lfset.base set;
        List.iter
          (function
            | `I k -> ignore (Rewind_pds.Lfset.insert set k)
            | `R k -> ignore (Rewind_pds.Lfset.remove set k))
          ops;
        ignore (Rewind_pds.Lfset.mem set 9))
      ~recover:(fun crashed ->
        let alloc = Alloc.recover crashed in
        match Rewind_pds.Lfset.attach alloc ~base:!base with
        | set -> Rewind_pds.Lfset.bindings set
        | exception Rewind_pds.Lfset.Mismatch _ ->
            (* crashed before the header persisted: the set was never
               created, which is the empty prefix *)
            [])
      ~check:(fun ks ->
        if List.mem ks prefixes then None
        else
          Some
            (Fmt.str "recovered {%a}: not a prefix of the op sequence"
               Fmt.(list ~sep:comma int)
               ks))
  in
  Fmt.pr "enumerator[lfset]: %a — every crash state is a linearizable prefix@."
    Enum.pp_stats stats

let check_enumerate ?(shard = fun c -> c) () =
  enumerate_one "simple"
    (shard { Rewind.config_simple with Rewind.Tm.policy = Rewind.Tm.No_force });
  enumerate_one "optimized-inline" (shard Rewind.config_1l_nfp);
  enumerate_incll ();
  enumerate_lfset ()

(* Happens-before race detection over the standard concurrent workloads:
   the PR-5 multi-writer scaling workload, the same workload with a
   concurrent cache-consistent checkpointer, and the TPC-C new-order
   driver in the naive-REWIND (coarse-lock) configuration.  Any report —
   data race or persist race — fails the run. *)
let run_races config_filter partitions threads =
  let partitions = max 1 partitions in
  let selected =
    match config_filter with
    | None -> Race_workloads.configs
    | Some "lfset" -> [] (* no WAL configuration applies to the set *)
    | Some n -> (
        match List.assoc_opt n Race_workloads.configs with
        | Some c -> [ (n, c) ]
        | None -> [ (n, (List.assoc n config_names) ()) ])
  in
  Fmt.pr
    "happens-before race detector — vector clocks over the trace stream@.";
  Fmt.pr "(%d writer fiber(s), %d log partition(s))@.@." threads partitions;
  let total = ref 0 in
  let show name rc =
    let races = Racecheck.races rc in
    total := !total + List.length races;
    Fmt.pr "  %-24s %a@." name Racecheck.pp_report (Racecheck.report rc);
    List.iter (fun r -> Fmt.pr "    %a@." Racecheck.pp_race r) races
  in
  List.iter
    (fun (name, cfg) ->
      show
        (name ^ " multi-writer")
        (Race_workloads.multi_writer ~threads ~partitions ~cfg ());
      show
        (name ^ " checkpoint")
        (Race_workloads.concurrent_checkpoint ~threads ~partitions ~cfg ()))
    selected;
  (if config_filter <> Some "lfset" then begin
     show "tpcc-naive" (Race_workloads.tpcc ~terminals:(max 2 threads) ());
     (* the five-transaction mix with home-warehouse pinning, its log
        sharded over the requested partition count *)
     show
       (Fmt.str "tpcc-mix-p%d" partitions)
       (Race_workloads.tpcc_mix ~partitions ())
   end);
  (if config_filter = None || config_filter = Some "lfset" then
     show "lockfree-set" (Race_workloads.lockfree_set ~threads ()));
  if !total > 0 then begin
    Fmt.epr "@.%d race report(s)@." !total;
    Stdlib.exit 1
  end
  else Fmt.pr "@.no races detected@."

let run_check config_filter enumerate partitions races threads =
  if races then run_races config_filter partitions threads
  else begin
  (* incll is never sharded: the epoch protocol has no log to partition *)
  let shard cfg =
    if partitions > 0 && not cfg.Rewind.Tm.incll then
      Rewind.with_partitions partitions cfg
    else cfg
  in
  let selected =
    match config_filter with
    | None -> config_names
    | Some n -> List.filter (fun (name, _) -> name = n) config_names
  in
  Fmt.pr "persistency sanitizer — shadow hardware model over each configuration";
  if partitions > 0 then Fmt.pr " (%d log partitions)" partitions;
  Fmt.pr "@.@.";
  let total =
    List.fold_left
      (fun acc (name, cfg) -> acc + check_one_config name (shard (cfg ())))
      0 selected
  in
  (* The lock-free set is not a WAL configuration but has its own
     protocol row in the sweep ("lfset" alone selects just it). *)
  let total =
    if config_filter = None || config_filter = Some "lfset" then
      total + check_lfset ()
    else total
  in
  (if enumerate then check_enumerate ~shard ());
  if total > 0 then begin
    Fmt.epr "@.%d persistency violation(s) detected@." total;
    Stdlib.exit 1
  end
  else Fmt.pr "@.no persistency violations@."
  end

let check_cmd =
  let cfg =
    Arg.(
      value
      & opt
          (some
             (enum
                (("lfset", "lfset")
                :: List.map (fun (n, _) -> (n, n)) config_names)))
          None
      & info [ "config" ] ~docv:"CONFIG"
          ~doc:
            "Check a single configuration (default: all).  The special \
             name 'lfset' selects the lock-free durable set workload.")
  in
  let enumerate =
    Arg.(
      value & flag
      & info [ "enumerate" ]
          ~doc:"Also exhaustively enumerate crash states of a small trace.")
  in
  let partitions =
    Arg.(
      value & opt int 0
      & info [ "partitions" ] ~docv:"N"
          ~doc:"Shard each checked configuration's log into N partitions.")
  in
  let races =
    Arg.(
      value & flag
      & info [ "races" ]
          ~doc:
            "Run the happens-before race detector over the multi-writer, \
             concurrent-checkpoint and TPC-C workloads instead of the \
             persistency sanitizer.")
  in
  let threads =
    Arg.(
      value & opt int 4
      & info [ "threads" ] ~docv:"T"
          ~doc:"Concurrent writer fibers for the race-detector workloads.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the persistency sanitizer (or, with --races, the \
          happens-before race detector) over each configuration")
    Term.(const run_check $ cfg $ enumerate $ partitions $ races $ threads)

(* -- profile ------------------------------------------------------------- *)

module Rbench = Rewind_benchlib.Recovery_bench

(* Crash-and-reattach profiling across all six configurations: per-phase
   recovery timings with NVM attribution, plus a sanitizer pass over each
   recovery.  Emits a human table and, on request, BENCH_recovery.json and
   a Prometheus-style text file.  Exits nonzero if any recovery raised
   persistency violations — CI runs this on every push. *)
let run_profile ops json_path prom_path =
  let sizes = [ ops / 4; ops ] in
  let intervals = [ 0; 50 ] in
  Fmt.pr
    "recovery profile — per-phase simulated time and NVM attribution@.@.";
  let results = Rbench.run ~sizes ~intervals () in
  List.iter (fun r -> Fmt.pr "%a@." Rbench.pp_result r) results;
  (match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Rbench.to_json results);
      close_out oc;
      Fmt.pr "wrote %s@." path);
  (match prom_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Rbench.to_prometheus results);
      close_out oc;
      Fmt.pr "wrote %s@." path);
  let violations =
    List.fold_left (fun acc r -> acc + r.Rbench.sanitizer_violations) 0 results
  in
  if violations > 0 then begin
    Fmt.epr "@.%d persistency violation(s) during recovery@." violations;
    Stdlib.exit 1
  end
  else Fmt.pr "@.no persistency violations during recovery@."

let profile_cmd =
  let ops =
    Arg.(
      value & opt int 8_000
      & info [ "ops" ] ~docv:"N"
          ~doc:"Logged updates before the crash (a quarter-size point is \
                also run).")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write machine-readable results (BENCH_recovery.json).")
  in
  let prom =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom" ] ~docv:"PATH"
          ~doc:"Write Prometheus text-exposition metrics.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"Profile crash recovery per phase across all configurations")
    Term.(const run_profile $ ops $ json $ prom)

(* -- scaling -------------------------------------------------------------- *)

(* Partition-scaling bench: throughput at a fixed thread count over
   1..N log partitions.  Emits BENCH_scaling.json for the CI gate and
   fails if the largest partition count does not reach --min-speedup over
   the single-partition latch. *)
let run_scaling threads txns json_path min_speedup =
  let results = Rewind_benchlib.Scaling_bench.run ~threads ~txns_per_thread:txns () in
  Fmt.pr "partitioned-log scaling — %d simulated threads@.@." threads;
  List.iter
    (fun r -> Fmt.pr "  %a@." Rewind_benchlib.Scaling_bench.pp_result r)
    results;
  let speedup = Rewind_benchlib.Scaling_bench.speedup results in
  Fmt.pr "@.speedup (most vs fewest partitions): %.2fx@." speedup;
  (match json_path with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Rewind_benchlib.Scaling_bench.to_json results);
      close_out oc;
      Fmt.pr "wrote %s@." path);
  if speedup < min_speedup then begin
    Fmt.epr "@.speedup %.2fx below the required %.2fx@." speedup min_speedup;
    Stdlib.exit 1
  end

let scaling_cmd =
  let threads =
    Arg.(
      value & opt int 8
      & info [ "threads" ] ~docv:"N" ~doc:"Simulated writer threads.")
  in
  let txns =
    Arg.(
      value & opt int 400
      & info [ "txns" ] ~docv:"N" ~doc:"Transactions per thread.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Write machine-readable results (BENCH_scaling.json).")
  in
  let min_speedup =
    Arg.(
      value & opt float 0.
      & info [ "min-speedup" ] ~docv:"X"
          ~doc:"Fail unless max-partitions throughput is at least X times \
                the single-partition throughput.")
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:"Throughput of the partitioned log under concurrent writers")
    Term.(const run_scaling $ threads $ txns $ json $ min_speedup)

(* -- benchdiff ------------------------------------------------------------ *)

(* The benchmark-regression gate: every metric in the committed baselines
   is simulated (deterministic, machine-independent), so CI compares the
   fresh BENCH_*.json artifacts against them and fails the build on any
   cost metric worse than the tolerance. *)
(* Exit codes: 0 = within tolerance, 1 = benchmark regression, 2 = the
   gate could not run (file missing/unreadable/not JSON) — so CI can tell
   "the numbers got worse" from "the comparison never happened". *)
let run_benchdiff baseline current tolerance =
  match
    Rewind_benchlib.Benchdiff.compare_files ~tolerance ~baseline ~current
  with
  | Error msg ->
      Fmt.epr "benchdiff: %s@." msg;
      Stdlib.exit 2
  | Ok outcome ->
      Fmt.pr "comparing %s against baseline %s (tolerance %.0f%%)@." current
        baseline (100. *. tolerance);
      Fmt.pr "%a" Rewind_benchlib.Benchdiff.pp_outcome outcome;
      (* Gated metrics the baseline doesn't know about are ungated until
         the baseline is regenerated — warn loudly rather than pass them
         in silence. *)
      List.iter
        (fun m ->
          Fmt.epr
            "benchdiff: WARNING: %s is gated but absent from the baseline — \
             regenerate and commit %s to gate it@."
            m baseline)
        outcome.Rewind_benchlib.Benchdiff.new_metrics;
      if not (Rewind_benchlib.Benchdiff.passed outcome) then Stdlib.exit 1

let benchdiff_cmd =
  (* plain strings, not Arg.file: missing paths must reach our own
     diagnostic and exit code, not cmdliner's usage error *)
  let baseline =
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE" ~doc:"Committed baseline JSON.")
  in
  let current =
    Arg.(
      required
      & opt (some string) None
      & info [ "current" ] ~docv:"FILE" ~doc:"Freshly produced benchmark JSON.")
  in
  let tolerance =
    Arg.(
      value & opt float 0.15
      & info [ "tolerance" ] ~docv:"FRAC"
          ~doc:
            "Allowed relative regression per metric (default 0.15).  A \
             baseline leaf named <metric>_tolerance overrides it for that \
             one metric.")
  in
  Cmd.v
    (Cmd.info "benchdiff"
       ~doc:"Compare benchmark JSON against a committed baseline; exit \
             nonzero on regression")
    Term.(const run_benchdiff $ baseline $ current $ tolerance)

(* -- 2pc ------------------------------------------------------------------ *)

module Twopc = Rewind_dist.Twopc
module Tbench = Rewind_benchlib.Twopc_bench

(* Exit codes: 0 = every crash state recovered to a globally consistent
   outcome; 1 = the sweep found an unresolved in-doubt transaction or a
   split commit. *)
let run_2pc_enumerate nodes txns =
  match Tbench.enumerate ~nodes ~txns () with
  | r ->
      Fmt.pr "2pc enumerator[%d nodes + coordinator]: %a@." nodes
        Tbench.pp_enum_report r
  | exception Enum.Node_illegal { node; event; detail } ->
      Fmt.epr
        "2pc enumerator: INCONSISTENT recovery — %s crashed at persistence \
         event %d: %s@."
        (if node < 0 then "no component (crash-free run)"
         else if node = 0 then "the coordinator"
         else Printf.sprintf "participant %d" (node - 1))
        event detail;
      Stdlib.exit 1

(* Walkthrough: a lossy run with the coordinator dying at the worst
   moment (decision durable, no COMMIT sent), then a cluster-wide power
   failure, then log-only recovery. *)
let run_2pc_demo nodes txns drop =
  Fmt.pr
    "distributed commit: %d participants + 1 coordinator, %d transactions%s@.@."
    nodes txns
    (if drop > 0 then Printf.sprintf ", dropping ~1 message in %d" drop else "");
  let w =
    Tbench.make_world ~nodes ~txns ~drop_1_in:drop ~seed:3
      ~chaos_at:(Some (txns - 1)) ()
  in
  Tbench.run_workload w;
  let t = w.Tbench.cluster in
  let s = Twopc.stats t in
  Fmt.pr
    "outcomes: %d committed, %d aborted, %d unknown   (%d messages, %d \
     dropped, %d retries)@."
    s.Twopc.committed s.Twopc.aborted s.Twopc.unknown s.Twopc.msgs_sent
    s.Twopc.msgs_dropped s.Twopc.retries;
  Fmt.pr
    "coordinator power-failed right after durably deciding transaction %d — \
     before sending any COMMIT; %d participant transaction(s) left in doubt@."
    (txns - 1)
    (Twopc.in_doubt_total t);
  Fmt.pr "power-failing every participant too...@.";
  for i = 0 to nodes - 1 do
    if Twopc.node_up t i then Twopc.crash_node t i
  done;
  Fmt.pr "recovering the whole cluster from its logs alone...@.";
  match Tbench.check_world w with
  | None ->
      Fmt.pr
        "recovery: every in-doubt transaction resolved from the decision \
         log, all outcomes globally all-or-nothing, 0 still in doubt@."
  | Some detail ->
      Fmt.epr "recovery: INCONSISTENT — %s@." detail;
      Stdlib.exit 1

let run_2pc nodes txns drop enumerate json_path =
  (match json_path with
  | None -> ()
  | Some path ->
      let results = Tbench.run ~txns:(max txns 200) () in
      List.iter (fun r -> Fmt.pr "%a@." Tbench.pp_result r) results;
      let oc = open_out path in
      output_string oc (Tbench.to_json results);
      close_out oc;
      Fmt.pr "wrote %s@." path);
  if enumerate then run_2pc_enumerate nodes (min txns 8)
  else if json_path = None then run_2pc_demo nodes txns drop

let twopc_cmd =
  let nodes =
    Arg.(
      value & opt int 3
      & info [ "nodes" ] ~docv:"N" ~doc:"Participant nodes (each its own NVM arena).")
  in
  let txns =
    Arg.(
      value & opt int 8
      & info [ "txns" ] ~docv:"N" ~doc:"Distributed transactions to run.")
  in
  let drop =
    Arg.(
      value & opt int 6
      & info [ "drop" ] ~docv:"N"
          ~doc:"Drop roughly one simulated message in N (0 = lossless).")
  in
  let enumerate =
    Arg.(
      value & flag
      & info [ "enumerate" ]
          ~doc:"Crash every component at every persistence event (plus the \
                coordinator after each decision) and prove recovery resolves \
                every in-doubt transaction consistently; exit nonzero \
                otherwise.")
  in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Run the distributed-commit benchmark and write BENCH_2pc.json.")
  in
  Cmd.v
    (Cmd.info "2pc"
       ~doc:"Two-phase commit across independent REWIND nodes: demo, \
             crash-everywhere enumeration, benchmark")
    Term.(const run_2pc $ nodes $ txns $ drop $ enumerate $ json)

(* -- autotune ------------------------------------------------------------ *)

(* Run a synthetic workload at the requested interleaving/rollback profile
   and print what the advisor would configure. *)
let run_autotune interleave rollback_pct updates small_pct =
  let tuner = Rewind.Autotune.create () in
  let group = max 1 (interleave + 1) in
  let n_txns = max group 200 in
  let live = Array.init group (fun i ->
      Rewind.Autotune.on_begin tuner i;
      i)
  in
  let next = ref group in
  let done_updates = Array.make (Array.length live + n_txns + 1) 0 in
  let settled = ref 0 in
  while !settled < n_txns do
    Array.iteri
      (fun slot txn ->
        if !settled < n_txns then begin
          (* deterministic small-write mix at the requested percentage *)
          let word_sized = done_updates.(txn) * small_pct mod 100 < small_pct in
          Rewind.Autotune.on_write ~word_sized tuner txn;
          done_updates.(txn) <- done_updates.(txn) + 1;
          if done_updates.(txn) >= updates then begin
            (if txn * 100 mod (n_txns * 100) < rollback_pct * n_txns then
               Rewind.Autotune.on_rollback tuner txn
             else Rewind.Autotune.on_commit tuner txn);
            incr settled;
            let fresh = !next in
            incr next;
            Rewind.Autotune.on_begin tuner fresh;
            live.(slot) <- fresh
          end
        end)
      live
  done;
  Fmt.pr "%a@." Rewind.Autotune.pp tuner

let autotune_cmd =
  let interleave =
    Arg.(value & opt int 50
         & info [ "interleave" ] ~docv:"N" ~doc:"Concurrent transactions (skip records).")
  in
  let rollback =
    Arg.(value & opt int 5
         & info [ "rollback" ] ~docv:"PCT" ~doc:"Percentage of transactions rolled back.")
  in
  let updates =
    Arg.(value & opt int 20
         & info [ "updates" ] ~docv:"N" ~doc:"Updates per transaction.")
  in
  let small =
    Arg.(value & opt int 0
         & info [ "small-writes" ] ~docv:"PCT"
             ~doc:"Percentage of updates that are word-sized (inline-eligible).")
  in
  Cmd.v
    (Cmd.info "autotune"
       ~doc:"Simulate a workload profile and print the advisor's recommendation")
    Term.(const run_autotune $ interleave $ rollback $ updates $ small)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "rewind" ~version:"1.0.0"
             ~doc:"REWIND: recovery write-ahead system for in-memory non-volatile data structures")
          [ figure_cmd; crash_demo_cmd; tpcc_cmd; costs_cmd; check_cmd;
            profile_cmd; scaling_cmd; benchdiff_cmd; twopc_cmd; autotune_cmd ]))
