(* Durable lock-free set: functional behaviour, durable-header attach
   validation, deterministic concurrent runs under the race detector,
   and the tentpole acceptance sweep — crash at *every* persistence
   event of an insert/remove/traversal trace, recovering a linearizable
   prefix with the in-flight operation decided by the detectability
   oracle and the sanitizer clean throughout. *)

open Rewind_nvm
open Rewind_pds
module San = Rewind_analysis.Sanitizer
module Enum = Rewind_analysis.Enumerator
module Racecheck = Rewind_analysis.Racecheck

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

let fresh ?(size = 4 lsl 20) () =
  let arena = Arena.create ~size_bytes:size () in
  let alloc = Alloc.create arena in
  (arena, alloc)

(* ------------------------------------------------------------------ *)
(* Functional                                                          *)
(* ------------------------------------------------------------------ *)

let test_basic () =
  let _, alloc = fresh () in
  let s = Lfset.create ~nbuckets:4 ~nthreads:1 alloc in
  check_bool "insert fresh" true (Lfset.insert s 5);
  check_bool "insert dup" false (Lfset.insert s 5);
  check_bool "insert more" true (Lfset.insert s 1);
  check_bool "insert more" true (Lfset.insert s 9);
  check_bool "mem present" true (Lfset.mem s 5);
  check_bool "mem absent" false (Lfset.mem s 7);
  check_ints "bindings" [ 1; 5; 9 ] (Lfset.bindings s);
  check_bool "remove present" true (Lfset.remove s 5);
  check_bool "remove again" false (Lfset.remove s 5);
  check_bool "removed gone" false (Lfset.mem s 5);
  check_int "size" 2 (Lfset.size s);
  check_bool "reinsert after remove" true (Lfset.insert s 5);
  check_ints "bindings again" [ 1; 5; 9 ] (Lfset.bindings s)

let test_many_keys () =
  let _, alloc = fresh () in
  let s = Lfset.create ~nbuckets:8 ~nthreads:1 alloc in
  for k = 0 to 199 do
    check_bool "insert" true (Lfset.insert s k)
  done;
  for k = 0 to 199 do
    if k mod 3 = 0 then check_bool "remove" true (Lfset.remove s k)
  done;
  let expect =
    List.filter (fun k -> k mod 3 <> 0) (List.init 200 (fun i -> i))
  in
  check_ints "survivors" expect (Lfset.bindings s);
  List.iter (fun k -> check_bool "mem" true (Lfset.mem s k)) expect

(* ------------------------------------------------------------------ *)
(* Attach validation (durable header)                                  *)
(* ------------------------------------------------------------------ *)

let test_attach_roundtrip () =
  let _, alloc = fresh () in
  let s = Lfset.create ~nbuckets:4 ~nthreads:2 alloc in
  ignore (Lfset.insert s 3);
  ignore (Lfset.insert s 8);
  let s2 = Lfset.attach alloc ~base:(Lfset.base s) in
  check_int "nbuckets from header" 4 (Lfset.nbuckets s2);
  check_int "nthreads from header" 2 (Lfset.nthreads s2);
  check_ints "contents" [ 3; 8 ] (Lfset.bindings s2)

let test_attach_rejects_garbage () =
  let arena, alloc = fresh () in
  (* never-initialised fresh space: header word durably zero *)
  let junk = Alloc.alloc_fresh ~align:64 alloc 128 in
  (match Lfset.attach alloc ~base:junk with
  | exception Lfset.Mismatch _ -> ()
  | _ -> Alcotest.fail "attach accepted a zero header");
  (* non-zero but foreign bytes *)
  Arena.nt_write arena junk 0xdeadbeefL;
  Arena.fence arena;
  match Lfset.attach alloc ~base:junk with
  | exception Lfset.Mismatch _ -> ()
  | _ -> Alcotest.fail "attach accepted a foreign header"

(* ------------------------------------------------------------------ *)
(* Concurrency (deterministic fiber scheduler)                         *)
(* ------------------------------------------------------------------ *)

let test_concurrent_disjoint () =
  let _, alloc = fresh () in
  let threads = 4 in
  let s = Lfset.create ~nbuckets:8 ~nthreads:threads alloc in
  (* Private key ranges: insert 16, remove the even half — the final
     state is exact regardless of interleaving. *)
  ignore
    (Sim_threads.run ~threads ~ops_per_thread:24 (fun t op ->
         let base = t * 100 in
         if op < 16 then ignore (Lfset.insert ~thread:t s (base + op))
         else ignore (Lfset.remove ~thread:t s (base + ((op - 16) * 2)))));
  let expect =
    List.concat_map
      (fun t -> List.filter_map
           (fun i -> if i mod 2 = 1 then Some ((t * 100) + i) else None)
           (List.init 16 (fun i -> i)))
      (List.init threads (fun t -> t))
    |> List.sort compare
  in
  check_ints "disjoint-range result" expect (Lfset.bindings s)

let test_concurrent_contended_race_free () =
  (* Overlapping keys across fibers, under the race detector: contended
     CAS chains, helping, duplicate answers — and zero reports. *)
  let rc =
    Rewind_benchlib.Race_workloads.lockfree_set ~threads:4 ~ops_per_thread:40
      ()
  in
  check_int "no race reports" 0 (List.length (Racecheck.races rc))

(* ------------------------------------------------------------------ *)
(* Crash at every persistence event (tentpole acceptance)              *)
(* ------------------------------------------------------------------ *)

(* The op sequence exercises fresh inserts, duplicate inserts, removes
   of present and absent keys, a remove that empties a bucket chain,
   and a read-only traversal. *)
let sweep_ops =
  [| `I 5; `I 1; `I 9; `I 5; `R 5; `I 3; `R 7; `R 1; `I 5 |]

(* states.(i) = sorted contents after the first i ops;
   results.(i) = the boolean op i returns when run to completion. *)
let sweep_states, sweep_results =
  let n = Array.length sweep_ops in
  let states = Array.make (n + 1) [] in
  let results = Array.make n false in
  for i = 0 to n - 1 do
    (match sweep_ops.(i) with
    | `I k ->
        results.(i) <- not (List.mem k states.(i));
        states.(i + 1) <-
          (if results.(i) then List.sort compare (k :: states.(i))
           else states.(i))
    | `R k ->
        results.(i) <- List.mem k states.(i);
        states.(i + 1) <- List.filter (( <> ) k) states.(i));
  done;
  (states, results)

let run_sweep_workload s =
  Array.iter
    (function
      | `I k -> ignore (Lfset.insert s k) | `R k -> ignore (Lfset.remove s k))
    sweep_ops;
  ignore (Lfset.mem s 9)

let shadow_events arena =
  let st = Arena.stats arena in
  st.Stats.nt_stores + st.Stats.flushes

let test_crash_sweep () =
  (* Dry run: count the persistence events of an uninterrupted trace. *)
  let events =
    let arena, alloc = fresh () in
    let s = Lfset.create ~nbuckets:4 ~nthreads:1 alloc in
    let before = shadow_events arena in
    run_sweep_workload s;
    shadow_events arena - before
  in
  check_bool "workload persists something" true (events > 0);
  let tried = ref 0 in
  for k = 1 to events do
    let arena, alloc = fresh () in
    let s = Lfset.create ~nbuckets:4 ~nthreads:1 alloc in
    let base = Lfset.base s in
    Arena.arm_crash arena ~after:(k - 1);
    (match run_sweep_workload s with
    | () -> ()
    | exception Arena.Crash -> ());
    Arena.disarm_crash arena;
    if Arena.crashed arena then begin
      incr tried;
      let alloc2 = Alloc.recover arena in
      let san = San.attach ~mode:San.Collect arena in
      let s2 = Lfset.attach alloc2 ~base in
      check_int
        (Fmt.str "k=%d: recovery is sanitizer-clean" k)
        0
        (List.length (San.violations san));
      San.detach san;
      let got = Lfset.bindings s2 in
      (* Durable linearizability: the recovered contents are a prefix of
         the op sequence, and the announcement decides which one. *)
      (match Lfset.announcement s2 ~thread:0 with
      | None ->
          check_ints (Fmt.str "k=%d: pre-first-op state" k) sweep_states.(0)
            got
      | Some a ->
          let seq = a.Lfset.an_seq in
          check_bool
            (Fmt.str "k=%d: announced seq %d in range" k seq)
            true
            (seq >= 1 && seq <= Array.length sweep_ops);
          let eff = Option.get (Lfset.op_took_effect s2 ~thread:0) in
          (match a.Lfset.an_status with
          | Lfset.Done r ->
              (* Announced-completed op: its result and its state must
                 both have survived — no completed op may be lost. *)
              check_bool
                (Fmt.str "k=%d: done result matches model" k)
                true
                (r = sweep_results.(seq - 1));
              check_bool
                (Fmt.str "k=%d: oracle agrees with done result" k)
                true
                (Some r = Lfset.op_took_effect s2 ~thread:0);
              check_ints
                (Fmt.str "k=%d: state after completed op %d" k seq)
                sweep_states.(seq) got
          | Lfset.In_progress ->
              let expect =
                if eff then sweep_states.(seq) else sweep_states.(seq - 1)
              in
              check_ints
                (Fmt.str "k=%d: in-flight op %d decided by oracle (%b)" k seq
                   eff)
                expect got));
      (* The recovered set must stay fully operational. *)
      check_bool "post-recovery insert" true (Lfset.insert s2 1000);
      check_bool "post-recovery mem" true (Lfset.mem s2 1000)
    end
  done;
  check_bool "sweep hit crash points" true (!tried > 0)

(* The enumerator drives the same argument through every fence-boundary
   *subset* of surviving dirty lines, not just whole-cache crashes. *)
let test_enumerate_prefixes () =
  let arena, alloc = fresh ~size:(256 * 1024) () in
  let base = ref 0 in
  let prefixes = Array.to_list sweep_states in
  let stats =
    Enum.run ~at_every_event:true arena
      ~workload:(fun () ->
        let s = Lfset.create ~nbuckets:4 ~nthreads:1 alloc in
        base := Lfset.base s;
        run_sweep_workload s)
      ~recover:(fun crashed ->
        let alloc = Alloc.recover crashed in
        match Lfset.attach alloc ~base:!base with
        | s -> Lfset.bindings s
        | exception Lfset.Mismatch _ -> [])
      ~check:(fun ks ->
        if List.mem ks prefixes then None
        else
          Some
            (Fmt.str "recovered {%a}: not a prefix"
               Fmt.(list ~sep:comma int)
               ks))
  in
  check_bool "enumerated some states" true (stats.Enum.crash_states > 0)

(* ------------------------------------------------------------------ *)
(* Detectability without a crash                                       *)
(* ------------------------------------------------------------------ *)

let test_announcements () =
  let _, alloc = fresh () in
  let s = Lfset.create ~nbuckets:4 ~nthreads:2 alloc in
  check_bool "no announcement yet" true (Lfset.announcement s ~thread:1 = None);
  ignore (Lfset.insert ~thread:1 s 42);
  (match Lfset.announcement s ~thread:1 with
  | Some
      {
        Lfset.an_seq = 1;
        an_op = `Insert;
        an_key = 42;
        an_status = Lfset.Done true;
        _;
      } ->
      ()
  | _ -> Alcotest.fail "unexpected announcement after insert");
  check_bool "oracle: done-true" true
    (Lfset.op_took_effect s ~thread:1 = Some true);
  ignore (Lfset.insert ~thread:1 s 42);
  (match Lfset.announcement s ~thread:1 with
  | Some { Lfset.an_seq = 2; an_status = Lfset.Done false; _ } -> ()
  | _ -> Alcotest.fail "duplicate insert not announced as done-false");
  check_bool "other thread unaffected" true
    (Lfset.announcement s ~thread:0 = None)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "lfset"
    [
      ( "functional",
        [ tc "basic" `Quick test_basic; tc "many keys" `Quick test_many_keys ]
      );
      ( "attach",
        [
          tc "roundtrip" `Quick test_attach_roundtrip;
          tc "rejects garbage" `Quick test_attach_rejects_garbage;
        ] );
      ( "concurrent",
        [
          tc "disjoint ranges exact" `Quick test_concurrent_disjoint;
          tc "contended, race-free" `Quick test_concurrent_contended_race_free;
        ] );
      ( "crash",
        [
          tc "sweep every persistence event" `Slow test_crash_sweep;
          tc "enumerate line subsets" `Slow test_enumerate_prefixes;
        ] );
      ("detectability", [ tc "announcements" `Quick test_announcements ]);
    ]
