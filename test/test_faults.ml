(* Fault-injection torture tests: the arbitrary-eviction adversary.

   With a {!Fault_model} attached, a crash persists a *random subset* of
   the dirty cachelines (instead of dropping them all) and every cached
   store may spontaneously write back a recently-dirtied line.  The WAL
   protocol must survive any such schedule; recovery must also survive
   in-place corruption of log records, truncating them via their CRC
   instead of raising. *)

open Rewind_nvm
open Rewind
module F = Rewind_benchlib.Faultcamp

let root_slot = 2

let configs =
  [
    ("1L-NFP", Rewind.config_1l_nfp);
    ("1L-FP", Rewind.config_1l_fp);
    ("2L-NFP", Rewind.config_2l_nfp);
    ("2L-FP", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple);
    ("batch8", Rewind.config_batch ());
  ]

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Small mixed script (6 txns over 8 cells, every third rolled back, one
   checkpoint) so that full crash-point enumeration stays cheap.  Values
   encode their writer as [tno * 100 + i]. *)
let script tm cells =
  for tno = 1 to 6 do
    let txn = Tm.begin_txn tm in
    for i = 0 to 1 do
      Tm.write tm txn
        ~addr:cells.((tno + i) mod 8)
        ~value:(Int64.of_int ((tno * 100) + i + 1))
    done;
    if tno mod 3 <> 0 then Tm.commit tm txn else Tm.rollback tm txn;
    if tno = 4 then Tm.checkpoint tm
  done

let fresh_setup cfg ~fault =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  Arena.set_fault_model arena fault;
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
  (arena, tm, cells)

let fault_of_mask mask_seed =
  (* Each mask seed is a different adversary: varying per-line survival
     probability, spontaneous evictions on the odd ones. *)
  Fault_model.create
    ~eviction_ppm:(if mask_seed land 1 = 1 then 50_000 else 0)
    ~crash_survival_ppm:(125_000 * ((mask_seed mod 8) + 1))
    ~seed:(0x5EED0 + mask_seed) ()

(* Post-recovery invariants: the log is empty, and every cell holds 0 or
   a value written by a transaction that was not rolled back. *)
let check_recovered ~ctx cfg arena cells =
  let alloc2 = Alloc.recover arena in
  let tm2 =
    try Tm.attach ~cfg alloc2 ~root_slot
    with e -> Alcotest.failf "%s: recovery raised %s" ctx (Printexc.to_string e)
  in
  if Log.length (Tm.log tm2) <> 0 then
    Alcotest.failf "%s: log not cleared after recovery" ctx;
  Array.iteri
    (fun idx c ->
      let v = Int64.to_int (Arena.read arena c) in
      if v <> 0 && v / 100 mod 3 = 0 then
        Alcotest.failf "%s: cell %d holds %d from rolled-back txn %d" ctx idx v
          (v / 100))
    cells;
  tm2

(* The tentpole sweep: every crash point x 8 eviction masks.  The event
   count depends on the mask (a spontaneous eviction can turn a later
   flush into a no-op), so it is measured per mask with the same seed. *)
let test_partial_eviction_sweep (name, cfg) () =
  for mask_seed = 0 to 7 do
    let events =
      let arena, tm, cells =
        fresh_setup cfg ~fault:(Some (fault_of_mask mask_seed))
      in
      let s0 =
        (Arena.stats arena).Stats.nt_stores + (Arena.stats arena).Stats.flushes
      in
      script tm cells;
      (Arena.stats arena).Stats.nt_stores
      + (Arena.stats arena).Stats.flushes - s0
    in
    for k = 0 to events + 2 do
      let arena, tm, cells =
        fresh_setup cfg ~fault:(Some (fault_of_mask mask_seed))
      in
      Arena.arm_crash arena ~after:k;
      (try
         script tm cells;
         Arena.disarm_crash arena
       with Arena.Crash -> ());
      if Arena.crashed arena then
        ignore
          (check_recovered
             ~ctx:(Fmt.str "%s mask %d crash %d" name mask_seed k)
             cfg arena cells)
    done
  done

(* Heavy spontaneous evictions with no crash: the adversary writing lines
   back early must never change what the program observes. *)
let test_eviction_transparency (name, cfg) () =
  let model_arena, model_tm, model_cells = fresh_setup cfg ~fault:None in
  script model_tm model_cells;
  let arena, tm, cells =
    fresh_setup cfg
      ~fault:
        (Some
           (Fault_model.create ~eviction_ppm:400_000 ~crash_survival_ppm:0
              ~seed:99 ()))
  in
  script tm cells;
  check_bool
    (Fmt.str "%s: evictions observed" name)
    true
    ((Arena.stats arena).Stats.evictions > 0);
  Array.iteri
    (fun i c ->
      Alcotest.(check int64)
        (Fmt.str "%s cell %d unchanged by evictions" name i)
        (Arena.read model_arena model_cells.(i))
        (Arena.read arena c))
    cells

(* Attach after a crash and require a structurally sound recovery: no
   exception, empty log.  Used by the white-box corruption tests, where a
   truncated record legitimately cannot be undone — so no assertion is
   made about user-cell contents. *)
let attach_ok ~ctx cfg arena =
  let alloc2 = Alloc.recover arena in
  let tm2 =
    try Tm.attach ~cfg alloc2 ~root_slot
    with e -> Alcotest.failf "%s: recovery raised %s" ctx (Printexc.to_string e)
  in
  if Log.length (Tm.log tm2) <> 0 then
    Alcotest.failf "%s: log not cleared after recovery" ctx;
  tm2

(* A corrupted (torn) log record must be truncated by its checksum during
   recovery, not replayed or crashed on.  One-layer configurations: the
   records are reachable from the bucket/ADLL log. *)
let test_corrupt_record_truncated (name, cfg) () =
  let arena, tm, cells = fresh_setup cfg ~fault:None in
  (* one committed transaction, one left in flight *)
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(0) ~value:42L;
  Tm.commit tm txn;
  let txn2 = Tm.begin_txn tm in
  Tm.write tm txn2 ~addr:cells.(1) ~value:43L;
  Tm.write tm txn2 ~addr:cells.(2) ~value:44L;
  Log.flush_group (Tm.log tm);
  let recs = Log.records (Tm.log tm) in
  check_bool (name ^ ": records present pre-crash") true (recs <> []);
  Arena.crash arena;
  (* corrupt the newest record in place: garbage address and values (for
     an inline pair, tear its second word) *)
  let r = List.hd (List.rev recs) in
  if Record.is_inline r then Arena.corrupt arena (Record.inline_pair r + 8) 8
  else Arena.corrupt arena (r + 24) 16;
  let tm2 = attach_ok ~ctx:(name ^ " corrupt") cfg arena in
  check_bool
    (name ^ ": torn record counted in stats")
    true
    ((Arena.stats arena).Stats.torn_records >= 1);
  match Tm.last_recovery tm2 with
  | None -> Alcotest.fail (name ^ ": no recovery report")
  | Some rep ->
      check_bool
        (name ^ ": report shows truncation")
        true (rep.Tm.torn_truncated >= 1)

(* Same, via a persistent media fault instead of one-shot corruption: the
   faulty line serves corrupted reads, so the checksum gate must reject
   the record on every pass of recovery. *)
let test_media_fault_record_truncated (name, cfg) () =
  let arena, tm, cells = fresh_setup cfg ~fault:None in
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(0) ~value:7L;
  Log.flush_group (Tm.log tm);
  let recs = Log.records (Tm.log tm) in
  check_bool (name ^ ": records present") true (recs <> []);
  Arena.crash arena;
  let fm = Fault_model.create ~seed:5 () in
  Fault_model.set_media_fault fm ~line:(List.hd recs / 64);
  Arena.set_fault_model arena (Some fm);
  ignore (attach_ok ~ctx:(name ^ " media fault") cfg arena);
  check_bool
    (name ^ ": media fault observed")
    true
    ((Arena.stats arena).Stats.media_faults >= 1)

(* ------------------------------------------------------------------ *)
(* Campaign determinism and health                                     *)
(* ------------------------------------------------------------------ *)

let test_campaign_deterministic () =
  let s1 = F.schedule ~base_seed:7 ~seeds:3 () in
  let s2 = F.schedule ~base_seed:7 ~seeds:3 () in
  check_bool "same schedule for same seed" true (s1 = s2);
  check_int "schedule digest stable" (F.schedule_digest s1)
    (F.schedule_digest s2);
  let v1 = List.map F.run_trial s1 in
  let v2 = List.map F.run_trial s2 in
  check_bool "same verdicts for same schedule" true (v1 = v2);
  let s3 = F.schedule ~base_seed:8 ~seeds:3 () in
  check_bool "different seed, different schedule" true (s1 <> s3)

let test_campaign_passes () =
  let r = F.run_campaign ~quiet:true ~base_seed:42 ~seeds:4 () in
  check_int "trials run" (4 * List.length configs) r.F.trials;
  (match r.F.failures with
  | [] -> ()
  | (t, msg) :: _ ->
      Alcotest.failf "campaign failure: %a (%s)" F.pp_trial t msg);
  check_bool "no failures" true (r.F.failures = [])

let () =
  let tc = Alcotest.test_case in
  let per_config ?(filter = fun _ -> true) name speed f =
    List.filter_map
      (fun (cn, cfg) ->
        if filter cfg then
          Some (tc (name ^ " [" ^ cn ^ "]") speed (f (cn, cfg)))
        else None)
      configs
  in
  let one_layer cfg = cfg.Tm.layers = Tm.One_layer in
  Alcotest.run "faults"
    [
      ( "partial-eviction-sweep",
        per_config "crash everywhere x 8 masks" `Slow test_partial_eviction_sweep
      );
      ( "eviction-transparency",
        per_config "evictions invisible to reads" `Quick
          test_eviction_transparency );
      ( "torn-records",
        per_config ~filter:one_layer "corrupt record truncated" `Quick
          test_corrupt_record_truncated
        @ per_config ~filter:one_layer "media-fault record truncated" `Quick
            test_media_fault_record_truncated );
      ( "campaign",
        [
          tc "deterministic schedules and verdicts" `Slow
            test_campaign_deterministic;
          tc "clean campaign" `Slow test_campaign_passes;
        ] );
    ]
