(* Tests for the three log implementations (Simple / Optimized / Batch):
   append/iterate/remove behaviour, batch persistence semantics, cost
   properties, and post-crash reattachment. *)

open Rewind_nvm
open Rewind

let variants =
  [ ("simple", Log.Simple); ("optimized", Log.Optimized); ("batch8", Log.Batch 8) ]

let fresh () =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  let alloc = Alloc.create arena in
  (arena, alloc)

let mk_record alloc ~lsn ~txn =
  Record.make alloc ~lsn ~txn ~typ:Record.Update ~addr:(8 * lsn)
    ~old_value:0L ~new_value:(Int64.of_int lsn) ~undo_next:0 ~prev_same_txn:0

let lsns arena log =
  let acc = ref [] in
  Log.iter log (fun r -> acc := Record.lsn arena r :: !acc);
  List.rev !acc

let lsns_back arena log =
  let acc = ref [] in
  Log.iter_back log (fun r -> acc := Record.lsn arena r :: !acc);
  List.rev !acc

let check_list = Alcotest.(check (list int))
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Behaviour shared by all variants                                    *)
(* ------------------------------------------------------------------ *)

let test_append_iterate variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 10 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  check_list "forward order" (List.init 10 (fun i -> i + 1)) (lsns arena log);
  check_list "backward order"
    (List.rev (List.init 10 (fun i -> i + 1)))
    (lsns_back arena log);
  check_int "length" 10 (Log.length log)

let test_remove_where variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 10 do
    Log.append log (mk_record alloc ~lsn:i ~txn:(i mod 2))
  done;
  Log.remove_where log (fun r -> Record.txn arena r = 0);
  check_list "odd lsns remain" [ 1; 3; 5; 7; 9 ] (lsns arena log)

let test_remove_all_then_append variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 9 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  Log.remove_where log (fun _ -> true);
  check_int "empty" 0 (Log.length log);
  Log.append log (mk_record alloc ~lsn:42 ~txn:1);
  check_list "usable after emptying" [ 42 ] (lsns arena log)

let test_clear_all variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 10 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  Log.clear_all log;
  check_int "cleared" 0 (Log.length log);
  Log.append log (mk_record alloc ~lsn:5 ~txn:1);
  check_list "fresh log usable" [ 5 ] (lsns arena log)

(* Reattach after a clean crash: everything persistent must reappear and
   the cursor must allow further appends. *)
let test_crash_reattach variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 10 do
    Log.append ~is_end:(i = 10) log (mk_record alloc ~lsn:i ~txn:1)
  done;
  Arena.crash arena;
  let alloc = Alloc.recover arena in
  let log2 = Log.attach variant ~bucket_cap:4 alloc ~root_slot:2 in
  check_list "records recovered" (List.init 10 (fun i -> i + 1)) (lsns arena log2);
  Log.append log2 (mk_record alloc ~lsn:11 ~txn:1);
  check_list "append after recovery"
    (List.init 11 (fun i -> i + 1))
    (lsns arena log2)

(* ------------------------------------------------------------------ *)
(* Batch-specific persistence semantics                                *)
(* ------------------------------------------------------------------ *)

(* Records beyond the last group fence are lost by a crash — and recovery
   must not see them. *)
let test_batch_untrusted_tail () =
  let arena, alloc = fresh () in
  let log = Log.create (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  for i = 1 to 11 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  (* group of 8 persisted; 9..11 pending *)
  check_int "pending" 3 (Log.pending log);
  Arena.crash arena;
  let alloc = Alloc.recover arena in
  let log2 = Log.attach (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  check_list "only fenced prefix survives"
    (List.init 8 (fun i -> i + 1))
    (lsns arena log2)

let test_batch_end_forces () =
  let arena, alloc = fresh () in
  let log = Log.create (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  for i = 1 to 3 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  Log.append ~is_end:true log (mk_record alloc ~lsn:4 ~txn:1);
  check_int "nothing pending after END" 0 (Log.pending log);
  Arena.crash arena;
  let alloc = Alloc.recover arena in
  let log2 = Log.attach (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  check_list "all survive thanks to END" [ 1; 2; 3; 4 ] (lsns arena log2)

let test_batch_flush_group () =
  let arena, alloc = fresh () in
  let log = Log.create (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  for i = 1 to 5 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  Log.flush_group log;
  Arena.crash arena;
  let alloc = Alloc.recover arena in
  let log2 = Log.attach (Log.Batch 8) ~bucket_cap:100 alloc ~root_slot:2 in
  check_list "explicit flush persists tail" [ 1; 2; 3; 4; 5 ] (lsns arena log2)

(* ------------------------------------------------------------------ *)
(* Cost properties                                                     *)
(* ------------------------------------------------------------------ *)

(* The whole point of Batch: one fence per [group] records instead of one
   per record. *)
let test_fence_counts () =
  let count variant =
    let arena, alloc = fresh () in
    let log = Log.create variant ~bucket_cap:1000 alloc ~root_slot:2 in
    let before = (Arena.stats arena).Stats.fences in
    for i = 1 to 64 do
      Log.append log (mk_record alloc ~lsn:i ~txn:1)
    done;
    (Arena.stats arena).Stats.fences - before
  in
  let opt = count Log.Optimized in
  let batch = count (Log.Batch 8) in
  check_int "optimized: one fence per record" 64 opt;
  check_int "batch: one fence per group" 8 batch

let test_batch_cheaper_than_optimized_than_simple () =
  let cost variant =
    let arena, alloc = fresh () in
    let log = Log.create variant ~bucket_cap:1000 alloc ~root_slot:2 in
    Clock.reset ();
    for i = 1 to 256 do
      Log.append log (mk_record alloc ~lsn:i ~txn:1)
    done;
    ignore arena;
    Clock.now ()
  in
  let simple = cost Log.Simple in
  let opt = cost Log.Optimized in
  let batch = cost (Log.Batch 8) in
  check_bool "optimized beats simple" true (opt < simple);
  check_bool "batch beats optimized" true (batch < opt)

(* ------------------------------------------------------------------ *)
(* Crash-point property                                                *)
(* ------------------------------------------------------------------ *)

(* After a crash at any point, reattachment yields a prefix of the appended
   records (modulo batch groups), iteration works and further appends
   succeed. *)
let prop_crash_prefix variant =
  QCheck.Test.make
    ~name:(Fmt.str "%a: crash leaves a clean prefix" Log.pp_variant variant)
    ~count:150
    QCheck.(int_bound 400)
    (fun crash_after ->
      let arena, alloc = fresh () in
      let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
      Arena.arm_crash arena ~after:crash_after;
      (try
         for i = 1 to 30 do
           Log.append log (mk_record alloc ~lsn:i ~txn:1)
         done;
         Arena.disarm_crash arena
       with Arena.Crash -> ());
      Arena.disarm_crash arena;
      if Arena.crashed arena then begin
        let alloc = Alloc.recover arena in
        let log2 = Log.attach variant ~bucket_cap:4 alloc ~root_slot:2 in
        let ls = lsns arena log2 in
        let expected_prefix = List.init (List.length ls) (fun i -> i + 1) in
        ls = expected_prefix
        && begin
             Log.append log2 (mk_record alloc ~lsn:999 ~txn:1);
             let ls' = lsns arena log2 in
             ls' = expected_prefix @ [ 999 ]
           end
      end
      else true)

(* ------------------------------------------------------------------ *)
(* Occupancy-cache and clearing lifecycle                              *)
(* ------------------------------------------------------------------ *)

(* Regression: [clear_all] must de-allocate *everything* the old log
   holds, including Batch records that were appended but whose slot
   group never persisted.  The old code sized its de-allocation scan of
   the current bucket from the durable last-persistent-index word, so
   every pending record leaked on wholesale clearing — which is exactly
   the path recovery takes ([Tm] clears the log after undo). *)
let test_clear_all_frees_pending variant () =
  let _arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:100 alloc ~root_slot:2 in
  let baseline = Alloc.live_bytes alloc in
  for i = 1 to 11 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  (* under Batch 8, records 9..11 sit in an unpersisted slot group *)
  check_bool "grew" true (Alloc.live_bytes alloc > baseline);
  Log.clear_all log;
  check_int "clear_all freed every record, persisted or pending" baseline
    (Alloc.live_bytes alloc);
  check_int "log empty" 0 (Log.length log)

(* The volatile occupancy cells must stay coherent with the durable
   layout through every clearing path: selective removal, wholesale
   clearing, compaction, and reattachment.  [check_occupancy] recounts
   the durable image and reports mismatches. *)
let occupancy_clean name log =
  match Log.check_occupancy log with
  | [] -> ()
  | ms ->
      Alcotest.failf "%s: occupancy cache diverged: %s" name
        (String.concat "; "
           (List.map
              (fun (b, cached, actual) ->
                Fmt.str "bucket %d cached %d actual %d" b cached actual)
              ms))

let test_occupancy_lifecycle variant () =
  let arena, alloc = fresh () in
  let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
  for i = 1 to 20 do
    Log.append log (mk_record alloc ~lsn:i ~txn:(i mod 3))
  done;
  occupancy_clean "after append" log;
  Log.remove_where log (fun r -> Record.txn arena r = 0);
  occupancy_clean "after remove_where" log;
  Log.remove_where log (fun r -> Record.txn arena r = 1);
  occupancy_clean "after second remove_where" log;
  (* ~7 survivors over buckets sized for 20: force the copy *)
  Log.compact ~threshold:1.0 log;
  occupancy_clean "after compact" log;
  let survivors = lsns arena log in
  check_list "compaction preserved the survivors"
    (List.filter (fun l -> l mod 3 = 2) (List.init 20 (fun i -> i + 1)))
    survivors;
  Log.append log (mk_record alloc ~lsn:100 ~txn:2);
  occupancy_clean "after post-compact append" log;
  (* the rebuilt-from-durable occupancy must agree too *)
  Log.flush_group log;
  Arena.crash arena;
  let alloc = Alloc.recover arena in
  let log2 = Log.attach variant ~bucket_cap:4 alloc ~root_slot:2 in
  occupancy_clean "after reattach" log2;
  check_list "records survive the round trip" (survivors @ [ 100 ])
    (lsns arena log2)

(* Property: a random interleaving of appends, selective removals, group
   flushes and compactions never desynchronises the occupancy cache. *)
let prop_occupancy_coherent variant =
  QCheck.Test.make
    ~name:(Fmt.str "%a: occupancy cache coherent" Log.pp_variant variant)
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let arena, alloc = fresh () in
      let log = Log.create variant ~bucket_cap:4 alloc ~root_slot:2 in
      let state = ref (seed + 1) in
      let rand bound =
        state := (!state * 1103515245) + 12345;
        (!state lsr 16) mod bound
      in
      let lsn = ref 0 in
      for _ = 1 to 60 do
        match rand 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 ->
            incr lsn;
            Log.append ~is_end:(rand 4 = 0) log
              (mk_record alloc ~lsn:!lsn ~txn:(rand 3))
        | 6 | 7 ->
            let t = rand 3 in
            Log.remove_where log (fun r -> Record.txn arena r = t)
        | 8 -> Log.flush_group log
        | _ -> Log.compact ~threshold:(float_of_int (rand 11) /. 10.) log
      done;
      Log.check_occupancy log = [])

let () =
  let tc = Alcotest.test_case in
  let per_variant name f =
    List.map (fun (vn, v) -> tc (name ^ " (" ^ vn ^ ")") `Quick (f v)) variants
  in
  Alcotest.run "log"
    [
      ("append-iterate", per_variant "append/iterate" test_append_iterate);
      ("remove", per_variant "remove_where" test_remove_where);
      ("empty-refill", per_variant "remove all then append" test_remove_all_then_append);
      ("clear-all", per_variant "clear_all" test_clear_all);
      ( "occupancy-cache",
        per_variant "clear_all frees pending" test_clear_all_frees_pending
        @ per_variant "lifecycle coherence" test_occupancy_lifecycle
        @ List.map
            (fun (_, v) -> QCheck_alcotest.to_alcotest (prop_occupancy_coherent v))
            variants );
      ("crash-reattach", per_variant "crash reattach" test_crash_reattach);
      ( "batch-semantics",
        [
          tc "untrusted tail dropped" `Quick test_batch_untrusted_tail;
          tc "END forces persistence" `Quick test_batch_end_forces;
          tc "flush_group persists tail" `Quick test_batch_flush_group;
        ] );
      ( "costs",
        [
          tc "fence counts" `Quick test_fence_counts;
          tc "variant ordering" `Quick test_batch_cheaper_than_optimized_than_simple;
        ] );
      ( "properties",
        List.map
          (fun (_, v) -> QCheck_alcotest.to_alcotest (prop_crash_prefix v))
          variants );
    ]
