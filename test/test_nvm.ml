(* Tests for the NVM substrate: arena cache/durability semantics, crash
   behaviour, crash injection, cost accounting, allocator, block device. *)

open Rewind_nvm

let arena ?(size = 1 lsl 20) () = Arena.create ~size_bytes:size ()

let check_i64 = Alcotest.(check int64)
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Arena: cache and durability semantics                               *)
(* ------------------------------------------------------------------ *)

let test_cached_write_visible () =
  let a = arena () in
  Arena.write a 1024 42L;
  check_i64 "volatile view sees cached store" 42L (Arena.read a 1024);
  check_i64 "durable image does not" 0L (Arena.durable_read a 1024)

let test_cached_write_lost_on_crash () =
  let a = arena () in
  Arena.write a 1024 42L;
  Arena.crash a;
  check_i64 "cached store lost" 0L (Arena.read a 1024)

let test_flush_makes_durable () =
  let a = arena () in
  Arena.write a 1024 42L;
  Arena.flush_line a 1024;
  Arena.fence a;
  Arena.crash a;
  check_i64 "flushed store survives" 42L (Arena.read a 1024)

let test_nt_write_durable () =
  let a = arena () in
  Arena.nt_write a 2048 7L;
  Arena.crash a;
  check_i64 "non-temporal store survives" 7L (Arena.read a 2048)

let test_flush_line_covers_whole_line () =
  let a = arena () in
  (* Two words on the same 64-byte line. *)
  Arena.write a 1024 1L;
  Arena.write a 1032 2L;
  Arena.flush_line a 1024;
  Arena.crash a;
  check_i64 "first word" 1L (Arena.read a 1024);
  check_i64 "second word on same line" 2L (Arena.read a 1032)

let test_flush_all () =
  let a = arena () in
  Arena.write a 1024 1L;
  Arena.write a 409600 2L;
  Arena.flush_all a;
  Arena.crash a;
  check_i64 "line 1" 1L (Arena.read a 1024);
  check_i64 "line 2" 2L (Arena.read a 409600)

let test_nt_write_does_not_persist_neighbours () =
  let a = arena () in
  Arena.write a 1024 1L;      (* cached, same line as below *)
  Arena.nt_write a 1032 2L;   (* durable word store *)
  Arena.crash a;
  check_i64 "cached neighbour lost" 0L (Arena.read a 1024);
  check_i64 "nt word survives" 2L (Arena.read a 1032)

let test_dirty_tracking () =
  let a = arena () in
  check_bool "clean initially" false (Arena.is_dirty a 1024);
  Arena.write a 1024 1L;
  check_bool "dirty after store" true (Arena.is_dirty a 1024);
  Arena.flush_line a 1024;
  check_bool "clean after flush" false (Arena.is_dirty a 1024)

let test_bytes_roundtrip () =
  let a = arena () in
  Arena.write_bytes a 1024 "hello, nvm!";
  Alcotest.(check string) "bytes" "hello, nvm!" (Arena.read_bytes a 1024 11);
  Arena.flush_range a 1024 11;
  Arena.crash a;
  Alcotest.(check string) "bytes durable" "hello, nvm!" (Arena.read_bytes a 1024 11)

let test_bounds_check () =
  let a = arena ~size:4096 () in
  Alcotest.check_raises "oob read"
    (Invalid_argument "Arena: access [4095,4103) outside arena of 4096 bytes")
    (fun () -> ignore (Arena.read a 4095))

(* ------------------------------------------------------------------ *)
(* Arena: flush_range edge cases                                       *)
(* ------------------------------------------------------------------ *)

let test_flush_range_zero_length () =
  let a = arena () in
  Arena.write a 1024 1L;
  (* A zero-length flush touches nothing: not even a persistence event. *)
  Arena.arm_crash a ~after:0;
  Arena.flush_range a 1024 0;
  Arena.disarm_crash a;
  check_bool "no crash consumed" false (Arena.crashed a);
  Arena.crash a;
  check_i64 "store was not persisted" 0L (Arena.read a 1024)

let test_flush_range_crosses_line_boundary () =
  let a = arena () in
  Arena.write a 1016 1L;  (* last word of one line *)
  Arena.write a 1024 2L;  (* first word of the next *)
  Arena.flush_range a 1016 16;
  Arena.crash a;
  check_i64 "word before boundary" 1L (Arena.read a 1016);
  check_i64 "word after boundary" 2L (Arena.read a 1024)

let test_flush_range_tail_line_shorter_than_cacheline () =
  (* An arena whose size is not a multiple of the cacheline: the last
     line is short, and flushing it must not step out of bounds. *)
  let a = arena ~size:1000 () in
  Arena.write a 992 5L;  (* inside the 40-byte tail line *)
  Arena.flush_range a 960 40;
  Arena.crash a;
  check_i64 "tail line flushed" 5L (Arena.read a 992)

let test_flush_range_interior_clean_lines_free () =
  let a = arena () in
  Arena.write a 1024 1L;
  Arena.write a 1216 2L;  (* three clean lines in between *)
  (* Exactly two dirty lines -> exactly two persistence events. *)
  Arena.arm_crash a ~after:2;
  Arena.flush_range a 1024 200;
  Arena.disarm_crash a;
  check_bool "clean interior lines are not events" false (Arena.crashed a);
  Arena.crash a;
  check_i64 "first line" 1L (Arena.read a 1024);
  check_i64 "last line" 2L (Arena.read a 1216)

(* ------------------------------------------------------------------ *)
(* Arena: crash injection                                              *)
(* ------------------------------------------------------------------ *)

let test_crash_injection_counts_events () =
  let a = arena () in
  Arena.arm_crash a ~after:2;
  Arena.nt_write a 1024 1L;
  Arena.nt_write a 1032 2L;
  (try
     Arena.nt_write a 1040 3L;
     Alcotest.fail "expected crash"
   with Arena.Crash -> ());
  check_i64 "first survived" 1L (Arena.read a 1024);
  check_i64 "second survived" 2L (Arena.read a 1032);
  check_i64 "third never applied" 0L (Arena.read a 1040)

let test_crash_injection_on_flush () =
  let a = arena () in
  Arena.write a 1024 1L;
  Arena.arm_crash a ~after:0;
  (try
     Arena.flush_line a 1024;
     Alcotest.fail "expected crash"
   with Arena.Crash -> ());
  check_i64 "flush interrupted, store lost" 0L (Arena.read a 1024)

let test_disarm () =
  let a = arena () in
  Arena.arm_crash a ~after:0;
  Arena.disarm_crash a;
  Arena.nt_write a 1024 1L;
  check_i64 "no crash after disarm" 1L (Arena.read a 1024)

let test_clean_flush_is_not_an_event () =
  let a = arena () in
  Arena.arm_crash a ~after:0;
  (* Flushing a clean line must not consume a crash budget event. *)
  Arena.flush_line a 1024;
  Arena.disarm_crash a;
  check_bool "no crash happened" false (Arena.crashed a)

let test_rearm_after_disarm () =
  let a = arena () in
  Arena.arm_crash a ~after:1;
  Arena.nt_write a 1024 1L;  (* consumes the countdown: 1 -> 0 *)
  Arena.disarm_crash a;
  Arena.nt_write a 1032 2L;  (* would have crashed if still armed *)
  Arena.arm_crash a ~after:0;
  (try
     Arena.nt_write a 1040 3L;
     Alcotest.fail "expected crash"
   with Arena.Crash -> ());
  check_i64 "pre-disarm store durable" 1L (Arena.read a 1024);
  check_i64 "post-disarm store durable" 2L (Arena.read a 1032);
  check_i64 "crashing store never applied" 0L (Arena.read a 1040)

let test_crash_event_not_double_counted () =
  (* The event that crashes happens *instead of* persisting; after
     clearing the crashed flag the countdown must be disarmed, so later
     persists proceed. *)
  let a = arena () in
  Arena.arm_crash a ~after:0;
  (try Arena.nt_write a 1024 1L with Arena.Crash -> ());
  Arena.clear_crashed a;
  Arena.nt_write a 1032 2L;
  check_i64 "arena usable after crash" 2L (Arena.read a 1032)

(* ------------------------------------------------------------------ *)
(* Arena: cost accounting                                              *)
(* ------------------------------------------------------------------ *)

let test_write_combining () =
  let a = arena () in
  Clock.reset ();
  let cfg = Arena.config a in
  (* Eight words on one cacheline: a single NVM write charge. *)
  for i = 0 to 7 do
    Arena.nt_write a (1024 + (8 * i)) (Int64.of_int i)
  done;
  check_int "one line charge" cfg.Config.nvm_write_ns (Clock.now ());
  check_int "one nvm write counted" 1 (Arena.stats a).Stats.nvm_writes

let test_fence_breaks_combining () =
  let a = arena () in
  Clock.reset ();
  let cfg = Arena.config a in
  Arena.nt_write a 1024 1L;
  Arena.fence a;
  Arena.nt_write a 1032 2L;
  check_int "two line charges plus fence"
    ((2 * cfg.Config.nvm_write_ns) + cfg.Config.fence_ns)
    (Clock.now ())

let test_distinct_lines_charged () =
  let a = arena () in
  Clock.reset ();
  let cfg = Arena.config a in
  Arena.nt_write a 1024 1L;
  Arena.nt_write a 2048 2L;
  check_int "two charges" (2 * cfg.Config.nvm_write_ns) (Clock.now ())

let test_cached_store_cost () =
  let a = arena () in
  Clock.reset ();
  let cfg = Arena.config a in
  Arena.write a 1024 1L;
  check_int "dram cost" cfg.Config.dram_write_ns (Clock.now ())

let test_write_bytes_charges_per_line () =
  let a = arena () in
  let cfg = Arena.config a in
  Clock.reset ();
  let s0 = (Arena.stats a).Stats.stores in
  (* 130 bytes starting on a line boundary: three lines touched. *)
  Arena.write_bytes a 1024 (String.make 130 'x');
  check_int "one store per line" 3 ((Arena.stats a).Stats.stores - s0);
  check_int "time per line" (3 * cfg.Config.dram_write_ns) (Clock.now ())

let test_read_bytes_charges_per_line () =
  let a = arena () in
  let cfg = Arena.config a in
  Clock.reset ();
  let l0 = (Arena.stats a).Stats.loads in
  (* 100 bytes straddling a boundary at offset 1000: lines 15..17. *)
  ignore (Arena.read_bytes a 1000 100);
  check_int "one load per line" 3 ((Arena.stats a).Stats.loads - l0);
  check_int "time per line" (3 * cfg.Config.dram_read_ns) (Clock.now ())

(* ------------------------------------------------------------------ *)
(* Fault model: evictions, partial crash survival, media faults, pins  *)
(* ------------------------------------------------------------------ *)

let test_fault_model_deterministic () =
  let seq () =
    let fm = Fault_model.create ~crash_survival_ppm:500_000 ~seed:9 () in
    List.init 200 (fun _ -> (Fault_model.survives_crash fm, Fault_model.choose fm 10))
  in
  check_bool "same seed, same rolls" true (seq () = seq ())

let test_partial_crash_survival () =
  let a = arena () in
  (* 100% survival: every dirty line persists at the crash. *)
  Arena.set_fault_model a
    (Some (Fault_model.create ~crash_survival_ppm:1_000_000 ~seed:1 ()));
  Arena.write a 1024 1L;
  Arena.write a 4096 2L;
  Arena.crash a;
  check_i64 "dirty line survived" 1L (Arena.read a 1024);
  check_i64 "other dirty line survived" 2L (Arena.read a 4096);
  check_int "survivals counted" 2 (Arena.stats a).Stats.crash_survivals

let test_zero_survival_is_classic_crash () =
  let a = arena () in
  Arena.set_fault_model a
    (Some (Fault_model.create ~crash_survival_ppm:0 ~seed:1 ()));
  Arena.write a 1024 1L;
  Arena.crash a;
  check_i64 "all dirty lines lost" 0L (Arena.read a 1024)

let test_spontaneous_eviction () =
  let a = arena () in
  (* Evict on every cached store: the line becomes durable without any
     flush, silently. *)
  Arena.set_fault_model a
    (Some (Fault_model.create ~eviction_ppm:1_000_000 ~seed:3 ()));
  Arena.write a 1024 5L;
  check_i64 "evicted line is durable" 5L (Arena.durable_read a 1024);
  check_bool "eviction counted" true ((Arena.stats a).Stats.evictions >= 1);
  check_bool "evictions are not persistence events" true
    ((Arena.stats a).Stats.flushes = 0 && (Arena.stats a).Stats.nt_stores = 0)

let test_pinned_line_never_survives_crash () =
  let a = arena () in
  Arena.set_fault_model a
    (Some (Fault_model.create ~crash_survival_ppm:1_000_000 ~seed:1 ()));
  Arena.write a 1024 1L;
  Arena.pin_line a 4096;
  Arena.write a 4096 2L;
  Arena.crash a;
  check_i64 "unpinned dirty line survived" 1L (Arena.read a 1024);
  check_i64 "pinned line lost" 0L (Arena.read a 4096);
  check_bool "pin cleared by crash" false (Arena.is_pinned a 4096)

let test_pinned_line_not_evicted () =
  let a = arena () in
  Arena.set_fault_model a
    (Some (Fault_model.create ~eviction_ppm:1_000_000 ~seed:3 ()));
  Arena.pin_line a 1024;
  Arena.write a 1024 5L;
  check_i64 "pinned line not written back" 0L (Arena.durable_read a 1024);
  check_bool "still pinned and dirty" true
    (Arena.is_pinned a 1024 && Arena.is_dirty a 1024);
  (* Releasing the pin re-exposes the line to the adversary. *)
  Arena.unpin_line a 1024;
  Arena.write a 1032 6L;  (* same line: the store's eviction roll fires *)
  check_i64 "released line evicted" 5L (Arena.durable_read a 1024)

let test_flush_clears_pin () =
  let a = arena () in
  Arena.pin_line a 1024;
  Arena.write a 1024 9L;
  Arena.flush_line a 1024;
  check_bool "explicit flush unpins" false (Arena.is_pinned a 1024);
  check_i64 "and persists" 9L (Arena.durable_read a 1024)

let test_media_fault_corrupts_reads () =
  let a = arena () in
  let fm = Fault_model.create ~seed:4 () in
  Arena.set_fault_model a (Some fm);
  Arena.nt_write a 1024 7L;
  Fault_model.set_media_fault fm ~line:(1024 / 64);
  check_bool "read corrupted" true (Arena.read a 1024 <> 7L);
  check_bool "media fault counted" true ((Arena.stats a).Stats.media_faults >= 1);
  check_i64 "durable image untouched" 7L (Arena.durable_read a 1024);
  Fault_model.clear_media_fault fm ~line:(1024 / 64);
  check_i64 "read clean after clearing" 7L (Arena.read a 1024)

let test_crc32_known_vector () =
  (* The standard IEEE 802.3 check value. *)
  check_int "crc32(123456789)" 0xCBF43926 (Crc32.digest "123456789");
  check_int "crc32 of empty" 0 (Crc32.digest "");
  check_int "digest_sub agrees" (Crc32.digest "456")
    (Crc32.digest_sub "123456789" 3 3)

(* ------------------------------------------------------------------ *)
(* Roots                                                               *)
(* ------------------------------------------------------------------ *)

let test_roots_survive_crash () =
  let a = arena () in
  Arena.root_set a 5 12345L;
  Arena.crash a;
  check_i64 "root durable" 12345L (Arena.root_get a 5)

let test_bad_root_slot () =
  let a = arena () in
  Alcotest.check_raises "slot 0 reserved" (Invalid_argument "Arena: bad root slot")
    (fun () -> ignore (Arena.root_get a 0))

(* ------------------------------------------------------------------ *)
(* Allocator                                                           *)
(* ------------------------------------------------------------------ *)

let test_alloc_distinct () =
  let a = arena () in
  let al = Alloc.create a in
  let x = Alloc.alloc al 24 and y = Alloc.alloc al 24 in
  check_bool "distinct" true (x <> y);
  check_bool "disjoint" true (abs (x - y) >= 24)

let test_alloc_aligned () =
  let a = arena () in
  let al = Alloc.create a in
  for _ = 1 to 20 do
    let off = Alloc.alloc al 13 in
    check_int "8-aligned" 0 (off land 7)
  done

let test_free_reuse () =
  let a = arena () in
  let al = Alloc.create a in
  let x = Alloc.alloc al 32 in
  Alloc.free al x 32;
  let y = Alloc.alloc al 32 in
  check_int "freed block reused" x y

let test_alloc_fresh_never_reuses () =
  let a = arena () in
  let al = Alloc.create a in
  let x = Alloc.alloc_fresh al 64 in
  Arena.nt_write a x 99L;
  Alloc.free al x 64;
  let y = Alloc.alloc_fresh al 64 in
  check_bool "fresh block is new space" true (x <> y);
  check_i64 "fresh block durably zero" 0L (Arena.durable_read a y)

let test_cursor_survives_crash () =
  let a = arena () in
  let al = Alloc.create a in
  let x = Alloc.alloc al 64 in
  Arena.crash a;
  let al2 = Alloc.recover a in
  let y = Alloc.alloc al2 64 in
  check_bool "no overlap with pre-crash allocation" true (y >= x + 64)

let test_out_of_memory () =
  let a = arena ~size:2048 () in
  let al = Alloc.create a in
  Alcotest.check_raises "oom" Alloc.Out_of_memory_arena (fun () ->
      for _ = 1 to 1000 do
        ignore (Alloc.alloc al 64)
      done)

(* Regressions for the [free] misuse checks: double frees and frees of
   never-allocated offsets used to silently push garbage onto the free
   list, corrupting later allocations. *)
let expect_misuse what f =
  match f () with
  | () -> Alcotest.failf "%s: expected Alloc.Misuse" what
  | exception Alloc.Misuse _ -> ()

let test_free_double () =
  let a = arena () in
  let al = Alloc.create a in
  let x = Alloc.alloc al 32 in
  Alloc.free al x 32;
  expect_misuse "double free" (fun () -> Alloc.free al x 32)

let test_free_never_allocated () =
  let a = arena () in
  let al = Alloc.create a in
  ignore (Alloc.alloc al 32);
  expect_misuse "never-allocated free" (fun () -> Alloc.free al 4096 32)

let test_free_size_mismatch () =
  let a = arena () in
  let al = Alloc.create a in
  let x = Alloc.alloc al 32 in
  expect_misuse "size mismatch" (fun () -> Alloc.free al x 64)

let test_free_after_recover () =
  (* A recovered allocator has no live map for pre-crash blocks: their
     first free must stay legal (recovery code returns old memory), but
     the *second* free of the same block is still a double free. *)
  let a = arena () in
  let al = Alloc.create a in
  let x = Alloc.alloc al 32 in
  Arena.crash a;
  let al2 = Alloc.recover a in
  Alloc.free al2 x 32;
  expect_misuse "double free after recovery" (fun () -> Alloc.free al2 x 32)

(* ------------------------------------------------------------------ *)
(* Block device                                                        *)
(* ------------------------------------------------------------------ *)

let test_block_roundtrip () =
  let d = Block_dev.create () in
  let b = Bytes.make (Block_dev.block_size d) 'x' in
  Block_dev.write d 3 b;
  Alcotest.(check bytes) "block read back" b (Block_dev.read d 3)

let test_block_absent_is_zero () =
  let d = Block_dev.create () in
  let b = Block_dev.read d 42 in
  check_bool "zeroed" true (Bytes.for_all (fun c -> c = '\000') b)

let test_block_cost_model () =
  let d = Block_dev.create ~syscall_ns:2500 () in
  Clock.reset ();
  Block_dev.write d 0 (Bytes.make 4096 'a');
  (* 4096/64 = 64 cachelines at 150 ns + 2500 ns syscall. *)
  check_int "write cost" (2500 + (64 * 150)) (Clock.now ())

let test_block_survives_crash () =
  let d = Block_dev.create () in
  Block_dev.write d 1 (Bytes.make 4096 'z');
  Block_dev.crash d;
  Alcotest.(check bytes) "durable" (Bytes.make 4096 'z') (Block_dev.read d 1)

(* ------------------------------------------------------------------ *)
(* Sim_mutex                                                           *)
(* ------------------------------------------------------------------ *)

let test_sim_mutex_serialises_time () =
  let m = Sim_mutex.create ~acquire_ns:0 () in
  Clock.reset ();
  Sim_mutex.with_lock m (fun () -> Clock.advance 100);
  (* A later acquirer whose clock is behind must be pulled forward. *)
  Clock.set 10;
  Sim_mutex.lock m;
  check_int "waited until release time" 100 (Clock.now ());
  Sim_mutex.unlock m

let test_sim_mutex_no_wait_when_ahead () =
  let m = Sim_mutex.create ~acquire_ns:0 () in
  Clock.reset ();
  Sim_mutex.with_lock m (fun () -> Clock.advance 50);
  Clock.set 500;
  Sim_mutex.lock m;
  check_int "no artificial wait" 500 (Clock.now ());
  Sim_mutex.unlock m

(* ------------------------------------------------------------------ *)
(* Properties                                                          *)
(* ------------------------------------------------------------------ *)

(* Durability property: a random mix of cached writes, NT writes, flushes
   and a final crash must leave exactly the persisted state visible. *)
let prop_durability =
  QCheck.Test.make ~name:"crash keeps persisted writes and only those" ~count:200
    QCheck.(list (pair (int_bound 63) (int_bound 1000)))
    (fun ops ->
      let a = arena ~size:8192 () in
      let durable = Hashtbl.create 16 and volatile = Hashtbl.create 16 in
      List.iter
        (fun (slot, v) ->
          let off = 1024 + (slot * 8) in
          let v = Int64.of_int v in
          if v < 300L then begin
            Arena.write a off v;
            Hashtbl.replace volatile off v
          end
          else if v < 600L then begin
            Arena.nt_write a off v;
            Hashtbl.replace volatile off v;
            Hashtbl.replace durable off v
          end
          else begin
            Arena.write a off v;
            Hashtbl.replace volatile off v;
            Arena.flush_line a off;
            (* the whole line persists *)
            let line = off land lnot 63 in
            Hashtbl.iter
              (fun o v -> if o land lnot 63 = line then Hashtbl.replace durable o v)
              volatile
          end)
        ops;
      Arena.crash a;
      Hashtbl.fold (fun off v acc -> acc && Arena.read a off = v) durable true)

let prop_alloc_disjoint =
  QCheck.Test.make ~name:"allocations never overlap" ~count:100
    QCheck.(list_of_size (Gen.int_range 1 50) (int_range 1 128))
    (fun sizes ->
      let a = arena ~size:(1 lsl 20) () in
      let al = Alloc.create a in
      let regions =
        List.map (fun s -> (Alloc.alloc al s, (s + 7) land lnot 7)) sizes
      in
      let rec disjoint = function
        | [] -> true
        | (o, s) :: rest ->
            List.for_all (fun (o', s') -> o + s <= o' || o' + s' <= o) rest
            && disjoint rest
      in
      disjoint regions)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "nvm"
    [
      ( "arena-durability",
        [
          tc "cached write visible" `Quick test_cached_write_visible;
          tc "cached write lost on crash" `Quick test_cached_write_lost_on_crash;
          tc "flush makes durable" `Quick test_flush_makes_durable;
          tc "nt write durable" `Quick test_nt_write_durable;
          tc "flush covers whole line" `Quick test_flush_line_covers_whole_line;
          tc "flush all" `Quick test_flush_all;
          tc "nt write does not persist neighbours" `Quick
            test_nt_write_does_not_persist_neighbours;
          tc "dirty tracking" `Quick test_dirty_tracking;
          tc "bytes roundtrip" `Quick test_bytes_roundtrip;
          tc "bounds check" `Quick test_bounds_check;
        ] );
      ( "arena-flush-range",
        [
          tc "zero length" `Quick test_flush_range_zero_length;
          tc "crosses line boundary" `Quick test_flush_range_crosses_line_boundary;
          tc "short tail line" `Quick
            test_flush_range_tail_line_shorter_than_cacheline;
          tc "clean interior lines free" `Quick
            test_flush_range_interior_clean_lines_free;
        ] );
      ( "arena-crash-injection",
        [
          tc "counts events" `Quick test_crash_injection_counts_events;
          tc "crash on flush" `Quick test_crash_injection_on_flush;
          tc "disarm" `Quick test_disarm;
          tc "clean flush is free" `Quick test_clean_flush_is_not_an_event;
          tc "rearm after disarm" `Quick test_rearm_after_disarm;
          tc "usable after injected crash" `Quick
            test_crash_event_not_double_counted;
        ] );
      ( "arena-costs",
        [
          tc "write combining" `Quick test_write_combining;
          tc "fence breaks combining" `Quick test_fence_breaks_combining;
          tc "distinct lines charged" `Quick test_distinct_lines_charged;
          tc "cached store cost" `Quick test_cached_store_cost;
          tc "write_bytes per line" `Quick test_write_bytes_charges_per_line;
          tc "read_bytes per line" `Quick test_read_bytes_charges_per_line;
        ] );
      ( "fault-model",
        [
          tc "deterministic rolls" `Quick test_fault_model_deterministic;
          tc "partial crash survival" `Quick test_partial_crash_survival;
          tc "zero survival = classic crash" `Quick
            test_zero_survival_is_classic_crash;
          tc "spontaneous eviction" `Quick test_spontaneous_eviction;
          tc "pinned line never survives crash" `Quick
            test_pinned_line_never_survives_crash;
          tc "pinned line not evicted" `Quick test_pinned_line_not_evicted;
          tc "flush clears pin" `Quick test_flush_clears_pin;
          tc "media fault corrupts reads" `Quick test_media_fault_corrupts_reads;
          tc "crc32 known vector" `Quick test_crc32_known_vector;
        ] );
      ( "roots",
        [
          tc "roots survive crash" `Quick test_roots_survive_crash;
          tc "bad root slot" `Quick test_bad_root_slot;
        ] );
      ( "alloc",
        [
          tc "distinct" `Quick test_alloc_distinct;
          tc "aligned" `Quick test_alloc_aligned;
          tc "free reuse" `Quick test_free_reuse;
          tc "fresh never reuses" `Quick test_alloc_fresh_never_reuses;
          tc "cursor survives crash" `Quick test_cursor_survives_crash;
          tc "out of memory" `Quick test_out_of_memory;
          tc "double free" `Quick test_free_double;
          tc "never-allocated free" `Quick test_free_never_allocated;
          tc "size-mismatch free" `Quick test_free_size_mismatch;
          tc "free after recovery" `Quick test_free_after_recover;
        ] );
      ( "block-dev",
        [
          tc "roundtrip" `Quick test_block_roundtrip;
          tc "absent is zero" `Quick test_block_absent_is_zero;
          tc "cost model" `Quick test_block_cost_model;
          tc "survives crash" `Quick test_block_survives_crash;
        ] );
      ( "sim-mutex",
        [
          tc "serialises time" `Quick test_sim_mutex_serialises_time;
          tc "no wait when ahead" `Quick test_sim_mutex_no_wait_when_ahead;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_durability;
          QCheck_alcotest.to_alcotest prop_alloc_disjoint;
        ] );
    ]
