(* Race-detector tests.

   Three claims:
   1. the detector *detects* — an intentionally unsynchronized shared
      counter and a store-vs-flush persist race each produce exactly the
      pinned report (site pair, fiber ids, event indices, held-lock
      sets), and Raise mode raises;
   2. the detector is *quiet* where synchronization exists — the same
      counter under a mutex, allocator free-list reuse across fibers,
      and the multi-writer transactional workload across the six
      standard configurations at 1/2/4 log partitions;
   3. Sim_mutex misuse is caught in fiber mode — double unlock and
      unlock-by-non-holder raise, and [holding] tracks ownership. *)

open Rewind_nvm
module R = Rewind_analysis.Racecheck

let race = Alcotest.testable R.pp_race ( = )

(* -- 1. detection, pinned reports --------------------------------------- *)

(* Two fibers increment one shared word with no synchronization: fiber
   1's read and write both race with fiber 0's write.  The whole report
   is pinned — fiber ids, scalar clocks, event indices into the combined
   stream, lock sets — so any drift in event emission or vector-clock
   bookkeeping shows up here. *)
let test_counter_race () =
  let arena = Arena.create ~size_bytes:(1 lsl 20) () in
  let w = 4096 in
  let rc = R.attach ~mode:Collect arena in
  ignore
    (Sim_threads.run ~threads:2 ~ops_per_thread:2 (fun _ _ ->
         let v = Arena.read arena w in
         Arena.write arena w (Int64.add v 1L)));
  R.detach rc;
  let expected =
    [
      {
        R.kind = R.Write_read;
        addr = w;
        len = 8;
        prev = { R.fiber = 0; clock = 2; event_no = 5; locks = [] };
        cur = { R.fiber = 1; clock = 2; event_no = 7; locks = [] };
      };
      {
        R.kind = R.Write_write;
        addr = w;
        len = 8;
        prev = { R.fiber = 0; clock = 2; event_no = 5; locks = [] };
        cur = { R.fiber = 1; clock = 2; event_no = 8; locks = [] };
      };
    ]
  in
  Alcotest.(check (list race)) "pinned counter report" expected (R.races rc)

(* A cached store by fiber 0 and a write-back of its line by fiber 1,
   with no happens-before edge: the durable prefix depends on the
   schedule.  One pinned persist-race report at line granularity. *)
let test_persist_race () =
  let arena = Arena.create ~size_bytes:(1 lsl 20) () in
  let w = 8192 in
  let rc = R.attach ~mode:Collect arena in
  ignore
    (Sim_threads.run ~threads:2 ~ops_per_thread:1 (fun t _ ->
         if t = 0 then Arena.write arena w 42L else Arena.flush_line arena w));
  R.detach rc;
  let expected =
    [
      {
        R.kind = R.Persist_order;
        addr = w;
        len = 64;
        prev = { R.fiber = 0; clock = 2; event_no = 4; locks = [] };
        cur = { R.fiber = 1; clock = 2; event_no = 6; locks = [] };
      };
    ]
  in
  Alcotest.(check (list race)) "pinned persist report" expected (R.races rc)

(* Lock sets appear in reports: a one-sided lock does not synchronize,
   but the report shows who held what — the self-diagnosing part. *)
let test_lockset_in_report () =
  let arena = Arena.create ~size_bytes:(1 lsl 20) () in
  let mu = Sim_mutex.create () in
  let w = 4096 in
  let rc = R.attach ~mode:Collect arena in
  ignore
    (Sim_threads.run ~threads:2 ~ops_per_thread:1 (fun t _ ->
         if t = 0 then Arena.write arena w 1L
         else Sim_mutex.with_lock mu (fun () -> Arena.write arena w 2L)));
  R.detach rc;
  match R.races rc with
  | [ r ] ->
      Alcotest.(check (list int)) "prev holds nothing" [] r.R.prev.R.locks;
      Alcotest.(check (list int))
        "cur holds the mutex"
        [ Sim_mutex.id mu ]
        r.R.cur.R.locks
  | rs -> Alcotest.failf "expected exactly one race, got %d" (List.length rs)

let test_raise_mode () =
  let arena = Arena.create ~size_bytes:(1 lsl 20) () in
  let raised = ref false in
  (try
     R.with_racecheck arena (fun _rc ->
         ignore
           (Sim_threads.run ~threads:2 ~ops_per_thread:1 (fun _ _ ->
                Arena.write arena 4096 1L)))
   with R.Race r ->
     raised := true;
     Alcotest.(check bool)
       "write-write" true
       (r.R.kind = R.Write_write));
  Alcotest.(check bool) "raised" true !raised

(* -- 2. quiet where synchronized ---------------------------------------- *)

let test_locked_counter_clean () =
  let arena = Arena.create ~size_bytes:(1 lsl 20) () in
  let mu = Sim_mutex.create () in
  let w = 4096 in
  let rc = R.attach ~mode:Collect arena in
  ignore
    (Sim_threads.run ~threads:4 ~ops_per_thread:8 (fun _ _ ->
         Sim_mutex.with_lock mu (fun () ->
             let v = Arena.read arena w in
             Arena.write arena w (Int64.add v 1L))));
  R.detach rc;
  Alcotest.(check (list race)) "no races" [] (R.races rc);
  Alcotest.(check int64) "all increments" 32L (Arena.read arena w)

(* Free-list reuse: fiber 0 writes and frees a block, fiber 1 reallocates
   and rewrites it.  The allocator's internal lock is the only edge. *)
let test_alloc_reuse_clean () =
  let arena = Arena.create ~size_bytes:(1 lsl 20) () in
  let alloc = Alloc.create arena in
  let rc = R.attach ~mode:Collect arena in
  ignore
    (Sim_threads.run ~threads:2 ~ops_per_thread:4 (fun t _ ->
         let off = Alloc.alloc alloc 32 in
         Arena.write arena off (Int64.of_int t);
         Clock.advance 100;
         Alloc.free alloc off 32));
  R.detach rc;
  Alcotest.(check (list race)) "no races" [] (R.races rc)

let multi_writer_clean (name, cfg) partitions () =
  let rc = Rewind_benchlib.Race_workloads.multi_writer ~threads:4 ~partitions ~cfg () in
  Alcotest.(check (list race))
    (Fmt.str "%s p%d clean" name partitions)
    [] (R.races rc);
  Alcotest.(check bool) "saw events" true (R.events_seen rc > 0)

let checkpoint_clean () =
  let rc =
    Rewind_benchlib.Race_workloads.concurrent_checkpoint ~partitions:2
      ~cfg:Rewind.config_1l_nfp ()
  in
  Alcotest.(check (list race)) "checkpoint clean" [] (R.races rc)

(* -- 3. Sim_mutex misuse ------------------------------------------------ *)

let misuse f =
  match
    Sim_threads.run ~threads:2 ~ops_per_thread:1 (fun t _ -> f t)
  with
  | exception Sim_mutex.Misuse _ -> ()
  | _ -> Alcotest.fail "expected Sim_mutex.Misuse"

let test_double_unlock () =
  let mu = Sim_mutex.create () in
  misuse (fun t ->
      if t = 0 then begin
        Sim_mutex.lock mu;
        Sim_mutex.unlock mu;
        Sim_mutex.unlock mu
      end)

let test_unlock_by_non_holder () =
  let mu = Sim_mutex.create () in
  misuse (fun t -> if t = 0 then Sim_mutex.lock mu else Sim_mutex.unlock mu)

let test_contention_free_misuse () =
  let mu = Sim_mutex.create ~contention_free:true () in
  misuse (fun t ->
      if t = 0 then begin
        Sim_mutex.lock mu;
        Sim_mutex.unlock mu;
        Sim_mutex.unlock mu
      end)

let test_holding () =
  let mu = Sim_mutex.create () in
  let seen = ref [] in
  ignore
    (Sim_threads.run ~threads:2 ~ops_per_thread:1 (fun t _ ->
         if t = 0 then
           Sim_mutex.with_lock mu (fun () ->
               seen := ("inside", Sim_mutex.holding mu) :: !seen)
         else seen := ("other", Sim_mutex.holding mu) :: !seen));
  Alcotest.(check bool) "released" false (Sim_mutex.holding mu);
  List.iter
    (fun (where, held) ->
      Alcotest.(check bool) where (where = "inside") held)
    !seen

let () =
  Alcotest.run "races"
    [
      ( "detect",
        [
          Alcotest.test_case "unsynchronized counter" `Quick test_counter_race;
          Alcotest.test_case "store vs flush" `Quick test_persist_race;
          Alcotest.test_case "lock sets in report" `Quick
            test_lockset_in_report;
          Alcotest.test_case "raise mode" `Quick test_raise_mode;
        ] );
      ( "quiet",
        [
          Alcotest.test_case "locked counter" `Quick test_locked_counter_clean;
          Alcotest.test_case "alloc reuse" `Quick test_alloc_reuse_clean;
          Alcotest.test_case "concurrent checkpoint" `Quick checkpoint_clean;
        ]
        @ List.concat_map
            (fun cfg ->
              List.map
                (fun p ->
                  Alcotest.test_case
                    (Fmt.str "multi-writer %s p%d" (fst cfg) p)
                    `Quick
                    (multi_writer_clean cfg p))
                [ 1; 2; 4 ])
            Rewind_benchlib.Race_workloads.configs );
      ( "sim-mutex misuse",
        [
          Alcotest.test_case "double unlock" `Quick test_double_unlock;
          Alcotest.test_case "unlock by non-holder" `Quick
            test_unlock_by_non_holder;
          Alcotest.test_case "contention-free double unlock" `Quick
            test_contention_free_misuse;
          Alcotest.test_case "holding accessor" `Quick test_holding;
        ] );
    ]
