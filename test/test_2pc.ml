(* Distributed REWIND: two-phase commit across independent simulated-NVM
   nodes.

   Layers under test, bottom up:

   1. the Tm participant surface: a PREPARE record makes a transaction
      in-doubt, in-doubt transactions survive recovery un-undone (and
      survive *repeated* recoveries), and resolve commits or aborts them
      durably;

   2. the cluster happy path: every transaction commits, the decision log
      is fully forgotten after the ACKs, values land on every
      participant;

   3. a lossy fabric: dropped votes/COMMITs/ACKs force retries and
      presumed aborts, and recovery still converges;

   4. the coordinator's worst case: crash after the decision is durable
      and before any COMMIT is sent — every participant in doubt, and
      recovery must commit them all from the decision log alone;

   5. the crash-everywhere sweep: every component (coordinator or any
      participant) crashed at every persistence event of a lossless and
      a lossy run, plus the after-decision states, all recovering to a
      globally consistent outcome with zero sanitizer violations. *)

open Rewind_nvm
open Rewind
module San = Rewind_analysis.Sanitizer
module Twopc = Rewind_dist.Twopc
module Bench = Rewind_benchlib.Twopc_bench

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let root_slot = 2

(* ------------------------------------------------------------------ *)
(* 1. Participant surface: PREPARE / in-doubt / resolve                *)
(* ------------------------------------------------------------------ *)

let test_prepare_survives_recovery (name, cfg) () =
  let arena = Arena.create ~size_bytes:(8 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cell_c = Alloc.alloc alloc 8 and cell_a = Alloc.alloc alloc 8 in
  (* one transaction prepared with gtid 41, one with 42 *)
  let t1 = Tm.begin_txn tm in
  Tm.write tm t1 ~addr:cell_c ~value:111L;
  Tm.prepare tm t1 ~gtid:41;
  let t2 = Tm.begin_txn tm in
  Tm.write tm t2 ~addr:cell_a ~value:222L;
  Tm.prepare tm t2 ~gtid:42;
  Arena.crash arena;
  (* first recovery: both still in doubt, writes not undone *)
  let alloc2 = Alloc.recover arena in
  let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  Alcotest.(check (list (pair int int)))
    (name ^ ": in doubt after recovery")
    [ (t1, 41); (t2, 42) ] (Tm.in_doubt tm2);
  (* a second crash before resolution: in-doubt state is stable *)
  Arena.crash arena;
  let alloc3 = Alloc.recover arena in
  let san = San.attach ~mode:San.Collect arena in
  let tm3 = Tm.attach ~cfg alloc3 ~root_slot in
  check_int (name ^ ": re-recovery sanitizer-clean") 0
    (List.length (San.violations san));
  San.detach san;
  Alcotest.(check (list (pair int int)))
    (name ^ ": still in doubt after second recovery")
    [ (t1, 41); (t2, 42) ] (Tm.in_doubt tm3);
  (* resolve one each way; both decisions must be durable *)
  Tm.resolve_in_doubt tm3 t1 ~commit:true;
  Tm.resolve_in_doubt tm3 t2 ~commit:false;
  check_int (name ^ ": nothing left in doubt") 0
    (List.length (Tm.in_doubt tm3));
  Arena.crash arena;
  let alloc4 = Alloc.recover arena in
  let tm4 = Tm.attach ~cfg alloc4 ~root_slot in
  check_int (name ^ ": no in-doubt after resolution") 0
    (List.length (Tm.in_doubt tm4));
  check_int (name ^ ": committed in-doubt kept") 111
    (Int64.to_int (Arena.read arena cell_c));
  check_int (name ^ ": aborted in-doubt undone") 0
    (Int64.to_int (Arena.read arena cell_a))

let test_resolve_unknown_txn () =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create alloc ~root_slot in
  Alcotest.check_raises "resolving a never-prepared txn rejects"
    (Invalid_argument "Tm.resolve_in_doubt: transaction 1 is not in doubt")
    (fun () ->
      let t = Tm.begin_txn tm in
      Tm.resolve_in_doubt tm t ~commit:true)

(* ------------------------------------------------------------------ *)
(* 2. Cluster happy path                                               *)
(* ------------------------------------------------------------------ *)

let test_happy_path () =
  let w = Bench.make_world ~nodes:3 ~txns:8 ~drop_1_in:0 ~seed:1 ~chaos_at:None () in
  Bench.run_workload w;
  let s = Twopc.stats w.Bench.cluster in
  check_int "all committed" 8 s.Twopc.committed;
  check_int "no aborts" 0 s.Twopc.aborted;
  check_int "no retries on a lossless fabric" 0 s.Twopc.retries;
  check_int "ACK-driven forgetting emptied the decision log" s.Twopc.decisions
    s.Twopc.forgotten;
  check_int "nothing in doubt" 0 (Twopc.in_doubt_total w.Bench.cluster);
  (* the consistency check holds on the live (never-crashed) cluster *)
  Alcotest.(check (option string)) "consistent" None (Bench.check_world w)

(* ------------------------------------------------------------------ *)
(* 3. Lossy fabric                                                     *)
(* ------------------------------------------------------------------ *)

let test_lossy_fabric () =
  let w = Bench.make_world ~nodes:3 ~txns:20 ~drop_1_in:3 ~seed:7 ~chaos_at:None () in
  Bench.run_workload w;
  let s = Twopc.stats w.Bench.cluster in
  check_bool "losses happened" true (s.Twopc.msgs_dropped > 0);
  check_bool "retries happened" true (s.Twopc.retries > 0);
  check_bool "some transactions still committed" true (s.Twopc.committed > 0);
  (* recovery + global all-or-nothing for every txn, including the
     presumed-abort ones whose ABORT messages were lost *)
  Alcotest.(check (option string)) "consistent" None (Bench.check_world w)

(* ------------------------------------------------------------------ *)
(* 4. Coordinator crash after decision, before any COMMIT              *)
(* ------------------------------------------------------------------ *)

let test_after_decision_crash () =
  let w = Bench.make_world ~nodes:3 ~txns:5 ~drop_1_in:0 ~seed:1 ~chaos_at:(Some 2) () in
  Bench.run_workload w;
  check_bool "coordinator died" false (Twopc.coordinator_up w.Bench.cluster);
  (* txn 2 involved every node (even index): all three sit in doubt *)
  check_int "every participant in doubt" 3
    (Twopc.in_doubt_total w.Bench.cluster);
  (* txns 3 and 4 never ran *)
  check_bool "txn 3 unsubmitted" true (w.Bench.outcomes.(3) = None);
  Alcotest.(check (option string))
    "recovery commits the decided transaction everywhere" None
    (Bench.check_world w);
  let t = w.Bench.cluster in
  for i = 0 to 2 do
    check_int
      (Fmt.str "node %d holds txn 2's write" i)
      1002
      (Int64.to_int (Twopc.read_cell t i w.Bench.cells.(i).(2)))
  done

(* ------------------------------------------------------------------ *)
(* 5. Crash everywhere                                                 *)
(* ------------------------------------------------------------------ *)

let test_crash_everywhere () =
  let r = Bench.enumerate ~nodes:3 ~txns:4 () in
  (* coordinator + 3 participants all saw events *)
  check_int "all arenas swept" 4 r.Bench.arenas_swept;
  check_bool "sweep exercised crash points" true (r.Bench.crash_points > 100);
  check_int "after-decision states" 4 r.Bench.after_decision_states

let () =
  let prepare_cases =
    List.map
      (fun (cn, cfg) ->
        Alcotest.test_case (Fmt.str "prepare survives recovery [%s]" cn) `Quick
          (test_prepare_survives_recovery (cn, cfg)))
      [
        ("1l-nfp", Rewind.config_1l_nfp);
        ("1l-fp", Rewind.config_1l_fp);
        ("2l-nfp", Rewind.config_2l_nfp);
        ("2l-fp", Rewind.config_2l_fp);
        ("simple", Rewind.config_simple);
        ("batch4", Rewind.config_batch ~group:4 ());
      ]
  in
  Alcotest.run "2pc"
    [
      ( "participant",
        prepare_cases
        @ [ Alcotest.test_case "resolve unknown txn" `Quick test_resolve_unknown_txn ] );
      ( "cluster",
        [
          Alcotest.test_case "happy path" `Quick test_happy_path;
          Alcotest.test_case "lossy fabric" `Quick test_lossy_fabric;
          Alcotest.test_case "coordinator crash after decision" `Quick
            test_after_decision_crash;
        ] );
      ( "crash-everywhere",
        [ Alcotest.test_case "every component, every event" `Slow test_crash_everywhere ] );
    ]
