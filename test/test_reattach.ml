(* Reattach robustness, two halves.

   1. The durable configuration fingerprint: {!Tm.create} records the
      partition count and the semantic configuration bits at the root
      slot, and {!Tm.attach} refuses — with an error naming both sides —
      to reattach with a configuration whose durable layout differs:
      partition count, policy, layers, log variant, batch group or bucket
      capacity.  Recovering a partitioned log with the wrong partition
      count silently reads the wrong root slots; this closes that door.

   2. Recovery idempotence: recovery itself can crash — mid-analysis,
      mid-undo, mid-clearing — and a second recovery from the resulting
      image must reach exactly the state an uninterrupted recovery
      reaches, including the in-doubt (prepared) transactions that
      recovery must preserve.  Swept at every persistence event of the
      attach, across all six named configurations. *)

open Rewind_nvm
open Rewind
module San = Rewind_analysis.Sanitizer

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let root_slot = 2

let all_configs =
  [
    ("1l-nfp", Rewind.config_1l_nfp);
    ("1l-fp", Rewind.config_1l_fp);
    ("2l-nfp", Rewind.config_2l_nfp);
    ("2l-fp", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple);
    ("batch4", Rewind.config_batch ~group:4 ());
  ]

let shadow_events arena =
  let s = Arena.stats arena in
  s.Stats.nt_stores + s.Stats.flushes

(* ------------------------------------------------------------------ *)
(* 1. Configuration fingerprint                                        *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
  nn = 0 || at 0

let expect_failure name needle f =
  match f () with
  | _ -> Alcotest.failf "%s: expected attach to fail" name
  | exception Failure msg ->
      if not (contains msg needle) then
        Alcotest.failf "%s: error %S does not mention %S" name msg needle

let test_attach_never_created () =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  let alloc = Alloc.create arena in
  expect_failure "fresh arena" "never initialised" (fun () ->
      Tm.attach alloc ~root_slot)

let test_attach_junk_slot () =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  let alloc = Alloc.create arena in
  Arena.root_set arena root_slot 0xDEADL;
  expect_failure "junk root slot" "fingerprint" (fun () ->
      Tm.attach alloc ~root_slot)

let test_attach_mismatches () =
  let arena = Arena.create ~size_bytes:(8 lsl 20) () in
  let alloc = Alloc.create arena in
  let cfg = Rewind.with_partitions 2 Rewind.config_1l_nfp in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cell = Alloc.alloc alloc 8 in
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cell ~value:7L;
  Tm.commit tm txn;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let attempt cfg = Tm.attach ~cfg alloc2 ~root_slot in
  expect_failure "partition count" "mismatch" (fun () ->
      attempt (Rewind.with_partitions 4 Rewind.config_1l_nfp));
  expect_failure "policy" "mismatch" (fun () ->
      attempt (Rewind.with_partitions 2 Rewind.config_1l_fp));
  expect_failure "layers" "mismatch" (fun () ->
      attempt (Rewind.with_partitions 2 Rewind.config_2l_nfp));
  expect_failure "variant" "mismatch" (fun () ->
      attempt (Rewind.with_partitions 2 (Rewind.config_batch ())));
  expect_failure "bucket capacity" "mismatch" (fun () ->
      attempt (Rewind.with_partitions 2 { cfg with Tm.bucket_cap = 8 }));
  (* the latch model is volatile policy, not durable layout: it may
     legitimately differ between runs *)
  let tm2 =
    attempt (Rewind.with_partitions 2 { cfg with Tm.lockfree_latch = true })
  in
  check_int "recovered through a latch-model change" 7
    (Int64.to_int (Arena.read arena cell));
  ignore tm2

let test_attach_wrong_slot () =
  let arena = Arena.create ~size_bytes:(8 lsl 20) () in
  let alloc = Alloc.create arena in
  let _tm = Tm.create alloc ~root_slot in
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  (* slot 10 was never initialised — the error should say so rather than
     letting attach invent an empty manager over unrelated slots *)
  expect_failure "wrong root slot" "never initialised" (fun () ->
      Tm.attach alloc2 ~root_slot:10)

(* ------------------------------------------------------------------ *)
(* 2. Recovery idempotence: crash during recovery itself               *)
(* ------------------------------------------------------------------ *)

(* Deterministic history with work for every recovery phase: committed
   transactions overwriting a shared working set (redo + clearing), a
   live transaction (undo), and a prepared transaction (in-doubt, must
   survive any number of recoveries un-undone). *)
let idem_setup cfg0 =
  let cfg = { cfg0 with Tm.bucket_cap = 8 } in
  let arena = Arena.create ~size_bytes:(16 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cells = Array.init 12 (fun _ -> Alloc.alloc alloc 8) in
  let expected = Array.make 12 0L in
  for tno = 1 to 6 do
    let txn = Tm.begin_txn tm in
    for i = 0 to 2 do
      let c = (tno + i) mod 8 in
      let v = Int64.of_int ((tno * 100) + i) in
      Tm.write tm txn ~addr:cells.(c) ~value:v;
      expected.(c) <- v
    done;
    Tm.commit tm txn
  done;
  let live = Tm.begin_txn tm in
  Tm.write tm live ~addr:cells.(8) ~value:8881L;
  Tm.write tm live ~addr:cells.(9) ~value:8882L;
  let prep = Tm.begin_txn tm in
  Tm.write tm prep ~addr:cells.(10) ~value:4242L;
  Tm.prepare tm prep ~gtid:77;
  (* in-doubt writes survive recovery un-undone *)
  expected.(10) <- 4242L;
  (arena, cfg, cells, expected, prep)

let snapshot arena cells tm =
  (Array.map (fun c -> Arena.read arena c) cells, Tm.in_doubt tm)

let test_recovery_idempotent (name, cfg0) () =
  (* Uninterrupted recovery: the reference state, and the event count. *)
  let arena, cfg, cells, expected, prep = idem_setup cfg0 in
  Arena.crash arena;
  let before = shadow_events arena in
  let alloc = Alloc.recover arena in
  let tm = Tm.attach ~cfg alloc ~root_slot in
  let events = shadow_events arena - before in
  check_bool (name ^ ": recovery persists events") true (events > 0);
  let ref_cells, ref_doubt = snapshot arena cells tm in
  Alcotest.(check (list (pair int int)))
    (name ^ ": prepared txn in doubt")
    [ (prep, 77) ] ref_doubt;
  Array.iteri
    (fun i v -> check_int (Fmt.str "%s: ref cell %d" name i)
        (Int64.to_int (if i < Array.length expected then expected.(i) else 0L))
        (Int64.to_int v))
    ref_cells;
  (* Crash the recovery at each of its persistence events; the second,
     uninterrupted recovery must reach the reference state. *)
  for k = 1 to events do
    let arena, cfg, cells, _, _ = idem_setup cfg0 in
    Arena.crash arena;
    let base = shadow_events arena in
    Arena.arm_crash arena ~after:(base + k - 1);
    (match
       let alloc = Alloc.recover arena in
       ignore (Tm.attach ~cfg alloc ~root_slot)
     with
    | () -> ()
    | exception Arena.Crash -> ());
    let alloc2 = Alloc.recover arena in
    let san = San.attach ~mode:San.Collect arena in
    let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
    check_int
      (Fmt.str "%s k=%d/%d: second recovery sanitizer-clean" name k events)
      0
      (List.length (San.violations san));
    San.detach san;
    let got_cells, got_doubt = snapshot arena cells tm2 in
    if got_doubt <> ref_doubt then
      Alcotest.failf "%s: crash at recovery event %d/%d: in-doubt %a, want %a"
        name k events
        Fmt.(Dump.list (Dump.pair int int))
        got_doubt
        Fmt.(Dump.list (Dump.pair int int))
        ref_doubt;
    Array.iteri
      (fun i v ->
        if v <> ref_cells.(i) then
          Alcotest.failf
            "%s: crash at recovery event %d/%d: cell %d = %Ld, want %Ld" name
            k events i v ref_cells.(i))
      got_cells
  done

let () =
  Alcotest.run "reattach"
    [
      ( "config-fingerprint",
        [
          Alcotest.test_case "never created" `Quick test_attach_never_created;
          Alcotest.test_case "junk root slot" `Quick test_attach_junk_slot;
          Alcotest.test_case "semantic mismatches" `Quick test_attach_mismatches;
          Alcotest.test_case "wrong root slot" `Quick test_attach_wrong_slot;
        ] );
      ( "recovery-idempotence",
        List.map
          (fun (cn, cfg) ->
            Alcotest.test_case
              (Fmt.str "crash during recovery [%s]" cn)
              `Slow
              (test_recovery_idempotent (cn, cfg)))
          all_configs );
    ]
