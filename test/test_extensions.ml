(* Tests for the extensions beyond the paper's core: log compaction
   (Section 3.3), partial rollback via savepoints, the autotuner
   (Section 7) and the lock-free log latch (Section 7). *)

open Rewind_nvm
open Rewind

let root_slot = 2

let fresh ?(cfg = Rewind.config_1l_nfp) () =
  let arena = Arena.create ~size_bytes:(32 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  (arena, alloc, tm)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

(* ------------------------------------------------------------------ *)
(* Log compaction                                                      *)
(* ------------------------------------------------------------------ *)

let mk_record alloc ~lsn ~txn =
  Record.make alloc ~lsn ~txn ~typ:Record.Update ~addr:(8 * lsn) ~old_value:0L
    ~new_value:(Int64.of_int lsn) ~undo_next:0 ~prev_same_txn:0

let test_compact_squeezes_gaps () =
  let arena = Arena.create ~size_bytes:(32 lsl 20) () in
  let alloc = Alloc.create arena in
  let log = Log.create Log.Optimized ~bucket_cap:10 alloc ~root_slot in
  for i = 1 to 200 do
    Log.append log (mk_record alloc ~lsn:i ~txn:(i mod 5))
  done;
  (* clear four of five transactions: 80 % gaps *)
  Log.remove_where log (fun r -> Record.txn arena r <> 1);
  let live_before, slots_before = Log.occupancy_stats log in
  check_bool "mostly gaps" true (float_of_int live_before /. float_of_int slots_before < 0.5);
  Log.compact log;
  let live_after, slots_after = Log.occupancy_stats log in
  check_int "no record lost" live_before live_after;
  check_bool "dense after compaction" true
    (float_of_int live_after /. float_of_int slots_after > 0.9);
  (* order preserved *)
  let lsns = List.map (Record.lsn arena) (Log.records log) in
  check_bool "ascending order preserved" true (lsns = List.sort compare lsns)

let test_compact_noop_when_dense () =
  let arena = Arena.create ~size_bytes:(32 lsl 20) () in
  let alloc = Alloc.create arena in
  let log = Log.create Log.Optimized ~bucket_cap:10 alloc ~root_slot in
  for i = 1 to 50 do
    Log.append log (mk_record alloc ~lsn:i ~txn:1)
  done;
  let before = Log.records log in
  Log.compact log;
  Alcotest.(check (list int)) "untouched" before (Log.records log);
  ignore arena

let test_compact_survives_crash () =
  (* crash at every point during a compaction: recovery must find either
     the old (gappy) or the new (dense) log, with the same live records *)
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let arena = Arena.create ~size_bytes:(32 lsl 20) () in
    let alloc = Alloc.create arena in
    let log = Log.create Log.Optimized ~bucket_cap:8 alloc ~root_slot in
    for i = 1 to 64 do
      Log.append log (mk_record alloc ~lsn:i ~txn:(i mod 4))
    done;
    Log.remove_where log (fun r -> Record.txn arena r <> 1);
    let expect = List.map (Record.lsn arena) (Log.records log) in
    Arena.arm_crash arena ~after:!k;
    (try
       Log.compact log;
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      let alloc2 = Alloc.recover arena in
      let log2 = Log.attach Log.Optimized ~bucket_cap:8 alloc2 ~root_slot in
      let got = List.map (Record.lsn arena) (Log.records log2) in
      if got <> expect then
        Alcotest.failf "crash %d: records changed ([%s] vs [%s])" !k
          (String.concat ";" (List.map string_of_int got))
          (String.concat ";" (List.map string_of_int expect))
    end;
    incr k
  done

let test_checkpoint_triggers_compaction () =
  (* a long-running transaction pins records across buckets while others
     clear: the checkpoint's compaction keeps the slot count bounded *)
  let _, alloc, tm = fresh ~cfg:{ Rewind.config_1l_nfp with bucket_cap = 16 } () in
  let cell = Alloc.alloc alloc 8 in
  let long = Tm.begin_txn tm in
  Tm.write tm long ~addr:cell ~value:1L;
  for _ = 1 to 50 do
    Tm.atomically tm (fun txn -> Tm.write tm txn ~addr:cell ~value:9L)
  done;
  Tm.write tm long ~addr:cell ~value:2L;
  Tm.checkpoint tm;
  let live, slots = Log.occupancy_stats (Tm.log tm) in
  check_bool "compacted around the long transaction" true (slots <= 4 * max 1 live);
  Tm.commit tm long

(* ------------------------------------------------------------------ *)
(* Savepoints / partial rollback                                       *)
(* ------------------------------------------------------------------ *)

let savepoint_configs =
  [ ("1L-NFP", Rewind.config_1l_nfp); ("1L-FP", Rewind.config_1l_fp);
    ("2L-NFP", Rewind.config_2l_nfp) ]

let test_savepoint_basic cfg () =
  let arena, alloc, tm = fresh ~cfg () in
  let a = Alloc.alloc alloc 8 and b = Alloc.alloc alloc 8 in
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:a ~value:1L;
  let sp = Tm.savepoint tm txn in
  Tm.write tm txn ~addr:a ~value:2L;
  Tm.write tm txn ~addr:b ~value:3L;
  Tm.rollback_to tm txn sp;
  check_i64 "a back to pre-savepoint" 1L (Arena.read arena a);
  check_i64 "b undone" 0L (Arena.read arena b);
  (* the transaction continues and commits *)
  Tm.write tm txn ~addr:b ~value:7L;
  Tm.commit tm txn;
  check_i64 "pre-savepoint survives" 1L (Arena.read arena a);
  check_i64 "post-rollback write survives" 7L (Arena.read arena b)

let test_savepoint_nested cfg () =
  let arena, alloc, tm = fresh ~cfg () in
  let a = Alloc.alloc alloc 8 in
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:a ~value:1L;
  let sp1 = Tm.savepoint tm txn in
  Tm.write tm txn ~addr:a ~value:2L;
  let sp2 = Tm.savepoint tm txn in
  Tm.write tm txn ~addr:a ~value:3L;
  Tm.rollback_to tm txn sp2;
  check_i64 "inner rollback" 2L (Arena.read arena a);
  Tm.rollback_to tm txn sp1;
  check_i64 "outer rollback" 1L (Arena.read arena a);
  Tm.commit tm txn;
  check_i64 "committed" 1L (Arena.read arena a)

let test_savepoint_then_full_rollback cfg () =
  let arena, alloc, tm = fresh ~cfg () in
  let a = Alloc.alloc alloc 8 in
  Tm.atomically tm (fun txn -> Tm.write tm txn ~addr:a ~value:5L);
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:a ~value:6L;
  let sp = Tm.savepoint tm txn in
  Tm.write tm txn ~addr:a ~value:7L;
  Tm.rollback_to tm txn sp;
  Tm.write tm txn ~addr:a ~value:8L;
  Tm.rollback tm txn;
  check_i64 "full rollback to committed state" 5L (Arena.read arena a)

let test_savepoint_crash_after_partial cfg () =
  (* crash after a partial rollback: the whole transaction is undone and
     the partial rollback's CLRs don't confuse recovery *)
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let arena, alloc, tm = fresh ~cfg () in
    let a = Alloc.alloc alloc 8 and b = Alloc.alloc alloc 8 in
    Tm.atomically tm (fun txn -> Tm.write tm txn ~addr:a ~value:10L);
    Arena.arm_crash arena ~after:!k;
    (try
       let txn = Tm.begin_txn tm in
       Tm.write tm txn ~addr:a ~value:11L;
       let sp = Tm.savepoint tm txn in
       Tm.write tm txn ~addr:a ~value:12L;
       Tm.write tm txn ~addr:b ~value:13L;
       Tm.rollback_to tm txn sp;
       Tm.write tm txn ~addr:b ~value:14L;
       (* crash before commit: everything must roll back *)
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      let alloc2 = Alloc.recover arena in
      let _tm2 = Tm.attach ~cfg alloc2 ~root_slot in
      check_i64 (Fmt.str "crash %d: a" !k) 10L (Arena.read arena a);
      check_i64 (Fmt.str "crash %d: b" !k) 0L (Arena.read arena b)
    end
    else begin
      (* completed without crash: the still-open transaction must roll
         back at recovery after an explicit crash *)
      Arena.crash arena;
      let alloc2 = Alloc.recover arena in
      let _tm2 = Tm.attach ~cfg alloc2 ~root_slot in
      check_i64 "uncommitted undone" 10L (Arena.read arena a)
    end;
    incr k
  done

let crash_crossing_configs =
  [ ("1L-NFP", Rewind.config_1l_nfp); ("1L-FP", Rewind.config_1l_fp);
    ("2L-NFP", Rewind.config_2l_nfp); ("2L-FP", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple); ("batch", Rewind.config_batch ()) ]

let test_rollback_to_crosses_crash cfg () =
  (* crash at every persistence event *during* a partial rollback:
     recovery must settle at the transaction start (crashed while open)
     or, if the rollback completed and the transaction committed, at the
     savepoint state — never at an intermediate post-savepoint state *)
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let arena, alloc, tm = fresh ~cfg () in
    let a = Alloc.alloc alloc 8 and b = Alloc.alloc alloc 8
    and c = Alloc.alloc alloc 8 in
    Tm.atomically tm (fun txn ->
        Tm.write tm txn ~addr:a ~value:1L;
        Tm.write tm txn ~addr:b ~value:2L);
    let txn = Tm.begin_txn tm in
    Tm.write tm txn ~addr:a ~value:10L;
    let sp = Tm.savepoint tm txn in
    Tm.write tm txn ~addr:a ~value:20L;
    Tm.write tm txn ~addr:b ~value:21L;
    Tm.write tm txn ~addr:c ~value:22L;
    Arena.arm_crash arena ~after:!k;
    (try
       Tm.rollback_to tm txn sp;
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      let alloc2 = Alloc.recover arena in
      let _tm2 = Tm.attach ~cfg alloc2 ~root_slot in
      check_i64 (Fmt.str "crash %d: a at txn start" !k) 1L (Arena.read arena a);
      check_i64 (Fmt.str "crash %d: b at txn start" !k) 2L (Arena.read arena b);
      check_i64 (Fmt.str "crash %d: c at txn start" !k) 0L (Arena.read arena c)
    end
    else begin
      Tm.commit tm txn;
      Arena.crash arena;
      let alloc2 = Alloc.recover arena in
      let _tm2 = Tm.attach ~cfg alloc2 ~root_slot in
      check_i64 "a keeps the pre-savepoint write" 10L (Arena.read arena a);
      check_i64 "b back at the savepoint state" 2L (Arena.read arena b);
      check_i64 "c back at the savepoint state" 0L (Arena.read arena c)
    end;
    incr k
  done

let test_savepoint_drops_deletes () =
  let _, alloc, tm = fresh ~cfg:Rewind.config_1l_fp () in
  let region = Alloc.alloc alloc 48 in
  let txn = Tm.begin_txn tm in
  let sp = Tm.savepoint tm txn in
  Tm.log_delete tm txn ~addr:region ~size:48;
  Tm.rollback_to tm txn sp;
  Tm.commit tm txn;
  (* the delete was requested after the savepoint: commit must not free *)
  let o = Alloc.alloc alloc 48 in
  check_bool "region not reused" true (o <> region)

(* ------------------------------------------------------------------ *)
(* Autotune                                                            *)
(* ------------------------------------------------------------------ *)

let test_autotune_low_interleave () =
  let a = Autotune.create () in
  (* sequential transactions: no interleaving *)
  for t = 1 to 50 do
    Autotune.on_begin a t;
    for _ = 1 to 20 do
      Autotune.on_write a t
    done;
    Autotune.on_commit a t
  done;
  let cfg = Autotune.recommend a in
  check_bool "one layer for sequential work" true (cfg.Rewind.layers = Tm.One_layer);
  check_bool "no-force for long txns" true (cfg.Rewind.policy = Tm.No_force)

let test_autotune_high_interleave_with_rollbacks () =
  let a = Autotune.create () in
  (* 600 concurrent transactions in round-robin: interleave ~599 *)
  let txns = List.init 600 (fun i -> i + 1) in
  List.iter (fun t -> Autotune.on_begin a t) txns;
  for _round = 1 to 10 do
    List.iter (fun t -> Autotune.on_write a t) txns
  done;
  List.iteri
    (fun i t -> if i mod 10 = 0 then Autotune.on_rollback a t else Autotune.on_commit a t)
    txns;
  check_bool "interleave estimated" true (Autotune.avg_interleave a > 400.);
  check_bool "rollback rate seen" true (Autotune.rollback_rate a > 0.05);
  let cfg = Autotune.recommend a in
  check_bool "two layers recommended" true (cfg.Rewind.layers = Tm.Two_layer)

let test_autotune_short_txns_force () =
  let a = Autotune.create () in
  for t = 1 to 100 do
    Autotune.on_begin a t;
    Autotune.on_write a t;
    Autotune.on_write a t;
    Autotune.on_commit a t
  done;
  let cfg = Autotune.recommend a in
  check_bool "force for short transactions" true (cfg.Rewind.policy = Tm.Force)

let test_autotune_empty () =
  let a = Autotune.create () in
  let cfg = Autotune.recommend a in
  check_bool "defaults on no data" true
    (cfg.Rewind.layers = Tm.One_layer && cfg.Rewind.policy = Tm.No_force)

(* Regression: a small-write-dominated feed must pin the Optimized
   variant (the inline fast path's home), even at transaction lengths
   that would otherwise tip the advisor to Batch. *)
let test_autotune_small_writes_pin_optimized () =
  let a = Autotune.create () in
  for t = 1 to 50 do
    Autotune.on_begin a t;
    for i = 1 to 20 do
      Autotune.on_write ~word_sized:(i mod 10 <> 0) a t
    done;
    Autotune.on_commit a t
  done;
  check_bool "small fraction measured" true
    (Autotune.small_write_fraction a >= Autotune.inline_small_write_threshold);
  let cfg = Autotune.recommend a in
  check_bool "optimized pinned for small writes" true
    (cfg.Rewind.variant = Log.Optimized)

let test_autotune_bulk_writes_batch () =
  let a = Autotune.create () in
  (* same lengths, but nothing word-sized: long txns amortise under Batch *)
  for t = 1 to 50 do
    Autotune.on_begin a t;
    for _ = 1 to 20 do
      Autotune.on_write a t
    done;
    Autotune.on_commit a t
  done;
  let cfg = Autotune.recommend a in
  check_bool "batch for bulk update-heavy work" true
    (cfg.Rewind.variant = Log.Batch Autotune.batch_group_size)

(* ------------------------------------------------------------------ *)
(* Lock-free latch                                                     *)
(* ------------------------------------------------------------------ *)

let test_lockfree_correctness () =
  let cfg = Rewind.config_lockfree () in
  let arena, alloc, tm = fresh ~cfg () in
  let c = Array.init 4 (fun _ -> Alloc.alloc alloc 8) in
  Tm.atomically tm (fun txn ->
      Array.iteri (fun i a -> Tm.write tm txn ~addr:a ~value:(Int64.of_int i)) c);
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:c.(0) ~value:99L;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let _tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  check_i64 "committed kept" 0L (Arena.read arena c.(0));
  check_i64 "committed kept" 3L (Arena.read arena c.(3))

let test_lockfree_scales_better () =
  (* under the fiber scheduler, shared-log REWIND with the lock-free latch
     must beat the latched version at high thread counts *)
  let run cfg =
    let arena = Arena.create ~size_bytes:(64 lsl 20) () in
    let alloc = Alloc.create arena in
    let tm = Tm.create ~cfg alloc ~root_slot in
    let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
    Sim_threads.run ~threads:8 ~ops_per_thread:200 (fun t i ->
        let txn = Tm.begin_txn tm in
        Tm.write tm txn ~addr:cells.(t) ~value:(Int64.of_int i);
        Tm.commit tm txn)
  in
  let latched = run (Rewind.config_batch ()) in
  let lockfree = run (Rewind.config_lockfree ()) in
  check_bool
    (Fmt.str "lock-free (%dns) beats latched (%dns)" lockfree latched)
    true (lockfree < latched)

let () =
  let tc = Alcotest.test_case in
  let per_cfg name f =
    List.map (fun (cn, cfg) -> tc (name ^ " [" ^ cn ^ "]") `Quick (f cfg))
      savepoint_configs
  in
  Alcotest.run "extensions"
    [
      ( "compaction",
        [
          tc "squeezes gaps" `Quick test_compact_squeezes_gaps;
          tc "noop when dense" `Quick test_compact_noop_when_dense;
          tc "crash during compaction" `Slow test_compact_survives_crash;
          tc "checkpoint triggers it" `Quick test_checkpoint_triggers_compaction;
        ] );
      ( "savepoints",
        per_cfg "basic" test_savepoint_basic
        @ per_cfg "nested" test_savepoint_nested
        @ per_cfg "then full rollback" test_savepoint_then_full_rollback
        @ [
            tc "crash after partial [1L-NFP]" `Slow
              (test_savepoint_crash_after_partial Rewind.config_1l_nfp);
            tc "crash after partial [1L-FP]" `Slow
              (test_savepoint_crash_after_partial Rewind.config_1l_fp);
            tc "drops post-savepoint deletes" `Quick test_savepoint_drops_deletes;
          ]
        @ List.map
            (fun (cn, cfg) ->
              tc
                ("rollback_to crosses crash [" ^ cn ^ "]")
                `Slow
                (test_rollback_to_crosses_crash cfg))
            crash_crossing_configs );
      ( "autotune",
        [
          tc "low interleave -> 1L" `Quick test_autotune_low_interleave;
          tc "high interleave + rollbacks -> 2L" `Quick
            test_autotune_high_interleave_with_rollbacks;
          tc "short txns -> force" `Quick test_autotune_short_txns_force;
          tc "empty -> defaults" `Quick test_autotune_empty;
          tc "small writes -> optimized (inline)" `Quick
            test_autotune_small_writes_pin_optimized;
          tc "bulk writes -> batch" `Quick test_autotune_bulk_writes_batch;
        ] );
      ( "lockfree",
        [
          tc "correctness + recovery" `Quick test_lockfree_correctness;
          tc "scales better" `Quick test_lockfree_scales_better;
        ] );
    ]
