(* Tests for the later additions: B+-tree range scans, the persistent
   queue, the distributed-log group, and the TPC-C payment transaction. *)

open Rewind_nvm
open Rewind
open Rewind_pds

let root_slot = 2

let fresh ?(cfg = Rewind.config_1l_nfp) ?(size = 64 lsl 20) () =
  let arena = Arena.create ~size_bytes:size () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  (arena, alloc, tm)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64o = Alcotest.(check (option int64))

(* ------------------------------------------------------------------ *)
(* B+-tree range scans                                                 *)
(* ------------------------------------------------------------------ *)

let test_range_basic () =
  let _, alloc, tm = fresh () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn ->
      for k = 1 to 100 do
        Btree.insert bt txn (Int64.of_int (k * 2)) (Int64.of_int k)
      done);
  Alcotest.(check (list (pair int64 int64)))
    "inclusive range"
    [ (10L, 5L); (12L, 6L); (14L, 7L) ]
    (Btree.range bt ~lo:10L ~hi:14L);
  Alcotest.(check (list (pair int64 int64)))
    "range between keys"
    [ (10L, 5L); (12L, 6L) ]
    (Btree.range bt ~lo:9L ~hi:13L)

let test_range_edges () =
  let _, alloc, tm = fresh () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn ->
      List.iter
        (fun k -> Btree.insert bt txn (Int64.of_int k) 0L)
        [ 5; 10; 15 ]);
  check_int "empty below" 0 (List.length (Btree.range bt ~lo:1L ~hi:4L));
  check_int "empty above" 0 (List.length (Btree.range bt ~lo:16L ~hi:99L));
  check_int "whole tree" 3 (List.length (Btree.range bt ~lo:Int64.min_int ~hi:Int64.max_int));
  check_int "single key" 1 (List.length (Btree.range bt ~lo:10L ~hi:10L))

let test_range_spans_leaves () =
  let _, alloc, tm = fresh () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn ->
      for k = 1 to 500 do
        Btree.insert bt txn (Int64.of_int k) (Int64.of_int k)
      done);
  let r = Btree.range bt ~lo:100L ~hi:300L in
  check_int "201 keys" 201 (List.length r);
  check_bool "sorted" true
    (List.map fst r = List.sort compare (List.map fst r))

(* ------------------------------------------------------------------ *)
(* B+-tree bulk loading                                                *)
(* ------------------------------------------------------------------ *)

let test_bulk_load_equals_inserts () =
  let _, alloc, tm = fresh () in
  let bindings = List.init 500 (fun i -> (Int64.of_int (i * 7), Int64.of_int i)) in
  let bulk = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn -> Btree.bulk_load bulk txn bindings);
  let incr_ = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn ->
      List.iter (fun (k, v) -> Btree.insert incr_ txn k v) bindings);
  Alcotest.(check (list (pair int64 int64)))
    "same contents" (Btree.bindings incr_) (Btree.bindings bulk);
  check_bool "well formed" true (Btree.well_formed bulk);
  (* and it stays fully operational *)
  Tm.atomically tm (fun txn ->
      Btree.insert bulk txn 1L 1L;
      ignore (Btree.delete bulk txn 7L));
  check_bool "well formed after ops" true (Btree.well_formed bulk)

let test_bulk_load_rejects_unsorted () =
  let _, alloc, tm = fresh () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  Alcotest.check_raises "unsorted"
    (Invalid_argument "Btree.bulk_load: bindings not sorted") (fun () ->
      Tm.atomically tm (fun txn -> Btree.bulk_load bt txn [ (2L, 0L); (1L, 0L) ]))

let test_bulk_load_atomic_across_crash () =
  (* crash at any point: afterwards the tree is either empty or complete *)
  let bindings = List.init 60 (fun i -> (Int64.of_int i, Int64.of_int i)) in
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let arena, alloc, tm = fresh () in
    let bt = Btree.create (Btree.Logged tm) alloc in
    let root_cell = Btree.root_cell bt in
    Arena.arm_crash arena ~after:!k;
    (try
       Tm.atomically tm (fun txn -> Btree.bulk_load bt txn bindings);
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      let alloc2 = Alloc.recover arena in
      let tm2 = Tm.attach ~cfg:Rewind.config_1l_nfp alloc2 ~root_slot in
      let bt2 = Btree.attach (Btree.Logged tm2) alloc2 ~root_cell in
      let n = Btree.size bt2 in
      if n <> 0 && n <> 60 then Alcotest.failf "crash %d: partial load (%d)" !k n;
      check_bool "well formed" true (Btree.well_formed bt2)
    end;
    k := !k + 3
  done

(* ------------------------------------------------------------------ *)
(* Soak: long random workload with periodic crashes                    *)
(* ------------------------------------------------------------------ *)

let test_soak () =
  let cfg = { Rewind.config_1l_nfp with variant = Log.Batch 8 } in
  let arena = Arena.create ~size_bytes:(256 lsl 20) () in
  let alloc = ref (Alloc.create arena) in
  let tm = ref (Tm.create ~cfg !alloc ~root_slot) in
  let bt = Btree.create (Btree.Logged !tm) !alloc in
  let root_cell = Btree.root_cell bt in
  let bt = ref bt in
  let model = Hashtbl.create 256 in
  let shadow = Hashtbl.create 256 in  (* current txn's writes *)
  let rng = Rewind_tpcc.Rng.create 2024 in
  for round = 1 to 12 do
    (* a burst of transactions *)
    for _ = 1 to 30 do
      Hashtbl.reset shadow;
      let commit_it = Rewind_tpcc.Rng.int rng 1 10 > 2 in
      let txn = Tm.begin_txn !tm in
      (try
         for _ = 1 to Rewind_tpcc.Rng.int rng 1 8 do
           let k = Int64.of_int (Rewind_tpcc.Rng.int rng 1 200) in
           if Rewind_tpcc.Rng.int rng 1 3 = 1 then begin
             ignore (Btree.delete !bt txn k);
             Hashtbl.replace shadow k None
           end
           else begin
             let v = Rewind_tpcc.Rng.next rng in
             Btree.insert !bt txn k v;
             Hashtbl.replace shadow k (Some v)
           end
         done;
         if commit_it then begin
           Tm.commit !tm txn;
           Hashtbl.iter
             (fun k v ->
               match v with
               | Some v -> Hashtbl.replace model k v
               | None -> Hashtbl.remove model k)
             shadow
         end
         else Tm.rollback !tm txn
       with Arena.Crash -> ());
      if Arena.crashed arena then raise Arena.Crash
    done;
    (* periodically checkpoint, crash, or both *)
    (match round mod 3 with
    | 0 -> Tm.checkpoint !tm
    | 1 -> ()
    | _ ->
        Arena.crash arena;
        Arena.clear_crashed arena;
        alloc := Alloc.recover arena;
        tm := Tm.attach ~cfg !alloc ~root_slot;
        bt := Btree.attach (Btree.Logged !tm) !alloc ~root_cell);
    (* full model comparison *)
    check_bool
      (Fmt.str "round %d: well formed" round)
      true
      (Btree.well_formed !bt);
    Alcotest.(check int)
      (Fmt.str "round %d: size" round)
      (Hashtbl.length model) (Btree.size !bt);
    Hashtbl.iter
      (fun k v ->
        if Btree.lookup !bt k <> Some v then
          Alcotest.failf "round %d: key %Ld diverged" round k)
      model
  done

(* ------------------------------------------------------------------ *)
(* Persistent queue                                                    *)
(* ------------------------------------------------------------------ *)

let test_pqueue_fifo () =
  let _, alloc, tm = fresh () in
  let q = Pqueue.create tm alloc in
  Tm.atomically tm (fun txn ->
      List.iter (fun v -> Pqueue.enqueue q txn v) [ 1L; 2L; 3L ]);
  check_i64o "peek" (Some 1L) (Pqueue.peek q);
  Tm.atomically tm (fun txn ->
      check_i64o "deq 1" (Some 1L) (Pqueue.dequeue q txn);
      check_i64o "deq 2" (Some 2L) (Pqueue.dequeue q txn));
  Alcotest.(check (list int64)) "remaining" [ 3L ] (Pqueue.to_list q);
  Tm.atomically tm (fun txn ->
      check_i64o "deq 3" (Some 3L) (Pqueue.dequeue q txn);
      check_i64o "deq empty" None (Pqueue.dequeue q txn));
  check_bool "empty" true (Pqueue.is_empty q);
  check_bool "well formed" true (Pqueue.well_formed q);
  (* refill after emptying *)
  Tm.atomically tm (fun txn -> Pqueue.enqueue q txn 9L);
  check_i64o "usable again" (Some 9L) (Pqueue.peek q)

let test_pqueue_rollback () =
  let _, alloc, tm = fresh () in
  let q = Pqueue.create tm alloc in
  Tm.atomically tm (fun txn -> Pqueue.enqueue q txn 1L);
  let txn = Tm.begin_txn tm in
  ignore (Pqueue.dequeue q txn);
  Pqueue.enqueue q txn 2L;
  Tm.rollback tm txn;
  Alcotest.(check (list int64)) "restored" [ 1L ] (Pqueue.to_list q);
  check_bool "well formed" true (Pqueue.well_formed q)

let test_pqueue_crash () =
  let cfg = Rewind.config_1l_nfp in
  let arena, alloc, tm = fresh ~cfg () in
  let q = Pqueue.create tm alloc in
  Tm.atomically tm (fun txn ->
      List.iter (fun v -> Pqueue.enqueue q txn v) [ 10L; 20L; 30L ]);
  Tm.atomically tm (fun txn -> ignore (Pqueue.dequeue q txn));
  (* in-flight enqueue lost to the crash *)
  let txn = Tm.begin_txn tm in
  Pqueue.enqueue q txn 40L;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  let q2 =
    Pqueue.attach tm2 alloc2 ~head_cell:(Pqueue.head_cell q)
      ~tail_cell:(Pqueue.tail_cell q)
  in
  Alcotest.(check (list int64)) "committed state" [ 20L; 30L ] (Pqueue.to_list q2);
  check_bool "well formed" true (Pqueue.well_formed q2)

let prop_pqueue_model =
  QCheck.Test.make ~name:"pqueue matches model" ~count:100
    QCheck.(list (option (int_bound 100)))
    (fun ops ->
      let _, alloc, tm = fresh () in
      let q = Pqueue.create tm alloc in
      let model = Queue.create () in
      Tm.atomically tm (fun txn ->
          List.iter
            (function
              | Some v ->
                  Pqueue.enqueue q txn (Int64.of_int v);
                  Queue.add (Int64.of_int v) model
              | None ->
                  let got = Pqueue.dequeue q txn in
                  let want = Queue.take_opt model in
                  if got <> want then failwith "mismatch")
            ops);
      Pqueue.to_list q = List.of_seq (Queue.to_seq model)
      && Pqueue.well_formed q)

(* ------------------------------------------------------------------ *)
(* Distributed-log group                                               *)
(* ------------------------------------------------------------------ *)

let test_tm_group_routing () =
  let arena = Arena.create ~size_bytes:(64 lsl 20) () in
  let alloc = Alloc.create arena in
  let g = Tm_group.create alloc ~root_slot:4 ~partitions:4 in
  check_int "partitions" 4 (Tm_group.partitions g);
  check_bool "stable routing" true (Tm_group.tm_for g 7 == Tm_group.tm_for g 7);
  check_bool "different partitions differ" true
    (Tm_group.tm_for g 0 != Tm_group.tm_for g 1)

let test_tm_group_independent_commit_rollback () =
  let arena = Arena.create ~size_bytes:(64 lsl 20) () in
  let alloc = Alloc.create arena in
  let g = Tm_group.create alloc ~root_slot:4 ~partitions:3 in
  let cells = Array.init 3 (fun _ -> Alloc.alloc alloc 8) in
  for p = 0 to 2 do
    Tm_group.atomically g ~partition:p (fun tm txn ->
        Tm.write tm txn ~addr:cells.(p) ~value:(Int64.of_int (p + 1)))
  done;
  (* one in-flight transaction on partition 1 *)
  let tm1, txn1 = Tm_group.begin_txn g ~partition:1 in
  Tm.write tm1 txn1 ~addr:cells.(1) ~value:99L;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let _g2 = Tm_group.attach alloc2 ~root_slot:4 ~partitions:3 in
  Alcotest.(check int64) "p0 committed" 1L (Arena.read arena cells.(0));
  Alcotest.(check int64) "p1 rolled back to commit" 2L (Arena.read arena cells.(1));
  Alcotest.(check int64) "p2 committed" 3L (Arena.read arena cells.(2))

let test_tm_group_checkpoint () =
  let arena = Arena.create ~size_bytes:(64 lsl 20) () in
  let alloc = Alloc.create arena in
  let g = Tm_group.create alloc ~root_slot:4 ~partitions:2 in
  let cell = Alloc.alloc alloc 8 in
  for i = 1 to 10 do
    Tm_group.atomically g ~partition:(i mod 2) (fun tm txn ->
        Tm.write tm txn ~addr:cell ~value:(Int64.of_int i))
  done;
  Tm_group.checkpoint_all g;
  check_int "all logs empty" 0
    (Log.length (Tm.log (Tm_group.tm g 0)) + Log.length (Tm.log (Tm_group.tm g 1)));
  check_int "commits counted" 10 (Tm_group.commits g)

(* ------------------------------------------------------------------ *)
(* TPC-C payment                                                       *)
(* ------------------------------------------------------------------ *)

let tpcc_db () =
  let arena = Arena.create ~size_bytes:(128 lsl 20) () in
  let alloc = Alloc.create arena in
  let db =
    Rewind_tpcc.Schema.create ~layout:Rewind_tpcc.Schema.Naive
      Rewind_pds.Btree.Direct_nvm alloc
  in
  Rewind_tpcc.Datagen.load ~params:Rewind_tpcc.Datagen.small db 0;
  let tm = Tm.create ~cfg:Rewind.config_1l_nfp alloc ~root_slot:3 in
  let db = Rewind_tpcc.Schema.rebind db (Rewind_pds.Btree.Logged tm) in
  (arena, tm, db)

let test_payment_effects () =
  let open Rewind_tpcc in
  let _, tm, db = tpcc_db () in
  let rq = { Payment.p_warehouse = 1; p_district = 1; p_customer = 1; p_amount = 1000 } in
  Payment.run_transactional db tm rq;
  Payment.run_transactional db tm rq;
  let drow = Schema.district_row db 1 1 in
  Alcotest.(check int64) "d_ytd" 2000L (Schema.row_get db drow Schema.d_ytd);
  let crow =
    Int64.to_int
      (Option.get
         (Btree.lookup (Schema.customer_tree db 1) (Schema.key_customer db 1 1 1)))
  in
  Alcotest.(check int64) "balance" (-2000L) (Schema.row_get db crow Schema.c_balance);
  Alcotest.(check int64) "payment count" 2L
    (Schema.row_get db crow Schema.c_payment_cnt);
  check_bool "history consistent" true (Payment.check_consistency db)

let test_payment_crash_consistency () =
  let open Rewind_tpcc in
  let arena, tm, db = tpcc_db () in
  let rng = Rng.create 17 in
  for _ = 1 to 20 do
    Payment.run_transactional db tm (Payment.gen_request rng)
  done;
  (* crash mid-payment, at an arbitrary later persistence event *)
  Arena.arm_crash arena ~after:500;
  (try
     for _ = 1 to 50 do
       Payment.run_transactional db tm (Payment.gen_request rng)
     done;
     Arena.disarm_crash arena
   with Arena.Crash -> ());
  Arena.disarm_crash arena;
  if Arena.crashed arena then begin
    let alloc2 = Alloc.recover arena in
    let _tm2 = Tm.attach ~cfg:Rewind.config_1l_nfp alloc2 ~root_slot:3 in
    check_bool "d_ytd equals history sum after recovery" true
      (Payment.check_consistency db)
  end

let test_payment_and_neworder_mix () =
  let open Rewind_tpcc in
  let _, tm, db = tpcc_db () in
  let rng = Rng.create 23 in
  for i = 1 to 40 do
    if i mod 2 = 0 then
      ignore (Neworder.run_transactional db tm (Neworder.gen_request rng ~items:Datagen.small.Datagen.items))
    else Payment.run_transactional db tm (Payment.gen_request rng)
  done;
  check_bool "order-side consistent" true (Workload.check_consistency db);
  check_bool "payment-side consistent" true (Payment.check_consistency db)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "more"
    [
      ( "btree-range",
        [
          tc "basic" `Quick test_range_basic;
          tc "edges" `Quick test_range_edges;
          tc "spans leaves" `Quick test_range_spans_leaves;
        ] );
      ( "bulk-load",
        [
          tc "equals incremental inserts" `Quick test_bulk_load_equals_inserts;
          tc "rejects unsorted" `Quick test_bulk_load_rejects_unsorted;
          tc "atomic across crash" `Slow test_bulk_load_atomic_across_crash;
        ] );
      ("soak", [ tc "random workload with crashes" `Slow test_soak ]);
      ( "pqueue",
        [
          tc "fifo" `Quick test_pqueue_fifo;
          tc "rollback" `Quick test_pqueue_rollback;
          tc "crash" `Quick test_pqueue_crash;
          QCheck_alcotest.to_alcotest prop_pqueue_model;
        ] );
      ( "tm-group",
        [
          tc "routing" `Quick test_tm_group_routing;
          tc "independent recovery" `Quick test_tm_group_independent_commit_rollback;
          tc "group checkpoint" `Quick test_tm_group_checkpoint;
        ] );
      ( "payment",
        [
          tc "effects" `Quick test_payment_effects;
          tc "crash consistency" `Quick test_payment_crash_consistency;
          tc "mix with new-order" `Quick test_payment_and_neworder_mix;
        ] );
    ]
