(* In-cache-line logging (InCLL): epoch-granular crash consistency.

   The incll configuration replaces the WAL wholesale: each managed cell
   is a cache line holding data + in-line undo + epoch tag, durability is
   granted per epoch at [Tm.advance_epoch], and a crash rolls every cell
   back to the last epoch boundary.  What must hold:

   - group durability: a committed-but-unadvanced transaction does NOT
     survive a crash — recovery lands exactly on the last advance's
     boundary, never on a commit;
   - the boundary recovery lands on is named by the durable epoch
     counter, for a crash armed at *every* persistence event — including
     every point inside an epoch advance (mirroring
     test_checkpoint.ml's sweep structure);
   - the enumerator's finer [at_every_event] grid — which reaches the
     first-store-of-epoch torn-line states (undo written, tag not yet)
     and every mid-advance cache state — finds only epoch boundaries,
     with the persistency sanitizer clean throughout;
   - the durable cell directory survives chunk growth (> 63 cells);
   - the cost claim: ~1 NVM line write per small update at the designed
     cadence (one advance per full pass over the working set). *)

open Rewind_nvm
open Rewind
module San = Rewind_analysis.Sanitizer
module Enum = Rewind_analysis.Enumerator

let root_slot = 2
let cfg = Rewind.config_incll
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_i64 = Alcotest.(check int64)

let shadow_events arena =
  let s = Arena.stats arena in
  s.Stats.nt_stores + s.Stats.flushes

let setup ?(n_cells = 8) () =
  let arena = Arena.create ~size_bytes:(8 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cells = Array.init n_cells (fun _ -> Tm.alloc_cell tm) in
  (arena, tm, cells)

(* ------------------------------------------------------------------ *)
(* Protocol basics: captures, elision, epoch numbering                 *)
(* ------------------------------------------------------------------ *)

let test_basics () =
  let arena, tm, cells = setup ~n_cells:2 () in
  check_int "epoch starts at 1" 1 (Option.get (Tm.current_epoch tm));
  let st = Arena.stats arena in
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(0) ~value:7L;
  Tm.write tm txn ~addr:cells.(0) ~value:8L;
  Tm.write tm txn ~addr:cells.(1) ~value:9L;
  Tm.commit tm txn;
  check_int "one capture per cell per epoch" 2 st.Stats.incll_captures;
  check_int "repeat store elided" 1 st.Stats.incll_elided;
  check_i64 "cached value visible" 8L (Arena.read arena cells.(0));
  Tm.advance_epoch tm;
  check_int "advance bumps the epoch" 2 (Option.get (Tm.current_epoch tm));
  check_int "advance counted" 1 st.Stats.epoch_advances;
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(0) ~value:10L;
  Tm.commit tm txn;
  check_int "fresh epoch captures again" 3 st.Stats.incll_captures

(* ------------------------------------------------------------------ *)
(* Group durability: recovery lands on the advance, not the commit     *)
(* ------------------------------------------------------------------ *)

let test_epoch_rollback () =
  let arena, tm, cells = setup ~n_cells:2 () in
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(0) ~value:1L;
  Tm.commit tm txn;
  Tm.advance_epoch tm;
  (* committed but never advanced: epoch-granular durability loses it *)
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(1) ~value:2L;
  Tm.commit tm txn;
  (* evict the dirty line so the durable image carries the mid-epoch
     data with its in-line undo — the state recovery must rewind *)
  Arena.flush_line arena cells.(1);
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  check_i64 "advanced epoch survives" 1L (Arena.read arena cells.(0));
  check_i64 "unadvanced commit rolled back" 0L (Arena.read arena cells.(1));
  (match Tm.last_recovery tm2 with
  | Some r ->
      check_int "every cell scanned" 2 r.Tm.records_scanned;
      check_int "the mid-epoch cell rewound" 1 r.Tm.txns_undone
  | None -> Alcotest.fail "attach produced no recovery report");
  (* recovery itself advanced: crashed epoch 2, now at 3 *)
  check_int "recovery opens a fresh epoch" 3
    (Option.get (Tm.current_epoch tm2));
  (* the recovered manager keeps working *)
  let txn = Tm.begin_txn tm2 in
  Tm.write tm2 txn ~addr:cells.(1) ~value:5L;
  Tm.commit tm2 txn;
  Tm.advance_epoch tm2;
  check_i64 "post-recovery writes land" 5L (Arena.read arena cells.(1))

(* ------------------------------------------------------------------ *)
(* Volatile rollback and savepoints inside an epoch                    *)
(* ------------------------------------------------------------------ *)

let test_rollback_and_savepoint () =
  let arena, tm, cells = setup ~n_cells:2 () in
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(0) ~value:5L;
  let sp = Tm.savepoint tm txn in
  Tm.write tm txn ~addr:cells.(0) ~value:6L;
  Tm.write tm txn ~addr:cells.(1) ~value:7L;
  Tm.rollback_to tm txn sp;
  check_i64 "partial rollback undoes past the savepoint" 5L
    (Arena.read arena cells.(0));
  check_i64 "partial rollback undoes the other cell" 0L
    (Arena.read arena cells.(1));
  Tm.commit tm txn;
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(1) ~value:9L;
  Tm.rollback tm txn;
  check_i64 "full rollback restores" 0L (Arena.read arena cells.(1));
  Tm.advance_epoch tm;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let _tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  check_i64 "rolled-back state is what the boundary holds" 5L
    (Arena.read arena cells.(0));
  check_i64 "aborted write never durable" 0L (Arena.read arena cells.(1))

(* ------------------------------------------------------------------ *)
(* Crash at every persistence event                                    *)
(* ------------------------------------------------------------------ *)

let n_sweep_cells = 8

(* Three advanced epochs, then a committed-but-unadvanced transaction
   and one left open.  The only legal recovered states are the four
   epoch boundaries; 999/998 must never survive. *)
let sweep_workload tm cells =
  for e = 1 to 3 do
    let txn = Tm.begin_txn tm in
    for i = 0 to n_sweep_cells - 1 do
      Tm.write tm txn ~addr:cells.(i) ~value:(Int64.of_int ((e * 100) + i))
    done;
    Tm.commit tm txn;
    Tm.advance_epoch tm
  done;
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(0) ~value:999L;
  Tm.commit tm txn;
  let live = Tm.begin_txn tm in
  Tm.write tm live ~addr:cells.(1) ~value:998L

let boundaries =
  [|
    Array.make n_sweep_cells 0L;
    Array.init n_sweep_cells (fun i -> Int64.of_int (100 + i));
    Array.init n_sweep_cells (fun i -> Int64.of_int (200 + i));
    Array.init n_sweep_cells (fun i -> Int64.of_int (300 + i));
  |]

let test_crash_sweep () =
  (* Dry run: count the persistence events an uninterrupted run makes.
     Every one of them is inside an epoch advance — the protocol's whole
     crash surface — so the sweep below exercises each advance point. *)
  let arena, tm, cells = setup ~n_cells:n_sweep_cells () in
  let before = shadow_events arena in
  sweep_workload tm cells;
  let events = shadow_events arena - before in
  check_bool "the workload persists something" true (events > 0);
  let tried = ref 0 in
  for k = 1 to events do
    let arena, tm, cells = setup ~n_cells:n_sweep_cells () in
    Arena.arm_crash arena ~after:(k - 1);
    (match sweep_workload tm cells with
    | () -> ()
    | exception Arena.Crash -> ());
    if Arena.crashed arena then begin
      incr tried;
      Arena.crash arena;
      let alloc2 = Alloc.recover arena in
      let san = San.attach ~mode:San.Collect arena in
      let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
      check_int
        (Fmt.str "k=%d: recovery is sanitizer-clean" k)
        0
        (List.length (San.violations san));
      San.detach san;
      (* the durable epoch counter names the boundary recovery must land
         on: crashed epoch e (recovery reopened e+1) committed boundary
         e-1 *)
      let e_crash = Option.get (Tm.current_epoch tm2) - 1 in
      check_bool
        (Fmt.str "k=%d: crashed epoch %d in range" k e_crash)
        true
        (e_crash >= 1 && e_crash <= Array.length boundaries);
      let expect = boundaries.(e_crash - 1) in
      Array.iteri
        (fun i c ->
          let got = Arena.read arena c in
          if got <> expect.(i) then
            Alcotest.failf
              "crash at event %d/%d (epoch %d): cell %d = %Ld, want %Ld" k
              events e_crash i got expect.(i))
        cells
    end
  done;
  check_bool "sweep hit crash points" true (!tried > 0)

(* ------------------------------------------------------------------ *)
(* Enumerated crash states on the at-every-event grid                  *)
(* ------------------------------------------------------------------ *)

(* Two advanced epochs; the fine grid reaches the torn first-store
   states (undo captured, tag or data not yet stored) and every cache
   state inside both advances.  Only the three boundaries are legal, and
   the sanitizer must stay clean through every recovery. *)
let test_enumerate () =
  let arena = Arena.create ~size_bytes:(64 * 1024) () in
  let alloc = Alloc.create arena in
  let addrs = ref [||] in
  let stats =
    Enum.run ~at_every_event:true arena
      ~workload:(fun () ->
        let tm = Tm.create ~cfg alloc ~root_slot in
        let a = Tm.alloc_cell tm in
        let b = Tm.alloc_cell tm in
        let c = Tm.alloc_cell tm in
        addrs := [| a; b; c |];
        let txn = Tm.begin_txn tm in
        Tm.write tm txn ~addr:a ~value:7L;
        Tm.write tm txn ~addr:b ~value:9L;
        Tm.commit tm txn;
        Tm.advance_epoch tm;
        let txn = Tm.begin_txn tm in
        Tm.write tm txn ~addr:a ~value:8L;
        Tm.write tm txn ~addr:c ~value:11L;
        Tm.commit tm txn;
        Tm.advance_epoch tm)
      ~recover:(fun crashed ->
        let alloc2 = Alloc.recover crashed in
        let san = San.attach ~mode:San.Collect crashed in
        let _tm = Tm.attach ~cfg alloc2 ~root_slot in
        let violations = List.length (San.violations san) in
        San.detach san;
        let a = !addrs.(0) and b = !addrs.(1) and c = !addrs.(2) in
        ( Arena.read crashed a,
          Arena.read crashed b,
          Arena.read crashed c,
          violations ))
      ~check:(fun (va, vb, vc, violations) ->
        if violations > 0 then
          Some (Fmt.str "%d sanitizer violations during recovery" violations)
        else
          match (va, vb, vc) with
          | 0L, 0L, 0L | 7L, 9L, 0L | 8L, 9L, 11L -> None
          | _ ->
              Some
                (Fmt.str "non-epoch-boundary state a=%Ld b=%Ld c=%Ld" va vb vc))
  in
  check_bool "fine grid captured between fences" true
    (stats.Enum.capture_points > 6);
  check_bool "crash states explored" true (stats.Enum.crash_states > 0)

(* ------------------------------------------------------------------ *)
(* Durable directory growth past one chunk                             *)
(* ------------------------------------------------------------------ *)

let test_directory_chunks () =
  (* 130 cells = three directory chunks (63 + 63 + 4) *)
  let n = 130 in
  let arena, tm, cells = setup ~n_cells:n () in
  let txn = Tm.begin_txn tm in
  Array.iteri
    (fun i c -> Tm.write tm txn ~addr:c ~value:(Int64.of_int (i + 1)))
    cells;
  Tm.commit tm txn;
  Tm.advance_epoch tm;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  (match Tm.last_recovery tm2 with
  | Some r ->
      check_int "all chunks walked" n r.Tm.records_scanned;
      check_int "nothing to rewind at a boundary" 0 r.Tm.txns_undone
  | None -> Alcotest.fail "attach produced no recovery report");
  Array.iteri
    (fun i c ->
      check_i64 (Fmt.str "cell %d survives" i) (Int64.of_int (i + 1))
        (Arena.read arena c))
    cells

(* ------------------------------------------------------------------ *)
(* Configuration and API guards                                        *)
(* ------------------------------------------------------------------ *)

let expect_invalid_arg what f =
  match f () with
  | _ -> Alcotest.failf "%s: expected Invalid_argument" what
  | exception Invalid_argument _ -> ()

let test_guards () =
  let arena = Arena.create ~size_bytes:(8 lsl 20) () in
  let alloc = Alloc.create arena in
  expect_invalid_arg "partitioned incll" (fun () ->
      Tm.create ~cfg:{ cfg with Tm.partitions = 2 } alloc ~root_slot);
  expect_invalid_arg "two-layer incll" (fun () ->
      Tm.create ~cfg:{ cfg with Tm.layers = Tm.Two_layer } alloc ~root_slot);
  let tm = Tm.create ~cfg alloc ~root_slot in
  expect_invalid_arg "no log to expose" (fun () -> Tm.log tm);
  expect_invalid_arg "no WAL records" (fun () ->
      Tm.log_update tm 1 ~addr:0 ~old_value:0L ~new_value:1L);
  expect_invalid_arg "no delete records" (fun () ->
      Tm.log_delete tm 1 ~addr:0 ~size:8);
  let cell = Tm.alloc_cell tm in
  let raw = Alloc.alloc alloc 8 in
  let txn = Tm.begin_txn tm in
  expect_invalid_arg "unregistered address" (fun () ->
      Tm.write tm txn ~addr:raw ~value:1L);
  Tm.write tm txn ~addr:cell ~value:1L;
  expect_invalid_arg "no 2PC in-doubt state" (fun () ->
      Tm.prepare tm txn ~gtid:7);
  expect_invalid_arg "advance needs quiescence" (fun () ->
      Tm.advance_epoch tm);
  (* checkpoint under load is a safe no-op, not an error *)
  Tm.checkpoint tm;
  check_int "busy checkpoint defers the advance" 1
    (Option.get (Tm.current_epoch tm));
  Tm.commit tm txn;
  Tm.checkpoint tm;
  check_int "quiescent checkpoint advances" 2
    (Option.get (Tm.current_epoch tm));
  (* and the guard the other way round: WAL managers have no epochs *)
  let arena2 = Arena.create ~size_bytes:(8 lsl 20) () in
  let alloc2 = Alloc.create arena2 in
  let wal = Tm.create alloc2 ~root_slot in
  expect_invalid_arg "advance_epoch on a WAL config" (fun () ->
      Tm.advance_epoch wal);
  check_bool "WAL configs report no epoch" true (Tm.current_epoch wal = None)

(* ------------------------------------------------------------------ *)
(* The cost claim: ~1 NVM line write per update at the design cadence  *)
(* ------------------------------------------------------------------ *)

let test_line_write_rate () =
  let n_cells = 64 in
  let arena, tm, cells = setup ~n_cells () in
  let n_ops = n_cells * 20 in
  let before = Stats.snapshot (Arena.stats arena) in
  let txn = ref (Tm.begin_txn tm) in
  for i = 1 to n_ops do
    Tm.write tm !txn ~addr:cells.(i mod n_cells) ~value:(Int64.of_int i);
    if i mod 8 = 0 then begin
      Tm.commit tm !txn;
      if i mod n_cells = 0 then Tm.advance_epoch tm;
      txn := Tm.begin_txn tm
    end
  done;
  let d = Stats.diff (Arena.stats arena) before in
  let lines_per_op = float_of_int d.Stats.nvm_writes /. float_of_int n_ops in
  let fences_per_op = float_of_int d.Stats.fences /. float_of_int n_ops in
  check_bool
    (Fmt.str "%.3f NVM line writes/op <= 1.1" lines_per_op)
    true (lines_per_op <= 1.1);
  check_bool
    (Fmt.str "%.3f fences/op <= 0.1" fences_per_op)
    true (fences_per_op <= 0.1)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "incll"
    [
      ( "protocol",
        [
          Alcotest.test_case "captures, elision, epochs" `Quick test_basics;
          Alcotest.test_case "group durability (epoch rollback)" `Quick
            test_epoch_rollback;
          Alcotest.test_case "volatile rollback and savepoints" `Quick
            test_rollback_and_savepoint;
          Alcotest.test_case "directory chunk growth" `Quick
            test_directory_chunks;
          Alcotest.test_case "config and API guards" `Quick test_guards;
          Alcotest.test_case "~1 line write per update" `Quick
            test_line_write_rate;
        ] );
      ( "crash-sweep",
        [
          Alcotest.test_case "crash at every persistence event" `Quick
            test_crash_sweep;
        ] );
      ( "enumerator",
        [
          Alcotest.test_case "at-every-event crash states" `Quick
            test_enumerate;
        ] );
    ]
