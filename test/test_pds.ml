(* Tests for the persistent data structures: B+-tree (all three
   persistence modes), the paper's doubly-linked list, the hash table —
   functional behaviour against models, structural invariants, and crash
   recovery with REWIND logging. *)

open Rewind_nvm
open Rewind
open Rewind_pds

let root_slot = 2

let fresh_tm ?(cfg = Rewind.config_1l_nfp) ?(size = 32 lsl 20) () =
  let arena = Arena.create ~size_bytes:size () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  (arena, alloc, tm)

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64o = Alcotest.(check (option int64))

(* ------------------------------------------------------------------ *)
(* B+-tree: functional                                                 *)
(* ------------------------------------------------------------------ *)

let modes arena_alloc_tm =
  let _, _, tm = arena_alloc_tm in
  [ ("dram", Btree.Dram); ("nvm", Btree.Direct_nvm); ("logged", Btree.Logged tm) ]

let test_btree_basic mode () =
  let ((_, alloc, tm) as ctx) = fresh_tm () in
  let mode = List.assoc mode (modes ctx) in
  let bt = Btree.create mode alloc in
  let txn = Tm.begin_txn tm in
  for k = 1 to 100 do
    Btree.insert bt txn (Int64.of_int k) (Int64.of_int (k * 10))
  done;
  Tm.commit tm txn;
  check_i64o "lookup 50" (Some 500L) (Btree.lookup bt 50L);
  check_i64o "lookup absent" None (Btree.lookup bt 101L);
  check_int "size" 100 (Btree.size bt);
  check_bool "well formed" true (Btree.well_formed bt)

let test_btree_update_in_place () =
  let _, alloc, tm = fresh_tm () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn ->
      Btree.insert bt txn 5L 1L;
      Btree.insert bt txn 5L 2L);
  check_i64o "updated" (Some 2L) (Btree.lookup bt 5L);
  check_int "still one key" 1 (Btree.size bt)

let test_btree_reverse_and_random_order () =
  let _, alloc, tm = fresh_tm () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  let keys = [ 50; 10; 90; 30; 70; 20; 80; 40; 60; 100; 5; 95; 15; 85 ] in
  Tm.atomically tm (fun txn ->
      List.iter (fun k -> Btree.insert bt txn (Int64.of_int k) (Int64.of_int k)) keys);
  Alcotest.(check (list int64))
    "sorted iteration"
    (List.map Int64.of_int (List.sort compare keys))
    (List.map fst (Btree.bindings bt));
  check_bool "well formed" true (Btree.well_formed bt)

let test_btree_delete () =
  let _, alloc, tm = fresh_tm () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn ->
      for k = 1 to 200 do
        Btree.insert bt txn (Int64.of_int k) (Int64.of_int k)
      done);
  Tm.atomically tm (fun txn ->
      for k = 1 to 200 do
        if k mod 2 = 0 then check_bool "deleted" true (Btree.delete bt txn (Int64.of_int k))
      done);
  check_int "half left" 100 (Btree.size bt);
  check_i64o "odd key stays" (Some 55L) (Btree.lookup bt 55L);
  check_i64o "even key gone" None (Btree.lookup bt 56L);
  check_bool "well formed after deletions" true (Btree.well_formed bt)

let test_btree_delete_everything () =
  let _, alloc, tm = fresh_tm () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn ->
      for k = 1 to 100 do
        Btree.insert bt txn (Int64.of_int k) 0L
      done);
  Tm.atomically tm (fun txn ->
      for k = 100 downto 1 do
        ignore (Btree.delete bt txn (Int64.of_int k))
      done);
  check_int "empty" 0 (Btree.size bt);
  check_bool "well formed when empty" true (Btree.well_formed bt);
  (* refill after total deletion *)
  Tm.atomically tm (fun txn -> Btree.insert bt txn 7L 7L);
  check_i64o "usable again" (Some 7L) (Btree.lookup bt 7L)

let test_btree_delete_absent () =
  let _, alloc, tm = fresh_tm () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn ->
      Btree.insert bt txn 1L 1L;
      check_bool "absent delete is false" false (Btree.delete bt txn 9L))

(* ------------------------------------------------------------------ *)
(* B+-tree: transactional semantics                                    *)
(* ------------------------------------------------------------------ *)

let test_btree_rollback () =
  let _, alloc, tm = fresh_tm () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn ->
      for k = 1 to 50 do
        Btree.insert bt txn (Int64.of_int k) (Int64.of_int k)
      done);
  let before = Btree.bindings bt in
  let txn = Tm.begin_txn tm in
  for k = 51 to 80 do
    Btree.insert bt txn (Int64.of_int k) (Int64.of_int k)
  done;
  for k = 1 to 10 do
    ignore (Btree.delete bt txn (Int64.of_int k))
  done;
  Tm.rollback tm txn;
  Alcotest.(check (list (pair int64 int64))) "state restored" before (Btree.bindings bt);
  check_bool "well formed after rollback" true (Btree.well_formed bt)

let test_btree_crash_recovery cfg () =
  let arena, alloc, tm = fresh_tm ~cfg () in
  let bt = Btree.create (Btree.Logged tm) alloc in
  Tm.atomically tm (fun txn ->
      for k = 1 to 60 do
        Btree.insert bt txn (Int64.of_int k) (Int64.of_int (k * 2))
      done);
  let committed = Btree.bindings bt in
  (* an uncommitted transaction in flight *)
  let txn = Tm.begin_txn tm in
  for k = 61 to 90 do
    Btree.insert bt txn (Int64.of_int k) 0L
  done;
  ignore (Btree.delete bt txn 5L);
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  let bt2 = Btree.attach (Btree.Logged tm2) alloc2 ~root_cell:(Btree.root_cell bt) in
  Alcotest.(check (list (pair int64 int64)))
    "committed state recovered" committed (Btree.bindings bt2);
  check_bool "well formed after recovery" true (Btree.well_formed bt2)

let prop_btree_random_crash cfg =
  QCheck.Test.make
    ~name:(Fmt.str "btree crash consistency [%a]" Tm.pp_config cfg)
    ~count:60
    QCheck.(pair (int_bound 8000) (int_range 1 8))
    (fun (crash_after, txn_count) ->
      let arena, alloc, tm = fresh_tm ~cfg () in
      let bt = Btree.create (Btree.Logged tm) alloc in
      let root_cell = Btree.root_cell bt in
      let committed = Hashtbl.create 64 in
      let maybe = Hashtbl.create 64 in
      Arena.arm_crash arena ~after:crash_after;
      (try
         for tno = 1 to txn_count do
           let txn = Tm.begin_txn tm in
           let mine = ref [] in
           for i = 1 to 10 do
             let k = Int64.of_int (((tno * 31) + (i * 7)) mod 97) in
             let v = Int64.of_int ((tno * 1000) + i) in
             Btree.insert bt txn k v;
             mine := (k, v) :: !mine
           done;
           Hashtbl.reset maybe;
           List.iter (fun (k, v) -> Hashtbl.replace maybe k v) !mine;
           Tm.commit tm txn;
           Hashtbl.reset maybe;
           List.iter (fun (k, v) -> Hashtbl.replace committed k v) !mine
         done;
         Arena.disarm_crash arena
       with Arena.Crash -> ());
      Arena.disarm_crash arena;
      if Arena.crashed arena then begin
        let alloc2 = Alloc.recover arena in
        let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
        let bt2 = Btree.attach (Btree.Logged tm2) alloc2 ~root_cell in
        if not (Btree.well_formed bt2) then false
        else begin
          let expect_with extra =
            let m = Hashtbl.copy committed in
            Hashtbl.iter (fun k v -> Hashtbl.replace m k v) extra;
            m
          in
          let matches m =
            Hashtbl.fold (fun k v acc -> acc && Btree.lookup bt2 k = Some v) m true
            && Btree.size bt2 = Hashtbl.length m
          in
          matches committed || matches (expect_with maybe)
        end
      end
      else true)

(* ------------------------------------------------------------------ *)
(* B+-tree: exhaustive crash points over structure-changing operations *)
(* ------------------------------------------------------------------ *)

(* Enumerate every crash point of one operation on a prepared tree; after
   recovery the tree must hold either the before- or after-state. *)
let exhaust_btree ~prepare ~op ~stride () =
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let arena, alloc, tm = fresh_tm ~size:(16 lsl 20) () in
    let bt = Btree.create (Btree.Logged tm) alloc in
    let root_cell = Btree.root_cell bt in
    Tm.atomically tm (fun txn -> prepare bt txn);
    let before = Btree.bindings bt in
    let after =
      (* learn the post-state on a shadow tree *)
      let _, alloc2, tm2 = fresh_tm ~size:(16 lsl 20) () in
      let sh = Btree.create (Btree.Logged tm2) alloc2 in
      Tm.atomically tm2 (fun txn -> prepare sh txn);
      Tm.atomically tm2 (fun txn -> op sh txn);
      Btree.bindings sh
    in
    Arena.arm_crash arena ~after:!k;
    (try
       Tm.atomically tm (fun txn -> op bt txn);
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      let alloc2 = Alloc.recover arena in
      let tm2 = Tm.attach ~cfg:Rewind.config_1l_nfp alloc2 ~root_slot in
      let bt2 = Btree.attach (Btree.Logged tm2) alloc2 ~root_cell in
      if not (Btree.well_formed bt2) then
        Alcotest.failf "crash %d: tree invariant broken" !k;
      let got = Btree.bindings bt2 in
      if got <> before && got <> after then
        Alcotest.failf "crash %d: neither before- nor after-state (%d keys)" !k
          (List.length got)
    end;
    k := !k + stride
  done

(* Insert that splits a leaf and propagates to the root. *)
let test_crash_insert_split () =
  exhaust_btree
    ~prepare:(fun bt txn ->
      for i = 1 to 15 do
        Btree.insert bt txn (Int64.of_int (i * 10)) (Int64.of_int i)
      done)
    ~op:(fun bt txn -> Btree.insert bt txn 85L 99L)
    ~stride:1 ()

(* Delete that merges leaves and shrinks the root. *)
let test_crash_delete_merge () =
  exhaust_btree
    ~prepare:(fun bt txn ->
      for i = 1 to 12 do
        Btree.insert bt txn (Int64.of_int i) (Int64.of_int i)
      done;
      for i = 5 to 8 do
        ignore (Btree.delete bt txn (Int64.of_int i))
      done)
    ~op:(fun bt txn ->
      ignore (Btree.delete bt txn 1L);
      ignore (Btree.delete bt txn 2L))
    ~stride:1 ()

(* Delete that borrows from a sibling. *)
let test_crash_delete_borrow () =
  exhaust_btree
    ~prepare:(fun bt txn ->
      for i = 1 to 20 do
        Btree.insert bt txn (Int64.of_int i) (Int64.of_int i)
      done)
    ~op:(fun bt txn ->
      ignore (Btree.delete bt txn 8L);
      ignore (Btree.delete bt txn 9L);
      ignore (Btree.delete bt txn 10L))
    ~stride:1 ()

(* Phash chain updates under exhaustive crash points. *)
let test_crash_phash_ops () =
  let k = ref 0 in
  let completed = ref false in
  while not !completed do
    let arena, alloc, tm = fresh_tm ~size:(16 lsl 20) () in
    let h = Phash.create ~nbuckets:2 tm alloc in
    Tm.atomically tm (fun txn ->
        for i = 1 to 8 do
          Phash.put h txn (Int64.of_int i) (Int64.of_int i)
        done);
    Arena.arm_crash arena ~after:!k;
    (try
       Tm.atomically tm (fun txn ->
           Phash.put h txn 9L 9L;
           ignore (Phash.remove h txn 3L);
           Phash.put h txn 1L 100L);
       Arena.disarm_crash arena;
       completed := true
     with Arena.Crash -> ());
    if Arena.crashed arena then begin
      let alloc2 = Alloc.recover arena in
      let tm2 = Tm.attach ~cfg:Rewind.config_1l_nfp alloc2 ~root_slot in
      let h2 = Phash.attach ~nbuckets:2 tm2 alloc2 ~dir:(Phash.dir h) in
      let before =
        List.init 8 (fun i -> (Int64.of_int (i + 1), Int64.of_int (i + 1)))
      in
      let after =
        ((1L, 100L) :: List.filteri (fun i _ -> i <> 0 && i <> 2) before)
        @ [ (9L, 9L) ]
        |> List.sort compare
      in
      let got = Phash.bindings h2 in
      if got <> List.sort compare before && got <> after then
        Alcotest.failf "crash %d: torn hash state" !k
    end;
    incr k
  done

(* ------------------------------------------------------------------ *)
(* B+-tree vs model property                                           *)
(* ------------------------------------------------------------------ *)

module IM = Map.Make (Int64)

let prop_btree_model =
  QCheck.Test.make ~name:"btree matches map model" ~count:60
    QCheck.(list (pair bool (int_bound 200)))
    (fun ops ->
      let _, alloc, tm = fresh_tm () in
      let bt = Btree.create (Btree.Logged tm) alloc in
      let model = ref IM.empty in
      Tm.atomically tm (fun txn ->
          List.iter
            (fun (ins, k) ->
              let k = Int64.of_int k in
              if ins then begin
                Btree.insert bt txn k (Int64.mul k 3L);
                model := IM.add k (Int64.mul k 3L) !model
              end
              else begin
                ignore (Btree.delete bt txn k);
                model := IM.remove k !model
              end)
            ops);
      Btree.bindings bt = IM.bindings !model && Btree.well_formed bt)

(* ------------------------------------------------------------------ *)
(* Plist (the paper's Listings 1/2)                                    *)
(* ------------------------------------------------------------------ *)

let test_plist_basic () =
  let _, alloc, tm = fresh_tm () in
  let l = Plist.create tm alloc in
  Tm.atomically tm (fun txn ->
      ignore (Plist.push_back l txn 1L);
      ignore (Plist.push_back l txn 2L);
      ignore (Plist.push_back l txn 3L));
  Alcotest.(check (list int64)) "contents" [ 1L; 2L; 3L ] (Plist.to_list l);
  check_bool "well formed" true (Plist.well_formed l)

let test_plist_remove () =
  let _, alloc, tm = fresh_tm () in
  let l = Plist.create tm alloc in
  let n2 = ref 0 in
  Tm.atomically tm (fun txn ->
      ignore (Plist.push_back l txn 1L);
      n2 := Plist.push_back l txn 2L;
      ignore (Plist.push_back l txn 3L));
  Tm.atomically tm (fun txn -> Plist.remove l txn !n2);
  Alcotest.(check (list int64)) "removed" [ 1L; 3L ] (Plist.to_list l);
  check_bool "well formed" true (Plist.well_formed l)

let test_plist_remove_rollback () =
  let _, alloc, tm = fresh_tm () in
  let l = Plist.create tm alloc in
  let n2 = ref 0 in
  Tm.atomically tm (fun txn ->
      ignore (Plist.push_back l txn 1L);
      n2 := Plist.push_back l txn 2L;
      ignore (Plist.push_back l txn 3L));
  let txn = Tm.begin_txn tm in
  Plist.remove l txn !n2;
  Tm.rollback tm txn;
  Alcotest.(check (list int64)) "restored" [ 1L; 2L; 3L ] (Plist.to_list l);
  check_bool "well formed" true (Plist.well_formed l)

let test_plist_crash () =
  let cfg = Rewind.config_1l_nfp in
  let arena, alloc, tm = fresh_tm ~cfg () in
  let l = Plist.create tm alloc in
  Tm.atomically tm (fun txn ->
      ignore (Plist.push_back l txn 10L);
      ignore (Plist.push_back l txn 20L));
  (* uncommitted removal + append in flight *)
  let txn = Tm.begin_txn tm in
  let n = Plist.find l 10L in
  Plist.remove l txn n;
  ignore (Plist.push_back l txn 30L);
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  let l2 =
    Plist.attach tm2 alloc2 ~head_cell:(Plist.head_cell l)
      ~tail_cell:(Plist.tail_cell l)
  in
  Alcotest.(check (list int64)) "committed list recovered" [ 10L; 20L ]
    (Plist.to_list l2);
  check_bool "well formed" true (Plist.well_formed l2)

(* ------------------------------------------------------------------ *)
(* Phash                                                               *)
(* ------------------------------------------------------------------ *)

let test_phash_basic () =
  let _, alloc, tm = fresh_tm () in
  let h = Phash.create ~nbuckets:16 tm alloc in
  Tm.atomically tm (fun txn ->
      for k = 1 to 100 do
        Phash.put h txn (Int64.of_int k) (Int64.of_int (k * k))
      done);
  check_i64o "lookup" (Some 49L) (Phash.lookup h 7L);
  check_int "size" 100 (Phash.size h);
  Tm.atomically tm (fun txn ->
      check_bool "remove" true (Phash.remove h txn 7L);
      Phash.put h txn 3L 999L);
  check_i64o "removed" None (Phash.lookup h 7L);
  check_i64o "updated" (Some 999L) (Phash.lookup h 3L)

let test_phash_rollback () =
  let _, alloc, tm = fresh_tm () in
  let h = Phash.create ~nbuckets:4 tm alloc in
  Tm.atomically tm (fun txn -> Phash.put h txn 1L 1L);
  let txn = Tm.begin_txn tm in
  Phash.put h txn 2L 2L;
  ignore (Phash.remove h txn 1L);
  Tm.rollback tm txn;
  check_i64o "1 restored" (Some 1L) (Phash.lookup h 1L);
  check_i64o "2 undone" None (Phash.lookup h 2L)

let test_phash_crash () =
  let cfg = Rewind.config_1l_fp in
  let arena, alloc, tm = fresh_tm ~cfg () in
  let h = Phash.create ~nbuckets:8 tm alloc in
  Tm.atomically tm (fun txn ->
      for k = 1 to 30 do
        Phash.put h txn (Int64.of_int k) (Int64.of_int k)
      done);
  let txn = Tm.begin_txn tm in
  Phash.put h txn 99L 99L;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  let h2 = Phash.attach ~nbuckets:8 tm2 alloc2 ~dir:(Phash.dir h) in
  check_int "30 committed entries" 30 (Phash.size h2);
  check_i64o "uncommitted gone" None (Phash.lookup h2 99L)

(* Regression for the reattach-corruption bug: [attach] used to trust
   the caller's [nbuckets] (defaulting to 256), so reattaching a table
   created with any other count rehashed every key into the wrong chain
   and lookups silently returned [None].  The bucket count now lives in
   a durable header word; this attach-with-no-hint fails on the old
   code. *)
let test_phash_attach_header () =
  let cfg = Rewind.config_1l_fp in
  let arena, alloc, tm = fresh_tm ~cfg () in
  let h = Phash.create ~nbuckets:8 tm alloc in
  Tm.atomically tm (fun txn ->
      for k = 1 to 30 do
        Phash.put h txn (Int64.of_int k) (Int64.of_int (k * k))
      done);
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  let h2 = Phash.attach tm2 alloc2 ~dir:(Phash.dir h) in
  check_int "size without nbuckets hint" 30 (Phash.size h2);
  check_i64o "lookup without nbuckets hint" (Some 49L) (Phash.lookup h2 7L);
  (* A contradicting hint must fail loudly, never silently rehash. *)
  (match Phash.attach ~nbuckets:64 tm2 alloc2 ~dir:(Phash.dir h) with
  | exception Phash.Mismatch _ -> ()
  | _ -> Alcotest.fail "attach accepted a contradicting bucket count");
  (* A matching hint still works. *)
  let h3 = Phash.attach ~nbuckets:8 tm2 alloc2 ~dir:(Phash.dir h) in
  check_int "size with matching hint" 30 (Phash.size h3)

let test_phash_attach_garbage () =
  let _, alloc, tm = fresh_tm () in
  (* Durably-zero fresh space: there is no table here. *)
  let junk = Alloc.alloc_fresh ~align:8 alloc 64 in
  match Phash.attach tm alloc ~dir:junk with
  | exception Phash.Mismatch _ -> ()
  | _ -> Alcotest.fail "attach accepted a never-created directory"

(* ------------------------------------------------------------------ *)
(* Pqueue / Plist: crash at every persistence event                    *)
(* ------------------------------------------------------------------ *)

module San = Rewind_analysis.Sanitizer

let sweep_configs =
  [
    ("1l-nfp", Rewind.config_1l_nfp);
    ("1l-fp", Rewind.config_1l_fp);
    ("2l-nfp", Rewind.config_2l_nfp);
    ("batch8", Rewind.config_batch ());
  ]

let shadow_events arena =
  let s = Arena.stats arena in
  s.Stats.nt_stores + s.Stats.flushes

(* Generic sweep: [workload tm x] runs committed transactions against a
   freshly created structure [x]; [reattach tm2 alloc2] rebuilds it on
   the crashed arena; [legal] lists every committed boundary state.
   With the batch config a committed transaction may still be in an
   unpersisted group, so recovery may land on *any* boundary, not just
   the latest — the check is membership, not equality. *)
let sweep_structure ~cfg_name ~cfg ~create ~workload ~reattach ~legal () =
  let events =
    let arena, alloc, tm = fresh_tm ~cfg ~size:(8 lsl 20) () in
    let x = create tm alloc in
    let before = shadow_events arena in
    workload tm x;
    shadow_events arena - before
  in
  Alcotest.(check bool)
    (cfg_name ^ ": workload persists something")
    true (events > 0);
  let tried = ref 0 in
  for k = 1 to events do
    let arena, alloc, tm = fresh_tm ~cfg ~size:(8 lsl 20) () in
    let x = create tm alloc in
    Arena.arm_crash arena ~after:(k - 1);
    (match workload tm x with () -> () | exception Arena.Crash -> ());
    Arena.disarm_crash arena;
    if Arena.crashed arena then begin
      incr tried;
      Arena.crash arena;
      let alloc2 = Alloc.recover arena in
      let san = San.attach ~mode:San.Collect arena in
      let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
      let got = reattach x tm2 alloc2 in
      check_int
        (Printf.sprintf "%s k=%d: recovery is sanitizer-clean" cfg_name k)
        0
        (List.length (San.violations san));
      San.detach san;
      if not (List.mem got legal) then
        Alcotest.failf "%s k=%d: recovered %s, not a committed boundary"
          cfg_name k
          (String.concat ";" (List.map Int64.to_string got))
    end
  done;
  Alcotest.(check bool) (cfg_name ^ ": sweep hit crash points") true (!tried > 0)

(* FIFO queue drained to empty and refilled: the boundary states include
   the tricky dequeue-to-empty transition (tail cell must fold back). *)
let test_pqueue_crash_sweep (cfg_name, cfg) () =
  sweep_structure ~cfg_name ~cfg
    ~create:(fun tm alloc -> Pqueue.create tm alloc)
    ~workload:(fun tm q ->
      Tm.atomically tm (fun txn ->
          Pqueue.enqueue q txn 1L;
          Pqueue.enqueue q txn 2L);
      Tm.atomically tm (fun txn -> ignore (Pqueue.dequeue q txn));
      Tm.atomically tm (fun txn -> ignore (Pqueue.dequeue q txn));
      Tm.atomically tm (fun txn -> Pqueue.enqueue q txn 3L))
    ~reattach:(fun q tm2 alloc2 ->
      let q2 =
        Pqueue.attach tm2 alloc2 ~head_cell:(Pqueue.head_cell q)
          ~tail_cell:(Pqueue.tail_cell q)
      in
      Alcotest.(check bool)
        (cfg_name ^ ": recovered queue well-formed")
        true (Pqueue.well_formed q2);
      Pqueue.to_list q2)
    ~legal:[ []; [ 1L; 2L ]; [ 2L ]; [ 3L ] ]
    ()

(* Doubly-linked list shrunk node by node: the second remove unlinks the
   only remaining node (head and tail cells both rewritten). *)
let test_plist_crash_sweep (cfg_name, cfg) () =
  sweep_structure ~cfg_name ~cfg
    ~create:(fun tm alloc -> Plist.create tm alloc)
    ~workload:(fun tm l ->
      let n10 = ref 0 and n20 = ref 0 in
      Tm.atomically tm (fun txn ->
          n10 := Plist.push_back l txn 10L;
          n20 := Plist.push_back l txn 20L);
      Tm.atomically tm (fun txn -> Plist.remove l txn !n10);
      Tm.atomically tm (fun txn -> Plist.remove l txn !n20);
      Tm.atomically tm (fun txn -> ignore (Plist.push_back l txn 30L)))
    ~reattach:(fun l tm2 alloc2 ->
      let l2 =
        Plist.attach tm2 alloc2 ~head_cell:(Plist.head_cell l)
          ~tail_cell:(Plist.tail_cell l)
      in
      Alcotest.(check bool)
        (cfg_name ^ ": recovered list well-formed")
        true (Plist.well_formed l2);
      Plist.to_list l2)
    ~legal:[ []; [ 10L; 20L ]; [ 20L ]; [ 30L ] ]
    ()

(* ------------------------------------------------------------------ *)
(* Ptable                                                              *)
(* ------------------------------------------------------------------ *)

let test_ptable () =
  let arena, alloc, tm = fresh_tm () in
  let tbl = Ptable.create alloc ~slots:16 in
  Tm.atomically tm (fun txn -> Ptable.set tbl tm txn 3 42L);
  Alcotest.(check int64) "set/get" 42L (Ptable.get tbl 3);
  Ptable.set_raw_nvm tbl 4 7L;
  Arena.crash arena;
  Alcotest.(check int64) "raw nvm durable" 7L (Ptable.get tbl 4)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "pds"
    [
      ( "btree-functional",
        [
          tc "basic (dram)" `Quick (test_btree_basic "dram");
          tc "basic (nvm)" `Quick (test_btree_basic "nvm");
          tc "basic (logged)" `Quick (test_btree_basic "logged");
          tc "update in place" `Quick test_btree_update_in_place;
          tc "random order" `Quick test_btree_reverse_and_random_order;
          tc "delete" `Quick test_btree_delete;
          tc "delete everything" `Quick test_btree_delete_everything;
          tc "delete absent" `Quick test_btree_delete_absent;
        ] );
      ( "btree-transactional",
        [
          tc "rollback" `Quick test_btree_rollback;
          tc "crash recovery (1L-NFP)" `Quick
            (test_btree_crash_recovery Rewind.config_1l_nfp);
          tc "crash recovery (1L-FP)" `Quick
            (test_btree_crash_recovery Rewind.config_1l_fp);
          tc "crash recovery (2L-NFP)" `Quick
            (test_btree_crash_recovery Rewind.config_2l_nfp);
          tc "crash recovery (batch)" `Quick
            (test_btree_crash_recovery
               { Rewind.config_1l_nfp with variant = Log.Batch 8 });
        ] );
      ( "btree-crash-exhaustion",
        [
          tc "insert with split" `Slow test_crash_insert_split;
          tc "delete with merge" `Slow test_crash_delete_merge;
          tc "delete with borrow" `Slow test_crash_delete_borrow;
          tc "phash chain ops" `Slow test_crash_phash_ops;
        ] );
      ( "btree-properties",
        [
          QCheck_alcotest.to_alcotest prop_btree_model;
          QCheck_alcotest.to_alcotest (prop_btree_random_crash Rewind.config_1l_nfp);
          QCheck_alcotest.to_alcotest (prop_btree_random_crash Rewind.config_1l_fp);
        ] );
      ( "plist",
        [
          tc "basic" `Quick test_plist_basic;
          tc "remove" `Quick test_plist_remove;
          tc "remove rollback" `Quick test_plist_remove_rollback;
          tc "crash" `Quick test_plist_crash;
        ] );
      ( "phash",
        [
          tc "basic" `Quick test_phash_basic;
          tc "rollback" `Quick test_phash_rollback;
          tc "crash" `Quick test_phash_crash;
          tc "attach reads header" `Quick test_phash_attach_header;
          tc "attach rejects garbage" `Quick test_phash_attach_garbage;
        ] );
      ( "crash-sweeps",
        List.concat_map
          (fun ((name, _) as c) ->
            [
              tc ("pqueue dequeue-to-empty (" ^ name ^ ")") `Slow
                (test_pqueue_crash_sweep c);
              tc ("plist remove-only-node (" ^ name ^ ")") `Slow
                (test_plist_crash_sweep c);
            ])
          sweep_configs );
      ("ptable", [ tc "basic" `Quick test_ptable ]);
    ]
