(* TPC-C substrate tests: deterministic generation, new-order semantics in
   both layouts, abort/rollback behaviour, crash recovery of the database,
   consistency probes, and a single-terminal workload smoke test. *)

open Rewind_nvm
open Rewind_tpcc

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small = Datagen.small

let mk ?(layout = Schema.Naive) () =
  let arena = Arena.create ~size_bytes:(256 lsl 20) () in
  let alloc = Alloc.create arena in
  let db = Schema.create ~layout Rewind_pds.Btree.Direct_nvm alloc in
  Datagen.load ~params:small db 0;
  (arena, alloc, db)

let with_tm arena alloc db =
  let tm = Rewind.Tm.create ~cfg:Rewind.config_1l_nfp alloc ~root_slot:3 in
  let rb t =
    Rewind_pds.Btree.attach (Rewind_pds.Btree.Logged tm) alloc
      ~root_cell:(Rewind_pds.Btree.root_cell t)
  in
  ignore arena;
  ( tm,
    {
      db with
      Schema.mode = Rewind_pds.Btree.Logged tm;
      Schema.customer = rb db.Schema.customer;
      Schema.item = rb db.Schema.item;
      Schema.stock = rb db.Schema.stock;
      Schema.orders = Array.map rb db.Schema.orders;
      Schema.order_line = Array.map rb db.Schema.order_line;
      Schema.new_order = Array.map rb db.Schema.new_order;
      Schema.history = rb db.Schema.history;
    } )

(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next a = Rng.next b)
  done;
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 5 15 in
    check_bool "in range" true (v >= 5 && v <= 15)
  done

let test_datagen_loads () =
  let _, _, db = mk () in
  check_int "items" small.Datagen.items (Rewind_pds.Btree.size db.Schema.item);
  check_int "stock" small.Datagen.items (Rewind_pds.Btree.size db.Schema.stock);
  check_int "customers"
    (Schema.districts * small.Datagen.customers_per_district)
    (Rewind_pds.Btree.size db.Schema.customer);
  for d = 1 to Schema.districts do
    check_bool "district row" true (db.Schema.districts_rows.(d) <> 0)
  done

let test_request_shape () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let rq = Neworder.gen_request rng ~items:small.Datagen.items in
    check_bool "district" true (rq.Neworder.rq_district >= 1 && rq.Neworder.rq_district <= 10);
    let n = List.length rq.Neworder.rq_lines in
    check_bool "5-15 lines" true (n >= 5 && n <= 15);
    List.iter
      (fun l ->
        check_bool "item in range" true
          (l.Neworder.li_item >= 1 && l.Neworder.li_item <= small.Datagen.items))
      rq.Neworder.rq_lines
  done

let test_abort_rate () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let aborts = ref 0 in
  for _ = 1 to n do
    let rq = Neworder.gen_request rng ~items:small.Datagen.items in
    if rq.Neworder.rq_invalid then incr aborts
  done;
  let rate = float_of_int !aborts /. float_of_int n in
  check_bool "~1% aborts" true (rate > 0.005 && rate < 0.02)

let run_fixed db tm_opt ~district ~invalid =
  let rq =
    {
      Neworder.rq_district = district;
      rq_customer = 1;
      rq_lines = [ { Neworder.li_item = 1; li_qty = 3 }; { li_item = 2; li_qty = 1 } ];
      rq_invalid = invalid;
    }
  in
  match tm_opt with
  | Some tm -> Neworder.run_transactional db tm rq
  | None -> Neworder.run_raw db rq

let test_neworder_effects layout () =
  let arena, alloc, db0 = mk ~layout () in
  let tm, db = with_tm arena alloc db0 in
  let drow = db.Schema.districts_rows.(1) in
  let stock1 =
    Int64.to_int
      (Schema.row_get db
         (Int64.to_int (Option.get (Rewind_pds.Btree.lookup db.Schema.stock 1L)))
         Schema.s_quantity)
  in
  let outcome = run_fixed db (Some tm) ~district:1 ~invalid:false in
  check_bool "committed" true (outcome = Neworder.Committed);
  check_int "next_o_id advanced" 2
    (Int64.to_int (Schema.row_get db drow Schema.d_next_o_id));
  check_bool "order row present" true
    (Rewind_pds.Btree.lookup (Schema.order_tree db 1) (Schema.key_order db 1 1) <> None);
  check_bool "order lines present" true
    (Rewind_pds.Btree.lookup (Schema.order_line_tree db 1)
       (Schema.key_order_line db 1 1 1)
    <> None);
  let srow = Int64.to_int (Option.get (Rewind_pds.Btree.lookup db.Schema.stock 1L)) in
  let q = Int64.to_int (Schema.row_get db srow Schema.s_quantity) in
  check_bool "stock decremented (mod refill)" true (q <> stock1);
  check_bool "consistent" true (Workload.check_consistency db)

let test_abort_rolls_back layout () =
  let arena, alloc, db0 = mk ~layout () in
  let tm, db = with_tm arena alloc db0 in
  ignore (run_fixed db (Some tm) ~district:2 ~invalid:false);
  let drow = db.Schema.districts_rows.(2) in
  let before_noid = Schema.row_get db drow Schema.d_next_o_id in
  let outcome = run_fixed db (Some tm) ~district:2 ~invalid:true in
  check_bool "aborted" true (outcome = Neworder.Aborted);
  check_bool "next_o_id restored" true
    (Schema.row_get db drow Schema.d_next_o_id = before_noid);
  check_bool "no phantom order" true
    (Rewind_pds.Btree.lookup (Schema.order_tree db 2) (Schema.key_order db 2 2) = None);
  check_bool "consistent after abort" true (Workload.check_consistency db)

let test_crash_recovery () =
  let arena, alloc, db0 = mk () in
  let tm, db = with_tm arena alloc db0 in
  ignore (run_fixed db (Some tm) ~district:3 ~invalid:false);
  ignore (run_fixed db (Some tm) ~district:3 ~invalid:false);
  (* a third transaction left in flight *)
  let txn = Rewind.Tm.begin_txn tm in
  let drow = db.Schema.districts_rows.(3) in
  Schema.row_set db tm txn drow Schema.d_next_o_id 999L;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let _tm2 = Rewind.Tm.attach ~cfg:Rewind.config_1l_nfp alloc2 ~root_slot:3 in
  check_int "two committed orders" 3
    (Int64.to_int (Schema.row_get db drow Schema.d_next_o_id));
  check_bool "orders intact" true
    (Rewind_pds.Btree.lookup (Schema.order_tree db 3) (Schema.key_order db 3 2) <> None);
  check_bool "consistent after recovery" true (Workload.check_consistency db)

let test_workload_single_terminal config () =
  let r = Workload.run ~terminals:1 ~txns_per_terminal:50 ~params:small ~arena_mb:128 ~config () in
  check_int "all transactions accounted" 50 (r.Workload.committed + r.Workload.aborted);
  check_bool "positive throughput" true (r.Workload.tpm > 0.)

let test_workload_multi_terminal () =
  let r =
    Workload.run ~terminals:4 ~txns_per_terminal:25 ~params:small ~arena_mb:128
      ~config:Workload.Rewind_opt_dlog ()
  in
  check_int "all transactions" 100 (r.Workload.committed + r.Workload.aborted);
  check_bool "positive time" true (r.Workload.sim_ns > 0);
  check_int "no shared lock, no conflicts" 0 r.Workload.retried

(* Conflict retries are bookkeeping, not transactions: under the coarse
   data lock every submitted transaction still ends exactly once in
   committed or aborted, with retries reported separately. *)
let test_workload_conflict_retries () =
  let r =
    Workload.run ~terminals:4 ~txns_per_terminal:25 ~params:small ~arena_mb:128
      ~config:Workload.Rewind_naive ()
  in
  check_int "all transactions accounted once" 100
    (r.Workload.committed + r.Workload.aborted);
  check_bool "contention on the coarse lock was retried" true
    (r.Workload.retried > 0)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "tpcc"
    [
      ( "generation",
        [
          tc "rng deterministic" `Quick test_rng_deterministic;
          tc "datagen loads" `Quick test_datagen_loads;
          tc "request shape" `Quick test_request_shape;
          tc "1% abort rate" `Quick test_abort_rate;
        ] );
      ( "neworder",
        [
          tc "effects (naive)" `Quick (test_neworder_effects Schema.Naive);
          tc "effects (optimized)" `Quick (test_neworder_effects Schema.Optimized);
          tc "abort rolls back (naive)" `Quick (test_abort_rolls_back Schema.Naive);
          tc "abort rolls back (optimized)" `Quick
            (test_abort_rolls_back Schema.Optimized);
          tc "crash recovery" `Quick test_crash_recovery;
        ] );
      ( "workload",
        [
          tc "single terminal (nvm)" `Quick
            (test_workload_single_terminal Workload.Nvm_naive);
          tc "single terminal (rewind naive)" `Quick
            (test_workload_single_terminal Workload.Rewind_naive);
          tc "single terminal (rewind opt)" `Quick
            (test_workload_single_terminal Workload.Rewind_opt);
          tc "multi terminal (dlog)" `Quick test_workload_multi_terminal;
          tc "conflict retries (naive lock)" `Quick test_workload_conflict_retries;
        ] );
    ]
