(* TPC-C substrate tests: deterministic generation, new-order semantics in
   both layouts, abort/rollback behaviour, crash recovery of the database,
   consistency probes, workload smoke tests — and the five-transaction
   mix: order-status / delivery (deferred) / stock-level semantics,
   multi-warehouse loading, the mixed closed-loop driver, and a
   crash-at-every-persistence-event sweep over a mixed workload
   (including mid-delivery) at 1 and 4 log partitions. *)

open Rewind_nvm
open Rewind_tpcc
module San = Rewind_analysis.Sanitizer

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let small = Datagen.small

let mk ?(layout = Schema.Naive) ?(warehouses = 1) ?(params = small) () =
  let arena = Arena.create ~size_bytes:(256 lsl 20) () in
  let alloc = Alloc.create arena in
  let db = Schema.create ~layout ~warehouses Rewind_pds.Btree.Direct_nvm alloc in
  Datagen.load ~params db 0;
  (arena, alloc, db)

let with_tm arena alloc db =
  let tm = Rewind.Tm.create ~cfg:Rewind.config_1l_nfp alloc ~root_slot:3 in
  ignore arena;
  ignore alloc;
  (tm, Schema.rebind db (Rewind_pds.Btree.Logged tm))

(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.next a = Rng.next b)
  done;
  let r = Rng.create 1 in
  for _ = 1 to 1000 do
    let v = Rng.int r 5 15 in
    check_bool "in range" true (v >= 5 && v <= 15)
  done

let test_datagen_loads () =
  let _, _, db = mk () in
  check_int "items" small.Datagen.items (Rewind_pds.Btree.size db.Schema.item);
  check_int "stock" small.Datagen.items
    (Rewind_pds.Btree.size (Schema.stock_tree db 1));
  check_int "customers"
    (Schema.districts * small.Datagen.customers_per_district)
    (Rewind_pds.Btree.size (Schema.customer_tree db 1));
  for d = 1 to Schema.districts do
    check_bool "district row" true (Schema.district_row db 1 d <> 0)
  done

let test_datagen_multi_warehouse () =
  let params =
    { Datagen.items = 20; customers_per_district = 5; initial_orders = 3;
      undelivered = 2 }
  in
  List.iter
    (fun layout ->
      let _, _, db = mk ~layout ~warehouses:2 ~params () in
      for w = 1 to 2 do
        for d = 1 to Schema.districts do
          check_bool "district row" true (Schema.district_row db w d <> 0);
          (* 3 initial orders, the newest 2 undelivered *)
          for o = 1 to params.Datagen.initial_orders do
            let orow =
              match
                Rewind_pds.Btree.lookup (Schema.order_tree db w d)
                  (Schema.key_order db w d o)
              with
              | Some v -> Int64.to_int v
              | None -> Alcotest.failf "w%d d%d: initial order %d missing" w d o
            in
            let delivered = Schema.row_get db orow Schema.o_carrier_id <> 0L in
            let queued =
              Rewind_pds.Btree.mem
                (Schema.new_order_tree db w d)
                (Schema.key_order db w d o)
            in
            check_bool
              (Fmt.str "w%d d%d o%d: delivered iff not queued" w d o)
              delivered (not queued);
            check_bool
              (Fmt.str "w%d d%d o%d: oldest delivered" w d o)
              (o = 1) delivered
          done
        done
      done;
      check_bool "delivery invariant over the initial population" true
        (Workload.check_delivery_consistency db))
    [ Schema.Naive; Schema.Optimized ]

let test_request_shape () =
  let rng = Rng.create 3 in
  for _ = 1 to 200 do
    let rq = Neworder.gen_request rng ~items:small.Datagen.items in
    check_bool "district" true (rq.Neworder.rq_district >= 1 && rq.Neworder.rq_district <= 10);
    let n = List.length rq.Neworder.rq_lines in
    check_bool "5-15 lines" true (n >= 5 && n <= 15);
    List.iter
      (fun l ->
        check_bool "item in range" true
          (l.Neworder.li_item >= 1 && l.Neworder.li_item <= small.Datagen.items))
      rq.Neworder.rq_lines
  done

let test_abort_rate () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let aborts = ref 0 in
  for _ = 1 to n do
    let rq = Neworder.gen_request rng ~items:small.Datagen.items in
    if rq.Neworder.rq_invalid then incr aborts
  done;
  let rate = float_of_int !aborts /. float_of_int n in
  check_bool "~1% aborts" true (rate > 0.005 && rate < 0.02)

let test_mix_weights () =
  let rng = Rng.create 5 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let slot =
      match Mix.gen rng ~items:small.Datagen.items with
      | Mix.New_order _ -> 0
      | Mix.Payment _ -> 1
      | Mix.Order_status _ -> 2
      | Mix.Delivery _ -> 3
      | Mix.Stock_level _ -> 4
    in
    counts.(slot) <- counts.(slot) + 1
  done;
  let pct i = 100. *. float_of_int counts.(i) /. float_of_int n in
  check_bool "new-order ~45%" true (pct 0 > 42. && pct 0 < 48.);
  check_bool "payment ~43%" true (pct 1 > 40. && pct 1 < 46.);
  check_bool "order-status ~4%" true (pct 2 > 2.5 && pct 2 < 5.5);
  check_bool "delivery ~4%" true (pct 3 > 2.5 && pct 3 < 5.5);
  check_bool "stock-level ~4%" true (pct 4 > 2.5 && pct 4 < 5.5)

let run_fixed db tm_opt ~district ~invalid =
  let rq =
    {
      Neworder.rq_warehouse = 1;
      rq_district = district;
      rq_customer = 1;
      rq_lines = [ { Neworder.li_item = 1; li_qty = 3 }; { li_item = 2; li_qty = 1 } ];
      rq_invalid = invalid;
    }
  in
  match tm_opt with
  | Some tm -> Neworder.run_transactional db tm rq
  | None -> Neworder.run_raw db rq

let stock_row db i =
  Int64.to_int
    (Option.get (Rewind_pds.Btree.lookup (Schema.stock_tree db 1) (Schema.key_stock db 1 i)))

let test_neworder_effects layout () =
  let arena, alloc, db0 = mk ~layout () in
  let tm, db = with_tm arena alloc db0 in
  let drow = Schema.district_row db 1 1 in
  let stock1 = Int64.to_int (Schema.row_get db (stock_row db 1) Schema.s_quantity) in
  let outcome = run_fixed db (Some tm) ~district:1 ~invalid:false in
  check_bool "committed" true (outcome = Neworder.Committed);
  check_int "next_o_id advanced" 2
    (Int64.to_int (Schema.row_get db drow Schema.d_next_o_id));
  check_bool "order row present" true
    (Rewind_pds.Btree.lookup (Schema.order_tree db 1 1) (Schema.key_order db 1 1 1) <> None);
  check_bool "order lines present" true
    (Rewind_pds.Btree.lookup (Schema.order_line_tree db 1 1)
       (Schema.key_order_line db 1 1 1 1)
    <> None);
  let q = Int64.to_int (Schema.row_get db (stock_row db 1) Schema.s_quantity) in
  check_bool "stock decremented (mod refill)" true (q <> stock1);
  check_bool "consistent" true (Workload.check_consistency db)

let test_abort_rolls_back layout () =
  let arena, alloc, db0 = mk ~layout () in
  let tm, db = with_tm arena alloc db0 in
  ignore (run_fixed db (Some tm) ~district:2 ~invalid:false);
  let drow = Schema.district_row db 1 2 in
  let before_noid = Schema.row_get db drow Schema.d_next_o_id in
  let outcome = run_fixed db (Some tm) ~district:2 ~invalid:true in
  check_bool "aborted" true (outcome = Neworder.Aborted);
  check_bool "next_o_id restored" true
    (Schema.row_get db drow Schema.d_next_o_id = before_noid);
  check_bool "no phantom order" true
    (Rewind_pds.Btree.lookup (Schema.order_tree db 1 2) (Schema.key_order db 1 2 2) = None);
  check_bool "consistent after abort" true (Workload.check_consistency db)

let test_crash_recovery () =
  let arena, alloc, db0 = mk () in
  let tm, db = with_tm arena alloc db0 in
  ignore (run_fixed db (Some tm) ~district:3 ~invalid:false);
  ignore (run_fixed db (Some tm) ~district:3 ~invalid:false);
  (* a third transaction left in flight *)
  let txn = Rewind.Tm.begin_txn tm in
  let drow = Schema.district_row db 1 3 in
  Schema.row_set db tm txn drow Schema.d_next_o_id 999L;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let _tm2 = Rewind.Tm.attach ~cfg:Rewind.config_1l_nfp alloc2 ~root_slot:3 in
  check_int "two committed orders" 3
    (Int64.to_int (Schema.row_get db drow Schema.d_next_o_id));
  check_bool "orders intact" true
    (Rewind_pds.Btree.lookup (Schema.order_tree db 1 3) (Schema.key_order db 1 3 2) <> None);
  check_bool "consistent after recovery" true (Workload.check_consistency db)

(* ------------------------------------------------------------------ *)
(* The three read-side / deferred transactions                         *)
(* ------------------------------------------------------------------ *)

let test_orderstatus layout () =
  let arena, alloc, db0 = mk ~layout () in
  let tm, db = with_tm arena alloc db0 in
  ignore (run_fixed db (Some tm) ~district:1 ~invalid:false);
  (match
     Orderstatus.run db
       { Orderstatus.os_warehouse = 1; os_district = 1; os_customer = 1 }
   with
  | None -> Alcotest.fail "order-status found nothing"
  | Some st ->
      check_int "found the order" 1 st.Orderstatus.st_order;
      check_int "line count" 2 st.Orderstatus.st_lines;
      check_int "undelivered" 0 st.Orderstatus.st_carrier;
      check_bool "total priced" true (st.Orderstatus.st_total > 0L));
  (* a customer with no orders *)
  check_bool "absent customer" true
    (Orderstatus.run db
       { Orderstatus.os_warehouse = 1; os_district = 4; os_customer = 9 }
    = None)

let test_delivery layout () =
  let params =
    { Datagen.items = 20; customers_per_district = 5; initial_orders = 2;
      undelivered = 2 }
  in
  let arena, alloc, db0 = mk ~layout ~warehouses:2 ~params () in
  let tm, db = with_tm arena alloc db0 in
  let q = Delivery.queue_create () in
  check_int "nothing pending" 0 (Delivery.pending q);
  check_bool "empty queue: no deferred txn" true
    (Delivery.execute_deferred db tm q = None);
  Delivery.enqueue q { Delivery.dl_warehouse = 1; dl_carrier = 7 };
  check_int "one pending" 1 (Delivery.pending q);
  (* oldest undelivered order of every district of warehouse 1 *)
  (match Delivery.execute_deferred db tm q with
  | Some n -> check_int "delivered one order per district" Schema.districts n
  | None -> Alcotest.fail "queue was not drained");
  check_int "queue drained" 0 (Delivery.pending q);
  for d = 1 to Schema.districts do
    let orow =
      Int64.to_int
        (Option.get
           (Rewind_pds.Btree.lookup (Schema.order_tree db 1 d)
              (Schema.key_order db 1 d 1)))
    in
    check_int (Fmt.str "d%d: carrier stamped" d) 7
      (Int64.to_int (Schema.row_get db orow Schema.o_carrier_id));
    check_bool (Fmt.str "d%d: new-order entry gone" d) false
      (Rewind_pds.Btree.mem (Schema.new_order_tree db 1 d)
         (Schema.key_order db 1 d 1));
    (* the second initial order is still awaiting delivery *)
    check_bool (Fmt.str "d%d: next order still queued" d) true
      (Rewind_pds.Btree.mem (Schema.new_order_tree db 1 d)
         (Schema.key_order db 1 d 2))
  done;
  (* warehouse 2 untouched *)
  check_bool "other warehouse untouched" true
    (Rewind_pds.Btree.mem (Schema.new_order_tree db 2 1)
       (Schema.key_order db 2 1 1));
  check_bool "delivery invariant" true (Workload.check_delivery_consistency db);
  (* customers were credited *)
  let credited = ref 0 in
  for d = 1 to Schema.districts do
    for c = 1 to params.Datagen.customers_per_district do
      let crow =
        Int64.to_int
          (Option.get
             (Rewind_pds.Btree.lookup (Schema.customer_tree db 1)
                (Schema.key_customer db 1 d c)))
      in
      credited :=
        !credited + Int64.to_int (Schema.row_get db crow Schema.c_delivery_cnt)
    done
  done;
  check_int "one delivery count per district" Schema.districts !credited

let test_stocklevel layout () =
  let arena, alloc, db0 = mk ~layout () in
  let tm, db = with_tm arena alloc db0 in
  ignore (run_fixed db (Some tm) ~district:1 ~invalid:false);
  let low_all =
    Stocklevel.run db
      { Stocklevel.sl_warehouse = 1; sl_district = 1; sl_threshold = 1_000 }
  in
  (* the fixed new-order references items 1 and 2 *)
  check_int "all items below a huge threshold" 2 low_all;
  check_int "none below zero threshold" 0
    (Stocklevel.run db
       { Stocklevel.sl_warehouse = 1; sl_district = 1; sl_threshold = 0 });
  check_int "empty district" 0
    (Stocklevel.run db
       { Stocklevel.sl_warehouse = 1; sl_district = 5; sl_threshold = 1_000 })

(* ------------------------------------------------------------------ *)
(* Workload drivers                                                    *)
(* ------------------------------------------------------------------ *)

let test_workload_single_terminal config () =
  let r = Workload.run ~terminals:1 ~txns_per_terminal:50 ~params:small ~arena_mb:128 ~config () in
  check_int "all transactions accounted" 50 (r.Workload.committed + r.Workload.aborted);
  check_bool "positive throughput" true (r.Workload.tpm > 0.)

let test_workload_multi_terminal () =
  let r =
    Workload.run ~terminals:4 ~txns_per_terminal:25 ~params:small ~arena_mb:128
      ~config:Workload.Rewind_opt_dlog ()
  in
  check_int "all transactions" 100 (r.Workload.committed + r.Workload.aborted);
  check_bool "positive time" true (r.Workload.sim_ns > 0);
  check_int "no shared lock, no conflicts" 0 r.Workload.retried

(* Conflict retries are bookkeeping, not transactions: under the coarse
   data lock every submitted transaction still ends exactly once in
   committed or aborted, with retries reported separately. *)
let test_workload_conflict_retries () =
  let r =
    Workload.run ~terminals:4 ~txns_per_terminal:25 ~params:small ~arena_mb:128
      ~config:Workload.Rewind_naive ()
  in
  check_int "all transactions accounted once" 100
    (r.Workload.committed + r.Workload.aborted);
  check_bool "contention on the coarse lock was retried" true
    (r.Workload.retried > 0)

let test_mix_driver partitions () =
  let r, db =
    Workload.run_mix ~warehouses:2 ~terminals_per_warehouse:2
      ~txns_per_terminal:50 ~partitions ~arena_mb:128 ()
  in
  check_int "all transactions accounted" 200
    (r.Workload.mix_committed + r.Workload.mix_aborted);
  check_bool "ran the writers" true (r.Workload.mix_new_orders > 0);
  check_bool "deferred deliveries executed" true (r.Workload.mix_deliveries > 0);
  check_bool "positive tpmC" true (r.Workload.mix_tpmc > 0.);
  check_bool "consistent" true r.Workload.mix_consistent;
  check_bool "trees well-formed" true
    (Array.for_all Rewind_pds.Btree.well_formed db.Schema.orders)

(* ------------------------------------------------------------------ *)
(* Mixed-workload crash sweep                                          *)
(* ------------------------------------------------------------------ *)

(* All five transaction types over two warehouses — including delivery's
   deferred execution — with a crash armed at every persistence event of
   the run; after each crash, recovery must be sanitizer-clean and the
   database must satisfy every mixed-workload invariant.  Covers the
   force, batch-group, and two-layer configurations at 1 and 4 log
   partitions (home-warehouse pinned). *)

let sweep_root = 3

(* No initial orders: the scripted new-orders create the only undelivered
   work, so the deferred delivery transaction visits exactly the districts
   they landed in — keeping the event window (and the O(events^2) sweep)
   small without losing mid-delivery crash points. *)
let sweep_params =
  { Datagen.items = 10; customers_per_district = 3; initial_orders = 0;
    undelivered = 0 }

let sweep_configs =
  [
    ("1l-fp", Rewind.config_1l_fp);
    ("batch8", Rewind.config_batch ~group:8 ());
    ("2l-nfp", Rewind.config_2l_nfp);
  ]

let shadow_events arena =
  let s = Arena.stats arena in
  s.Stats.nt_stores + s.Stats.flushes

let mix_sweep_setup cfg =
  let arena = Arena.create ~size_bytes:(16 lsl 20) () in
  let alloc = Alloc.create arena in
  let db =
    Schema.create ~layout:Schema.Optimized ~warehouses:2
      Rewind_pds.Btree.Direct_nvm alloc
  in
  Datagen.load ~params:sweep_params db 0;
  let tm = Rewind.Tm.create ~cfg alloc ~root_slot:sweep_root in
  let db = Schema.rebind db (Rewind_pds.Btree.Logged tm) in
  (arena, tm, db)

(* Deterministic scripted mix: per warehouse one of each type, with
   delivery enqueued and immediately executed as its deferred
   transaction (so the sweep's crash points land inside it). *)
let mix_sweep_workload tm db =
  let rng = Rng.create 4242 in
  let queue = Delivery.queue_create () in
  let home w = (w - 1) mod Rewind.Tm.partitions tm in
  for w = 1 to 2 do
    let customers = sweep_params.Datagen.customers_per_district in
    ignore
      (Neworder.run_transactional ~home:(home w) db tm
         (Neworder.gen_request ~warehouse:w ~customers rng
            ~items:sweep_params.Datagen.items));
    Payment.run_transactional ~home:(home w) db tm
      (Payment.gen_request ~warehouse:w ~customers rng);
    ignore
      (Orderstatus.run db (Orderstatus.gen_request ~warehouse:w ~customers rng));
    Delivery.enqueue queue (Delivery.gen_request ~warehouse:w rng);
    ignore (Mix.drain_deliveries ~home:(home w) db tm queue);
    ignore (Stocklevel.run db (Stocklevel.gen_request ~warehouse:w rng))
  done

let test_mix_crash_sweep (cname, cfg0) n_parts () =
  let cfg = Rewind.with_partitions n_parts cfg0 in
  (* Dry run: count the persistence events of the scripted mix. *)
  let arena, tm, db = mix_sweep_setup cfg in
  let before = shadow_events arena in
  mix_sweep_workload tm db;
  let events = shadow_events arena - before in
  check_bool (Fmt.str "%s p%d: mix persists events" cname n_parts) true
    (events > 50);
  check_bool (Fmt.str "%s p%d: dry run consistent" cname n_parts) true
    (Workload.check_mix_consistency db);
  let tried = ref 0 in
  for k = 1 to events do
    let arena, tm, db = mix_sweep_setup cfg in
    (* arm_crash counts down from the arming point, so [k - 1] makes the
       k-th workload-window persistence event the crash. *)
    Arena.arm_crash arena ~after:(k - 1);
    (match mix_sweep_workload tm db with
    | () -> Arena.disarm_crash arena
    | exception Arena.Crash -> ());
    if Arena.crashed arena then begin
      incr tried;
      let alloc2 = Alloc.recover arena in
      let san = San.attach ~mode:San.Collect arena in
      let tm2 = Rewind.Tm.attach ~cfg alloc2 ~root_slot:sweep_root in
      check_int
        (Fmt.str "%s p%d k=%d: recovery sanitizer-clean" cname n_parts k)
        0
        (List.length (San.violations san));
      San.detach san;
      let db2 = Schema.rebind ~alloc:alloc2 db (Rewind_pds.Btree.Logged tm2) in
      if not (Workload.check_mix_consistency db2) then
        Alcotest.failf "%s p%d: crash at event %d/%d: inconsistent recovery"
          cname n_parts k events
    end
  done;
  check_bool (Fmt.str "%s p%d: sweep hit crash points" cname n_parts) true
    (!tried > 0)

(* ------------------------------------------------------------------ *)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "tpcc"
    [
      ( "generation",
        [
          tc "rng deterministic" `Quick test_rng_deterministic;
          tc "datagen loads" `Quick test_datagen_loads;
          tc "datagen multi-warehouse" `Quick test_datagen_multi_warehouse;
          tc "request shape" `Quick test_request_shape;
          tc "1% abort rate" `Quick test_abort_rate;
          tc "mix weights 45/43/4/4/4" `Quick test_mix_weights;
        ] );
      ( "neworder",
        [
          tc "effects (naive)" `Quick (test_neworder_effects Schema.Naive);
          tc "effects (optimized)" `Quick (test_neworder_effects Schema.Optimized);
          tc "abort rolls back (naive)" `Quick (test_abort_rolls_back Schema.Naive);
          tc "abort rolls back (optimized)" `Quick
            (test_abort_rolls_back Schema.Optimized);
          tc "crash recovery" `Quick test_crash_recovery;
        ] );
      ( "fullmix",
        [
          tc "order-status (naive)" `Quick (test_orderstatus Schema.Naive);
          tc "order-status (optimized)" `Quick (test_orderstatus Schema.Optimized);
          tc "delivery deferred (naive)" `Quick (test_delivery Schema.Naive);
          tc "delivery deferred (optimized)" `Quick (test_delivery Schema.Optimized);
          tc "stock-level (naive)" `Quick (test_stocklevel Schema.Naive);
          tc "stock-level (optimized)" `Quick (test_stocklevel Schema.Optimized);
        ] );
      ( "workload",
        [
          tc "single terminal (nvm)" `Quick
            (test_workload_single_terminal Workload.Nvm_naive);
          tc "single terminal (rewind naive)" `Quick
            (test_workload_single_terminal Workload.Rewind_naive);
          tc "single terminal (rewind opt)" `Quick
            (test_workload_single_terminal Workload.Rewind_opt);
          tc "multi terminal (dlog)" `Quick test_workload_multi_terminal;
          tc "conflict retries (naive lock)" `Quick test_workload_conflict_retries;
          tc "five-transaction mix (1 partition)" `Quick (test_mix_driver 1);
          tc "five-transaction mix (4 partitions)" `Quick (test_mix_driver 4);
        ] );
      ( "mix-crash-sweep",
        List.concat_map
          (fun ((cname, _) as c) ->
            List.map
              (fun n_parts ->
                tc
                  (Fmt.str "%s, %d partition(s), crash at every event" cname
                     n_parts)
                  `Slow
                  (test_mix_crash_sweep c n_parts))
              [ 1; 4 ])
          sweep_configs );
    ]
