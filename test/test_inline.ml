(* Inline compact log records: the allocation-free small-write fast path.

   Covers the encoding itself (roundtrips, eligibility edges), the append
   path on both bucketed variants, crash sweeps over every configuration
   with inline-eligible workloads, a deliberately torn inline pair that
   recovery must truncate (mirroring test_faults.ml's full-record torn
   tests), and exhaustive crash-state enumeration over inline appends. *)

open Rewind_nvm
open Rewind
module Enum = Rewind_analysis.Enumerator

let root_slot = 2

let configs =
  [
    ("1L-NFP", Rewind.config_1l_nfp);
    ("1L-FP", Rewind.config_1l_fp);
    ("2L-NFP", Rewind.config_2l_nfp);
    ("2L-FP", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple);
    ("batch8", Rewind.config_batch ());
  ]

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)

let fresh_log variant =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  let alloc = Alloc.create arena in
  (arena, alloc, Log.create variant alloc ~root_slot)

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let test_roundtrip_update () =
  let arena, _alloc, log = fresh_log Log.Optimized in
  ignore
    (Log.append_record log ~lsn:12345 ~txn:77 ~typ:Record.Update ~addr:4096
       ~old_value:5L ~new_value:60000L ~undo_next:0);
  match Log.records log with
  | [ r ] ->
      check_bool "encoded inline" true (Record.is_inline r);
      check_int "lsn" 12345 (Record.lsn arena r);
      check_int "txn" 77 (Record.txn arena r);
      check_bool "typ" true (Record.typ arena r = Record.Update);
      check_int "addr" 4096 (Record.addr arena r);
      check_i64 "old" 5L (Record.old_value arena r);
      check_i64 "new" 60000L (Record.new_value arena r);
      check_int "undo_next" 0 (Record.undo_next arena r);
      check_int "prev_same_txn" 0 (Record.prev_same_txn arena r);
      check_bool "verify" true (Record.verify arena r)
  | l -> Alcotest.failf "expected 1 record, got %d" (List.length l)

let test_roundtrip_clr () =
  let arena, _alloc, log = fresh_log Log.Optimized in
  ignore
    (Log.append_record log ~lsn:99 ~txn:3 ~typ:Record.Clr ~addr:128
       ~old_value:7L ~new_value:42L ~undo_next:88);
  match Log.records log with
  | [ r ] ->
      check_bool "encoded inline" true (Record.is_inline r);
      check_bool "typ" true (Record.typ arena r = Record.Clr);
      (* a CLR's old value is write-only system-wide: dropped, decodes 0 *)
      check_i64 "old dropped" 0L (Record.old_value arena r);
      check_i64 "new" 42L (Record.new_value arena r);
      check_int "undo_next" 88 (Record.undo_next arena r)
  | l -> Alcotest.failf "expected 1 record, got %d" (List.length l)

let test_roundtrip_internal () =
  let arena, _alloc, log = fresh_log Log.Optimized in
  (* internal records (txn 0, lsn 0) carry 36-bit images *)
  let big = Int64.of_int ((1 lsl 36) - 1) in
  ignore
    (Log.append_record log ~lsn:0 ~txn:0 ~typ:Record.Update ~addr:512
       ~old_value:big ~new_value:(Int64.of_int 0xABCDE1234) ~undo_next:0);
  match Log.records log with
  | [ r ] ->
      check_bool "encoded inline" true (Record.is_inline r);
      check_int "lsn" 0 (Record.lsn arena r);
      check_int "txn" 0 (Record.txn arena r);
      check_i64 "old" big (Record.old_value arena r);
      check_i64 "new" 0xABCDE1234L (Record.new_value arena r)
  | l -> Alcotest.failf "expected 1 record, got %d" (List.length l)

let test_ineligible_fields () =
  let none ~ctx v =
    check_bool ctx true (v = None)
  in
  let enc ?(lsn = 1) ?(txn = 1) ?(typ = Record.Update) ?(addr = 64)
      ?(old_value = 1L) ?(new_value = 2L) ?(undo_next = 0) () =
    Record.inline_encode ~lsn ~txn ~typ ~addr ~old_value ~new_value ~undo_next
  in
  check_bool "baseline eligible" true (enc () <> None);
  none ~ctx:"txn too wide" (enc ~txn:(1 lsl 14) ());
  none ~ctx:"lsn too wide" (enc ~lsn:(1 lsl 26) ());
  none ~ctx:"user image too wide" (enc ~old_value:(Int64.of_int (1 lsl 16)) ());
  none ~ctx:"negative image" (enc ~new_value:(-1L) ());
  none ~ctx:"unaligned addr" (enc ~addr:65 ());
  none ~ctx:"addr out of range" (enc ~addr:(1 lsl 31) ());
  none ~ctx:"checkpoint not compact" (enc ~typ:Record.Checkpoint ());
  none ~ctx:"update with undo_next" (enc ~undo_next:5 ());
  (* internal eligibility is wider on images, narrower on provenance *)
  check_bool "internal wide image ok" true
    (enc ~lsn:0 ~txn:0 ~old_value:(Int64.of_int ((1 lsl 36) - 1)) () <> None);
  none ~ctx:"internal image too wide"
    (enc ~lsn:0 ~txn:0 ~old_value:(Int64.of_int (1 lsl 36)) ())

let test_fallback_to_full () =
  let arena, _alloc, log = fresh_log Log.Optimized in
  ignore
    (Log.append_record log ~lsn:1 ~txn:5 ~typ:Record.Update ~addr:64
       ~old_value:0L ~new_value:0x1_0000L ~undo_next:0);
  match Log.records log with
  | [ r ] ->
      check_bool "fell back to a full record" false (Record.is_inline r);
      check_i64 "new" 0x1_0000L (Record.new_value arena r);
      check_int "inline_appended" 0 (Log.inline_appended log)
  | l -> Alcotest.failf "expected 1 record, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Append path on the bucketed variants                                *)
(* ------------------------------------------------------------------ *)

let test_append_readback variant () =
  let arena, _alloc, log = fresh_log variant in
  let n = 100 in
  for i = 1 to n do
    ignore
      (Log.append_record log ~lsn:i ~txn:1 ~typ:Record.Update ~addr:(8 * i)
         ~old_value:(Int64.of_int (i - 1))
         ~new_value:(Int64.of_int i) ~undo_next:0)
  done;
  Log.flush_group log;
  check_int "all inline" n (Log.inline_appended log);
  check_int "length counts pairs once" n (Log.length log);
  let lsns = List.map (fun r -> Record.lsn arena r) (Log.records log) in
  check_bool "append order preserved" true
    (lsns = List.init n (fun i -> i + 1));
  let back = ref [] in
  Log.iter_back log (fun r -> back := Record.lsn arena r :: !back);
  check_bool "backward scan agrees" true (!back = lsns);
  (* a clean crash + attach keeps every persisted pair *)
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let log2 = Log.attach variant alloc2 ~root_slot in
  check_int "pairs survive reattach" n (Log.length log2);
  check_int "nothing torn" 0 (Log.torn_truncated log2)

let test_remove_inline variant () =
  let arena, _alloc, log = fresh_log variant in
  for i = 1 to 10 do
    ignore
      (Log.append_record log ~lsn:i ~txn:(i mod 2) ~typ:Record.Update
         ~addr:(8 * i) ~old_value:0L ~new_value:(Int64.of_int i) ~undo_next:0)
  done;
  Log.flush_group log;
  Log.remove_where log (fun r -> Record.txn arena r = 0);
  check_int "odd-txn records remain" 5 (Log.length log);
  Log.iter log (fun r -> check_int "survivor txn" 1 (Record.txn arena r))

(* ------------------------------------------------------------------ *)
(* Crash sweep: small-write workload over every configuration          *)
(* ------------------------------------------------------------------ *)

(* Same shape as test_faults.ml's script: inline-eligible values encode
   their writer so recovery invariants are checkable. *)
let script tm cells =
  for tno = 1 to 6 do
    let txn = Tm.begin_txn tm in
    for i = 0 to 1 do
      Tm.write tm txn
        ~addr:cells.((tno + i) mod 8)
        ~value:(Int64.of_int ((tno * 100) + i + 1))
    done;
    if tno mod 3 <> 0 then Tm.commit tm txn else Tm.rollback tm txn;
    if tno = 4 then Tm.checkpoint tm
  done

let fresh_setup cfg =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
  (arena, tm, cells)

let check_recovered ~ctx cfg arena cells =
  let alloc2 = Alloc.recover arena in
  let tm2 =
    try Tm.attach ~cfg alloc2 ~root_slot
    with e -> Alcotest.failf "%s: recovery raised %s" ctx (Printexc.to_string e)
  in
  if Log.length (Tm.log tm2) <> 0 then
    Alcotest.failf "%s: log not cleared after recovery" ctx;
  Array.iteri
    (fun idx c ->
      let v = Int64.to_int (Arena.read arena c) in
      if v <> 0 && v / 100 mod 3 = 0 then
        Alcotest.failf "%s: cell %d holds %d from rolled-back txn %d" ctx idx v
          (v / 100))
    cells

let test_crash_sweep (name, cfg) () =
  let events =
    let arena, tm, cells = fresh_setup cfg in
    let s0 =
      (Arena.stats arena).Stats.nt_stores + (Arena.stats arena).Stats.flushes
    in
    script tm cells;
    (Arena.stats arena).Stats.nt_stores
    + (Arena.stats arena).Stats.flushes - s0
  in
  for k = 0 to events + 2 do
    let arena, tm, cells = fresh_setup cfg in
    Arena.arm_crash arena ~after:k;
    (try
       script tm cells;
       Arena.disarm_crash arena
     with Arena.Crash -> ());
    if Arena.crashed arena then
      check_recovered ~ctx:(Fmt.str "%s crash %d" name k) cfg arena cells
  done

(* With the fast path live, the one-layer bucketed configurations must
   actually take it for this small-write workload. *)
let test_sweep_uses_inline () =
  List.iter
    (fun (name, cfg) ->
      let arena, tm, cells = fresh_setup cfg in
      script tm cells;
      ignore arena;
      check_bool (name ^ ": inline path exercised") true
        (Log.inline_appended (Tm.log tm) > 0))
    [
      ("1L-NFP", Rewind.config_1l_nfp);
      ("1L-FP", Rewind.config_1l_fp);
      ("batch8", Rewind.config_batch ());
    ]

(* ------------------------------------------------------------------ *)
(* Torn inline pair                                                    *)
(* ------------------------------------------------------------------ *)

(* Mirror of test_faults.ml's corrupt-record test, pinned to the inline
   representation: tear the pair's second word after the crash and
   require recovery to truncate it via the pair CRC. *)
let test_torn_pair_truncated (name, cfg) () =
  let arena, tm, cells = fresh_setup cfg in
  let txn = Tm.begin_txn tm in
  Tm.write tm txn ~addr:cells.(0) ~value:42L;
  Tm.commit tm txn;
  let txn2 = Tm.begin_txn tm in
  Tm.write tm txn2 ~addr:cells.(1) ~value:43L;
  Tm.write tm txn2 ~addr:cells.(2) ~value:44L;
  Log.flush_group (Tm.log tm);
  let recs = Log.records (Tm.log tm) in
  check_bool (name ^ ": records present pre-crash") true (recs <> []);
  let r = List.hd (List.rev recs) in
  check_bool (name ^ ": newest record is inline") true (Record.is_inline r);
  Arena.crash arena;
  Arena.corrupt arena (Record.inline_pair r + 8) 8;
  let alloc2 = Alloc.recover arena in
  let tm2 =
    try Tm.attach ~cfg alloc2 ~root_slot
    with e ->
      Alcotest.failf "%s: recovery raised %s" name (Printexc.to_string e)
  in
  check_bool
    (name ^ ": torn pair counted in stats")
    true
    ((Arena.stats arena).Stats.torn_records >= 1);
  (match Tm.last_recovery tm2 with
  | None -> Alcotest.fail (name ^ ": no recovery report")
  | Some rep ->
      check_bool (name ^ ": report shows truncation") true
        (rep.Tm.torn_truncated >= 1));
  check_int (name ^ ": log cleared") 0 (Log.length (Tm.log tm2))

(* ------------------------------------------------------------------ *)
(* Exhaustive crash-state enumeration over inline appends              *)
(* ------------------------------------------------------------------ *)

let test_enumerate (name, cfg) () =
  let arena = Arena.create ~size_bytes:(64 * 1024) () in
  let alloc = Alloc.create arena in
  let a = Alloc.alloc ~align:64 alloc 8 in
  let b = Alloc.alloc ~align:64 alloc 8 in
  let c = Alloc.alloc ~align:64 alloc 8 in
  let used_inline = ref false in
  let stats =
    Enum.run arena
      ~workload:(fun () ->
        let tm = Tm.create ~cfg alloc ~root_slot in
        let txn = Tm.begin_txn tm in
        Tm.write tm txn ~addr:a ~value:7L;
        Tm.write tm txn ~addr:b ~value:9L;
        (* third pair makes the END pair straddle a cacheline: the
           enumeration then includes torn-pair crash states *)
        Tm.write tm txn ~addr:c ~value:11L;
        Tm.commit tm txn;
        if Log.inline_appended (Tm.log tm) > 0 then used_inline := true)
      ~recover:(fun crashed ->
        let alloc2 = Alloc.recover crashed in
        let _tm = Tm.attach ~cfg alloc2 ~root_slot in
        (Arena.read crashed a, Arena.read crashed b, Arena.read crashed c))
      ~check:(fun (va, vb, vc) ->
        match (va, vb, vc) with
        | 0L, 0L, 0L | 7L, 9L, 11L -> None
        | _ -> Some (Fmt.str "partial state a=%Ld b=%Ld c=%Ld" va vb vc))
  in
  check_bool (name ^ ": inline path exercised") true !used_inline;
  check_bool (name ^ ": crash states explored") true (stats.Enum.crash_states > 0)

let () =
  let tc = Alcotest.test_case in
  let per_config name speed f =
    List.map (fun (cn, cfg) -> tc (name ^ " [" ^ cn ^ "]") speed (f (cn, cfg))) configs
  in
  let bucketed (_, cfg) = cfg.Tm.variant <> Log.Simple in
  let one_layer_bucketed c =
    bucketed c && (snd c).Tm.layers = Tm.One_layer
  in
  Alcotest.run "inline"
    [
      ( "encoding",
        [
          tc "update roundtrip" `Quick test_roundtrip_update;
          tc "clr roundtrip" `Quick test_roundtrip_clr;
          tc "internal roundtrip" `Quick test_roundtrip_internal;
          tc "ineligible fields" `Quick test_ineligible_fields;
          tc "fallback to full record" `Quick test_fallback_to_full;
        ] );
      ( "append",
        [
          tc "readback [optimized]" `Quick (test_append_readback Log.Optimized);
          tc "readback [batch8]" `Quick (test_append_readback (Log.Batch 8));
          tc "remove_where [optimized]" `Quick (test_remove_inline Log.Optimized);
          tc "remove_where [batch8]" `Quick (test_remove_inline (Log.Batch 8));
          tc "small-write workload goes inline" `Quick test_sweep_uses_inline;
        ] );
      ("crash-sweep", per_config "crash everywhere" `Slow test_crash_sweep);
      ( "torn-pair",
        List.filter_map
          (fun ((cn, cfg) as c) ->
            if one_layer_bucketed c then
              Some (tc ("torn pair [" ^ cn ^ "]") `Quick
                      (test_torn_pair_truncated (cn, cfg)))
            else None)
          configs );
      ( "enumerate",
        List.filter_map
          (fun ((cn, cfg) as c) ->
            if one_layer_bucketed c then
              Some (tc ("all crash states [" ^ cn ^ "]") `Slow
                      (test_enumerate (cn, cfg)))
            else None)
          configs );
    ]
