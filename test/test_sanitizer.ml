(* Persistency-sanitizer tests.

   Three claims are established here:
   1. the existing implementation is *clean* under the checker — a full
      transactional workload (commits, rollbacks, savepoints, checkpoint,
      crash + recovery) in every configuration runs with the sanitizer
      attached in Raise mode and triggers nothing;
   2. the checker *detects* deliberately introduced protocol violations —
      a user store written back before its undo record's batch group
      persisted (WAL-order), and a dropped group fence in the Batch log
      (unfenced commit) — each asserted as its specific diagnostic;
   3. the crash-state enumerator exhaustively passes on a Simple-log
      single-transaction trace and on an ADLL append/remove trace. *)

open Rewind_nvm
open Rewind
module Sanitizer = Rewind_analysis.Sanitizer
module Enumerator = Rewind_analysis.Enumerator

let all_configs =
  [
    ("1L-NFP", Rewind.config_1l_nfp);
    ("1L-FP", Rewind.config_1l_fp);
    ("2L-NFP", Rewind.config_2l_nfp);
    ("2L-FP", Rewind.config_2l_fp);
    ("1L-NFP-simple", { Rewind.config_1l_nfp with variant = Log.Simple });
    ("1L-NFP-batch", { Rewind.config_1l_nfp with variant = Log.Batch 8 });
    ("1L-FP-batch", { Rewind.config_1l_fp with variant = Log.Batch 8 });
  ]

let root_slot = 2

let fresh ?(size_bytes = 1 lsl 20) cfg =
  let arena = Arena.create ~size_bytes () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  (arena, alloc, tm)

let reattach cfg arena =
  let alloc = Alloc.recover arena in
  Tm.attach ~cfg alloc ~root_slot

let check_int = Alcotest.(check int)
let check_i64 = Alcotest.(check int64)
let check_bool = Alcotest.(check bool)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* 1. Clean bill: the implementation passes its own checker            *)
(* ------------------------------------------------------------------ *)

(* A workload touching every protocol path: commit, rollback, partial
   rollback to a savepoint, checkpoint, then a mid-transaction crash
   recovered with the sanitizer still attached. *)
let test_clean_workload cfg () =
  let arena, alloc, tm = fresh cfg in
  let c = Array.init 10 (fun _ -> Alloc.alloc alloc 8) in
  Sanitizer.with_sanitizer arena (fun s ->
      let t1 = Tm.begin_txn tm in
      Tm.write tm t1 ~addr:c.(0) ~value:11L;
      Tm.write tm t1 ~addr:c.(1) ~value:22L;
      Tm.commit tm t1;
      let t2 = Tm.begin_txn tm in
      Tm.write tm t2 ~addr:c.(0) ~value:99L;
      Tm.write tm t2 ~addr:c.(2) ~value:88L;
      Tm.rollback tm t2;
      let t3 = Tm.begin_txn tm in
      Tm.write tm t3 ~addr:c.(3) ~value:7L;
      let sp = Tm.savepoint tm t3 in
      Tm.write tm t3 ~addr:c.(4) ~value:8L;
      Tm.write tm t3 ~addr:c.(3) ~value:9L;
      Tm.rollback_to tm t3 sp;
      Tm.commit tm t3;
      Tm.checkpoint tm;
      (* mid-transaction crash, recovery under the sanitizer *)
      let t4 = Tm.begin_txn tm in
      Tm.write tm t4 ~addr:c.(0) ~value:55L;
      Arena.crash arena;
      let tm' = reattach cfg arena in
      check_i64 "losing txn undone" 11L (Arena.read arena c.(0));
      (* the model stays sound for post-recovery transactions *)
      let t5 = Tm.begin_txn tm' in
      Tm.write tm' t5 ~addr:c.(5) ~value:66L;
      Tm.commit tm' t5;
      check_i64 "post-recovery commit" 66L (Arena.read arena c.(5));
      check_bool "events were traced" true (Sanitizer.events_seen s > 0))

(* The full suite runs with Raise mode: any violation aborts the test.
   Run once more in Collect mode and assert the list is empty, so a
   refactor that swallows exceptions cannot mask a regression. *)
let test_clean_collect cfg () =
  let arena, alloc, tm = fresh cfg in
  let c = Array.init 4 (fun _ -> Alloc.alloc alloc 8) in
  Sanitizer.with_sanitizer ~mode:Sanitizer.Collect arena (fun s ->
      let t1 = Tm.begin_txn tm in
      Tm.write tm t1 ~addr:c.(0) ~value:1L;
      Tm.write tm t1 ~addr:c.(1) ~value:2L;
      Tm.commit tm t1;
      Tm.checkpoint tm;
      check_int "no violations"
        0
        (List.length (Sanitizer.violations s)))

(* ------------------------------------------------------------------ *)
(* 2. Detection of deliberate violations                               *)
(* ------------------------------------------------------------------ *)

let batch_cfg = { Rewind.config_1l_nfp with variant = Log.Batch 8 }

(* WAL-order: under Batch, a user store's line is pinned until its undo
   record's group persists.  Writing the line back anyway (the classic
   "flush the data early" bug) must be flagged at the flush, not at some
   later recovery. *)
let test_wal_order_violation () =
  let arena, alloc, tm = fresh batch_cfg in
  let addr = Alloc.alloc ~align:64 alloc 8 in
  Sanitizer.with_sanitizer ~mode:Sanitizer.Collect arena (fun s ->
      let t = Tm.begin_txn tm in
      Tm.write tm t ~addr ~value:7L;
      (* The undo record sits in an unpersisted group of 8; this flush
         writes the user store back ahead of it. *)
      Arena.flush_line arena addr;
      let vs = Sanitizer.violations s in
      check_bool "at least one violation" true (vs <> []);
      let v = List.hd vs in
      check_bool "kind is wal-order" true (v.Sanitizer.kind = Sanitizer.Wal_order);
      check_int "flagged the flushed word" addr v.Sanitizer.addr)

(* Dropped group fence: [flush_group] writes the slots back and advances
   the last-persistent-index, but skips the fence between them.  The
   protocol's own expectation annotation catches it immediately. *)
let test_dropped_group_fence () =
  let arena, alloc, tm = fresh batch_cfg in
  let addr = Alloc.alloc ~align:64 alloc 8 in
  Log.set_chaos_drop_group_fence (Tm.log tm) true;
  Sanitizer.with_sanitizer ~mode:Sanitizer.Collect arena (fun s ->
      let t = Tm.begin_txn tm in
      Tm.write tm t ~addr ~value:7L;
      Tm.commit tm t;
      let vs = Sanitizer.violations s in
      check_bool "at least one violation" true (vs <> []);
      List.iter
        (fun v ->
          check_bool "every violation is unfenced" true
            (v.Sanitizer.kind = Sanitizer.Unfenced))
        vs;
      check_bool "the group-slot expectation fired" true
        (List.exists
           (fun v ->
             contains v.Sanitizer.detail "batch group slots")
           vs))

(* With the chaos knob off the same workload is clean — the knob, not the
   workload, is what the sanitizer objects to. *)
let test_chaos_knob_off_is_clean () =
  let arena, alloc, tm = fresh batch_cfg in
  let addr = Alloc.alloc ~align:64 alloc 8 in
  Sanitizer.with_sanitizer arena (fun _ ->
      let t = Tm.begin_txn tm in
      Tm.write tm t ~addr ~value:7L;
      Tm.commit tm t)

(* A store to memory already returned to the allocator. *)
let test_store_freed () =
  let arena, alloc, _tm = fresh batch_cfg in
  let addr = Alloc.alloc ~align:64 alloc 64 in
  Sanitizer.with_sanitizer ~mode:Sanitizer.Collect arena (fun s ->
      Alloc.free ~align:64 alloc addr 64;
      Arena.write arena addr 1L;
      let vs = Sanitizer.violations s in
      check_bool "store-freed flagged" true
        (List.exists (fun v -> v.Sanitizer.kind = Sanitizer.Store_freed) vs))

(* A direct store to transactionally-managed data, bypassing the WAL. *)
let test_store_unlogged () =
  let arena, alloc, tm = fresh Rewind.config_1l_nfp in
  let addr = Alloc.alloc ~align:64 alloc 8 in
  Sanitizer.with_sanitizer ~mode:Sanitizer.Collect arena (fun s ->
      let t = Tm.begin_txn tm in
      Tm.write tm t ~addr ~value:1L;
      Tm.commit tm t;
      (* coverage expired at commit; this raw store has no undo record *)
      Arena.write arena addr 2L;
      let vs = Sanitizer.violations s in
      check_bool "store-unlogged flagged" true
        (List.exists (fun v -> v.Sanitizer.kind = Sanitizer.Store_unlogged) vs))

(* ------------------------------------------------------------------ *)
(* 3. Redundancy diagnostics                                           *)
(* ------------------------------------------------------------------ *)

let test_redundant_diagnostics () =
  let arena = Arena.create ~size_bytes:(1 lsl 16) () in
  let stats = Arena.stats arena in
  Sanitizer.with_sanitizer ~mode:Sanitizer.Collect arena (fun s ->
      Arena.write arena 1024 1L;
      Arena.flush_line arena 1024;
      Arena.flush_line arena 1024 (* clean: redundant *);
      Arena.fence arena (* orders the write-back: useful *);
      Arena.fence arena (* nothing since: redundant *);
      check_int "stats counted the clean flush" 1 stats.Stats.redundant_flushes;
      check_int "stats counted the empty fence" 1 stats.Stats.redundant_fences;
      let r = Sanitizer.report s in
      check_int "no violations" 0 r.Sanitizer.violation_count;
      check_int "one redundant-flush site" 1
        (List.length r.Sanitizer.redundant_flush_sites);
      check_bool "flush site is the line base" true
        (List.mem_assoc 1024 r.Sanitizer.redundant_flush_sites);
      check_int "one redundant-fence site" 1
        (List.length r.Sanitizer.redundant_fence_sites))

(* ------------------------------------------------------------------ *)
(* 4. Crash-state enumerator                                           *)
(* ------------------------------------------------------------------ *)

(* Simple-log, single transaction, no-force: the two user cells stay
   cached and dirty, so every fence boundary opens 2^2 crash states.
   Recovery must land on exactly (0,0) — transaction undone — or (7,9) —
   committed and redone — never a mixture. *)
let test_enumerate_simple_txn () =
  let cfg = { Rewind.config_1l_nfp with variant = Log.Simple } in
  let arena = Arena.create ~size_bytes:(1 lsl 16) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let a = Alloc.alloc ~align:64 alloc 8 in
  let b = Alloc.alloc ~align:64 alloc 8 in
  let stats =
    Enumerator.run arena
      ~workload:(fun () ->
        let t = Tm.begin_txn tm in
        Tm.write tm t ~addr:a ~value:7L;
        Tm.write tm t ~addr:b ~value:9L;
        Tm.commit tm t)
      ~recover:(fun crashed ->
        ignore (reattach cfg crashed);
        (Arena.read crashed a, Arena.read crashed b))
      ~check:(fun (va, vb) ->
        if (va, vb) = (0L, 0L) || (va, vb) = (7L, 9L) then None
        else Some (Fmt.str "recovered to (%Ld, %Ld)" va vb))
  in
  check_bool "several capture points" true (stats.Enumerator.capture_points > 3);
  check_bool "enumerated more states than captures" true
    (stats.Enumerator.crash_states >= stats.Enumerator.capture_points)

(* ADLL append/remove trace.  The list itself is all non-temporal stores,
   so a scratch cell is dirtied alongside every operation to open real
   subsets at each fence; recovery must find a well-formed list holding
   one of the five legal element sequences. *)
let test_enumerate_adll () =
  let arena = Arena.create ~size_bytes:(1 lsl 16) () in
  let alloc = Alloc.create arena in
  let scratch = Alloc.alloc ~align:64 alloc 8 in
  let adll = Adll.create alloc in
  let base = Adll.base adll in
  let middle = ref 0 in
  let legal =
    [ []; [ 100 ]; [ 100; 200 ]; [ 100; 200; 300 ]; [ 100; 300 ] ]
  in
  let stats =
    Enumerator.run arena
      ~workload:(fun () ->
        Arena.write arena scratch 1L;
        ignore (Adll.append adll 100);
        Arena.write arena scratch 2L;
        middle := Adll.append adll 200;
        Arena.write arena scratch 3L;
        ignore (Adll.append adll 300);
        Arena.write arena scratch 4L;
        Adll.remove adll !middle)
      ~recover:(fun crashed ->
        let alloc' = Alloc.recover crashed in
        let l = Adll.attach alloc' ~base in
        Adll.recover l;
        l)
      ~check:(fun l ->
        if not (Adll.well_formed l) then Some "recovered list malformed"
        else
          let es = Adll.elements l in
          if List.mem es legal then None
          else
            Some
              (Fmt.str "illegal element sequence [%a]"
                 Fmt.(list ~sep:semi int)
                 es))
  in
  check_bool "several capture points" true (stats.Enumerator.capture_points > 3);
  check_bool "subsets opened by the scratch line" true
    (stats.Enumerator.max_open_lines >= 1)

(* The enumerator must also catch a real bug: a structure whose "commit"
   is two separate cached stores with no ordering has crash states where
   only the second store survived. *)
let test_enumerate_catches_torn_pair () =
  let arena = Arena.create ~size_bytes:(1 lsl 16) () in
  let alloc = Alloc.create arena in
  let a = Alloc.alloc ~align:64 alloc 8 in
  let b = Alloc.alloc ~align:64 alloc 8 in
  let caught =
    try
      ignore
        (Enumerator.run arena
           ~workload:(fun () ->
             (* both-or-neither intent, cached stores, one fence after *)
             Arena.write arena a 1L;
             Arena.write arena b 1L;
             Arena.fence arena)
           ~recover:(fun crashed -> (Arena.read crashed a, Arena.read crashed b))
           ~check:(fun (va, vb) ->
             if va = vb then None
             else Some (Fmt.str "torn pair (%Ld, %Ld)" va vb)));
      false
    with Enumerator.Illegal _ -> true
  in
  check_bool "torn pair detected" true caught

(* ------------------------------------------------------------------ *)

let per_config name f =
  List.map
    (fun (cname, cfg) ->
      Alcotest.test_case (Fmt.str "%s [%s]" name cname) `Quick (f cfg))
    all_configs

let () =
  Alcotest.run "sanitizer"
    [
      ("clean-bill", per_config "full workload clean" test_clean_workload);
      ("clean-collect", per_config "collect mode empty" test_clean_collect);
      ( "detection",
        [
          Alcotest.test_case "wal-order: store flushed before group" `Quick
            test_wal_order_violation;
          Alcotest.test_case "dropped group fence" `Quick
            test_dropped_group_fence;
          Alcotest.test_case "chaos knob off is clean" `Quick
            test_chaos_knob_off_is_clean;
          Alcotest.test_case "store to freed region" `Quick test_store_freed;
          Alcotest.test_case "store bypassing the WAL" `Quick
            test_store_unlogged;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "redundant flush/fence counters" `Quick
            test_redundant_diagnostics;
        ] );
      ( "enumerator",
        [
          Alcotest.test_case "simple-log single transaction" `Quick
            test_enumerate_simple_txn;
          Alcotest.test_case "adll append/remove" `Quick test_enumerate_adll;
          Alcotest.test_case "catches a torn cached pair" `Quick
            test_enumerate_catches_torn_pair;
        ] );
    ]
