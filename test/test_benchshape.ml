(* Shape-regression tests: tiny versions of the paper's figures asserting
   the qualitative relationships the reproduction stands on.  If a change
   to the cost model or the core breaks "who wins", these fail long before
   anyone reads bench output. *)

open Rewind_benchlib

let check_bool = Alcotest.(check bool)

let ys_of series = List.map (fun r -> r.Series.ys) series.Series.rows
let col i rows = List.map (fun ys -> List.nth ys i) rows

let increasing xs =
  let rec go = function
    | a :: (b :: _ as rest) -> a <= b && go rest
    | _ -> true
  in
  go xs

let strictly_dominates a b = List.for_all2 (fun x y -> x > y) a b

(* fig3-left: 2L-FP > 2L-NFP > 1L-FP > 1L-NFP, and all overheads decrease
   with lower update intensity *)
let test_fig3_left_shape () =
  let s = Figures.fig3_left ~n_ops:1_000 () in
  let rows = ys_of s in
  check_bool "2L-FP worst" true (strictly_dominates (col 0 rows) (col 1 rows));
  check_bool "2L-NFP > 1L-FP" true (strictly_dominates (col 1 rows) (col 2 rows));
  check_bool "1L-FP > 1L-NFP" true (strictly_dominates (col 2 rows) (col 3 rows));
  check_bool "overhead grows with intensity" true (increasing (col 3 rows))

(* fig3-right: 1L grows with skip records, 2L stays flat (within 25 %) *)
let test_fig3_right_shape () =
  let s = Figures.fig3_right ~target_updates:15 () in
  let rows = ys_of s in
  let two_l = col 0 rows and one_l = col 1 rows in
  check_bool "1L grows" true
    (List.nth one_l (List.length one_l - 1) > 3. *. List.hd one_l);
  let mn = List.fold_left min (List.hd two_l) two_l in
  let mx = List.fold_left max (List.hd two_l) two_l in
  check_bool "2L flat" true (mx < 1.25 *. mn)

(* fig4-left: 1L rollback linear in skip records; crossover exists *)
let test_fig4_left_shape () =
  let s = Figures.fig4_left ~target_updates:15 () in
  let rows = ys_of s in
  let two_l = col 0 rows and one_l = col 1 rows in
  check_bool "1L grows" true (increasing one_l);
  check_bool "1L eventually exceeds 2L" true
    (List.nth one_l (List.length one_l - 1)
    > List.nth two_l (List.length two_l - 1))

(* fig4-right: one-layer recovery beats two-layer at every point *)
let test_fig4_right_shape () =
  let s = Figures.fig4_right ~target_updates:15 () in
  let rows = ys_of s in
  check_bool "1L recovery cheaper" true (strictly_dominates (col 0 rows) (col 1 rows))

(* fig7: Simple > Optimized > Batch > NVM >= DRAM at 100 % updates, and
   the baselines are at least an order of magnitude above REWIND *)
let test_fig7_shape () =
  let s = Figures.fig7_left ~n_records:800 ~n_ops:1_500 () in
  let last = List.nth (ys_of s) (List.length s.Series.rows - 1) in
  (match last with
  | [ simple; opt; batch; nvm; dram ] ->
      check_bool "simple > opt" true (simple > opt);
      check_bool "opt > batch" true (opt > batch);
      check_bool "batch > nvm" true (batch > nvm);
      check_bool "nvm >= dram" true (nvm >= dram)
  | _ -> Alcotest.fail "unexpected series");
  let s = Figures.fig7_right ~n_records:800 ~n_ops:1_500 () in
  let last = List.nth (ys_of s) (List.length s.Series.rows - 1) in
  match last with
  | [ bdb; stasis; rewind; shore ] ->
      check_bool "shore worst" true (shore > bdb && bdb > stasis);
      check_bool "rewind 10x better than stasis" true (stasis > 10. *. rewind)
  | _ -> Alcotest.fail "unexpected series"

(* fig8: rollback/recovery ordering Stasis > BDB > Shore > REWIND *)
let test_fig8_shape () =
  let check s =
    let last = List.nth (ys_of s) (List.length s.Series.rows - 1) in
    match last with
    | [ shore; bdb; stasis; rewind ] ->
        check_bool "stasis > bdb" true (stasis > bdb);
        check_bool "bdb > shore" true (bdb > shore);
        check_bool "shore > rewind" true (shore > rewind)
    | _ -> Alcotest.fail "unexpected series"
  in
  check (Figures.fig8_left ~n_records:800 ());
  check (Figures.fig8_right ~n_records:800 ())

(* fig10: larger batch groups are less fence-sensitive; the optimized log
   is the most sensitive *)
let test_fig10_shape () =
  let s = Figures.fig10 ~n_records:500 ~n_ops:1_000 () in
  let rows = ys_of s in
  let slope col_i =
    let c = col col_i rows in
    List.nth c (List.length c - 1) /. List.hd c
  in
  check_bool "batch32 least sensitive" true (slope 0 < slope 2);
  check_bool "batch8 < optimized" true (slope 2 < slope 3)

(* fig9 + lockfree: REWIND scales far better than the baselines; the
   lock-free latch beats the latched log at 8 threads *)
let test_fig9_shape () =
  let s = Figures.fig9 ~ops_per_thread:800 ~n_records:400 () in
  let rows = ys_of s in
  let last = List.nth rows (List.length rows - 1) in
  (match last with
  | [ _shore; bdb; _stasis; rewind; rewind_p8 ] ->
      check_bool "rewind beats bdb at 8 threads" true (bdb > 5. *. rewind);
      check_bool "8 partitions beat the single latch at 8 threads" true
        (rewind_p8 < rewind)
  | _ -> Alcotest.fail "unexpected series");
  let s = Figures.ablation_lockfree ~ops_per_thread:500 ~n_records:300 () in
  let rows = ys_of s in
  let last = List.nth rows (List.length rows - 1) in
  match last with
  | [ latched; lockfree ] ->
      check_bool "lock-free wins at 8 threads" true (lockfree < latched)
  | _ -> Alcotest.fail "unexpected series"

(* fig11: NVM fastest; distributed log within 1.5x; naive REWIND worst *)
let test_fig11_shape () =
  let bars = Figures.fig11 ~txns_per_terminal:40 () in
  let get name = List.assoc name bars in
  let nvm = get "Simple NVM B+Trees" in
  let dlog = get "REWIND Opt. Data Structure D.Log" in
  let opt = get "REWIND Opt. Data Structure" in
  let naive = get "REWIND Naive Data Structure" in
  check_bool "nvm fastest" true (nvm >= dlog && nvm >= opt && nvm >= naive);
  check_bool "dlog within 1.5x of nvm" true (nvm /. dlog < 1.5);
  check_bool "dlog beats shared log" true (dlog > opt);
  check_bool "naive worst" true (naive <= opt)

(* ablation-group: per-record cost decreases with group size and the gap
   widens with fence cost *)
let test_ablation_group_shape () =
  let s = Figures.ablation_group ~n_ops:4_000 () in
  let rows = ys_of s in
  check_bool "cheap fences: decreasing" true
    (increasing (List.rev (col 0 rows)));
  check_bool "expensive fences: decreasing" true
    (increasing (List.rev (col 1 rows)));
  let first = List.hd rows and last = List.nth rows (List.length rows - 1) in
  let gain col_i a b = List.nth a col_i /. List.nth b col_i in
  check_bool "grouping matters more at 1us fences" true
    (gain 1 first last > gain 0 first last)

(* benchdiff file handling: a gate that cannot run (missing or unreadable
   input) must say which file and why, as an [Error] the CLI maps to its
   own exit code — never a bare exception or a silent pass. *)

let contains hay needle =
  let lh = String.length hay and ln = String.length needle in
  let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
  go 0

let write_tmp name contents =
  let path = Filename.concat (Filename.get_temp_dir_name ()) name in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let valid_bench = {|[ {"name": "x", "ops": 10, "throughput": 5.0} ]|}

let test_benchdiff_missing_baseline () =
  match
    Benchdiff.compare_files ~tolerance:0.1
      ~baseline:"/nonexistent/benchdiff-baseline.json"
      ~current:(write_tmp "bd_current_ok.json" valid_bench)
  with
  | Ok _ -> Alcotest.fail "missing baseline must not compare"
  | Error msg ->
      check_bool "names the baseline" true (contains msg "baseline");
      check_bool "names the path" true (contains msg "benchdiff-baseline.json")

let test_benchdiff_missing_current () =
  match
    Benchdiff.compare_files ~tolerance:0.1
      ~baseline:(write_tmp "bd_baseline_ok.json" valid_bench)
      ~current:"/nonexistent/benchdiff-current.json"
  with
  | Ok _ -> Alcotest.fail "missing current must not compare"
  | Error msg ->
      check_bool "names the current side" true (contains msg "current");
      check_bool "names the path" true (contains msg "benchdiff-current.json")

let test_benchdiff_malformed_json () =
  let garbage = write_tmp "bd_garbage.json" "this is not json {" in
  match
    Benchdiff.compare_files ~tolerance:0.1
      ~baseline:(write_tmp "bd_baseline_ok2.json" valid_bench) ~current:garbage
  with
  | Ok _ -> Alcotest.fail "malformed current must not compare"
  | Error msg ->
      check_bool "says invalid JSON" true (contains msg "not valid JSON");
      check_bool "names the culprit file" true (contains msg "bd_garbage.json")

let test_benchdiff_self_compare () =
  let path = write_tmp "bd_self.json" valid_bench in
  match Benchdiff.compare_files ~tolerance:0.1 ~baseline:path ~current:path with
  | Error msg -> Alcotest.fail ("self-compare failed: " ^ msg)
  | Ok o ->
      check_bool "gated a metric" true (o.Benchdiff.checked > 0);
      check_bool "identical results pass" true (Benchdiff.passed o)

(* per-metric tolerance: a baseline leaf [<metric>_tolerance] overrides
   the global [--tolerance] for that one metric; the annotation itself is
   never gated and never reported missing. *)

let compare_strings ~tolerance ~baseline ~current =
  match
    Benchdiff.compare_files ~tolerance
      ~baseline:(write_tmp "bd_tol_baseline.json" baseline)
      ~current:(write_tmp "bd_tol_current.json" current)
  with
  | Error msg -> Alcotest.fail ("compare failed: " ^ msg)
  | Ok o -> o

let test_benchdiff_per_metric_tolerance () =
  (* 40% throughput drop: fails the 10% global gate, but the baseline
     grants that metric 50% *)
  let o =
    compare_strings ~tolerance:0.1
      ~baseline:
        {|[ {"name": "x", "ops": 10, "throughput": 10.0, "throughput_tolerance": 0.5} ]|}
      ~current:{|[ {"name": "x", "ops": 10, "throughput": 6.0} ]|}
  in
  check_bool "wide per-metric tolerance admits the drop" true
    (Benchdiff.passed o);
  check_bool "annotation leaf itself is not gated" true (o.Benchdiff.checked = 1);
  check_bool "annotation absent on current is not missing" true
    (o.Benchdiff.missing = [])

let test_benchdiff_tolerance_fallback () =
  (* the override is per metric: the un-annotated metric still uses the
     global tolerance and regresses *)
  let o =
    compare_strings ~tolerance:0.1
      ~baseline:
        {|[ {"name": "x", "ops": 10, "throughput": 10.0, "throughput_tolerance": 0.5, "sim_ns_per_op": 100.0} ]|}
      ~current:
        {|[ {"name": "x", "ops": 10, "throughput": 6.0, "sim_ns_per_op": 140.0} ]|}
  in
  check_bool "un-annotated metric falls back to global" false
    (Benchdiff.passed o);
  check_bool "exactly the fallback metric regressed" true
    (List.length o.Benchdiff.regressions = 1)

let test_benchdiff_new_metrics () =
  (* A gated metric only the current run produces cannot be judged; it
     must surface in [new_metrics] (a CLI warning) without failing the
     gate — and annotation leaves never count as new metrics. *)
  let o =
    compare_strings ~tolerance:0.1
      ~baseline:{|[ {"name": "x", "ops": 10, "throughput": 10.0} ]|}
      ~current:
        {|[ {"name": "x", "ops": 10, "throughput": 10.0,
             "latency_p99_sim_ns": 4096.0, "latency_p99_sim_ns_tolerance": 0.5,
             "row_count": 7.0} ]|}
  in
  check_bool "still passes" true (Benchdiff.passed o);
  check_bool "the gated current-only metric is reported" true
    (o.Benchdiff.new_metrics = [ "x/ops=10/latency_p99_sim_ns" ]);
  (* ungated leaves ("row_count") and tolerance annotations are not new
     metrics; a baseline that already has the leaf reports none *)
  let o2 =
    compare_strings ~tolerance:0.1
      ~baseline:
        {|[ {"name": "x", "ops": 10, "throughput": 10.0, "latency_p99_sim_ns": 4096.0} ]|}
      ~current:
        {|[ {"name": "x", "ops": 10, "throughput": 10.0, "latency_p99_sim_ns": 4096.0} ]|}
  in
  check_bool "known metrics are not new" true (o2.Benchdiff.new_metrics = [])

let test_benchdiff_tighter_per_metric () =
  (* the override can also tighten: 5% drop passes the 20% global but
     not the metric's own 1% *)
  let o =
    compare_strings ~tolerance:0.2
      ~baseline:
        {|[ {"name": "x", "ops": 10, "throughput": 10.0, "throughput_tolerance": 0.01} ]|}
      ~current:{|[ {"name": "x", "ops": 10, "throughput": 9.5} ]|}
  in
  check_bool "tight per-metric tolerance rejects the drop" false
    (Benchdiff.passed o)

let () =
  let tc = Alcotest.test_case in
  Alcotest.run "benchshape"
    [
      ( "benchdiff-files",
        [
          tc "missing baseline" `Quick test_benchdiff_missing_baseline;
          tc "missing current" `Quick test_benchdiff_missing_current;
          tc "malformed json" `Quick test_benchdiff_malformed_json;
          tc "self-compare passes" `Quick test_benchdiff_self_compare;
          tc "per-metric tolerance override" `Quick
            test_benchdiff_per_metric_tolerance;
          tc "global tolerance fallback" `Quick test_benchdiff_tolerance_fallback;
          tc "tighter per-metric tolerance" `Quick
            test_benchdiff_tighter_per_metric;
          tc "current-only gated metrics warn" `Quick
            test_benchdiff_new_metrics;
        ] );
      ( "figures",
        [
          tc "fig3-left ordering" `Slow test_fig3_left_shape;
          tc "fig3-right crossover" `Slow test_fig3_right_shape;
          tc "fig4-left crossover" `Slow test_fig4_left_shape;
          tc "fig4-right 1L wins" `Slow test_fig4_right_shape;
          tc "fig7 ordering" `Slow test_fig7_shape;
          tc "fig8 ordering" `Slow test_fig8_shape;
          tc "fig10 fence sensitivity" `Slow test_fig10_shape;
          tc "fig9 scaling + lockfree" `Slow test_fig9_shape;
          tc "fig11 ordering" `Slow test_fig11_shape;
          tc "ablation-group" `Slow test_ablation_group_shape;
        ] );
    ]
