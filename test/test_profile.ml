(* The span/phase profiler ([Probe]) and its wiring through the
   transaction manager: unit behaviour of the accumulator itself, the
   per-phase recovery profile exposed by [Tm.last_recovery_profile], the
   hot-path spans behind [Tm.set_probe], and the recovery-time benchmark
   built on top of them.

   The scoping test at the end is the regression for the cross-attach
   accounting bug: the arena's [Stats] counters are cumulative across
   crashes and reattaches, so attributing a recovery by differencing the
   arena totals against zero double-counts every earlier cycle.  Each
   recovery must get a fresh probe whose phase deltas cover exactly that
   recovery — two identical crash/recover cycles must profile the same,
   not 1x then 2x. *)

open Rewind_nvm
open Rewind
module Rbench = Rewind_benchlib.Recovery_bench

let root_slot = 2

let all_configs =
  [
    ("1l-nfp", Rewind.config_1l_nfp);
    ("1l-fp", Rewind.config_1l_fp);
    ("2l-nfp", Rewind.config_2l_nfp);
    ("2l-fp", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple);
    ("batch8", Rewind.config_batch ());
  ]

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let phase_names prof = List.map (fun p -> p.Probe.name) (Probe.phases prof)

(* ------------------------------------------------------------------ *)
(* 1. Probe accumulator                                                *)
(* ------------------------------------------------------------------ *)

let test_probe_spans () =
  let arena = Arena.create ~size_bytes:(1 lsl 16) () in
  let stats = Arena.stats arena in
  let p = Probe.create () in
  (* a span charges elapsed simulated time and the stats delta *)
  Probe.span p stats "write" (fun () ->
      Arena.write arena 1024 1L;
      Arena.flush_line arena 1024;
      Arena.fence arena);
  Probe.span p stats "idle" (fun () -> ());
  Probe.span p stats "write" (fun () ->
      Arena.write arena 2048 2L;
      Arena.flush_line arena 2048;
      Arena.fence arena);
  check_bool "phases in first-entry order" true
    (phase_names p = [ "write"; "idle" ]);
  let w = Option.get (Probe.find p "write") in
  check_int "two spans accumulated" 2 w.Probe.count;
  check_int "flushes attributed" 2 w.Probe.stats.Stats.flushes;
  check_int "fences attributed" 2 w.Probe.stats.Stats.fences;
  check_bool "simulated time charged" true (w.Probe.sim_ns > 0);
  let idle = Option.get (Probe.find p "idle") in
  check_int "idle span saw no flushes" 0 idle.Probe.stats.Stats.flushes;
  check_int "total is the sum" (w.Probe.sim_ns + idle.Probe.sim_ns)
    (Probe.total_sim_ns p);
  check_int "histogram holds every span" 2
    (List.fold_left (fun acc (_, n) -> acc + n) 0 (Probe.hist_buckets w))

(* A span must charge even when the body raises — a crash inside a
   checkpoint still belongs to the checkpoint's account. *)
let test_probe_span_on_exception () =
  let arena = Arena.create ~size_bytes:(1 lsl 16) () in
  let stats = Arena.stats arena in
  let p = Probe.create () in
  (try
     Probe.span p stats "boom" (fun () ->
         Arena.write arena 1024 1L;
         Arena.flush_line arena 1024;
         failwith "crash")
   with Failure _ -> ());
  let b = Option.get (Probe.find p "boom") in
  check_int "span counted" 1 b.Probe.count;
  check_int "flush attributed before the raise" 1 b.Probe.stats.Stats.flushes

(* ------------------------------------------------------------------ *)
(* 2. Recovery profile shape, per configuration                        *)
(* ------------------------------------------------------------------ *)

let crash_and_reattach cfg =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
  for tno = 1 to 3 do
    let t = Tm.begin_txn tm in
    for i = 0 to 3 do
      Tm.write tm t ~addr:cells.(i) ~value:(Int64.of_int ((tno * 10) + i))
    done;
    Tm.commit tm t
  done;
  let live = Tm.begin_txn tm in
  Tm.write tm live ~addr:cells.(7) ~value:99L;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  Tm.attach ~cfg alloc2 ~root_slot

let test_recovery_profile (name, cfg) () =
  let tm = crash_and_reattach cfg in
  let prof =
    match Tm.last_recovery_profile tm with
    | Some p -> p
    | None -> Alcotest.fail (name ^ ": attach left no recovery profile")
  in
  let names = phase_names prof in
  let has n = List.mem n names in
  check_bool (name ^ ": log-attach profiled") true (has "log-attach");
  check_bool (name ^ ": analysis profiled") true (has "analysis");
  check_bool (name ^ ": undo profiled") true (has "undo");
  check_bool (name ^ ": clearing profiled") true (has "clearing");
  check_bool
    (name ^ ": redo phase iff no-force")
    (cfg.Tm.policy = Tm.No_force)
    (has "redo");
  check_bool
    (name ^ ": index-rebuild iff two-layer")
    (cfg.Tm.layers = Tm.Two_layer)
    (has "index-rebuild");
  check_bool (name ^ ": recovery took simulated time") true
    (Probe.total_sim_ns prof > 0);
  (* rolling back the live transaction persists work — in the undo phase
     itself, or (Batch: the CLRs stay cached until the group flush) in
     the clearing pass that follows it *)
  let persisted n =
    match Probe.find prof n with
    | None -> 0
    | Some p -> p.Probe.stats.Stats.nvm_writes + p.Probe.stats.Stats.nt_stores
  in
  check_bool (name ^ ": undo+clearing wrote to NVM") true
    (persisted "undo" + persisted "clearing" > 0)

(* A fresh manager that has never recovered reports no profile. *)
let test_no_profile_before_recovery () =
  let arena = Arena.create ~size_bytes:(1 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create alloc ~root_slot in
  check_bool "no profile yet" true (Tm.last_recovery_profile tm = None)

(* ------------------------------------------------------------------ *)
(* 3. Per-recovery scope: two identical cycles profile identically     *)
(* ------------------------------------------------------------------ *)

let test_recovery_scope (name, cfg) () =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cell = Alloc.alloc ~align:64 alloc 8 in
  let cycle tm =
    let t = Tm.begin_txn tm in
    Tm.write tm t ~addr:cell ~value:7L;
    Tm.commit tm t;
    let live = Tm.begin_txn tm in
    Tm.write tm live ~addr:cell ~value:8L;
    Arena.crash arena;
    let alloc' = Alloc.recover arena in
    let tm' = Tm.attach ~cfg alloc' ~root_slot in
    let undo =
      Option.get (Probe.find (Option.get (Tm.last_recovery_profile tm')) "undo")
    in
    ( undo.Probe.stats.Stats.nvm_writes,
      undo.Probe.stats.Stats.flushes,
      undo.Probe.stats.Stats.fences,
      tm' )
  in
  let w1, fl1, fe1, tm2 = cycle tm in
  let w2, fl2, fe2, _ = cycle tm2 in
  (* The arena's cumulative counters have doubled by the second cycle;
     the profile must not have. *)
  check_int (name ^ ": second undo, same line writes") w1 w2;
  check_int (name ^ ": second undo, same flushes") fl1 fl2;
  check_int (name ^ ": second undo, same fences") fe1 fe2

(* ------------------------------------------------------------------ *)
(* 4. Hot-path spans via [Tm.set_probe]                                *)
(* ------------------------------------------------------------------ *)

let test_hot_path_probe () =
  let arena = Arena.create ~size_bytes:(4 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create alloc ~root_slot in
  let cell = Alloc.alloc alloc 8 in
  let p = Probe.create () in
  Tm.set_probe tm (Some p);
  for i = 1 to 5 do
    let t = Tm.begin_txn tm in
    Tm.write tm t ~addr:cell ~value:(Int64.of_int i);
    Tm.commit tm t
  done;
  Tm.checkpoint tm;
  let commit = Option.get (Probe.find p "commit") in
  check_int "five commits spanned" 5 commit.Probe.count;
  check_bool "commit charged time" true (commit.Probe.sim_ns > 0);
  let names = phase_names p in
  List.iter
    (fun n ->
      check_bool ("checkpoint sub-phase " ^ n) true (List.mem n names))
    [ "checkpoint"; "cp-persist"; "cp-clear"; "cp-compact" ];
  (* detaching the probe stops accumulation *)
  Tm.set_probe tm None;
  let t = Tm.begin_txn tm in
  Tm.write tm t ~addr:cell ~value:42L;
  Tm.commit tm t;
  check_int "no span after detach" 5 commit.Probe.count

(* ------------------------------------------------------------------ *)
(* 5. Recovery-time benchmark plumbing                                 *)
(* ------------------------------------------------------------------ *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_recovery_bench () =
  let results = Rbench.run ~sizes:[ 160 ] ~intervals:[ 0; 5 ] () in
  check_int "one row per config and point" (6 * 2) (List.length results);
  List.iter
    (fun r ->
      check_int
        (r.Rbench.config ^ ": recovery is sanitizer-clean")
        0 r.Rbench.sanitizer_violations;
      check_bool (r.Rbench.config ^ ": phases present") true
        (r.Rbench.phases <> []);
      check_bool (r.Rbench.config ^ ": recovery time measured") true
        (r.Rbench.recovery_sim_ns > 0))
    results;
  (* checkpointing shrinks the log left for recovery *)
  let log_at ckpt =
    List.fold_left
      (fun acc r ->
        if r.Rbench.checkpoint_every = ckpt then acc + r.Rbench.log_records
        else acc)
      0 results
  in
  check_bool "checkpoints shrink the recovered log" true (log_at 5 < log_at 0);
  let json = Rbench.to_json results in
  check_bool "json array" true
    (String.length json > 2 && json.[0] = '[');
  check_bool "json has phase rows" true (contains json "\"phase\": \"undo\"");
  let prom = Rbench.to_prometheus results in
  check_bool "prometheus total metric" true
    (contains prom "rewind_recovery_sim_ns{config=\"1l-nfp\"");
  check_bool "prometheus phase metric" true
    (contains prom "rewind_recovery_phase_sim_ns");
  check_bool "prometheus sanitizer metric" true
    (contains prom "rewind_recovery_sanitizer_violations")

(* ------------------------------------------------------------------ *)

let () =
  let per_config name speed f =
    List.map
      (fun (cn, cfg) ->
        Alcotest.test_case (Fmt.str "%s [%s]" name cn) speed (f (cn, cfg)))
      all_configs
  in
  Alcotest.run "profile"
    [
      ( "probe",
        [
          Alcotest.test_case "span accounting" `Quick test_probe_spans;
          Alcotest.test_case "span charges on exception" `Quick
            test_probe_span_on_exception;
        ] );
      ( "recovery-profile",
        per_config "phase shape" `Quick test_recovery_profile
        @ [
            Alcotest.test_case "none before first recovery" `Quick
              test_no_profile_before_recovery;
          ] );
      ( "recovery-scope",
        per_config "two cycles profile identically" `Quick test_recovery_scope
      );
      ( "hot-path",
        [ Alcotest.test_case "commit/checkpoint spans" `Quick test_hot_path_probe ] );
      ( "bench",
        [ Alcotest.test_case "recovery bench rows + artifacts" `Quick test_recovery_bench ] );
    ]
