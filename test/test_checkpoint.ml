(* Crash-consistency of [Tm.checkpoint] itself, in every configuration.

   The cache-consistent checkpoint (Section 4.6) runs with transactions
   still in flight, and its clearing/compaction steps rewrite the log in
   place — so a crash *inside* the checkpoint is the hardest recovery
   case this codebase has: the CHECKPOINT record may or may not be
   durable, settled transactions' records may be half-removed, and
   compaction may have copied part of the log into a fresh chain.

   Two attacks:

   1. an exhaustive sweep that arms a crash at every single persistence
      event (non-temporal store or line write-back) inside the
      checkpoint, recovers, and checks full cell-level state — committed
      values intact, live transaction undone.  This is the regression
      test for the clearing-order bug: removing settled transactions'
      records per-transaction instead of in global LSN order let a crash
      mid-clearing resurrect stale values through redo (a committed
      overwrite's record could outlive the overwriting record, losing
      the later value).

   2. the crash-state enumerator over a small commit/checkpoint trace,
      with the persistency sanitizer attached, which additionally
      explores the cache states (which dirty lines survived) at every
      fence boundary inside the checkpoint. *)

open Rewind_nvm
open Rewind
module San = Rewind_analysis.Sanitizer
module Enum = Rewind_analysis.Enumerator

let root_slot = 2

let all_configs =
  [
    ("1l-nfp", Rewind.config_1l_nfp);
    ("1l-fp", Rewind.config_1l_fp);
    ("2l-nfp", Rewind.config_2l_nfp);
    ("2l-fp", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple);
    ("batch8", Rewind.config_batch ());
  ]

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let shadow_events arena =
  let s = Arena.stats arena in
  s.Stats.nt_stores + s.Stats.flushes

(* ------------------------------------------------------------------ *)
(* 1. Crash at every persistence event inside the checkpoint           *)
(* ------------------------------------------------------------------ *)

(* Small buckets so the checkpoint's clearing pass leaves sparse buckets
   behind and its compaction step actually runs. *)
let setup cfg =
  let cfg = { cfg with Tm.bucket_cap = 8 } in
  let arena = Arena.create ~size_bytes:(32 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cells = Array.init 16 (fun _ -> Alloc.alloc alloc 8) in
  (arena, tm, cells, cfg)

(* Four committed transactions overwriting a shared working set (so the
   log holds several records per cell, in LSN order), plus one left in
   flight.  Cells 8..10 belong to the live transaction and must recover
   to zero. *)
let workload tm cells =
  let expected = Array.make 16 0L in
  for tno = 1 to 4 do
    let txn = Tm.begin_txn tm in
    for i = 0 to 2 do
      let c = (tno + i) mod 8 in
      let v = Int64.of_int ((tno * 100) + i) in
      Tm.write tm txn ~addr:cells.(c) ~value:v;
      expected.(c) <- v
    done;
    Tm.commit tm txn
  done;
  let live = Tm.begin_txn tm in
  for i = 0 to 2 do
    Tm.write tm live ~addr:cells.(i + 8) ~value:(Int64.of_int (9990 + i))
  done;
  expected

let test_crash_sweep (name, cfg0) () =
  (* Dry run: count the persistence events inside an uninterrupted
     checkpoint, and prove the sweep's coverage claims — under no-force
     the clearing pass has settled records to remove, and for the
     bucketed no-force configs the occupancy drops far enough that
     compaction rewrites the log (so the sweep includes crash points
     after the CHECKPOINT record, mid-clearing and mid-compaction). *)
  let arena, tm, cells, _ = setup cfg0 in
  let _ = workload tm cells in
  let log_before = Log.length (Tm.log tm) in
  let recs_before = List.sort compare (Log.records (Tm.log tm)) in
  let before = shadow_events arena in
  Tm.checkpoint tm;
  let events = shadow_events arena - before in
  let recs_after = List.sort compare (Log.records (Tm.log tm)) in
  check_bool (name ^ ": checkpoint persists something") true (events > 0);
  (* two-layer configs keep user records in the AVL index rather than the
     bucket log, so the log-shape claims only apply to one-layer *)
  if cfg0.Tm.policy = Tm.No_force && cfg0.Tm.layers = Tm.One_layer then begin
    check_bool (name ^ ": clearing had records to remove") true
      (log_before > Log.length (Tm.log tm));
    if cfg0.Tm.variant <> Log.Simple then
      check_bool (name ^ ": compaction moved the live records") true
        (recs_after <> [] && recs_after <> recs_before)
  end;
  (* The sweep proper: crash at the k-th event, recover, check state. *)
  let tried = ref 0 in
  for k = 1 to events do
    let arena, tm, cells, cfg = setup cfg0 in
    let expected = workload tm cells in
    Arena.arm_crash arena ~after:(k - 1);
    (match Tm.checkpoint tm with () -> () | exception Arena.Crash -> ());
    if Arena.crashed arena then begin
      incr tried;
      Arena.crash arena;
      let alloc2 = Alloc.recover arena in
      let san = San.attach ~mode:San.Collect arena in
      let _tm2 = Tm.attach ~cfg alloc2 ~root_slot in
      check_int
        (Fmt.str "%s k=%d: recovery is sanitizer-clean" name k)
        0
        (List.length (San.violations san));
      San.detach san;
      Array.iteri
        (fun c exp ->
          let exp = if c >= 8 then 0L else exp in
          let got = Arena.read arena cells.(c) in
          if got <> exp then
            Alcotest.failf "%s: crash at event %d/%d: cell %d = %Ld, want %Ld"
              name k events c got exp)
        expected
    end
  done;
  check_bool (name ^ ": sweep hit crash points") true (!tried > 0)

(* ------------------------------------------------------------------ *)
(* 2. Enumerated crash states through a checkpoint, sanitizer attached *)
(* ------------------------------------------------------------------ *)

(* Two one-write committed transactions and one in flight, then a
   checkpoint.  Commit order pins the legal recovered states: b=9
   implies a=7 (t2's END cannot be durable before t1's), and the live
   write to c must always be undone. *)
let test_enumerate_checkpoint (name, cfg0) () =
  let cfg = { cfg0 with Tm.bucket_cap = 4 } in
  let arena = Arena.create ~size_bytes:(1 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let a = Alloc.alloc ~align:64 alloc 8 in
  let b = Alloc.alloc ~align:64 alloc 8 in
  let c = Alloc.alloc ~align:64 alloc 8 in
  let stats =
    Enum.run arena
      ~workload:(fun () ->
        let t1 = Tm.begin_txn tm in
        Tm.write tm t1 ~addr:a ~value:7L;
        Tm.commit tm t1;
        let t2 = Tm.begin_txn tm in
        Tm.write tm t2 ~addr:b ~value:9L;
        Tm.commit tm t2;
        let live = Tm.begin_txn tm in
        Tm.write tm live ~addr:c ~value:11L;
        Tm.checkpoint tm)
      ~recover:(fun crashed ->
        let alloc2 = Alloc.recover crashed in
        let san = San.attach ~mode:San.Collect crashed in
        let _tm = Tm.attach ~cfg alloc2 ~root_slot in
        let violations = List.length (San.violations san) in
        San.detach san;
        ( Arena.read crashed a,
          Arena.read crashed b,
          Arena.read crashed c,
          violations ))
      ~check:(fun (va, vb, vc, violations) ->
        if violations > 0 then
          Some (Fmt.str "%d sanitizer violations during recovery" violations)
        else if vc <> 0L then
          Some (Fmt.str "live txn not undone: c = %Ld" vc)
        else
          match (va, vb) with
          | 0L, 0L | 7L, 0L | 7L, 9L -> None
          | _ -> Some (Fmt.str "illegal state a=%Ld b=%Ld" va vb))
  in
  check_bool
    (name ^ ": enumeration reached inside the checkpoint")
    true
    (stats.Enum.capture_points > 3);
  check_bool (name ^ ": crash states explored") true (stats.Enum.crash_states > 0)

(* ------------------------------------------------------------------ *)

let () =
  let per_config name speed f =
    List.map
      (fun (cn, cfg) ->
        Alcotest.test_case (Fmt.str "%s [%s]" name cn) speed (f (cn, cfg)))
      all_configs
  in
  Alcotest.run "checkpoint"
    [
      ( "crash-sweep",
        per_config "crash at every persistence event" `Quick test_crash_sweep );
      ( "enumerator",
        per_config "enumerated states through checkpoint" `Quick
          test_enumerate_checkpoint );
    ]
