(* Partitioned per-thread logging (Section 4.7) with merged recovery.

   Four attacks:

   1. functional smoke across every configuration at 2 and 4 partitions:
      committed transactions survive a crash, a rolled-back and a live
      transaction do not, and transactions actually spread round-robin
      over the partitions' logs;

   2. an exhaustive crash sweep: concurrent writers (the fiber scheduler)
      under Batch logging with tiny buckets and groups, a crash armed at
      *every* persistence event of the run, recovery after each.  With
      four writers appending into distinct partitions and group flushes /
      bucket rollovers staggered across them, the sweep necessarily
      includes crash points where one partition is mid-group-flush while
      another is mid-bucket-append — the interleavings a global-latch log
      can never produce;

   3. a checkpoint crash sweep at 2 and 4 partitions — the merged
      clearing must remove settled records in *global* LSN order across
      partitions, ENDs last, or redo resurrects stale values;

   4. properties: the merged record stream {!Tm.merged_log_records} is
      strictly ascending by LSN and is exactly the union of the
      partitions' logs; and recovery at 4 partitions reaches the same
      cell state as at 1 partition for the same transaction history. *)

open Rewind_nvm
open Rewind
module San = Rewind_analysis.Sanitizer

let root_slot = 2
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let all_configs =
  [
    ("1l-nfp", Rewind.config_1l_nfp);
    ("1l-fp", Rewind.config_1l_fp);
    ("2l-nfp", Rewind.config_2l_nfp);
    ("2l-fp", Rewind.config_2l_fp);
    ("simple", Rewind.config_simple);
    ("batch4", Rewind.config_batch ~group:4 ());
  ]

let shadow_events arena =
  let s = Arena.stats arena in
  s.Stats.nt_stores + s.Stats.flushes

(* ------------------------------------------------------------------ *)
(* 1. Smoke: every config at 2 and 4 partitions                        *)
(* ------------------------------------------------------------------ *)

let test_smoke (name, cfg0) n_parts () =
  let cfg = Rewind.with_partitions n_parts { cfg0 with Tm.bucket_cap = 8 } in
  let arena = Arena.create ~size_bytes:(32 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  check_int (name ^ ": partitions") n_parts (Tm.partitions tm);
  let cells = Array.init 24 (fun _ -> Alloc.alloc alloc 8) in
  (* 2 * n_parts committed transactions: with round-robin homes, every
     partition gets exactly two. *)
  let n_txns = 2 * n_parts in
  for tno = 0 to n_txns - 1 do
    let txn = Tm.begin_txn tm in
    check_int
      (Fmt.str "%s: txn %d home" name txn)
      (tno mod n_parts)
      (Tm.home_partition tm txn);
    for i = 0 to 1 do
      Tm.write tm txn
        ~addr:cells.((2 * tno) + i)
        ~value:(Int64.of_int ((tno * 10) + i + 1))
    done;
    Tm.commit tm txn
  done;
  (* every partition's log saw appends (committed records may already be
     cleared under force policy, so count appends, not length) *)
  Array.iteri
    (fun p n ->
      check_bool (Fmt.str "%s: partition %d used" name p) true (n > 0))
    (Tm.partition_appended tm);
  (* one rolled back, one live *)
  let rb = Tm.begin_txn tm in
  Tm.write tm rb ~addr:cells.(20) ~value:777L;
  Tm.rollback tm rb;
  let live = Tm.begin_txn tm in
  Tm.write tm live ~addr:cells.(21) ~value:888L;
  Arena.crash arena;
  let alloc2 = Alloc.recover arena in
  let san = San.attach ~mode:San.Collect arena in
  let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
  check_int (name ^ ": recovery sanitizer-clean") 0
    (List.length (San.violations san));
  San.detach san;
  for tno = 0 to n_txns - 1 do
    for i = 0 to 1 do
      check_int
        (Fmt.str "%s: committed cell %d" name ((2 * tno) + i))
        ((tno * 10) + i + 1)
        (Int64.to_int (Arena.read arena cells.((2 * tno) + i)))
    done
  done;
  check_int (name ^ ": rolled-back cell") 0
    (Int64.to_int (Arena.read arena cells.(20)));
  check_int (name ^ ": live cell undone") 0
    (Int64.to_int (Arena.read arena cells.(21)));
  (* post-recovery transactions still work, and ids continue past every
     transaction the log still knew about (a live Batch transaction whose
     records never left the cache leaves no trace, so [live] itself need
     not be passed) *)
  let txn = Tm.begin_txn tm2 in
  check_bool (name ^ ": txn ids continue") true (txn > n_txns);
  Tm.write tm2 txn ~addr:cells.(22) ~value:99L;
  Tm.commit tm2 txn;
  check_int (name ^ ": post-recovery commit") 99
    (Int64.to_int (Arena.read arena cells.(22)))

(* ------------------------------------------------------------------ *)
(* 2. Concurrent writers, crash at every persistence event             *)
(* ------------------------------------------------------------------ *)

(* Four fiber writers, each running transactions pinned (by id) across
   the partitions; Batch 4 groups and 8-slot buckets so group flushes
   and bucket rollovers happen constantly and out of phase between
   partitions.  Each transaction writes 3 private cells; recovery must
   make each transaction all-or-nothing. *)
let sweep_threads = 4
let sweep_ops = 3 (* transactions per writer *)

let sweep_cfg n_parts =
  Rewind.with_partitions n_parts
    { (Rewind.config_batch ~group:4 ()) with Tm.bucket_cap = 8 }

let sweep_setup n_parts =
  let arena = Arena.create ~size_bytes:(32 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg:(sweep_cfg n_parts) alloc ~root_slot in
  let cells =
    Array.init (sweep_threads * sweep_ops * 3) (fun _ -> Alloc.alloc alloc 8)
  in
  (arena, tm, cells)

(* Deterministic value for (thread, op, i). *)
let sweep_value t op i = Int64.of_int ((((t * 10) + op) * 10) + i + 1)

let sweep_workload tm cells =
  ignore
    (Sim_threads.run ~threads:sweep_threads ~ops_per_thread:sweep_ops
       (fun t op ->
         let txn = Tm.begin_txn tm in
         for i = 0 to 2 do
           Tm.write tm txn
             ~addr:cells.(((t * sweep_ops) + op) * 3 + i)
             ~value:(sweep_value t op i)
         done;
         Tm.commit tm txn))

let test_concurrent_sweep n_parts () =
  (* Dry run: count persistence events of the full concurrent run. *)
  let arena, tm, cells = sweep_setup n_parts in
  let before = shadow_events arena in
  sweep_workload tm cells;
  let events = shadow_events arena - before in
  check_bool
    (Fmt.str "p%d: run persists events" n_parts)
    true (events > 20);
  let tried = ref 0 in
  for k = 1 to events do
    let arena, tm, cells = sweep_setup n_parts in
    Arena.arm_crash arena ~after:(before + k - 1);
    (match sweep_workload tm cells with
    | () -> ()
    | exception Arena.Crash -> ());
    if Arena.crashed arena then begin
      incr tried;
      Arena.crash arena;
      let alloc2 = Alloc.recover arena in
      let san = San.attach ~mode:San.Collect arena in
      let _tm2 = Tm.attach ~cfg:(sweep_cfg n_parts) alloc2 ~root_slot in
      check_int
        (Fmt.str "p%d k=%d: recovery sanitizer-clean" n_parts k)
        0
        (List.length (San.violations san));
      San.detach san;
      (* every transaction all-or-nothing *)
      for t = 0 to sweep_threads - 1 do
        for op = 0 to sweep_ops - 1 do
          let got i = Arena.read arena cells.(((t * sweep_ops) + op) * 3 + i) in
          let all_zero = got 0 = 0L && got 1 = 0L && got 2 = 0L in
          let all_set =
            got 0 = sweep_value t op 0
            && got 1 = sweep_value t op 1
            && got 2 = sweep_value t op 2
          in
          if not (all_zero || all_set) then
            Alcotest.failf
              "p%d: crash at event %d/%d: txn (writer %d, op %d) torn: \
               %Ld/%Ld/%Ld"
              n_parts k events t op (got 0) (got 1) (got 2)
        done
      done
    end
  done;
  check_bool (Fmt.str "p%d: sweep hit crash points" n_parts) true (!tried > 0)

(* ------------------------------------------------------------------ *)
(* 3. Checkpoint crash sweep with partitions                           *)
(* ------------------------------------------------------------------ *)

(* The test_checkpoint regression scenario, sharded: several committed
   transactions overwriting a shared working set (so clearing order
   matters across partitions), one live, then a checkpoint with a crash
   armed at every persistence event inside it. *)
let cp_setup n_parts =
  let cfg =
    Rewind.with_partitions n_parts
      { Rewind.config_1l_nfp with Tm.bucket_cap = 8 }
  in
  let arena = Arena.create ~size_bytes:(32 lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let cells = Array.init 16 (fun _ -> Alloc.alloc alloc 8) in
  (arena, tm, cells, cfg)

let cp_workload tm cells =
  let expected = Array.make 16 0L in
  for tno = 1 to 6 do
    let txn = Tm.begin_txn tm in
    for i = 0 to 2 do
      let c = (tno + i) mod 8 in
      let v = Int64.of_int ((tno * 100) + i) in
      Tm.write tm txn ~addr:cells.(c) ~value:v;
      expected.(c) <- v
    done;
    Tm.commit tm txn
  done;
  let live = Tm.begin_txn tm in
  for i = 0 to 2 do
    Tm.write tm live ~addr:cells.(i + 8) ~value:(Int64.of_int (9990 + i))
  done;
  expected

let test_checkpoint_sweep n_parts () =
  let arena, tm, cells, _ = cp_setup n_parts in
  let _ = cp_workload tm cells in
  let before = shadow_events arena in
  Tm.checkpoint tm;
  let events = shadow_events arena - before in
  check_bool (Fmt.str "p%d: checkpoint persists" n_parts) true (events > 0);
  let tried = ref 0 in
  for k = 1 to events do
    let arena, tm, cells, cfg = cp_setup n_parts in
    let expected = cp_workload tm cells in
    Arena.arm_crash arena ~after:(k - 1);
    (match Tm.checkpoint tm with () -> () | exception Arena.Crash -> ());
    if Arena.crashed arena then begin
      incr tried;
      Arena.crash arena;
      let alloc2 = Alloc.recover arena in
      let san = San.attach ~mode:San.Collect arena in
      let _tm2 = Tm.attach ~cfg alloc2 ~root_slot in
      check_int
        (Fmt.str "p%d k=%d: checkpoint recovery sanitizer-clean" n_parts k)
        0
        (List.length (San.violations san));
      San.detach san;
      Array.iteri
        (fun c exp ->
          let exp = if c >= 8 then 0L else exp in
          let got = Arena.read arena cells.(c) in
          if got <> exp then
            Alcotest.failf
              "p%d: crash at event %d/%d: cell %d = %Ld, want %Ld" n_parts k
              events c got exp)
        expected
    end
  done;
  check_bool (Fmt.str "p%d: sweep hit crash points" n_parts) true (!tried > 0)

(* ------------------------------------------------------------------ *)
(* 4. Properties                                                       *)
(* ------------------------------------------------------------------ *)

(* Merged redo order equals global LSN order: after a random transaction
   history over 1..4 partitions, the merged stream's LSNs are strictly
   ascending, and the stream is exactly the union of the per-partition
   logs. *)
let prop_merged_order =
  QCheck.Test.make ~name:"merged stream is the union in global LSN order"
    ~count:100
    QCheck.(pair (int_range 1 4) (list_of_size (Gen.int_range 1 12) (int_bound 5)))
    (fun (n_parts, writes_per_txn) ->
      let cfg =
        Rewind.with_partitions n_parts
          { Rewind.config_1l_nfp with Tm.bucket_cap = 8 }
      in
      let arena = Arena.create ~size_bytes:(32 lsl 20) () in
      let alloc = Alloc.create arena in
      let tm = Tm.create ~cfg alloc ~root_slot in
      let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
      List.iteri
        (fun tno n ->
          let txn = Tm.begin_txn tm in
          for i = 0 to n - 1 do
            Tm.write tm txn
              ~addr:cells.((tno + i) mod 8)
              ~value:(Int64.of_int ((tno * 100) + i))
          done;
          (* leave every third transaction live so the logs keep records *)
          if tno mod 3 <> 0 then Tm.commit tm txn)
        writes_per_txn;
      let merged = Tm.merged_log_records tm in
      let lsns = List.map (fun r -> Record.lsn arena r) merged in
      let rec ascending = function
        | a :: (b :: _ as rest) -> a < b && ascending rest
        | _ -> true
      in
      let union =
        Array.to_list (Tm.logs tm)
        |> List.concat_map (fun log -> Log.records log)
        |> List.sort compare
      in
      ascending lsns && List.sort compare merged = union)

(* Caller-chosen homes are recovery-stable: over a random history whose
   transactions mix explicit [~home] pins with round-robin defaults,
   (a) the id arithmetic puts every pinned transaction on its requested
   partition; (b) after a crash, [attach]'s recomputed homes equal the
   pre-crash ones and a fresh pinned transaction gets an id past every
   pre-crash id while landing on the requested partition (the reseeded
   per-partition counters must skip the history's ids in *every*
   residue class, not just the busiest); and (c) the recovered cell
   state is identical to the same history run at 1 partition — pinning
   redistributes log records, never outcomes. *)
let prop_home_stability =
  QCheck.Test.make ~name:"home pinning is recovery-stable" ~count:60
    QCheck.(
      pair (int_range 1 4)
        (list_of_size (Gen.int_range 1 10)
           (pair (option (int_bound 3)) (int_bound 4))))
    (fun (n_parts, txns) ->
      (* the shrinker can propose values outside the generator's range *)
      let n_parts = max 1 (min 4 n_parts) in
      let run n_parts =
        let cfg =
          Rewind.with_partitions n_parts
            { Rewind.config_1l_nfp with Tm.bucket_cap = 8 }
        in
        let arena = Arena.create ~size_bytes:(32 lsl 20) () in
        let alloc = Alloc.create arena in
        let tm = Tm.create ~cfg alloc ~root_slot in
        let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
        let homes = ref [] in
        let pinned_ok = ref true in
        List.iteri
          (fun tno (home_opt, writes) ->
            let home = Option.map (fun h -> h mod n_parts) home_opt in
            let txn = Tm.begin_txn ?home tm in
            homes := (txn, Tm.home_partition tm txn, writes) :: !homes;
            (match home with
            | Some h -> if Tm.home_partition tm txn <> h then pinned_ok := false
            | None -> ());
            for i = 0 to writes - 1 do
              Tm.write tm txn
                ~addr:cells.((tno + i) mod 8)
                ~value:(Int64.of_int ((tno * 100) + i))
            done;
            (* every fourth transaction stays live across the crash *)
            if tno mod 4 <> 3 then Tm.commit tm txn)
          txns;
        Arena.crash arena;
        let alloc2 = Alloc.recover arena in
        let tm2 = Tm.attach ~cfg alloc2 ~root_slot in
        let stable =
          List.for_all (fun (txn, h, _) -> Tm.home_partition tm2 txn = h) !homes
        in
        (* A transaction that never wrote leaves no log records, so
           recovery cannot know its id; the reseeded counters only
           promise fresh ids past every *logged* transaction. *)
        let max_logged =
          List.fold_left
            (fun a (t, _, writes) -> if writes > 0 then max a t else a)
            0 !homes
        in
        let want = max_logged mod n_parts in
        let fresh = Tm.begin_txn ~home:want tm2 in
        let fresh_ok =
          fresh > max_logged && Tm.home_partition tm2 fresh = want
        in
        ( !pinned_ok && stable && fresh_ok,
          Array.map (fun c -> Arena.read arena c) cells )
      in
      let ok_n, state_n = run n_parts in
      let ok_1, state_1 = run 1 in
      ok_n && ok_1 && state_n = state_1)

(* Same history, 1 vs 4 partitions: identical recovered state. *)
let test_equivalence () =
  let run n_parts =
    let cfg =
      Rewind.with_partitions n_parts
        { Rewind.config_1l_nfp with Tm.bucket_cap = 8 }
    in
    let arena = Arena.create ~size_bytes:(32 lsl 20) () in
    let alloc = Alloc.create arena in
    let tm = Tm.create ~cfg alloc ~root_slot in
    let cells = Array.init 8 (fun _ -> Alloc.alloc alloc 8) in
    for tno = 1 to 7 do
      let txn = Tm.begin_txn tm in
      for i = 0 to 2 do
        Tm.write tm txn
          ~addr:cells.((tno + i) mod 8)
          ~value:(Int64.of_int ((tno * 100) + i))
      done;
      if tno mod 3 = 0 then Tm.rollback tm txn
      else if tno <> 7 then Tm.commit tm txn
      (* txn 7 stays live *)
    done;
    Arena.crash arena;
    let alloc2 = Alloc.recover arena in
    let _tm2 = Tm.attach ~cfg alloc2 ~root_slot in
    Array.map (fun c -> Arena.read arena c) cells
  in
  let one = run 1 and four = run 4 in
  Array.iteri
    (fun i v ->
      check_int (Fmt.str "cell %d equal across partition counts" i)
        (Int64.to_int v)
        (Int64.to_int four.(i)))
    one

(* ------------------------------------------------------------------ *)

let () =
  let per_config n_parts =
    List.map
      (fun (cn, cfg) ->
        Alcotest.test_case
          (Fmt.str "smoke [%s x%d]" cn n_parts)
          `Quick
          (test_smoke (cn, cfg) n_parts))
      all_configs
  in
  Alcotest.run "partition"
    [
      ("smoke-2", per_config 2);
      ("smoke-4", per_config 4);
      ( "concurrent-crash-sweep",
        [
          Alcotest.test_case "2 partitions, crash at every event" `Slow
            (test_concurrent_sweep 2);
          Alcotest.test_case "4 partitions, crash at every event" `Slow
            (test_concurrent_sweep 4);
        ] );
      ( "checkpoint-crash-sweep",
        [
          Alcotest.test_case "2 partitions" `Slow (test_checkpoint_sweep 2);
          Alcotest.test_case "4 partitions" `Slow (test_checkpoint_sweep 4);
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_merged_order;
          QCheck_alcotest.to_alcotest prop_home_stability;
          Alcotest.test_case "1 vs 4 partitions recover identically" `Quick
            test_equivalence;
        ] );
    ]
