lib/nvm/sim_mutex.ml: Clock Mutex Sim_threads
