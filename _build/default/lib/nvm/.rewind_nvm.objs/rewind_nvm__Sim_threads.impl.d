lib/nvm/sim_threads.ml: Array Clock Effect Fun
