lib/nvm/arena.ml: Bytes Char Clock Config Fmt Stats String
