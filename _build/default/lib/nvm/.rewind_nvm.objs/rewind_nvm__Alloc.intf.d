lib/nvm/alloc.mli: Arena
