lib/nvm/config.mli: Fmt
