lib/nvm/alloc.ml: Arena Hashtbl Int64 Mutex
