lib/nvm/block_dev.ml: Bytes Clock Config Hashtbl
