lib/nvm/config.ml: Fmt
