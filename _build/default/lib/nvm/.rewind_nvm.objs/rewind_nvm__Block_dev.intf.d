lib/nvm/block_dev.mli: Bytes Config
