lib/nvm/arena.mli: Config Stats
