lib/nvm/clock.ml: Domain Fmt
