lib/nvm/sim_threads.mli:
