lib/nvm/clock.mli: Fmt
