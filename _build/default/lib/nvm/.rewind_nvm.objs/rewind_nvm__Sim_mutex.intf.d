lib/nvm/sim_mutex.mli:
