(* Simulated nanosecond clocks.

   Single-threaded benchmarks read one clock; multi-threaded benchmarks
   (Figure 9, Figure 11) give each domain its own clock and model lock
   contention with {!Sim_mutex}, taking the maximum across domains as the
   run duration.  Each domain transparently gets its own counter through
   domain-local storage, so library code simply calls {!advance}. *)

type t = { mutable ns : int }

let key : t Domain.DLS.key = Domain.DLS.new_key (fun () -> { ns = 0 })
let current () = Domain.DLS.get key
let advance ns = (current ()).ns <- (current ()).ns + ns
let now () = (current ()).ns
let set ns = (current ()).ns <- ns
let reset () = set 0

(* Bring the calling domain's clock up to at least [ns]; used when a
   simulated lock was released at a later simulated time than the acquiring
   domain has reached. *)
let advance_to ns =
  let c = current () in
  if ns > c.ns then c.ns <- ns

type span = { start : int }

let start () = { start = now () }
let elapsed s = now () - s.start

let pp_ns ppf ns =
  if ns >= 1_000_000_000 then Fmt.pf ppf "%.3fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then Fmt.pf ppf "%.3fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Fmt.pf ppf "%.3fus" (float_of_int ns /. 1e3)
  else Fmt.pf ppf "%dns" ns
