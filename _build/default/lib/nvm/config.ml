(* Cost-model parameters of the simulated NVM, mirroring the emulation
   methodology of REWIND's evaluation (Section 5): every write that reaches
   NVM is charged a fixed latency, consecutive writes to the same cacheline
   are merged into a single charge, and persistent memory fences carry their
   own latency.  All latencies are in nanoseconds of simulated time. *)

type t = {
  mutable nvm_write_ns : int;
      (** Latency of one cacheline-granularity write reaching NVM.  The
          paper uses 510 cycles at 2.5 GHz, i.e. ~150 ns. *)
  mutable fence_ns : int;
      (** Latency of a persistent memory fence.  Figure 10 sweeps this
          parameter between 0 and 5 us. *)
  mutable dram_write_ns : int;
      (** Latency of a cached (volatile) CPU store. *)
  mutable dram_read_ns : int;
      (** Latency of a CPU load.  The paper models NVM reads as fast as
          DRAM reads, so a single knob covers both. *)
  mutable cacheline_bytes : int;  (** Cacheline size; 64 on the paper's hardware. *)
  mutable read_miss_ns : int;
      (** Latency of a pointer-chasing load that misses the cache (tree
          descents, linked-list walks). *)
  mutable read_seq_ns : int;
      (** Amortised latency of a sequential, prefetch-friendly scan load
          (bucketed-log scans). *)
}

let default () =
  {
    nvm_write_ns = 150;
    fence_ns = 100;
    dram_write_ns = 1;
    dram_read_ns = 1;
    cacheline_bytes = 64;
    read_miss_ns = 60;
    read_seq_ns = 8;
  }

let copy c =
  {
    nvm_write_ns = c.nvm_write_ns;
    fence_ns = c.fence_ns;
    dram_write_ns = c.dram_write_ns;
    dram_read_ns = c.dram_read_ns;
    cacheline_bytes = c.cacheline_bytes;
    read_miss_ns = c.read_miss_ns;
    read_seq_ns = c.read_seq_ns;
  }

let pp ppf c =
  Fmt.pf ppf "{nvm_write=%dns; fence=%dns; dram_write=%dns; cacheline=%dB}"
    c.nvm_write_ns c.fence_ns c.dram_write_ns c.cacheline_bytes
