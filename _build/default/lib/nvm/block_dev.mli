(** Simulated PMFS-style block device, the I/O substrate of the baseline
    systems.  Each operation costs a kernel crossing; a write additionally
    costs one NVM cacheline write per 64 bytes of user data transferred —
    the paper's generous accounting, which charges nothing for the file
    system's internal bookkeeping.

    Durability model: [write] is durable immediately (PMFS is a
    synchronous, cache-bypassing store); a crash loses nothing at the
    device level — volatile state (page caches, log buffers) lives in the
    storage managers above. *)

type t

val create :
  ?config:Config.t -> ?block_size:int -> ?syscall_ns:int -> unit -> t

val block_size : t -> int
val write : t -> int -> Bytes.t -> unit
val write_sub : t -> int -> Bytes.t -> int -> unit
(** Partial block write (e.g. a log tail); charges only the bytes moved. *)

val read : t -> int -> Bytes.t
(** Absent blocks read as zeroes. *)

val mem : t -> int -> bool
val sync : t -> unit
val crash : t -> unit
val writes : t -> int
val reads : t -> int
val syncs : t -> int
