(** Simulated multithreading: conservative discrete-event execution of
    logical threads as cooperative fibers (OCaml effects) on one domain.

    The scheduler always resumes the fiber with the smallest simulated
    clock; fibers yield between operations and inside {!Sim_mutex.lock},
    so lock contention is resolved at lock-section granularity in
    simulated time.  Deterministic. *)

val run : threads:int -> ops_per_thread:int -> (int -> int -> unit) -> int
(** [run ~threads ~ops_per_thread f] executes [f thread op_index] for
    every operation of every fiber; an operation's cost is whatever it
    advances the clock by.  Returns the slowest fiber's finish time
    relative to the common start.  The clock is never moved backwards —
    lock release times stamped during setup stay on the same timeline. *)

(** {1 Scheduler state} (used by {!Sim_mutex}) *)

val active : unit -> bool
(** Whether a fiber scheduler is currently running on this domain. *)

val current : unit -> int
(** The running fiber's id. *)

val clock_of : int -> int
(** A fiber's current simulated clock. *)

val yield : unit -> unit
(** Reschedule (no-op outside a scheduler). *)
