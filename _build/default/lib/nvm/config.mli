(** Cost-model parameters of the simulated NVM, mirroring the emulation
    methodology of the paper's Section 5: every write reaching NVM is
    charged a fixed latency, consecutive writes to the same cacheline are
    merged into one charge, and persistent memory fences carry their own
    latency.  All latencies in nanoseconds of simulated time. *)

type t = {
  mutable nvm_write_ns : int;
      (** One cacheline-granularity write reaching NVM (paper: 510 cycles
          at 2.5 GHz ≈ 150 ns). *)
  mutable fence_ns : int;
      (** A persistent memory fence (Figure 10 sweeps 0–5 µs). *)
  mutable dram_write_ns : int;  (** A cached (volatile) CPU store. *)
  mutable dram_read_ns : int;
      (** A CPU load; the paper models NVM reads as DRAM-fast. *)
  mutable cacheline_bytes : int;  (** 64 on the paper's hardware. *)
  mutable read_miss_ns : int;
      (** A pointer-chasing load that misses the cache (tree descents,
          linked-list walks). *)
  mutable read_seq_ns : int;
      (** Amortised cost of a sequential, prefetch-friendly scan load
          (bucketed-log slot scans). *)
}

val default : unit -> t
val copy : t -> t
val pp : t Fmt.t
