(* Simulated byte-addressable NVM with an explicit write-back cache.

   Two byte buffers back each arena:
   - [durable] is the NVM contents: the only state that survives {!crash}.
   - [volatile] is what the CPU sees: [durable] plus all not-yet-written-back
     cached stores.

   A cached {!write} lands in [volatile] and marks its cacheline dirty.  It
   becomes durable only when the line is written back by {!flush_line} /
   {!flush_all} or when the store was issued as a non-temporal {!nt_write}.
   {!crash} throws away every dirty line, exactly the failure REWIND's WAL
   protocol must survive.

   Cost model: every write that reaches NVM charges [nvm_write_ns] to the
   calling domain's {!Clock}, with consecutive writes to one cacheline merged
   into a single charge (the paper's accounting); {!fence} charges [fence_ns]
   and breaks write-combining.

   Crash injection: {!arm_crash} makes the [after]+1-th persistence event
   raise {!Crash} *before* taking effect, so a test can enumerate every
   intermediate durable state of an operation. *)

exception Crash

type t = {
  size : int;
  durable : Bytes.t;
  volatile : Bytes.t;
  dirty : Bytes.t;  (* one byte per cacheline: 0 clean, 1 dirty *)
  line_shift : int;
  config : Config.t;
  stats : Stats.t;
  mutable last_nvm_line : int;
  mutable crash_countdown : int;  (* -1: disarmed *)
  mutable crashed : bool;
}

let log2_exact n =
  let rec go acc = function
    | 1 -> acc
    | m ->
        if m land 1 <> 0 then invalid_arg "cacheline size must be a power of 2"
        else go (acc + 1) (m lsr 1)
  in
  go 0 n

(* The first [reserved_bytes] hold the root directory (see {!root_get}). *)
let reserved_bytes = 512
let root_slots = reserved_bytes / 8

let create ?(config = Config.default ()) ~size_bytes () =
  if size_bytes < reserved_bytes then invalid_arg "Arena.create: size too small";
  let line = config.Config.cacheline_bytes in
  let lines = (size_bytes + line - 1) / line in
  {
    size = size_bytes;
    durable = Bytes.make size_bytes '\000';
    volatile = Bytes.make size_bytes '\000';
    dirty = Bytes.make lines '\000';
    line_shift = log2_exact line;
    config;
    stats = Stats.create ();
    last_nvm_line = -1;
    crash_countdown = -1;
    crashed = false;
  }

let size t = t.size
let config t = t.config
let stats t = t.stats
let line_of t off = off lsr t.line_shift

let check_bounds t off len =
  if off < 0 || len < 0 || off + len > t.size then
    Fmt.invalid_arg "Arena: access [%d,%d) outside arena of %d bytes" off
      (off + len) t.size

(* -- crash machinery ------------------------------------------------- *)

let crash t =
  Bytes.blit t.durable 0 t.volatile 0 t.size;
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
  t.last_nvm_line <- -1;
  t.crash_countdown <- -1;
  t.crashed <- true;
  t.stats.Stats.crashes <- t.stats.Stats.crashes + 1

let arm_crash t ~after =
  if after < 0 then invalid_arg "Arena.arm_crash";
  t.crash_countdown <- after

let disarm_crash t = t.crash_countdown <- -1
let crashed t = t.crashed
let clear_crashed t = t.crashed <- false

(* Called before every event that would make state durable.  When the
   countdown expires the crash happens *instead of* the event. *)
let persist_event t =
  if t.crash_countdown >= 0 then
    if t.crash_countdown = 0 then begin
      crash t;
      raise Crash
    end
    else t.crash_countdown <- t.crash_countdown - 1

let charge_line_write t line =
  if line <> t.last_nvm_line then begin
    t.last_nvm_line <- line;
    t.stats.Stats.nvm_writes <- t.stats.Stats.nvm_writes + 1;
    Clock.advance t.config.Config.nvm_write_ns
  end

(* -- loads and cached stores ------------------------------------------ *)

let read t off =
  check_bounds t off 8;
  t.stats.Stats.loads <- t.stats.Stats.loads + 1;
  Clock.advance t.config.Config.dram_read_ns;
  Bytes.get_int64_le t.volatile off

let write t off v =
  check_bounds t off 8;
  t.stats.Stats.stores <- t.stats.Stats.stores + 1;
  Clock.advance t.config.Config.dram_write_ns;
  Bytes.set_int64_le t.volatile off v;
  Bytes.unsafe_set t.dirty (line_of t off) '\001'

let read_byte t off =
  check_bounds t off 1;
  t.stats.Stats.loads <- t.stats.Stats.loads + 1;
  Clock.advance t.config.Config.dram_read_ns;
  Char.code (Bytes.get t.volatile off)

let write_byte t off v =
  check_bounds t off 1;
  t.stats.Stats.stores <- t.stats.Stats.stores + 1;
  Clock.advance t.config.Config.dram_write_ns;
  Bytes.set t.volatile off (Char.chr (v land 0xff));
  Bytes.unsafe_set t.dirty (line_of t off) '\001'

let read_bytes t off len =
  check_bounds t off len;
  t.stats.Stats.loads <- t.stats.Stats.loads + 1;
  Clock.advance t.config.Config.dram_read_ns;
  Bytes.sub_string t.volatile off len

let write_bytes t off s =
  let len = String.length s in
  check_bounds t off len;
  t.stats.Stats.stores <- t.stats.Stats.stores + 1;
  Clock.advance t.config.Config.dram_write_ns;
  Bytes.blit_string s 0 t.volatile off len;
  let first = line_of t off and last = line_of t (off + max 0 (len - 1)) in
  for l = first to last do
    Bytes.unsafe_set t.dirty l '\001'
  done

(* -- durable stores ---------------------------------------------------- *)

(* Non-temporal word store: bypasses the cache and is durable on arrival.
   The word's cacheline may still be dirty from earlier cached stores to
   *other* words of the line; those stay volatile. *)
let nt_write t off v =
  check_bounds t off 8;
  persist_event t;
  t.stats.Stats.nt_stores <- t.stats.Stats.nt_stores + 1;
  Bytes.set_int64_le t.volatile off v;
  Bytes.set_int64_le t.durable off v;
  charge_line_write t (line_of t off)

let flush_line t off =
  check_bounds t off 1;
  let line = line_of t off in
  if Bytes.unsafe_get t.dirty line = '\001' then begin
    persist_event t;
    t.stats.Stats.flushes <- t.stats.Stats.flushes + 1;
    let base = line lsl t.line_shift in
    let len = min (1 lsl t.line_shift) (t.size - base) in
    Bytes.blit t.volatile base t.durable base len;
    Bytes.unsafe_set t.dirty line '\000';
    charge_line_write t line
  end

let flush_range t off len =
  if len > 0 then begin
    check_bounds t off len;
    let first = line_of t off and last = line_of t (off + len - 1) in
    for l = first to last do
      flush_line t (l lsl t.line_shift)
    done
  end

let flush_all t =
  for l = 0 to Bytes.length t.dirty - 1 do
    if Bytes.unsafe_get t.dirty l = '\001' then flush_line t (l lsl t.line_shift)
  done

let fence t =
  t.stats.Stats.fences <- t.stats.Stats.fences + 1;
  t.last_nvm_line <- -1;
  Clock.advance t.config.Config.fence_ns

(* Persist barrier: flush the word's line and fence.  The common "make this
   update durable now" sequence. *)
let persist t off len =
  flush_range t off len;
  fence t

(* -- root directory ---------------------------------------------------- *)

let root_off slot =
  if slot < 1 || slot >= root_slots then invalid_arg "Arena: bad root slot";
  slot * 8

let root_get t slot = read t (root_off slot)

let root_set t slot v =
  (* Roots anchor whole structures; they are always written durably. *)
  nt_write t (root_off slot) v;
  fence t

(* -- test/debug access to the durable image ---------------------------- *)

let durable_read t off =
  check_bounds t off 8;
  Bytes.get_int64_le t.durable off

let is_dirty t off = Bytes.unsafe_get t.dirty (line_of t off) = '\001'
