(* Simulated PMFS-style block device for the baseline systems.

   The paper runs Stasis, BerkeleyDB and Shore-MT over PMFS: a kernel,
   byte-addressability-optimised file system on NVM reached through
   ordinary file-system calls.  Costs per operation therefore combine a
   kernel crossing with NVM writes at cacheline granularity.  As in the
   paper's setup, only user-data writes are charged NVM latency — the file
   system's internal bookkeeping is free — which deliberately favours the
   baselines.

   Durability model: [write] makes a block durable immediately (PMFS is a
   synchronous, cache-bypassing store), so baseline recovery reads exactly
   the blocks written before the crash. *)

type t = {
  arena_cfg : Config.t;
  block_size : int;
  syscall_ns : int;
  blocks : (int, Bytes.t) Hashtbl.t;
  mutable writes : int;
  mutable reads : int;
  mutable syncs : int;
}

let create ?(config = Config.default ()) ?(block_size = 4096) ?(syscall_ns = 2500) () =
  {
    arena_cfg = config;
    block_size;
    syscall_ns;
    blocks = Hashtbl.create 1024;
    writes = 0;
    reads = 0;
    syncs = 0;
  }

let block_size t = t.block_size

(* Writing a block costs one kernel crossing plus one NVM write per
   cacheline of user data actually transferred. *)
let charge_write t len =
  let lines =
    (len + t.arena_cfg.Config.cacheline_bytes - 1)
    / t.arena_cfg.Config.cacheline_bytes
  in
  Clock.advance (t.syscall_ns + (lines * t.arena_cfg.Config.nvm_write_ns))

let write t idx data =
  if Bytes.length data > t.block_size then invalid_arg "Block_dev.write: oversized";
  t.writes <- t.writes + 1;
  charge_write t (Bytes.length data);
  Hashtbl.replace t.blocks idx (Bytes.copy data)

(* Partial block write, e.g. a log tail smaller than a block. *)
let write_sub t idx data len =
  t.writes <- t.writes + 1;
  charge_write t len;
  let b =
    match Hashtbl.find_opt t.blocks idx with
    | Some b -> Bytes.copy b
    | None -> Bytes.make t.block_size '\000'
  in
  Bytes.blit data 0 b 0 len;
  Hashtbl.replace t.blocks idx b

let read t idx =
  t.reads <- t.reads + 1;
  Clock.advance t.syscall_ns;
  match Hashtbl.find_opt t.blocks idx with
  | Some b -> Bytes.copy b
  | None -> Bytes.make t.block_size '\000'

let mem t idx = Hashtbl.mem t.blocks idx

let sync t =
  (* PMFS writes are already durable; fsync is just a kernel crossing. *)
  t.syncs <- t.syncs + 1;
  Clock.advance t.syscall_ns

let writes t = t.writes
let reads t = t.reads
let syncs t = t.syncs

(* A crash loses nothing at the device level; volatile state (page caches,
   log buffers) lives in the baseline systems themselves. *)
let crash (_ : t) = ()
