(** Simulated nanosecond clocks, one per domain (via domain-local
    storage).  All cost charging in the substrate goes through
    {!advance}; benchmarks measure with {!start}/{!elapsed} spans.

    Never move a clock backwards mid-workload: {!Sim_mutex} release times
    live on the same timeline. *)

val advance : int -> unit
(** Add simulated nanoseconds to the calling domain's clock. *)

val advance_to : int -> unit
(** Raise the clock to at least the given instant (lock-wait modelling). *)

val now : unit -> int
val set : int -> unit
val reset : unit -> unit

type span

val start : unit -> span
val elapsed : span -> int

val pp_ns : int Fmt.t
(** Human-readable duration (ns/µs/ms/s). *)
