(* Buffer-pool page store for the baseline systems: pages live on a
   simulated PMFS file and are cached in volatile memory.  The WAL rule is
   enforced here: before a dirty page is written back, the log is forced
   (the [wal_force] hook).  A crash discards the cache; the device keeps
   whatever was flushed. *)

open Rewind_nvm

type page = { data : Bytes.t; mutable dirty : bool }

type t = {
  dev : Block_dev.t;
  cache : (int, page) Hashtbl.t;
  wal_force : unit -> unit;
  page_touch_ns : int;  (* buffer-manager code path per page access *)
  mutable next_page : int;  (* page allocation high-water mark *)
}

let create ?(config = Config.default ()) ?(page_touch_ns = 300) ~wal_force
    ~preallocated () =
  {
    dev = Block_dev.create ~config ();
    cache = Hashtbl.create 1024;
    wal_force;
    page_touch_ns;
    next_page = preallocated;
  }

let page_size t = Block_dev.block_size t.dev

let alloc_page t =
  let p = t.next_page in
  t.next_page <- p + 1;
  p

(* Fetch into the cache.  A miss pays the buffer-manager admission path on
   top of the device read; resident pages are free at word granularity —
   the per-operation code-path cost lives in the storage manager above. *)
let get t id =
  match Hashtbl.find_opt t.cache id with
  | Some p -> p
  | None ->
      Clock.advance t.page_touch_ns;
      let p = { data = Block_dev.read t.dev id; dirty = false } in
      Hashtbl.replace t.cache id p;
      p

let read_word t id off = Bytes.get_int64_le (get t id).data off

let write_word t id off v =
  let p = get t id in
  Bytes.set_int64_le p.data off v;
  p.dirty <- true

(* Flush one dirty page, WAL-first. *)
let flush_page t id =
  match Hashtbl.find_opt t.cache id with
  | Some p when p.dirty ->
      t.wal_force ();
      Block_dev.write t.dev id p.data;
      p.dirty <- false
  | Some _ | None -> ()

let flush_all t =
  t.wal_force ();
  Hashtbl.iter
    (fun id p ->
      if p.dirty then begin
        Block_dev.write t.dev id p.data;
        p.dirty <- false
      end)
    t.cache

let dirty_pages t =
  Hashtbl.fold (fun _ p n -> if p.dirty then n + 1 else n) t.cache 0

(* A crash empties the buffer pool. *)
let crash t = Hashtbl.reset t.cache

let device t = t.dev
let next_page t = t.next_page
let set_next_page t n = t.next_page <- n
