(* A transactional key/value storage manager in the architecture REWIND is
   compared against (Section 5.2): block I/O through a simulated PMFS,
   page-granularity buffer management, a volatile log buffer forced at
   commit, ARIES-style redo/undo recovery.  It is parameterised by a
   [profile] so one engine models the three baseline systems:

   - Stasis-like: data-structure-specific (logical) log records — compact —
     with a lean code path, but rollback re-reads the log from the device;
   - BerkeleyDB-like: verbose page-oriented physical records, heavier
     per-operation buffer-manager path, device-resident rollback;
   - Shore-MT-like: heaviest single-thread code path, but per-partition
     distributed logs (scalable up to [log_partitions] threads) and
     in-memory undo buffers that make rollback cheap.

   Data layout: a static hash directory of [nbuckets] primary pages with
   overflow chaining.  Page: word 0 = entry count, word 1 = overflow page
   id + 1, entries of (key, value) pairs from byte 16. *)

open Rewind_nvm

type profile = {
  name : string;
  record_pad : int;       (* extra bytes per log record (format verbosity) *)
  op_overhead_ns : int;
      (* per-operation code path: client API, buffer-manager pin/unpin,
         latching, lock-manager interaction — the costs "OLTP through the
         looking glass" attributes to the storage-manager stack *)
  commit_overhead_ns : int;  (* commit-path cost beyond the log force *)
  undo_op_ns : int;
      (* applying one undo: logical re-execution (Stasis), physical page
         restore (BerkeleyDB), or in-memory undo buffers (Shore-MT) *)
  recover_op_ns : int;    (* per-record redo/analysis work during restart *)
  undo_in_memory : bool;  (* rollback from undo buffers vs from the device *)
  log_partitions : int;   (* distributed-log width (Shore-MT) *)
  page_touch_ns : int;    (* buffer-manager cost per page miss *)
}

(* The per-operation constants below are calibrated against the absolute
   per-operation costs implied by the paper's Figures 7-9 (e.g. ~50 us per
   undone record for Stasis's logical undo at Figure 8's 42 s / 800 k):
   they stand in for the real systems' software stacks, which we do not
   re-implement instruction by instruction. *)
let stasis_profile =
  {
    name = "Stasis";
    record_pad = 16;
    op_overhead_ns = 45_000;
    commit_overhead_ns = 40_000;
    undo_op_ns = 50_000;
    recover_op_ns = 20_000;
    undo_in_memory = false;
    log_partitions = 1;
    page_touch_ns = 250;
  }

let bdb_profile =
  {
    name = "BerkeleyDB";
    record_pad = 96;
    op_overhead_ns = 55_000;
    commit_overhead_ns = 50_000;
    undo_op_ns = 20_000;
    recover_op_ns = 14_000;
    undo_in_memory = false;
    log_partitions = 1;
    page_touch_ns = 350;
  }

let shore_profile =
  {
    name = "Shore-MT";
    record_pad = 64;
    op_overhead_ns = 110_000;
    commit_overhead_ns = 90_000;
    undo_op_ns = 6_000;
    recover_op_ns = 8_000;
    undo_in_memory = true;
    log_partitions = 4;
    page_touch_ns = 500;
  }

type op = Put | Del | Commit | Rollbacked

type lrec = {
  l_txn : int;
  l_op : op;
  l_key : int64;
  l_had_old : bool;
  l_old : int64;
  l_new : int64;
}

type txn_state = { txn_id : int; mutable records : lrec list (* newest first *) }

type t = {
  profile : profile;
  nbuckets : int;
  logs : Wal.t array;  (* one per partition *)
  pages : Page_store.t;
  locks : Sim_mutex.t array;
  active : (int, txn_state) Hashtbl.t;
  mutable next_txn : int;
  mutable commits : int;
}

(* -- record serialisation ------------------------------------------------ *)

let op_code = function Put -> 1 | Del -> 2 | Commit -> 3 | Rollbacked -> 4
let op_of_code = function
  | 1 -> Put
  | 2 -> Del
  | 3 -> Commit
  | 4 -> Rollbacked
  | n -> Fmt.invalid_arg "Paged_kv: bad op code %d" n

let marshal r =
  let b = Bytes.create 48 in
  Bytes.set_int64_le b 0 (Int64.of_int r.l_txn);
  Bytes.set_int64_le b 8 (Int64.of_int (op_code r.l_op));
  Bytes.set_int64_le b 16 r.l_key;
  Bytes.set_int64_le b 24 (if r.l_had_old then 1L else 0L);
  Bytes.set_int64_le b 32 r.l_old;
  Bytes.set_int64_le b 40 r.l_new;
  Bytes.to_string b

let unmarshal s =
  {
    l_txn = Int64.to_int (String.get_int64_le s 0);
    l_op = op_of_code (Int64.to_int (String.get_int64_le s 8));
    l_key = String.get_int64_le s 16;
    l_had_old = String.get_int64_le s 24 = 1L;
    l_old = String.get_int64_le s 32;
    l_new = String.get_int64_le s 40;
  }

(* -- construction --------------------------------------------------------- *)

let create ?(config = Config.default ()) ?(nbuckets = 1024) profile =
  let logs =
    Array.init profile.log_partitions (fun _ ->
        Wal.create ~record_pad:profile.record_pad ~config ())
  in
  let pages =
    (* The WAL rule: force every partition before any page write-back. *)
    Page_store.create ~config ~page_touch_ns:profile.page_touch_ns
      ~wal_force:(fun () -> Array.iter Wal.force logs)
      ~preallocated:nbuckets ()
  in
  {
    profile;
    nbuckets;
    logs;
    pages;
    locks = Array.init profile.log_partitions (fun _ -> Sim_mutex.create ());
    active = Hashtbl.create 16;
    next_txn = 1;
    commits = 0;
  }

let name t = t.profile.name
let partition t txn = txn mod t.profile.log_partitions
let log_of t txn = t.logs.(partition t txn)
let lock_of t txn = t.locks.(partition t txn)

(* -- page-level KV mechanics ---------------------------------------------- *)

let entries_off = 16
let entry_bytes = 16
let page_capacity t = (Page_store.page_size t.pages - entries_off) / entry_bytes

(* Clamped so lock-free readers racing a writer can never index past the
   page (Figure 9 lets baseline lookups proceed without locks, as in the
   paper's deployment). *)
let count t pid =
  let c = Int64.to_int (Page_store.read_word t.pages pid 0) in
  let cap = (Page_store.page_size t.pages - 16) / 16 in
  if c < 0 then 0 else if c > cap then cap else c
let set_count t pid n = Page_store.write_word t.pages pid 0 (Int64.of_int n)
let overflow t pid = Int64.to_int (Page_store.read_word t.pages pid 8) - 1
let set_overflow t pid p =
  Page_store.write_word t.pages pid 8 (Int64.of_int (p + 1))

let entry_key t pid i =
  Page_store.read_word t.pages pid (entries_off + (i * entry_bytes))

let entry_val t pid i =
  Page_store.read_word t.pages pid (entries_off + (i * entry_bytes) + 8)

let set_entry t pid i k v =
  Page_store.write_word t.pages pid (entries_off + (i * entry_bytes)) k;
  Page_store.write_word t.pages pid (entries_off + (i * entry_bytes) + 8) v

let bucket_of t k =
  let h = Int64.to_int (Int64.logand k 0x3fffffffffffffffL) in
  (h * 2654435761) land max_int mod t.nbuckets

(* Find (page, slot) of a key, or the first page with free space. *)
let find_entry t k =
  let rec go pid =
    let cnt = count t pid in
    let rec scan i =
      if i >= cnt then
        let ov = overflow t pid in
        if ov < 0 then None else go ov
      else if entry_key t pid i = k then Some (pid, i)
      else scan (i + 1)
    in
    scan 0
  in
  go (bucket_of t k)

let rec insert_entry t pid k v =
  let cnt = count t pid in
  if cnt < page_capacity t then begin
    set_entry t pid cnt k v;
    set_count t pid (cnt + 1)
  end
  else
    let ov = overflow t pid in
    if ov >= 0 then insert_entry t ov k v
    else begin
      let fresh = Page_store.alloc_page t.pages in
      set_count t fresh 0;
      set_overflow t pid fresh;
      insert_entry t fresh k v
    end

(* Apply a logical put/delete to the pages (used by ops, undo and redo). *)
let apply_put t k v =
  match find_entry t k with
  | Some (pid, i) -> set_entry t pid i k v
  | None -> insert_entry t (bucket_of t k) k v

let apply_del t k =
  match find_entry t k with
  | None -> ()
  | Some (pid, i) ->
      let cnt = count t pid in
      if i < cnt - 1 then
        set_entry t pid i (entry_key t pid (cnt - 1)) (entry_val t pid (cnt - 1));
      set_count t pid (cnt - 1)

(* -- transactions ----------------------------------------------------------- *)

let begin_txn t =
  let id = t.next_txn in
  t.next_txn <- id + 1;
  Hashtbl.replace t.active id { txn_id = id; records = [] };
  id

let lookup t k =
  Clock.advance t.profile.op_overhead_ns;
  match find_entry t k with
  | Some (pid, i) -> Some (entry_val t pid i)
  | None -> None

let emit t st r =
  ignore (Wal.append (log_of t st.txn_id) (marshal r));
  st.records <- r :: st.records

let put t txn k v =
  Sim_mutex.with_lock (lock_of t txn) (fun () ->
      Clock.advance t.profile.op_overhead_ns;
      let st = Hashtbl.find t.active txn in
      let old = find_entry t k in
      let r =
        {
          l_txn = txn;
          l_op = Put;
          l_key = k;
          l_had_old = old <> None;
          l_old =
            (match old with Some (pid, i) -> entry_val t pid i | None -> 0L);
          l_new = v;
        }
      in
      emit t st r;
      (match old with
      | Some (pid, i) -> set_entry t pid i k v
      | None -> insert_entry t (bucket_of t k) k v))

let delete t txn k =
  Sim_mutex.with_lock (lock_of t txn) (fun () ->
      Clock.advance t.profile.op_overhead_ns;
      let st = Hashtbl.find t.active txn in
      match find_entry t k with
      | None -> false
      | Some (pid, i) ->
          let r =
            {
              l_txn = txn;
              l_op = Del;
              l_key = k;
              l_had_old = true;
              l_old = entry_val t pid i;
              l_new = 0L;
            }
          in
          emit t st r;
          let cnt = count t pid in
          if i < cnt - 1 then
            set_entry t pid i (entry_key t pid (cnt - 1))
              (entry_val t pid (cnt - 1));
          set_count t pid (cnt - 1);
          true)

let commit t txn =
  Sim_mutex.with_lock (lock_of t txn) (fun () ->
      Clock.advance t.profile.commit_overhead_ns;
      let st = Hashtbl.find t.active txn in
      emit t st
        { l_txn = txn; l_op = Commit; l_key = 0L; l_had_old = false; l_old = 0L; l_new = 0L };
      Wal.force (log_of t txn);
      Hashtbl.remove t.active txn;
      t.commits <- t.commits + 1)

let undo_records t records =
  List.iter
    (fun r ->
      match r.l_op with
      | Put | Del -> (
          Clock.advance t.profile.undo_op_ns;
          match r.l_op with
          | Put ->
              if r.l_had_old then apply_put t r.l_key r.l_old
              else apply_del t r.l_key
          | Del -> apply_put t r.l_key r.l_old
          | Commit | Rollbacked -> ())
      | Commit | Rollbacked -> ())
    records

let rollback t txn =
  Sim_mutex.with_lock (lock_of t txn) (fun () ->
      Clock.advance t.profile.commit_overhead_ns;
      let st = Hashtbl.find t.active txn in
      (* Stasis/BerkeleyDB walk the device-resident log to find the
         transaction's records; Shore-MT keeps undo buffers in memory. *)
      if not t.profile.undo_in_memory then
        Wal.iter_durable (log_of t txn) (fun _ -> ());
      undo_records t st.records;
      emit t st
        { l_txn = txn; l_op = Rollbacked; l_key = 0L; l_had_old = false; l_old = 0L; l_new = 0L };
      Wal.force (log_of t txn);
      Hashtbl.remove t.active txn)

(* -- crash & recovery --------------------------------------------------------- *)

let crash t =
  Array.iter Wal.crash t.logs;
  Page_store.crash t.pages;
  Hashtbl.reset t.active

let recover t =
  (* Rediscover the page-allocation high-water mark by walking every
     overflow chain (part of why baseline recovery pays per-page costs). *)
  let hwm = ref t.nbuckets in
  for b = 0 to t.nbuckets - 1 do
    let rec chase pid =
      if pid >= !hwm then hwm := pid + 1;
      let ov = overflow t pid in
      if ov >= 0 then chase ov
    in
    chase b
  done;
  Page_store.set_next_page t.pages !hwm;
  (* Analysis + collect: committed transactions, and every record. *)
  let committed = Hashtbl.create 64 in
  let all = ref [] in
  Array.iter
    (fun log ->
      Wal.iter_durable log (fun payload ->
          let r = unmarshal payload in
          all := r :: !all;
          match r.l_op with
          | Commit | Rollbacked -> Hashtbl.replace committed r.l_txn ()
          | Put | Del -> ()))
    t.logs;
  let records_oldest_first = List.rev !all in
  (* Redo: repeat history (logical records; last-writer-wins per key). *)
  List.iter
    (fun r ->
      Clock.advance t.profile.recover_op_ns;
      match r.l_op with
      | Put -> apply_put t r.l_key r.l_new
      | Del -> apply_del t r.l_key
      | Commit | Rollbacked -> ())
    records_oldest_first;
  (* Undo uncommitted transactions, newest record first. *)
  let losers = List.filter (fun r -> not (Hashtbl.mem committed r.l_txn)) !all in
  undo_records t losers;
  (* Make everything durable and truncate the log. *)
  Page_store.flush_all t.pages;
  Array.iter Wal.truncate t.logs;
  t.next_txn <-
    List.fold_left (fun acc r -> max acc (r.l_txn + 1)) t.next_txn !all

(* Quiescent checkpoint: flush dirty pages, truncate the log. *)
let checkpoint t =
  if Hashtbl.length t.active > 0 then
    invalid_arg "Paged_kv.checkpoint: active transactions";
  Page_store.flush_all t.pages;
  Array.iter Wal.truncate t.logs

let size t =
  let n = ref 0 in
  for b = 0 to t.nbuckets - 1 do
    let rec chase pid =
      n := !n + count t pid;
      let ov = overflow t pid in
      if ov >= 0 then chase ov
    in
    chase b
  done;
  !n

let commits t = t.commits
let profile t = t.profile
