(* Block-based write-ahead log for the baseline systems (Stasis-like,
   BerkeleyDB-like, Shore-MT-like).

   This is the architecture the paper contrasts REWIND against: log records
   accumulate in a *volatile* buffer and reach persistence only when the
   buffer is forced through the file system — a kernel crossing plus
   block-granularity writes — at commit time or before a dirty page is
   written back (the WAL rule).

   Records are length-prefixed byte strings packed into blocks on a
   dedicated simulated PMFS file.  A crash discards the buffer; recovery
   re-reads the blocks and parses records until the stream ends. *)

open Rewind_nvm

type t = {
  dev : Block_dev.t;
  record_pad : int;  (* per-record verbosity of this system's log format *)
  mutable buffer : Buffer.t;  (* volatile log tail *)
  mutable forced_bytes : int;  (* durable length of the log *)
  mutable next_lsn : int;
}

let create ?(record_pad = 0) ?(config = Config.default ()) () =
  {
    dev = Block_dev.create ~config ();
    record_pad;
    buffer = Buffer.create 4096;
    forced_bytes = 0;
    next_lsn = 1;
  }

let block_size t = Block_dev.block_size t.dev

(* Serialize one record: total length, then payload, then padding. *)
let append t (payload : string) =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  let total = 8 + String.length payload + t.record_pad in
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int total);
  Buffer.add_bytes t.buffer b;
  Buffer.add_string t.buffer payload;
  if t.record_pad > 0 then Buffer.add_string t.buffer (String.make t.record_pad '\000');
  lsn

let buffered_bytes t = Buffer.length t.buffer

(* Force the buffer to the device: every block the tail touches is written
   (the last one partially). *)
let force t =
  let data = Buffer.contents t.buffer in
  let len = String.length data in
  if len > 0 then begin
    let bs = block_size t in
    let start = t.forced_bytes in
    let first_block = start / bs and last_block = (start + len - 1) / bs in
    for blk = first_block to last_block do
      let blk_start = blk * bs in
      let b =
        if blk_start >= start then Bytes.make bs '\000'
        else Block_dev.read t.dev blk
      in
      let from_data = max 0 (blk_start - start) in
      let into_block = max 0 (start - blk_start) in
      let n = min (len - from_data) (bs - into_block) in
      Bytes.blit_string data from_data b into_block n;
      Block_dev.write_sub t.dev blk b (into_block + n)
    done;
    Block_dev.sync t.dev;
    t.forced_bytes <- start + len;
    Buffer.clear t.buffer
  end

(* A crash loses the un-forced tail. *)
let crash t =
  Buffer.clear t.buffer;
  t.next_lsn <- 1

(* Read back every durable record (recovery and device-resident rollback). *)
let iter_durable t f =
  let bs = block_size t in
  let read_word pos =
    let blk = pos / bs and off = pos mod bs in
    let b = Block_dev.read t.dev blk in
    if off + 8 <= bs then Bytes.get_int64_le b off
    else begin
      (* length word straddling blocks *)
      let b2 = Block_dev.read t.dev (blk + 1) in
      let tmp = Bytes.create 8 in
      let n1 = bs - off in
      Bytes.blit b off tmp 0 n1;
      Bytes.blit b2 0 tmp n1 (8 - n1);
      Bytes.get_int64_le tmp 0
    end
  in
  let read_chunk pos len =
    let out = Bytes.create len in
    let rec go pos done_ =
      if done_ < len then begin
        let blk = pos / bs and off = pos mod bs in
        let b = Block_dev.read t.dev blk in
        let n = min (len - done_) (bs - off) in
        Bytes.blit b off out done_ n;
        go (pos + n) (done_ + n)
      end
    in
    go pos 0;
    Bytes.to_string out
  in
  let rec go pos =
    if pos + 8 <= t.forced_bytes then begin
      let total = Int64.to_int (read_word pos) in
      if total > 8 && pos + total <= t.forced_bytes then begin
        let payload = read_chunk (pos + 8) (total - 8 - t.record_pad) in
        f payload;
        go (pos + total)
      end
    end
  in
  go 0

(* Discard the durable log (checkpoint truncation). *)
let truncate t =
  Block_dev.sync t.dev;
  t.forced_bytes <- 0;
  Buffer.clear t.buffer

let forced_bytes t = t.forced_bytes
let device t = t.dev
