(* Shore-MT-like storage manager in the NVM-adapted variant of Wang &
   Johnson [33]: transaction-level log partitioning (one distributed log
   per core, up to four), durable-cache commit, and in-memory undo buffers
   that make rollback fast.  Heaviest single-thread code path of the
   three baselines, but the only one that scales past one thread. *)

let create ?config ?nbuckets () =
  Paged_kv.create ?config ?nbuckets Paged_kv.shore_profile
