(** Block-based write-ahead log for the baseline systems: records
    accumulate in a volatile buffer and reach persistence only when the
    buffer is forced through the simulated PMFS — a kernel crossing plus
    block-granularity writes — at commit or before a page write-back.  A
    crash discards the buffer. *)

type t

val create : ?record_pad:int -> ?config:Rewind_nvm.Config.t -> unit -> t
(** [record_pad] models the verbosity of the system's record format. *)

val block_size : t -> int

val append : t -> string -> int
(** Buffer one serialised record; returns its LSN.  Volatile until
    {!force}. *)

val buffered_bytes : t -> int

val force : t -> unit
(** Write every block the buffered tail touches, then sync. *)

val crash : t -> unit
val iter_durable : t -> (string -> unit) -> unit
(** Re-read and parse every durable record from the device (recovery, and
    the device-resident rollback of Stasis/BerkeleyDB). *)

val truncate : t -> unit
val forced_bytes : t -> int
val device : t -> Rewind_nvm.Block_dev.t
