(** A transactional key/value storage manager in the architecture REWIND
    is compared against (Section 5.2): block I/O through a simulated PMFS,
    page-granularity buffer management, a volatile log buffer forced at
    commit, ARIES-style redo/undo recovery.

    One engine, three calibrated {!profile}s: Stasis-like (compact logical
    records, device-resident rollback), BerkeleyDB-like (verbose physical
    records, heavier code path), Shore-MT-like (heaviest code path, but
    per-partition distributed logs and in-memory undo buffers). *)

type profile = {
  name : string;
  record_pad : int;
  op_overhead_ns : int;
  commit_overhead_ns : int;
  undo_op_ns : int;
  recover_op_ns : int;
  undo_in_memory : bool;
  log_partitions : int;
  page_touch_ns : int;
}

val stasis_profile : profile
val bdb_profile : profile
val shore_profile : profile

type t

val create : ?config:Rewind_nvm.Config.t -> ?nbuckets:int -> profile -> t
val name : t -> string
val profile : t -> profile

(** {1 Transactions} *)

val begin_txn : t -> int
val put : t -> int -> int64 -> int64 -> unit
val delete : t -> int -> int64 -> bool
val lookup : t -> int64 -> int64 option
(** Lock-free read, as in the paper's multithreaded deployment. *)

val commit : t -> int -> unit
(** Logs a commit record and forces the transaction's log partition. *)

val rollback : t -> int -> unit
(** Undo the transaction: Stasis/BerkeleyDB walk the device-resident log;
    Shore-MT applies its in-memory undo buffers. *)

(** {1 Crash & recovery} *)

val crash : t -> unit
(** Drop the buffer pool, the log buffers and the active-transaction
    table; only device-resident state survives. *)

val recover : t -> unit
(** ARIES-style restart: rediscover the page-allocation high-water mark,
    analyse the durable log, redo history, undo losers, flush, truncate. *)

val checkpoint : t -> unit
(** Quiescent checkpoint: flush dirty pages, truncate the log.  Fails on
    active transactions. *)

val size : t -> int
val commits : t -> int
