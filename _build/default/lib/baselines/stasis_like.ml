(* Stasis-like storage manager [27]: data-structure-specific logical log
   records (compact), lean code path, device-resident rollback. *)

let create ?config ?nbuckets () =
  Paged_kv.create ?config ?nbuckets Paged_kv.stasis_profile
