(* BerkeleyDB-like storage manager [22]: page-oriented physical logging
   (verbose records), heavier buffer-manager path, device-resident
   rollback.  Deployed as in the paper: lock manager disabled, cache and
   log-buffer sizes matching the Stasis configuration. *)

let create ?config ?nbuckets () =
  Paged_kv.create ?config ?nbuckets Paged_kv.bdb_profile
