(** Buffer-pool page store for the baseline systems: pages live on a
    simulated PMFS file and are cached in volatile memory.  The WAL rule is
    enforced here — the log is forced before any dirty page write-back.
    A crash empties the pool. *)

type t

val create :
  ?config:Rewind_nvm.Config.t ->
  ?page_touch_ns:int ->
  wal_force:(unit -> unit) ->
  preallocated:int ->
  unit ->
  t

val page_size : t -> int
val alloc_page : t -> int
val read_word : t -> int -> int -> int64
val write_word : t -> int -> int -> int64 -> unit
val flush_page : t -> int -> unit
val flush_all : t -> unit
val dirty_pages : t -> int
val crash : t -> unit
val device : t -> Rewind_nvm.Block_dev.t
val next_page : t -> int
val set_next_page : t -> int -> unit
