lib/baselines/page_store.mli: Rewind_nvm
