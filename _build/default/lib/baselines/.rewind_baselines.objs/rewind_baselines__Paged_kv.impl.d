lib/baselines/paged_kv.ml: Array Bytes Clock Config Fmt Hashtbl Int64 List Page_store Rewind_nvm Sim_mutex String Wal
