lib/baselines/shore_like.ml: Paged_kv
