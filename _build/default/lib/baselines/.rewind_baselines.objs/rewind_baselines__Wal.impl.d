lib/baselines/wal.ml: Block_dev Buffer Bytes Config Int64 Rewind_nvm String
