lib/baselines/page_store.ml: Block_dev Bytes Clock Config Hashtbl Rewind_nvm
