lib/baselines/paged_kv.mli: Rewind_nvm
