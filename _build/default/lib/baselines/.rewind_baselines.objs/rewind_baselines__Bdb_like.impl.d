lib/baselines/bdb_like.ml: Paged_kv
