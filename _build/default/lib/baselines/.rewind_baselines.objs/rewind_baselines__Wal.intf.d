lib/baselines/wal.mli: Rewind_nvm
