lib/baselines/stasis_like.ml: Paged_kv
