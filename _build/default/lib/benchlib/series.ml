(* Output helpers for the figure harness: each experiment prints its series
   in a compact, paper-shaped textual format so EXPERIMENTS.md can quote
   paper-vs-measured numbers directly. *)

type row = { x : float; ys : float list }

type t = {
  id : string;          (* e.g. "fig3-left" *)
  title : string;
  xlabel : string;
  ylabel : string;
  series_names : string list;
  rows : row list;
}

let make ~id ~title ~xlabel ~ylabel ~series_names rows =
  { id; title; xlabel; ylabel; series_names; rows }

let pp_num ppf v =
  if Float.is_integer v && Float.abs v < 1e15 then Fmt.pf ppf "%.0f" v
  else if Float.abs v >= 100. then Fmt.pf ppf "%.1f" v
  else Fmt.pf ppf "%.3f" v

let print t =
  Fmt.pr "@.== %s: %s ==@." t.id t.title;
  Fmt.pr "# x = %s; y = %s@." t.xlabel t.ylabel;
  let w = 14 in
  Fmt.pr "%-*s" w t.xlabel;
  List.iter (fun n -> Fmt.pr " %*s" w n) t.series_names;
  Fmt.pr "@.";
  List.iter
    (fun r ->
      Fmt.pr "%-*s" w (Fmt.str "%a" pp_num r.x);
      List.iter (fun y -> Fmt.pr " %*s" w (Fmt.str "%a" pp_num y)) r.ys;
      Fmt.pr "@.")
    t.rows;
  Fmt.pr "@."

(* A single labelled scalar result (Figure 11-style bars). *)
let print_bars ~id ~title ~ylabel bars =
  Fmt.pr "@.== %s: %s ==@." id title;
  Fmt.pr "# y = %s@." ylabel;
  List.iter (fun (name, v) -> Fmt.pr "%-42s %12s@." name (Fmt.str "%a" pp_num v)) bars;
  Fmt.pr "@."

(* CSV export, one file per experiment, for downstream plotting. *)
let to_csv t dir =
  let path = Filename.concat dir (t.id ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s,%s
" t.xlabel (String.concat "," t.series_names);
      List.iter
        (fun r ->
          Printf.fprintf oc "%g,%s
" r.x
            (String.concat "," (List.map (Printf.sprintf "%g") r.ys)))
        t.rows);
  path

let bars_to_csv ~id ~ylabel bars dir =
  let path = Filename.concat dir (id ^ ".csv") in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "configuration,%s
" ylabel;
      List.iter (fun (name, v) -> Printf.fprintf oc "%s,%g
" name v) bars);
  path

let ns_to_ms ns = float_of_int ns /. 1e6
let ns_to_s ns = float_of_int ns /. 1e9
