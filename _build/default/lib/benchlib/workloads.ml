(* The Section 5.1 sensitivity-analysis microbenchmarks (Figures 3-6).

   All measurements are simulated nanoseconds from the NVM cost model; the
   knob meanings follow the paper:

   - update intensity: the fraction of a transaction's time spent updating
     critical data, calibrated against the cost of a non-logged NVM store;
   - skip records: log records of *other* transactions interleaved between
     consecutive records of a target transaction;
   - checkpoint frequency: simulated seconds between checkpoints, scaled by
     the record-count ratio to the paper's ten-million-record run. *)

open Rewind_nvm
open Rewind
open Rewind_pds

let root_slot = 2

type env = { arena : Arena.t; alloc : Alloc.t; tm : Tm.t; table : Ptable.t }

let make_env ?(cfg = Rewind.config_1l_nfp) ?(arena_mb = 64) ?(slots = 4096) () =
  let arena = Arena.create ~size_bytes:(arena_mb lsl 20) () in
  let alloc = Alloc.create arena in
  let tm = Tm.create ~cfg alloc ~root_slot in
  let table = Ptable.create alloc ~slots in
  { arena; alloc; tm; table }

(* ------------------------------------------------------------------ *)
(* Figure 3 (left): logging overhead vs update intensity               *)
(* ------------------------------------------------------------------ *)

(* Per-update computation such that updates occupy [intensity] percent of
   the baseline transaction's time. *)
let compute_ns_for arena ~intensity =
  let w = (Arena.config arena).Config.nvm_write_ns in
  w * (100 - intensity) / intensity

(* Non-recoverable equivalent: raw NVM stores plus the same computation. *)
(* Slot stride of one cacheline: distinct table rows live on distinct
   lines, so consecutive updates are not write-combined away. *)
let slot_of env i = i * 8 mod Ptable.slots env.table

let baseline_time env ~n_ops ~intensity =
  let compute = compute_ns_for env.arena ~intensity in
  let s = Clock.start () in
  for i = 0 to n_ops - 1 do
    Ptable.set_raw_nvm env.table (slot_of env i) (Int64.of_int i);
    Clock.advance compute
  done;
  Clock.elapsed s

let rewind_time env ~n_ops ~intensity =
  let compute = compute_ns_for env.arena ~intensity in
  let s = Clock.start () in
  let txn = Tm.begin_txn env.tm in
  for i = 0 to n_ops - 1 do
    Ptable.set env.table env.tm txn (slot_of env i) (Int64.of_int i);
    Clock.advance compute
  done;
  Tm.commit env.tm txn;
  Clock.elapsed s

let logging_overhead ~cfg ~intensity ~n_ops =
  let base_env = make_env () in
  let base = baseline_time base_env ~n_ops ~intensity in
  let env = make_env ~cfg () in
  let rw = rewind_time env ~n_ops ~intensity in
  float_of_int rw /. float_of_int base

(* ------------------------------------------------------------------ *)
(* Skip-records machinery (Figures 3 right, 4, 5)                      *)
(* ------------------------------------------------------------------ *)

(* Run a target transaction of [target_updates], inserting [skip] records
   from filler transactions between consecutive target records.  Returns
   the environment, the target transaction, the filler ids, and the
   simulated time attributable to the target's own logging. *)
let run_with_skip env ~target_updates ~skip =
  let fillers = Array.init (max 1 (min skip 32)) (fun _ -> Tm.begin_txn env.tm) in
  let target = Tm.begin_txn env.tm in
  let slots = Ptable.slots env.table in
  let logged = ref 0 in
  let fill_one i =
    let f = fillers.(i mod Array.length fillers) in
    Ptable.set env.table env.tm f ((i * 9 * 8) mod slots) (Int64.of_int i);
    incr logged
  in
  let target_ns = ref 0 in
  for u = 0 to target_updates - 1 do
    let s = Clock.start () in
    Ptable.set env.table env.tm target (u * 8 mod slots) (Int64.of_int u);
    target_ns := !target_ns + Clock.elapsed s;
    for k = 0 to skip - 1 do
      fill_one ((u * skip) + k)
    done
  done;
  (target, fillers, !target_ns)

(* Figure 3 (right): target logging + commit overhead vs skip records,
   against the non-recoverable equivalent of the target's updates. *)
let skip_commit_overhead ~cfg ~target_updates ~skip =
  let base_env = make_env () in
  let base = baseline_time base_env ~n_ops:target_updates ~intensity:100 in
  let env = make_env ~cfg () in
  let target, _, target_ns = run_with_skip env ~target_updates ~skip in
  let s = Clock.start () in
  Tm.commit env.tm target;
  let total = target_ns + Clock.elapsed s in
  float_of_int total /. float_of_int base

(* Figure 4 (left): duration of rolling back the target transaction. *)
let skip_rollback_duration ~cfg ~target_updates ~skip =
  let env = make_env ~cfg () in
  let target, _, _ = run_with_skip env ~target_updates ~skip in
  let s = Clock.start () in
  Tm.rollback env.tm target;
  Clock.elapsed s

(* Figure 4 (right): recovery that must abort the one uncommitted target
   while skipping the committed-but-uncleared fillers (their ENDs are
   logged; the crash hit before clearing). *)
let skip_recovery_duration ~cfg ~target_updates ~skip =
  let env = make_env ~cfg () in
  let _target, fillers, _ = run_with_skip env ~target_updates ~skip in
  Array.iter (fun f -> Tm.commit ~clear:false env.tm f) fillers;
  Arena.crash env.arena;
  let alloc = Alloc.recover env.arena in
  let s = Clock.start () in
  let _tm = Tm.attach ~cfg alloc ~root_slot in
  Clock.elapsed s

(* ------------------------------------------------------------------ *)
(* Figure 5: total cost vs fraction of transactions to recover          *)
(* ------------------------------------------------------------------ *)

(* [n_txns] target transactions of [updates_each] updates, each target
   record separated from the next by [skip] records of committed filler
   transactions (their ENDs are logged but, as in Figure 4's scenario, the
   crash lands before clearing).  A [fraction] of *all* transactions —
   fillers included — is left uncommitted and must be recovered.  Returns
   the simulated time of logging + commits + crash recovery, with log
   clearing factored out ([~clear:false]). *)
let fraction_recovered_cost ~cfg ~n_txns ~updates_each ~skip ~fraction =
  let env = make_env ~cfg ~arena_mb:768 ~slots:65536 () in
  let slots = Ptable.slots env.table in
  let s = Clock.start () in
  let rng_commit i total = float_of_int i /. float_of_int (max 1 total) >= fraction in
  (* filler pool: a rotating window of transactions, each living for one
     round of [skip] records *)
  let filler_seq = ref 0 and filler_total = n_txns * updates_each in
  let w = ref 0 in
  let fill k =
    let f = Tm.begin_txn env.tm in
    for _ = 1 to k do
      incr w;
      Ptable.set env.table env.tm f (!w * 8 mod slots) (Int64.of_int !w)
    done;
    incr filler_seq;
    if rng_commit !filler_seq filler_total then Tm.commit ~clear:false env.tm f
  in
  for tno = 1 to n_txns do
    let txn = Tm.begin_txn env.tm in
    for u = 1 to updates_each do
      incr w;
      Ptable.set env.table env.tm txn (!w * 8 mod slots) (Int64.of_int u);
      if skip > 0 then fill skip
    done;
    if rng_commit tno n_txns then Tm.commit ~clear:false env.tm txn
  done;
  let logging_ns = Clock.elapsed s in
  Arena.crash env.arena;
  let alloc = Alloc.recover env.arena in
  let s = Clock.start () in
  let _tm = Tm.attach ~cfg alloc ~root_slot in
  logging_ns + Clock.elapsed s

(* ------------------------------------------------------------------ *)
(* Figure 6: checkpoint overhead vs checkpoint frequency                *)
(* ------------------------------------------------------------------ *)

(* Insert [n_records] update records in transactions of ten, checkpointing
   every [freq_ns] of simulated time (0 = never).  Returns total simulated
   time. *)
let checkpoint_run ~variant ~n_records ~freq_ns =
  let cfg = { Rewind.config_1l_nfp with variant } in
  let env = make_env ~cfg ~arena_mb:192 () in
  let slots = Ptable.slots env.table in
  let s = Clock.start () in
  let last_cp = ref 0 in
  let i = ref 0 in
  while !i < n_records do
    let txn = Tm.begin_txn env.tm in
    for _ = 1 to 10 do
      if !i < n_records then begin
        Ptable.set env.table env.tm txn (!i * 8 mod slots) (Int64.of_int !i);
        incr i
      end
    done;
    Tm.commit env.tm txn;
    if freq_ns > 0 && Clock.elapsed s - !last_cp >= freq_ns then begin
      Tm.checkpoint env.tm;
      last_cp := Clock.elapsed s
    end
  done;
  Clock.elapsed s

(* Overhead (percent) of checkpointing at the paper's frequency [freq_s].
   The paper inserts ten million records; its 2-14 s frequencies span
   roughly 2-15 checkpoints over the run.  We preserve that checkpoint
   count by scaling the frequency to our (smaller) run's no-checkpoint
   duration, assuming the paper's run lasted ~30 simulated seconds. *)
let checkpoint_overhead ~variant ~n_records ~freq_s =
  let t0 = checkpoint_run ~variant ~n_records ~freq_ns:0 in
  let freq_ns = int_of_float (freq_s /. 30. *. float_of_int t0) in
  let t1 = checkpoint_run ~variant ~n_records ~freq_ns in
  100. *. float_of_int (t1 - t0) /. float_of_int t0
