lib/benchlib/workloads.ml: Alloc Arena Array Clock Config Int64 Ptable Rewind Rewind_nvm Rewind_pds Tm
