lib/benchlib/series.ml: Filename Float Fmt Fun List Printf String
