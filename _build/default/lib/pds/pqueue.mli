(** A persistent FIFO queue over REWIND: enqueue/dequeue are ordinary
    logged updates inside the caller's transaction, so a message and the
    work that produced it commit or vanish together.  Dequeued node memory
    is reclaimed only after the dequeue commits (DELETE records). *)

type t

val create : Rewind.Tm.t -> Rewind_nvm.Alloc.t -> t
val attach : Rewind.Tm.t -> Rewind_nvm.Alloc.t -> head_cell:int -> tail_cell:int -> t
val head_cell : t -> int
val tail_cell : t -> int

val enqueue : t -> Rewind.Tm.txn -> int64 -> unit
val dequeue : t -> Rewind.Tm.txn -> int64 option
val peek : t -> int64 option
val is_empty : t -> bool
val length : t -> int
val iter : t -> (int64 -> unit) -> unit
val to_list : t -> int64 list
val well_formed : t -> bool
