lib/pds/pqueue.mli: Rewind Rewind_nvm
