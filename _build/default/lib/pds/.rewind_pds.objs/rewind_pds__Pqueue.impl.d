lib/pds/pqueue.ml: Alloc Arena Int64 List Rewind Rewind_nvm Tm
