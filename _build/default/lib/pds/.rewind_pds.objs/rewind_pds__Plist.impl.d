lib/pds/plist.ml: Alloc Arena Int64 List Rewind Rewind_nvm Tm
