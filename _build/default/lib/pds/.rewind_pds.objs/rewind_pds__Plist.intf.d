lib/pds/plist.mli: Rewind Rewind_nvm
