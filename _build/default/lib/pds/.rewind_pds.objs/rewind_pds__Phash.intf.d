lib/pds/phash.mli: Rewind Rewind_nvm
