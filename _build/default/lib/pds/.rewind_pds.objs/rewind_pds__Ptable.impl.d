lib/pds/ptable.ml: Alloc Arena Rewind Rewind_nvm Tm
