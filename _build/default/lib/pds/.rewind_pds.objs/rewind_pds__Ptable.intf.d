lib/pds/ptable.mli: Rewind Rewind_nvm
