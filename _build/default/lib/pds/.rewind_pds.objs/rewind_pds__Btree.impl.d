lib/pds/btree.ml: Alloc Arena Clock Config Int64 List Rewind Rewind_nvm Tm
