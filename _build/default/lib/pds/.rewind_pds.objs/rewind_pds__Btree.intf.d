lib/pds/btree.mli: Rewind Rewind_nvm
