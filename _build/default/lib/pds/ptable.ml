(* The flat in-memory table used by the Section 5.1 microbenchmarks: a
   fixed array of word cells in NVM, updated either transactionally
   (through a [Tm.t]) or raw (the non-recoverable baseline the logging
   overhead is measured against). *)

open Rewind_nvm
open Rewind

type t = { arena : Arena.t; base : int; slots : int }

let create alloc ~slots =
  let base = Alloc.alloc_fresh ~align:64 alloc (8 * slots) in
  { arena = Alloc.arena alloc; base; slots }

let slots t = t.slots
let addr t i =
  if i < 0 || i >= t.slots then invalid_arg "Ptable.addr";
  t.base + (8 * i)

let get t i = Arena.read t.arena (addr t i)

(* Transactional update through REWIND. *)
let set t tm txn i v = Tm.write tm txn ~addr:(addr t i) ~value:v

(* Non-recoverable persistent update: a non-temporal store straight to NVM. *)
let set_raw_nvm t i v = Arena.nt_write t.arena (addr t i) v

(* Volatile update (DRAM baseline). *)
let set_raw_dram t i v = Arena.write t.arena (addr t i) v
