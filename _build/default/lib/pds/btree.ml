(* A persistent B+-tree living in simulated NVM.

   This is the recoverable data structure of the paper's Section 5.2/5.3
   experiments.  One implementation serves all persistence layers through
   a [mode]:

   - [Dram]: plain cached stores, no persistence, no recoverability — the
     paper's DRAM baseline;
   - [Direct_nvm]: non-temporal stores, persistent but NOT recoverable (a
     crash mid-operation can tear the structure) — the paper's NVM
     baseline;
   - [Logged tm]: every mutation of reachable state goes through
     [Tm.write], so REWIND's WAL makes operations atomic and durable.

   Crash discipline under [Logged]: freshly allocated nodes are initialised
   with raw non-temporal stores (durable immediately, unreachable until
   linked), and every write to *reachable* state is logged.  Under the
   no-force policy the logged writes are cached and recovery's redo pass
   replays them; the fresh-node contents are already durable, so the
   replayed link never dangles.

   Layout (order B = 8; arrays carry one slack slot so a node may briefly
   hold [order] keys before it is split):
     word 0       : tag = leaf flag (bit 0) | nkeys << 8
     words 1..8   : keys (8 slots, at most 7 after an operation completes)
     leaf         : words 9..16 = values, word 17 = next-leaf
     internal     : words 9..17 = children                                *)

open Rewind_nvm
open Rewind

let order = 8
let max_keys = order - 1      (* 7 *)
let min_keys = (order + 1) / 2 - 1  (* 3: minimum occupancy after deletion *)
let node_words = 2 * order + 2
let node_bytes = 8 * node_words

type mode = Dram | Direct_nvm | Logged of Tm.t

type t = {
  mode : mode;
  arena : Arena.t;
  alloc : Alloc.t;
  root_cell : int;  (* NVM word holding the root node address *)
  mutable node_count : int;
}

let o_tag = 0
let o_key i = 8 * (1 + i)
let o_val i = 8 * (order + 1 + i)
let o_child i = 8 * (order + 1 + i)
let o_next = 8 * ((2 * order) + 1)

(* -- store/load through the persistence mode --------------------------- *)

let load t off = Arena.read t.arena off

(* Mutation of reachable state. *)
let store t txn off v =
  match t.mode with
  | Dram -> Arena.write t.arena off v
  | Direct_nvm -> Arena.nt_write t.arena off v
  | Logged tm -> Tm.write tm txn ~addr:off ~value:v

(* Initialisation of a node that is not yet reachable. *)
let store_fresh t off v =
  match t.mode with
  | Dram -> Arena.write t.arena off v
  | Direct_nvm | Logged _ -> Arena.nt_write t.arena off v

(* -- node accessors ------------------------------------------------------ *)

let tag t n = Int64.to_int (load t (n + o_tag))
let is_leaf t n = tag t n land 1 = 1
let nkeys t n = tag t n lsr 8
let mk_tag ~leaf ~n = Int64.of_int ((n lsl 8) lor if leaf then 1 else 0)
let set_tag t txn n ~leaf ~count = store t txn (n + o_tag) (mk_tag ~leaf ~n:count)
let key t n i = load t (n + o_key i)
let value t n i = load t (n + o_val i)
let child t n i = Int64.to_int (load t (n + o_child i))
let next_leaf t n = Int64.to_int (load t (n + o_next))

let new_node t ~leaf =
  t.node_count <- t.node_count + 1;
  let n = Alloc.alloc ~align:64 t.alloc node_bytes in
  (* Zero the whole node with fresh stores: free-list reuse may leave
     stale contents, and under [Logged] the node must be durably clean
     before it becomes reachable. *)
  for w = 0 to node_words - 1 do
    store_fresh t (n + (8 * w)) 0L
  done;
  store_fresh t (n + o_tag) (mk_tag ~leaf ~n:0);
  n

let root t = Int64.to_int (load t t.root_cell)

let create mode alloc =
  let arena = Alloc.arena alloc in
  let root_cell = Alloc.alloc_fresh ~align:64 alloc 8 in
  let t = { mode; arena; alloc; root_cell; node_count = 0 } in
  let r = new_node t ~leaf:true in
  (match mode with
  | Dram -> Arena.write arena root_cell (Int64.of_int r)
  | Direct_nvm | Logged _ ->
      Arena.nt_write arena root_cell (Int64.of_int r);
      Arena.fence arena);
  t

(* Reattach to an existing tree, e.g. after crash recovery. *)
let attach mode alloc ~root_cell =
  { mode; arena = Alloc.arena alloc; alloc; root_cell; node_count = 0 }

let root_cell t = t.root_cell

(* -- search -------------------------------------------------------------- *)

(* Node visits chase pointers: one cache miss each. *)
let charge_visit t = Clock.advance (Arena.config t.arena).Config.read_miss_ns

(* Index of the first key >= k, within the node's live keys. *)
let search_keys t n k =
  let cnt = nkeys t n in
  let rec go i = if i < cnt && key t n i < k then go (i + 1) else i in
  go 0

let rec find_leaf t n k =
  charge_visit t;
  if is_leaf t n then n
  else
    let i = search_keys t n k in
    let i = if i < nkeys t n && key t n i = k then i + 1 else i in
    find_leaf t (child t n i) k

let lookup t k =
  let leaf = find_leaf t (root t) k in
  let i = search_keys t leaf k in
  if i < nkeys t leaf && key t leaf i = k then Some (value t leaf i) else None

let mem t k = lookup t k <> None

(* -- insertion ------------------------------------------------------------ *)

(* Shift keys/values right from position [i] in a leaf; logged writes. *)
let leaf_insert_at t txn n i k v =
  let cnt = nkeys t n in
  for j = cnt - 1 downto i do
    store t txn (n + o_key (j + 1)) (key t n j);
    store t txn (n + o_val (j + 1)) (value t n j)
  done;
  store t txn (n + o_key i) k;
  store t txn (n + o_val i) v;
  set_tag t txn n ~leaf:true ~count:(cnt + 1)

let internal_insert_at t txn n i k c =
  let cnt = nkeys t n in
  for j = cnt - 1 downto i do
    store t txn (n + o_key (j + 1)) (key t n j);
    store t txn (n + o_child (j + 2)) (Int64.of_int (child t n (j + 1)))
  done;
  store t txn (n + o_key i) k;
  store t txn (n + o_child (i + 1)) (Int64.of_int c);
  set_tag t txn n ~leaf:false ~count:(cnt + 1)

(* Split a full leaf: the new right sibling is built with fresh stores,
   then linked with logged writes. *)
let split_leaf t txn n =
  let cnt = nkeys t n in
  let keep = cnt / 2 in
  let right = new_node t ~leaf:true in
  for j = keep to cnt - 1 do
    store_fresh t (right + o_key (j - keep)) (key t n j);
    store_fresh t (right + o_val (j - keep)) (value t n j)
  done;
  store_fresh t (right + o_next) (Int64.of_int (next_leaf t n));
  store_fresh t (right + o_tag) (mk_tag ~leaf:true ~n:(cnt - keep));
  store t txn (n + o_next) (Int64.of_int right);
  set_tag t txn n ~leaf:true ~count:keep;
  (key t right 0, right)

let split_internal t txn n =
  let cnt = nkeys t n in
  let keep = cnt / 2 in
  let sep = key t n keep in
  let right = new_node t ~leaf:false in
  for j = keep + 1 to cnt - 1 do
    store_fresh t (right + o_key (j - keep - 1)) (key t n j)
  done;
  for j = keep + 1 to cnt do
    store_fresh t (right + o_child (j - keep - 1)) (Int64.of_int (child t n j))
  done;
  store_fresh t (right + o_tag) (mk_tag ~leaf:false ~n:(cnt - keep - 1));
  set_tag t txn n ~leaf:false ~count:keep;
  (sep, right)

(* Returns [Some (separator, new_right)] if the child split. *)
let rec insert_rec t txn n k v =
  charge_visit t;
  if is_leaf t n then begin
    let i = search_keys t n k in
    if i < nkeys t n && key t n i = k then begin
      (* update in place *)
      store t txn (n + o_val i) v;
      None
    end
    else begin
      leaf_insert_at t txn n i k v;
      if nkeys t n > max_keys then Some (split_leaf t txn n) else None
    end
  end
  else begin
    let i = search_keys t n k in
    let i = if i < nkeys t n && key t n i = k then i + 1 else i in
    match insert_rec t txn (child t n i) k v with
    | None -> None
    | Some (sep, right) ->
        internal_insert_at t txn n i sep right;
        if nkeys t n > max_keys then Some (split_internal t txn n) else None
  end

let insert t txn k v =
  let r = root t in
  match insert_rec t txn r k v with
  | None -> ()
  | Some (sep, right) ->
      let nr = new_node t ~leaf:false in
      store_fresh t (nr + o_key 0) sep;
      store_fresh t (nr + o_child 0) (Int64.of_int r);
      store_fresh t (nr + o_child 1) (Int64.of_int right);
      store_fresh t (nr + o_tag) (mk_tag ~leaf:false ~n:1);
      store t txn t.root_cell (Int64.of_int nr)

(* -- deletion -------------------------------------------------------------- *)

let leaf_remove_at t txn n i =
  let cnt = nkeys t n in
  for j = i to cnt - 2 do
    store t txn (n + o_key j) (key t n (j + 1));
    store t txn (n + o_val j) (value t n (j + 1))
  done;
  set_tag t txn n ~leaf:true ~count:(cnt - 1)

let internal_remove_at t txn n i =
  (* removes key i and child i+1 *)
  let cnt = nkeys t n in
  for j = i to cnt - 2 do
    store t txn (n + o_key j) (key t n (j + 1))
  done;
  for j = i + 1 to cnt - 1 do
    store t txn (n + o_child j) (Int64.of_int (child t n (j + 1)))
  done;
  set_tag t txn n ~leaf:false ~count:(cnt - 1)

let free_node t txn n =
  t.node_count <- t.node_count - 1;
  match t.mode with
  | Logged tm -> Tm.log_delete tm txn ~addr:n ~size:node_bytes
  | Dram | Direct_nvm -> Alloc.free ~align:64 t.alloc n node_bytes

(* Rebalance child [i] of internal node [n] after a deletion left it under
   [min_keys]: borrow from a sibling or merge. *)
let fix_underflow t txn n i =
  let c = child t n i in
  let leaf = is_leaf t c in
  let borrow_left () =
    let l = child t n (i - 1) in
    let lcnt = nkeys t l in
    if leaf then begin
      leaf_insert_at t txn c 0 (key t l (lcnt - 1)) (value t l (lcnt - 1));
      set_tag t txn l ~leaf:true ~count:(lcnt - 1);
      store t txn (n + o_key (i - 1)) (key t c 0)
    end
    else begin
      (* rotate through the separator *)
      let cnt = nkeys t c in
      for j = cnt - 1 downto 0 do
        store t txn (c + o_key (j + 1)) (key t c j)
      done;
      for j = cnt downto 0 do
        store t txn (c + o_child (j + 1)) (Int64.of_int (child t c j))
      done;
      store t txn (c + o_key 0) (key t n (i - 1));
      store t txn (c + o_child 0) (Int64.of_int (child t l lcnt));
      set_tag t txn c ~leaf:false ~count:(cnt + 1);
      store t txn (n + o_key (i - 1)) (key t l (lcnt - 1));
      set_tag t txn l ~leaf:false ~count:(lcnt - 1)
    end
  in
  let borrow_right () =
    let r = child t n (i + 1) in
    let rcnt = nkeys t r in
    if leaf then begin
      let cnt = nkeys t c in
      store t txn (c + o_key cnt) (key t r 0);
      store t txn (c + o_val cnt) (value t r 0);
      set_tag t txn c ~leaf:true ~count:(cnt + 1);
      leaf_remove_at t txn r 0;
      store t txn (n + o_key i) (key t r 0)
    end
    else begin
      let cnt = nkeys t c in
      store t txn (c + o_key cnt) (key t n i);
      store t txn (c + o_child (cnt + 1)) (Int64.of_int (child t r 0));
      set_tag t txn c ~leaf:false ~count:(cnt + 1);
      store t txn (n + o_key i) (key t r 0);
      let rcnt' = rcnt in
      for j = 0 to rcnt' - 2 do
        store t txn (r + o_key j) (key t r (j + 1))
      done;
      for j = 0 to rcnt' - 1 do
        store t txn (r + o_child j) (Int64.of_int (child t r (j + 1)))
      done;
      set_tag t txn r ~leaf:false ~count:(rcnt' - 1)
    end
  in
  (* Merge child [i] and child [i+1] into child [i]. *)
  let merge_with_right i =
    let l = child t n i and r = child t n (i + 1) in
    let lcnt = nkeys t l and rcnt = nkeys t r in
    if leaf then begin
      for j = 0 to rcnt - 1 do
        store t txn (l + o_key (lcnt + j)) (key t r j);
        store t txn (l + o_val (lcnt + j)) (value t r j)
      done;
      store t txn (l + o_next) (Int64.of_int (next_leaf t r));
      set_tag t txn l ~leaf:true ~count:(lcnt + rcnt)
    end
    else begin
      store t txn (l + o_key lcnt) (key t n i);
      for j = 0 to rcnt - 1 do
        store t txn (l + o_key (lcnt + 1 + j)) (key t r j)
      done;
      for j = 0 to rcnt do
        store t txn (l + o_child (lcnt + 1 + j)) (Int64.of_int (child t r j))
      done;
      set_tag t txn l ~leaf:false ~count:(lcnt + 1 + rcnt)
    end;
    internal_remove_at t txn n i;
    free_node t txn r
  in
  if i > 0 && nkeys t (child t n (i - 1)) > min_keys then borrow_left ()
  else if i < nkeys t n && nkeys t (child t n (i + 1)) > min_keys then
    borrow_right ()
  else if i > 0 then merge_with_right (i - 1)
  else merge_with_right i

let rec delete_rec t txn n k =
  charge_visit t;
  if is_leaf t n then begin
    let i = search_keys t n k in
    if i < nkeys t n && key t n i = k then begin
      leaf_remove_at t txn n i;
      true
    end
    else false
  end
  else begin
    let i = search_keys t n k in
    let i = if i < nkeys t n && key t n i = k then i + 1 else i in
    let c = child t n i in
    let removed = delete_rec t txn c k in
    if removed && nkeys t c < min_keys then fix_underflow t txn n i;
    removed
  end

let delete t txn k =
  let r = root t in
  let removed = delete_rec t txn r k in
  (* Shrink the root when it has become a single-child internal node. *)
  if removed && not (is_leaf t r) && nkeys t r = 0 then begin
    store t txn t.root_cell (Int64.of_int (child t r 0));
    free_node t txn r
  end;
  removed

(* -- bulk loading ----------------------------------------------------------- *)

(* Build a tree from sorted bindings bottom-up: leaves first, then internal
   levels, all with fresh (durable, unreachable) stores; the single logged
   root swing at the end makes the whole load crash-atomic.  The tree must
   be empty. *)
let leaf_fill = max_keys - 1      (* load factor ~86 % *)
let internal_fanout = order - 1

let bulk_load t txn bindings =
  if nkeys t (root t) <> 0 || not (is_leaf t (root t)) then
    invalid_arg "Btree.bulk_load: tree not empty";
  match bindings with
  | [] -> ()
  | _ ->
      let rec check_sorted = function
        | (a, _) :: ((b, _) :: _ as rest) ->
            if a >= b then invalid_arg "Btree.bulk_load: bindings not sorted";
            check_sorted rest
        | _ -> ()
      in
      check_sorted bindings;
      (* leaves, chained left to right *)
      let leaves = ref [] in
      let rec build_leaves = function
        | [] -> ()
        | kvs ->
            let n = new_node t ~leaf:true in
            let rec fill i = function
              | (k, v) :: rest when i < leaf_fill ->
                  store_fresh t (n + o_key i) k;
                  store_fresh t (n + o_val i) v;
                  fill (i + 1) rest
              | rest -> (i, rest)
            in
            let count, rest = fill 0 kvs in
            store_fresh t (n + o_tag) (mk_tag ~leaf:true ~n:count);
            (match !leaves with
            | (_, prev) :: _ -> store_fresh t (prev + o_next) (Int64.of_int n)
            | [] -> ());
            leaves := (key t n 0, n) :: !leaves;
            build_leaves rest
      in
      build_leaves bindings;
      (* internal levels, bottom-up *)
      let rec levels nodes =
        match nodes with
        | [ (_, single) ] -> single
        | _ ->
            let parents = ref [] in
            let rec group = function
              | [] -> ()
              | children ->
                  let n = new_node t ~leaf:false in
                  let rec fill i = function
                    | (first_key, child) :: rest when i <= internal_fanout ->
                        store_fresh t (n + o_child i) (Int64.of_int child);
                        if i > 0 then store_fresh t (n + o_key (i - 1)) first_key;
                        fill (i + 1) rest
                    | rest -> (i, rest)
                  in
                  let taken, rest = fill 0 children in
                  store_fresh t (n + o_tag) (mk_tag ~leaf:false ~n:(taken - 1));
                  (match children with
                  | (fk, _) :: _ -> parents := (fk, n) :: !parents
                  | [] -> ());
                  group rest
            in
            group nodes;
            levels (List.rev !parents)
      in
      (* the previous root leaf is replaced; return it to the allocator *)
      let old_root = root t in
      let new_root = levels (List.rev !leaves) in
      store t txn t.root_cell (Int64.of_int new_root);
      free_node t txn old_root

(* -- iteration & checks ---------------------------------------------------- *)

let iter t f =
  (* leftmost leaf, then the next-leaf chain *)
  let rec leftmost n = if is_leaf t n then n else leftmost (child t n 0) in
  let rec go leaf =
    if leaf <> 0 then begin
      for i = 0 to nkeys t leaf - 1 do
        f (key t leaf i) (value t leaf i)
      done;
      go (next_leaf t leaf)
    end
  in
  go (leftmost (root t))

(* Range scan [lo, hi] inclusive: descend to lo's leaf, then follow the
   leaf chain. *)
let iter_range t ~lo ~hi f =
  let leaf = find_leaf t (root t) lo in
  let rec go leaf =
    if leaf <> 0 then begin
      let cnt = nkeys t leaf in
      let stop = ref false in
      for i = 0 to cnt - 1 do
        let k = key t leaf i in
        if k > hi then stop := true
        else if k >= lo then f k (value t leaf i)
      done;
      if not !stop then go (next_leaf t leaf)
    end
  in
  go leaf

let range t ~lo ~hi =
  let acc = ref [] in
  iter_range t ~lo ~hi (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let size t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let bindings t =
  let acc = ref [] in
  iter t (fun k v -> acc := (k, v) :: !acc);
  List.rev !acc

let node_count t = t.node_count

(* Structural invariant: sorted keys, child separation, uniform leaf depth,
   occupancy bounds (root exempt). *)
let well_formed t =
  let ok = ref true in
  let fail () = ok := false in
  let rec go n lo hi ~is_root =
    let cnt = nkeys t n in
    if cnt > max_keys then fail ();
    if (not is_root) && is_leaf t n && cnt < 1 then fail ();
    if (not is_root) && (not (is_leaf t n)) && cnt < 1 then fail ();
    for i = 0 to cnt - 2 do
      if key t n i >= key t n (i + 1) then fail ()
    done;
    (match lo with Some l when cnt > 0 && key t n 0 < l -> fail () | _ -> ());
    (match hi with
    | Some h when cnt > 0 && key t n (cnt - 1) >= h -> fail ()
    | _ -> ());
    if is_leaf t n then 1
    else begin
      let depth = ref (-1) in
      for i = 0 to cnt do
        let lo' = if i = 0 then lo else Some (key t n (i - 1)) in
        let hi' = if i = cnt then hi else Some (key t n i) in
        let d = go (child t n i) lo' hi' ~is_root:false in
        if !depth = -1 then depth := d else if d <> !depth then fail ()
      done;
      !depth + 1
    end
  in
  ignore (go (root t) None None ~is_root:true);
  (* keys strictly increasing across the leaf chain *)
  let last = ref Int64.min_int in
  iter t (fun k _ ->
      if k <= !last then fail ();
      last := k);
  !ok
