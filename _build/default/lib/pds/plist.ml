(* The paper's running example (Listings 1 and 2): a persistent
   doubly-linked list whose critical updates are made recoverable by
   enclosing them in a REWIND transaction.  The code deliberately follows
   the shape of the expanded Listing 2: every store to reachable state is
   preceded by its log call (here fused into [Tm.write]), and node
   de-allocation is deferred past commit via a DELETE record.

   Node layout: value, next, prev (three words). *)

open Rewind_nvm
open Rewind

let node_bytes = 24
let o_value = 0
let o_next = 8
let o_prev = 16

type t = {
  tm : Tm.t;
  arena : Arena.t;
  alloc : Alloc.t;
  head_cell : int;
  tail_cell : int;
}

let create tm alloc =
  let arena = Alloc.arena alloc in
  let head_cell = Alloc.alloc_fresh alloc 8 in
  let tail_cell = Alloc.alloc_fresh alloc 8 in
  { tm; arena; alloc; head_cell; tail_cell }

let attach tm alloc ~head_cell ~tail_cell =
  { tm; arena = Alloc.arena alloc; alloc; head_cell; tail_cell }

let head_cell t = t.head_cell
let tail_cell t = t.tail_cell
let rd t off = Int64.to_int (Arena.read t.arena off)
let head t = rd t t.head_cell
let tail t = rd t t.tail_cell
let value t n = Arena.read t.arena (n + o_value)
let next t n = rd t (n + o_next)
let prev t n = rd t (n + o_prev)
let is_empty t = head t = 0

(* Append within an open transaction.  The fresh node is initialised with
   raw durable stores — it only becomes critical once linked. *)
let push_back t txn v =
  let n = Alloc.alloc t.alloc node_bytes in
  Arena.nt_write t.arena (n + o_value) v;
  Arena.nt_write t.arena (n + o_next) 0L;
  Arena.nt_write t.arena (n + o_prev) (Int64.of_int (tail t));
  let tl = tail t in
  if tl = 0 then Tm.write t.tm txn ~addr:t.head_cell ~value:(Int64.of_int n)
  else Tm.write t.tm txn ~addr:(tl + o_next) ~value:(Int64.of_int n);
  Tm.write t.tm txn ~addr:t.tail_cell ~value:(Int64.of_int n);
  n

(* Listing 1's [remove], expanded as in Listing 2. *)
let remove t txn n =
  let p = prev t n and nx = next t n in
  if tail t = n then Tm.write t.tm txn ~addr:t.tail_cell ~value:(Int64.of_int p);
  if head t = n then Tm.write t.tm txn ~addr:t.head_cell ~value:(Int64.of_int nx);
  if p <> 0 then Tm.write t.tm txn ~addr:(p + o_next) ~value:(Int64.of_int nx);
  if nx <> 0 then Tm.write t.tm txn ~addr:(nx + o_prev) ~value:(Int64.of_int p);
  (* "delete(n)": only after commit — a DELETE record defers it. *)
  Tm.log_delete t.tm txn ~addr:n ~size:node_bytes

let set_value t txn n v = Tm.write t.tm txn ~addr:(n + o_value) ~value:v

let iter t f =
  let rec go n =
    if n <> 0 then begin
      f n (value t n);
      go (next t n)
    end
  in
  go (head t)

let to_list t =
  let acc = ref [] in
  iter t (fun _ v -> acc := v :: !acc);
  List.rev !acc

let length t =
  let n = ref 0 in
  iter t (fun _ _ -> incr n);
  !n

let find t v =
  let found = ref 0 in
  (try
     iter t (fun n x -> if x = v && !found = 0 then begin found := n; raise Exit end)
   with Exit -> ());
  !found

let well_formed t =
  let ok = ref true in
  let last = ref 0 in
  iter t (fun n _ ->
      if prev t n <> !last then ok := false;
      last := n);
  if tail t <> !last then ok := false;
  !ok
