(** The flat in-memory table of the Section 5.1 microbenchmarks: a fixed
    array of word cells in NVM, updated transactionally through REWIND or
    raw (the non-recoverable baselines the logging overhead is measured
    against). *)

type t

val create : Rewind_nvm.Alloc.t -> slots:int -> t
val slots : t -> int
val addr : t -> int -> int
val get : t -> int -> int64

val set : t -> Rewind.Tm.t -> Rewind.Tm.txn -> int -> int64 -> unit
(** Transactional update through REWIND. *)

val set_raw_nvm : t -> int -> int64 -> unit
(** Non-recoverable persistent update: a non-temporal store. *)

val set_raw_dram : t -> int -> int64 -> unit
(** Volatile update (DRAM baseline). *)
