(** A persistent chained hash table over REWIND: a fixed bucket directory
    in NVM with separate chaining, every mutation transactional.  An
    "arbitrary persistent data structure" beyond those the paper
    evaluates, exercising the same API surface. *)

type t

val create : ?nbuckets:int -> Rewind.Tm.t -> Rewind_nvm.Alloc.t -> t
val attach : ?nbuckets:int -> Rewind.Tm.t -> Rewind_nvm.Alloc.t -> dir:int -> t
val dir : t -> int

val put : t -> Rewind.Tm.txn -> int64 -> int64 -> unit
(** Insert or update within an open transaction. *)

val remove : t -> Rewind.Tm.txn -> int64 -> bool
val lookup : t -> int64 -> int64 option
val mem : t -> int64 -> bool
val iter : t -> (int64 -> int64 -> unit) -> unit
val size : t -> int
val bindings : t -> (int64 * int64) list
