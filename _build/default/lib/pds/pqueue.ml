(* A persistent FIFO queue over REWIND: a transactional producer/consumer
   structure of the kind the paper's introduction motivates (task queues,
   message logs, outboxes whose contents must survive crashes together
   with the state they describe).

   Built on the recoverable doubly-linked list pattern of Listings 1/2:
   enqueue appends at the tail, dequeue unlinks at the head; both are
   ordinary logged updates inside the caller's transaction, so an enqueue
   and the work that produced it commit or vanish together.

   Node layout: value, next (singly linked, head-to-tail), two root cells
   (head, tail). *)

open Rewind_nvm
open Rewind

let node_bytes = 16
let o_value = 0
let o_next = 8

type t = {
  tm : Tm.t;
  arena : Arena.t;
  alloc : Alloc.t;
  head_cell : int;
  tail_cell : int;
}

let create tm alloc =
  let arena = Alloc.arena alloc in
  let head_cell = Alloc.alloc_fresh alloc 8 in
  let tail_cell = Alloc.alloc_fresh alloc 8 in
  { tm; arena; alloc; head_cell; tail_cell }

let attach tm alloc ~head_cell ~tail_cell =
  { tm; arena = Alloc.arena alloc; alloc; head_cell; tail_cell }

let head_cell t = t.head_cell
let tail_cell t = t.tail_cell
let rd t off = Int64.to_int (Arena.read t.arena off)
let is_empty t = rd t t.head_cell = 0

let enqueue t txn v =
  (* fresh node, durably initialised before it becomes reachable *)
  let n = Alloc.alloc t.alloc node_bytes in
  Arena.nt_write t.arena (n + o_value) v;
  Arena.nt_write t.arena (n + o_next) 0L;
  let tl = rd t t.tail_cell in
  if tl = 0 then Tm.write t.tm txn ~addr:t.head_cell ~value:(Int64.of_int n)
  else Tm.write t.tm txn ~addr:(tl + o_next) ~value:(Int64.of_int n);
  Tm.write t.tm txn ~addr:t.tail_cell ~value:(Int64.of_int n)

let peek t =
  let h = rd t t.head_cell in
  if h = 0 then None else Some (Arena.read t.arena (h + o_value))

let dequeue t txn =
  let h = rd t t.head_cell in
  if h = 0 then None
  else begin
    let v = Arena.read t.arena (h + o_value) in
    let nx = rd t (h + o_next) in
    Tm.write t.tm txn ~addr:t.head_cell ~value:(Int64.of_int nx);
    if nx = 0 then Tm.write t.tm txn ~addr:t.tail_cell ~value:0L;
    (* the node's memory goes back only after the dequeue commits *)
    Tm.log_delete t.tm txn ~addr:h ~size:node_bytes;
    Some v
  end

let iter t f =
  let rec go n =
    if n <> 0 then begin
      f (Arena.read t.arena (n + o_value));
      go (rd t (n + o_next))
    end
  in
  go (rd t t.head_cell)

let length t =
  let n = ref 0 in
  iter t (fun _ -> incr n);
  !n

let to_list t =
  let acc = ref [] in
  iter t (fun v -> acc := v :: !acc);
  List.rev !acc

let well_formed t =
  (* tail reachable from head and actually last *)
  let h = rd t t.head_cell and tl = rd t t.tail_cell in
  if h = 0 then tl = 0
  else begin
    let last = ref 0 in
    let rec go n = if n <> 0 then begin last := n; go (rd t (n + o_next)) end in
    go h;
    !last = tl && rd t (tl + o_next) = 0
  end
