(** A persistent B+-tree in simulated NVM (order 8, int64 keys and
    values), the recoverable data structure of the paper's Sections
    5.2/5.3 experiments.

    The persistence {!mode} selects the paper's three layers: volatile
    DRAM, persistent-but-not-recoverable NVM (raw non-temporal stores), or
    REWIND-logged (every mutation of reachable state goes through
    [Tm.write]; fresh nodes are initialised durably before being linked,
    so no-force redo never re-creates a dangling link). *)

type mode =
  | Dram        (** cached stores: volatile *)
  | Direct_nvm  (** non-temporal stores: persistent, not recoverable *)
  | Logged of Rewind.Tm.t  (** REWIND transactions: atomic + durable *)

type t

val create : mode -> Rewind_nvm.Alloc.t -> t

val attach : mode -> Rewind_nvm.Alloc.t -> root_cell:int -> t
(** Reattach to an existing tree — possibly under a different mode (e.g.
    load raw, then run logged), or after crash recovery. *)

val root_cell : t -> int
(** NVM word holding the root; persist it to find the tree again. *)

(** {1 Operations}

    [txn] is the enclosing REWIND transaction under [Logged]; pass 0 for
    the raw modes. *)

val insert : t -> Rewind.Tm.txn -> int64 -> int64 -> unit
(** Insert or update in place. *)

val delete : t -> Rewind.Tm.txn -> int64 -> bool
(** Full B+-tree deletion with borrowing and merging; [false] if absent. *)

val bulk_load : t -> Rewind.Tm.txn -> (int64 * int64) list -> unit
(** Build an empty tree from strictly-sorted bindings bottom-up: all node
    construction uses fresh durable stores, and one logged root swing
    makes the whole load crash-atomic. *)

val lookup : t -> int64 -> int64 option
val mem : t -> int64 -> bool

(** {1 Traversal} *)

val iter : t -> (int64 -> int64 -> unit) -> unit
(** Ascending-key iteration along the leaf chain. *)

val iter_range : t -> lo:int64 -> hi:int64 -> (int64 -> int64 -> unit) -> unit
(** Ascending iteration over keys in [lo, hi] inclusive. *)

val range : t -> lo:int64 -> hi:int64 -> (int64 * int64) list

val size : t -> int
val bindings : t -> (int64 * int64) list
val node_count : t -> int

val well_formed : t -> bool
(** Sorted keys, child separation, uniform leaf depth, occupancy bounds,
    strictly increasing leaf chain.  For tests. *)
