(** The paper's running example (Listings 1 and 2): a persistent
    doubly-linked list whose critical updates run as REWIND transactions.
    Every store to reachable state is preceded by its log call (fused into
    [Tm.write]); node de-allocation is deferred past commit via a DELETE
    record, exactly as Listing 2 requires. *)

type t

val create : Rewind.Tm.t -> Rewind_nvm.Alloc.t -> t
val attach : Rewind.Tm.t -> Rewind_nvm.Alloc.t -> head_cell:int -> tail_cell:int -> t
val head_cell : t -> int
val tail_cell : t -> int

val push_back : t -> Rewind.Tm.txn -> int64 -> int
(** Append a value inside an open transaction; returns the node address. *)

val remove : t -> Rewind.Tm.txn -> int -> unit
(** Listing 1's [remove], expanded as in Listing 2; the node's memory is
    freed only after commit. *)

val set_value : t -> Rewind.Tm.txn -> int -> int64 -> unit

(** {1 Reads} *)

val head : t -> int
val tail : t -> int
val next : t -> int -> int
val prev : t -> int -> int
val value : t -> int -> int64
val is_empty : t -> bool
val length : t -> int
val to_list : t -> int64 list
val iter : t -> (int -> int64 -> unit) -> unit

val find : t -> int64 -> int
(** First node holding the value, or 0. *)

val well_formed : t -> bool
