(** The Atomic Doubly-Linked List (Section 3.2): REWIND's keystone
    structure, a persistent list whose append and removal are crash-atomic.

    Three single-word recovery variables ([lastTail], [toAppend],
    [toRemove]) are each updated with one atomic NVM word write and drive
    a redo-idempotent {!recover}: after a crash — including crashes during
    recovery itself — re-running {!recover} leaves the list in either the
    pre-operation or the post-operation state, never anything in between.

    Nodes carry one opaque [element] word (a record or bucket address). *)

type t

val create : Rewind_nvm.Alloc.t -> t
(** Allocate a fresh list (durably empty). *)

val attach : Rewind_nvm.Alloc.t -> base:int -> t
(** Reattach to an existing list's header, e.g. after a crash.  Call
    {!recover} before using it. *)

val base : t -> int
(** NVM address of the header; persist it (e.g. in a root slot) to find
    the list again after a crash. *)

val append : t -> int -> int
(** [append t element] atomically appends a node holding [element] and
    returns the node's address. *)

val remove : t -> int -> unit
(** [remove t node] atomically unlinks [node] and returns its memory to
    the allocator. *)

val recover : t -> unit
(** Redo the at-most-one interrupted append or removal.  Idempotent;
    safe to re-run after a crash during recovery. *)

(** {1 Reads} *)

val head : t -> int
val tail : t -> int
val next : t -> int -> int
val prev : t -> int -> int
val element : t -> int -> int
val is_empty : t -> bool
val length : t -> int
val elements : t -> int list

val iter : t -> (int -> unit) -> unit
(** Forward iteration over node addresses.  Appending during iteration is
    safe (new nodes are not visited); so is removing the visited node. *)

val iter_back : t -> (int -> unit) -> unit
val fold_left : t -> ('a -> int -> 'a) -> 'a -> 'a

val free_structure : t -> unit
(** Return all nodes and the header to the allocator (volatile bookkeeping
    only).  Used by wholesale log clearing after the elements have been
    salvaged. *)

val well_formed : t -> bool
(** Structural invariant check: mutually consistent [prev]/[next] pointers
    and correct head/tail.  For tests. *)
